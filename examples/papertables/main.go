// Papertables walks through every worked example of the paper using the
// library's fixtures: Tables 1–3, Figure 1's class-size series, the §3
// quality indices, and the §5 comparator computations.
//
//	go run ./examples/papertables
package main

import (
	"fmt"
	"log"
	"os"

	"microdata"
)

func main() {
	fmt.Println("Table 1 — the hypothetical microdata T1:")
	fmt.Print(microdata.PaperT1().Format(true))

	fmt.Println("\nTable 2 — two 3-anonymous generalizations:")
	fmt.Println("T_3a:")
	fmt.Print(microdata.PaperT3a().Format(true))
	fmt.Println("T_3b:")
	fmt.Print(microdata.PaperT3b().Format(true))

	fmt.Println("\nTable 3 — a 4-anonymous generalization:")
	fmt.Print(microdata.PaperT4().Format(true))

	// Figure 1: the per-tuple equivalence class sizes.
	fmt.Println("\nFigure 1 — class size per tuple:")
	for _, tc := range []struct {
		name  string
		table *microdata.Table
	}{
		{"T_3a", microdata.PaperT3a()},
		{"T_3b", microdata.PaperT3b()},
		{"T_4", microdata.PaperT4()},
	} {
		p, err := microdata.PartitionTable(tc.table)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s %v\n", tc.name, microdata.ClassSizeVector(p))
	}

	// §3: the quality indices.
	p3a, err := microdata.PartitionTable(microdata.PaperT3a())
	if err != nil {
		log.Fatal(err)
	}
	s := microdata.PropertyVector(microdata.ClassSizeVector(p3a))
	p3b, err := microdata.PartitionTable(microdata.PaperT3b())
	if err != nil {
		log.Fatal(err)
	}
	t := microdata.PropertyVector(microdata.ClassSizeVector(p3b))

	kanon, _ := microdata.EvalUnary(microdata.PKAnon, s)
	savg, _ := microdata.EvalUnary(microdata.PSAvg, s)
	counts, err := microdata.SensitiveCountVector(p3a, microdata.PaperSensitive())
	if err != nil {
		log.Fatal(err)
	}
	ldiv, _ := microdata.EvalUnary(microdata.PLDiv, counts)
	fmt.Printf("\n§3 indices: P_k-anon(s)=%.0f  P_s-avg(s)=%.1f  P_l-div=%v\n", kanon, savg, ldiv)

	bST, _ := microdata.EvalBinary(microdata.PBinary, s, t)
	bTS, _ := microdata.EvalBinary(microdata.PBinary, t, s)
	fmt.Printf("P_binary(s,t)=%.0f  P_binary(t,s)=%.0f — T_3b is preferable\n", bST, bTS)

	// §5: the ▶-better comparators on the published tables.
	fmt.Println("\n§5 comparators (privacy property = class size):")
	p4, err := microdata.PartitionTable(microdata.PaperT4())
	if err != nil {
		log.Fatal(err)
	}
	u := microdata.PropertyVector(microdata.ClassSizeVector(p4))
	dmax := make(microdata.PropertyVector, 10)
	for i := range dmax {
		dmax[i] = 10
	}
	for _, c := range []microdata.Comparator{
		microdata.MinBetter(),
		microdata.CovBetter(),
		microdata.SprBetter(),
		microdata.RankComparator{Dmax: dmax},
		microdata.HvBetter(),
	} {
		o1, err := c.Compare(t, u) // T_3b vs T_4
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s T_3b vs T_4: %v\n", c.Name(), o1)
	}
	fmt.Println("\nThe classical min view prefers T_4 (4-anonymity); every per-tuple")
	fmt.Println("comparator prefers T_3b — the anonymization bias made visible.")

	if err := microdata.RunExperiment(os.Stdout, "E13", microdata.ExperimentOptions{}); err != nil {
		log.Fatal(err)
	}
}
