// Quickstart: build a tiny table, anonymize it with Mondrian, and inspect
// the paper's per-tuple privacy property vector.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"microdata"
)

func main() {
	// A small patient table: Age and ZipCode identify, Diagnosis is private.
	schema := microdata.MustSchema(
		microdata.Attribute{Name: "Age", Kind: microdata.Numeric, Role: microdata.QuasiIdentifier},
		microdata.Attribute{Name: "ZipCode", Kind: microdata.Categorical, Role: microdata.QuasiIdentifier},
		microdata.Attribute{Name: "Diagnosis", Kind: microdata.Categorical, Role: microdata.Sensitive},
	)
	t := microdata.NewTable(schema)
	for _, r := range []struct {
		age  float64
		zip  string
		diag string
	}{
		{29, "13053", "Flu"}, {27, "13052", "Ulcer"},
		{34, "13051", "Flu"}, {31, "13050", "Gastritis"},
		{58, "13250", "Diabetes"}, {61, "13253", "Flu"},
		{63, "13250", "Diabetes"}, {59, "13255", "Ulcer"},
		{42, "13268", "Gastritis"}, {45, "13269", "Flu"},
		{44, "13261", "Diabetes"}, {47, "13263", "Flu"},
	} {
		t.MustAppend(microdata.NumVal(r.age), microdata.StrVal(r.zip), microdata.StrVal(r.diag))
	}

	// Generalization ladders: ages into widening bands, zips by prefix.
	hs := microdata.MustHierarchySet(
		microdata.MustIntervals("Age", 0, 100,
			microdata.IntervalLevel{Width: 10, Origin: 0},
			microdata.IntervalLevel{Width: 20, Origin: 0},
		),
		microdata.MustPrefixMask("ZipCode", 5, 10),
	)

	alg, err := microdata.NewAlgorithm("mondrian")
	if err != nil {
		log.Fatal(err)
	}
	res, err := alg.Anonymize(t, microdata.AlgorithmConfig{K: 3, Hierarchies: hs})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("anonymized table (3-anonymous):")
	fmt.Print(res.Table.Format(true))

	// The paper's point: don't stop at the scalar k — look per tuple.
	fmt.Printf("\nscalar view: k = %d\n", microdata.KAnonymity(res.Partition))
	vec := microdata.PropertyVector(microdata.ClassSizeVector(res.Partition))
	fmt.Printf("per-tuple class sizes: %v\n", []float64(vec))
	sum := microdata.Summarize(vec)
	fmt.Printf("bias: min=%.0f median=%.0f max=%.0f Gini=%.3f\n",
		sum.Min, sum.Median, sum.Max, sum.Gini)
}
