// Pareto demonstrates the paper's §7 proposal: handle privacy as an
// objective derived from the per-tuple property vector instead of a scalar
// constraint, and present the decision maker with the whole privacy/utility
// Pareto front at once.
//
//	go run ./examples/pareto [-n 800]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"microdata"
)

func main() {
	n := flag.Int("n", 800, "census size")
	flag.Parse()

	tab, err := microdata.Generate(microdata.GeneratorConfig{N: *n, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	cfg := microdata.AlgorithmConfig{
		K:           1, // ignored: privacy is an objective here
		Hierarchies: microdata.CensusHierarchies(),
		Taxonomies:  microdata.CensusTaxonomies(),
		Seed:        7,
	}

	truth, err := microdata.ExhaustiveParetoFront(tab, cfg)
	if err != nil {
		log.Fatal(err)
	}
	nsga, err := (&microdata.NSGA2{}).Explore(tab, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("census N=%d — privacy/utility Pareto front (exact, %d lattice nodes evaluated)\n\n",
		*n, truth.Evaluations)
	fmt.Printf("%-14s %12s %10s %8s\n", "node", "privacyRank", "LM loss", "k_act")
	maxRank := truth.Points[0].Obj.PrivacyRank
	for _, p := range truth.Points {
		if p.Obj.PrivacyRank > maxRank {
			maxRank = p.Obj.PrivacyRank
		}
	}
	for _, p := range truth.Points {
		bar := ""
		if maxRank > 0 {
			bar = strings.Repeat("#", 1+int(30*p.Obj.PrivacyRank/maxRank))
		}
		fmt.Printf("%-14v %12.1f %10.4f %8d  %s\n", p.Node, p.Obj.PrivacyRank, p.Obj.Loss, p.KActual, bar)
	}
	fmt.Printf("\nNSGA-II found %d front points with %d evaluations (coverage of exact front: %.2f)\n",
		len(nsga.Points), nsga.Evaluations, microdata.ParetoCoverage(nsga, truth))
	fmt.Println("\nEach row is a defensible compromise: the emergent k ranges from 1")
	fmt.Println("(identity, zero loss) to N (everything in one class). A scalar-k")
	fmt.Println("pipeline shows exactly one of these rows and hides the rest.")
}
