// Preferences demonstrates the paper's §5.5–5.7 multi-property preference
// schemes — WTD, LEX and GOAL — plus the §2 personalized-privacy view, on
// two competing anonymizations of a synthetic census.
//
//	go run ./examples/preferences
package main

import (
	"fmt"
	"log"

	"microdata"
)

func main() {
	tab, err := microdata.Generate(microdata.GeneratorConfig{N: 600, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	cfg := microdata.AlgorithmConfig{
		K:              8,
		Hierarchies:    microdata.CensusHierarchies(),
		MaxSuppression: 0.05,
		Taxonomies:     microdata.CensusTaxonomies(),
		Seed:           3,
	}

	build := func(name string) (microdata.PropertySet, *microdata.AlgorithmResult) {
		alg, err := microdata.NewAlgorithm(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := alg.Anonymize(tab, cfg)
		if err != nil {
			log.Fatal(err)
		}
		util, err := microdata.UtilityVector(res.Table, tab, microdata.LossConfig{Taxonomies: cfg.Taxonomies})
		if err != nil {
			log.Fatal(err)
		}
		return microdata.PropertySet{
			microdata.PropertyVector(microdata.ClassSizeVector(res.Partition)),
			microdata.PropertyVector(util),
		}, res
	}
	setA, resA := build("mondrian")
	setB, resB := build("optimal")
	fmt.Printf("comparing %s and %s on privacy (class sizes) + utility (retained info)\n\n",
		resA.Algorithm, resB.Algorithm)

	name := func(o microdata.Outcome) string {
		switch o {
		case microdata.LeftBetter:
			return resA.Algorithm
		case microdata.RightBetter:
			return resB.Algorithm
		default:
			return "tie"
		}
	}

	// WTD: sweep the privacy weight to expose the trade-off.
	fmt.Println("WTD verdict as the privacy weight grows:")
	for _, wp := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		wtd, err := microdata.NewWTD([]float64{wp, 1 - wp}, []microdata.BinaryIndex{microdata.PCov, microdata.PCov})
		if err != nil {
			log.Fatal(err)
		}
		out, err := wtd.Compare(setA, setB)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  privacy weight %.1f -> %s\n", wp, name(out))
	}

	// LEX: privacy-first vs utility-first orderings.
	lex, err := microdata.NewLEX([]float64{0.02, 0.02}, []microdata.BinaryIndex{microdata.PCov, microdata.PCov})
	if err != nil {
		log.Fatal(err)
	}
	out, err := lex.Compare(setA, setB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLEX, privacy ordered first: %s\n", name(out))
	flipped := func(s microdata.PropertySet) microdata.PropertySet {
		return microdata.PropertySet{s[1], s[0]}
	}
	out, err = lex.Compare(flipped(setA), flipped(setB))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LEX, utility ordered first: %s\n", name(out))

	// GOAL: aim for full coverage on privacy, modest on utility.
	goal, err := microdata.NewGOAL([]float64{1.0, 0.5}, []microdata.BinaryIndex{microdata.PCov, microdata.PCov})
	if err != nil {
		log.Fatal(err)
	}
	out, err = goal.Compare(setA, setB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GOAL (cov goals 1.0 privacy / 0.5 utility): %s\n", name(out))

	// §2: even under personalized privacy, bias persists — measure it.
	guards, err := microdata.CensusGuards(tab, 3)
	if err != nil {
		log.Fatal(err)
	}
	sensitive, err := tab.ColumnByName("Disease")
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range []*microdata.AlgorithmResult{resA, resB} {
		okAll, violated, err := microdata.PersonalizedSatisfied(r.Partition, sensitive, microdata.DiseaseTaxonomy(), guards)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: personalized guarding nodes satisfied: %v (%d violations)\n",
			r.Algorithm, okAll, len(violated))
		probs, err := microdata.PersonalizedBreachVector(r.Partition, sensitive, microdata.DiseaseTaxonomy(), guards)
		if err != nil {
			log.Fatal(err)
		}
		s := microdata.Summarize(probs)
		fmt.Printf("  breach probabilities: min=%.3f median=%.3f max=%.3f\n", s.Min, s.Median, s.Max)
	}
}
