// Census runs the full algorithm roster on a synthetic census and ranks
// the anonymizations with the paper's comparison framework — the
// "comparison of microdata disclosure control algorithms" of the title.
//
//	go run ./examples/census [-n 2000] [-k 10]
package main

import (
	"flag"
	"fmt"
	"log"

	"microdata"
)

func main() {
	n := flag.Int("n", 1000, "census size")
	k := flag.Int("k", 10, "k-anonymity requirement")
	flag.Parse()

	tab, err := microdata.Generate(microdata.GeneratorConfig{N: *n, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	cfg := microdata.AlgorithmConfig{
		K:              *k,
		Hierarchies:    microdata.CensusHierarchies(),
		MaxSuppression: 0.05,
		Taxonomies:     microdata.CensusTaxonomies(),
		Seed:           1,
	}

	type entry struct {
		name string
		priv microdata.PropertyVector
		util microdata.PropertyVector
		k    int
		lm   float64
	}
	var entries []entry
	for _, name := range microdata.AlgorithmNames() {
		alg, err := microdata.NewAlgorithm(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := alg.Anonymize(tab, cfg)
		if err != nil {
			fmt.Printf("%-20s failed: %v\n", name, err)
			continue
		}
		u, err := microdata.UtilityVector(res.Table, tab, microdata.LossConfig{Taxonomies: cfg.Taxonomies})
		if err != nil {
			log.Fatal(err)
		}
		lm, err := microdata.GeneralLossMetric(res.Table, tab, microdata.LossConfig{Taxonomies: cfg.Taxonomies})
		if err != nil {
			log.Fatal(err)
		}
		entries = append(entries, entry{
			name: name,
			priv: microdata.PropertyVector(microdata.ClassSizeVector(res.Partition)),
			util: microdata.PropertyVector(u),
			k:    microdata.KAnonymity(res.Partition),
			lm:   lm,
		})
	}

	fmt.Printf("census N=%d, requested k=%d\n\n", *n, *k)
	fmt.Printf("%-20s %6s %8s %10s\n", "algorithm", "k_act", "LM", "Gini")
	for _, e := range entries {
		g, _ := microdata.Gini(e.priv)
		fmt.Printf("%-20s %6d %8.4f %10.4f\n", e.name, e.k, e.lm, g)
	}

	// Tournament ranking under the coverage comparator on privacy: each
	// pairwise win counts one point (the paper's ▶cov used at scale).
	vectors := make([]microdata.PropertyVector, len(entries))
	for i, e := range entries {
		vectors[i] = e.priv
	}
	res, err := microdata.Tournament(vectors, microdata.CovBetter())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncoverage-tournament ranking (privacy property):")
	for rank, idx := range res.Order {
		fmt.Printf("  %2d. %-20s %d wins, %d ties\n", rank+1, entries[idx].name, res.Wins[idx], res.Ties[idx])
	}
	ordered := make([]entry, len(entries))
	for i, idx := range res.Order {
		ordered[i] = entries[idx]
	}
	entries = ordered

	// And a WTD verdict between the two leaders, balancing utility back in.
	if len(entries) >= 2 {
		wtd, err := microdata.NewWTD([]float64{0.5, 0.5}, []microdata.BinaryIndex{microdata.PCov, microdata.PCov})
		if err != nil {
			log.Fatal(err)
		}
		a, b := entries[0], entries[1]
		out, err := wtd.Compare(
			microdata.PropertySet{a.priv, a.util},
			microdata.PropertySet{b.priv, b.util},
		)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "tie"
		switch out {
		case microdata.LeftBetter:
			verdict = a.name
		case microdata.RightBetter:
			verdict = b.name
		}
		fmt.Printf("\nWTD (privacy+utility, equal weights) between %s and %s: %s\n", a.name, b.name, verdict)
	}
}
