// Customschema shows the library on YOUR data rather than the built-in
// census: define a schema, load a taxonomy from its text format, build
// hierarchy ladders, anonymize under combined k + ℓ-diversity constraints,
// and run the paper's comparison between two candidate releases.
//
//	go run ./examples/customschema
package main

import (
	"fmt"
	"log"
	"strings"

	"microdata"
)

// A product-support ticket table: Country and SLA tier identify the
// customer, the issue category is confidential.
const ticketsCSV = `Country,Tier,Hours,Issue
DE,gold,2,crash
DE,gold,3,crash
DE,silver,9,billing
FR,gold,4,security
FR,silver,11,billing
FR,silver,14,crash
US,gold,1,security
US,gold,2,crash
US,silver,8,billing
US,bronze,20,crash
US,bronze,23,security
US,bronze,26,billing
NL,gold,3,billing
NL,silver,12,security
NL,bronze,22,crash
BE,gold,5,crash
BE,silver,10,security
BE,bronze,25,billing
`

// countryTaxonomy uses the text format the library ships for hierarchies.
const countryTaxonomy = `*
  EU
    DE
    FR
    NL
    BE
  NA
    US
`

const tierTaxonomy = `*
  paid
    gold
    silver
  free
    bronze
`

func main() {
	schema := microdata.MustSchema(
		microdata.Attribute{Name: "Country", Kind: microdata.Categorical, Role: microdata.QuasiIdentifier},
		microdata.Attribute{Name: "Tier", Kind: microdata.Categorical, Role: microdata.QuasiIdentifier},
		microdata.Attribute{Name: "Hours", Kind: microdata.Numeric, Role: microdata.QuasiIdentifier},
		microdata.Attribute{Name: "Issue", Kind: microdata.Categorical, Role: microdata.Sensitive},
	)
	tab, err := microdata.ReadCSV(strings.NewReader(ticketsCSV), schema)
	if err != nil {
		log.Fatal(err)
	}

	country, err := microdata.ParseTaxonomy("Country", strings.NewReader(countryTaxonomy))
	if err != nil {
		log.Fatal(err)
	}
	tier, err := microdata.ParseTaxonomy("Tier", strings.NewReader(tierTaxonomy))
	if err != nil {
		log.Fatal(err)
	}
	hs, err := microdata.NewHierarchySet(
		country,
		tier,
		microdata.MustIntervals("Hours", 0, 30,
			microdata.IntervalLevel{Width: 10, Origin: 0},
			microdata.IntervalLevel{Width: 30, Origin: 0},
		),
	)
	if err != nil {
		log.Fatal(err)
	}
	taxonomies := map[string]*microdata.Taxonomy{"Country": country, "Tier": tier}

	cfg := microdata.AlgorithmConfig{
		K:             3,
		MinLDiversity: 2, // every class must mix at least 2 issue types
		Hierarchies:   hs,
		Taxonomies:    taxonomies,
	}

	run := func(name string) *microdata.AlgorithmResult {
		alg, err := microdata.NewAlgorithm(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := alg.Anonymize(tab, cfg)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		return res
	}
	mond := run("mondrian")
	opt := run("optimal")

	fmt.Println("mondrian release (3-anonymous, 2-diverse):")
	fmt.Print(mond.Table.Format(true))
	fmt.Println("\noptimal full-domain release:")
	fmt.Print(opt.Table.Format(true))

	// Compare the two candidate releases the paper's way.
	privA := microdata.PropertyVector(microdata.ClassSizeVector(mond.Partition))
	privB := microdata.PropertyVector(microdata.ClassSizeVector(opt.Partition))
	utilA, err := microdata.UtilityVector(mond.Table, tab, microdata.LossConfig{Taxonomies: taxonomies})
	if err != nil {
		log.Fatal(err)
	}
	utilB, err := microdata.UtilityVector(opt.Table, tab, microdata.LossConfig{Taxonomies: taxonomies})
	if err != nil {
		log.Fatal(err)
	}
	name := func(o microdata.Outcome) string {
		switch o {
		case microdata.LeftBetter:
			return "mondrian"
		case microdata.RightBetter:
			return "optimal"
		default:
			return "tie"
		}
	}
	covP, _ := microdata.CovBetter().Compare(privA, privB)
	covU, _ := microdata.CovBetter().Compare(microdata.PropertyVector(utilA), microdata.PropertyVector(utilB))
	fmt.Printf("\nper-tuple privacy (coverage): %s\n", name(covP))
	fmt.Printf("per-tuple utility (coverage): %s\n", name(covU))

	wtd, err := microdata.NewWTD([]float64{0.5, 0.5},
		[]microdata.BinaryIndex{microdata.PCov, microdata.PCov})
	if err != nil {
		log.Fatal(err)
	}
	verdict, err := wtd.Compare(
		microdata.PropertySet{privA, microdata.PropertyVector(utilA)},
		microdata.PropertySet{privB, microdata.PropertyVector(utilB)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("balanced WTD verdict: %s\n", name(verdict))
}
