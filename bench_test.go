package microdata

import (
	"fmt"
	"testing"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/genetic"
	"microdata/internal/algorithm/incognito"
	"microdata/internal/algorithm/moga"
	"microdata/internal/attack"
	"microdata/internal/core"
	"microdata/internal/eqclass"
	"microdata/internal/generator"
	"microdata/internal/hierarchy"
	"microdata/internal/paperdata"
	"microdata/internal/privacy"
	"microdata/internal/workload"
)

// One benchmark per paper artifact (DESIGN.md §3). Absolute times are
// machine-dependent; EXPERIMENTS.md records the reproduced numbers these
// benchmarks regenerate.

// BenchmarkTable1Load regenerates Table 1 (E1).
func BenchmarkTable1Load(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := paperdata.T1()
		if t.Len() != 10 {
			b.Fatal("bad fixture")
		}
	}
}

// BenchmarkTable2Generalize regenerates the two 3-anonymous tables (E2).
func BenchmarkTable2Generalize(b *testing.B) {
	t1 := paperdata.T1()
	hs := paperdata.Hierarchies()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hierarchy.GeneralizeTable(t1, hs, paperdata.LevelsT3a); err != nil {
			b.Fatal(err)
		}
		if _, err := hierarchy.GeneralizeTable(t1, hs, paperdata.LevelsT3b); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Generalize regenerates the 4-anonymous table (E3).
func BenchmarkTable3Generalize(b *testing.B) {
	t1 := paperdata.T1()
	hs := paperdata.Hierarchies()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hierarchy.GeneralizeTable(t1, hs, paperdata.LevelsT4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1ClassSizeVectors regenerates Figure 1's series (E4).
func BenchmarkFigure1ClassSizeVectors(b *testing.B) {
	tables := []*Table{paperdata.T3a(), paperdata.T3b(), paperdata.T4()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range tables {
			p, err := eqclass.FromTable(t)
			if err != nil {
				b.Fatal(err)
			}
			if v := privacy.ClassSizeVector(p); len(v) != 10 {
				b.Fatal("bad vector")
			}
		}
	}
}

// BenchmarkTable4Dominance exercises the dominance comparators (E5).
func BenchmarkTable4Dominance(b *testing.B) {
	s, t, u := paperdata.ClassSizeT3a, paperdata.ClassSizeT3b, paperdata.ClassSizeT4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compare(t, s); err != nil {
			b.Fatal(err)
		}
		if _, err := core.Compare(u, t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Rank exercises the ▶rank comparator (E6).
func BenchmarkFigure2Rank(b *testing.B) {
	dmax := make(core.PropertyVector, 10)
	for i := range dmax {
		dmax[i] = 10
	}
	cmp := core.RankBetter{Dmax: dmax}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cmp.Compare(paperdata.ClassSizeT3b, paperdata.ClassSizeT4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3CovSpr computes the Figure 3 indices (E7).
func BenchmarkFigure3CovSpr(b *testing.B) {
	d1, d2 := paperdata.SpreadExampleD1, paperdata.SpreadExampleD2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v, _ := core.EvalBinary(core.PCov, d1, d2); v != 0.6 {
			b.Fatal("wrong coverage")
		}
		if v, _ := core.EvalBinary(core.PSpr, d1, d2); v != 4 {
			b.Fatal("wrong spread")
		}
	}
}

// BenchmarkFigure4Hypervolume computes the Figure 4 volumes (E8).
func BenchmarkFigure4Hypervolume(b *testing.B) {
	s, t := paperdata.HvExampleS, paperdata.HvExampleT
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v, _ := core.EvalBinary(core.PHv, s, t); v != 56727 {
			b.Fatal("wrong hypervolume")
		}
	}
}

// BenchmarkSection3Indices computes the §3 worked indices (E9).
func BenchmarkSection3Indices(b *testing.B) {
	s, t := paperdata.ClassSizeT3a, paperdata.ClassSizeT3b
	counts := paperdata.SensitiveCountT3a
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v, _ := core.EvalUnary(core.PKAnon, s); v != 3 {
			b.Fatal("wrong k")
		}
		if v, _ := core.EvalUnary(core.PSAvg, s); v != 3.4 {
			b.Fatal("wrong avg")
		}
		if v, _ := core.EvalUnary(core.PLDiv, counts); v != 1 {
			b.Fatal("wrong l")
		}
		if v, _ := core.EvalBinary(core.PBinary, t, s); v != 7 {
			b.Fatal("wrong binary")
		}
	}
}

// BenchmarkSection53Spread computes the §5.3 comparison (E10).
func BenchmarkSection53Spread(b *testing.B) {
	three, two := paperdata.SpreadThreeAnon, paperdata.SpreadTwoAnon
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v, _ := core.EvalBinary(core.PSpr, two, three); v != 8 {
			b.Fatal("wrong spread")
		}
	}
}

// BenchmarkSection55WTD computes the §5.5 weighted comparison (E11).
func BenchmarkSection55WTD(b *testing.B) {
	wtd, err := core.NewWTD([]float64{0.5, 0.5}, []core.BinaryIndex{core.PCov, core.PCov})
	if err != nil {
		b.Fatal(err)
	}
	y1 := core.PropertySet{paperdata.ClassSizeT3a, paperdata.UtilityT3a}
	y2 := core.PropertySet{paperdata.ClassSizeT3b, paperdata.UtilityT3b}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := wtd.Compare(y1, y2)
		if err != nil || out != core.Tie {
			b.Fatal("expected the paper's tie")
		}
	}
}

// BenchmarkLexGoal exercises the §5.6–5.7 schemes (E12).
func BenchmarkLexGoal(b *testing.B) {
	lex, err := core.NewLEX([]float64{0.1, 0.1}, []core.BinaryIndex{core.PCov, core.PCov})
	if err != nil {
		b.Fatal(err)
	}
	goal, err := core.NewGOAL([]float64{1, 1}, []core.BinaryIndex{core.PCov, core.PCov})
	if err != nil {
		b.Fatal(err)
	}
	y1 := core.PropertySet{paperdata.ClassSizeT3b, paperdata.UtilityT3b}
	y2 := core.PropertySet{paperdata.ClassSizeT3a, paperdata.UtilityT3a}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lex.Compare(y1, y2); err != nil {
			b.Fatal(err)
		}
		if _, err := goal.Compare(y1, y2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTheorem1Search runs the counterexample search (E13).
func BenchmarkTheorem1Search(b *testing.B) {
	panel := core.StandardPanel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ce, _, err := core.FindDominanceCounterexample(panel, 10, 10000, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if ce == nil {
			b.Fatal("no counterexample")
		}
	}
}

// BenchmarkAlgorithms anonymizes the synthetic census with every algorithm
// (E14). Run with -benchtime=1x for a single comparison pass.
func BenchmarkAlgorithms(b *testing.B) {
	tab, err := generator.Generate(generator.Config{N: 500, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := algorithm.Config{
		K:              5,
		Hierarchies:    generator.Hierarchies(),
		MaxSuppression: 0.05,
		Metric:         algorithm.MetricLM,
		Taxonomies:     generator.Taxonomies(),
		Seed:           1,
	}
	for _, name := range AlgorithmNames() {
		alg, err := NewAlgorithm(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := alg.Anonymize(tab, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkComparatorsAtScale measures the per-comparison cost on
// census-sized property vectors — the framework's practical overhead.
func BenchmarkComparatorsAtScale(b *testing.B) {
	tab, err := generator.Generate(generator.Config{N: 2000, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	cfg := algorithm.Config{
		K: 10, Hierarchies: generator.Hierarchies(),
		MaxSuppression: 0.05, Taxonomies: generator.Taxonomies(),
	}
	algA, _ := NewAlgorithm("mondrian")
	algB, _ := NewAlgorithm("datafly")
	ra, err := algA.Anonymize(tab, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rb, err := algB.Anonymize(tab, cfg)
	if err != nil {
		b.Fatal(err)
	}
	va := core.PropertyVector(privacy.ClassSizeVector(ra.Partition))
	vb := core.PropertyVector(privacy.ClassSizeVector(rb.Partition))
	dmax := make(core.PropertyVector, tab.Len())
	for i := range dmax {
		dmax[i] = float64(tab.Len())
	}
	for _, c := range []core.Comparator{
		core.CovBetter(), core.SprBetter(), core.HvLogBetter(),
		core.RankBetter{Dmax: dmax}, core.MinBetter(),
	} {
		b.Run(c.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.Compare(va, vb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGAAblation compares the two crossover operators (E15).
func BenchmarkGAAblation(b *testing.B) {
	tab, err := generator.Generate(generator.Config{N: 300, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := algorithm.Config{
		K: 5, Hierarchies: generator.Hierarchies(),
		MaxSuppression: 0.05, Metric: algorithm.MetricLM,
		Taxonomies: generator.Taxonomies(), Seed: 1,
	}
	for _, alg := range []algorithm.Algorithm{genetic.New(), genetic.NewConstrained()} {
		b.Run(alg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := alg.Anonymize(tab, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParetoFront measures the §7 multi-objective explorers (E16).
func BenchmarkParetoFront(b *testing.B) {
	tab, err := generator.Generate(generator.Config{N: 300, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	cfg := algorithm.Config{
		K: 1, Hierarchies: generator.Hierarchies(),
		Taxonomies: generator.Taxonomies(), Seed: 7,
	}
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := moga.ExhaustiveFront(tab, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nsga2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (&moga.NSGA2{}).Explore(tab, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNonDominance measures pairwise dominance classification over
// minimal k-anonymous releases (E19).
func BenchmarkNonDominance(b *testing.B) {
	tab, err := generator.Generate(generator.Config{N: 300, Seed: 19})
	if err != nil {
		b.Fatal(err)
	}
	cfg := algorithm.Config{
		K: 5, Hierarchies: generator.Hierarchies(), Taxonomies: generator.Taxonomies(),
	}
	minimal, _, err := incognito.New().MinimalNodes(tab, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var vectors []core.PropertyVector
	for _, n := range minimal {
		_, p, small, err := algorithm.ApplyNode(tab, cfg, n)
		if err != nil {
			b.Fatal(err)
		}
		if len(small) == 0 {
			vectors = append(vectors, core.PropertyVector(p.SizeVector()))
		}
	}
	if len(vectors) < 2 {
		b.Skip("too few minimal nodes")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for a := 0; a < len(vectors); a++ {
			for c := a + 1; c < len(vectors); c++ {
				if _, err := core.Compare(vectors[a], vectors[c]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkAttack measures the record-linkage risk computation (E17). A
// fresh adversary per iteration charges index construction and victim
// memoization to the measurement (the prosecutor vector is cached per
// adversary, so reusing one would time the cache copy).
func BenchmarkAttack(b *testing.B) {
	tab, err := generator.Generate(generator.Config{N: 400, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	cfg := algorithm.Config{
		K: 5, Hierarchies: generator.Hierarchies(),
		MaxSuppression: 0.05, Taxonomies: generator.Taxonomies(),
	}
	alg, _ := NewAlgorithm("mondrian")
	r, err := alg.Anonymize(tab, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv, err := attack.NewAdversary(r.Table, generator.Taxonomies())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := attack.ProsecutorVector(tab, adv); err != nil {
			b.Fatal(err)
		}
	}
}

// attackBenchRelease anonymizes an N-row census draw for the attack
// benchmarks below.
func attackBenchRelease(b *testing.B, n int) (tab *Table, anon *Table) {
	b.Helper()
	tab, err := generator.Generate(generator.Config{N: n, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	cfg := algorithm.Config{
		K: 5, Hierarchies: generator.Hierarchies(),
		MaxSuppression: 0.05, Taxonomies: generator.Taxonomies(),
	}
	alg, _ := NewAlgorithm("mondrian")
	r, err := alg.Anonymize(tab, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return tab, r.Table
}

// BenchmarkProsecutorVector compares the naive row-scanning prosecutor
// pipeline against the region-indexed one, serial and parallel. The
// indexed variants rebuild the adversary every iteration so index
// construction and memoization are charged to the measurement.
func BenchmarkProsecutorVector(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		tab, anon := attackBenchRelease(b, n)
		naiveAdv, err := attack.NewAdversary(anon, generator.Taxonomies())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N=%d/naive", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := attack.NaiveProsecutorVector(tab, naiveAdv); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, v := range []struct {
			name    string
			workers int
		}{{"indexed-serial", 1}, {"indexed-parallel", 0}} {
			b.Run(fmt.Sprintf("N=%d/%s", n, v.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					adv, err := attack.NewAdversary(anon, generator.Taxonomies())
					if err != nil {
						b.Fatal(err)
					}
					adv.SetWorkers(v.workers)
					if _, err := attack.ProsecutorVector(tab, adv); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkJournalistVector compares the naive per-victim population scan
// against the inverted, memoized journalist pipeline. Population = 2×
// sample. The naive variant at N=10000 takes tens of seconds per
// iteration; use -benchtime=1x or a -bench filter for quick runs.
func BenchmarkJournalistVector(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		tab, anon := attackBenchRelease(b, n)
		population := tab.Clone()
		extra, err := generator.Generate(generator.Config{N: n, Seed: 18})
		if err != nil {
			b.Fatal(err)
		}
		population.Rows = append(population.Rows, extra.Rows...)
		naiveAdv, err := attack.NewAdversary(anon, generator.Taxonomies())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N=%d/naive", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := attack.NaiveJournalistVector(tab, population, naiveAdv); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, v := range []struct {
			name    string
			workers int
		}{{"indexed-serial", 1}, {"indexed-parallel", 0}} {
			b.Run(fmt.Sprintf("N=%d/%s", n, v.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					adv, err := attack.NewAdversary(anon, generator.Taxonomies())
					if err != nil {
						b.Fatal(err)
					}
					adv.SetWorkers(v.workers)
					if _, err := attack.JournalistVector(tab, population, adv); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkWorkload measures query-workload evaluation (E18).
func BenchmarkWorkload(b *testing.B) {
	tab, err := generator.Generate(generator.Config{N: 600, Seed: 18})
	if err != nil {
		b.Fatal(err)
	}
	cfg := algorithm.Config{
		K: 10, Hierarchies: generator.Hierarchies(),
		MaxSuppression: 0.05, Taxonomies: generator.Taxonomies(),
	}
	alg, _ := NewAlgorithm("mondrian")
	r, err := alg.Anonymize(tab, cfg)
	if err != nil {
		b.Fatal(err)
	}
	queries, err := workload.Generate(tab, workload.Config{Queries: 100, Predicates: 2, Seed: 18})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Evaluate(tab, r.Table, queries, generator.Taxonomies()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartition measures equivalence-class computation across sizes —
// the hot path under every experiment.
func BenchmarkPartition(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		tab, err := generator.Generate(generator.Config{N: n, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		anon, err := hierarchy.GeneralizeTable(tab, generator.Hierarchies(), []int{2, 2, 1, 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eqclass.FromTable(anon); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
