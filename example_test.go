package microdata_test

import (
	"fmt"

	"microdata"
)

// The paper's §1 example: two 3-anonymous generalizations of the same
// table are NOT equally private once you look per tuple.
func Example_dominance() {
	p3a, _ := microdata.PartitionTable(microdata.PaperT3a())
	p3b, _ := microdata.PartitionTable(microdata.PaperT3b())
	s := microdata.PropertyVector(microdata.ClassSizeVector(p3a))
	t := microdata.PropertyVector(microdata.ClassSizeVector(p3b))

	fmt.Println("k(T3a):", microdata.KAnonymity(p3a), " k(T3b):", microdata.KAnonymity(p3b))
	rel, _ := microdata.CompareVectors(t, s)
	fmt.Println("vectors:", rel)
	// Output:
	// k(T3a): 3  k(T3b): 3
	// vectors: left strongly dominates
}

// §5.2–5.3: coverage ties, spread breaks the tie.
func Example_coverageAndSpread() {
	d1 := microdata.PropertyVector{2, 2, 3, 4, 5}
	d2 := microdata.PropertyVector{3, 2, 4, 2, 3}
	cov12, _ := microdata.EvalBinary(microdata.PCov, d1, d2)
	cov21, _ := microdata.EvalBinary(microdata.PCov, d2, d1)
	spr12, _ := microdata.EvalBinary(microdata.PSpr, d1, d2)
	spr21, _ := microdata.EvalBinary(microdata.PSpr, d2, d1)
	fmt.Printf("P_cov: %.1f vs %.1f\n", cov12, cov21)
	fmt.Printf("P_spr: %.0f vs %.0f\n", spr12, spr21)
	out, _ := microdata.SprBetter().Compare(d1, d2)
	fmt.Println("spread verdict:", out)
	// Output:
	// P_cov: 0.6 vs 0.6
	// P_spr: 4 vs 2
	// spread verdict: left better
}

// §5.5: weighted multi-property comparison reproducing the paper's tie.
func Example_wtd() {
	privacyA := microdata.PropertyVector{3, 3, 3, 3, 4, 4, 4, 3, 3, 4}
	privacyB := microdata.PropertyVector{3, 7, 7, 3, 7, 7, 7, 3, 7, 7}
	utilityA := microdata.PropertyVector{2.03, 1.7, 1.7, 2.03, 1.6, 1.6, 1.6, 2.03, 1.7, 1.6}
	utilityB := microdata.PropertyVector{2.03, 0.97, 0.97, 2.03, 0.97, 0.97, 0.97, 2.03, 0.97, 0.97}

	wtd, _ := microdata.NewWTD([]float64{0.5, 0.5},
		[]microdata.BinaryIndex{microdata.PCov, microdata.PCov})
	out, _ := wtd.Compare(
		microdata.PropertySet{privacyA, utilityA},
		microdata.PropertySet{privacyB, utilityB})
	fmt.Println("equal weights:", out)
	// Output:
	// equal weights: tie
}

// End to end: generate, anonymize, measure, compare.
func Example_pipeline() {
	tab, _ := microdata.Generate(microdata.GeneratorConfig{N: 300, Seed: 1})
	cfg := microdata.AlgorithmConfig{
		K:           5,
		Hierarchies: microdata.CensusHierarchies(),
		Taxonomies:  microdata.CensusTaxonomies(),
	}
	mond, _ := microdata.NewAlgorithm("mondrian")
	opt, _ := microdata.NewAlgorithm("optimal")
	ra, _ := mond.Anonymize(tab, cfg)
	rb, _ := opt.Anonymize(tab, cfg)

	ctxA, _ := microdata.NewMeasureContext(tab, ra.Table, cfg.Taxonomies)
	ctxB, _ := microdata.NewMeasureContext(tab, rb.Table, cfg.Taxonomies)
	setA, _ := microdata.Measure(ctxA, microdata.PropClassSize(), microdata.PropRetainedInfo())
	setB, _ := microdata.Measure(ctxB, microdata.PropClassSize(), microdata.PropRetainedInfo())

	lex, _ := microdata.NewLEX([]float64{0.02, 0.02},
		[]microdata.BinaryIndex{microdata.PCov, microdata.PCov})
	out, _ := lex.Compare(setA, setB)
	fmt.Println("both 5-anonymous:",
		microdata.KAnonymity(ra.Partition) >= 5 && microdata.KAnonymity(rb.Partition) >= 5)
	fmt.Println("LEX (privacy first) decided:", out != microdata.Tie)
	// Output:
	// both 5-anonymous: true
	// LEX (privacy first) decided: true
}
