package microdata_test

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"microdata"
)

// engineKeys are the evaluation-engine counters every global-recoding
// algorithm merges into Result.Stats.
var engineKeys = []string{
	"engine_cache_hits", "engine_cache_misses", "engine_eval_ms",
	"engine_nodes_evaluated", "engine_precompute_ms", "engine_rows_scanned",
}

// wantStatsKeys pins the exact Result.Stats key set per algorithm, as it
// was before the telemetry layer. Telemetry-only counters (e.g.
// samarati.strata_evaluated, incognito.nodes_inherited) must NOT leak into
// Result.Stats — they are visible only through the -metrics snapshot.
var wantStatsKeys = map[string][]string{
	"bottomup":            append([]string{"generalization_steps", "suppressed"}, engineKeys...),
	"datafly":             append([]string{"generalization_steps", "suppressed"}, engineKeys...),
	"genetic":             append([]string{"best_fitness", "fitness_evaluations", "generations", "suppressed"}, engineKeys...),
	"genetic-constrained": append([]string{"best_fitness", "fitness_evaluations", "generations", "suppressed"}, engineKeys...),
	"incognito":           append([]string{"minimal_nodes", "nodes_evaluated", "suppressed"}, engineKeys...),
	"mondrian":            {"cuts", "regions"},
	"mondrian-relaxed":    {"cuts", "regions"},
	"mu-argus":            append([]string{"combination_order", "generalization_steps", "suppressed"}, engineKeys...),
	"ola":                 append([]string{"nodes_evaluated", "nodes_tagged", "suppressed"}, engineKeys...),
	"optimal":             append([]string{"best_cost", "nodes_evaluated", "suppressed"}, engineKeys...),
	"samarati":            append([]string{"minimal_height", "nodes_evaluated", "suppressed"}, engineKeys...),
	"topdown":             append([]string{"final_cost", "specializations", "suppressed"}, engineKeys...),
}

func statsKeys(t *testing.T, name string, withCollector bool) []string {
	t.Helper()
	tab, err := microdata.Generate(microdata.GeneratorConfig{N: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := microdata.AlgorithmConfig{
		K:              3,
		Hierarchies:    microdata.CensusHierarchies(),
		Taxonomies:     microdata.CensusTaxonomies(),
		MaxSuppression: 0.05,
		Metric:         microdata.MetricLM,
		Seed:           1,
	}
	if withCollector {
		prev := microdata.SetTelemetryCollector(microdata.NewTelemetryCollector())
		defer microdata.SetTelemetryCollector(prev)
	}
	alg, err := microdata.NewAlgorithm(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := microdata.AnonymizeContext(context.Background(), alg, tab, cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	var keys []string
	for k := range r.Stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestResultStatsKeysByteCompatible asserts every algorithm's Result.Stats
// key set is exactly the pre-telemetry set, whether or not a telemetry
// collector is installed.
func TestResultStatsKeysByteCompatible(t *testing.T) {
	names := microdata.AlgorithmNames()
	if len(names) != len(wantStatsKeys) {
		t.Fatalf("registry has %d algorithms, compat table has %d", len(names), len(wantStatsKeys))
	}
	for _, name := range names {
		want := append([]string(nil), wantStatsKeys[name]...)
		sort.Strings(want)
		off := statsKeys(t, name, false)
		if !reflect.DeepEqual(off, want) {
			t.Errorf("%s stats keys (telemetry off) = %v, want %v", name, off, want)
		}
		on := statsKeys(t, name, true)
		if !reflect.DeepEqual(on, want) {
			t.Errorf("%s stats keys (telemetry on) = %v, want %v", name, on, want)
		}
	}
}
