package microdata

import (
	"bytes"
	"strings"
	"testing"
)

func TestNewAlgorithmRegistry(t *testing.T) {
	for _, name := range AlgorithmNames() {
		alg, err := NewAlgorithm(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if alg.Name() != name {
			t.Errorf("NewAlgorithm(%q).Name() = %q", name, alg.Name())
		}
	}
	if _, err := NewAlgorithm("nope"); err == nil {
		t.Error("unknown algorithm should fail")
	}
	names := AlgorithmNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("AlgorithmNames must be sorted and unique")
		}
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	// The doc-comment example, executed.
	tab, err := Generate(GeneratorConfig{N: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewAlgorithm("mondrian")
	if err != nil {
		t.Fatal(err)
	}
	res, err := alg.Anonymize(tab, AlgorithmConfig{
		K:           5,
		Hierarchies: CensusHierarchies(),
		Taxonomies:  CensusTaxonomies(),
	})
	if err != nil {
		t.Fatal(err)
	}
	vec := ClassSizeVector(res.Partition)
	if len(vec) != 200 {
		t.Fatalf("vector size %d", len(vec))
	}
	if KAnonymity(res.Partition) < 5 {
		t.Error("result not 5-anonymous")
	}
	// Compare against datafly through the framework.
	alg2, _ := NewAlgorithm("datafly")
	res2, err := alg2.Anonymize(tab, AlgorithmConfig{
		K: 5, Hierarchies: CensusHierarchies(), Taxonomies: CensusTaxonomies(),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := CovBetter().Compare(vec, ClassSizeVector(res2.Partition))
	if err != nil {
		t.Fatal(err)
	}
	_ = out // any outcome is valid; the comparison must just work
}

func TestFacadePaperFixtures(t *testing.T) {
	p, err := PartitionTable(PaperT3a())
	if err != nil {
		t.Fatal(err)
	}
	if KAnonymity(p) != 3 {
		t.Errorf("k(T3a) = %d", KAnonymity(p))
	}
	v, err := EvalUnary(PSAvg, ClassSizeVector(p))
	if err != nil || v != 3.4 {
		t.Errorf("P_s-avg = %v, %v", v, err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment(&buf, "E4", ExperimentOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(3,7,7,3,7,7,7,3,7,7)") {
		t.Errorf("E4 output missing Figure 1 series:\n%s", buf.String())
	}
}
