module microdata

go 1.22
