package kernels

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)

	SetDefaultWorkers(0)
	if got, want := DefaultWorkers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("DefaultWorkers() with no override = %d, want GOMAXPROCS %d", got, want)
	}
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers() after SetDefaultWorkers(3) = %d", got)
	}
	SetDefaultWorkers(-5)
	if got, want := DefaultWorkers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("negative override should reset to GOMAXPROCS: got %d, want %d", got, want)
	}
}

func TestShards(t *testing.T) {
	tests := []struct {
		n, workers, want int
	}{
		{0, 4, 1},
		{1, 4, 1},
		{MorselRows, 4, 1},          // one morsel can't be split
		{MorselRows + 1, 4, 2},      // two morsels, two workers get one each
		{4 * MorselRows, 4, 4},      // perfectly divisible
		{4 * MorselRows, 2, 2},      // capped by workers
		{100 * MorselRows, 8, 8},    // capped by workers
		{3 * MorselRows, 100, 3},    // capped by morsel count
		{2*MorselRows + 17, 100, 3}, // partial morsel still counts
		{MorselRows, 1, 1},
		{10, 1, 1},
	}
	for _, tc := range tests {
		if got := Shards(tc.n, tc.workers); got != tc.want {
			t.Errorf("Shards(%d, %d) = %d, want %d", tc.n, tc.workers, got, tc.want)
		}
	}
}

func TestShardRangeCoversAll(t *testing.T) {
	ns := []int{0, 1, 17, MorselRows - 1, MorselRows, MorselRows + 1,
		2 * MorselRows, 3*MorselRows + 1234, 7*MorselRows - 1}
	for _, n := range ns {
		for _, workers := range []int{1, 2, 3, 4, 7, 16} {
			nShards := Shards(n, workers)
			prev := 0
			for s := 0; s < nShards; s++ {
				lo, hi := ShardRange(n, nShards, s)
				if lo != prev {
					t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d (gap/overlap)", n, nShards, s, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d shards=%d: shard %d has hi %d < lo %d", n, nShards, s, hi, lo)
				}
				if s < nShards-1 && lo%MorselRows != 0 {
					t.Fatalf("n=%d shards=%d: shard %d start %d not morsel-aligned", n, nShards, s, lo)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d shards=%d: shards end at %d, want %d", n, nShards, prev, n)
			}
		}
	}
}

func TestParallelFor(t *testing.T) {
	for _, nShards := range []int{1, 2, 5, 16} {
		var hits atomic.Int64
		seen := make([]atomic.Bool, nShards)
		ParallelFor(nShards, func(s int) {
			hits.Add(1)
			if seen[s].Swap(true) {
				t.Errorf("shard %d ran twice", s)
			}
		})
		if int(hits.Load()) != nShards {
			t.Fatalf("ParallelFor(%d) ran %d shards", nShards, hits.Load())
		}
	}
}

func TestPools(t *testing.T) {
	s := GetInt32(100)
	if len(s) != 100 {
		t.Fatalf("GetInt32(100) len = %d", len(s))
	}
	FillInt32(s, -1)
	for i, v := range s {
		if v != -1 {
			t.Fatalf("FillInt32: s[%d] = %d", i, v)
		}
	}
	PutInt32(s)

	// A recycled slice must still come back with the requested length and
	// may hold stale contents: callers always Fill/Zero before use.
	s2 := GetInt32(50)
	if len(s2) != 50 {
		t.Fatalf("GetInt32(50) after Put = len %d", len(s2))
	}
	PutInt32(s2)

	is := GetInt(64)
	if len(is) != 64 {
		t.Fatalf("GetInt(64) len = %d", len(is))
	}
	ZeroInt(is)
	for i, v := range is {
		if v != 0 {
			t.Fatalf("ZeroInt: is[%d] = %d", i, v)
		}
	}
	PutInt(is)

	// nil / empty are tolerated.
	PutInt32(nil)
	PutInt(nil)
	if got := GetInt32(0); len(got) != 0 {
		t.Fatalf("GetInt32(0) len = %d", len(got))
	}
}
