package kernels

import "sync"

// The scratch pools recycle the per-worker vectors the hot kernels would
// otherwise allocate per call: radix lookup tables and group-id vectors in
// the eqclass group-by, histogram tallies in the class-histogram kernels.
// Get returns a slice of at least the requested length (its prefix of
// exactly that length, contents unspecified); Put recycles it for any
// goroutine. The pools are safe for concurrent use — each worker owns what
// it Gets until it Puts it back, which is the ownership rule that keeps the
// kernels reentrant under concurrent tenants.

var (
	int32Pool = sync.Pool{New: func() any { return []int32(nil) }}
	intPool   = sync.Pool{New: func() any { return []int(nil) }}
)

// GetInt32 returns a pooled []int32 of length n (unspecified contents).
func GetInt32(n int) []int32 {
	s := int32Pool.Get().([]int32)
	if cap(s) < n {
		s = make([]int32, n)
	}
	return s[:n]
}

// PutInt32 recycles a slice obtained from GetInt32.
func PutInt32(s []int32) { int32Pool.Put(s[:0]) } //nolint:staticcheck // slice header, not pointer

// GetInt returns a pooled []int of length n (unspecified contents).
func GetInt(n int) []int {
	s := intPool.Get().([]int)
	if cap(s) < n {
		s = make([]int, n)
	}
	return s[:n]
}

// PutInt recycles a slice obtained from GetInt.
func PutInt(s []int) { intPool.Put(s[:0]) } //nolint:staticcheck // slice header, not pointer

// FillInt32 sets every element of s to v (the radix-table reset loop; the
// compiler lowers it to memclr-style code for v==0 patterns).
func FillInt32(s []int32, v int32) {
	for i := range s {
		s[i] = v
	}
}

// ZeroInt zeroes every element of s.
func ZeroInt(s []int) {
	for i := range s {
		s[i] = 0
	}
}
