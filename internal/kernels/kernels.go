// Package kernels is the shared substrate of the parallel, type-specialized
// vector-kernel layer: the one worker-count knob every parallel path in the
// module reads (engine EvaluateAll, attack shard fan-out, the morsel-driven
// group-by in eqclass, the typed numeric reductions in dataset), fixed-size
// row morsels for sharding columnar scans, and pooled per-worker scratch
// vectors.
//
// The package deliberately holds no domain types: it exists so that the
// packages implementing kernels (dataset, eqclass, engine, attack) agree on
// how parallelism is sized and how scratch is recycled, which is what makes
// the kernels reentrant for concurrent tenants (the daemon on the roadmap)
// instead of each owning ad-hoc globals.
package kernels

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MorselRows is the fixed morsel size parallel columnar kernels shard row
// ranges by: large enough that per-morsel bookkeeping vanishes against the
// scan, small enough that GOMAXPROCS workers load-balance a skewed table.
// 64k rows of uint32 codes is 256 KiB per column — comfortably
// cache-resident while a worker owns it.
const MorselRows = 1 << 16

// defaultWorkers holds the module-wide worker-count override; 0 means
// "runtime.GOMAXPROCS(0) at call time".
var defaultWorkers atomic.Int32

// SetDefaultWorkers sets the module-wide default worker count used by every
// parallel kernel that is not explicitly sized by its caller (engine
// WithWorkers and attack SetWorkers still win locally). n <= 0 restores the
// GOMAXPROCS default. The CLIs thread their shared -workers flag here.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// DefaultWorkers returns the module-wide default worker count:
// SetDefaultWorkers' value when set, else runtime.GOMAXPROCS(0).
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Shards returns how many contiguous row shards a kernel should split n
// rows into for the given worker budget (0 = DefaultWorkers): at most one
// shard per worker and at least one morsel of rows per shard, so tiny
// inputs stay sequential and huge ones fan out to every worker.
func Shards(n, workers int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	maxByRows := (n + MorselRows - 1) / MorselRows
	if workers > maxByRows {
		workers = maxByRows
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ShardRange returns the half-open row range [lo, hi) of shard s of nShards
// over n rows. Ranges are contiguous, ascending, morsel-aligned on their
// lower bound, and cover 0..n exactly; the last shard absorbs the
// remainder. Morsel alignment keeps every shard boundary at a multiple of
// MorselRows, so per-shard scans see whole morsels.
func ShardRange(n, nShards, s int) (lo, hi int) {
	morsels := (n + MorselRows - 1) / MorselRows
	per := morsels / nShards
	extra := morsels % nShards
	// Shards 0..extra-1 take per+1 morsels, the rest take per.
	start := s * per
	if s < extra {
		start += s
	} else {
		start += extra
	}
	count := per
	if s < extra {
		count++
	}
	lo = start * MorselRows
	hi = lo + count*MorselRows
	if lo > n {
		lo = n
	}
	if hi > n || s == nShards-1 {
		hi = n
	}
	return lo, hi
}

// ParallelFor runs f(shard) for every shard in [0, nShards) across at most
// nShards goroutines and blocks until all complete. nShards <= 1 runs
// inline. f must be safe to run concurrently with itself.
func ParallelFor(nShards int, f func(shard int)) {
	if nShards <= 1 {
		if nShards == 1 {
			f(0)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(nShards)
	for s := 0; s < nShards; s++ {
		go func(s int) {
			defer wg.Done()
			f(s)
		}(s)
	}
	wg.Wait()
}
