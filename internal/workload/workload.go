// Package workload evaluates anonymizations by aggregate-query accuracy —
// the utility view LeFevre et al. use to motivate multidimensional
// recoding (paper §6: partitionings that "capture the underlying
// multivariate distribution" answer "queries with predicates on more than
// just one attribute" better).
//
// A workload is a set of random COUNT queries with conjunctive range /
// category predicates over the quasi-identifiers. The true answer comes
// from the original table; the estimated answer from the anonymized table
// under the standard uniformity assumption: a generalized record
// contributes the fraction of its region that overlaps the predicate.
// Accuracy is reported as the distribution of absolute and relative errors
// over the workload.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"microdata/internal/dataset"
	"microdata/internal/hierarchy"
	"microdata/internal/stats"
)

// Predicate restricts one quasi-identifier.
type Predicate struct {
	// Attr names the attribute.
	Attr string
	// Lo and Hi bound a numeric attribute: Lo <= x <= Hi.
	Lo, Hi float64
	// Values lists acceptable ground values of a categorical attribute.
	Values []string
}

// Query is a conjunctive COUNT query.
type Query struct {
	Predicates []Predicate
}

// Config parameterizes workload generation.
type Config struct {
	// Queries is the number of queries (default 100).
	Queries int
	// Predicates per query (default 2, the multi-attribute case the
	// Mondrian paper emphasizes).
	Predicates int
	// Seed drives the deterministic generator.
	Seed int64
	// Taxonomies resolves Set-generalized cells during estimation.
	Taxonomies map[string]*hierarchy.Taxonomy
}

// Generate draws a random workload against the original table's value
// distributions: numeric predicates are random sub-ranges of the observed
// domain, categorical predicates random value subsets.
func Generate(orig *dataset.Table, cfg Config) ([]Query, error) {
	if orig == nil || orig.Len() == 0 {
		return nil, fmt.Errorf("workload: empty table")
	}
	qi := orig.Schema.QuasiIdentifiers()
	if len(qi) == 0 {
		return nil, fmt.Errorf("workload: no quasi-identifiers")
	}
	nq := cfg.Queries
	if nq <= 0 {
		nq = 100
	}
	np := cfg.Predicates
	if np <= 0 {
		np = 2
	}
	if np > len(qi) {
		np = len(qi)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Pre-compute per-attribute domains.
	type dom struct {
		numeric bool
		lo, hi  float64
		values  []string
	}
	doms := make([]dom, len(qi))
	for d, j := range qi {
		if orig.Schema.Attrs[j].Kind == dataset.Numeric {
			lo, hi, ok := orig.NumericRange(j)
			if !ok {
				return nil, fmt.Errorf("workload: numeric attribute %q has no values", orig.Schema.Attrs[j].Name)
			}
			doms[d] = dom{numeric: true, lo: lo, hi: hi}
			continue
		}
		seen := map[string]bool{}
		var vals []string
		for i := 0; i < orig.Len(); i++ {
			v := orig.At(i, j)
			if v.Kind() == dataset.Str && !seen[v.Text()] {
				seen[v.Text()] = true
				vals = append(vals, v.Text())
			}
		}
		sort.Strings(vals)
		doms[d] = dom{values: vals}
	}
	queries := make([]Query, nq)
	for q := range queries {
		picked := rng.Perm(len(qi))[:np]
		sort.Ints(picked)
		preds := make([]Predicate, 0, np)
		for _, d := range picked {
			attr := orig.Schema.Attrs[qi[d]].Name
			if doms[d].numeric {
				span := doms[d].hi - doms[d].lo
				a := doms[d].lo + rng.Float64()*span
				b := doms[d].lo + rng.Float64()*span
				if a > b {
					a, b = b, a
				}
				preds = append(preds, Predicate{Attr: attr, Lo: a, Hi: b})
				continue
			}
			vals := doms[d].values
			nsel := 1 + rng.Intn((len(vals)+1)/2)
			perm := rng.Perm(len(vals))[:nsel]
			sel := make([]string, nsel)
			for i, p := range perm {
				sel[i] = vals[p]
			}
			sort.Strings(sel)
			preds = append(preds, Predicate{Attr: attr, Values: sel})
		}
		queries[q] = Query{Predicates: preds}
	}
	return queries, nil
}

// TrueCount answers the query exactly on the original table.
func TrueCount(orig *dataset.Table, q Query) (float64, error) {
	count := 0.0
	for i := 0; i < orig.Len(); i++ {
		sel := 1.0
		for _, p := range q.Predicates {
			j := orig.Schema.Index(p.Attr)
			if j < 0 {
				return 0, fmt.Errorf("workload: unknown attribute %q", p.Attr)
			}
			f, err := groundSelectivity(orig.At(i, j), p)
			if err != nil {
				return 0, err
			}
			sel *= f
		}
		count += sel
	}
	return count, nil
}

func groundSelectivity(v dataset.Value, p Predicate) (float64, error) {
	if len(p.Values) > 0 {
		if v.Kind() != dataset.Str {
			return 0, fmt.Errorf("workload: categorical predicate on %v cell", v.Kind())
		}
		for _, s := range p.Values {
			if v.Text() == s {
				return 1, nil
			}
		}
		return 0, nil
	}
	if v.Kind() != dataset.Num {
		return 0, fmt.Errorf("workload: numeric predicate on %v cell", v.Kind())
	}
	x := v.Float()
	if x >= p.Lo && x <= p.Hi {
		return 1, nil
	}
	return 0, nil
}

// Estimator answers queries on anonymized tables under the uniformity
// assumption, using the ORIGINAL table's attribute domains to spread fully
// suppressed cells: a '*' could be anyone, so it contributes the
// predicate's share of the whole domain rather than zero.
type Estimator struct {
	taxs    map[string]*hierarchy.Taxonomy
	numDom  map[string][2]float64 // attr -> observed [lo, hi]
	catDom  map[string]int        // attr -> observed distinct ground values
	catVals map[string][]string   // attr -> the values themselves
}

// NewEstimator captures the original table's domains.
func NewEstimator(orig *dataset.Table, taxonomies map[string]*hierarchy.Taxonomy) (*Estimator, error) {
	if orig == nil || orig.Len() == 0 {
		return nil, fmt.Errorf("workload: empty original table")
	}
	e := &Estimator{
		taxs:    taxonomies,
		numDom:  map[string][2]float64{},
		catDom:  map[string]int{},
		catVals: map[string][]string{},
	}
	for j, attr := range orig.Schema.Attrs {
		if attr.Kind == dataset.Numeric {
			lo, hi, ok := orig.NumericRange(j)
			if ok {
				e.numDom[attr.Name] = [2]float64{lo, hi}
			}
			continue
		}
		seen := map[string]bool{}
		for i := 0; i < orig.Len(); i++ {
			v := orig.At(i, j)
			if v.Kind() == dataset.Str && !seen[v.Text()] {
				seen[v.Text()] = true
				e.catVals[attr.Name] = append(e.catVals[attr.Name], v.Text())
			}
		}
		e.catDom[attr.Name] = len(seen)
	}
	return e, nil
}

// Count answers the query on the anonymized table. Each record
// contributes the product over predicates of the overlap fraction between
// its (possibly generalized) cell and the predicate.
func (e *Estimator) Count(anon *dataset.Table, q Query) (float64, error) {
	count := 0.0
	for i := 0; i < anon.Len(); i++ {
		sel := 1.0
		for _, p := range q.Predicates {
			j := anon.Schema.Index(p.Attr)
			if j < 0 {
				return 0, fmt.Errorf("workload: unknown attribute %q", p.Attr)
			}
			f, err := e.cellSelectivity(anon.At(i, j), p)
			if err != nil {
				return 0, err
			}
			sel *= f
			if sel == 0 {
				break
			}
		}
		count += sel
	}
	return count, nil
}

// cellSelectivity is the fraction of the cell's region satisfying the
// predicate, under uniformity.
func (e *Estimator) cellSelectivity(v dataset.Value, p Predicate) (float64, error) {
	if len(p.Values) > 0 {
		return e.categoricalSelectivity(v, p)
	}
	return e.numericSelectivity(v, p)
}

func (e *Estimator) numericSelectivity(v dataset.Value, p Predicate) (float64, error) {
	switch v.Kind() {
	case dataset.Num:
		x := v.Float()
		if x >= p.Lo && x <= p.Hi {
			return 1, nil
		}
		return 0, nil
	case dataset.Interval:
		return intervalOverlap(v.Bounds())(p), nil
	case dataset.Star:
		// Could be anyone in the domain: spread uniformly.
		dom, ok := e.numDom[p.Attr]
		if !ok {
			return 0, nil
		}
		return intervalOverlap(dom[0], dom[1])(p), nil
	default:
		return 0, fmt.Errorf("workload: numeric predicate on %v cell", v.Kind())
	}
}

// intervalOverlap returns a closure computing the fraction of (lo,hi]
// overlapping the predicate's range, under uniformity.
func intervalOverlap(lo, hi float64) func(Predicate) float64 {
	return func(p Predicate) float64 {
		if hi == lo {
			if lo >= p.Lo && lo <= p.Hi {
				return 1
			}
			return 0
		}
		overlap := math.Min(hi, p.Hi) - math.Max(lo, p.Lo)
		if overlap <= 0 {
			return 0
		}
		return overlap / (hi - lo)
	}
}

func (e *Estimator) categoricalSelectivity(v dataset.Value, p Predicate) (float64, error) {
	tax := e.taxs[p.Attr]
	switch v.Kind() {
	case dataset.Str:
		for _, s := range p.Values {
			if v.Text() == s {
				return 1, nil
			}
		}
		return 0, nil
	case dataset.Set:
		if tax == nil {
			return 0, fmt.Errorf("workload: Set cell %q needs a taxonomy", v.Text())
		}
		covered := 0
		total := 0
		for _, leaf := range tax.Leaves() {
			if !tax.CoversValue(v.Text(), leaf) {
				continue
			}
			total++
			for _, s := range p.Values {
				if leaf == s {
					covered++
					break
				}
			}
		}
		if total == 0 {
			return 0, fmt.Errorf("workload: Set label %q not in taxonomy", v.Text())
		}
		return float64(covered) / float64(total), nil
	case dataset.Prefix:
		// A masked code matches a listed value when the value falls under
		// the prefix; uniformity over the masked positions.
		matching := 0
		for _, s := range p.Values {
			if v.Covers(dataset.StrVal(s)) {
				matching++
			}
		}
		if matching == 0 {
			return 0, nil
		}
		region := math.Pow(10, float64(v.MaskedLen()))
		f := float64(matching) / region
		if f > 1 {
			f = 1
		}
		return f, nil
	case dataset.Star:
		// Could be any ground value: spread over the taxonomy's leaves
		// when one exists, else over the observed domain.
		if tax != nil {
			leaves := tax.Leaves()
			if len(leaves) == 0 {
				return 0, nil
			}
			matching := 0
			for _, leaf := range leaves {
				for _, s := range p.Values {
					if leaf == s {
						matching++
						break
					}
				}
			}
			return float64(matching) / float64(len(leaves)), nil
		}
		if n := e.catDom[p.Attr]; n > 0 {
			matching := 0
			for _, val := range e.catVals[p.Attr] {
				for _, s := range p.Values {
					if val == s {
						matching++
						break
					}
				}
			}
			return float64(matching) / float64(n), nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("workload: categorical predicate on %v cell", v.Kind())
	}
}

// Report is the accuracy of one anonymization over one workload.
type Report struct {
	// Queries is the workload size.
	Queries int
	// MeanAbsError and MedianAbsError summarize |est − true|.
	MeanAbsError, MedianAbsError float64
	// MeanRelError summarizes |est − true| / max(true, 1).
	MeanRelError float64
	// AbsErrors holds the per-query absolute errors for further analysis.
	AbsErrors []float64
}

// Evaluate runs the workload against one anonymization.
func Evaluate(orig, anon *dataset.Table, queries []Query, taxonomies map[string]*hierarchy.Taxonomy) (*Report, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("workload: empty workload")
	}
	if orig.Len() != anon.Len() {
		return nil, fmt.Errorf("workload: table size mismatch")
	}
	est8r, err := NewEstimator(orig, taxonomies)
	if err != nil {
		return nil, err
	}
	abs := make([]float64, len(queries))
	rel := 0.0
	for qi, q := range queries {
		truth, err := TrueCount(orig, q)
		if err != nil {
			return nil, err
		}
		est, err := est8r.Count(anon, q)
		if err != nil {
			return nil, err
		}
		abs[qi] = math.Abs(est - truth)
		rel += abs[qi] / math.Max(truth, 1)
	}
	return &Report{
		Queries:        len(queries),
		MeanAbsError:   stats.Mean(abs),
		MedianAbsError: stats.Median(abs),
		MeanRelError:   rel / float64(len(queries)),
		AbsErrors:      abs,
	}, nil
}
