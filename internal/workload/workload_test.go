package workload

import (
	"math"
	"testing"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/datafly"
	"microdata/internal/algorithm/mondrian"
	"microdata/internal/dataset"
	"microdata/internal/generator"
	"microdata/internal/hierarchy"
	"microdata/internal/paperdata"
)

func TestGenerateDeterministicAndValid(t *testing.T) {
	tab, err := generator.Generate(generator.Config{N: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	qs1, err := Generate(tab, Config{Queries: 50, Predicates: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	qs2, err := Generate(tab, Config{Queries: 50, Predicates: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs1) != 50 {
		t.Fatalf("generated %d queries", len(qs1))
	}
	for i := range qs1 {
		if len(qs1[i].Predicates) != 2 {
			t.Fatalf("query %d has %d predicates", i, len(qs1[i].Predicates))
		}
		for j := range qs1[i].Predicates {
			p1, p2 := qs1[i].Predicates[j], qs2[i].Predicates[j]
			if p1.Attr != p2.Attr || p1.Lo != p2.Lo || p1.Hi != p2.Hi || len(p1.Values) != len(p2.Values) {
				t.Fatal("workload not deterministic")
			}
		}
	}
	// Predicate count clamps to the QI width.
	qs, err := Generate(tab, Config{Queries: 5, Predicates: 99, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs[0].Predicates) != len(tab.Schema.QuasiIdentifiers()) {
		t.Errorf("predicates not clamped: %d", len(qs[0].Predicates))
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(nil, Config{}); err == nil {
		t.Error("nil table should fail")
	}
	empty := dataset.NewTable(paperdata.Schema())
	if _, err := Generate(empty, Config{}); err == nil {
		t.Error("empty table should fail")
	}
	noQI := dataset.NewTable(dataset.MustSchema(dataset.Attribute{Name: "A", Role: dataset.Sensitive}))
	noQI.MustAppend(dataset.StrVal("x"))
	if _, err := Generate(noQI, Config{}); err == nil {
		t.Error("no-QI table should fail")
	}
}

func TestTrueCountOnPaperTable(t *testing.T) {
	orig := paperdata.T1()
	// Ages 35..50 inclusive: 41, 39, 50, 49, 42, 47 -> 6 tuples.
	q := Query{Predicates: []Predicate{{Attr: "Age", Lo: 35, Hi: 50}}}
	got, err := TrueCount(orig, q)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Errorf("true count = %v, want 6", got)
	}
	// Conjunction: zip in {13250,13253} AND age 45..55 -> tuples 5,6,7,10.
	q2 := Query{Predicates: []Predicate{
		{Attr: "ZipCode", Values: []string{"13250", "13253"}},
		{Attr: "Age", Lo: 45, Hi: 55},
	}}
	got, err = TrueCount(orig, q2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("conjunctive true count = %v, want 4", got)
	}
	bad := Query{Predicates: []Predicate{{Attr: "Nope", Lo: 0, Hi: 1}}}
	if _, err := TrueCount(orig, bad); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestEstimateOnIdentityIsExact(t *testing.T) {
	orig := paperdata.T1()
	queries, err := Generate(orig, Config{Queries: 40, Predicates: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Evaluate(orig, orig, queries, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanAbsError != 0 || rep.MedianAbsError != 0 || rep.MeanRelError != 0 {
		t.Errorf("identity anonymization should answer exactly: %+v", rep)
	}
}

func testEstimator(t *testing.T) *Estimator {
	t.Helper()
	e, err := NewEstimator(paperdata.T1(), map[string]*hierarchy.Taxonomy{"MaritalStatus": paperdata.MaritalTaxonomy()})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestIntervalSelectivityUniformity(t *testing.T) {
	e := testEstimator(t)
	// A record generalized to (20,40] contributes 0.5 to a query over
	// 20..30 (half the region).
	got, err := e.numericSelectivity(dataset.IntervalVal(20, 40), Predicate{Attr: "Age", Lo: 20, Hi: 30})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Errorf("selectivity = %v, want 0.5", got)
	}
	// Disjoint region contributes 0.
	got, _ = e.numericSelectivity(dataset.IntervalVal(20, 40), Predicate{Attr: "Age", Lo: 50, Hi: 60})
	if got != 0 {
		t.Errorf("disjoint selectivity = %v", got)
	}
	// Star spreads over the observed domain (T1 ages 26..55): a query
	// covering the whole domain gets 1, half of it ~0.5.
	got, _ = e.numericSelectivity(dataset.StarVal(), Predicate{Attr: "Age", Lo: 0, Hi: 100})
	if got != 1 {
		t.Errorf("star full-domain selectivity = %v, want 1", got)
	}
	got, _ = e.numericSelectivity(dataset.StarVal(), Predicate{Attr: "Age", Lo: 26, Hi: 40.5})
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("star half-domain selectivity = %v, want 0.5", got)
	}
	// Degenerate single-point interval.
	got, _ = e.numericSelectivity(dataset.IntervalVal(30, 30), Predicate{Attr: "Age", Lo: 20, Hi: 40})
	if got != 1 {
		t.Errorf("degenerate interval selectivity = %v", got)
	}
}

func TestSetSelectivityUsesTaxonomy(t *testing.T) {
	e := testEstimator(t)
	// "Not Married" covers 4 leaves; predicate lists 2 of them -> 0.5.
	got, err := e.categoricalSelectivity(dataset.SetVal("Not Married"),
		Predicate{Attr: "MaritalStatus", Values: []string{"Divorced", "Separated"}})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Errorf("set selectivity = %v, want 0.5", got)
	}
	if _, err := e.categoricalSelectivity(dataset.SetVal("Married"), Predicate{Attr: "ZipCode", Values: []string{"x"}}); err == nil {
		t.Error("set without taxonomy should fail")
	}
	if _, err := e.categoricalSelectivity(dataset.SetVal("Bogus"), Predicate{Attr: "MaritalStatus", Values: []string{"x"}}); err == nil {
		t.Error("unknown set label should fail")
	}
	// Star with a taxonomy spreads over its 6 leaves.
	got, err = e.categoricalSelectivity(dataset.StarVal(), Predicate{Attr: "MaritalStatus", Values: []string{"Divorced", "Separated", "CF-Spouse"}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("star taxonomy selectivity = %v, want 0.5", got)
	}
	// Star without a taxonomy spreads over the observed domain values
	// (T1 has 6 distinct zips; 3 listed -> 0.5).
	got, err = e.categoricalSelectivity(dataset.StarVal(), Predicate{Attr: "ZipCode", Values: []string{"13053", "13268", "13253"}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("star domain selectivity = %v, want 0.5", got)
	}
}

func TestPrefixSelectivity(t *testing.T) {
	e := testEstimator(t)
	// 1305* covers a region of 10 codes; one listed value inside -> 0.1.
	got, err := e.categoricalSelectivity(dataset.PrefixVal("1305", 1),
		Predicate{Attr: "ZipCode", Values: []string{"13053", "99999"}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("prefix selectivity = %v, want 0.1", got)
	}
	got, _ = e.categoricalSelectivity(dataset.PrefixVal("1305", 1), Predicate{Attr: "ZipCode", Values: []string{"99999"}})
	if got != 0 {
		t.Errorf("non-matching prefix selectivity = %v", got)
	}
}

func TestMondrianBeatsGlobalRecodingOnWorkload(t *testing.T) {
	// The LeFevre motivation, reproduced: multidimensional local recoding
	// answers multi-attribute range counts more accurately than single-
	// node global recoding at the same k.
	tab, err := generator.Generate(generator.Config{N: 600, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	cfg := algorithm.Config{
		K: 10, Hierarchies: generator.Hierarchies(),
		MaxSuppression: 0.05, Taxonomies: generator.Taxonomies(),
	}
	mond, err := mondrian.New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	glob, err := datafly.New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := Generate(tab, Config{Queries: 80, Predicates: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	repM, err := Evaluate(tab, mond.Table, queries, generator.Taxonomies())
	if err != nil {
		t.Fatal(err)
	}
	repG, err := Evaluate(tab, glob.Table, queries, generator.Taxonomies())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mean abs error: mondrian %.2f vs datafly %.2f", repM.MeanAbsError, repG.MeanAbsError)
	if repM.MeanAbsError >= repG.MeanAbsError {
		t.Errorf("mondrian error %v should beat global recoding %v (LeFevre shape)", repM.MeanAbsError, repG.MeanAbsError)
	}
}

func TestEvaluateErrors(t *testing.T) {
	orig := paperdata.T1()
	if _, err := Evaluate(orig, orig, nil, nil); err == nil {
		t.Error("empty workload should fail")
	}
	short := paperdata.T1()
	short.Rows = short.Rows[:4]
	qs, _ := Generate(orig, Config{Queries: 3, Seed: 1})
	if _, err := Evaluate(orig, short, qs, nil); err == nil {
		t.Error("size mismatch should fail")
	}
}
