// Package utility implements the data-utility metrics used when comparing
// disclosure control algorithms: Iyengar's general loss metric (LM) with
// per-tuple loss vectors (the paper's §3 "contribution made by a tuple to
// the total information loss"), the discernibility metric (DM), the
// average-class-size metric (C_avg) and Samarati's precision (Prec).
//
// Loss-like quantities are lower-is-better; the paper's property vectors
// are higher-is-better, so vector producers also offer a utility-oriented
// form (per-tuple retained information = attributes − loss).
package utility

import (
	"fmt"

	"microdata/internal/dataset"
	"microdata/internal/eqclass"
	"microdata/internal/hierarchy"
)

// CellLoss returns the Iyengar-style loss in [0,1] of one generalized cell,
// measured against the original table's value domain:
//
//   - exact values lose 0;
//   - a Star loses 1;
//   - an Interval loses width / domain width of the column (clamped to 1);
//   - a Prefix loses maskedChars / totalChars;
//   - a Set requires the attribute's taxonomy to count covered leaves:
//     (leaves − 1) / (totalLeaves − 1).
//
// The original ground value orig is needed only for Set cells (to locate
// the taxonomy leaf).
func CellLoss(anon, orig dataset.Value, attr dataset.Attribute, domLo, domHi float64, tax *hierarchy.Taxonomy) (float64, error) {
	switch anon.Kind() {
	case dataset.Num, dataset.Str:
		return 0, nil
	case dataset.Star:
		return 1, nil
	case dataset.Interval:
		lo, hi := anon.Bounds()
		if domHi <= domLo {
			return 1, nil
		}
		loss := (hi - lo) / (domHi - domLo)
		if loss > 1 {
			loss = 1
		}
		return loss, nil
	case dataset.Prefix:
		total := len(anon.Text()) + anon.MaskedLen()
		if total == 0 {
			return 1, nil
		}
		return float64(anon.MaskedLen()) / float64(total), nil
	case dataset.Set:
		if tax == nil {
			return 0, fmt.Errorf("utility: set value %q in attribute %q needs a taxonomy", anon.Text(), attr.Name)
		}
		leaves := tax.Leaves()
		if len(leaves) <= 1 {
			return 1, nil
		}
		covered := 0
		for _, leaf := range leaves {
			if tax.CoversValue(anon.Text(), leaf) {
				covered++
			}
		}
		if covered == 0 {
			return 0, fmt.Errorf("utility: set value %q not found in taxonomy of %q", anon.Text(), attr.Name)
		}
		return float64(covered-1) / float64(len(leaves)-1), nil
	default:
		return 0, fmt.Errorf("utility: cannot score %v cell in attribute %q", anon.Kind(), attr.Name)
	}
}

// LossConfig carries the domain information per-tuple loss needs.
type LossConfig struct {
	// Taxonomies maps categorical attribute names to their taxonomy, used
	// to score Set cells. Attributes generalized only by prefix masking or
	// suppression need no entry.
	Taxonomies map[string]*hierarchy.Taxonomy
}

// LossVector computes the paper's per-tuple loss property vector: element i
// is the sum of cell losses of tuple i over the quasi-identifier columns of
// anon, each in [0,1], so a tuple's loss lies in [0, #QI]. Numeric domains
// come from the ORIGINAL table so that suppression-heavy anonymizations
// cannot shrink their own denominator.
func LossVector(anon, orig *dataset.Table, cfg LossConfig) ([]float64, error) {
	if anon.Len() != orig.Len() {
		return nil, fmt.Errorf("utility: anonymized table has %d rows, original has %d", anon.Len(), orig.Len())
	}
	if anon.Schema.Len() != orig.Schema.Len() {
		return nil, fmt.Errorf("utility: schema width mismatch")
	}
	qi := anon.Schema.QuasiIdentifiers()
	if len(qi) == 0 {
		return nil, fmt.Errorf("utility: no quasi-identifiers to score")
	}
	type domain struct{ lo, hi float64 }
	domains := make(map[int]domain, len(qi))
	for _, j := range qi {
		if anon.Schema.Attrs[j].Kind == dataset.Numeric {
			lo, hi, ok := orig.NumericRange(j)
			if !ok {
				lo, hi = 0, 0
			}
			domains[j] = domain{lo, hi}
		}
	}
	out := make([]float64, anon.Len())
	for i := range anon.Rows {
		sum := 0.0
		for _, j := range qi {
			attr := anon.Schema.Attrs[j]
			d := domains[j]
			loss, err := CellLoss(anon.At(i, j), orig.At(i, j), attr, d.lo, d.hi, cfg.Taxonomies[attr.Name])
			if err != nil {
				return nil, fmt.Errorf("utility: row %d: %w", i, err)
			}
			sum += loss
		}
		out[i] = sum
	}
	return out, nil
}

// UtilityVector converts a per-tuple loss vector into the paper's
// higher-is-better convention: retained information = #QI − loss.
func UtilityVector(anon, orig *dataset.Table, cfg LossConfig) ([]float64, error) {
	loss, err := LossVector(anon, orig, cfg)
	if err != nil {
		return nil, err
	}
	q := float64(len(anon.Schema.QuasiIdentifiers()))
	out := make([]float64, len(loss))
	for i, l := range loss {
		out[i] = q - l
	}
	return out, nil
}

// GeneralLossMetric is Iyengar's LM: the average per-cell loss over all
// quasi-identifier cells, in [0,1].
func GeneralLossMetric(anon, orig *dataset.Table, cfg LossConfig) (float64, error) {
	loss, err := LossVector(anon, orig, cfg)
	if err != nil {
		return 0, err
	}
	if len(loss) == 0 {
		return 0, fmt.Errorf("utility: loss metric of empty table")
	}
	q := float64(len(anon.Schema.QuasiIdentifiers()))
	sum := 0.0
	for _, l := range loss {
		sum += l
	}
	return sum / (q * float64(len(loss))), nil
}

// DiscernibilityMetric is Bayardo–Agrawal's DM: each tuple incurs a penalty
// equal to the size of its equivalence class, totalling Σ |E|². Suppressed
// tuples live in the all-star class (paper §3 convention) and are charged
// like any other class.
func DiscernibilityMetric(p *eqclass.Partition) float64 {
	s := 0.0
	for _, c := range p.Classes {
		s += float64(len(c)) * float64(len(c))
	}
	return s
}

// DiscernibilityVector is the per-tuple view of DM: tuple i is charged its
// class size. (It coincides with the class-size privacy vector — the
// privacy/utility tension the paper highlights: the same quantity is good
// for privacy and bad for utility.)
func DiscernibilityVector(p *eqclass.Partition) []float64 { return p.SizeVector() }

// AverageClassSizeMetric is LeFevre et al.'s C_avg = (N / #classes) / k,
// the normalized average equivalence class size; 1 is ideal.
func AverageClassSizeMetric(p *eqclass.Partition, k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("utility: k must be positive, got %d", k)
	}
	if p.NumClasses() == 0 {
		return 0, fmt.Errorf("utility: C_avg of empty partition")
	}
	return float64(p.N()) / float64(p.NumClasses()) / float64(k), nil
}

// Precision is Samarati's Prec for global recoding: 1 minus the average of
// level/maxLevel over every quasi-identifier cell. levels is the lattice
// node used (aligned with the schema's QI order); hs supplies MaxLevel per
// attribute.
func Precision(schema *dataset.Schema, hs hierarchy.Set, levels []int) (float64, error) {
	qi := schema.QuasiIdentifiers()
	if len(levels) != len(qi) {
		return 0, fmt.Errorf("utility: %d levels for %d quasi-identifiers", len(levels), len(qi))
	}
	if len(qi) == 0 {
		return 0, fmt.Errorf("utility: no quasi-identifiers")
	}
	s := 0.0
	for li, j := range qi {
		name := schema.Attrs[j].Name
		h, ok := hs[name]
		if !ok {
			return 0, fmt.Errorf("utility: no hierarchy for %q", name)
		}
		max := h.MaxLevel()
		if levels[li] < 0 || levels[li] > max {
			return 0, fmt.Errorf("utility: level %d out of range for %q", levels[li], name)
		}
		if max > 0 {
			s += float64(levels[li]) / float64(max)
		}
	}
	return 1 - s/float64(len(qi)), nil
}
