package utility

import (
	"math"
	"testing"

	"microdata/internal/dataset"
	"microdata/internal/eqclass"
	"microdata/internal/hierarchy"
)

func schema3(t *testing.T) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.Attribute{Name: "ZipCode", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "Age", Kind: dataset.Numeric, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "MaritalStatus", Kind: dataset.Categorical, Role: dataset.Sensitive},
	)
}

func maritalTax(t *testing.T) *hierarchy.Taxonomy {
	t.Helper()
	return hierarchy.MustTaxonomy("MaritalStatus", hierarchy.N("*",
		hierarchy.N("Married", hierarchy.N("CF-Spouse"), hierarchy.N("Spouse Present")),
		hierarchy.N("Not Married", hierarchy.N("Separated"), hierarchy.N("Never Married"), hierarchy.N("Divorced"), hierarchy.N("Spouse Absent")),
	))
}

func TestCellLoss(t *testing.T) {
	attr := dataset.Attribute{Name: "Age", Kind: dataset.Numeric}
	cases := []struct {
		name string
		anon dataset.Value
		want float64
	}{
		{"exact num", dataset.NumVal(28), 0},
		{"exact str", dataset.StrVal("x"), 0},
		{"star", dataset.StarVal(), 1},
		{"interval", dataset.IntervalVal(25, 35), 10.0 / 29},
		{"interval clamped", dataset.IntervalVal(0, 100), 1},
		{"prefix", dataset.PrefixVal("1305", 1), 0.2},
	}
	for _, c := range cases {
		got, err := CellLoss(c.anon, dataset.NumVal(28), attr, 26, 55, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: loss = %v, want %v", c.name, got, c.want)
		}
	}
	// Degenerate numeric domain: interval loss saturates at 1.
	got, err := CellLoss(dataset.IntervalVal(1, 2), dataset.NumVal(1), attr, 5, 5, nil)
	if err != nil || got != 1 {
		t.Errorf("degenerate domain: %v, %v", got, err)
	}
}

func TestCellLossSet(t *testing.T) {
	tax := maritalTax(t)
	attr := dataset.Attribute{Name: "MaritalStatus", Kind: dataset.Categorical}
	got, err := CellLoss(dataset.SetVal("Married"), dataset.StrVal("CF-Spouse"), attr, 0, 0, tax)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.2) > 1e-12 { // (2-1)/(6-1)
		t.Errorf("Married loss = %v, want 0.2", got)
	}
	got, err = CellLoss(dataset.SetVal("Not Married"), dataset.StrVal("Divorced"), attr, 0, 0, tax)
	if err != nil || math.Abs(got-0.6) > 1e-12 { // (4-1)/(6-1)
		t.Errorf("Not Married loss = %v, %v; want 0.6", got, err)
	}
	if _, err := CellLoss(dataset.SetVal("Married"), dataset.StrVal("CF-Spouse"), attr, 0, 0, nil); err == nil {
		t.Error("missing taxonomy should fail")
	}
	if _, err := CellLoss(dataset.SetVal("Nonexistent"), dataset.StrVal("CF-Spouse"), attr, 0, 0, tax); err == nil {
		t.Error("unknown set label should fail")
	}
}

// Build T1's QI columns and a generalized variant at given zip/age levels.
func t1Table(t *testing.T) *dataset.Table {
	t.Helper()
	tab := dataset.NewTable(schema3(t))
	rows := []struct {
		zip     string
		age     float64
		marital string
	}{
		{"13053", 28, "CF-Spouse"}, {"13268", 41, "Separated"},
		{"13268", 39, "Never Married"}, {"13053", 26, "CF-Spouse"},
		{"13253", 50, "Divorced"}, {"13253", 55, "Spouse Absent"},
		{"13250", 49, "Divorced"}, {"13052", 31, "Spouse Present"},
		{"13269", 42, "Separated"}, {"13250", 47, "Separated"},
	}
	for _, r := range rows {
		tab.MustAppend(dataset.StrVal(r.zip), dataset.NumVal(r.age), dataset.StrVal(r.marital))
	}
	return tab
}

func hierSet(t *testing.T) hierarchy.Set {
	t.Helper()
	return hierarchy.MustSet(
		hierarchy.MustPrefixMask("ZipCode", 5, 10),
		hierarchy.MustIntervals("Age", 0, 100,
			hierarchy.IntervalLevel{Width: 10, Origin: 5},
			hierarchy.IntervalLevel{Width: 20, Origin: 15},
			hierarchy.IntervalLevel{Width: 20, Origin: 0},
		),
	)
}

func TestLossVectorT3aShape(t *testing.T) {
	orig := t1Table(t)
	anon, err := hierarchy.GeneralizeTable(orig, hierSet(t), []int{1, 1}) // T3a levels
	if err != nil {
		t.Fatal(err)
	}
	loss, err := LossVector(anon, orig, LossConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Every tuple: zip masked 1 of 5 (0.2) + age width 10 / (55-26) dom.
	want := 0.2 + 10.0/29
	for i, l := range loss {
		if math.Abs(l-want) > 1e-12 {
			t.Fatalf("loss[%d] = %v, want %v", i, l, want)
		}
	}
	// T3b levels are strictly lossier.
	anonB, err := hierarchy.GeneralizeTable(orig, hierSet(t), []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	lossB, err := LossVector(anonB, orig, LossConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range loss {
		if lossB[i] <= loss[i] {
			t.Fatalf("T3b loss %v should exceed T3a loss %v", lossB[i], loss[i])
		}
	}
}

func TestUtilityVectorOrientation(t *testing.T) {
	orig := t1Table(t)
	anon, _ := hierarchy.GeneralizeTable(orig, hierSet(t), []int{1, 1})
	u, err := UtilityVector(anon, orig, LossConfig{})
	if err != nil {
		t.Fatal(err)
	}
	loss, _ := LossVector(anon, orig, LossConfig{})
	for i := range u {
		if math.Abs(u[i]-(2-loss[i])) > 1e-12 {
			t.Fatalf("utility[%d] = %v, loss = %v", i, u[i], loss[i])
		}
	}
	// Identity anonymization has full utility.
	id, _ := hierarchy.GeneralizeTable(orig, hierSet(t), []int{0, 0})
	uid, _ := UtilityVector(id, orig, LossConfig{})
	for _, v := range uid {
		if v != 2 {
			t.Fatalf("identity utility = %v, want 2", v)
		}
	}
}

func TestLossVectorErrors(t *testing.T) {
	orig := t1Table(t)
	anon, _ := hierarchy.GeneralizeTable(orig, hierSet(t), []int{1, 1})
	short := anon.Clone()
	short.Rows = short.Rows[:5]
	if _, err := LossVector(short, orig, LossConfig{}); err == nil {
		t.Error("row-count mismatch should fail")
	}
	noQI := dataset.NewTable(dataset.MustSchema(dataset.Attribute{Name: "A", Role: dataset.Sensitive}))
	noQI.MustAppend(dataset.StrVal("x"))
	if _, err := LossVector(noQI, noQI, LossConfig{}); err == nil {
		t.Error("no-QI table should fail")
	}
	wide := dataset.NewTable(dataset.MustSchema(dataset.Attribute{Name: "A", Role: dataset.QuasiIdentifier}))
	for i := 0; i < orig.Len(); i++ {
		wide.MustAppend(dataset.StrVal("x"))
	}
	if _, err := LossVector(wide, orig, LossConfig{}); err == nil {
		t.Error("schema width mismatch should fail")
	}
}

func TestGeneralLossMetric(t *testing.T) {
	orig := t1Table(t)
	anon, _ := hierarchy.GeneralizeTable(orig, hierSet(t), []int{1, 1})
	lm, err := GeneralLossMetric(anon, orig, LossConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := (0.2 + 10.0/29) / 2
	if math.Abs(lm-want) > 1e-12 {
		t.Errorf("LM = %v, want %v", lm, want)
	}
	// Full suppression: LM = 1.
	top, _ := hierarchy.GeneralizeTable(orig, hierSet(t), []int{5, 4})
	lm, _ = GeneralLossMetric(top, orig, LossConfig{})
	if lm != 1 {
		t.Errorf("full-suppression LM = %v, want 1", lm)
	}
	empty := dataset.NewTable(schema3(t))
	if _, err := GeneralLossMetric(empty, empty, LossConfig{}); err == nil {
		t.Error("empty table should fail")
	}
}

func TestDiscernibilityMetric(t *testing.T) {
	// T3a: 3² + 3² + 4² = 34; T3b: 3² + 7² = 58; T4: 4² + 6² = 52.
	p3a, _ := eqclass.FromGroups(10, [][]int{{0, 3, 7}, {1, 2, 8}, {4, 5, 6, 9}})
	p3b, _ := eqclass.FromGroups(10, [][]int{{0, 3, 7}, {1, 2, 4, 5, 6, 8, 9}})
	p4, _ := eqclass.FromGroups(10, [][]int{{0, 2, 3, 7}, {1, 4, 5, 6, 8, 9}})
	for _, tc := range []struct {
		name string
		p    *eqclass.Partition
		want float64
	}{
		{"T3a", p3a, 34}, {"T3b", p3b, 58}, {"T4", p4, 52},
	} {
		if got := DiscernibilityMetric(tc.p); got != tc.want {
			t.Errorf("DM(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
	vec := DiscernibilityVector(p3a)
	if vec[0] != 3 || vec[4] != 4 {
		t.Errorf("DM vector = %v", vec)
	}
}

func TestAverageClassSizeMetric(t *testing.T) {
	p3a, _ := eqclass.FromGroups(10, [][]int{{0, 3, 7}, {1, 2, 8}, {4, 5, 6, 9}})
	got, err := AverageClassSizeMetric(p3a, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := (10.0 / 3) / 3
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("C_avg = %v, want %v", got, want)
	}
	if _, err := AverageClassSizeMetric(p3a, 0); err == nil {
		t.Error("k=0 should fail")
	}
	empty, _ := eqclass.FromGroups(0, nil)
	if _, err := AverageClassSizeMetric(empty, 3); err == nil {
		t.Error("empty partition should fail")
	}
}

func TestPrecision(t *testing.T) {
	s := schema3(t)
	hs := hierSet(t)
	// T3a levels: zip 1/5, age 1/4 -> Prec = 1 - (0.2+0.25)/2 = 0.775.
	got, err := Precision(s, hs, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.775) > 1e-12 {
		t.Errorf("Prec(T3a) = %v, want 0.775", got)
	}
	// Identity: 1. Top: 0.
	if got, _ := Precision(s, hs, []int{0, 0}); got != 1 {
		t.Errorf("Prec(identity) = %v", got)
	}
	if got, _ := Precision(s, hs, []int{5, 4}); got != 0 {
		t.Errorf("Prec(top) = %v", got)
	}
	if _, err := Precision(s, hs, []int{1}); err == nil {
		t.Error("level-count mismatch should fail")
	}
	if _, err := Precision(s, hs, []int{9, 1}); err == nil {
		t.Error("out-of-range level should fail")
	}
	missing := hierarchy.MustSet(hierarchy.MustPrefixMask("ZipCode", 5, 10))
	if _, err := Precision(s, missing, []int{1, 1}); err == nil {
		t.Error("missing hierarchy should fail")
	}
	noQI := dataset.MustSchema(dataset.Attribute{Name: "A", Role: dataset.Sensitive})
	if _, err := Precision(noQI, hs, nil); err == nil {
		t.Error("no quasi-identifiers should fail")
	}
}

func TestLossVectorWithTaxonomyColumn(t *testing.T) {
	// A schema where the categorical QI generalizes through a taxonomy.
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "MaritalStatus", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
	)
	orig := dataset.NewTable(schema)
	orig.MustAppend(dataset.StrVal("CF-Spouse"))
	orig.MustAppend(dataset.StrVal("Divorced"))
	anon := dataset.NewTable(schema)
	anon.MustAppend(dataset.SetVal("Married"))
	anon.MustAppend(dataset.SetVal("Not Married"))
	cfg := LossConfig{Taxonomies: map[string]*hierarchy.Taxonomy{"MaritalStatus": maritalTax(t)}}
	loss, err := LossVector(anon, orig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss[0]-0.2) > 1e-12 || math.Abs(loss[1]-0.6) > 1e-12 {
		t.Errorf("loss = %v, want [0.2, 0.6]", loss)
	}
	// Without the taxonomy the Set cells cannot be scored.
	if _, err := LossVector(anon, orig, LossConfig{}); err == nil {
		t.Error("missing taxonomy should fail")
	}
}
