// Package telemetry is the dependency-light observability layer shared by
// the evaluation engine, the disclosure control algorithms, the experiment
// runner and the commands. It provides three coordinated facilities:
//
//   - Hierarchical SPANS: telemetry.Start(ctx, "samarati.search") opens a
//     span, stores it in the returned context so nested Start calls link
//     parent to child, and records name, attributes and duration on End.
//     Finished spans can be exported in Chrome trace_event format
//     (chrome://tracing, Perfetto) via Tracer.WriteChromeTrace.
//
//   - A METRICS REGISTRY of named counters, gauges and fixed-bucket
//     histograms, safe for concurrent use from the engine's EvaluateAll
//     worker pool. Registries can be parented: a per-run or per-engine
//     registry forwards every increment to the process-wide registry of the
//     active Collector, so local snapshots (Result.Stats, engine.Stats)
//     and the global -metrics export stay consistent without double
//     bookkeeping.
//
//   - STRUCTURED LOGGING on log/slog with a package-level, swappable
//     handler. The default handler discards everything; CLIs install text
//     or JSON handlers via -v / -log-format.
//
// Telemetry is DISABLED by default: no Collector is installed, Start
// returns immediately after one atomic load (~1–2 ns, see the package
// benchmarks), nil *Span methods are no-ops, and the default logger's
// handler reports Enabled=false for every level. Instrumentation sites
// therefore cost nothing measurable on production hot paths until a
// Collector is installed with SetCollector.
package telemetry

import (
	"sync/atomic"
	"time"
)

// Collector bundles the process-wide telemetry sinks: a span tracer and a
// metrics registry. Install one with SetCollector to enable telemetry.
type Collector struct {
	// Tracer records finished spans for export.
	Tracer *Tracer
	// Metrics is the process-wide registry run-scoped registries parent to.
	Metrics *Registry
}

// CollectorOption customizes NewCollector.
type CollectorOption func(*Collector)

// WithClock injects the time source used for span timestamps — tests
// inject a deterministic fake clock so trace exports are golden-testable.
func WithClock(now func() time.Time) CollectorOption {
	return func(c *Collector) { c.Tracer.now = now }
}

// NewCollector returns a Collector with a fresh Tracer and Registry.
func NewCollector(opts ...CollectorOption) *Collector {
	c := &Collector{Tracer: newTracer(time.Now), Metrics: NewRegistry()}
	for _, o := range opts {
		o(c)
	}
	c.Tracer.epoch = c.Tracer.now()
	return c
}

// active is the installed Collector; nil means telemetry is disabled.
var active atomic.Pointer[Collector]

// SetCollector installs (or, with nil, removes) the process-wide Collector.
// It returns the previously installed Collector so callers can restore it.
func SetCollector(c *Collector) *Collector {
	return active.Swap(c)
}

// Active returns the installed Collector, or nil when telemetry is
// disabled.
func Active() *Collector { return active.Load() }

// Enabled reports whether a Collector is installed. It is a single atomic
// load — cheap enough to guard any hot-path instrumentation.
func Enabled() bool { return active.Load() != nil }

// NewRunRegistry returns a registry for one run (one engine, one algorithm
// invocation). When a Collector is active the registry is parented to the
// Collector's process-wide registry, so every local increment is also
// visible in the global -metrics snapshot; otherwise it is standalone.
func NewRunRegistry() *Registry {
	r := NewRegistry()
	if c := Active(); c != nil && c.Metrics != nil {
		r.parent = c.Metrics
	}
	return r
}
