package telemetry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock returns a deterministic time source: the n-th call yields
// base + n milliseconds. NewCollector consumes the first tick for the
// tracer epoch, so the first span starts at epoch+1ms.
func fakeClock() func() time.Time {
	base := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func installFakeCollector(t *testing.T) *Collector {
	t.Helper()
	col := NewCollector(WithClock(fakeClock()))
	prev := SetCollector(col)
	t.Cleanup(func() { SetCollector(prev) })
	return col
}

// TestSpanTree checks that nested Start calls thread parent links through
// the context and that the depth helpers see the full hierarchy.
func TestSpanTree(t *testing.T) {
	col := installFakeCollector(t)

	ctx, root := Start(context.Background(), "root")
	ctx2, child := Start(ctx, "child")
	ctx3, leaf := Start(ctx2, "leaf")

	if root.ID != 1 || child.ID != 2 || leaf.ID != 3 {
		t.Fatalf("ids = %d,%d,%d, want 1,2,3", root.ID, child.ID, leaf.ID)
	}
	if root.ParentID != 0 || child.ParentID != root.ID || leaf.ParentID != child.ID {
		t.Fatalf("parents = %d,%d,%d", root.ParentID, child.ParentID, leaf.ParentID)
	}
	if SpanFromContext(ctx3) != leaf || SpanFromContext(ctx2) != child || SpanFromContext(ctx) != root {
		t.Fatal("SpanFromContext does not return the innermost span")
	}

	leaf.End()
	child.End()
	root.End()

	spans := col.Tracer.Finished()
	if len(spans) != 3 {
		t.Fatalf("finished %d spans, want 3", len(spans))
	}
	// Finished is sorted by start time: root started first.
	if spans[0] != root || spans[1] != child || spans[2] != leaf {
		t.Fatalf("finished order = %v,%v,%v", spans[0], spans[1], spans[2])
	}
	if d := Depth(spans, leaf); d != 3 {
		t.Errorf("Depth(leaf) = %d, want 3", d)
	}
	if d := MaxDepth(spans); d != 3 {
		t.Errorf("MaxDepth = %d, want 3", d)
	}
	if got := col.Tracer.Open(); got != 0 {
		t.Errorf("Open() = %d, want 0", got)
	}
	// Fake clock: spans start at 2,3,4 ms and end at 5,6,7 ms.
	if d := leaf.Duration(); d != 1*time.Millisecond {
		t.Errorf("leaf duration = %v, want 1ms", d)
	}
	if d := root.Duration(); d != 5*time.Millisecond {
		t.Errorf("root duration = %v, want 5ms", d)
	}
}

// TestStartDisabled pins the disabled fast path: no collector installed
// means Start returns the context unchanged and a nil span, and every nil
// span method is a no-op.
func TestStartDisabled(t *testing.T) {
	prev := SetCollector(nil)
	defer SetCollector(prev)

	ctx := context.Background()
	ctx2, sp := Start(ctx, "x", String("k", "v"))
	if sp != nil {
		t.Fatalf("Start returned %v while disabled, want nil", sp)
	}
	if ctx2 != ctx {
		t.Fatal("Start allocated a new context while disabled")
	}
	// All nil-receiver methods must be safe.
	sp.SetAttr(Int("n", 1))
	sp.End()
	sp.End()
	if d := sp.Duration(); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}
	if a := sp.Attrs(); a != nil {
		t.Errorf("nil span attrs = %v", a)
	}
	if s := sp.String(); s != "<nil span>" {
		t.Errorf("nil span String = %q", s)
	}
}

// TestCancelledContextClosesSpans: an algorithm that bails out on ctx.Err
// still records its spans, because instrumentation sites close spans with
// defer. After the aborted call the tracer has no open spans.
func TestCancelledContextClosesSpans(t *testing.T) {
	col := installFakeCollector(t)

	work := func(ctx context.Context) error {
		ctx, sp := Start(ctx, "alg.search")
		defer sp.End()
		ctx, inner := Start(ctx, "engine.precompute")
		defer inner.End()
		return ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := work(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("work returned %v, want context.Canceled", err)
	}
	if got := col.Tracer.Open(); got != 0 {
		t.Errorf("Open() = %d after cancelled run, want 0", got)
	}
	if got := len(col.Tracer.Finished()); got != 2 {
		t.Errorf("finished %d spans, want 2", got)
	}
}

// TestEndIdempotent: double End records the span once and keeps the first
// end time.
func TestEndIdempotent(t *testing.T) {
	col := installFakeCollector(t)
	_, sp := Start(context.Background(), "once")
	sp.End()
	d := sp.Duration()
	sp.End()
	if got := len(col.Tracer.Finished()); got != 1 {
		t.Fatalf("finished %d spans, want 1", got)
	}
	if sp.Duration() != d {
		t.Errorf("duration changed on second End: %v -> %v", d, sp.Duration())
	}
	// Attributes are frozen after End.
	sp.SetAttr(String("late", "x"))
	if got := len(sp.Attrs()); got != 0 {
		t.Errorf("attrs after End = %d, want 0", got)
	}
}

// TestSubtreeDurations: per-phase totals sum every same-named descendant
// under the root and exclude the root itself.
func TestSubtreeDurations(t *testing.T) {
	installFakeCollector(t)

	ctx, root := Start(context.Background(), "alg.search") // start 2ms
	_, pre := Start(ctx, "engine.precompute")              // start 3ms
	pre.End()                                              // end 4ms (dur 1ms)
	_, ev := Start(ctx, "engine.evaluate_all")             // start 5ms
	ev.End()                                               // end 6ms (dur 1ms)
	_, ev2 := Start(ctx, "engine.evaluate_all")            // start 7ms
	ev2.End()                                              // end 8ms (dur 1ms)
	root.End()                                             // end 9ms (dur 7ms)

	// A sibling root outside the subtree must not contribute.
	_, other := Start(context.Background(), "engine.precompute")
	other.End()

	c := Active()
	spans := c.Tracer.Finished()
	sub := SubtreeDurations(spans, root)
	if got := sub["engine.precompute"]; got != 1*time.Millisecond {
		t.Errorf("precompute subtree = %v, want 1ms", got)
	}
	if got := sub["engine.evaluate_all"]; got != 2*time.Millisecond {
		t.Errorf("evaluate_all subtree = %v, want 2ms", got)
	}
	if _, ok := sub["alg.search"]; ok {
		t.Error("root span counted in its own subtree")
	}
}
