package report

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"microdata/internal/telemetry"
	"microdata/internal/telemetry/progress"
)

// fakeCollector returns a collector whose tracer runs on a deterministic
// millisecond-step clock, so phase durations are exact.
func fakeCollector() *telemetry.Collector {
	t := time.Unix(0, 0)
	return telemetry.NewCollector(telemetry.WithClock(func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}))
}

func TestReportShape(t *testing.T) {
	col := fakeCollector()
	prev := telemetry.SetCollector(col)
	defer telemetry.SetCollector(prev)

	// Two spans of the same phase name sum; one of another.
	_, s1 := telemetry.Start(context.Background(), "engine.evaluate") // +1ms
	s1.End()                                                          // +1ms → 1ms
	_, s2 := telemetry.Start(context.Background(), "engine.evaluate")
	s2.End()
	_, s3 := telemetry.Start(context.Background(), "attack.prosecutor")
	s3.End()

	col.Metrics.Counter("engine.nodes.evaluated").Add(500)
	col.Metrics.Counter("engine.cache.hit").Add(90)
	col.Metrics.Counter("engine.cache.miss").Add(10)
	col.Metrics.Counter("engine.rows.scanned").Add(12345)
	col.Metrics.Counter("engine.eval.total_ns").Add(2_000_000)
	col.Metrics.Counter("attack.index.build.ns").Add(5_000_000)
	col.Metrics.Counter("attack.regions.probed").Add(77)

	root := progress.Enable("bench")
	defer progress.Disable()
	_, tr := progress.Start(context.Background(), "work", 10)
	tr.Add(10)
	tr.Finish()

	r := Begin("anonbench", "experiments").Finish(col, root)
	if r.Schema != Schema || r.Version != Version {
		t.Fatalf("schema/version = %q/%d, want %q/%d", r.Schema, r.Version, Schema, Version)
	}
	if r.Command != "anonbench" || r.Mode != "experiments" {
		t.Errorf("identity = %q/%q", r.Command, r.Mode)
	}
	if r.Engine == nil {
		t.Fatal("engine summary missing despite engine.* counters")
	}
	if r.Engine.NodesEvaluated != 500 || r.Engine.CacheHits != 90 ||
		r.Engine.RowsScanned != 12345 || r.Engine.EvalMS != 2 {
		t.Errorf("engine summary = %+v", r.Engine)
	}
	if r.Attack == nil {
		t.Fatal("attack summary missing despite attack.* counters")
	}
	if r.Attack.RegionsProbed != 77 || r.Attack.IndexBuildMS != 5 {
		t.Errorf("attack summary = %+v", r.Attack)
	}
	// Each span spans one fake-clock tick = 1ms; two engine.evaluate spans.
	if r.PhasesMS["engine.evaluate"] != 2 || r.PhasesMS["attack.prosecutor"] != 1 {
		t.Errorf("phases = %v", r.PhasesMS)
	}
	if r.Metrics == nil || r.Metrics.Counters["engine.nodes.evaluated"] != 500 {
		t.Errorf("full metrics snapshot missing or wrong")
	}
	if r.Progress == nil || r.Progress.Name != "bench" || r.Progress.FinishedChildrenDone != 10 {
		t.Errorf("progress = %+v", r.Progress)
	}
	for _, gauge := range []string{"go.goroutines", "go.heap.objects.bytes", "go.gc.pause.total.seconds"} {
		if _, ok := r.Runtime[gauge]; !ok {
			t.Errorf("runtime gauges missing %q: %v", gauge, r.Runtime)
		}
	}
	if r.Runtime["go.goroutines"] < 1 {
		t.Errorf("go.goroutines = %v, want >= 1", r.Runtime["go.goroutines"])
	}
}

// TestReportOmitsAbsentSubsystems: without the sentinel counters the engine
// and attack roll-ups are omitted, and nil collector/root never panic.
func TestReportOmitsAbsentSubsystems(t *testing.T) {
	col := fakeCollector()
	col.Metrics.Counter("something.else").Add(1)
	r := Begin("anonymize", "").Finish(col, nil)
	if r.Engine != nil || r.Attack != nil || r.Progress != nil {
		t.Errorf("summaries should be nil: engine=%+v attack=%+v progress=%+v",
			r.Engine, r.Attack, r.Progress)
	}
	bare := Begin("compare", "").Finish(nil, nil)
	if bare.Metrics != nil || bare.PhasesMS != nil {
		t.Errorf("nil collector should yield no metrics/phases: %+v", bare)
	}
}

// TestReportJSONRoundTrip: WriteJSON output decodes, carries the schema
// marker, and omits empty sections.
func TestReportJSONRoundTrip(t *testing.T) {
	var buf strings.Builder
	if err := Begin("compare", "paper").Finish(nil, nil).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, buf.String())
	}
	if doc["schema"] != Schema || doc["version"] != float64(Version) {
		t.Errorf("decoded schema/version = %v/%v", doc["schema"], doc["version"])
	}
	for _, absent := range []string{"engine", "attack", "metrics", "progress", "phases_ms"} {
		if _, ok := doc[absent]; ok {
			t.Errorf("empty section %q serialized", absent)
		}
	}
	for _, required := range []string{"command", "start", "duration_ms", "go_version", "gomaxprocs"} {
		if _, ok := doc[required]; !ok {
			t.Errorf("required field %q missing", required)
		}
	}
}

func TestResultPackLink(t *testing.T) {
	b := Begin("anonbench", "run")
	b.SetResultPack("results/census-1k.json", "")
	if r := b.Finish(nil, nil); r.ResultPack != nil {
		t.Errorf("empty digest should not link: %+v", r.ResultPack)
	}
	b.SetResultPack("results/census-1k.json", "deadbeef")
	r := b.Finish(nil, nil)
	if r.Version != 2 {
		t.Errorf("result-pack link requires schema v2, got %d", r.Version)
	}
	if r.ResultPack == nil || r.ResultPack.Path != "results/census-1k.json" || r.ResultPack.SHA256 != "deadbeef" {
		t.Errorf("result-pack link = %+v", r.ResultPack)
	}
}
