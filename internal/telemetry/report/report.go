// Package report assembles the single versioned JSON run report the CLIs
// emit with -report: one schema that merges what used to be scattered
// across -enginestats stdout tables, -metrics snapshots and ad-hoc prints —
// engine and attack counter roll-ups, per-phase wall clocks derived from
// the recorded spans, the full metrics snapshot, and the progress totals.
// DESIGN.md ("Run-report schema") documents the schema; Version gates
// consumers against shape changes.
package report

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"microdata/internal/telemetry"
	"microdata/internal/telemetry/progress"
)

// Schema identifies the document type; Version is bumped on any
// backwards-incompatible shape change. v2 adds the ResultPack link tying
// a run report to the sealed result pack the same invocation produced.
const (
	Schema  = "microdata/run-report"
	Version = 2
)

// Report is the unified run report. Scalar roll-ups (Engine, Attack,
// PhasesMS) are derived views over the Metrics snapshot and span tree for
// easy consumption; Metrics remains the complete record.
type Report struct {
	// Schema is always "microdata/run-report"; Version is the schema
	// version of this document.
	Schema  string `json:"schema"`
	Version int    `json:"version"`

	// Command and Mode identify the producing invocation.
	Command string `json:"command"`
	Mode    string `json:"mode,omitempty"`
	// Start and DurationMS bracket the run's wall clock.
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`

	// Engine and Attack are counter roll-ups; omitted when the run never
	// touched the corresponding subsystem.
	Engine *EngineSummary `json:"engine,omitempty"`
	Attack *AttackSummary `json:"attack,omitempty"`
	// PhasesMS sums, per span name, the recorded span durations — the
	// per-phase wall-clock table -enginestats prints, machine-readable.
	PhasesMS map[string]float64 `json:"phases_ms,omitempty"`
	// Progress is the final progress-tracker tree (totals of every live
	// tracker plus finished-children aggregates).
	Progress *progress.Node `json:"progress,omitempty"`
	// Runtime holds the go.* runtime-health gauges (heap, GC pause total,
	// goroutines, scheduler latency) sampled from runtime/metrics at
	// report-assembly time — the same series the debug server's /metrics
	// endpoint exposes. Additive in schema v1.
	Runtime map[string]float64 `json:"runtime,omitempty"`
	// ResultPack links the sealed result pack this invocation wrote
	// (-result-out): its path and manifest digest, so the performance
	// record and the correctness record of one run reference each other.
	// New in schema v2.
	ResultPack *ResultPackRef `json:"result_pack,omitempty"`
	// Metrics is the full end-of-run snapshot of the process-wide registry.
	Metrics *telemetry.Snapshot `json:"metrics,omitempty"`
}

// EngineSummary rolls up the evaluation engine's counters (engine.* and
// lattice.* metric names).
type EngineSummary struct {
	NodesEvaluated int64   `json:"nodes_evaluated"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	RowsScanned    int64   `json:"rows_scanned"`
	PrecomputeMS   float64 `json:"precompute_ms"`
	EvalMS         float64 `json:"eval_ms"`
}

// AttackSummary rolls up the record-linkage adversary's counters (attack.*
// metric names).
type AttackSummary struct {
	RegionsProbed    int64   `json:"regions_probed"`
	CandidatesPruned int64   `json:"candidates_pruned"`
	CacheHits        int64   `json:"cache_hits"`
	CacheMisses      int64   `json:"cache_misses"`
	IndexBuildMS     float64 `json:"index_build_ms"`
}

// ResultPackRef identifies a sealed result pack by path and manifest
// digest (the SHA-256 over its canonical manifest-less encoding).
type ResultPackRef struct {
	Path   string `json:"path"`
	SHA256 string `json:"sha256"`
}

// Builder accumulates a run's identity; Finish snapshots the telemetry
// state into a Report.
type Builder struct {
	command    string
	mode       string
	start      time.Time
	resultPack *ResultPackRef
}

// SetResultPack links the result pack the run sealed (no-op with an empty
// digest, so callers can pass through unconditionally).
func (b *Builder) SetResultPack(path, sha256 string) {
	if sha256 == "" {
		return
	}
	b.resultPack = &ResultPackRef{Path: path, SHA256: sha256}
}

// Begin starts a report for one CLI invocation.
func Begin(command, mode string) *Builder {
	return &Builder{command: command, mode: mode, start: time.Now()}
}

// Finish assembles the report from the collector's spans and metrics (col
// may be nil) and the progress root (may be nil).
func (b *Builder) Finish(col *telemetry.Collector, root *progress.Tracker) *Report {
	r := &Report{
		Schema:     Schema,
		Version:    Version,
		Command:    b.command,
		Mode:       b.mode,
		Start:      b.start,
		DurationMS: float64(time.Since(b.start)) / float64(time.Millisecond),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Runtime:    telemetry.ReadRuntimeStats().Gauges(),
		ResultPack: b.resultPack,
	}
	if col != nil && col.Metrics != nil {
		snap := col.Metrics.Snapshot()
		r.Metrics = &snap
		r.Engine = engineSummary(snap)
		r.Attack = attackSummary(snap)
	}
	if col != nil && col.Tracer != nil {
		if phases := phaseDurations(col.Tracer); len(phases) > 0 {
			r.PhasesMS = phases
		}
	}
	if root != nil {
		r.Progress = root.Snapshot()
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// phaseDurations sums recorded span durations by name.
func phaseDurations(tr *telemetry.Tracer) map[string]float64 {
	out := map[string]float64{}
	for _, sp := range tr.Finished() {
		out[sp.Name] += float64(sp.Duration()) / float64(time.Millisecond)
	}
	return out
}

// engineSummary derives the engine roll-up from the metric names the
// engine registers (see engine.Metric*); nil when the engine never ran.
func engineSummary(s telemetry.Snapshot) *EngineSummary {
	if _, ok := s.Counters["engine.nodes.evaluated"]; !ok {
		return nil
	}
	return &EngineSummary{
		NodesEvaluated: s.Counters["engine.nodes.evaluated"],
		CacheHits:      s.Counters["engine.cache.hit"],
		CacheMisses:    s.Counters["engine.cache.miss"],
		RowsScanned:    s.Counters["engine.rows.scanned"],
		PrecomputeMS:   float64(s.Counters["engine.precompute.ns"]) / 1e6,
		EvalMS:         float64(s.Counters["engine.eval.total_ns"]) / 1e6,
	}
}

// attackSummary derives the adversary roll-up from the attack.* metric
// names; nil when no adversary was built.
func attackSummary(s telemetry.Snapshot) *AttackSummary {
	if _, ok := s.Counters["attack.index.build.ns"]; !ok {
		return nil
	}
	return &AttackSummary{
		RegionsProbed:    s.Counters["attack.regions.probed"],
		CandidatesPruned: s.Counters["attack.candidates.pruned"],
		CacheHits:        s.Counters["attack.cache.hit"],
		CacheMisses:      s.Counters["attack.cache.miss"],
		IndexBuildMS:     float64(s.Counters["attack.index.build.ns"]) / 1e6,
	}
}
