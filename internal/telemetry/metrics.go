package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a concurrent-safe collection of named counters, gauges and
// fixed-bucket histograms. Instrument lookup (get-or-create) takes a lock;
// hot paths should look instruments up once and hold the pointers — every
// instrument operation itself is lock-free.
//
// A registry may have a parent (see NewRunRegistry): instruments forward
// every update to the same-named instrument of the parent, so run-scoped
// registries aggregate into the process-wide one without double
// bookkeeping at the call sites.
type Registry struct {
	parent *Registry

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty standalone registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	var parent *Counter
	if r.parent != nil {
		parent = r.parent.Counter(name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{parent: parent}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	var parent *Gauge
	if r.parent != nil {
		parent = r.parent.Gauge(name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{parent: parent}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// given ascending bucket upper bounds (an implicit +Inf bucket is always
// appended). A second lookup of an existing histogram ignores the buckets
// argument.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	var parent *Histogram
	if r.parent != nil {
		parent = r.parent.Histogram(name, buckets)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(buckets, parent)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v      atomic.Int64
	parent *Counter
}

// Add increments the counter by d (and the parent's counter, if any).
func (c *Counter) Add(d int64) {
	c.v.Add(d)
	if c.parent != nil {
		c.parent.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// canonicalNaNBits is the bit pattern every NaN is normalized to before
// being stored in a Gauge or a Histogram sum (the quiet NaN with an empty
// payload). float64 has 2^52 distinct NaN encodings and arithmetic may
// propagate any of them; pinning one makes Snapshot round-trips and the
// exposition output deterministic regardless of which NaN arrived.
const canonicalNaNBits = 0x7FF8000000000000

// float64bits is math.Float64bits with NaN canonicalized.
func float64bits(v float64) uint64 {
	if v != v {
		return canonicalNaNBits
	}
	return math.Float64bits(v)
}

// Gauge is a last-write-wins float metric.
type Gauge struct {
	bits   atomic.Uint64
	parent *Gauge
}

// Set stores v (and forwards it to the parent gauge, if any). NaN values
// are stored with a canonical bit pattern.
func (g *Gauge) Set(v float64) {
	g.bits.Store(float64bits(v))
	if g.parent != nil {
		g.parent.Set(v)
	}
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets; bounds are upper
// bounds, observations land in the first bucket whose bound is >= value,
// with a final +Inf bucket catching the rest. Sum and count are tracked
// exactly (sum as integer nanos-style units via atomic adds on the bit
// pattern would lose exactness, so the sum is kept as an atomically-updated
// float via compare-and-swap).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	parent  *Histogram
}

func newHistogram(bounds []float64, parent *Histogram) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds:  b,
		buckets: make([]atomic.Int64, len(b)+1),
		parent:  parent,
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	if h.parent != nil {
		h.parent.Observe(v)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Instrument is one registered metric, as visited by Registry.Do: exactly
// one of Counter, Gauge and Histogram is non-nil.
type Instrument struct {
	// Name is the registered metric name.
	Name      string
	Counter   *Counter
	Gauge     *Gauge
	Histogram *Histogram
}

// Do visits every registered instrument in sorted name order — counters
// first, then gauges, then histograms, each group sorted by name. The
// order is guaranteed: /metrics exposition and WriteJSON output built on
// Do are byte-stable across runs for a given set of values. The registry
// lock is held during the walk; f must not register new instruments.
func (r *Registry) Do(f func(Instrument)) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range sortedKeys(r.counters) {
		f(Instrument{Name: name, Counter: r.counters[name]})
	}
	for _, name := range sortedKeys(r.gauges) {
		f(Instrument{Name: name, Gauge: r.gauges[name]})
	}
	for _, name := range sortedKeys(r.hists) {
		f(Instrument{Name: name, Histogram: r.hists[name]})
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot is a point-in-time, JSON-ready view of a registry. Map keys are
// emitted in sorted order by encoding/json, so serialization is
// deterministic for a given set of values.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is one histogram's frozen state. Buckets are cumulative
// counts per upper bound (Prometheus-style), with the +Inf bucket last.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets"`
}

// BucketCount is one histogram bucket: the upper bound (+Inf encoded as
// the string "+Inf" in JSON) and the cumulative count of observations <=
// that bound.
type BucketCount struct {
	UpperBound float64 `json:"-"`
	Count      int64   `json:"count"`
}

// MarshalJSON renders the bound explicitly so +Inf survives JSON (which
// has no infinity literal).
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b.UpperBound), "0"), ".")
	}
	return json.Marshal(struct {
		LE    string `json:"le"`
		Count int64  `json:"count"`
	}{le, b.Count})
}

// Snapshot returns the histogram's frozen state: exact count and sum, and
// cumulative Prometheus-style bucket counts with the +Inf bucket last.
func (h *Histogram) Snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
	cum := int64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		hs.Buckets = append(hs.Buckets, BucketCount{UpperBound: bound, Count: cum})
	}
	return hs
}

// Snapshot freezes the registry's current values, visiting instruments in
// Do's sorted order.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	r.Do(func(in Instrument) {
		switch {
		case in.Counter != nil:
			if s.Counters == nil {
				s.Counters = make(map[string]int64)
			}
			s.Counters[in.Name] = in.Counter.Value()
		case in.Gauge != nil:
			if s.Gauges == nil {
				s.Gauges = make(map[string]float64)
			}
			s.Gauges[in.Name] = in.Gauge.Value()
		case in.Histogram != nil:
			if s.Histograms == nil {
				s.Histograms = make(map[string]HistogramSnapshot)
			}
			s.Histograms[in.Name] = in.Histogram.Snapshot()
		}
	})
	return s
}

// WriteJSON writes the snapshot as indented JSON. Output is deterministic:
// encoding/json sorts map keys and the snapshot holds no timestamps.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// MergeInto copies every counter and gauge whose name starts with prefix
// into m, keyed by the name with the prefix stripped — the bridge from a
// run registry to an algorithm's Result.Stats map (see DESIGN.md,
// "Stat-key schema").
func (s Snapshot) MergeInto(m map[string]float64, prefix string) {
	if m == nil {
		return
	}
	for name, v := range s.Counters {
		if strings.HasPrefix(name, prefix) {
			m[name[len(prefix):]] = float64(v)
		}
	}
	for name, v := range s.Gauges {
		if strings.HasPrefix(name, prefix) {
			m[name[len(prefix):]] = v
		}
	}
}
