package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer allocates span ids and collects finished spans for export. It is
// safe for concurrent use; spans from the engine's worker pool and from
// the calling goroutine interleave freely.
type Tracer struct {
	now   func() time.Time
	epoch time.Time

	nextID  atomic.Uint64
	started atomic.Int64

	mu       sync.Mutex
	finished []*Span
}

func newTracer(now func() time.Time) *Tracer {
	return &Tracer{now: now}
}

func (t *Tracer) start(name string, parentID uint64, attrs []Attr) *Span {
	t.started.Add(1)
	return &Span{
		tracer:   t,
		ID:       t.nextID.Add(1),
		ParentID: parentID,
		Name:     name,
		start:    t.now(),
		attrs:    attrs,
	}
}

func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	t.finished = append(t.finished, s)
	t.mu.Unlock()
}

// Finished returns the recorded spans, ordered by (start time, id) so the
// export is deterministic regardless of which goroutine ended which span
// first.
func (t *Tracer) Finished() []*Span {
	t.mu.Lock()
	out := append([]*Span(nil), t.finished...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].start.Equal(out[j].start) {
			return out[i].start.Before(out[j].start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Open returns the number of spans started but not yet ended — zero after
// a well-instrumented run, even a cancelled one (spans are closed by
// defer).
func (t *Tracer) Open() int64 { return t.started.Load() - int64(len(t.Finished())) }

// chromeEvent is one trace_event entry; field order here fixes the JSON
// key order, keeping exports byte-stable for golden tests.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the finished spans in Chrome trace_event
// format ("X" complete events, microsecond timestamps relative to the
// tracer's epoch), loadable in chrome://tracing and Perfetto. Span and
// parent ids travel in args so the hierarchy survives tools that only
// nest by time containment.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Finished()
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		args := map[string]any{
			"span_id":   s.ID,
			"parent_id": s.ParentID,
		}
		for _, a := range s.Attrs() {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "span",
			Ph:   "X",
			Ts:   float64(s.Start().Sub(t.epoch).Nanoseconds()) / 1e3,
			Dur:  float64(s.Duration().Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  1,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// Depth returns the nesting depth of span s within the finished-span set
// (1 for a root). Broken parent links count from where they break.
func Depth(spans []*Span, s *Span) int {
	byID := make(map[uint64]*Span, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	depth := 1
	for s != nil && s.ParentID != 0 {
		s = byID[s.ParentID]
		if s != nil {
			depth++
		}
	}
	return depth
}

// MaxDepth returns the deepest nesting among the finished spans — the
// span-level count a trace viewer would show.
func MaxDepth(spans []*Span) int {
	max := 0
	for _, s := range spans {
		if d := Depth(spans, s); d > max {
			max = d
		}
	}
	return max
}

// SubtreeDurations sums, for each descendant NAME under root (root
// excluded), the total duration of spans with that name inside root's
// subtree — the per-phase wall-clock breakdown anonbench prints.
func SubtreeDurations(spans []*Span, root *Span) map[string]time.Duration {
	children := make(map[uint64][]*Span, len(spans))
	for _, s := range spans {
		children[s.ParentID] = append(children[s.ParentID], s)
	}
	out := map[string]time.Duration{}
	var walk func(id uint64)
	walk = func(id uint64) {
		for _, c := range children[id] {
			out[c.Name] += c.Duration()
			walk(c.ID)
		}
	}
	if root != nil {
		walk(root.ID)
	}
	return out
}

// String renders a span for debugging.
func (s *Span) String() string {
	if s == nil {
		return "<nil span>"
	}
	return fmt.Sprintf("span#%d(%s parent=%d dur=%v)", s.ID, s.Name, s.ParentID, s.Duration())
}
