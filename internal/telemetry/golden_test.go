package telemetry

import (
	"context"
	"strings"
	"testing"
)

// TestChromeTraceGolden pins the exact trace_event JSON for a small span
// tree under the fake clock: stable field order, microsecond timestamps
// relative to the epoch, args carrying span/parent ids and attributes with
// sorted keys.
func TestChromeTraceGolden(t *testing.T) {
	col := installFakeCollector(t)

	ctx, root := Start(context.Background(), "root", String("mode", "test")) // start 2ms
	ctx2, child := Start(ctx, "child", Int("k", 5))                          // start 3ms
	_, leaf := Start(ctx2, "leaf")                                           // start 4ms
	leaf.End()                                                               // end 5ms
	child.End()                                                              // end 6ms
	root.End()                                                               // end 7ms

	var buf strings.Builder
	if err := col.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `{
  "traceEvents": [
    {
      "name": "root",
      "cat": "span",
      "ph": "X",
      "ts": 1000,
      "dur": 5000,
      "pid": 1,
      "tid": 1,
      "args": {
        "mode": "test",
        "parent_id": 0,
        "span_id": 1
      }
    },
    {
      "name": "child",
      "cat": "span",
      "ph": "X",
      "ts": 2000,
      "dur": 3000,
      "pid": 1,
      "tid": 1,
      "args": {
        "k": 5,
        "parent_id": 1,
        "span_id": 2
      }
    },
    {
      "name": "leaf",
      "cat": "span",
      "ph": "X",
      "ts": 3000,
      "dur": 1000,
      "pid": 1,
      "tid": 1,
      "args": {
        "parent_id": 2,
        "span_id": 3
      }
    }
  ],
  "displayTimeUnit": "ms"
}
`
	if got := buf.String(); got != want {
		t.Errorf("chrome trace mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMetricsSnapshotGolden pins the exact snapshot JSON: sorted keys,
// cumulative Prometheus-style buckets, "+Inf" as the last bound.
// Instruments are registered in shuffled order on purpose — matching the
// golden bytes proves Registry.Do's sorted-order guarantee, which /metrics
// exposition and WriteJSON byte-stability are built on.
func TestMetricsSnapshotGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("ola.nodes_tagged").Set(12)
	reg.Counter("engine.cache.miss").Add(1)
	reg.Counter("engine.cache.hit").Add(3)
	h := reg.Histogram("engine.eval.ns", []float64{1e3, 1e6})
	h.Observe(500)
	h.Observe(250_000)
	h.Observe(2_000_000)

	var buf strings.Builder
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `{
  "counters": {
    "engine.cache.hit": 3,
    "engine.cache.miss": 1
  },
  "gauges": {
    "ola.nodes_tagged": 12
  },
  "histograms": {
    "engine.eval.ns": {
      "count": 3,
      "sum": 2250500,
      "buckets": [
        {
          "le": "1000",
          "count": 1
        },
        {
          "le": "1000000",
          "count": 2
        },
        {
          "le": "+Inf",
          "count": 3
        }
      ]
    }
  }
}
`
	if got := buf.String(); got != want {
		t.Errorf("metrics snapshot mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestEmptySnapshotGolden: an empty registry serializes to an empty object
// (omitempty on every section) so -metrics on a span-free run stays valid
// JSON.
func TestEmptySnapshotGolden(t *testing.T) {
	var buf strings.Builder
	if err := NewRegistry().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "{}\n" {
		t.Errorf("empty snapshot = %q, want {}\\n", got)
	}
}
