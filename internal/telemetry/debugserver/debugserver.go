// Package debugserver embeds an HTTP observability endpoint in the CLIs:
// a net/http server (stdlib only) exposing
//
//	/metrics            Prometheus text exposition of the active telemetry
//	                    registry plus progress.* gauges and process stats
//	/debug/pprof/*      the standard runtime profiling endpoints
//	/healthz            liveness ("ok")
//	/progress           the live progress-tracker tree as JSON
//	/runinfo            build info, command line, start time, runtime stats
//	/buildinfo          build provenance: toolchain, module sum, commit,
//	                    dirty flag, perf.Env fingerprint
//
// Start binds the listener immediately (addr ":0" picks a free port —
// Addr reports the resolved address) and serves in a background goroutine
// until Close. The server reads the process-wide telemetry.Active()
// collector and progress.Active() root at request time, so it can be
// started before either is installed and still serve whatever is live
// when scraped.
package debugserver

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"microdata/internal/telemetry"
	"microdata/internal/telemetry/export"
	"microdata/internal/telemetry/perf"
	"microdata/internal/telemetry/progress"
)

// Server is a running debug HTTP server. Construct with Start.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time
	// Command and Args annotate /runinfo; Start fills them from os.Args.
	command string
	args    []string
}

// Start binds addr (host:port; ":0" for an ephemeral port) and serves the
// debug endpoints until Close.
func Start(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debugserver: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, start: time.Now()}
	if len(os.Args) > 0 {
		s.command = os.Args[0]
		s.args = os.Args[1:]
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/runinfo", s.handleRunInfo)
	mux.HandleFunc("/buildinfo", s.handleBuildInfo)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	telemetry.L().Info("debugserver: listening", "addr", s.Addr())
	return s, nil
}

// Addr returns the server's resolved listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close shuts the server down, waiting briefly for in-flight requests.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves the active collector's registry in Prometheus text
// format, followed by progress.* gauges derived from the live tracker tree
// and the go.* runtime-health gauges (runtime/metrics sampled at scrape
// time: heap, GC pause, goroutines, scheduler latency), so a scrape is
// never empty.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", export.ContentType)
	if c := telemetry.Active(); c != nil && c.Metrics != nil {
		if err := export.WritePrometheus(w, c.Metrics.Snapshot()); err != nil {
			return
		}
	}
	extra := telemetry.Snapshot{Gauges: telemetry.ReadRuntimeStats().Gauges()}
	extra.Gauges["process.uptime.seconds"] = time.Since(s.start).Seconds()
	// Prometheus-conventional start gauge (process_start_time_seconds after
	// name sanitization): scrapers derive restarts and absolute uptime from
	// it without parsing /runinfo.
	extra.Gauges["process.start.time.seconds"] = float64(s.start.UnixNano()) / 1e9
	if root := progress.Active(); root != nil {
		flattenProgress(extra.Gauges, "progress", root.Snapshot())
	}
	export.WritePrometheus(w, extra)
}

// flattenProgress folds a tracker tree into prefixed gauges:
// progress.<name>.done / .total / .rate_hz / .eta_seconds.
func flattenProgress(g map[string]float64, prefix string, n *progress.Node) {
	if n == nil {
		return
	}
	p := prefix + "." + n.Name
	g[p+".done"] = float64(n.Done)
	g[p+".total"] = float64(n.Total)
	g[p+".rate_hz"] = n.RateHz
	if n.ETASeconds >= 0 {
		g[p+".eta_seconds"] = n.ETASeconds
	}
	for _, c := range n.Children {
		flattenProgress(g, p, c)
	}
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	root := progress.Active()
	if root == nil {
		enc.Encode(map[string]any{"enabled": false})
		return
	}
	enc.Encode(map[string]any{"enabled": true, "root": root.Snapshot()})
}

// runInfo is the /runinfo document.
type runInfo struct {
	Command      string    `json:"command"`
	Args         []string  `json:"args"`
	Pid          int       `json:"pid"`
	StartTime    time.Time `json:"start_time"`
	UptimeSec    float64   `json:"uptime_seconds"`
	GoVersion    string    `json:"go_version"`
	GOMAXPROCS   int       `json:"gomaxprocs"`
	NumGoroutine int       `json:"num_goroutine"`
	Module       string    `json:"module,omitempty"`
	VCSRevision  string    `json:"vcs_revision,omitempty"`
	Telemetry    bool      `json:"telemetry_enabled"`
	Progress     bool      `json:"progress_enabled"`
}

// buildInfo is the /buildinfo document: the provenance half of /runinfo,
// answering "which build is this process?" the way a ledger entry answers
// it for an artifact — toolchain, module, commit, dirty flag and the
// perf.Env fingerprint the trajectory ledger groups history by.
type buildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	// ModuleVersion and ModuleSum identify a released build ("(devel)" and
	// empty for source builds).
	ModuleVersion string `json:"module_version,omitempty"`
	ModuleSum     string `json:"module_sum,omitempty"`
	// VCSRevision/VCSTime stamp the commit; VCSModified marks a build from
	// a dirty tree, whose perf numbers no committed baseline can explain.
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified"`
	// EnvFingerprint is perf.CaptureEnv().Fingerprint() — the comparability
	// key this process's packs would carry in a trajectory ledger.
	EnvFingerprint string            `json:"env_fingerprint"`
	Settings       map[string]string `json:"settings,omitempty"`
}

func (s *Server) handleBuildInfo(w http.ResponseWriter, _ *http.Request) {
	info := buildInfo{
		GoVersion:      runtime.Version(),
		EnvFingerprint: perf.CaptureEnv().Fingerprint(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		info.Module = bi.Main.Path
		info.ModuleVersion = bi.Main.Version
		info.ModuleSum = bi.Main.Sum
		info.Settings = map[string]string{}
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				info.VCSRevision = kv.Value
			case "vcs.time":
				info.VCSTime = kv.Value
			case "vcs.modified":
				info.VCSModified = kv.Value == "true"
			}
			info.Settings[kv.Key] = kv.Value
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(info)
}

func (s *Server) handleRunInfo(w http.ResponseWriter, _ *http.Request) {
	info := runInfo{
		Command:      s.command,
		Args:         s.args,
		Pid:          os.Getpid(),
		StartTime:    s.start,
		UptimeSec:    time.Since(s.start).Seconds(),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumGoroutine: runtime.NumGoroutine(),
		Telemetry:    telemetry.Enabled(),
		Progress:     progress.Enabled(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		info.Module = bi.Main.Path
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				info.VCSRevision = kv.Value
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(info)
}
