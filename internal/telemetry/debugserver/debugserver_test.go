package debugserver

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"microdata/internal/telemetry"
	"microdata/internal/telemetry/export"
	"microdata/internal/telemetry/perf"
	"microdata/internal/telemetry/progress"
)

// startTestServer boots a server on an ephemeral port with a live collector
// and progress tree installed, restoring the process-wide state afterwards.
func startTestServer(t *testing.T) *Server {
	t.Helper()
	col := telemetry.NewCollector()
	col.Metrics.Counter("engine.nodes.evaluated").Add(123)
	col.Metrics.Histogram("engine.eval.ns", []float64{1e3, 1e6}).Observe(500)
	prev := telemetry.SetCollector(col)
	t.Cleanup(func() { telemetry.SetCollector(prev) })

	progress.Enable("test-run")
	t.Cleanup(progress.Disable)
	_, tr := progress.Start(context.Background(), "engine.evaluate_all", 100)
	tr.Add(40)

	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %q", url, resp.StatusCode, body)
	}
	return string(body), resp
}

func TestHealthz(t *testing.T) {
	s := startTestServer(t)
	body, _ := get(t, s.URL()+"/healthz")
	if body != "ok\n" {
		t.Errorf("/healthz = %q, want \"ok\\n\"", body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := startTestServer(t)
	body, resp := get(t, s.URL()+"/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != export.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, export.ContentType)
	}
	samples, err := export.Validate(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics failed exposition validation: %v\n%s", err, body)
	}
	if samples == 0 {
		t.Fatal("/metrics served zero samples")
	}
	for _, want := range []string{
		"engine_nodes_evaluated 123",
		"engine_eval_ns_bucket{le=\"1000\"} 1",
		"progress_test_run_engine_evaluate_all_done 40",
		"process_uptime_seconds",
		"go_goroutines",
		"go_heap_objects_bytes",
		"go_gc_pause_total_seconds",
		"go_sched_latency_p99_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestProgressEndpoint(t *testing.T) {
	s := startTestServer(t)
	body, resp := get(t, s.URL()+"/progress")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var doc struct {
		Enabled bool           `json:"enabled"`
		Root    *progress.Node `json:"root"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/progress is not JSON: %v\n%s", err, body)
	}
	if !doc.Enabled || doc.Root == nil || doc.Root.Name != "test-run" {
		t.Fatalf("/progress doc = %+v", doc)
	}
	if len(doc.Root.Children) != 1 || doc.Root.Children[0].Done != 40 {
		t.Errorf("/progress children = %+v", doc.Root.Children)
	}
}

func TestRunInfoEndpoint(t *testing.T) {
	s := startTestServer(t)
	body, _ := get(t, s.URL()+"/runinfo")
	var info runInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("/runinfo is not JSON: %v\n%s", err, body)
	}
	if info.Pid != os.Getpid() {
		t.Errorf("pid = %d, want %d", info.Pid, os.Getpid())
	}
	if info.GoVersion == "" || info.GOMAXPROCS < 1 || info.NumGoroutine < 1 {
		t.Errorf("runtime fields unset: %+v", info)
	}
	if !info.Telemetry || !info.Progress {
		t.Errorf("enabled flags = telemetry:%v progress:%v, want both true", info.Telemetry, info.Progress)
	}
}

func TestBuildInfoEndpoint(t *testing.T) {
	s := startTestServer(t)
	body, resp := get(t, s.URL()+"/buildinfo")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var info buildInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("/buildinfo is not JSON: %v\n%s", err, body)
	}
	if info.GoVersion != runtime.Version() {
		t.Errorf("go_version = %q, want %q", info.GoVersion, runtime.Version())
	}
	// The fingerprint must match a fresh capture (both exclude the commit),
	// tying the running process to the ledger's comparability key.
	if want := perf.CaptureEnv().Fingerprint(); info.EnvFingerprint != want {
		t.Errorf("env_fingerprint = %q, want %q", info.EnvFingerprint, want)
	}
	// Under `go test` there is a build info block but usually no VCS stamp;
	// the document must still be well-formed with the module path set.
	if info.Module == "" {
		t.Errorf("module unset: %+v", info)
	}
}

func TestProcessStartTimeGauge(t *testing.T) {
	s := startTestServer(t)
	body, _ := get(t, s.URL()+"/metrics")
	var val float64
	for _, line := range strings.Split(body, "\n") {
		if v, ok := strings.CutPrefix(line, "process_start_time_seconds "); ok {
			if _, err := fmt.Sscanf(v, "%g", &val); err != nil {
				t.Fatalf("unparseable gauge line %q: %v", line, err)
			}
		}
	}
	if val == 0 {
		t.Fatalf("/metrics lacks process_start_time_seconds:\n%s", body)
	}
	now := float64(time.Now().UnixNano()) / 1e9
	if val > now || now-val > 300 {
		t.Errorf("process_start_time_seconds = %v, now = %v — not a recent start", val, now)
	}
}

func TestPprofEndpoints(t *testing.T) {
	s := startTestServer(t)
	if body, _ := get(t, s.URL()+"/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline returned empty body")
	}
	if body, _ := get(t, s.URL()+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index missing profile listing")
	}
}

// TestMetricsWithoutCollector: a scrape with neither collector nor progress
// root still serves the process-level gauges, never an empty document.
func TestMetricsWithoutCollector(t *testing.T) {
	prev := telemetry.SetCollector(nil)
	t.Cleanup(func() { telemetry.SetCollector(prev) })
	progress.Disable()

	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	body, _ := get(t, s.URL()+"/metrics")
	if samples, err := export.Validate(strings.NewReader(body)); err != nil || samples == 0 {
		t.Fatalf("bare /metrics: samples=%d err=%v\n%s", samples, err, body)
	}
	if !strings.Contains(body, "go_gomaxprocs") {
		t.Errorf("bare /metrics missing process gauges:\n%s", body)
	}
}

func TestCloseStopsServing(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := s.URL()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 2 * time.Second}
	if _, err := client.Get(url + "/healthz"); err == nil {
		t.Error("server still serving after Close")
	}
}
