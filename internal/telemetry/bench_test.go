package telemetry

import (
	"context"
	"testing"
)

// BenchmarkStartDisabled measures the cost of an instrumentation site when
// no Collector is installed — the ISSUE budget is ~1–2 ns (one atomic
// load) so always-on instrumentation is free in production runs.
func BenchmarkStartDisabled(b *testing.B) {
	prev := SetCollector(nil)
	defer SetCollector(prev)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "bench")
		sp.End()
	}
}

// BenchmarkStartEndEnabled measures a full span lifecycle with a Collector
// installed. The collector is replaced periodically so the finished-span
// buffer does not grow with b.N.
func BenchmarkStartEndEnabled(b *testing.B) {
	prev := SetCollector(NewCollector())
	defer SetCollector(prev)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%(1<<15) == 0 {
			SetCollector(NewCollector())
		}
		_, sp := Start(ctx, "bench")
		sp.End()
	}
}

// BenchmarkCounterAdd measures the hot-path cost with the instrument
// pointer held, as the engine does (one atomic add).
func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterAddParented adds one forwarding hop, the run-registry →
// collector-registry path used when -metrics is active.
func BenchmarkCounterAddParented(b *testing.B) {
	parent := NewRegistry()
	child := NewRegistry()
	child.parent = parent
	c := child.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve measures the eval-latency histogram path:
// bucket search + two atomic adds + CAS float sum.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1_000_000))
	}
}

// BenchmarkRegistryLookup measures get-or-create by name — the path
// instrumentation sites should hoist out of loops.
func BenchmarkRegistryLookup(b *testing.B) {
	reg := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Counter("engine.nodes.evaluated")
	}
}
