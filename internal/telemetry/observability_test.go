package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// TestNaNCanonicalized: whatever NaN bit pattern arrives (quiet, signaling
// payloads, negative sign), Gauge.Set and Histogram.Observe store the one
// canonical encoding, so snapshots and expositions are deterministic.
func TestNaNCanonicalized(t *testing.T) {
	nans := []uint64{
		0x7FF8000000000000, // canonical quiet NaN
		0x7FF8000000000042, // quiet NaN, nonzero payload
		0x7FF0000000000001, // signaling NaN
		0xFFF8000000000001, // negative quiet NaN
		0xFFFFFFFFFFFFFFFF, // all-ones NaN
	}
	reg := NewRegistry()
	for _, bits := range nans {
		v := math.Float64frombits(bits)
		if !math.IsNaN(v) {
			t.Fatalf("0x%X is not a NaN encoding", bits)
		}
		g := reg.Gauge("g")
		g.Set(v)
		if got := g.bits.Load(); got != canonicalNaNBits {
			t.Errorf("Gauge.Set(NaN 0x%X) stored 0x%X, want canonical 0x%X",
				bits, got, canonicalNaNBits)
		}
		h := reg.Histogram("h.nan", nil)
		h.Observe(v)
		if got := h.sumBits.Load(); got != canonicalNaNBits {
			t.Errorf("Histogram sum after NaN 0x%X = 0x%X, want canonical 0x%X",
				bits, got, canonicalNaNBits)
		}
	}
	// Once NaN, arithmetic keeps the sum NaN — and still canonical.
	h := reg.Histogram("h.nan", nil)
	h.Observe(5)
	if got := h.sumBits.Load(); got != canonicalNaNBits {
		t.Errorf("NaN sum + 5 = 0x%X, want canonical NaN", got)
	}
}

// TestRegistryDoOrder pins Do's visit contract: counters, then gauges, then
// histograms, each group in sorted name order, regardless of registration
// order — the guarantee /metrics and WriteJSON byte-stability rests on.
func TestRegistryDoOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("z.gauge")
	reg.Counter("b.count")
	reg.Histogram("m.hist", []float64{1})
	reg.Counter("a.count")
	reg.Gauge("a.gauge")
	reg.Histogram("a.hist", nil)

	var names []string
	var kinds []string
	reg.Do(func(in Instrument) {
		names = append(names, in.Name)
		switch {
		case in.Counter != nil:
			kinds = append(kinds, "counter")
		case in.Gauge != nil:
			kinds = append(kinds, "gauge")
		case in.Histogram != nil:
			kinds = append(kinds, "histogram")
		default:
			t.Errorf("instrument %q has no value", in.Name)
		}
	})
	wantNames := []string{"a.count", "b.count", "a.gauge", "z.gauge", "a.hist", "m.hist"}
	wantKinds := []string{"counter", "counter", "gauge", "gauge", "histogram", "histogram"}
	if len(names) != len(wantNames) {
		t.Fatalf("visited %d instruments, want %d", len(names), len(wantNames))
	}
	for i := range wantNames {
		if names[i] != wantNames[i] || kinds[i] != wantKinds[i] {
			t.Errorf("visit %d = %s %q, want %s %q", i, kinds[i], names[i], wantKinds[i], wantNames[i])
		}
	}
}

// TestConcurrentSnapshotInvariants snapshots a registry while GOMAXPROCS
// writers hammer it — run under -race in CI. Each snapshot must satisfy:
// counter values never decrease across consecutive snapshots, histogram
// buckets are cumulative non-decreasing with the +Inf bucket covering at
// least the count read at snapshot start.
func TestConcurrentSnapshotInvariants(t *testing.T) {
	reg := NewRegistry()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("c")
			h := reg.Histogram("h", []float64{10, 100, 1000})
			g := reg.Gauge("g")
			for i := 0; !stop.Load(); i++ {
				c.Inc()
				h.Observe(float64(i % 2000))
				g.Set(float64(i))
			}
		}()
	}

	var prevCounter int64
	for i := 0; i < 200; i++ {
		s := reg.Snapshot()
		if c, ok := s.Counters["c"]; ok {
			if c < prevCounter {
				t.Fatalf("counter went backwards: %d after %d", c, prevCounter)
			}
			prevCounter = c
		}
		if h, ok := s.Histograms["h"]; ok {
			var prev int64
			for bi, b := range h.Buckets {
				if b.Count < prev {
					t.Fatalf("bucket %d cumulative count %d < previous bucket %d", bi, b.Count, prev)
				}
				prev = b.Count
			}
			// Count is read before the buckets, so the +Inf bucket saw at
			// least as many observations.
			if last := h.Buckets[len(h.Buckets)-1].Count; last < h.Count {
				t.Fatalf("+Inf bucket %d < count %d", last, h.Count)
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	// Quiescent: totals line up exactly.
	s := reg.Snapshot()
	h := s.Histograms["h"]
	if last := h.Buckets[len(h.Buckets)-1].Count; last != h.Count {
		t.Errorf("quiescent +Inf bucket %d != count %d", last, h.Count)
	}
	if s.Counters["c"] != h.Count {
		t.Errorf("quiescent counter %d != histogram count %d", s.Counters["c"], h.Count)
	}
}
