package progress

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances deterministically so rate and ETA math is exact.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func withFakeClock(t *testing.T) *fakeClock {
	t.Helper()
	c := &fakeClock{now: time.Unix(1000, 0)}
	prev := timeNow
	timeNow = c.Now
	t.Cleanup(func() { timeNow = prev; Disable() })
	return c
}

func TestDisabledStartReturnsNil(t *testing.T) {
	Disable()
	ctx, tr := Start(context.Background(), "work", 100)
	if tr != nil {
		t.Fatalf("Start with no root = %v, want nil", tr)
	}
	if FromContext(ctx) != nil {
		t.Fatal("disabled Start should not thread a tracker through the context")
	}
	// Every method must be a no-op on nil.
	tr.Add(1)
	tr.SetTotal(5)
	tr.AddTotal(5)
	tr.Finish()
	if tr.Done() != 0 || tr.Total() != -1 || tr.Name() != "" || tr.Snapshot() != nil {
		t.Fatal("nil tracker accessors should return zero values")
	}
}

func TestTreeParenting(t *testing.T) {
	withFakeClock(t)
	root := Enable("root")
	ctx, a := Start(context.Background(), "a", 10)
	_, b := Start(ctx, "b", 4) // parents to a via ctx
	_, c := Start(context.Background(), "c", -1)

	a.Add(3)
	b.Add(4)
	c.Add(7)

	snap := root.Snapshot()
	if len(snap.Children) != 2 {
		t.Fatalf("root has %d children, want 2 (a, c)", len(snap.Children))
	}
	na := snap.Children[0]
	if na.Name != "a" || na.Done != 3 || na.Total != 10 {
		t.Fatalf("child a = %+v", na)
	}
	if len(na.Children) != 1 || na.Children[0].Name != "b" || na.Children[0].Done != 4 {
		t.Fatalf("a's children = %+v", na.Children)
	}
	if snap.Children[1].Name != "c" || snap.Children[1].Total != -1 {
		t.Fatalf("child c = %+v", snap.Children[1])
	}
}

func TestFinishDetachesAndAggregates(t *testing.T) {
	withFakeClock(t)
	root := Enable("root")
	for i := 0; i < 1000; i++ {
		_, tr := Start(context.Background(), "batch", 5)
		tr.Add(5)
		tr.Finish()
		tr.Finish() // idempotent
	}
	snap := root.Snapshot()
	if len(snap.Children) != 0 {
		t.Fatalf("finished children should detach; tree still holds %d", len(snap.Children))
	}
	if snap.FinishedChildren != 1000 || snap.FinishedChildrenDone != 5000 {
		t.Fatalf("aggregate = %d children / %d done, want 1000 / 5000",
			snap.FinishedChildren, snap.FinishedChildrenDone)
	}
}

func TestRateAndETA(t *testing.T) {
	clock := withFakeClock(t)
	Enable("root")
	_, tr := Start(context.Background(), "work", 100)

	// First snapshot primes the sampler.
	tr.Snapshot()
	// 10 units/second over two seconds.
	clock.Advance(time.Second)
	tr.Add(10)
	tr.Snapshot()
	clock.Advance(time.Second)
	tr.Add(10)
	n := tr.Snapshot()

	if n.RateHz < 9 || n.RateHz > 11 {
		t.Fatalf("smoothed rate = %v, want ~10/s", n.RateHz)
	}
	// 80 remaining at ~10/s.
	if n.ETASeconds < 7 || n.ETASeconds > 9 {
		t.Fatalf("ETA = %vs, want ~8s", n.ETASeconds)
	}
	if got := n.Fraction(); got != 0.2 {
		t.Fatalf("fraction = %v, want 0.2", got)
	}
}

func TestUnknownTotalHasNoETA(t *testing.T) {
	clock := withFakeClock(t)
	Enable("root")
	_, tr := Start(context.Background(), "work", -1)
	tr.Snapshot()
	clock.Advance(time.Second)
	tr.Add(5)
	n := tr.Snapshot()
	if n.ETASeconds != -1 {
		t.Fatalf("unknown-total ETA = %v, want -1", n.ETASeconds)
	}
	if n.Fraction() != -1 {
		t.Fatalf("unknown-total fraction = %v, want -1", n.Fraction())
	}
	if n.RateHz <= 0 {
		t.Fatalf("rate should still be reported, got %v", n.RateHz)
	}
}

func TestAddTotalStages(t *testing.T) {
	withFakeClock(t)
	Enable("root")
	_, tr := Start(context.Background(), "stages", 10)
	tr.AddTotal(7)
	if got := tr.Total(); got != 17 {
		t.Fatalf("total after AddTotal = %d, want 17", got)
	}
	_, unk := Start(context.Background(), "unknown", -1)
	unk.AddTotal(3)
	if got := unk.Total(); got != 3 {
		t.Fatalf("unknown total after AddTotal = %d, want 3", got)
	}
}

func TestConcurrentAdd(t *testing.T) {
	withFakeClock(t)
	Enable("root")
	ctx, tr := Start(context.Background(), "work", 10000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Add(1)
			}
			_, child := Start(ctx, "child", 10)
			child.Add(10)
			child.Finish()
		}()
	}
	// Snapshot concurrently with the adders.
	for i := 0; i < 50; i++ {
		tr.Snapshot()
	}
	wg.Wait()
	if got := tr.Done(); got != 8000 {
		t.Fatalf("done = %d, want 8000", got)
	}
	snap := tr.Snapshot()
	if snap.FinishedChildren != 8 {
		t.Fatalf("finished children = %d, want 8", snap.FinishedChildren)
	}
}

func TestRendererFrames(t *testing.T) {
	withFakeClock(t)
	root := Enable("root")
	_, tr := Start(context.Background(), "sweep", 50)
	tr.Add(25)

	var buf strings.Builder
	r := NewRenderer(&buf, root, time.Hour) // frames driven manually
	r.Frame()
	first := buf.String()
	if !strings.Contains(first, "sweep") || !strings.Contains(first, "25/50") {
		t.Fatalf("frame missing tracker line:\n%s", first)
	}
	if strings.Contains(first, "\x1b[") {
		t.Fatalf("first frame should not erase anything:\n%q", first)
	}
	r.Frame()
	second := strings.TrimPrefix(buf.String(), first)
	if !strings.HasPrefix(second, "\x1b[") {
		t.Fatalf("second frame should start with an ANSI erase sequence:\n%q", second)
	}
	r.Stop()
	r.Stop() // idempotent
}

func TestRendererNilRoot(t *testing.T) {
	r := NewRenderer(&strings.Builder{}, nil, 0)
	r.Frame()
	r.Stop()
}
