// Package progress provides hierarchical progress tracking for the long
// sweeps this repo routinely runs: full-lattice evaluations, N=10k attack
// simulations, 19-experiment batches. A Tracker counts done/total work
// units, derives a throughput rate and an exponentially smoothed ETA, and
// links into a tree through the context — the experiment runner's
// per-experiment tracker parents the engine's per-batch tracker, which the
// terminal renderer and the debug server's /progress endpoint walk.
//
// Like the rest of internal/telemetry, progress tracking is DISABLED by
// default: with no root installed, Start returns a nil *Tracker after one
// atomic load, and every method is a no-op on a nil receiver, so the hot
// loops (engine.EvaluateAll, the attack shard workers) carry their
// tr.Add(1) sites at no measurable cost (see the package benchmarks).
//
// Finished trackers detach from their parent, folding their counts into
// the parent's finished-children aggregate — a search that calls
// EvaluateAll thousands of times does not grow the tree.
package progress

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// timeNow is the package clock; tests substitute a deterministic one.
var timeNow = time.Now

// etaAlpha is the smoothing factor of the exponential moving average over
// instantaneous throughput samples: high enough to follow phase changes
// within a few render frames, low enough that the ETA does not jitter.
const etaAlpha = 0.3

// Tracker counts progress of one operation. Total < 0 means unknown (the
// tracker still reports a rate, but no ETA). All methods are safe on a nil
// receiver and safe for concurrent use.
type Tracker struct {
	name  string
	total atomic.Int64 // -1 when unknown
	done  atomic.Int64
	start time.Time

	mu       sync.Mutex
	parent   *Tracker
	children []*Tracker
	finished bool
	end      time.Time
	// finishedChildren / finishedChildrenDone aggregate detached children
	// so the tree stays bounded over long sweeps.
	finishedChildren     int64
	finishedChildrenDone int64
	// rate smoothing state, updated by snapshots.
	lastSample time.Time
	lastDone   int64
	ewmaRate   float64 // units/s, 0 until the second sample
}

// root is the installed root tracker; nil means progress tracking is
// disabled and Start hands out nil trackers.
var root atomic.Pointer[Tracker]

// Enable installs (and returns) a fresh root tracker with the given name.
// Subsequent Start calls without a context-carried parent attach to it.
func Enable(name string) *Tracker {
	t := newTracker(name, -1, nil)
	root.Store(t)
	return t
}

// Disable removes the root tracker; Start reverts to handing out nil.
func Disable() { root.Store(nil) }

// Active returns the installed root tracker, or nil when disabled.
func Active() *Tracker { return root.Load() }

// Enabled reports whether a root tracker is installed — one atomic load,
// cheap enough to guard any hot-path bookkeeping.
func Enabled() bool { return root.Load() != nil }

func newTracker(name string, total int64, parent *Tracker) *Tracker {
	t := &Tracker{name: name, start: timeNow(), parent: parent}
	t.total.Store(total)
	return t
}

type ctxKey struct{}

// Start opens a child tracker under the tracker carried by ctx (or under
// the installed root when ctx carries none) and returns a context carrying
// it for nested Starts. total < 0 means unknown. When progress tracking is
// disabled it returns the context unchanged and a nil tracker after a
// single atomic load — the no-op fast path the hot loops rely on.
func Start(ctx context.Context, name string, total int) (context.Context, *Tracker) {
	r := root.Load()
	if r == nil {
		return ctx, nil
	}
	parent := r
	if p, ok := ctx.Value(ctxKey{}).(*Tracker); ok && p != nil {
		parent = p
	}
	t := newTracker(name, int64(total), parent)
	parent.mu.Lock()
	parent.children = append(parent.children, t)
	parent.mu.Unlock()
	return context.WithValue(ctx, ctxKey{}, t), t
}

// FromContext returns the tracker carried by ctx, or nil.
func FromContext(ctx context.Context) *Tracker {
	t, _ := ctx.Value(ctxKey{}).(*Tracker)
	return t
}

// Name returns the tracker's name ("" on nil).
func (t *Tracker) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Add records d completed work units.
func (t *Tracker) Add(d int) {
	if t == nil {
		return
	}
	t.done.Add(int64(d))
}

// Done returns the completed work units.
func (t *Tracker) Done() int64 {
	if t == nil {
		return 0
	}
	return t.done.Load()
}

// Total returns the expected work units, -1 when unknown.
func (t *Tracker) Total() int64 {
	if t == nil {
		return -1
	}
	return t.total.Load()
}

// SetTotal replaces the expected total (use when the workload size becomes
// known mid-run); n < 0 marks it unknown.
func (t *Tracker) SetTotal(n int) {
	if t == nil {
		return
	}
	t.total.Store(int64(n))
}

// AddTotal grows the expected total by d — multi-stage operations announce
// each stage as its size becomes known. On an unknown total the tracker
// starts counting from zero.
func (t *Tracker) AddTotal(d int) {
	if t == nil {
		return
	}
	for {
		old := t.total.Load()
		next := old + int64(d)
		if old < 0 {
			next = int64(d)
		}
		if t.total.CompareAndSwap(old, next) {
			return
		}
	}
}

// Finish marks the tracker complete and detaches it from its parent,
// folding its counts into the parent's finished-children aggregate so long
// sweeps do not grow the tree. Safe to call more than once.
func (t *Tracker) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.end = timeNow()
	parent := t.parent
	t.mu.Unlock()
	if parent == nil {
		return
	}
	parent.mu.Lock()
	for i, c := range parent.children {
		if c == t {
			parent.children = append(parent.children[:i], parent.children[i+1:]...)
			break
		}
	}
	parent.finishedChildren++
	parent.finishedChildrenDone += t.done.Load()
	parent.mu.Unlock()
}

// Node is one tracker's point-in-time state, with its live children — the
// JSON document /progress serves and the renderer walks.
type Node struct {
	// Name identifies the operation.
	Name string `json:"name"`
	// Done and Total count work units; Total is -1 when unknown.
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
	// ElapsedSeconds is wall time since the tracker started (to its finish
	// time once finished).
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// RateHz is the smoothed throughput in work units per second.
	RateHz float64 `json:"rate_hz"`
	// ETASeconds estimates the remaining time; -1 when unknown (no total,
	// or no throughput observed yet).
	ETASeconds float64 `json:"eta_seconds"`
	// Finished reports whether Finish was called.
	Finished bool `json:"finished"`
	// FinishedChildren counts children that completed and detached;
	// FinishedChildrenDone sums their completed work units.
	FinishedChildren     int64 `json:"finished_children,omitempty"`
	FinishedChildrenDone int64 `json:"finished_children_done,omitempty"`
	// Children are the live (unfinished) child trackers.
	Children []*Node `json:"children,omitempty"`
}

// Fraction returns completion in [0,1], or -1 when the total is unknown.
func (n *Node) Fraction() float64 {
	if n.Total < 0 {
		return -1
	}
	if n.Total == 0 {
		return 1
	}
	f := float64(n.Done) / float64(n.Total)
	if f > 1 {
		f = 1
	}
	return f
}

// Snapshot freezes the tracker subtree. Each call feeds the tracker's
// rate-smoothing state, so periodic snapshots (the renderer's frames, the
// debug server's scrapes) sharpen the ETA; a nil tracker returns nil.
func (t *Tracker) Snapshot() *Node {
	if t == nil {
		return nil
	}
	now := timeNow()
	done := t.done.Load()

	t.mu.Lock()
	end := now
	if t.finished {
		end = t.end
	}
	elapsed := end.Sub(t.start)
	// Smooth the instantaneous rate over snapshot intervals; guard against
	// sub-millisecond intervals, which produce noise, not signal.
	if !t.finished {
		if t.lastSample.IsZero() {
			t.lastSample, t.lastDone = now, done
		} else if dt := now.Sub(t.lastSample); dt >= time.Millisecond {
			inst := float64(done-t.lastDone) / dt.Seconds()
			if t.ewmaRate == 0 {
				t.ewmaRate = inst
			} else {
				t.ewmaRate = etaAlpha*inst + (1-etaAlpha)*t.ewmaRate
			}
			t.lastSample, t.lastDone = now, done
		}
	}
	n := &Node{
		Name:                 t.name,
		Done:                 done,
		Total:                t.total.Load(),
		ElapsedSeconds:       elapsed.Seconds(),
		RateHz:               t.ewmaRate,
		ETASeconds:           -1,
		Finished:             t.finished,
		FinishedChildren:     t.finishedChildren,
		FinishedChildrenDone: t.finishedChildrenDone,
	}
	children := append([]*Tracker(nil), t.children...)
	t.mu.Unlock()

	// Fall back to the overall rate until smoothing has two samples.
	rate := n.RateHz
	if rate == 0 && elapsed > 0 {
		rate = float64(done) / elapsed.Seconds()
		n.RateHz = rate
	}
	if total := n.Total; total >= 0 && !n.Finished && rate > 0 {
		remaining := total - done
		if remaining < 0 {
			remaining = 0
		}
		n.ETASeconds = float64(remaining) / rate
	}
	for _, c := range children {
		n.Children = append(n.Children, c.Snapshot())
	}
	return n
}
