package progress

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// DefaultInterval is the renderer's frame interval: fast enough to feel
// live, slow enough that a full-lattice sweep spends nothing measurable on
// redrawing.
const DefaultInterval = 200 * time.Millisecond

// Renderer redraws a tracker tree in place on an ANSI terminal: one line
// per live tracker with a bar, done/total, smoothed rate and ETA. Frames
// are throttled to the configured interval. Construct with NewRenderer and
// stop with Stop; the final frame is left on screen followed by a newline.
type Renderer struct {
	w        io.Writer
	root     *Tracker
	interval time.Duration

	mu        sync.Mutex
	lastLines int

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewRenderer starts a renderer goroutine drawing root's tree to w every
// interval (DefaultInterval when <= 0). A nil root yields a renderer whose
// Stop is a no-op, so call sites need no conditionals.
func NewRenderer(w io.Writer, root *Tracker, interval time.Duration) *Renderer {
	if interval <= 0 {
		interval = DefaultInterval
	}
	r := &Renderer{
		w: w, root: root, interval: interval,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	if root == nil {
		close(r.done)
		return r
	}
	go r.loop()
	return r
}

func (r *Renderer) loop() {
	defer close(r.done)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.Frame()
		case <-r.stop:
			return
		}
	}
}

// Stop halts the render loop, draws one final frame and moves the cursor
// past it. Safe to call more than once.
func (r *Renderer) Stop() {
	r.stopOnce.Do(func() {
		close(r.stop)
		<-r.done
		if r.root != nil {
			r.Frame()
			r.mu.Lock()
			r.lastLines = 0
			r.mu.Unlock()
		}
	})
}

// Frame draws one frame now: the previous frame's lines are erased with an
// ANSI cursor-up + clear-to-end sequence, then the current tree is drawn.
func (r *Renderer) Frame() {
	if r.root == nil {
		return
	}
	snap := r.root.Snapshot()
	var sb strings.Builder
	writeNode(&sb, snap, 0)
	lines := strings.Count(sb.String(), "\n")

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lastLines > 0 {
		// Cursor to the start of the previous frame, clear to screen end.
		fmt.Fprintf(r.w, "\x1b[%dF\x1b[J", r.lastLines)
	}
	io.WriteString(r.w, sb.String())
	r.lastLines = lines
}

const barWidth = 24

// writeNode renders one tracker line and recurses over the live children.
func writeNode(sb *strings.Builder, n *Node, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	frac := n.Fraction()
	switch {
	case n.Finished:
		fmt.Fprintf(sb, "%-28s done (%d in %s)", n.Name, n.Done, fmtDuration(n.ElapsedSeconds))
	case frac >= 0:
		filled := int(frac * barWidth)
		fmt.Fprintf(sb, "%-28s [%s%s] %3.0f%% %d/%d", n.Name,
			strings.Repeat("=", filled), strings.Repeat(" ", barWidth-filled),
			frac*100, n.Done, n.Total)
		if n.RateHz > 0 {
			fmt.Fprintf(sb, " %s/s", fmtRate(n.RateHz))
		}
		if n.ETASeconds >= 0 {
			fmt.Fprintf(sb, " eta %s", fmtDuration(n.ETASeconds))
		}
	default:
		fmt.Fprintf(sb, "%-28s %d done, %s elapsed", n.Name, n.Done, fmtDuration(n.ElapsedSeconds))
	}
	if n.FinishedChildren > 0 {
		fmt.Fprintf(sb, " (+%d sub-tasks finished)", n.FinishedChildren)
	}
	sb.WriteByte('\n')
	for _, c := range n.Children {
		writeNode(sb, c, depth+1)
	}
}

// fmtDuration renders seconds compactly: 4.2s, 1m03s, 2h07m.
func fmtDuration(s float64) string {
	if s < 0 {
		return "?"
	}
	d := time.Duration(s * float64(time.Second))
	switch {
	case d < time.Minute:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d < time.Hour:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	}
}

// fmtRate renders a throughput without false precision.
func fmtRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.1fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	case r >= 10:
		return fmt.Sprintf("%.0f", r)
	default:
		return fmt.Sprintf("%.2f", r)
	}
}
