package progress

import (
	"context"
	"testing"
)

// BenchmarkStartDisabled measures an instrumentation site with no root
// installed — the budget is the telemetry.Start bar from the spans layer
// (~1–2 ns, one atomic load), so the hot loops' progress hooks are free in
// production runs.
func BenchmarkStartDisabled(b *testing.B) {
	Disable()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, tr := Start(ctx, "bench", 100)
		tr.Finish()
	}
}

// BenchmarkNilAdd measures the per-unit cost on the disabled path: the
// tr.Add(1) the engine executes per lattice node when no one is watching.
func BenchmarkNilAdd(b *testing.B) {
	var tr *Tracker
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Add(1)
	}
}

// BenchmarkAddEnabled is the per-unit cost with a live tracker (one atomic
// add).
func BenchmarkAddEnabled(b *testing.B) {
	Enable("bench")
	defer Disable()
	_, tr := Start(context.Background(), "work", b.N)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Add(1)
	}
}

// BenchmarkStartFinishEnabled is the full child-tracker lifecycle under a
// live root — what EvaluateAll pays per batch when -progress is on.
func BenchmarkStartFinishEnabled(b *testing.B) {
	Enable("bench")
	defer Disable()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, tr := Start(ctx, "batch", 10)
		tr.Finish()
	}
}
