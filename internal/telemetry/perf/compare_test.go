package perf

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// packWith builds a single-benchmark pack with the given wall samples.
func packWith(name string, wall []float64) *Pack {
	return &Pack{
		Schema: Schema, Version: Version, Suite: "synthetic", Reps: len(wall),
		Benchmarks: []Benchmark{{
			Name: name,
			Metrics: map[string]Series{
				MetricWallNS: NewSeries("ns", wall),
			},
		}},
	}
}

func verdictOf(t *testing.T, d *Diff, bench, metric string) Verdict {
	t.Helper()
	for _, r := range d.Rows {
		if r.Benchmark == bench && r.Metric == metric {
			return r.Verdict
		}
	}
	t.Fatalf("no row for %s/%s in %+v", bench, metric, d.Rows)
	return ""
}

func TestCompareNoDrift(t *testing.T) {
	// ±10% jitter around 100 ms: well inside the 25% envelope.
	base := packWith("s/b", []float64{100e6, 102e6, 98e6, 101e6, 99e6})
	cur := packWith("s/b", []float64{108e6, 95e6, 104e6, 99e6, 102e6})
	d, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := verdictOf(t, d, "s/b", MetricWallNS); got != VerdictOK {
		t.Errorf("verdict = %s, want ok", got)
	}
	if !d.OK() {
		t.Errorf("diff not OK: %+v", d)
	}
}

func TestCompareRegression(t *testing.T) {
	base := packWith("s/b", []float64{100e6, 102e6, 98e6})
	cur := packWith("s/b", []float64{200e6, 205e6, 198e6}) // doubled
	d, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := verdictOf(t, d, "s/b", MetricWallNS); got != VerdictDrifted {
		t.Errorf("verdict = %s, want drifted", got)
	}
	if d.OK() || d.Drifted != 1 {
		t.Errorf("gate passed on a 2x regression: %+v", d)
	}
}

func TestCompareImprovement(t *testing.T) {
	base := packWith("s/b", []float64{200e6, 205e6, 198e6})
	cur := packWith("s/b", []float64{100e6, 102e6, 98e6})
	d, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := verdictOf(t, d, "s/b", MetricWallNS); got != VerdictImproved {
		t.Errorf("verdict = %s, want improved", got)
	}
	if !d.OK() || d.Improved != 1 {
		t.Errorf("improvement failed the gate: %+v", d)
	}
}

func TestCompareMADWidensEnvelope(t *testing.T) {
	// A very noisy baseline (MAD 50 ms on a 100 ms median): a +35% shift
	// that would trip the 25% relative envelope stays within 4·MAD.
	base := packWith("s/b", []float64{50e6, 100e6, 150e6, 40e6, 160e6})
	cur := packWith("s/b", []float64{135e6, 135e6, 135e6})
	d, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := verdictOf(t, d, "s/b", MetricWallNS); got != VerdictOK {
		t.Errorf("verdict = %s, want ok (MAD envelope)", got)
	}
}

func TestCompareAbsFloorShieldsMicrobenchmarks(t *testing.T) {
	// 200 µs -> 600 µs is 3x relative but under the 2 ms absolute floor.
	base := packWith("s/b", []float64{200e3, 210e3, 190e3})
	cur := packWith("s/b", []float64{600e3, 610e3, 590e3})
	d, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := verdictOf(t, d, "s/b", MetricWallNS); got != VerdictOK {
		t.Errorf("verdict = %s, want ok (abs floor)", got)
	}
	// Without the floor the same shift drifts.
	d, err = Compare(base, cur, CompareOptions{AbsFloor: map[string]float64{}})
	if err != nil {
		t.Fatal(err)
	}
	if got := verdictOf(t, d, "s/b", MetricWallNS); got != VerdictDrifted {
		t.Errorf("verdict without floor = %s, want drifted", got)
	}
}

func TestCompareNaNIsInvalid(t *testing.T) {
	base := packWith("s/b", []float64{100e6, math.NaN(), 98e6})
	cur := packWith("s/b", []float64{100e6, 101e6, 99e6})
	d, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := verdictOf(t, d, "s/b", MetricWallNS); got != VerdictInvalid {
		t.Errorf("NaN baseline verdict = %s, want invalid", got)
	}
	if d.OK() {
		t.Error("gate passed with a NaN median")
	}
	// NaN on the current side is equally invalid.
	d, err = Compare(cur, base, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := verdictOf(t, d, "s/b", MetricWallNS); got != VerdictInvalid {
		t.Errorf("NaN current verdict = %s, want invalid", got)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	// Zero baseline: relative envelope is zero, so only the absolute
	// floor separates noise from drift.
	base := packWith("s/b", []float64{0, 0, 0})
	within := packWith("s/b", []float64{1e6, 1e6, 1e6})    // under the 2 ms floor
	beyond := packWith("s/b", []float64{50e6, 50e6, 50e6}) // far past it
	d, err := Compare(base, within, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := verdictOf(t, d, "s/b", MetricWallNS); got != VerdictOK {
		t.Errorf("zero baseline within floor = %s, want ok", got)
	}
	if r := d.Rows[0]; !math.IsNaN(r.Ratio) {
		t.Errorf("ratio against zero baseline = %v, want NaN", r.Ratio)
	}
	d, err = Compare(base, beyond, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := verdictOf(t, d, "s/b", MetricWallNS); got != VerdictDrifted {
		t.Errorf("zero baseline past floor = %s, want drifted", got)
	}
}

func TestCompareMissingBenchmarkFailsGate(t *testing.T) {
	base := packWith("s/b", []float64{100e6})
	base.Benchmarks = append(base.Benchmarks, Benchmark{
		Name:    "s/dropped",
		Metrics: map[string]Series{MetricWallNS: NewSeries("ns", []float64{1e6})},
	})
	cur := packWith("s/b", []float64{100e6})
	d, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.OK() || len(d.Missing) != 1 || d.Missing[0] != "s/dropped" {
		t.Errorf("dropped benchmark not flagged: %+v", d)
	}
	// New benchmarks in cur are fine.
	d, err = Compare(cur, base, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK() {
		t.Errorf("new benchmark failed the gate: %+v", d)
	}
}

func TestCompareUngatedMetricsAreInfo(t *testing.T) {
	base := packWith("s/b", []float64{100e6})
	cur := packWith("s/b", []float64{100e6})
	// A 100x goroutine regression in an ungated metric must not gate.
	base.Benchmarks[0].Metrics[MetricGoroutines] = NewSeries("count", []float64{4})
	cur.Benchmarks[0].Metrics[MetricGoroutines] = NewSeries("count", []float64{400})
	d, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := verdictOf(t, d, "s/b", MetricGoroutines); got != VerdictInfo {
		t.Errorf("ungated verdict = %s, want info", got)
	}
	if !d.OK() {
		t.Errorf("info metric failed the gate: %+v", d)
	}
}

func TestDiffTableRendersDrift(t *testing.T) {
	base := packWith("s/b", []float64{100e6})
	cur := packWith("s/b", []float64{220e6})
	d, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	d.WriteTable(&buf, false)
	out := buf.String()
	for _, want := range []string{"s/b", "wall_ns", "drifted", "2.20x", "1 drifted"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestMedianMAD(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("median even = %v", got)
	}
	if got := Median(nil); !math.IsNaN(got) {
		t.Errorf("median empty = %v, want NaN", got)
	}
	if got := MAD([]float64{1, 1, 1}); got != 0 {
		t.Errorf("MAD constant = %v", got)
	}
	if got := MAD([]float64{1, 2, 9}); got != 1 {
		t.Errorf("MAD = %v, want 1", got)
	}
}
