package perf

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"microdata/internal/telemetry"
)

// The metric names every harness run records per benchmark. wall_ns and
// allocs are the gated pair (see DefaultGated); the rest are runtime
// health series recorded for trend analysis.
const (
	MetricWallNS     = "wall_ns"      // wall clock per repetition
	MetricAllocs     = "allocs"       // heap allocations per repetition
	MetricAllocBytes = "alloc_bytes"  // heap bytes allocated per repetition
	MetricGCPauseNS  = "gc_pause_ns"  // estimated GC pause time per repetition
	MetricGCCycles   = "gc_cycles"    // GC cycles per repetition
	MetricHeapBytes  = "heap_bytes"   // live heap at repetition end
	MetricGoroutines = "goroutines"   // goroutine count at repetition end
	MetricSchedP99NS = "sched_p99_ns" // scheduler latency p99 at repetition end
)

// BenchmarkSpec is one benchmark of a suite. Setup runs once, untimed, and
// returns the body the harness times; expensive fixtures (dataset
// generation, anonymization) belong in Setup so repetitions measure only
// the operation under test.
type BenchmarkSpec struct {
	Name  string
	Setup func(ctx context.Context) (func(ctx context.Context) error, error)
}

// SuiteSpec is a named set of benchmarks sharing a dataset fingerprint.
type SuiteSpec struct {
	Name string
	// DatasetHash/Seed/N/K describe the suite's primary input; they land
	// in the pack's environment fingerprint.
	DatasetHash string
	Seed        int64
	N, K        int
	Benchmarks  []BenchmarkSpec
}

// Options tunes a harness run.
type Options struct {
	// Reps is the number of timed repetitions per benchmark (default 5).
	Reps int
	// Warmup repetitions run before timing starts (default 1).
	Warmup int
	// Log, when non-nil, receives one progress line per benchmark.
	Log func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Reps <= 0 {
		o.Reps = 5
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	} else if o.Warmup == 0 {
		o.Warmup = 1
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	return o
}

// RunSuites runs one or more suites under the harness and assembles a
// single sealed pack. Benchmark names are prefixed with their suite name
// ("attack/prosecutor/datafly/indexed-serial"), so packs from different
// suite selections compare by name intersection. The environment
// fingerprint records the first suite's dataset parameters (suites built
// from the same generator draw share them).
func RunSuites(ctx context.Context, suites []SuiteSpec, opts Options) (*Pack, error) {
	opts = opts.withDefaults()
	if len(suites) == 0 {
		return nil, Invalidf("perf: no suites selected")
	}
	env := CaptureEnv()
	env.DatasetHash = suites[0].DatasetHash
	env.Seed = suites[0].Seed
	env.N = suites[0].N
	env.K = suites[0].K
	pack := &Pack{
		Schema:        Schema,
		Version:       Version,
		Suite:         joinSuiteNames(suites),
		Reps:          opts.Reps,
		CreatedUnixMS: time.Now().UnixMilli(),
		Env:           env,
	}
	for _, suite := range suites {
		for _, spec := range suite.Benchmarks {
			name := suite.Name + "/" + spec.Name
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			bench, err := runBenchmark(ctx, name, spec, opts)
			if err != nil {
				return nil, fmt.Errorf("perf: %s: %w", name, err)
			}
			pack.Benchmarks = append(pack.Benchmarks, bench)
			opts.Log("  %-48s wall %s  allocs %.0f", name,
				fmtNS(bench.Metrics[MetricWallNS].Median), bench.Metrics[MetricAllocs].Median)
		}
	}
	if err := pack.Seal(); err != nil {
		return nil, err
	}
	return pack, nil
}

func joinSuiteNames(suites []SuiteSpec) string {
	out := ""
	for i, s := range suites {
		if i > 0 {
			out += ","
		}
		out += s.Name
	}
	return out
}

// runBenchmark runs one benchmark: setup, warmup, then Reps timed
// repetitions, each bracketed by MemStats and runtime/metrics samples.
func runBenchmark(ctx context.Context, name string, spec BenchmarkSpec, opts Options) (Benchmark, error) {
	body, err := spec.Setup(ctx)
	if err != nil {
		return Benchmark{}, fmt.Errorf("setup: %w", err)
	}
	for i := 0; i < opts.Warmup; i++ {
		if err := body(ctx); err != nil {
			return Benchmark{}, fmt.Errorf("warmup: %w", err)
		}
	}
	samples := map[string][]float64{}
	for rep := 0; rep < opts.Reps; rep++ {
		if err := ctx.Err(); err != nil {
			return Benchmark{}, err
		}
		// A forced GC between repetitions keeps collector debt from one
		// repetition out of the next one's pause and alloc deltas.
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		rs0 := telemetry.ReadRuntimeStats()
		start := time.Now()
		err := body(ctx)
		wall := time.Since(start)
		if err != nil {
			return Benchmark{}, err
		}
		rs1 := telemetry.ReadRuntimeStats()
		runtime.ReadMemStats(&m1)

		add := func(metric string, v float64) { samples[metric] = append(samples[metric], v) }
		add(MetricWallNS, float64(wall.Nanoseconds()))
		add(MetricAllocs, float64(m1.Mallocs-m0.Mallocs))
		add(MetricAllocBytes, float64(m1.TotalAlloc-m0.TotalAlloc))
		add(MetricGCPauseNS, (rs1.GCPauseTotalSeconds-rs0.GCPauseTotalSeconds)*1e9)
		add(MetricGCCycles, rs1.GCCycles-rs0.GCCycles)
		add(MetricHeapBytes, rs1.HeapObjectsBytes)
		add(MetricGoroutines, rs1.Goroutines)
		add(MetricSchedP99NS, rs1.SchedLatencyP99Seconds*1e9)
	}
	bench := Benchmark{Name: name, Metrics: map[string]Series{}}
	for metric, s := range samples {
		bench.Metrics[metric] = NewSeries(metricUnit(metric), s)
	}
	return bench, nil
}

func metricUnit(metric string) string {
	switch metric {
	case MetricWallNS, MetricGCPauseNS, MetricSchedP99NS:
		return "ns"
	case MetricAllocBytes, MetricHeapBytes:
		return "bytes"
	default:
		return "count"
	}
}

func fmtNS(ns float64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
