package perf

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Verdict classifies one metric's change between two packs.
type Verdict string

const (
	// VerdictOK: within the noise envelope.
	VerdictOK Verdict = "ok"
	// VerdictImproved: significantly better (lower) than the baseline.
	VerdictImproved Verdict = "improved"
	// VerdictDrifted: significantly worse (higher) than the baseline.
	VerdictDrifted Verdict = "drifted"
	// VerdictInvalid: not comparable (NaN median on either side) — counted
	// as drift, since a benchmark that stops producing numbers is broken.
	VerdictInvalid Verdict = "invalid"
	// VerdictInfo: an ungated health metric, reported but never failing.
	VerdictInfo Verdict = "info"
)

// DefaultGated is the metric set whose drift fails the gate; the remaining
// series (GC pause, heap, goroutines, scheduler latency) are health
// context.
var DefaultGated = []string{MetricWallNS, MetricAllocs}

// CompareOptions tunes the significance test. A gated metric drifts when
// the current median exceeds the baseline median by more than the noise
// envelope max(RelThreshold·baseline, MADFactor·MAD(baseline), AbsFloor);
// it improves when it undercuts the baseline by the same margin.
type CompareOptions struct {
	// RelThreshold is the relative significance threshold (default 0.25:
	// ±25% of the baseline median is noise).
	RelThreshold float64
	// MADFactor scales the baseline's median absolute deviation into the
	// envelope (default 4) so noisy benchmarks get wider bands.
	MADFactor float64
	// AbsFloor maps metric name → absolute envelope floor, shielding
	// microbenchmarks whose run-to-run jitter is large relative to tiny
	// medians. Defaults: wall_ns 2e6 (2 ms), allocs 256.
	AbsFloor map[string]float64
	// Gated selects the metrics whose drift fails the gate (default
	// DefaultGated); everything else reports as info.
	Gated []string
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.RelThreshold <= 0 {
		o.RelThreshold = 0.25
	}
	if o.MADFactor <= 0 {
		o.MADFactor = 4
	}
	if o.AbsFloor == nil {
		o.AbsFloor = map[string]float64{MetricWallNS: 2e6, MetricAllocs: 256}
	}
	if o.Gated == nil {
		o.Gated = DefaultGated
	}
	return o
}

// MetricDiff is one (benchmark, metric) comparison row.
type MetricDiff struct {
	Benchmark string  `json:"benchmark"`
	Metric    string  `json:"metric"`
	Unit      string  `json:"unit,omitempty"`
	Base      float64 `json:"base_median"`
	BaseMAD   float64 `json:"base_mad"`
	Cur       float64 `json:"cur_median"`
	// Ratio is cur/base (NaN when base is zero).
	Ratio   float64 `json:"ratio"`
	Verdict Verdict `json:"verdict"`
}

// Diff is the full comparison of two packs.
type Diff struct {
	BaseSuite string       `json:"base_suite"`
	CurSuite  string       `json:"cur_suite"`
	Rows      []MetricDiff `json:"rows"`
	// Missing lists benchmarks present in the baseline but absent from the
	// current pack — a silently dropped benchmark fails the gate.
	Missing []string `json:"missing,omitempty"`
	// EnvChanges lists the fingerprint fields that differ between the
	// packs, one structured entry per field.
	EnvChanges []EnvChange `json:"env_changes,omitempty"`
	Drifted    int         `json:"drifted"`
	Improved   int         `json:"improved"`
}

// OK reports whether the gate passes: no drifted/invalid gated metrics and
// no missing benchmarks.
func (d *Diff) OK() bool { return d.Drifted == 0 && len(d.Missing) == 0 }

// Compare evaluates cur against base benchmark-by-benchmark. Benchmarks
// only in cur are ignored (new benchmarks are legal); benchmarks only in
// base are recorded as missing and fail the gate.
func Compare(base, cur *Pack, opts CompareOptions) (*Diff, error) {
	if base == nil || cur == nil {
		return nil, Invalidf("perf: compare: nil pack")
	}
	opts = opts.withDefaults()
	d := &Diff{BaseSuite: base.Suite, CurSuite: cur.Suite, EnvChanges: DiffEnv(base.Env, cur.Env)}
	gated := map[string]bool{}
	for _, m := range opts.Gated {
		gated[m] = true
	}
	for _, bb := range base.Benchmarks {
		cb := cur.Benchmark(bb.Name)
		if cb == nil {
			d.Missing = append(d.Missing, bb.Name)
			continue
		}
		for _, metric := range sortedMetricNames(bb.Metrics) {
			bs := bb.Metrics[metric]
			cs, ok := cb.Metrics[metric]
			if !ok {
				continue
			}
			row := MetricDiff{
				Benchmark: bb.Name, Metric: metric, Unit: bs.Unit,
				Base: bs.Median, BaseMAD: bs.MAD, Cur: cs.Median,
				Ratio: ratio(bs.Median, cs.Median),
			}
			if !gated[metric] {
				row.Verdict = VerdictInfo
			} else {
				row.Verdict = classify(bs, cs, metric, opts)
				switch row.Verdict {
				case VerdictDrifted, VerdictInvalid:
					d.Drifted++
				case VerdictImproved:
					d.Improved++
				}
			}
			d.Rows = append(d.Rows, row)
		}
	}
	return d, nil
}

// classify applies the noise-envelope test to one gated metric.
func classify(base, cur Series, metric string, opts CompareOptions) Verdict {
	if math.IsNaN(base.Median) || math.IsNaN(cur.Median) {
		return VerdictInvalid
	}
	envelope := opts.RelThreshold * math.Abs(base.Median)
	if mad := opts.MADFactor * base.MAD; !math.IsNaN(mad) && mad > envelope {
		envelope = mad
	}
	if floor := opts.AbsFloor[metric]; floor > envelope {
		envelope = floor
	}
	delta := cur.Median - base.Median
	switch {
	case delta > envelope:
		return VerdictDrifted
	case delta < -envelope:
		return VerdictImproved
	default:
		return VerdictOK
	}
}

func ratio(base, cur float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return cur / base
}

func sortedMetricNames(m map[string]Series) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// EnvChange is one differing environment-fingerprint field.
type EnvChange struct {
	Field string `json:"field"`
	Base  string `json:"base"`
	Cur   string `json:"cur"`
}

func (c EnvChange) String() string {
	return fmt.Sprintf("%s: %s -> %s", c.Field, orDash(c.Base), orDash(c.Cur))
}

// DiffEnv lists the fingerprint fields that differ between two
// environments, so callers can attribute apparent drift to a go-version,
// CPU or dataset change instead of a code change. GitRevision differences
// are included here (they matter for attribution display) even though
// Env.Fingerprint deliberately ignores them.
func DiffEnv(a, b Env) []EnvChange {
	var out []EnvChange
	diff := func(field, av, bv string) {
		if av != bv {
			out = append(out, EnvChange{Field: field, Base: av, Cur: bv})
		}
	}
	diff("go_version", a.GoVersion, b.GoVersion)
	diff("goos/goarch", a.GOOS+"/"+a.GOARCH, b.GOOS+"/"+b.GOARCH)
	diff("gomaxprocs", fmt.Sprint(a.GOMAXPROCS), fmt.Sprint(b.GOMAXPROCS))
	diff("num_cpu", fmt.Sprint(a.NumCPU), fmt.Sprint(b.NumCPU))
	diff("cpu_model", a.CPUModel, b.CPUModel)
	diff("git_revision", a.GitRevision, b.GitRevision)
	diff("dataset_hash", a.DatasetHash, b.DatasetHash)
	diff("n/k/seed", fmt.Sprintf("%d/%d/%d", a.N, a.K, a.Seed), fmt.Sprintf("%d/%d/%d", b.N, b.K, b.Seed))
	return out
}

// EnvChangeFields returns the comma-joined field names of a change list —
// the one-line summary the text renderers lead with.
func EnvChangeFields(changes []EnvChange) string {
	fields := make([]string, len(changes))
	for i, c := range changes {
		fields[i] = c.Field
	}
	return strings.Join(fields, ", ")
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// WriteTable renders the per-metric drift table. With verbose false only
// gated and non-ok rows print; with verbose true every row prints.
func (d *Diff) WriteTable(w io.Writer, verbose bool) {
	if len(d.EnvChanges) > 0 {
		fmt.Fprintf(w, "env fingerprint differs in %d field(s): %s\n",
			len(d.EnvChanges), EnvChangeFields(d.EnvChanges))
		for _, ch := range d.EnvChanges {
			fmt.Fprintf(w, "  env %s\n", ch)
		}
	}
	fmt.Fprintf(w, "%-48s %-12s %14s %14s %8s  %s\n",
		"benchmark", "metric", "base", "current", "ratio", "verdict")
	for _, r := range d.Rows {
		if !verbose && r.Verdict == VerdictInfo {
			continue
		}
		ratio := "-"
		if !math.IsNaN(r.Ratio) {
			ratio = fmt.Sprintf("%.2fx", r.Ratio)
		}
		fmt.Fprintf(w, "%-48s %-12s %14s %14s %8s  %s\n",
			r.Benchmark, r.Metric, fmtMetric(r.Base, r.Unit), fmtMetric(r.Cur, r.Unit), ratio, r.Verdict)
	}
	for _, m := range d.Missing {
		fmt.Fprintf(w, "%-48s %-12s %14s %14s %8s  %s\n", m, "-", "-", "-", "-", "missing")
	}
	fmt.Fprintf(w, "verdict: %d drifted, %d improved, %d missing\n",
		d.Drifted, d.Improved, len(d.Missing))
}

func fmtMetric(v float64, unit string) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	if unit == "ns" {
		return fmtNS(v)
	}
	if v >= 1e6 {
		return fmt.Sprintf("%.3gM", v/1e6)
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
}
