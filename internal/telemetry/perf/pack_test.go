package perf

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// fixturePack builds a fully deterministic pack (no timestamps, no
// captured environment) for the golden and manifest tests.
func fixturePack() *Pack {
	return &Pack{
		Schema:        Schema,
		Version:       Version,
		Suite:         "attack",
		Reps:          3,
		CreatedUnixMS: 1754600000000,
		Env: Env{
			GoVersion: "go1.22.0", GOOS: "linux", GOARCH: "amd64",
			GOMAXPROCS: 4, NumCPU: 4,
			DatasetHash: "ab12", Seed: 1, N: 1000, K: 5,
		},
		Benchmarks: []Benchmark{
			{
				Name: "attack/prosecutor/datafly/indexed-serial",
				Metrics: map[string]Series{
					MetricWallNS: NewSeries("ns", []float64{1900000, 2000000, 2100000}),
					MetricAllocs: NewSeries("count", []float64{1200, 1200, 1201}),
				},
			},
			{
				Name: "attack/journalist/mondrian/indexed",
				Metrics: map[string]Series{
					MetricWallNS: NewSeries("ns", []float64{35000000, 34000000, 36000000}),
				},
			},
		},
	}
}

// goldenPackJSON pins the canonical serialization byte-for-byte: sorted
// keys, no whitespace, benchmarks sorted by name, manifest last
// alphabetically among top-level keys it sorts into place.
const goldenPackJSON = `{"benchmarks":[{"metrics":{"wall_ns":{"mad":1000000,"median":35000000,"samples":[35000000,34000000,36000000],"unit":"ns"}},"name":"attack/journalist/mondrian/indexed"},{"metrics":{"allocs":{"mad":0,"median":1200,"samples":[1200,1200,1201],"unit":"count"},"wall_ns":{"mad":100000,"median":2000000,"samples":[1900000,2000000,2100000],"unit":"ns"}},"name":"attack/prosecutor/datafly/indexed-serial"}],"created_unix_ms":1754600000000,"env":{"dataset_hash":"ab12","go_version":"go1.22.0","goarch":"amd64","gomaxprocs":4,"goos":"linux","k":5,"n":1000,"num_cpu":4,"seed":1},"manifest":{"algorithm":"sha256","digest":"DIGEST"},"reps":3,"schema":"microdata/perf-pack","suite":"attack","version":1}`

func TestPackCanonicalGolden(t *testing.T) {
	p := fixturePack()
	if err := p.Seal(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteCanonical(&buf); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSuffix(buf.String(), "\n")
	want := strings.Replace(goldenPackJSON, "DIGEST", p.Manifest.Digest, 1)
	if got != want {
		t.Errorf("canonical pack JSON drifted from golden:\n got: %s\nwant: %s", got, want)
	}
	// Sealing is deterministic: a second seal of the same content yields
	// the same digest.
	d1 := p.Manifest.Digest
	if err := p.Seal(); err != nil {
		t.Fatal(err)
	}
	if p.Manifest.Digest != d1 {
		t.Errorf("re-seal changed digest: %s vs %s", p.Manifest.Digest, d1)
	}
	if len(d1) != 64 {
		t.Errorf("digest is not a sha256 hex string: %q", d1)
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	raw := []byte(`{"b": 2, "a": {"z": [3, 1.5, "x<y"], "m": null}, "c": true}`)
	c1, err := Canonicalize(raw)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Canonicalize(c1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		t.Errorf("canonicalize not idempotent:\n1: %s\n2: %s", c1, c2)
	}
	want := `{"a":{"m":null,"z":[3,1.5,"x<y"]},"b":2,"c":true}`
	if string(c1) != want {
		t.Errorf("canonical form = %s, want %s", c1, want)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	p := fixturePack()
	dir := t.TempDir()
	path := filepath.Join(dir, "pack.json")
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// A sealed pack read back verifies and round-trips its content.
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("read sealed pack: %v", err)
	}
	if got.Suite != "attack" || got.Reps != 3 || len(got.Benchmarks) != 2 {
		t.Errorf("round-trip lost content: %+v", got)
	}
	if got.Manifest == nil || got.Manifest.Digest != p.Manifest.Digest {
		t.Errorf("round-trip manifest mismatch")
	}
	if err := VerifyFile(path); err != nil {
		t.Fatalf("verify sealed pack: %v", err)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	p := fixturePack()
	var buf bytes.Buffer
	if err := p.WriteCanonical(&buf); err != nil {
		t.Fatal(err)
	}
	// Hand-edit one timing digit: 35000000 -> 35000001.
	tampered := bytes.Replace(buf.Bytes(), []byte("35000000"), []byte("35000001"), 1)
	if bytes.Equal(tampered, buf.Bytes()) {
		t.Fatal("tamper target not found")
	}
	err := VerifyRaw(tampered)
	if err == nil {
		t.Fatal("verification passed on tampered pack")
	}
	if ExitCode(err) != ExitVerification {
		t.Errorf("tampered pack exit code = %d, want %d", ExitCode(err), ExitVerification)
	}
	// The untampered document still verifies.
	if err := VerifyRaw(buf.Bytes()); err != nil {
		t.Fatalf("verify untampered: %v", err)
	}
	// A pack with no manifest carries no integrity claim.
	unsealed := fixturePack()
	raw, err := CanonicalMarshal(unsealed)
	if err != nil {
		t.Fatal(err)
	}
	if got := ExitCode(VerifyRaw(raw)); got != ExitVerification {
		t.Errorf("unsealed pack exit code = %d, want %d", got, ExitVerification)
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	for _, raw := range []string{
		`{"schema":"something/else","version":1}`,
		`{"schema":"microdata/perf-pack","version":99}`,
		`not json`,
	} {
		_, err := Read([]byte(raw))
		if err == nil {
			t.Errorf("Read(%q) accepted invalid input", raw)
			continue
		}
		if got := ExitCode(err); got != ExitInvalid {
			t.Errorf("Read(%q) exit code = %d, want %d", raw, got, ExitInvalid)
		}
	}
}

func TestExitCodeMapping(t *testing.T) {
	if got := ExitCode(nil); got != ExitOK {
		t.Errorf("nil -> %d", got)
	}
	if got := ExitCode(errors.New("boom")); got != ExitFailure {
		t.Errorf("plain error -> %d", got)
	}
	wrapped := Exit(ExitDrift, errors.New("drifted"))
	if got := ExitCode(wrapped); got != ExitDrift {
		t.Errorf("drift error -> %d", got)
	}
	// The code survives further wrapping.
	if got := ExitCode(errors.Join(errors.New("ctx"), wrapped)); got != ExitDrift {
		t.Errorf("wrapped drift error -> %d", got)
	}
}
