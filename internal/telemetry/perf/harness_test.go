package perf

import (
	"context"
	"errors"
	"testing"
)

func TestRunSuitesProducesSealedPack(t *testing.T) {
	work := func(ctx context.Context) error {
		s := 0
		for i := 0; i < 1_000_00; i++ {
			s += i
		}
		if s < 0 {
			return errors.New("impossible")
		}
		return nil
	}
	suite := SuiteSpec{
		Name: "synthetic", DatasetHash: "deadbeef", Seed: 7, N: 42, K: 3,
		Benchmarks: []BenchmarkSpec{
			{Name: "loop", Setup: func(ctx context.Context) (func(context.Context) error, error) {
				return work, nil
			}},
			{Name: "alloc", Setup: func(ctx context.Context) (func(context.Context) error, error) {
				return func(ctx context.Context) error {
					buf := make([]byte, 1<<16)
					_ = buf
					return nil
				}, nil
			}},
		},
	}
	pack, err := RunSuites(context.Background(), []SuiteSpec{suite}, Options{Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pack.Schema != Schema || pack.Version != Version {
		t.Errorf("bad schema/version: %s/%d", pack.Schema, pack.Version)
	}
	if pack.Suite != "synthetic" || pack.Reps != 3 {
		t.Errorf("bad suite identity: %s reps=%d", pack.Suite, pack.Reps)
	}
	if pack.Env.DatasetHash != "deadbeef" || pack.Env.N != 42 || pack.Env.GoVersion == "" {
		t.Errorf("bad env fingerprint: %+v", pack.Env)
	}
	if pack.Manifest == nil {
		t.Fatal("pack not sealed")
	}
	if len(pack.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %d", len(pack.Benchmarks))
	}
	// Names are suite-prefixed and sorted.
	if pack.Benchmarks[0].Name != "synthetic/alloc" || pack.Benchmarks[1].Name != "synthetic/loop" {
		t.Errorf("benchmark names: %s, %s", pack.Benchmarks[0].Name, pack.Benchmarks[1].Name)
	}
	for _, b := range pack.Benchmarks {
		for _, metric := range []string{MetricWallNS, MetricAllocs, MetricAllocBytes, MetricHeapBytes, MetricGoroutines} {
			s, ok := b.Metrics[metric]
			if !ok {
				t.Errorf("%s: missing metric %s", b.Name, metric)
				continue
			}
			if len(s.Samples) != 3 {
				t.Errorf("%s/%s: %d samples, want 3", b.Name, metric, len(s.Samples))
			}
		}
		if wall := b.Metrics[MetricWallNS]; wall.Median <= 0 {
			t.Errorf("%s: non-positive wall median %v", b.Name, wall.Median)
		}
	}
	// The sealed pack round-trips through the verifier.
	raw, err := CanonicalMarshal(pack)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRaw(raw); err != nil {
		t.Fatalf("harness pack failed verification: %v", err)
	}
}

func TestRunSuitesPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	suite := SuiteSpec{Name: "s", Benchmarks: []BenchmarkSpec{
		{Name: "bad", Setup: func(ctx context.Context) (func(context.Context) error, error) {
			return nil, boom
		}},
	}}
	if _, err := RunSuites(context.Background(), []SuiteSpec{suite}, Options{Reps: 1}); !errors.Is(err, boom) {
		t.Errorf("setup error not propagated: %v", err)
	}
	if _, err := RunSuites(context.Background(), nil, Options{}); ExitCode(err) != ExitInvalid {
		t.Errorf("empty suite selection should be invalid input: %v", err)
	}
}

func TestRunSuitesHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	suite := SuiteSpec{Name: "s", Benchmarks: []BenchmarkSpec{
		{Name: "never", Setup: func(ctx context.Context) (func(context.Context) error, error) {
			t.Error("setup ran under a cancelled context")
			return func(context.Context) error { return nil }, nil
		}},
	}}
	if _, err := RunSuites(ctx, []SuiteSpec{suite}, Options{Reps: 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
}
