// Package perf turns benchmark runs into verifiable artifacts. A run of a
// named suite produces a "perf pack": a versioned JSON document (schema
// "microdata/perf-pack") holding per-benchmark metric sample series (wall
// time, allocations, sampled runtime/metrics health readings) and an
// environment fingerprint, serialized as canonical JSON (JCS-style sorted
// keys, no insignificant whitespace) and sealed with a SHA-256
// self-manifest. Packs from two runs are compared with a median/MAD
// statistical comparator that classifies every metric as ok, improved or
// drifted — the foundation of the CI drift gate (cmd/benchdiff).
//
// The package also defines the stable CLI exit-code contract shared by
// anonbench, compare and benchdiff (see ExitOK and friends), patterned on
// gait's PackSpec v1 contract: distinct codes for verification failure,
// regression drift and invalid input so scripts can branch on the outcome
// without parsing output.
package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Canonicalize rewrites a JSON document into its canonical form: object
// keys sorted lexicographically (byte order), no insignificant whitespace,
// strings minimally escaped (no HTML escaping), and number literals kept
// verbatim as decoded. The transform is idempotent, so a canonical
// document round-trips byte-identically — the property the pack manifest
// hash relies on.
//
// This is JCS-style (RFC 8785 spirit): because every pack is produced by
// this package's own encoder, preserving number literals verbatim yields a
// unique canonical form without re-deriving ES6 number formatting.
func Canonicalize(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("perf: canonicalize: %w", err)
	}
	// Reject trailing garbage after the document.
	if dec.More() {
		return nil, fmt.Errorf("perf: canonicalize: trailing data after JSON document")
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// CanonicalMarshal marshals v with encoding/json and canonicalizes the
// result.
func CanonicalMarshal(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("perf: marshal: %w", err)
	}
	return Canonicalize(raw)
}

func writeCanonical(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case nil:
		buf.WriteString("null")
	case bool:
		if x {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case json.Number:
		buf.WriteString(x.String())
	case string:
		return writeCanonicalString(buf, x)
	case []any:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonical(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonicalString(buf, k); err != nil {
				return err
			}
			buf.WriteByte(':')
			if err := writeCanonical(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	default:
		return fmt.Errorf("perf: canonicalize: unsupported JSON value %T", v)
	}
	return nil
}

// writeCanonicalString emits s as a JSON string without HTML escaping.
func writeCanonicalString(buf *bytes.Buffer, s string) error {
	var tmp bytes.Buffer
	enc := json.NewEncoder(&tmp)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(s); err != nil {
		return err
	}
	buf.Write(bytes.TrimRight(tmp.Bytes(), "\n"))
	return nil
}
