package perf

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
)

// Schema identifies the perf-pack document type; Version is bumped on any
// backwards-incompatible shape change.
const (
	Schema  = "microdata/perf-pack"
	Version = 1
)

// Stable CLI exit codes shared by anonbench, compare and benchdiff.
// Scripts and CI branch on these instead of parsing output; the contract
// mirrors gait's PackSpec v1 codes.
const (
	// ExitOK: the command succeeded (for benchdiff: no drift).
	ExitOK = 0
	// ExitFailure: an internal/runtime error not covered by a specific code.
	ExitFailure = 1
	// ExitVerification: an artifact failed integrity verification — a pack
	// manifest hash mismatch, or a cross-validated computation diverging
	// from its reference.
	ExitVerification = 2
	// ExitDrift: a statistical comparison found regression drift.
	ExitDrift = 5
	// ExitInvalid: the input was invalid (bad flags, unreadable or
	// wrong-schema files, unknown names).
	ExitInvalid = 6
)

// ExitError carries a stable exit code alongside the underlying error.
type ExitError struct {
	Code int
	Err  error
}

func (e *ExitError) Error() string { return e.Err.Error() }
func (e *ExitError) Unwrap() error { return e.Err }

// Exit wraps err with a stable exit code (nil stays nil).
func Exit(code int, err error) error {
	if err == nil {
		return nil
	}
	return &ExitError{Code: code, Err: err}
}

// Invalidf builds an ExitInvalid error.
func Invalidf(format string, args ...any) error {
	return Exit(ExitInvalid, fmt.Errorf(format, args...))
}

// ExitCode maps an error to the stable exit code contract: nil → ExitOK,
// a wrapped ExitError → its code, anything else → ExitFailure.
func ExitCode(err error) int {
	if err == nil {
		return ExitOK
	}
	var ee *ExitError
	if errors.As(err, &ee) {
		return ee.Code
	}
	return ExitFailure
}

// Pack is one perf-pack document: the result of running a benchmark suite
// N times under the harness, sealed with a self-manifest.
type Pack struct {
	// Schema is always "microdata/perf-pack"; Version gates readers.
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// Suite names the suite selection that produced the pack (a single
	// suite name or a comma-joined normalized list).
	Suite string `json:"suite"`
	// Reps is the number of timed repetitions behind every sample series.
	Reps int `json:"reps"`
	// CreatedUnixMS timestamps pack creation (milliseconds since epoch).
	CreatedUnixMS int64 `json:"created_unix_ms"`
	// Env fingerprints the producing environment.
	Env Env `json:"env"`
	// Benchmarks holds one entry per benchmark, sorted by name.
	Benchmarks []Benchmark `json:"benchmarks"`
	// Manifest seals the document; nil only while under construction.
	Manifest *Manifest `json:"manifest,omitempty"`
}

// Env is the environment fingerprint recorded in every pack. Comparisons
// across differing fingerprints are legal (CI compares against baselines
// from other machines) but benchdiff surfaces the differences.
type Env struct {
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	CPUModel    string `json:"cpu_model,omitempty"`
	GitRevision string `json:"git_revision,omitempty"`
	// DatasetHash is the SHA-256 of the primary input table (see
	// dataset.Table.Hash); Seed/N/K are the generator parameters.
	DatasetHash string `json:"dataset_hash,omitempty"`
	Seed        int64  `json:"seed"`
	N           int    `json:"n"`
	K           int    `json:"k"`
}

// Fingerprint returns a short stable identity for the comparability half
// of the fingerprint: every field except GitRevision (runs from different
// commits on the same machine and dataset draw are exactly the comparisons
// a trend ledger exists to make). It is the first 12 hex digits of the
// SHA-256 of the canonical JSON encoding of the redacted struct, so two
// environments share a fingerprint iff every comparability field matches.
func (e Env) Fingerprint() string {
	id := e
	id.GitRevision = ""
	canon, err := CanonicalMarshal(id)
	if err != nil {
		// Env is a struct of scalars; canonical marshaling cannot fail.
		panic(fmt.Sprintf("perf: env fingerprint: %v", err))
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:])[:12]
}

// Benchmark is one named benchmark's recorded metric series.
type Benchmark struct {
	Name string `json:"name"`
	// Metrics maps metric name (wall_ns, allocs, ...) to its samples.
	Metrics map[string]Series `json:"metrics"`
}

// Series is one metric's per-repetition samples with its robust location
// and scale statistics (median and median absolute deviation).
type Series struct {
	Unit    string    `json:"unit,omitempty"`
	Samples []float64 `json:"samples"`
	Median  float64   `json:"median"`
	MAD     float64   `json:"mad"`
}

// NewSeries builds a series from samples, computing median and MAD.
func NewSeries(unit string, samples []float64) Series {
	return Series{Unit: unit, Samples: samples, Median: Median(samples), MAD: MAD(samples)}
}

// Median returns the sample median (NaN for an empty series; NaN samples
// poison the result, as they do in any order statistic over floats).
func Median(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	for _, v := range s {
		if math.IsNaN(v) {
			return math.NaN()
		}
	}
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation from the median.
func MAD(samples []float64) float64 {
	med := Median(samples)
	if math.IsNaN(med) {
		return math.NaN()
	}
	dev := make([]float64, len(samples))
	for i, v := range samples {
		dev[i] = math.Abs(v - med)
	}
	return Median(dev)
}

// Manifest is the pack's integrity seal: the digest is the SHA-256 of the
// canonical JSON encoding of the pack with the manifest field absent.
type Manifest struct {
	Algorithm string `json:"algorithm"`
	Digest    string `json:"digest"`
}

// CaptureEnv fills the process-environment half of the fingerprint
// (go version, OS/arch, CPU count, CPU model, git revision from build
// info); the caller sets the dataset half (hash, seed, N, K).
func CaptureEnv() Env {
	env := Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				env.GitRevision = kv.Value
			}
		}
	}
	return env
}

// cpuModel extracts the CPU model name from /proc/cpuinfo (Linux); empty
// elsewhere — the fingerprint field is optional.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, val, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}

// Seal sorts the benchmark list, computes the self-manifest over the
// canonical encoding of the pack without its manifest, and installs it.
func (p *Pack) Seal() error {
	sort.Slice(p.Benchmarks, func(i, j int) bool { return p.Benchmarks[i].Name < p.Benchmarks[j].Name })
	p.Manifest = nil
	digest, err := p.digest()
	if err != nil {
		return err
	}
	p.Manifest = &Manifest{Algorithm: "sha256", Digest: digest}
	return nil
}

// digest hashes the canonical encoding of the pack as-is (callers clear
// the manifest first).
func (p *Pack) digest() (string, error) {
	canon, err := CanonicalMarshal(p)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// WriteCanonical writes the sealed pack as canonical JSON followed by a
// trailing newline (the one concession to text tooling; the newline is not
// covered by the digest, and Read strips it).
func (p *Pack) WriteCanonical(w io.Writer) error {
	if p.Manifest == nil {
		if err := p.Seal(); err != nil {
			return err
		}
	}
	canon, err := CanonicalMarshal(p)
	if err != nil {
		return err
	}
	if _, err := w.Write(canon); err != nil {
		return err
	}
	_, err = w.Write([]byte("\n"))
	return err
}

// WriteFile writes the sealed pack to path ("-" for stdout).
func (p *Pack) WriteFile(path string) error {
	if path == "-" {
		return p.WriteCanonical(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteCanonical(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses and validates a pack document: schema and version must
// match, and the manifest (when present) must verify against the document
// bytes. Schema/version mismatches and malformed JSON return ExitInvalid
// errors; a manifest mismatch returns an ExitVerification error.
func Read(raw []byte) (*Pack, error) {
	var p Pack
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, Exit(ExitInvalid, fmt.Errorf("perf: parse pack: %w", err))
	}
	if p.Schema != Schema {
		return nil, Invalidf("perf: not a perf pack (schema %q, want %q)", p.Schema, Schema)
	}
	if p.Version != Version {
		return nil, Invalidf("perf: unsupported pack version %d (reader supports %d)", p.Version, Version)
	}
	if err := VerifyRaw(raw); err != nil {
		return nil, err
	}
	return &p, nil
}

// ReadFile reads and verifies a pack from disk.
func ReadFile(path string) (*Pack, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, Exit(ExitInvalid, fmt.Errorf("perf: %w", err))
	}
	p, err := Read(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// VerifyRaw checks the self-manifest of a serialized pack: the document
// minus its manifest field, canonicalized, must hash to the manifest
// digest. A pack without a manifest fails verification (unsealed
// artifacts carry no integrity claim). Any edit to the document after
// sealing — including a single timing digit — changes the canonical bytes
// and therefore the digest.
func VerifyRaw(raw []byte) error {
	var doc map[string]any
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.UseNumber()
	if err := dec.Decode(&doc); err != nil {
		return Exit(ExitInvalid, fmt.Errorf("perf: verify: %w", err))
	}
	mraw, ok := doc["manifest"].(map[string]any)
	if !ok {
		return Exit(ExitVerification, errors.New("perf: pack has no manifest"))
	}
	algo, _ := mraw["algorithm"].(string)
	want, _ := mraw["digest"].(string)
	if algo != "sha256" || want == "" {
		return Exit(ExitVerification, fmt.Errorf("perf: unsupported manifest algorithm %q", algo))
	}
	delete(doc, "manifest")
	inner, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	canon, err := Canonicalize(inner)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(canon)
	got := hex.EncodeToString(sum[:])
	if got != want {
		return Exit(ExitVerification, fmt.Errorf("perf: manifest digest mismatch: document hashes to %s, manifest claims %s", got, want))
	}
	return nil
}

// VerifyFile reads path and checks its self-manifest.
func VerifyFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Exit(ExitInvalid, fmt.Errorf("perf: %w", err))
	}
	if err := VerifyRaw(raw); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// Benchmark returns the named benchmark entry, or nil.
func (p *Pack) Benchmark(name string) *Benchmark {
	for i := range p.Benchmarks {
		if p.Benchmarks[i].Name == name {
			return &p.Benchmarks[i]
		}
	}
	return nil
}
