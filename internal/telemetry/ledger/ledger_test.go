package ledger

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"

	"microdata/internal/telemetry/perf"
	"microdata/internal/telemetry/resultpack"
)

// testEnv is a fixed fingerprint; vary fields per test to model env drift.
func testEnv() perf.Env {
	return perf.Env{
		GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64",
		GOMAXPROCS: 1, NumCPU: 1, CPUModel: "Test CPU @ 2.10GHz",
		GitRevision: "deadbeef", DatasetHash: "abc123", Seed: 1, N: 400, K: 5,
	}
}

// perfPackBytes seals a synthetic one-benchmark perf pack. wall is the
// nominal wall_ns level (samples jitter ±1%).
func perfPackBytes(t *testing.T, created int64, env perf.Env, wall float64) []byte {
	t.Helper()
	p := &perf.Pack{
		Schema: perf.Schema, Version: perf.Version, Suite: "synthetic", Reps: 3,
		CreatedUnixMS: created, Env: env,
		Benchmarks: []perf.Benchmark{{
			Name: "synthetic/op",
			Metrics: map[string]perf.Series{
				perf.MetricWallNS:    perf.NewSeries("ns", []float64{wall, wall * 1.01, wall * 0.99}),
				perf.MetricAllocs:    perf.NewSeries("count", []float64{10000, 10000, 10000}),
				perf.MetricHeapBytes: perf.NewSeries("bytes", []float64{1 << 20, 1 << 20, 1 << 20}),
			},
		}},
	}
	var buf bytes.Buffer
	if err := p.WriteCanonical(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// resultPackBytes seals a synthetic result pack with one algorithm row.
func resultPackBytes(t *testing.T, created int64, env perf.Env, lm float64) []byte {
	t.Helper()
	p := &resultpack.Pack{
		Schema: resultpack.Schema, Version: resultpack.Version, Source: resultpack.SourceCensus,
		CreatedUnixMS: created, Env: env,
		Algorithms: []resultpack.AlgorithmResult{{
			Algorithm: "datafly", K: 5, Node: "[0 1 2]", Classes: 10,
			Measures: map[string]resultpack.Float{"lm": resultpack.Float(lm)},
		}},
	}
	var buf bytes.Buffer
	if err := p.WriteCanonical(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustAppend(t *testing.T, l *Ledger, raw []byte) *Entry {
	t.Helper()
	e, added, err := l.Append(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !added {
		t.Fatalf("append of new pack reported added=false (digest %s)", e.Digest[:12])
	}
	return e
}

func TestOpenEmptyLedger(t *testing.T) {
	l, err := Open(t.TempDir() + "/nonexistent")
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Index.Entries) != 0 {
		t.Errorf("empty ledger has %d entries", len(l.Index.Entries))
	}
}

func TestAppendAndReload(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e1 := mustAppend(t, l, perfPackBytes(t, 1000, testEnv(), 100e6))
	e2 := mustAppend(t, l, resultPackBytes(t, 2000, testEnv(), 0.5))

	if e1.Kind != KindPerf || e1.Suite != "synthetic" || e1.Benchmarks != 1 {
		t.Errorf("perf entry = %+v", e1)
	}
	if e2.Kind != KindResult || e2.Suite != resultpack.SourceCensus {
		t.Errorf("result entry = %+v", e2)
	}
	if e1.EnvFingerprint == "" || e1.EnvFingerprint != e2.EnvFingerprint {
		t.Errorf("same env, different fingerprints: %q vs %q", e1.EnvFingerprint, e2.EnvFingerprint)
	}

	// Reload from disk: same entries, verified index, readable packs.
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(l2.Index.Entries) != 2 {
		t.Fatalf("reloaded ledger has %d entries, want 2", len(l2.Index.Entries))
	}
	if _, err := l2.ReadPerf(e1.Digest); err != nil {
		t.Errorf("ReadPerf: %v", err)
	}
	if _, err := l2.ReadResult(e2.Digest); err != nil {
		t.Errorf("ReadResult: %v", err)
	}
}

func TestAppendIsIdempotent(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	raw := perfPackBytes(t, 1000, testEnv(), 100e6)
	mustAppend(t, l, raw)
	_, added, err := l.Append(raw)
	if err != nil {
		t.Fatal(err)
	}
	if added {
		t.Error("re-append reported added=true")
	}
	if n := len(l.Index.Entries); n != 1 {
		t.Errorf("%d entries after double append, want 1", n)
	}
}

func TestAppendOrdersByCreation(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Append out of chronological order; the index must sort by creation.
	mustAppend(t, l, perfPackBytes(t, 3000, testEnv(), 100e6))
	mustAppend(t, l, perfPackBytes(t, 1000, testEnv(), 110e6))
	mustAppend(t, l, perfPackBytes(t, 2000, testEnv(), 120e6))
	var got []int64
	for _, e := range l.Index.Entries {
		got = append(got, e.CreatedUnixMS)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("index not chronological: %v", got)
		}
	}
}

func TestAppendRejectsUnsealedAndGarbage(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Unsealed pack: no manifest → verification failure.
	unsealed := []byte(`{"schema":"microdata/perf-pack","version":1,"suite":"s","reps":1,"created_unix_ms":1,"env":{"go_version":"go1.24.0","goos":"linux","goarch":"amd64","gomaxprocs":1,"num_cpu":1,"seed":1,"n":1,"k":1},"benchmarks":[]}`)
	if _, _, err := l.Append(unsealed); perf.ExitCode(err) != perf.ExitVerification {
		t.Errorf("unsealed pack: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitVerification)
	}
	// Wrong schema → invalid.
	if _, _, err := l.Append([]byte(`{"schema":"other","version":1}`)); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("wrong schema: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitInvalid)
	}
	// Tampered pack: flip a digit after sealing.
	raw := perfPackBytes(t, 1000, testEnv(), 100e6)
	tampered := bytes.Replace(raw, []byte("100000000"), []byte("100000001"), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatal("tamper target not found")
	}
	if _, _, err := l.Append(tampered); perf.ExitCode(err) != perf.ExitVerification {
		t.Errorf("tampered pack: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitVerification)
	}
}

func TestTamperedIndexFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, perfPackBytes(t, 1000, testEnv(), 100e6))
	idxPath := dir + "/index.json"
	raw, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(raw, []byte(`"kind":"perf"`), []byte(`"kind":"PERF"`), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatal("tamper target not found in index")
	}
	if err := os.WriteFile(idxPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); perf.ExitCode(err) != perf.ExitVerification {
		t.Errorf("tampered index: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitVerification)
	}
}

func TestTamperedPackFailsRead(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := mustAppend(t, l, perfPackBytes(t, 1000, testEnv(), 100e6))
	raw, err := os.ReadFile(l.PackPath(e.Digest))
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(raw, []byte("100000000"), []byte("100000001"), 1)
	if err := os.WriteFile(l.PackPath(e.Digest), tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReadPerf(e.Digest); perf.ExitCode(err) != perf.ExitVerification {
		t.Errorf("tampered pack read: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitVerification)
	}
}

func TestFindByPrefix(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := mustAppend(t, l, perfPackBytes(t, 1000, testEnv(), 100e6))
	got, err := l.Find(e.Digest[:8])
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != e.Digest {
		t.Errorf("Find(%q) = %s, want %s", e.Digest[:8], got.Digest, e.Digest)
	}
	if _, err := l.Find("zzzz"); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("unknown prefix: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitInvalid)
	}
}

// TestConcurrentAppend hammers one ledger directory from many goroutines
// (run under -race in CI): every distinct pack must land exactly once and
// the final index must verify.
func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	const appenders = 8
	var wg sync.WaitGroup
	errs := make([]error, appenders)
	for i := 0; i < appenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, err := Open(dir)
			if err != nil {
				errs[i] = err
				return
			}
			// Distinct pack per appender plus one shared pack everyone races
			// to insert.
			env := testEnv()
			env.GitRevision = fmt.Sprintf("commit-%d", i)
			if _, _, err := l.Append(perfPackBytes(t, int64(1000+i), env, float64(100+i)*1e6)); err != nil {
				errs[i] = err
				return
			}
			if _, _, err := l.Append(perfPackBytes(t, 50, testEnv(), 99e6)); err != nil {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("appender %d: %v", i, err)
		}
	}
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("final open: %v", err)
	}
	if n := len(l.Index.Entries); n != appenders+1 {
		t.Fatalf("final ledger has %d entries, want %d", n, appenders+1)
	}
	for _, e := range l.Index.Entries {
		if _, err := l.ReadPerf(e.Digest); err != nil {
			t.Errorf("entry %s unreadable: %v", e.Digest[:12], err)
		}
	}
}

func TestEnvFingerprintIgnoresCommit(t *testing.T) {
	a, b := testEnv(), testEnv()
	b.GitRevision = "feedface"
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("commit change altered the env fingerprint")
	}
	c := testEnv()
	c.GoVersion = "go1.25.0"
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("go-version change did not alter the env fingerprint")
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline([]float64{1, 2, 3, 4, 5, 6, 7, 8}); got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp sparkline = %q", got)
	}
	if got := Sparkline([]float64{5, 5, 5}); got != "▄▄▄" {
		t.Errorf("constant sparkline = %q", got)
	}
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
}
