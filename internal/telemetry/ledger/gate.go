package ledger

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"microdata/internal/telemetry/perf"
	"microdata/internal/telemetry/resultpack"
)

// Finding kinds.
const (
	// FindingPerfDrift: a gated perf metric's newest value(s) broke out of
	// the rolling envelope of its same-environment history.
	FindingPerfDrift = "perf-drift"
	// FindingInvalid: a gated metric stopped producing numbers (NaN).
	FindingInvalid = "invalid"
	// FindingCorrectness: a result-pack claim changed between entries with
	// an unchanged environment fingerprint — a verdict, never a trend.
	FindingCorrectness = "correctness"
)

// Finding is one gate failure with a path-level diagnostic.
type Finding struct {
	// Kind is one of the Finding* constants.
	Kind string
	// Path names the offending claim: "<benchmark>.<metric>" for perf,
	// "algorithms[k=10/mondrian].measures.lm"-style for correctness.
	Path string
	// Entry is the digest of the offending ledger entry; Against is the
	// reference entry it diverged from (correctness only).
	Entry   string
	Against string
	// Baseline, Value and Width quantify a perf drift (the rolling history
	// median, the excursion value, and the envelope half-width).
	Baseline, Value, Width float64
	// History is the number of same-environment entries behind Baseline.
	History int
	// Detail is the human-readable one-liner.
	Detail string
}

// Attribution is an env-change note: the newest entry is not comparable to
// the prior history, and here is exactly why — field by field. An
// attribution alone never fails the gate.
type Attribution struct {
	Kind    string // KindPerf or KindResult
	Entry   string // newest digest
	Against string // most recent prior digest
	Changes []perf.EnvChange
}

// GateOptions tunes the rolling gate.
type GateOptions struct {
	Envelope
	// Gated selects the perf metrics whose drift fails the gate (default
	// perf.DefaultGated: wall_ns, allocs).
	Gated []string
	// Sustain is how many newest same-environment entries must all exceed
	// the envelope for the gate to fail (default 1: the newest entry alone
	// — CI wants immediate detection; raise it to demand persistence).
	Sustain int
	// MinHistory is the minimum number of same-environment history entries
	// required before gating (default 2).
	MinHistory int
}

func (o GateOptions) withDefaults() GateOptions {
	o.Envelope = o.Envelope.withDefaults()
	if o.Gated == nil {
		o.Gated = perf.DefaultGated
	}
	if o.Sustain <= 0 {
		o.Sustain = 1
	}
	if o.MinHistory <= 0 {
		o.MinHistory = 2
	}
	return o
}

// GateResult is the full outcome of a gate run.
type GateResult struct {
	PerfEntries   int
	ResultEntries int
	// Checked counts the gated (benchmark, metric) series evaluated.
	Checked int
	// Findings fail the gate (exit 5); Attributions and Notes do not.
	Findings     []Finding
	Attributions []Attribution
	Notes        []string
}

// OK reports whether the gate passes.
func (r *GateResult) OK() bool { return len(r.Findings) == 0 }

// Gate evaluates the ledger's newest perf entry against its rolling
// same-environment history and cross-checks every result-pack claim across
// same-environment entries. Pack manifests are re-verified on read, so a
// tampered ledger surfaces as an ExitVerification error rather than a
// verdict.
func Gate(l *Ledger, opts GateOptions) (*GateResult, error) {
	opts = opts.withDefaults()
	res := &GateResult{
		PerfEntries:   len(l.Entries(KindPerf)),
		ResultEntries: len(l.Entries(KindResult)),
	}
	if err := gatePerf(l, opts, res); err != nil {
		return nil, err
	}
	if err := gateResults(l, res); err != nil {
		return nil, err
	}
	return res, nil
}

func gatePerf(l *Ledger, opts GateOptions, res *GateResult) error {
	entries := l.Entries(KindPerf)
	if len(entries) < 2 {
		res.Notes = append(res.Notes, fmt.Sprintf("perf: %d entr%s — no history to gate against",
			len(entries), plural(len(entries), "y", "ies")))
		return nil
	}
	newest := entries[len(entries)-1]
	prior := entries[:len(entries)-1]
	var history []Entry
	for _, e := range prior {
		if e.EnvFingerprint == newest.EnvFingerprint {
			history = append(history, e)
		}
	}
	if len(history) < opts.MinHistory {
		// Not enough comparable history: attribute instead of gating.
		latest := prior[len(prior)-1]
		changes := perf.DiffEnv(latest.Env, newest.Env)
		res.Attributions = append(res.Attributions, Attribution{
			Kind: KindPerf, Entry: newest.Digest, Against: latest.Digest, Changes: changes,
		})
		res.Notes = append(res.Notes, fmt.Sprintf(
			"perf: entry %s has %d same-env prior entr%s (< %d needed) — drift not gated, attributed to environment",
			newest.Digest[:12], len(history), plural(len(history), "y", "ies"), opts.MinHistory))
		return nil
	}

	packs := map[string]*perf.Pack{}
	load := func(digest string) (*perf.Pack, error) {
		if p, ok := packs[digest]; ok {
			return p, nil
		}
		p, err := l.ReadPerf(digest)
		if err != nil {
			return nil, err
		}
		packs[digest] = p
		return p, nil
	}
	newPack, err := load(newest.Digest)
	if err != nil {
		return err
	}
	// The excursion window: the newest Sustain same-env entries (including
	// the newest itself) must all break the envelope computed over the
	// entries before them.
	window := append(append([]Entry(nil), history...), newest)
	if len(window) <= opts.Sustain || len(window)-opts.Sustain < opts.MinHistory {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"perf: %d same-env entries cannot sustain a %d-entry excursion over %d history entries — not gated",
			len(window), opts.Sustain, opts.MinHistory))
		return nil
	}
	histEntries := window[:len(window)-opts.Sustain]
	tailEntries := window[len(window)-opts.Sustain:]

	for _, b := range newPack.Benchmarks {
		for _, metric := range opts.Gated {
			s, ok := b.Metrics[metric]
			if !ok {
				continue
			}
			path := b.Name + "." + metric
			if math.IsNaN(s.Median) {
				res.Findings = append(res.Findings, Finding{
					Kind: FindingInvalid, Path: path, Entry: newest.Digest,
					Detail: fmt.Sprintf("%s: entry %s median is NaN — benchmark stopped producing numbers",
						path, newest.Digest[:12]),
				})
				continue
			}
			values := func(es []Entry) ([]float64, error) {
				var out []float64
				for _, e := range es {
					p, err := load(e.Digest)
					if err != nil {
						return nil, err
					}
					if pb := p.Benchmark(b.Name); pb != nil {
						if ps, ok := pb.Metrics[metric]; ok {
							out = append(out, ps.Median)
						}
					}
				}
				return out, nil
			}
			hist, err := values(histEntries)
			if err != nil {
				return err
			}
			if len(hist) < opts.MinHistory {
				continue // benchmark too new in this environment
			}
			tail, err := values(tailEntries)
			if err != nil {
				return err
			}
			res.Checked++
			base, width := opts.width(metric, hist)
			excursion := len(tail) == opts.Sustain
			for _, v := range tail {
				if !(v > base+width) {
					excursion = false
					break
				}
			}
			if excursion {
				res.Findings = append(res.Findings, Finding{
					Kind: FindingPerfDrift, Path: path, Entry: newest.Digest,
					Baseline: base, Value: s.Median, Width: width, History: len(hist),
					Detail: fmt.Sprintf("%s: entry %s median %s exceeds rolling baseline %s (n=%d same-env entries) by more than the envelope ±%s",
						path, newest.Digest[:12], fmtValue(s.Median, s.Unit),
						fmtValue(base, s.Unit), len(hist), fmtValue(width, s.Unit)),
				})
			}
		}
	}
	return nil
}

// gateResults holds correctness series to the stricter bar: any claim
// drifting between result entries with an unchanged env fingerprint is a
// verdict, not a trend. Entries under different fingerprints are never
// cross-compared (the dataset draw or toolchain legitimately changed) —
// that difference is surfaced as an attribution instead.
func gateResults(l *Ledger, res *GateResult) error {
	entries := l.Entries(KindResult)
	if len(entries) == 0 {
		return nil
	}
	byFP := map[string][]Entry{}
	var order []string
	for _, e := range entries {
		if _, ok := byFP[e.EnvFingerprint]; !ok {
			order = append(order, e.EnvFingerprint)
		}
		byFP[e.EnvFingerprint] = append(byFP[e.EnvFingerprint], e)
	}
	for _, fp := range order {
		group := byFP[fp]
		if len(group) < 2 {
			continue
		}
		ref := group[0]
		refPack, err := l.ReadResult(ref.Digest)
		if err != nil {
			return err
		}
		refClaims := resultClaims(refPack)
		for _, e := range group[1:] {
			p, err := l.ReadResult(e.Digest)
			if err != nil {
				return err
			}
			claims := resultClaims(p)
			var paths []string
			for path := range refClaims {
				if _, ok := claims[path]; ok {
					paths = append(paths, path)
				}
			}
			sort.Strings(paths)
			for _, path := range paths {
				if refClaims[path] != claims[path] {
					res.Findings = append(res.Findings, Finding{
						Kind: FindingCorrectness, Path: path,
						Entry: e.Digest, Against: ref.Digest,
						Detail: fmt.Sprintf("%s: %s -> %s between entries %s and %s with unchanged env fingerprint %s — correctness verdict, not a trend",
							path, refClaims[path], claims[path], ref.Digest[:12], e.Digest[:12], fp),
					})
				}
			}
		}
	}
	if len(order) > 1 {
		// Same-kind entries across fingerprints: attribute the latest split.
		last := entries[len(entries)-1]
		for i := len(entries) - 2; i >= 0; i-- {
			if entries[i].EnvFingerprint != last.EnvFingerprint {
				res.Attributions = append(res.Attributions, Attribution{
					Kind: KindResult, Entry: last.Digest, Against: entries[i].Digest,
					Changes: perf.DiffEnv(entries[i].Env, last.Env),
				})
				break
			}
		}
	}
	return nil
}

// resultClaims flattens a result pack into path → pinned-spelling claims.
// Floats format through strconv's shortest round-trip form ("NaN", "+Inf",
// "-0" keep their spellings), so bit-distinguishable values differ.
func resultClaims(p *resultpack.Pack) map[string]string {
	c := map[string]string{}
	f := func(v resultpack.Float) string {
		return strconv.FormatFloat(float64(v), 'g', -1, 64)
	}
	for _, a := range p.Algorithms {
		pre := fmt.Sprintf("algorithms[k=%d/%s]", a.K, a.Algorithm)
		c[pre+".node"] = a.Node
		c[pre+".k_actual"] = strconv.Itoa(a.KActual)
		c[pre+".classes"] = strconv.Itoa(a.Classes)
		c[pre+".suppressed"] = strconv.Itoa(a.Suppressed)
		c[pre+".failed"] = a.Failed
		for name, v := range a.Measures {
			c[pre+".measures."+name] = f(v)
		}
	}
	for _, a := range p.Attack {
		pre := fmt.Sprintf("attack[k=%d/%s]", a.K, a.Algorithm)
		if a.Prosecutor != nil {
			c[pre+".prosecutor.mean"] = f(a.Prosecutor.Mean)
			c[pre+".prosecutor.median"] = f(a.Prosecutor.Median)
			c[pre+".prosecutor.max"] = f(a.Prosecutor.Max)
		}
		if a.Journalist != nil {
			c[pre+".journalist.mean"] = f(a.Journalist.Mean)
			c[pre+".journalist.median"] = f(a.Journalist.Median)
			c[pre+".journalist.max"] = f(a.Journalist.Max)
		}
		c[pre+".marketer"] = f(a.Marketer)
	}
	for _, t := range p.Tables {
		c[fmt.Sprintf("tables[%s].sha256", t.ID)] = t.SHA256
	}
	return c
}

// WriteText renders the gate outcome: findings first (the reasons for a
// non-zero exit), then attributions and notes.
func (r *GateResult) WriteText(w io.Writer) {
	fmt.Fprintf(w, "gate: %d perf entries, %d result entries, %d gated series checked\n",
		r.PerfEntries, r.ResultEntries, r.Checked)
	for _, f := range r.Findings {
		fmt.Fprintf(w, "%s: %s\n", f.Kind, f.Detail)
	}
	for _, a := range r.Attributions {
		fmt.Fprintf(w, "attribution (%s): entry %s differs from %s in environment only — %s\n",
			a.Kind, a.Entry[:12], a.Against[:12], perf.EnvChangeFields(a.Changes))
		for _, ch := range a.Changes {
			fmt.Fprintf(w, "  env %s\n", ch)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	if r.OK() {
		fmt.Fprintln(w, "verdict: ok")
	} else {
		fmt.Fprintf(w, "verdict: %d finding(s)\n", len(r.Findings))
	}
}

// MarshalCanonical renders the gate result as canonical JSON (pinned float
// spellings, trailing newline).
func (r *GateResult) MarshalCanonical() ([]byte, error) {
	type findingJSON struct {
		Kind     string    `json:"kind"`
		Path     string    `json:"path"`
		Entry    string    `json:"entry"`
		Against  string    `json:"against,omitempty"`
		Baseline jsonFloat `json:"baseline"`
		Value    jsonFloat `json:"value"`
		Width    jsonFloat `json:"width"`
		History  int       `json:"history,omitempty"`
		Detail   string    `json:"detail"`
	}
	type attributionJSON struct {
		Kind    string           `json:"kind"`
		Entry   string           `json:"entry"`
		Against string           `json:"against"`
		Changes []perf.EnvChange `json:"changes"`
	}
	doc := struct {
		Schema        string            `json:"schema"`
		Version       int               `json:"version"`
		PerfEntries   int               `json:"perf_entries"`
		ResultEntries int               `json:"result_entries"`
		Checked       int               `json:"checked"`
		OK            bool              `json:"ok"`
		Findings      []findingJSON     `json:"findings,omitempty"`
		Attributions  []attributionJSON `json:"attributions,omitempty"`
		Notes         []string          `json:"notes,omitempty"`
	}{Schema: "microdata/ledger-gate", Version: 1,
		PerfEntries: r.PerfEntries, ResultEntries: r.ResultEntries,
		Checked: r.Checked, OK: r.OK(), Notes: r.Notes}
	for _, f := range r.Findings {
		doc.Findings = append(doc.Findings, findingJSON{
			Kind: f.Kind, Path: f.Path, Entry: f.Entry, Against: f.Against,
			Baseline: jsonFloat(f.Baseline), Value: jsonFloat(f.Value),
			Width: jsonFloat(f.Width), History: f.History, Detail: f.Detail,
		})
	}
	for _, a := range r.Attributions {
		doc.Attributions = append(doc.Attributions, attributionJSON{
			Kind: a.Kind, Entry: a.Entry, Against: a.Against, Changes: a.Changes,
		})
	}
	canon, err := perf.CanonicalMarshal(doc)
	if err != nil {
		return nil, err
	}
	return append(canon, '\n'), nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
