package ledger

import "math"

// sparkRunes are the eight block-element levels of a unicode sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-height unicode sparkline, scaled to
// the series' own min..max. A constant series renders at mid-height, NaN
// values render as '·'.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	out := make([]rune, len(values))
	for i, v := range values {
		switch {
		case math.IsNaN(v):
			out[i] = '·'
		case hi == lo:
			out[i] = sparkRunes[3]
		default:
			level := int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
			if level < 0 {
				level = 0
			}
			if level >= len(sparkRunes) {
				level = len(sparkRunes) - 1
			}
			out[i] = sparkRunes[level]
		}
	}
	return string(out)
}
