package ledger

import (
	"bytes"
	"strings"
	"testing"

	"microdata/internal/telemetry/perf"
)

// trendLedger appends one synthetic perf pack per wall level, all under env,
// creation-stamped 1000, 2000, ...
func trendLedger(t *testing.T, env perf.Env, walls ...float64) *Ledger {
	t.Helper()
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range walls {
		mustAppend(t, l, perfPackBytes(t, int64((i+1)*1000), env, w))
	}
	return l
}

func TestExtractTrendSeries(t *testing.T) {
	l := trendLedger(t, testEnv(), 100e6, 110e6, 90e6)
	tr, err := ExtractTrend(l, TrendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.PerfEntries != 3 || len(tr.EnvFingerprints) != 1 {
		t.Fatalf("trend header = %d entries, %d fingerprints", tr.PerfEntries, len(tr.EnvFingerprints))
	}
	// One benchmark x default metrics (wall_ns, allocs, heap_bytes).
	if len(tr.Series) != 3 {
		t.Fatalf("%d series, want 3", len(tr.Series))
	}
	var wall *Series
	for i := range tr.Series {
		if tr.Series[i].Metric == perf.MetricWallNS {
			wall = &tr.Series[i]
		}
	}
	if wall == nil {
		t.Fatal("no wall_ns series")
	}
	if len(wall.Points) != 3 || wall.Median != 100e6 || wall.Last != 90e6 {
		t.Errorf("wall series: %d points, median %g, last %g", len(wall.Points), wall.Median, wall.Last)
	}
	if wall.Changepoint != nil {
		t.Errorf("noise-level series produced changepoint %+v", wall.Changepoint)
	}
	// Points must be chronological and carry the entry digests.
	for i, p := range wall.Points {
		if p.CreatedUnixMS != int64((i+1)*1000) || p.Digest == "" {
			t.Errorf("point %d = %+v", i, p)
		}
	}
}

func TestTrendChangepointSustainedShift(t *testing.T) {
	// Three runs at 100ms, then a sustained regression to 200ms.
	l := trendLedger(t, testEnv(), 100e6, 100e6, 100e6, 200e6, 200e6, 200e6)
	tr, err := ExtractTrend(l, TrendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wall *Series
	for i := range tr.Series {
		if tr.Series[i].Metric == perf.MetricWallNS {
			wall = &tr.Series[i]
		}
	}
	cp := wall.Changepoint
	if cp == nil {
		t.Fatal("sustained 2x shift produced no changepoint")
	}
	if cp.Index != 3 {
		t.Errorf("changepoint at index %d, want 3 (first 200ms entry)", cp.Index)
	}
	if cp.Digest != wall.Points[3].Digest {
		t.Errorf("changepoint digest %s != point digest %s", cp.Digest, wall.Points[3].Digest)
	}
	if cp.Baseline != 100e6 {
		t.Errorf("changepoint baseline %g, want 1e8", cp.Baseline)
	}
}

func TestTrendLoneOutlierIsNotAChangepoint(t *testing.T) {
	l := trendLedger(t, testEnv(), 100e6, 100e6, 200e6, 100e6, 100e6)
	tr, err := ExtractTrend(l, TrendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Series {
		if s.Changepoint != nil {
			t.Errorf("%s.%s: lone outlier registered as changepoint %+v", s.Benchmark, s.Metric, s.Changepoint)
		}
	}
}

func TestTrendEnvShiftIsAttributionNotChangepoint(t *testing.T) {
	// The same 2x level shift, but coinciding with a toolchain change: the
	// groups are scanned independently, so no changepoint registers.
	envB := testEnv()
	envB.GoVersion = "go1.25.0"
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range []float64{100e6, 100e6, 100e6} {
		mustAppend(t, l, perfPackBytes(t, int64((i+1)*1000), testEnv(), w))
	}
	for i, w := range []float64{200e6, 200e6, 200e6} {
		mustAppend(t, l, perfPackBytes(t, int64((i+4)*1000), envB, w))
	}
	tr, err := ExtractTrend(l, TrendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.EnvFingerprints) != 2 {
		t.Fatalf("%d fingerprints, want 2", len(tr.EnvFingerprints))
	}
	for _, s := range tr.Series {
		if s.Changepoint != nil {
			t.Errorf("%s.%s: cross-environment shift registered as changepoint", s.Benchmark, s.Metric)
		}
	}
}

func TestTrendOptionsFilter(t *testing.T) {
	l := trendLedger(t, testEnv(), 100e6, 110e6, 120e6)
	tr, err := ExtractTrend(l, TrendOptions{
		Metrics: []string{perf.MetricWallNS}, Benchmark: "synthetic", Last: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.PerfEntries != 2 || len(tr.Series) != 1 || len(tr.Series[0].Points) != 2 {
		t.Errorf("filtered trend: %d entries, %d series", tr.PerfEntries, len(tr.Series))
	}
	tr2, err := ExtractTrend(l, TrendOptions{Benchmark: "no-such-benchmark"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Series) != 0 {
		t.Errorf("bogus filter kept %d series", len(tr2.Series))
	}
}

func TestTrendCanonicalJSONIsByteStable(t *testing.T) {
	build := func() []byte {
		t.Helper()
		l := trendLedger(t, testEnv(), 100e6, 100e6, 100e6, 200e6, 200e6)
		tr, err := ExtractTrend(l, TrendOptions{})
		if err != nil {
			t.Fatal(err)
		}
		canon, err := tr.MarshalCanonical()
		if err != nil {
			t.Fatal(err)
		}
		return canon
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Error("trend canonical JSON differs across identical ledgers")
	}
	if a[len(a)-1] != '\n' {
		t.Error("canonical trend lacks trailing newline")
	}
	s := string(a)
	for _, want := range []string{`"schema":"` + TrendSchema + `"`, `"changepoint":`, `"env_fingerprints":`} {
		if !strings.Contains(s, want) {
			t.Errorf("canonical trend missing %s", want)
		}
	}
}

func TestTrendWriteTable(t *testing.T) {
	l := trendLedger(t, testEnv(), 100e6, 100e6, 100e6, 200e6, 200e6)
	tr, err := ExtractTrend(l, TrendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr.WriteTable(&buf)
	out := buf.String()
	if !strings.Contains(out, "synthetic/op") || !strings.Contains(out, "changepoint@") {
		t.Errorf("trend table missing benchmark or changepoint marker:\n%s", out)
	}
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Errorf("trend table has no sparkline:\n%s", out)
	}
}

func TestEnvelopeWidth(t *testing.T) {
	e := Envelope{}.withDefaults()
	// Relative band dominates.
	base, width := e.width(perf.MetricWallNS, []float64{100e6, 100e6, 100e6})
	if base != 100e6 || width != 25e6 {
		t.Errorf("width = (%g, %g), want (1e8, 2.5e7)", base, width)
	}
	// Absolute floor dominates for small values.
	if _, width := e.width(perf.MetricWallNS, []float64{100, 100}); width != 2e6 {
		t.Errorf("floored width = %g, want 2e6", width)
	}
	// MAD widens a noisy history beyond the relative band.
	_, width = e.width(perf.MetricAllocs, []float64{1000, 2000, 3000})
	if width <= 0.25*2000 {
		t.Errorf("noisy width = %g, want > rel band %g", width, 0.25*2000)
	}
}
