package ledger

import (
	"bytes"
	"strings"
	"testing"

	"microdata/internal/telemetry/perf"
)

func TestGateFailsOnDoubledWallTime(t *testing.T) {
	// Stable history at 100ms, newest entry doubled: the gated wall_ns
	// series must fail with a path-level diagnostic naming the benchmark
	// and entry digest.
	l := trendLedger(t, testEnv(), 100e6, 100e6, 100e6, 100e6, 200e6)
	newest := l.Entries(KindPerf)[4]
	res, err := Gate(l, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("doubled wall_ns passed the gate")
	}
	if len(res.Findings) != 1 {
		t.Fatalf("%d findings, want 1: %+v", len(res.Findings), res.Findings)
	}
	f := res.Findings[0]
	if f.Kind != FindingPerfDrift {
		t.Errorf("finding kind %q, want %q", f.Kind, FindingPerfDrift)
	}
	if f.Path != "synthetic/op."+perf.MetricWallNS {
		t.Errorf("finding path %q", f.Path)
	}
	if f.Entry != newest.Digest {
		t.Errorf("finding entry %s, want newest %s", f.Entry, newest.Digest)
	}
	if f.Baseline != 100e6 || f.Value != 200e6 || f.History != 4 {
		t.Errorf("finding stats = baseline %g value %g history %d", f.Baseline, f.Value, f.History)
	}
	if !strings.Contains(f.Detail, "synthetic/op.wall_ns") || !strings.Contains(f.Detail, newest.Digest[:12]) {
		t.Errorf("diagnostic does not name benchmark and digest: %s", f.Detail)
	}
	if res.Checked == 0 {
		t.Error("gate checked no series")
	}
}

func TestGatePassesStableHistory(t *testing.T) {
	l := trendLedger(t, testEnv(), 100e6, 102e6, 98e6, 101e6)
	res, err := Gate(l, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Errorf("stable history failed the gate: %+v", res.Findings)
	}
}

func TestGateIgnoresImprovement(t *testing.T) {
	l := trendLedger(t, testEnv(), 100e6, 100e6, 100e6, 50e6)
	res, err := Gate(l, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Errorf("improvement failed the gate: %+v", res.Findings)
	}
}

func TestGateAttributesEnvChange(t *testing.T) {
	// Same doubled wall time, but under a different go version: no finding
	// (exit 0 for the CLI), an attribution naming the changed field instead.
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range []float64{100e6, 100e6, 100e6} {
		mustAppend(t, l, perfPackBytes(t, int64((i+1)*1000), testEnv(), w))
	}
	envB := testEnv()
	envB.GoVersion = "go1.25.0"
	mustAppend(t, l, perfPackBytes(t, 4000, envB, 200e6))
	newest := l.Entries(KindPerf)[3]

	res, err := Gate(l, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("env-only change failed the gate: %+v", res.Findings)
	}
	if len(res.Attributions) != 1 {
		t.Fatalf("%d attributions, want 1", len(res.Attributions))
	}
	a := res.Attributions[0]
	if a.Kind != KindPerf || a.Entry != newest.Digest {
		t.Errorf("attribution = %+v", a)
	}
	if perf.EnvChangeFields(a.Changes) != "go_version" {
		t.Errorf("attributed fields %q, want go_version", perf.EnvChangeFields(a.Changes))
	}
	if len(res.Notes) == 0 || !strings.Contains(res.Notes[0], "attributed to environment") {
		t.Errorf("no attribution note: %v", res.Notes)
	}
}

func TestGateNeedsHistory(t *testing.T) {
	l := trendLedger(t, testEnv(), 100e6)
	res, err := Gate(l, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || len(res.Notes) == 0 {
		t.Errorf("single-entry ledger: ok=%v notes=%v", res.OK(), res.Notes)
	}
}

func TestGateSustainRequiresPersistence(t *testing.T) {
	// With Sustain=2 a single doubled entry is not enough...
	l := trendLedger(t, testEnv(), 100e6, 100e6, 100e6, 100e6, 200e6)
	res, err := Gate(l, GateOptions{Sustain: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Errorf("single excursion failed a sustain=2 gate: %+v", res.Findings)
	}
	// ...but two consecutive doubled entries are.
	mustAppend(t, l, perfPackBytes(t, 6000, testEnv(), 200e6))
	res, err = Gate(l, GateOptions{Sustain: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Error("two sustained excursions passed a sustain=2 gate")
	}
}

func TestGateCorrectnessVerdict(t *testing.T) {
	// A result-pack claim drifting under an unchanged env fingerprint is a
	// verdict, not a trend.
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e1 := mustAppend(t, l, resultPackBytes(t, 1000, testEnv(), 0.5))
	e2 := mustAppend(t, l, resultPackBytes(t, 2000, testEnv(), 0.625))
	res, err := Gate(l, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("diverging result claims passed the gate")
	}
	f := res.Findings[0]
	if f.Kind != FindingCorrectness {
		t.Errorf("finding kind %q, want %q", f.Kind, FindingCorrectness)
	}
	if f.Path != "algorithms[k=5/datafly].measures.lm" {
		t.Errorf("finding path %q", f.Path)
	}
	if f.Entry != e2.Digest || f.Against != e1.Digest {
		t.Errorf("finding entry/against = %s/%s", f.Entry[:12], f.Against[:12])
	}
	for _, want := range []string{"0.5 -> 0.625", "correctness verdict, not a trend", e1.EnvFingerprint} {
		if !strings.Contains(f.Detail, want) {
			t.Errorf("diagnostic missing %q: %s", want, f.Detail)
		}
	}
}

func TestGateResultEnvSplitIsAttributed(t *testing.T) {
	// The same claim difference across different dataset draws is never a
	// verdict — only an attribution.
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, resultPackBytes(t, 1000, testEnv(), 0.5))
	envB := testEnv()
	envB.DatasetHash = "fff999"
	mustAppend(t, l, resultPackBytes(t, 2000, envB, 0.625))
	res, err := Gate(l, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("cross-environment result change failed the gate: %+v", res.Findings)
	}
	if len(res.Attributions) != 1 || res.Attributions[0].Kind != KindResult {
		t.Fatalf("attributions = %+v", res.Attributions)
	}
	if got := perf.EnvChangeFields(res.Attributions[0].Changes); got != "dataset_hash" {
		t.Errorf("attributed fields %q, want dataset_hash", got)
	}
}

func TestGateIdenticalResultsPass(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Same claims, different commit (which the fingerprint ignores).
	envB := testEnv()
	envB.GitRevision = "feedface"
	mustAppend(t, l, resultPackBytes(t, 1000, testEnv(), 0.5))
	mustAppend(t, l, resultPackBytes(t, 2000, envB, 0.5))
	res, err := Gate(l, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Errorf("identical claims failed the gate: %+v", res.Findings)
	}
}

func TestGateOutputForms(t *testing.T) {
	l := trendLedger(t, testEnv(), 100e6, 100e6, 100e6, 200e6)
	res, err := Gate(l, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.WriteText(&buf)
	if !strings.Contains(buf.String(), "verdict:") {
		t.Errorf("text output lacks verdict line:\n%s", buf.String())
	}
	canon, err := res.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	canon2, err := res.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon, canon2) {
		t.Error("gate canonical JSON not byte-stable")
	}
	if !strings.Contains(string(canon), `"schema":"microdata/ledger-gate"`) {
		t.Errorf("gate JSON missing schema: %s", canon)
	}
}
