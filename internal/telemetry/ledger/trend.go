package ledger

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"microdata/internal/telemetry/perf"
	"microdata/internal/telemetry/resultpack"
)

// TrendSchema identifies the canonical-JSON trend document `anonstat trend
// -json` emits; TrendVersion is bumped on any shape change.
const (
	TrendSchema  = "microdata/ledger-trend"
	TrendVersion = 1
)

// DefaultTrendMetrics is the metric set trend extraction follows per
// benchmark: the gated pair plus live heap, the series the ROADMAP's
// longitudinal comparisons care about.
var DefaultTrendMetrics = []string{perf.MetricWallNS, perf.MetricAllocs, perf.MetricHeapBytes}

// Envelope parameterizes the rolling noise band shared by trend
// changepoint detection and the gate: a value is an excursion when it
// exceeds the history median by more than
// max(RelThreshold·|median|, MADFactor·MAD(history), AbsFloor[metric]).
// This generalizes perf.CompareOptions' two-pack envelope to arbitrary
// history windows.
type Envelope struct {
	// RelThreshold is the relative band (default 0.25).
	RelThreshold float64
	// MADFactor scales the history's across-entry MAD (default 4).
	MADFactor float64
	// AbsFloor maps metric name → absolute band floor (defaults: wall_ns
	// 2e6 ns, allocs 256 — perf.CompareOptions' floors).
	AbsFloor map[string]float64
}

func (e Envelope) withDefaults() Envelope {
	if e.RelThreshold <= 0 {
		e.RelThreshold = 0.25
	}
	if e.MADFactor <= 0 {
		e.MADFactor = 4
	}
	if e.AbsFloor == nil {
		e.AbsFloor = map[string]float64{perf.MetricWallNS: 2e6, perf.MetricAllocs: 256}
	}
	return e
}

// width returns the history median and the envelope half-width for one
// metric over the given history values.
func (e Envelope) width(metric string, history []float64) (base, width float64) {
	base = perf.Median(history)
	width = e.RelThreshold * math.Abs(base)
	if mad := e.MADFactor * perf.MAD(history); !math.IsNaN(mad) && mad > width {
		width = mad
	}
	if floor := e.AbsFloor[metric]; floor > width {
		width = floor
	}
	return base, width
}

// Point is one ledger entry's contribution to a series: the pack's
// recorded median (and within-run MAD) for one benchmark metric.
type Point struct {
	Digest         string
	CreatedUnixMS  int64
	EnvFingerprint string
	GitRevision    string
	Value          float64
	MAD            float64
}

// Changepoint marks a sustained excursion: from Index onward, every
// same-fingerprint point exceeds the envelope computed over the points
// before it, and at least TrendOptions.Sustain points do so. A single
// noisy run therefore never registers; a genuine regression that persists
// does.
type Changepoint struct {
	// Digest names the first sustained-excursion entry.
	Digest string
	// Index is the changepoint's position within the series' points.
	Index int
	// EnvFingerprint is the history group the excursion happened inside.
	EnvFingerprint string
	// Baseline and Width describe the envelope the excursion broke out of;
	// Value is the first excursion value.
	Baseline float64
	Width    float64
	Value    float64
}

// Series is one benchmark metric's trajectory across the ledger.
type Series struct {
	Benchmark string
	Metric    string
	Unit      string
	Points    []Point
	// Median and MAD are the robust location/scale of the point values
	// across entries; Last is the newest value.
	Median float64
	MAD    float64
	Last   float64
	// Changepoint is nil when no sustained excursion was detected.
	Changepoint *Changepoint
}

// Trend is the extracted trajectory document.
type Trend struct {
	// PerfEntries and ResultEntries count the ledger entries consumed.
	PerfEntries   int
	ResultEntries int
	// EnvFingerprints lists the distinct fingerprints in order of first
	// appearance — more than one means the history spans environments.
	EnvFingerprints []string
	// Series is sorted by (benchmark, metric).
	Series []Series
}

// TrendOptions tunes extraction.
type TrendOptions struct {
	Envelope
	// Metrics selects the metric series per benchmark (default
	// DefaultTrendMetrics).
	Metrics []string
	// Benchmark, when non-empty, keeps only benchmarks containing it.
	Benchmark string
	// Sustain is the minimum run of consecutive excursions that registers
	// as a changepoint (default 2 — a lone outlier is noise).
	Sustain int
	// Last, when > 0, keeps only the newest Last perf entries.
	Last int
}

func (o TrendOptions) withDefaults() TrendOptions {
	o.Envelope = o.Envelope.withDefaults()
	if o.Metrics == nil {
		o.Metrics = DefaultTrendMetrics
	}
	if o.Sustain <= 0 {
		o.Sustain = 2
	}
	return o
}

// ExtractTrend reads every perf pack in the ledger (verifying each
// manifest — a tampered pack surfaces as an ExitVerification error) and
// assembles the per-benchmark time series.
func ExtractTrend(l *Ledger, opts TrendOptions) (*Trend, error) {
	opts = opts.withDefaults()
	entries := l.Entries(KindPerf)
	if opts.Last > 0 && len(entries) > opts.Last {
		entries = entries[len(entries)-opts.Last:]
	}
	t := &Trend{PerfEntries: len(entries), ResultEntries: len(l.Entries(KindResult))}
	seenFP := map[string]bool{}
	type key struct{ bench, metric string }
	series := map[key]*Series{}
	for _, e := range entries {
		if !seenFP[e.EnvFingerprint] {
			seenFP[e.EnvFingerprint] = true
			t.EnvFingerprints = append(t.EnvFingerprints, e.EnvFingerprint)
		}
		pack, err := l.ReadPerf(e.Digest)
		if err != nil {
			return nil, err
		}
		for _, b := range pack.Benchmarks {
			if opts.Benchmark != "" && !strings.Contains(b.Name, opts.Benchmark) {
				continue
			}
			for _, metric := range opts.Metrics {
				s, ok := b.Metrics[metric]
				if !ok {
					continue
				}
				k := key{b.Name, metric}
				sr := series[k]
				if sr == nil {
					sr = &Series{Benchmark: b.Name, Metric: metric, Unit: s.Unit}
					series[k] = sr
				}
				sr.Points = append(sr.Points, Point{
					Digest: e.Digest, CreatedUnixMS: e.CreatedUnixMS,
					EnvFingerprint: e.EnvFingerprint, GitRevision: e.GitRevision,
					Value: s.Median, MAD: s.MAD,
				})
			}
		}
	}
	for _, sr := range series {
		values := make([]float64, len(sr.Points))
		for i, p := range sr.Points {
			values[i] = p.Value
		}
		sr.Median = perf.Median(values)
		sr.MAD = perf.MAD(values)
		sr.Last = values[len(values)-1]
		sr.Changepoint = detectChangepoint(sr, opts)
		t.Series = append(t.Series, *sr)
	}
	sort.Slice(t.Series, func(i, j int) bool {
		a, b := t.Series[i], t.Series[j]
		if a.Benchmark != b.Benchmark {
			return a.Benchmark < b.Benchmark
		}
		return a.Metric < b.Metric
	})
	return t, nil
}

// detectChangepoint scans each environment-fingerprint group of the series
// for the earliest index i (≥2 history points) where every later value in
// the group exceeds the envelope over the values before i, with at least
// opts.Sustain excursion points. Groups are scanned independently —
// a level shift that coincides with an environment change is attribution,
// not a changepoint. The most recent group's changepoint wins when several
// groups have one.
func detectChangepoint(sr *Series, opts TrendOptions) *Changepoint {
	groups := map[string][]int{}
	var order []string
	for i, p := range sr.Points {
		if _, ok := groups[p.EnvFingerprint]; !ok {
			order = append(order, p.EnvFingerprint)
		}
		groups[p.EnvFingerprint] = append(groups[p.EnvFingerprint], i)
	}
	var found *Changepoint
	for _, fp := range order {
		idxs := groups[fp]
		values := make([]float64, len(idxs))
		for j, i := range idxs {
			values[j] = sr.Points[i].Value
		}
		m := len(values)
		for i := 2; i <= m-opts.Sustain; i++ {
			base, width := opts.width(sr.Metric, values[:i])
			sustained := true
			for j := i; j < m; j++ {
				if !(values[j] > base+width) {
					sustained = false
					break
				}
			}
			if sustained {
				found = &Changepoint{
					Digest: sr.Points[idxs[i]].Digest, Index: idxs[i],
					EnvFingerprint: fp, Baseline: base, Width: width, Value: values[i],
				}
				break
			}
		}
	}
	return found
}

// jsonFloat converts NaN-capable floats to the pinned resultpack spelling.
type jsonFloat = resultpack.Float

// MarshalCanonical renders the trend as the byte-stable canonical-JSON
// document behind `anonstat trend -json`: derived purely from ledger
// contents (no wall-clock), sorted keys, pinned NaN/±Inf spellings, one
// trailing newline.
func (t *Trend) MarshalCanonical() ([]byte, error) {
	type pointJSON struct {
		Digest         string    `json:"digest"`
		CreatedUnixMS  int64     `json:"created_unix_ms"`
		EnvFingerprint string    `json:"env_fingerprint"`
		GitRevision    string    `json:"git_revision,omitempty"`
		Value          jsonFloat `json:"value"`
		MAD            jsonFloat `json:"mad"`
	}
	type changepointJSON struct {
		Digest         string    `json:"digest"`
		Index          int       `json:"index"`
		EnvFingerprint string    `json:"env_fingerprint"`
		Baseline       jsonFloat `json:"baseline"`
		Width          jsonFloat `json:"width"`
		Value          jsonFloat `json:"value"`
	}
	type seriesJSON struct {
		Benchmark   string           `json:"benchmark"`
		Metric      string           `json:"metric"`
		Unit        string           `json:"unit,omitempty"`
		Points      []pointJSON      `json:"points"`
		Median      jsonFloat        `json:"median"`
		MAD         jsonFloat        `json:"mad"`
		Last        jsonFloat        `json:"last"`
		Changepoint *changepointJSON `json:"changepoint,omitempty"`
	}
	doc := struct {
		Schema          string       `json:"schema"`
		Version         int          `json:"version"`
		PerfEntries     int          `json:"perf_entries"`
		ResultEntries   int          `json:"result_entries"`
		EnvFingerprints []string     `json:"env_fingerprints,omitempty"`
		Series          []seriesJSON `json:"series"`
	}{Schema: TrendSchema, Version: TrendVersion, PerfEntries: t.PerfEntries,
		ResultEntries: t.ResultEntries, EnvFingerprints: t.EnvFingerprints}
	for _, s := range t.Series {
		sj := seriesJSON{
			Benchmark: s.Benchmark, Metric: s.Metric, Unit: s.Unit,
			Median: jsonFloat(s.Median), MAD: jsonFloat(s.MAD), Last: jsonFloat(s.Last),
		}
		for _, p := range s.Points {
			sj.Points = append(sj.Points, pointJSON{
				Digest: p.Digest, CreatedUnixMS: p.CreatedUnixMS,
				EnvFingerprint: p.EnvFingerprint, GitRevision: p.GitRevision,
				Value: jsonFloat(p.Value), MAD: jsonFloat(p.MAD),
			})
		}
		if cp := s.Changepoint; cp != nil {
			sj.Changepoint = &changepointJSON{
				Digest: cp.Digest, Index: cp.Index, EnvFingerprint: cp.EnvFingerprint,
				Baseline: jsonFloat(cp.Baseline), Width: jsonFloat(cp.Width), Value: jsonFloat(cp.Value),
			}
		}
		doc.Series = append(doc.Series, sj)
	}
	canon, err := perf.CanonicalMarshal(doc)
	if err != nil {
		return nil, err
	}
	return append(canon, '\n'), nil
}

// WriteTable renders the trend as a text table with one sparkline per
// series (chronological, min..max scaled within the series).
func (t *Trend) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "trajectory: %d perf entries, %d result entries, %d env fingerprint(s)\n",
		t.PerfEntries, t.ResultEntries, len(t.EnvFingerprints))
	if len(t.Series) == 0 {
		fmt.Fprintln(w, "no series (empty ledger or filtered out)")
		return
	}
	fmt.Fprintf(w, "%-48s %-11s %4s %12s %12s %8s  %s\n",
		"benchmark", "metric", "runs", "median", "last", "ratio", "trend")
	for _, s := range t.Series {
		values := make([]float64, len(s.Points))
		for i, p := range s.Points {
			values[i] = p.Value
		}
		ratio := "-"
		if s.Median != 0 && !math.IsNaN(s.Median) && !math.IsNaN(s.Last) {
			ratio = fmt.Sprintf("%.2fx", s.Last/s.Median)
		}
		mark := ""
		if s.Changepoint != nil {
			mark = fmt.Sprintf("  changepoint@%s", s.Changepoint.Digest[:12])
		}
		fmt.Fprintf(w, "%-48s %-11s %4d %12s %12s %8s  %s%s\n",
			s.Benchmark, s.Metric, len(s.Points),
			fmtValue(s.Median, s.Unit), fmtValue(s.Last, s.Unit), ratio,
			Sparkline(values), mark)
	}
}

// fmtValue renders a metric value with a unit-appropriate human scale.
func fmtValue(v float64, unit string) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case unit == "ns":
		switch {
		case math.Abs(v) >= 1e9:
			return fmt.Sprintf("%.3gs", v/1e9)
		case math.Abs(v) >= 1e6:
			return fmt.Sprintf("%.4gms", v/1e6)
		case math.Abs(v) >= 1e3:
			return fmt.Sprintf("%.4gµs", v/1e3)
		}
		return fmt.Sprintf("%.0fns", v)
	case unit == "bytes" && math.Abs(v) >= 1<<20:
		return fmt.Sprintf("%.4gMiB", v/(1<<20))
	case unit == "bytes" && math.Abs(v) >= 1<<10:
		return fmt.Sprintf("%.4gKiB", v/(1<<10))
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.4gM", v/1e6)
	case math.Abs(v) >= 1e3:
		return fmt.Sprintf("%.4gk", v/1e3)
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
}
