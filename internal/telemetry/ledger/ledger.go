// Package ledger keeps the cross-run trajectory of sealed benchmark and
// result artifacts: an append-only, content-addressed history of perf
// packs (internal/telemetry/perf) and result packs
// (internal/telemetry/resultpack) under one directory:
//
//	<dir>/index.json       canonical-JSON index, sealed with a SHA-256
//	                       self-manifest like the packs themselves
//	<dir>/packs/<digest>.json  the verbatim sealed pack bytes, one file
//	                       per pack, named by its manifest digest
//
// Every index entry is derived purely from the appended pack — digest,
// kind, suite/source, creation timestamp, commit and environment
// fingerprint — so rebuilding a ledger from the same packs reproduces the
// same index bytes. Appends are idempotent (a pack already present is a
// no-op) and serialized through an on-disk lock file, so concurrent
// appenders (CI shards, parallel test runs) interleave safely.
//
// On top of the store, trend.go extracts per-benchmark time series with
// rolling median/MAD statistics and changepoint detection, and gate.go
// generalizes perf.Compare's single-pair noise envelope to the rolling
// history, separating genuine drift from environment changes
// (go version, CPU model, dataset draw) via perf.Env.Fingerprint.
package ledger

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"microdata/internal/telemetry/perf"
	"microdata/internal/telemetry/resultpack"
)

// IndexSchema identifies the ledger index document; IndexVersion is bumped
// on any backwards-incompatible shape change.
const (
	IndexSchema  = "microdata/ledger-index"
	IndexVersion = 1
)

// Entry kinds: which pack schema the entry records.
const (
	KindPerf   = "perf"
	KindResult = "result"
)

const (
	indexFile = "index.json"
	packsDir  = "packs"
	lockName  = ".lock"
)

// Entry is one appended pack's index record. Every field is derived from
// the pack itself, never from append time, so the index is a pure function
// of its pack set.
type Entry struct {
	// Digest is the pack's manifest digest — its content address.
	Digest string `json:"digest"`
	// Kind is KindPerf or KindResult.
	Kind string `json:"kind"`
	// Suite is the perf pack's suite list, or the result pack's source.
	Suite string `json:"suite,omitempty"`
	// Reps is the perf pack's repetition count (0 for result packs).
	Reps int `json:"reps,omitempty"`
	// Benchmarks counts the perf pack's benchmarks, or the result pack's
	// algorithm rows.
	Benchmarks int `json:"benchmarks,omitempty"`
	// CreatedUnixMS is the pack's own creation timestamp; entries order by
	// (CreatedUnixMS, Digest).
	CreatedUnixMS int64 `json:"created_unix_ms"`
	// EnvFingerprint is perf.Env.Fingerprint() — the comparability key the
	// trend gate groups history by.
	EnvFingerprint string `json:"env_fingerprint"`
	// GitRevision is the producing commit (may be empty outside a build
	// with VCS stamping).
	GitRevision string `json:"git_revision,omitempty"`
	// Env is the full fingerprint, kept inline so attribution never needs
	// to re-read the pack.
	Env perf.Env `json:"env"`
}

// Index is the ledger's index document.
type Index struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// Entries is sorted by (CreatedUnixMS, Digest).
	Entries []Entry `json:"entries"`
	// Manifest seals the index; nil only while under construction.
	Manifest *perf.Manifest `json:"manifest,omitempty"`
}

// Ledger is an opened ledger directory.
type Ledger struct {
	Dir   string
	Index *Index
}

// Open loads the ledger at dir. A missing directory or index is a valid
// empty ledger (Append creates both); a present index must parse, match
// the schema/version and verify its self-manifest.
func Open(dir string) (*Ledger, error) {
	l := &Ledger{Dir: dir, Index: &Index{Schema: IndexSchema, Version: IndexVersion}}
	raw, err := os.ReadFile(filepath.Join(dir, indexFile))
	if os.IsNotExist(err) {
		return l, nil
	}
	if err != nil {
		return nil, perf.Exit(perf.ExitInvalid, fmt.Errorf("ledger: %w", err))
	}
	idx, err := readIndex(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Join(dir, indexFile), err)
	}
	l.Index = idx
	return l, nil
}

func readIndex(raw []byte) (*Index, error) {
	var idx Index
	if err := json.Unmarshal(raw, &idx); err != nil {
		return nil, perf.Exit(perf.ExitInvalid, fmt.Errorf("ledger: parse index: %w", err))
	}
	if idx.Schema != IndexSchema {
		return nil, perf.Invalidf("ledger: not a ledger index (schema %q, want %q)", idx.Schema, IndexSchema)
	}
	if idx.Version != IndexVersion {
		return nil, perf.Invalidf("ledger: unsupported index version %d (reader supports %d)", idx.Version, IndexVersion)
	}
	// The index seals exactly like the packs, so the pack verifier applies.
	if err := perf.VerifyRaw(raw); err != nil {
		return nil, err
	}
	return &idx, nil
}

// seal installs the index self-manifest over the manifest-less canonical
// encoding.
func (idx *Index) seal() error {
	idx.Manifest = nil
	canon, err := perf.CanonicalMarshal(idx)
	if err != nil {
		return fmt.Errorf("ledger: seal index: %w", err)
	}
	idx.Manifest = &perf.Manifest{Algorithm: "sha256", Digest: resultpack.HashBytes(canon)}
	return nil
}

// PackPath returns the content-addressed path of a pack by digest.
func (l *Ledger) PackPath(digest string) string {
	return filepath.Join(l.Dir, packsDir, digest+".json")
}

// Entries returns the index entries of the given kind ("" for all), in
// chronological order.
func (l *Ledger) Entries(kind string) []Entry {
	var out []Entry
	for _, e := range l.Index.Entries {
		if kind == "" || e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Find resolves a digest prefix to its unique entry.
func (l *Ledger) Find(prefix string) (*Entry, error) {
	if prefix == "" {
		return nil, perf.Invalidf("ledger: empty digest prefix")
	}
	var match *Entry
	for i := range l.Index.Entries {
		e := &l.Index.Entries[i]
		if strings.HasPrefix(e.Digest, prefix) {
			if match != nil {
				return nil, perf.Invalidf("ledger: digest prefix %q is ambiguous (%s vs %s)",
					prefix, match.Digest[:12], e.Digest[:12])
			}
			match = e
		}
	}
	if match == nil {
		return nil, perf.Invalidf("ledger: no entry matches digest prefix %q", prefix)
	}
	return match, nil
}

// ReadPerf loads and verifies the perf pack behind an entry digest.
func (l *Ledger) ReadPerf(digest string) (*perf.Pack, error) {
	return perf.ReadFile(l.PackPath(digest))
}

// ReadResult loads and verifies the result pack behind an entry digest.
func (l *Ledger) ReadResult(digest string) (*resultpack.Pack, error) {
	return resultpack.ReadFile(l.PackPath(digest))
}

// entryFor classifies raw pack bytes and derives the index entry. Both
// pack readers verify the self-manifest, so only sealed, untampered packs
// are appendable.
func entryFor(raw []byte) (*Entry, error) {
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(raw, &head); err != nil {
		return nil, perf.Exit(perf.ExitInvalid, fmt.Errorf("ledger: parse pack: %w", err))
	}
	switch head.Schema {
	case perf.Schema:
		p, err := perf.Read(raw)
		if err != nil {
			return nil, err
		}
		return &Entry{
			Digest: p.Manifest.Digest, Kind: KindPerf,
			Suite: p.Suite, Reps: p.Reps, Benchmarks: len(p.Benchmarks),
			CreatedUnixMS: p.CreatedUnixMS, EnvFingerprint: p.Env.Fingerprint(),
			GitRevision: p.Env.GitRevision, Env: p.Env,
		}, nil
	case resultpack.Schema:
		p, err := resultpack.Read(raw)
		if err != nil {
			return nil, err
		}
		return &Entry{
			Digest: p.Manifest.Digest, Kind: KindResult,
			Suite: p.Source, Benchmarks: len(p.Algorithms),
			CreatedUnixMS: p.CreatedUnixMS, EnvFingerprint: p.Env.Fingerprint(),
			GitRevision: p.Env.GitRevision, Env: p.Env,
		}, nil
	default:
		return nil, perf.Invalidf("ledger: unsupported pack schema %q", head.Schema)
	}
}

// Append verifies a sealed pack and records it: the verbatim bytes land
// content-addressed under packs/, and the index gains its entry. The
// update is serialized by an on-disk lock and the index is re-read under
// it, so concurrent appenders compose; re-appending a present digest
// returns added=false and changes nothing. On return l.Index reflects the
// post-append index.
func (l *Ledger) Append(raw []byte) (entry *Entry, added bool, err error) {
	entry, err = entryFor(raw)
	if err != nil {
		return nil, false, err
	}
	if err := os.MkdirAll(filepath.Join(l.Dir, packsDir), 0o755); err != nil {
		return nil, false, fmt.Errorf("ledger: %w", err)
	}
	release, err := acquireLock(l.Dir)
	if err != nil {
		return nil, false, err
	}
	defer release()

	// Re-read the index under the lock: another appender may have moved it
	// since Open.
	idx := l.Index
	if onDisk, err := os.ReadFile(filepath.Join(l.Dir, indexFile)); err == nil {
		idx, err = readIndex(onDisk)
		if err != nil {
			return nil, false, err
		}
	} else if !os.IsNotExist(err) {
		return nil, false, fmt.Errorf("ledger: %w", err)
	}
	for _, e := range idx.Entries {
		if e.Digest == entry.Digest {
			l.Index = idx
			return entry, false, nil
		}
	}
	if err := writeFileAtomic(l.PackPath(entry.Digest), raw); err != nil {
		return nil, false, fmt.Errorf("ledger: %w", err)
	}
	idx.Entries = append(idx.Entries, *entry)
	sort.Slice(idx.Entries, func(i, j int) bool {
		a, b := idx.Entries[i], idx.Entries[j]
		if a.CreatedUnixMS != b.CreatedUnixMS {
			return a.CreatedUnixMS < b.CreatedUnixMS
		}
		return a.Digest < b.Digest
	})
	if err := idx.seal(); err != nil {
		return nil, false, err
	}
	canon, err := perf.CanonicalMarshal(idx)
	if err != nil {
		return nil, false, fmt.Errorf("ledger: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(l.Dir, indexFile), append(canon, '\n')); err != nil {
		return nil, false, fmt.Errorf("ledger: %w", err)
	}
	l.Index = idx
	return entry, true, nil
}

// AppendFile appends the pack at path.
func (l *Ledger) AppendFile(path string) (*Entry, bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false, perf.Exit(perf.ExitInvalid, fmt.Errorf("ledger: %w", err))
	}
	entry, added, err := l.Append(raw)
	if err != nil {
		return nil, false, fmt.Errorf("%s: %w", path, err)
	}
	return entry, added, nil
}

// acquireLock takes the ledger's append lock: an O_EXCL lock file, retried
// for up to 10 s. A lock file older than a minute is treated as left over
// from a crashed appender and broken.
func acquireLock(dir string) (release func(), err error) {
	path := filepath.Join(dir, lockName)
	deadline := time.Now().Add(10 * time.Second)
	for {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			f.Close()
			return func() { os.Remove(path) }, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("ledger: lock: %w", err)
		}
		if st, serr := os.Stat(path); serr == nil && time.Since(st.ModTime()) > time.Minute {
			os.Remove(path)
			continue
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("ledger: lock %s held too long (stale appender?)", path)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// writeFileAtomic writes via a temp file + rename so readers never see a
// partial document.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
