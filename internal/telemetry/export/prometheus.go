// Package export encodes telemetry metrics for external consumers. Its
// centerpiece is the Prometheus text exposition format (text/plain;
// version=0.0.4) over a telemetry.Snapshot: counters and gauges as single
// samples, histograms as cumulative _bucket series with le labels plus
// _sum and _count — what the debug server's /metrics endpoint serves and
// any Prometheus-compatible scraper ingests. Delta reports the change
// between two snapshots, for periodic scraping of cumulative registries.
//
// Output is byte-stable: Snapshot construction follows Registry.Do's
// sorted order, the encoder walks each section's names sorted, and NaN
// values are canonicalized at the registry layer.
package export

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"microdata/internal/telemetry"
)

// ContentType is the HTTP Content-Type of the exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// SanitizeName maps a registry metric name ("engine.cache.hit") to a valid
// Prometheus metric name ("engine_cache_hit"): every character outside
// [a-zA-Z0-9_:] becomes '_', and a leading digit is prefixed with '_'.
func SanitizeName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			sb.WriteByte('_')
			sb.WriteRune(r)
			continue
		}
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip decimal, with NaN/+Inf/-Inf spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLE renders a bucket bound for the le label, matching the snapshot
// JSON's trimmed-decimal convention ("1000", "0.5", "+Inf").
func formatLE(bound float64) string {
	if math.IsInf(bound, 1) {
		return "+Inf"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", bound), "0"), ".")
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format: counters, then gauges, then histograms, names sorted within each
// section and sanitized with SanitizeName.
func WritePrometheus(w io.Writer, s telemetry.Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(s.Counters) {
		pn := SanitizeName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", pn)
		fmt.Fprintf(bw, "%s %d\n", pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := SanitizeName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(bw, "%s %s\n", pn, formatValue(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		pn := SanitizeName(name)
		h := s.Histograms[name]
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		for _, b := range h.Buckets {
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", pn, formatLE(b.UpperBound), b.Count)
		}
		fmt.Fprintf(bw, "%s_sum %s\n", pn, formatValue(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", pn, h.Count)
	}
	return bw.Flush()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Delta returns cur − prev: counter values and histogram counts, sums and
// per-bucket counts subtract; gauges keep their current value (a gauge is
// a level, not a flow). Instruments absent from prev pass through whole,
// so the first delta of a periodic scrape equals the full snapshot.
func Delta(prev, cur telemetry.Snapshot) telemetry.Snapshot {
	out := telemetry.Snapshot{}
	if len(cur.Counters) > 0 {
		out.Counters = make(map[string]int64, len(cur.Counters))
		for name, v := range cur.Counters {
			out.Counters[name] = v - prev.Counters[name]
		}
	}
	if len(cur.Gauges) > 0 {
		out.Gauges = make(map[string]float64, len(cur.Gauges))
		for name, v := range cur.Gauges {
			out.Gauges[name] = v
		}
	}
	if len(cur.Histograms) > 0 {
		out.Histograms = make(map[string]telemetry.HistogramSnapshot, len(cur.Histograms))
		for name, h := range cur.Histograms {
			p, ok := prev.Histograms[name]
			if !ok || len(p.Buckets) != len(h.Buckets) {
				out.Histograms[name] = h
				continue
			}
			d := telemetry.HistogramSnapshot{Count: h.Count - p.Count, Sum: h.Sum - p.Sum}
			d.Buckets = make([]telemetry.BucketCount, len(h.Buckets))
			for i, b := range h.Buckets {
				d.Buckets[i] = telemetry.BucketCount{UpperBound: b.UpperBound, Count: b.Count - p.Buckets[i].Count}
			}
			out.Histograms[name] = d
		}
	}
	return out
}

var (
	commentRE = regexp.MustCompile(`^# (TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)|HELP .*)$`)
	// The value alternative is space-free ([^ ]*) so trailing whitespace —
	// which the exposition format does not allow — never hides inside a
	// numeric value; only an optional integer timestamp may follow it.
	sampleRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9][^ ]*)( [0-9]+)?$`)
)

// Validate checks that r holds well-formed exposition-format lines: every
// non-empty line is a # TYPE/# HELP comment or a sample with a valid
// metric name, optional labels and a parseable value. It returns the
// number of sample lines, or the first offending line.
func Validate(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !commentRE.MatchString(line) {
				return samples, fmt.Errorf("export: line %d: malformed comment %q", lineNo, line)
			}
			continue
		}
		if !sampleRE.MatchString(line) {
			return samples, fmt.Errorf("export: line %d: malformed sample %q", lineNo, line)
		}
		// The value is the first field after the metric name and optional
		// label set (label values may themselves contain spaces).
		rest := line
		if i := strings.LastIndex(line, "}"); i >= 0 {
			rest = line[i+1:]
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			rest = line[i+1:]
		}
		val := strings.Fields(rest)[0]
		if _, perr := strconv.ParseFloat(val, 64); perr != nil {
			return samples, fmt.Errorf("export: line %d: bad value %q", lineNo, val)
		}
		samples++
	}
	if serr := sc.Err(); serr != nil {
		return samples, serr
	}
	return samples, nil
}
