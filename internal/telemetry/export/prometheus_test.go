package export

import (
	"math"
	"strings"
	"testing"

	"microdata/internal/telemetry"
)

func buildRegistry() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	reg.Counter("engine.nodes.evaluated").Add(42)
	reg.Counter("attack.cache.hit").Add(7)
	reg.Gauge("ola.best_cost").Set(0.5)
	reg.Gauge("risk.nan").Set(math.NaN())
	reg.Gauge("risk.inf").Set(math.Inf(1))
	h := reg.Histogram("engine.eval.ns", []float64{1e3, 1e6})
	h.Observe(500)
	h.Observe(2_000_000)
	return reg
}

// TestWritePrometheusGolden pins the exact exposition bytes: counters then
// gauges then histograms, names sanitized and sorted, cumulative buckets
// with le labels, NaN/+Inf spelled out.
func TestWritePrometheusGolden(t *testing.T) {
	var buf strings.Builder
	if err := WritePrometheus(&buf, buildRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	const want = `# TYPE attack_cache_hit counter
attack_cache_hit 7
# TYPE engine_nodes_evaluated counter
engine_nodes_evaluated 42
# TYPE ola_best_cost gauge
ola_best_cost 0.5
# TYPE risk_inf gauge
risk_inf +Inf
# TYPE risk_nan gauge
risk_nan NaN
# TYPE engine_eval_ns histogram
engine_eval_ns_bucket{le="1000"} 1
engine_eval_ns_bucket{le="1000000"} 1
engine_eval_ns_bucket{le="+Inf"} 2
engine_eval_ns_sum 2.0005e+06
engine_eval_ns_count 2
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusByteStable: two identical registries expose to
// identical bytes (the promise /metrics scrapers and golden tests rely on).
func TestWritePrometheusByteStable(t *testing.T) {
	var a, b strings.Builder
	if err := WritePrometheus(&a, buildRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, buildRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("expositions differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestExpositionValidates: everything WritePrometheus emits passes Validate
// with the expected sample count.
func TestExpositionValidates(t *testing.T) {
	var buf strings.Builder
	if err := WritePrometheus(&buf, buildRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	samples, err := Validate(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("Validate rejected our own output: %v", err)
	}
	// 2 counters + 3 gauges + (3 buckets + sum + count) = 10 samples.
	if samples != 10 {
		t.Errorf("samples = %d, want 10", samples)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	bad := []string{
		"metric value_is_not_a_number",
		"# a stray comment",
		"-leading_dash 1",
		`metric{unclosed="1} 2`,
	}
	for _, line := range bad {
		if _, err := Validate(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("Validate accepted malformed line %q", line)
		}
	}
	good := "m_with_ts 1 1700000000000\nm_nan NaN\nm{a=\"x y\"} 2\n"
	samples, err := Validate(strings.NewReader(good))
	if err != nil || samples != 3 {
		t.Errorf("Validate(good) = %d, %v; want 3, nil", samples, err)
	}
}

// TestValidateEdgeLines pins the awkward corners of the exposition grammar:
// escape sequences inside label values, the +Inf histogram bucket, signed
// non-finite values, and whitespace discipline.
func TestValidateEdgeLines(t *testing.T) {
	good := []string{
		`m{a="b\"c"} 1`,                     // escaped quote in a label value
		`m{a="line\nbreak",b="back\\"} 2`,   // escaped newline and backslash
		`h_bucket{le="+Inf"} 5`,             // the mandatory terminal bucket
		`h_bucket{le="0.5",quantile="x"} 0`, // multiple labels
		`m_inf +Inf`,                        // signed non-finite values
		`m_neg_inf -Inf`,
		`m_sci 1.25e+06`,
		`m_neg -0`,
	}
	for _, line := range good {
		if samples, err := Validate(strings.NewReader(line + "\n")); err != nil || samples != 1 {
			t.Errorf("Validate(%q) = %d, %v; want 1, nil", line, samples, err)
		}
	}
	bad := []string{
		"m 1 ",                 // trailing whitespace after the value
		"m NaN ",               // ... also after a non-finite value
		"m\t1",                 // tab separator
		`m{a="unterminated} 1`, // unterminated label value
		`h_bucket{le=+Inf} 1`,  // unquoted le bound
		"m Inf initely",        // garbage after a non-finite value
	}
	for _, line := range bad {
		if _, err := Validate(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("Validate accepted malformed line %q", line)
		}
	}
	// A full histogram block round-trips with the exact bytes
	// WritePrometheus produces for a +Inf bucket.
	block := "# TYPE h histogram\n" +
		"h_bucket{le=\"1000\"} 1\n" +
		"h_bucket{le=\"+Inf\"} 2\n" +
		"h_sum 1500\n" +
		"h_count 2\n"
	if samples, err := Validate(strings.NewReader(block)); err != nil || samples != 4 {
		t.Errorf("Validate(histogram block) = %d, %v; want 4, nil", samples, err)
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"engine.cache.hit":   "engine_cache_hit",
		"already_fine:name":  "already_fine:name",
		"9starts.with.digit": "_9starts_with_digit",
		"dash-and space":     "dash_and_space",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestDelta: counters and histogram counts/sums subtract, gauges keep the
// current level, instruments absent from prev pass through whole.
func TestDelta(t *testing.T) {
	prevReg := telemetry.NewRegistry()
	prevReg.Counter("c").Add(10)
	prevReg.Gauge("g").Set(1)
	prevReg.Histogram("h", []float64{10}).Observe(5)
	prev := prevReg.Snapshot()

	curReg := telemetry.NewRegistry()
	curReg.Counter("c").Add(25)
	curReg.Counter("new").Add(3)
	curReg.Gauge("g").Set(7)
	ch := curReg.Histogram("h", []float64{10})
	ch.Observe(5)
	ch.Observe(5)
	ch.Observe(50)
	cur := curReg.Snapshot()

	d := Delta(prev, cur)
	if d.Counters["c"] != 15 {
		t.Errorf("counter delta = %d, want 15", d.Counters["c"])
	}
	if d.Counters["new"] != 3 {
		t.Errorf("new counter delta = %d, want 3 (pass-through)", d.Counters["new"])
	}
	if d.Gauges["g"] != 7 {
		t.Errorf("gauge delta = %v, want current level 7", d.Gauges["g"])
	}
	h := d.Histograms["h"]
	if h.Count != 2 || h.Sum != 55 {
		t.Errorf("histogram delta count=%d sum=%v, want 2 and 55", h.Count, h.Sum)
	}
	// Cumulative buckets subtract per bound: <=10 went 1→2, +Inf went 1→3.
	if h.Buckets[0].Count != 1 || h.Buckets[1].Count != 2 {
		t.Errorf("bucket deltas = %d,%d, want 1,2", h.Buckets[0].Count, h.Buckets[1].Count)
	}
	// First scrape: an empty prev yields the full current snapshot.
	full := Delta(telemetry.Snapshot{}, cur)
	if full.Counters["c"] != 25 || full.Histograms["h"].Count != 3 {
		t.Errorf("delta from empty prev should equal cur, got %+v", full)
	}
}
