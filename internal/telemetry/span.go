package telemetry

import (
	"context"
	"sync"
	"time"
)

// Attr is one span attribute. Values should be strings, integers, floats
// or bools so trace exports stay JSON-stable.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: int64(v)} }

// Int64 builds an integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Span is one timed operation. Spans are created by Start, carry their
// parent link through the context, and are recorded by the tracer when
// End is called. All methods are safe on a nil receiver — a disabled
// telemetry layer hands out nil spans, so instrumentation sites need no
// conditionals.
type Span struct {
	tracer *Tracer
	// ID is the span's identifier, unique within its tracer, assigned in
	// start order beginning at 1.
	ID uint64
	// ParentID links to the enclosing span, 0 for roots.
	ParentID uint64
	// Name identifies the operation ("samarati.search", ...).
	Name string

	start time.Time
	mu    sync.Mutex
	attrs []Attr
	end   time.Time
	ended bool
}

// SetAttr attaches attributes to the span. No-op after End.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.attrs = append(s.attrs, attrs...)
	}
}

// End closes the span and records it with the tracer. Safe to call more
// than once (only the first call records), and safe under a cancelled
// context — algorithms close their spans with defer, so aborted searches
// still produce complete traces.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = s.tracer.now()
	s.mu.Unlock()
	s.tracer.record(s)
}

// Start returns the span's start time.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns end−start for an ended span, 0 otherwise.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return 0
	}
	return s.end.Sub(s.start)
}

// Attrs returns a copy of the span's attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

type spanCtxKey struct{}

// Start opens a span under the active Collector's tracer, parented to the
// span carried by ctx (if any), and returns a context carrying the new
// span for nested Starts. When telemetry is disabled it returns the
// context unchanged and a nil span after a single atomic load — the no-op
// fast path every hot instrumentation site relies on.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	c := active.Load()
	if c == nil || c.Tracer == nil {
		return ctx, nil
	}
	var parentID uint64
	if p, ok := ctx.Value(spanCtxKey{}).(*Span); ok && p != nil {
		parentID = p.ID
	}
	s := c.Tracer.start(name, parentID, attrs)
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
