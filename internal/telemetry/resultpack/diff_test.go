package resultpack

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestDiffIdenticalPacks(t *testing.T) {
	a, b := samplePack(), samplePack()
	if divs := Diff(a, b, DiffOptions{}); len(divs) != 0 {
		t.Fatalf("identical packs diverge: %v", divs)
	}
}

func TestDiffOrderInsensitive(t *testing.T) {
	a, b := samplePack(), samplePack()
	// Reverse the replayed pack's section order: replays are compared
	// unsealed, so Diff must canonicalize ordering itself.
	for i, j := 0, len(b.Algorithms)-1; i < j; i, j = i+1, j-1 {
		b.Algorithms[i], b.Algorithms[j] = b.Algorithms[j], b.Algorithms[i]
	}
	b.Experiments = []string{"E1", "E14"}
	if divs := Diff(a, b, DiffOptions{}); len(divs) != 0 {
		t.Fatalf("reordered sections diverge: %v", divs)
	}
	if a.Algorithms[0].Algorithm != "mondrian" {
		t.Error("Diff mutated its argument's section order")
	}
}

func TestDiffULPTolerance(t *testing.T) {
	a, b := samplePack(), samplePack()
	// Nudge lm by exactly one ULP: inside the default envelope.
	lm := float64(b.Algorithms[1].Measures["lm"])
	b.Algorithms[1].Measures["lm"] = Float(math.Nextafter(lm, 2))
	if divs := Diff(a, b, DiffOptions{}); len(divs) != 0 {
		t.Fatalf("1-ULP nudge diverges under default tolerance: %v", divs)
	}
	// A visible perturbation diverges, with a path naming the field.
	b.Algorithms[1].Measures["lm"] = Float(lm + 0.0001)
	divs := Diff(a, b, DiffOptions{})
	if len(divs) != 1 {
		t.Fatalf("perturbed measure: got %d divergences %v, want 1", len(divs), divs)
	}
	if divs[0].Path != "algorithms[k=2/datafly].measures.lm" {
		t.Errorf("divergence path = %q", divs[0].Path)
	}
	if !strings.Contains(divs[0].String(), "recorded 0.5") {
		t.Errorf("diagnostic missing recorded value: %s", divs[0])
	}
	// Tightening to ULPs=1 keeps the 1-ULP case passing; 5 ULPs away fails.
	b.Algorithms[1].Measures["lm"] = Float(nudge(lm, 5))
	if divs := Diff(a, b, DiffOptions{ULPs: 4}); len(divs) != 1 {
		t.Fatalf("5-ULP nudge under 4-ULP tolerance: %v", divs)
	}
	if divs := Diff(a, b, DiffOptions{ULPs: 5}); len(divs) != 0 {
		t.Fatalf("5-ULP nudge under 5-ULP tolerance: %v", divs)
	}
}

func nudge(v float64, ulps int) float64 {
	for i := 0; i < ulps; i++ {
		v = math.Nextafter(v, math.Inf(1))
	}
	return v
}

func TestDiffDegenerateFloatsAgree(t *testing.T) {
	a, b := samplePack(), samplePack()
	// NaN==NaN, same-sign Inf, and ±0 all count as agreement. Index 0 is
	// the mondrian entry holding the degenerate measures; index 1 datafly.
	a.Algorithms[1].Measures["extra_zero"] = 0
	b.Algorithms[1].Measures["extra_zero"] = Float(math.Copysign(0, -1))
	if divs := Diff(a, b, DiffOptions{}); len(divs) != 0 {
		t.Fatalf("±0 diverge: %v", divs)
	}
	// Sign flip on an infinity is a divergence.
	b.Algorithms[0].Measures["entropy_l"] = Float(math.Inf(-1))
	divs := Diff(a, b, DiffOptions{})
	if len(divs) != 1 || !strings.Contains(divs[0].Path, "entropy_l") {
		t.Fatalf("flipped infinity: %v", divs)
	}
	// NaN vs number is a divergence.
	b.Algorithms[0].Measures["entropy_l"] = Float(math.Inf(1))
	b.Algorithms[0].Measures["prec"] = 0.5
	divs = Diff(a, b, DiffOptions{})
	if len(divs) != 1 || !strings.Contains(divs[0].String(), "recorded NaN") {
		t.Fatalf("NaN vs number: %v", divs)
	}
}

func TestDiffExactFields(t *testing.T) {
	a, b := samplePack(), samplePack()
	b.Algorithms[1].Node = "[1 0 2 0 0 0 0 1]"
	b.Algorithms[0].Classes = 72
	b.Tables[0].SHA256 = "ffff"
	b.Comparisons[0].WTD = "right"
	divs := Diff(a, b, DiffOptions{})
	var paths []string
	for _, d := range divs {
		paths = append(paths, d.Path)
	}
	joined := strings.Join(paths, "\n")
	for _, want := range []string{
		"algorithms[k=2/datafly].node",
		"algorithms[k=10/mondrian].classes",
		"tables[E14].sha256",
		"comparisons[a.csv vs b.csv].wtd",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing divergence %q in:\n%s", want, joined)
		}
	}
	if len(divs) != 4 {
		t.Errorf("got %d divergences, want 4: %v", len(divs), divs)
	}
}

func TestDiffMissingAndExtraEntries(t *testing.T) {
	a, b := samplePack(), samplePack()
	b.Algorithms = b.Algorithms[:2]
	b.Attack = append(b.Attack, AttackRisk{Algorithm: "datafly", K: 10, Marketer: 0.5})
	divs := Diff(a, b, DiffOptions{})
	joined := ""
	for _, d := range divs {
		joined += d.String() + "\n"
	}
	if !strings.Contains(joined, "algorithms[k=2/genetic]: recorded (present), replayed (absent)") {
		t.Errorf("missing algorithm not reported:\n%s", joined)
	}
	if !strings.Contains(joined, "attack[k=10/datafly]: recorded (absent), replayed (present)") {
		t.Errorf("extra attack row not reported:\n%s", joined)
	}
}

func TestWriteDivergences(t *testing.T) {
	var buf bytes.Buffer
	WriteDivergences(&buf, []Divergence{{Path: "p", Recorded: "1", Replayed: "2"}})
	if got := buf.String(); got != "divergence: p: recorded 1, replayed 2\n" {
		t.Errorf("output = %q", got)
	}
}

func TestULPDistance(t *testing.T) {
	if d := ulpDistance(0, math.Copysign(0, -1)); d != 0 {
		t.Errorf("ulp(+0,-0) = %d", d)
	}
	if d := ulpDistance(1, math.Nextafter(1, 2)); d != 1 {
		t.Errorf("ulp(1, next) = %d", d)
	}
	if d := ulpDistance(-1, math.Nextafter(-1, -2)); d != 1 {
		t.Errorf("ulp(-1, next) = %d", d)
	}
	if d := ulpDistance(-math.SmallestNonzeroFloat64, math.SmallestNonzeroFloat64); d != 2 {
		t.Errorf("ulp across zero = %d", d)
	}
	if d := ulpDistance(1, 2); d != 1<<52 {
		t.Errorf("ulp(1,2) = %d, want 2^52", d)
	}
}
