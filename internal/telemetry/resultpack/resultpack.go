// Package resultpack seals experiment *results* into verifiable artifacts,
// the correctness counterpart of package perf's performance packs. A result
// pack (schema "microdata/result-pack" v1) captures what the paper's
// comparison tables actually claim — per-algorithm measure values, chosen
// lattice nodes, equivalence-class shape statistics, attack-risk summaries
// (prosecutor/journalist/marketer) and E-series report digests — as
// canonical JSON (perf.Canonicalize) under a SHA-256 self-manifest and the
// same environment/dataset fingerprint perf packs carry (dataset content
// hash, go version, vcs.revision, seed/N/K).
//
// Because every captured quantity is recomputable from the recorded
// configuration, a sealed pack supports *replay verification*: `compare
// -verify pack.json` re-runs the recorded config against the fingerprinted
// dataset draw and diffs the fresh capture against the recorded one
// field-by-field — exact for codes, nodes and counts, ULP-tolerant for
// float measures (see Diff). Exit codes follow the stable contract shared
// with anonbench and benchdiff: 0 ok, 2 verification/tamper, 5 divergence,
// 6 invalid input.
//
// Floats need one extra rule the perf schema never hit: property vectors
// and measures legitimately produce NaN (precision of local recodings),
// ±Inf (degenerate entropy ratios) and negative zero on degenerate
// classes, none of which encoding/json can represent. The Float type pins
// their spelling — "NaN", "+Inf", "-Inf" as JSON strings, every finite
// value (including -0) as its shortest round-trip decimal — so canonical
// bytes, and therefore manifest digests, are deterministic.
package resultpack

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"

	"microdata/internal/telemetry/perf"
)

// Schema identifies the result-pack document type; Version is bumped on
// any backwards-incompatible shape change.
const (
	Schema  = "microdata/result-pack"
	Version = 1
)

// Source values: how the pack's inputs were obtained, which decides how
// `compare -verify` replays it.
const (
	// SourceCensus: results computed over a generator census draw; replay
	// regenerates the draw from Env.Seed/Env.N and checks Env.DatasetHash.
	SourceCensus = "census"
	// SourcePaper: results computed over the paper's built-in tables;
	// replay recomputes from the embedded data.
	SourcePaper = "paper"
	// SourceFiles: results computed over user-supplied CSV files; replay
	// re-reads the recorded paths and checks the per-file fingerprints.
	SourceFiles = "files"
)

// Float is a float64 whose JSON form is pinned: NaN, +Inf and -Inf encode
// as the strings "NaN", "+Inf" and "-Inf"; finite values (including
// negative zero, which keeps its sign) encode as shortest round-trip
// decimals. Both forms parse back losslessly, so canonicalization is
// byte-stable.
type Float float64

// MarshalJSON implements the pinned spelling.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON accepts both the pinned string spellings and plain JSON
// numbers.
func (f *Float) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*f = Float(math.NaN())
		case "+Inf":
			*f = Float(math.Inf(1))
		case "-Inf":
			*f = Float(math.Inf(-1))
		default:
			return fmt.Errorf("resultpack: invalid float spelling %q", s)
		}
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return fmt.Errorf("resultpack: invalid float %q: %w", b, err)
	}
	*f = Float(v)
	return nil
}

// Pack is one result-pack document. Sections are independent: a pack from
// `anonbench -result-out` carries Algorithms/Attack/Tables over a census
// draw; a pack from `compare -result-out` carries Comparisons over the
// paper tables or fingerprinted files. Empty sections were not captured.
type Pack struct {
	// Schema is always "microdata/result-pack"; Version gates readers.
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// Source is one of SourceCensus, SourcePaper, SourceFiles.
	Source string `json:"source"`
	// CreatedUnixMS timestamps pack creation (not covered by replay diffs).
	CreatedUnixMS int64 `json:"created_unix_ms"`
	// Env fingerprints the producing environment and dataset draw
	// (Env.Seed/N/K and Env.DatasetHash drive census replay).
	Env perf.Env `json:"env"`
	// Ks is the k sweep behind the Algorithms section.
	Ks []int `json:"ks,omitempty"`
	// Experiments lists the E-series IDs whose report digests Tables holds.
	Experiments []string `json:"experiments,omitempty"`
	// Algorithms holds one entry per (k, algorithm) pair, sorted.
	Algorithms []AlgorithmResult `json:"algorithms,omitempty"`
	// Attack holds the per-algorithm record-linkage risk summaries.
	Attack []AttackRisk `json:"attack,omitempty"`
	// AttackPopulation describes the journalist adversary's population
	// draw (the sample plus a second draw at Seed), when Attack is set.
	AttackPopulation *PopulationSpec `json:"attack_population,omitempty"`
	// Tables holds the E-series report digests.
	Tables []TableDigest `json:"tables,omitempty"`
	// Comparisons holds pairwise comparison verdicts (cmd/compare).
	Comparisons []ComparisonResult `json:"comparisons,omitempty"`
	// Files fingerprints the input files of a SourceFiles pack.
	Files []FileFingerprint `json:"files,omitempty"`
	// Manifest seals the document; nil only while under construction.
	Manifest *perf.Manifest `json:"manifest,omitempty"`
}

// AlgorithmResult records everything the comparison tables claim about one
// algorithm at one k: the chosen lattice node, the scalar measure values,
// and the shape of the equivalence-class size distribution.
type AlgorithmResult struct {
	Algorithm string `json:"algorithm"`
	K         int    `json:"k"`
	// Failed carries the error string when the algorithm could not satisfy
	// the configuration (a deterministic outcome worth pinning too).
	Failed string `json:"failed,omitempty"`
	// Node is the chosen lattice node ("[0 1 2]") for global recodings;
	// empty for local recodings (no lattice).
	Node string `json:"node,omitempty"`
	// KActual, Classes and Suppressed are exact integer claims.
	KActual    int `json:"k_actual,omitempty"`
	Classes    int `json:"classes,omitempty"`
	Suppressed int `json:"suppressed,omitempty"`
	// Measures maps measure name (lm, dm, cavg, prec, distinct_l,
	// entropy_l, t_close) to its value; replay compares ULP-tolerantly.
	Measures map[string]Float `json:"measures,omitempty"`
	// ClassShape summarizes the equivalence-class size vector.
	ClassShape *ShapeStats `json:"class_shape,omitempty"`
}

// ShapeStats is the five-number-plus-Gini summary of a property vector.
type ShapeStats struct {
	Min    Float `json:"min"`
	Q1     Float `json:"q1"`
	Median Float `json:"median"`
	Q3     Float `json:"q3"`
	Max    Float `json:"max"`
	Gini   Float `json:"gini"`
}

// RiskSummary condenses a per-individual risk vector.
type RiskSummary struct {
	Mean   Float `json:"mean"`
	Median Float `json:"median"`
	Max    Float `json:"max"`
}

// AttackRisk records the record-linkage risk summaries for one algorithm's
// release at one k under the three paper adversary models.
type AttackRisk struct {
	Algorithm string `json:"algorithm"`
	K         int    `json:"k"`
	// Failed carries the error string when the algorithm's release could
	// not be produced.
	Failed     string       `json:"failed,omitempty"`
	Prosecutor *RiskSummary `json:"prosecutor,omitempty"`
	Journalist *RiskSummary `json:"journalist,omitempty"`
	Marketer   Float        `json:"marketer,omitempty"`
}

// PopulationSpec describes the journalist population draw so replay can
// reconstruct it exactly.
type PopulationSpec struct {
	N    int    `json:"n"`
	Seed int64  `json:"seed"`
	Hash string `json:"hash,omitempty"`
}

// TableDigest pins one experiment's full text report.
type TableDigest struct {
	ID     string `json:"id"`
	SHA256 string `json:"sha256"`
	Bytes  int    `json:"bytes"`
}

// ComparisonResult records one pairwise comparison's verdicts: the
// dominance relation, the per-comparator outcomes and the WTD verdict,
// each as the stable strings cmd/compare prints.
type ComparisonResult struct {
	Left   string `json:"left"`
	Right  string `json:"right"`
	KLeft  int    `json:"k_left"`
	KRight int    `json:"k_right"`
	// Dominance is the privacy-vector dominance relation string.
	Dominance string `json:"dominance"`
	// Privacy maps comparator name (min, cov, spr, rank, hv-log) to the
	// winning side: "left", "right" or "tie".
	Privacy map[string]string `json:"privacy"`
	// UtilityCov is the coverage verdict over the utility vectors.
	UtilityCov string `json:"utility_cov"`
	// WTD is the multi-property weighted-tournament verdict.
	WTD string `json:"wtd"`
}

// FileFingerprint pins one input file of a SourceFiles pack.
type FileFingerprint struct {
	// Role names the slot: "orig", "a" or "b".
	Role   string `json:"role"`
	Path   string `json:"path"`
	SHA256 string `json:"sha256"`
}

// TableRecorder accumulates per-experiment report digests as the runner
// emits them — the pack sink the experiment runners write into. The zero
// value is ready; a nil recorder ignores writes, so runner call sites need
// no guards.
type TableRecorder struct {
	tables []TableDigest
}

// Add records one experiment's report digest.
func (r *TableRecorder) Add(id string, sum [sha256.Size]byte, n int) {
	if r == nil {
		return
	}
	r.tables = append(r.tables, TableDigest{ID: id, SHA256: hex.EncodeToString(sum[:]), Bytes: n})
}

// Tables returns the recorded digests sorted by experiment ID.
func (r *TableRecorder) Tables() []TableDigest {
	if r == nil {
		return nil
	}
	out := append([]TableDigest(nil), r.tables...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Seal sorts every section into canonical order, computes the SHA-256
// self-manifest over the canonical encoding of the pack without its
// manifest, and installs it.
func (p *Pack) Seal() error {
	p.sortSections()
	p.Manifest = nil
	canon, err := perf.CanonicalMarshal(p)
	if err != nil {
		return fmt.Errorf("resultpack: seal: %w", err)
	}
	sum := sha256.Sum256(canon)
	p.Manifest = &perf.Manifest{Algorithm: "sha256", Digest: hex.EncodeToString(sum[:])}
	return nil
}

func (p *Pack) sortSections() {
	sort.Slice(p.Algorithms, func(i, j int) bool {
		a, b := p.Algorithms[i], p.Algorithms[j]
		if a.K != b.K {
			return a.K < b.K
		}
		return a.Algorithm < b.Algorithm
	})
	sort.Slice(p.Attack, func(i, j int) bool {
		a, b := p.Attack[i], p.Attack[j]
		if a.K != b.K {
			return a.K < b.K
		}
		return a.Algorithm < b.Algorithm
	})
	sort.Slice(p.Tables, func(i, j int) bool { return p.Tables[i].ID < p.Tables[j].ID })
	sort.Slice(p.Files, func(i, j int) bool { return p.Files[i].Role < p.Files[j].Role })
	sort.Strings(p.Experiments)
}

// WriteCanonical writes the sealed pack as canonical JSON plus a trailing
// newline (not covered by the digest; Read tolerates it).
func (p *Pack) WriteCanonical(w io.Writer) error {
	if p.Manifest == nil {
		if err := p.Seal(); err != nil {
			return err
		}
	}
	canon, err := perf.CanonicalMarshal(p)
	if err != nil {
		return fmt.Errorf("resultpack: %w", err)
	}
	if _, err := w.Write(canon); err != nil {
		return err
	}
	_, err = w.Write([]byte("\n"))
	return err
}

// WriteFile writes the sealed pack to path ("-" for stdout).
func (p *Pack) WriteFile(path string) error {
	if path == "-" {
		return p.WriteCanonical(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteCanonical(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses and validates a result-pack document: schema and version
// must match (ExitInvalid otherwise), and the self-manifest must verify
// against the document bytes (ExitVerification otherwise — a pack without
// a manifest, or edited after sealing, fails).
func Read(raw []byte) (*Pack, error) {
	var p Pack
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, perf.Exit(perf.ExitInvalid, fmt.Errorf("resultpack: parse pack: %w", err))
	}
	if p.Schema != Schema {
		return nil, perf.Invalidf("resultpack: not a result pack (schema %q, want %q)", p.Schema, Schema)
	}
	if p.Version != Version {
		return nil, perf.Invalidf("resultpack: unsupported pack version %d (reader supports %d)", p.Version, Version)
	}
	if err := VerifyRaw(raw); err != nil {
		return nil, err
	}
	return &p, nil
}

// ReadFile reads and verifies a pack from disk.
func ReadFile(path string) (*Pack, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, perf.Exit(perf.ExitInvalid, fmt.Errorf("resultpack: %w", err))
	}
	p, err := Read(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// VerifyRaw checks the self-manifest of a serialized pack: the document
// minus its manifest field, canonicalized, must hash to the manifest
// digest. Any post-seal edit — a flipped byte, a retouched measure —
// changes the canonical bytes and fails with an ExitVerification error.
// The check is shared with perf packs (same sealing construction).
func VerifyRaw(raw []byte) error {
	return perf.VerifyRaw(raw)
}

// VerifyFile reads path and checks its self-manifest.
func VerifyFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return perf.Exit(perf.ExitInvalid, fmt.Errorf("resultpack: %w", err))
	}
	if err := VerifyRaw(raw); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// HashBytes returns the hex SHA-256 of raw — the fingerprint recorded for
// SourceFiles inputs.
func HashBytes(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}
