package resultpack

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

// DiffOptions tunes the replay comparison.
type DiffOptions struct {
	// ULPs is the float-equality tolerance in units-in-the-last-place
	// (default 4). Integer claims (nodes, counts, digests, verdicts) are
	// always exact; the tolerance only widens Measure/ShapeStats/Risk
	// float comparisons, absorbing summation-order jitter without letting
	// any humanly-visible change (a retouched fourth decimal) through.
	ULPs uint64
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.ULPs == 0 {
		o.ULPs = 4
	}
	return o
}

// Divergence is one field where the replayed capture disagrees with the
// recorded pack, addressed by a JSONPath-style path.
type Divergence struct {
	Path     string `json:"path"`
	Recorded string `json:"recorded"`
	Replayed string `json:"replayed"`
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s: recorded %s, replayed %s", d.Path, d.Recorded, d.Replayed)
}

// Diff compares a replayed capture against the recorded pack field by
// field and returns every divergence. Manifest, timestamps and environment
// are out of scope (the manifest is checked by Read; environment changes
// are surfaced separately by the caller) — Diff judges only the claims.
func Diff(recorded, replayed *Pack, opts DiffOptions) []Divergence {
	opts = opts.withDefaults()
	d := &differ{opts: opts}
	rec, rep := clonedSorted(recorded), clonedSorted(replayed)

	d.exact("source", rec.Source, rep.Source)
	d.ints("ks", rec.Ks, rep.Ks)
	d.exactList("experiments", rec.Experiments, rep.Experiments)
	d.algorithms(rec.Algorithms, rep.Algorithms)
	d.attack(rec.Attack, rep.Attack)
	if rec.AttackPopulation != nil || rep.AttackPopulation != nil {
		d.population(rec.AttackPopulation, rep.AttackPopulation)
	}
	d.tables(rec.Tables, rep.Tables)
	d.comparisons(rec.Comparisons, rep.Comparisons)
	d.files(rec.Files, rep.Files)
	return d.out
}

// clonedSorted returns a shallow copy with sections in canonical order, so
// Diff never mutates its arguments and unsealed replays compare correctly.
func clonedSorted(p *Pack) *Pack {
	c := *p
	c.Ks = append([]int(nil), p.Ks...)
	c.Experiments = append([]string(nil), p.Experiments...)
	c.Algorithms = append([]AlgorithmResult(nil), p.Algorithms...)
	c.Attack = append([]AttackRisk(nil), p.Attack...)
	c.Tables = append([]TableDigest(nil), p.Tables...)
	c.Files = append([]FileFingerprint(nil), p.Files...)
	c.sortSections()
	return &c
}

type differ struct {
	opts DiffOptions
	out  []Divergence
}

func (d *differ) add(path, recorded, replayed string) {
	d.out = append(d.out, Divergence{Path: path, Recorded: recorded, Replayed: replayed})
}

func (d *differ) exact(path, rec, rep string) {
	if rec != rep {
		d.add(path, strconv.Quote(rec), strconv.Quote(rep))
	}
}

func (d *differ) exactInt(path string, rec, rep int) {
	if rec != rep {
		d.add(path, strconv.Itoa(rec), strconv.Itoa(rep))
	}
}

func (d *differ) ints(path string, rec, rep []int) {
	if len(rec) != len(rep) {
		d.add(path, fmt.Sprint(rec), fmt.Sprint(rep))
		return
	}
	for i := range rec {
		if rec[i] != rep[i] {
			d.add(path, fmt.Sprint(rec), fmt.Sprint(rep))
			return
		}
	}
}

func (d *differ) exactList(path string, rec, rep []string) {
	if len(rec) != len(rep) {
		d.add(path, fmt.Sprint(rec), fmt.Sprint(rep))
		return
	}
	for i := range rec {
		if rec[i] != rep[i] {
			d.add(path, fmt.Sprint(rec), fmt.Sprint(rep))
			return
		}
	}
}

// float compares ULP-tolerantly: NaN agrees with NaN, infinities must
// match sign, ±0 are equal, and finite values may differ by at most
// opts.ULPs representable doubles.
func (d *differ) float(path string, rec, rep Float) {
	a, b := float64(rec), float64(rep)
	if math.IsNaN(a) && math.IsNaN(b) {
		return
	}
	if a == b { // covers equal finites, same-sign Inf and +0 == -0
		return
	}
	if !math.IsNaN(a) && !math.IsNaN(b) && !math.IsInf(a, 0) && !math.IsInf(b, 0) &&
		ulpDistance(a, b) <= d.opts.ULPs {
		return
	}
	d.add(path, formatFloat(a), formatFloat(b))
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ulpDistance returns how many representable float64 values lie between a
// and b, using the standard monotone mapping of IEEE-754 bit patterns onto
// a signed lexicographic scale (which places -0 and +0 at distance zero).
func ulpDistance(a, b float64) uint64 {
	la, lb := lexBits(a), lexBits(b)
	// Bias onto uint64 so the subtraction cannot overflow.
	ua := uint64(la) + 1<<63
	ub := uint64(lb) + 1<<63
	if ua > ub {
		return ua - ub
	}
	return ub - ua
}

func lexBits(f float64) int64 {
	b := int64(math.Float64bits(f))
	if b < 0 {
		b = math.MinInt64 - b
	}
	return b
}

func (d *differ) measures(path string, rec, rep map[string]Float) {
	for _, name := range sortedKeys(rec) {
		rv, ok := rep[name]
		if !ok {
			d.add(path+"."+name, formatFloat(float64(rec[name])), "(absent)")
			continue
		}
		d.float(path+"."+name, rec[name], rv)
	}
	for _, name := range sortedKeys(rep) {
		if _, ok := rec[name]; !ok {
			d.add(path+"."+name, "(absent)", formatFloat(float64(rep[name])))
		}
	}
}

func sortedKeys(m map[string]Float) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

// sortStrings is a tiny insertion sort: measure maps hold single-digit
// key counts, not worth importing sort's interface machinery per call.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (d *differ) shape(path string, rec, rep *ShapeStats) {
	switch {
	case rec == nil && rep == nil:
		return
	case rec == nil || rep == nil:
		d.add(path, presence(rec != nil), presence(rep != nil))
		return
	}
	d.float(path+".min", rec.Min, rep.Min)
	d.float(path+".q1", rec.Q1, rep.Q1)
	d.float(path+".median", rec.Median, rep.Median)
	d.float(path+".q3", rec.Q3, rep.Q3)
	d.float(path+".max", rec.Max, rep.Max)
	d.float(path+".gini", rec.Gini, rep.Gini)
}

func presence(ok bool) string {
	if ok {
		return "(present)"
	}
	return "(absent)"
}

func (d *differ) algorithms(rec, rep []AlgorithmResult) {
	index := map[string]*AlgorithmResult{}
	for i := range rep {
		index[algKey(rep[i].K, rep[i].Algorithm)] = &rep[i]
	}
	seen := map[string]bool{}
	for i := range rec {
		r := &rec[i]
		key := algKey(r.K, r.Algorithm)
		seen[key] = true
		path := "algorithms[" + key + "]"
		p, ok := index[key]
		if !ok {
			d.add(path, "(present)", "(absent)")
			continue
		}
		d.exact(path+".failed", r.Failed, p.Failed)
		d.exact(path+".node", r.Node, p.Node)
		d.exactInt(path+".k_actual", r.KActual, p.KActual)
		d.exactInt(path+".classes", r.Classes, p.Classes)
		d.exactInt(path+".suppressed", r.Suppressed, p.Suppressed)
		d.measures(path+".measures", r.Measures, p.Measures)
		d.shape(path+".class_shape", r.ClassShape, p.ClassShape)
	}
	for i := range rep {
		if key := algKey(rep[i].K, rep[i].Algorithm); !seen[key] {
			d.add("algorithms["+key+"]", "(absent)", "(present)")
		}
	}
}

func algKey(k int, name string) string { return "k=" + strconv.Itoa(k) + "/" + name }

func (d *differ) risk(path string, rec, rep *RiskSummary) {
	switch {
	case rec == nil && rep == nil:
		return
	case rec == nil || rep == nil:
		d.add(path, presence(rec != nil), presence(rep != nil))
		return
	}
	d.float(path+".mean", rec.Mean, rep.Mean)
	d.float(path+".median", rec.Median, rep.Median)
	d.float(path+".max", rec.Max, rep.Max)
}

func (d *differ) attack(rec, rep []AttackRisk) {
	index := map[string]*AttackRisk{}
	for i := range rep {
		index[algKey(rep[i].K, rep[i].Algorithm)] = &rep[i]
	}
	seen := map[string]bool{}
	for i := range rec {
		r := &rec[i]
		key := algKey(r.K, r.Algorithm)
		seen[key] = true
		path := "attack[" + key + "]"
		p, ok := index[key]
		if !ok {
			d.add(path, "(present)", "(absent)")
			continue
		}
		d.exact(path+".failed", r.Failed, p.Failed)
		d.risk(path+".prosecutor", r.Prosecutor, p.Prosecutor)
		d.risk(path+".journalist", r.Journalist, p.Journalist)
		d.float(path+".marketer", r.Marketer, p.Marketer)
	}
	for i := range rep {
		if key := algKey(rep[i].K, rep[i].Algorithm); !seen[key] {
			d.add("attack["+key+"]", "(absent)", "(present)")
		}
	}
}

func (d *differ) population(rec, rep *PopulationSpec) {
	switch {
	case rec == nil || rep == nil:
		d.add("attack_population", presence(rec != nil), presence(rep != nil))
		return
	}
	d.exactInt("attack_population.n", rec.N, rep.N)
	if rec.Seed != rep.Seed {
		d.add("attack_population.seed", strconv.FormatInt(rec.Seed, 10), strconv.FormatInt(rep.Seed, 10))
	}
	d.exact("attack_population.hash", rec.Hash, rep.Hash)
}

func (d *differ) tables(rec, rep []TableDigest) {
	index := map[string]TableDigest{}
	for _, t := range rep {
		index[t.ID] = t
	}
	seen := map[string]bool{}
	for _, t := range rec {
		seen[t.ID] = true
		path := "tables[" + t.ID + "]"
		p, ok := index[t.ID]
		if !ok {
			d.add(path, "(present)", "(absent)")
			continue
		}
		d.exact(path+".sha256", t.SHA256, p.SHA256)
		d.exactInt(path+".bytes", t.Bytes, p.Bytes)
	}
	for _, t := range rep {
		if !seen[t.ID] {
			d.add("tables["+t.ID+"]", "(absent)", "(present)")
		}
	}
}

func (d *differ) comparisons(rec, rep []ComparisonResult) {
	if len(rec) != len(rep) {
		d.add("comparisons", fmt.Sprintf("%d pairs", len(rec)), fmt.Sprintf("%d pairs", len(rep)))
		return
	}
	for i := range rec {
		r, p := &rec[i], &rep[i]
		path := fmt.Sprintf("comparisons[%s vs %s]", r.Left, r.Right)
		d.exact(path+".left", r.Left, p.Left)
		d.exact(path+".right", r.Right, p.Right)
		d.exactInt(path+".k_left", r.KLeft, p.KLeft)
		d.exactInt(path+".k_right", r.KRight, p.KRight)
		d.exact(path+".dominance", r.Dominance, p.Dominance)
		for _, name := range sortedStringKeys(r.Privacy) {
			d.exact(path+".privacy."+name, r.Privacy[name], p.Privacy[name])
		}
		for _, name := range sortedStringKeys(p.Privacy) {
			if _, ok := r.Privacy[name]; !ok {
				d.add(path+".privacy."+name, "(absent)", strconv.Quote(p.Privacy[name]))
			}
		}
		d.exact(path+".utility_cov", r.UtilityCov, p.UtilityCov)
		d.exact(path+".wtd", r.WTD, p.WTD)
	}
}

func sortedStringKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

func (d *differ) files(rec, rep []FileFingerprint) {
	index := map[string]FileFingerprint{}
	for _, f := range rep {
		index[f.Role] = f
	}
	for _, f := range rec {
		path := "files[" + f.Role + "]"
		p, ok := index[f.Role]
		if !ok {
			d.add(path, "(present)", "(absent)")
			continue
		}
		d.exact(path+".path", f.Path, p.Path)
		d.exact(path+".sha256", f.SHA256, p.SHA256)
	}
}

// WriteDivergences renders one line per divergence — the path-level
// diagnostic `compare -verify` prints before exiting with ExitDrift.
func WriteDivergences(w io.Writer, divs []Divergence) {
	for _, d := range divs {
		fmt.Fprintf(w, "divergence: %s\n", d.String())
	}
}
