package resultpack

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"microdata/internal/telemetry/perf"
)

// samplePack builds a pack exercising every section plus the degenerate
// float values property vectors can produce.
func samplePack() *Pack {
	return &Pack{
		Schema:        Schema,
		Version:       Version,
		Source:        SourceCensus,
		CreatedUnixMS: 1700000000000,
		Env:           perf.Env{GoVersion: "go1.22.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4, NumCPU: 4, DatasetHash: "abc123", Seed: 1, N: 1000, K: 10},
		Ks:            []int{2, 10},
		Experiments:   []string{"E14", "E1"},
		Algorithms: []AlgorithmResult{
			{
				Algorithm: "mondrian", K: 10, KActual: 10, Classes: 71, Suppressed: 0,
				Measures: map[string]Float{
					"lm":        0.25,
					"prec":      Float(math.NaN()),
					"entropy_l": Float(math.Inf(1)),
					"t_close":   Float(math.Inf(-1)),
					"cavg":      Float(math.Copysign(0, -1)),
				},
				ClassShape: &ShapeStats{Min: 10, Q1: 11, Median: 13, Q3: 16, Max: 31, Gini: 0.17},
			},
			{Algorithm: "datafly", K: 2, Node: "[1 0 2 0 0 0 0 0]", KActual: 3, Classes: 120, Measures: map[string]Float{"lm": 0.5}},
			{Algorithm: "genetic", K: 2, Failed: "cannot satisfy k within suppression budget"},
		},
		Attack: []AttackRisk{
			{
				Algorithm: "mondrian", K: 10,
				Prosecutor: &RiskSummary{Mean: 0.05, Median: 0.04, Max: 0.1},
				Journalist: &RiskSummary{Mean: 0.02, Median: 0.01, Max: 0.05},
				Marketer:   0.03,
			},
		},
		AttackPopulation: &PopulationSpec{N: 2000, Seed: 2, Hash: "def456"},
		Tables: []TableDigest{
			{ID: "E14", SHA256: "aaaa", Bytes: 1234},
			{ID: "E1", SHA256: "bbbb", Bytes: 99},
		},
		Comparisons: []ComparisonResult{{
			Left: "a.csv", Right: "b.csv", KLeft: 4, KRight: 5,
			Dominance:  "incomparable",
			Privacy:    map[string]string{"cov": "left", "spr": "tie"},
			UtilityCov: "right", WTD: "left",
		}},
		Files: []FileFingerprint{{Role: "a", Path: "a.csv", SHA256: "cccc"}},
	}
}

func TestFloatSpellingPinned(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.NaN(), `"NaN"`},
		{math.Inf(1), `"+Inf"`},
		{math.Inf(-1), `"-Inf"`},
		{math.Copysign(0, -1), `-0`},
		{0, `0`},
		{0.25, `0.25`},
		{1e21, `1e+21`},
		{-1.5e-7, `-1.5e-07`},
	}
	for _, c := range cases {
		got, err := json.Marshal(Float(c.in))
		if err != nil {
			t.Fatalf("marshal %v: %v", c.in, err)
		}
		if string(got) != c.want {
			t.Errorf("Float(%v) = %s, want %s", c.in, got, c.want)
		}
		var back Float
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", got, err)
		}
		b, a := math.Float64bits(float64(back)), math.Float64bits(c.in)
		if b != a && !(math.IsNaN(float64(back)) && math.IsNaN(c.in)) {
			t.Errorf("Float %s round-trips to %v (bits %x), want %v (bits %x)", got, float64(back), b, c.in, a)
		}
	}
	var f Float
	if err := json.Unmarshal([]byte(`"Infinity"`), &f); err == nil {
		t.Error("unpinned spelling \"Infinity\" should be rejected")
	}
}

// TestCanonicalBytesStable pins the canonical encoding of the degenerate
// floats byte-for-byte: NaN/±Inf spelling, -0 keeping its sign, sorted
// keys. A second marshal must reproduce the same bytes (map-order
// independence), which is what makes the manifest digest reproducible
// across process runs.
func TestCanonicalBytesStable(t *testing.T) {
	p := &Pack{
		Schema: Schema, Version: Version, Source: SourceCensus,
		Algorithms: []AlgorithmResult{{
			Algorithm: "x", K: 2,
			Measures: map[string]Float{
				"nan":     Float(math.NaN()),
				"pinf":    Float(math.Inf(1)),
				"ninf":    Float(math.Inf(-1)),
				"negzero": Float(math.Copysign(0, -1)),
				"poszero": 0,
				"frac":    0.1,
			},
		}},
	}
	const want = `{"algorithms":[{"algorithm":"x","k":2,"measures":{"frac":0.1,"nan":"NaN","negzero":-0,"ninf":"-Inf","pinf":"+Inf","poszero":0}}],"created_unix_ms":0,"env":{"go_version":"","goarch":"","gomaxprocs":0,"goos":"","k":0,"n":0,"num_cpu":0,"seed":0},"schema":"microdata/result-pack","source":"census","version":1}`
	for run := 0; run < 2; run++ {
		got, err := perf.CanonicalMarshal(p)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Fatalf("run %d canonical bytes =\n%s\nwant\n%s", run, got, want)
		}
	}
}

func TestSealWriteReadRoundTrip(t *testing.T) {
	p := samplePack()
	var buf bytes.Buffer
	if err := p.WriteCanonical(&buf); err != nil {
		t.Fatal(err)
	}
	if p.Manifest == nil || p.Manifest.Algorithm != "sha256" || p.Manifest.Digest == "" {
		t.Fatalf("pack not sealed: %+v", p.Manifest)
	}
	// Seal sorts sections canonically.
	if p.Algorithms[0].K != 2 || p.Algorithms[0].Algorithm != "datafly" {
		t.Errorf("algorithms not sorted by (k, name): %+v", p.Algorithms[0])
	}
	if p.Tables[0].ID != "E1" || p.Experiments[0] != "E1" {
		t.Error("tables/experiments not sorted")
	}

	back, err := Read(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Source != SourceCensus || len(back.Algorithms) != 3 || len(back.Attack) != 1 {
		t.Fatalf("round-trip lost sections: %+v", back)
	}
	m := back.Algorithms[2].Measures // mondrian at k=10 after sorting
	if !math.IsNaN(float64(m["prec"])) || !math.IsInf(float64(m["entropy_l"]), 1) || !math.IsInf(float64(m["t_close"]), -1) {
		t.Errorf("degenerate measures lost in round-trip: %v", m)
	}
	if v := float64(m["cavg"]); v != 0 || !math.Signbit(v) {
		t.Errorf("negative zero lost: %v (signbit %v)", v, math.Signbit(v))
	}
	// A second write of the re-read pack reproduces identical bytes.
	var buf2 bytes.Buffer
	back.Manifest = nil
	if err := back.WriteCanonical(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-sealed pack bytes differ from the original seal")
	}
}

func TestTamperFailsVerification(t *testing.T) {
	p := samplePack()
	var buf bytes.Buffer
	if err := p.WriteCanonical(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if err := VerifyRaw(raw); err != nil {
		t.Fatalf("clean pack failed verification: %v", err)
	}
	// Flip one digit inside a measure value.
	tampered := bytes.Replace(raw, []byte(`"lm":0.25`), []byte(`"lm":0.26`), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatal("tamper target not found")
	}
	err := VerifyRaw(tampered)
	if perf.ExitCode(err) != perf.ExitVerification {
		t.Fatalf("tampered pack: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitVerification)
	}
	if _, err := Read(tampered); perf.ExitCode(err) != perf.ExitVerification {
		t.Fatalf("Read of tampered pack: %v", err)
	}
	// No manifest at all is also a verification failure.
	var unsealed Pack
	if err := json.Unmarshal(raw, &unsealed); err != nil {
		t.Fatal(err)
	}
	unsealed.Manifest = nil
	naked, err := json.Marshal(&unsealed)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRaw(naked); perf.ExitCode(err) != perf.ExitVerification {
		t.Fatalf("unsealed pack: %v", err)
	}
}

func TestReadRejectsWrongSchemaAndVersion(t *testing.T) {
	if _, err := Read([]byte(`{"schema":"microdata/perf-pack","version":1}`)); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("wrong schema: %v", err)
	}
	if _, err := Read([]byte(`{"schema":"microdata/result-pack","version":99}`)); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("wrong version: %v", err)
	}
	if _, err := Read([]byte(`not json`)); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("malformed: %v", err)
	}
	var ee *perf.ExitError
	_, err := Read([]byte(`{"schema":"x","version":1}`))
	if !errors.As(err, &ee) {
		t.Errorf("schema error should carry an exit code: %v", err)
	}
}

func TestTableRecorder(t *testing.T) {
	var rec TableRecorder
	rec.Add("E14", [32]byte{1}, 10)
	rec.Add("E1", [32]byte{2}, 20)
	got := rec.Tables()
	if len(got) != 2 || got[0].ID != "E1" || got[1].ID != "E14" {
		t.Fatalf("recorder tables = %+v", got)
	}
	if got[0].Bytes != 20 || !strings.HasPrefix(got[0].SHA256, "02") {
		t.Errorf("digest fields wrong: %+v", got[0])
	}
	var nilRec *TableRecorder
	nilRec.Add("E1", [32]byte{}, 1) // must not panic
	if nilRec.Tables() != nil {
		t.Error("nil recorder should return nil tables")
	}
}
