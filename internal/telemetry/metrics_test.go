package telemetry

import (
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentExactTotals hammers one registry from GOMAXPROCS
// goroutines and checks the totals are exact — run under -race in CI.
func TestRegistryConcurrentExactTotals(t *testing.T) {
	const perG = 10_000
	g := runtime.GOMAXPROCS(0)
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("c")
			h := reg.Histogram("h", []float64{10, 100})
			gg := reg.Gauge("g")
			for j := 0; j < perG; j++ {
				c.Inc()
				h.Observe(float64(j % 200))
				gg.Set(float64(j))
			}
		}()
	}
	wg.Wait()
	want := int64(g * perG)
	if got := reg.Counter("c").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	h := reg.Histogram("h", nil)
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	// Each goroutine observes 0..199 fifty times: sum = 50 * (199*200/2).
	wantSum := float64(g) * float64(perG/200) * float64(199*200/2)
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
}

// TestRunRegistryParenting: a run registry forwards every update to the
// active collector's registry, and local counts stay per-run.
func TestRunRegistryParenting(t *testing.T) {
	col := NewCollector()
	prev := SetCollector(col)
	defer SetCollector(prev)

	g := runtime.GOMAXPROCS(0)
	const perG = 5_000
	var wg sync.WaitGroup
	locals := make([]*Registry, g)
	for i := 0; i < g; i++ {
		locals[i] = NewRunRegistry()
		wg.Add(1)
		go func(reg *Registry) {
			defer wg.Done()
			c := reg.Counter("run.steps")
			h := reg.Histogram("run.lat", []float64{1})
			for j := 0; j < perG; j++ {
				c.Inc()
				h.Observe(2)
			}
			reg.Gauge("run.done").Set(1)
		}(locals[i])
	}
	wg.Wait()
	for i, reg := range locals {
		if got := reg.Counter("run.steps").Value(); got != perG {
			t.Errorf("local %d counter = %d, want %d", i, got, perG)
		}
	}
	want := int64(g * perG)
	if got := col.Metrics.Counter("run.steps").Value(); got != want {
		t.Errorf("parent counter = %d, want %d", got, want)
	}
	if got := col.Metrics.Histogram("run.lat", nil).Count(); got != want {
		t.Errorf("parent histogram count = %d, want %d", got, want)
	}
	if got := col.Metrics.Gauge("run.done").Value(); got != 1 {
		t.Errorf("parent gauge = %v, want 1", got)
	}
}

// TestRunRegistryStandaloneWhenDisabled: without a collector, run
// registries have no parent and never touch global state.
func TestRunRegistryStandaloneWhenDisabled(t *testing.T) {
	prev := SetCollector(nil)
	defer SetCollector(prev)
	reg := NewRunRegistry()
	if reg.parent != nil {
		t.Fatal("run registry parented while telemetry disabled")
	}
	reg.Counter("x").Add(3)
	if got := reg.Counter("x").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
}

// TestHistogramBuckets pins the bucket edges: bound b catches values <= b
// in cumulative snapshots, +Inf catches the rest.
func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{10, 100})
	for _, v := range []float64{1, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	s := reg.Snapshot().Histograms["h"]
	if s.Count != 5 || s.Sum != 1122 {
		t.Fatalf("count=%d sum=%v, want 5 and 1122", s.Count, s.Sum)
	}
	wantCum := []int64{2, 4, 5} // <=10, <=100, +Inf
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(wantCum))
	}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[2].UpperBound, 1) {
		t.Errorf("last bucket bound = %v, want +Inf", s.Buckets[2].UpperBound)
	}
}

// TestSnapshotMergeInto pins the Result.Stats bridge: counters and gauges
// with the prefix land in the map, prefix stripped; others are skipped.
func TestSnapshotMergeInto(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("alg.steps").Add(7)
	reg.Gauge("alg.best_cost").Set(0.25)
	reg.Counter("other.steps").Add(99)
	m := map[string]float64{"existing": 1}
	reg.Snapshot().MergeInto(m, "alg.")
	if m["steps"] != 7 || m["best_cost"] != 0.25 || m["existing"] != 1 {
		t.Errorf("merged map = %v", m)
	}
	if _, ok := m["other.steps"]; ok {
		t.Errorf("foreign prefix leaked into map: %v", m)
	}
	if len(m) != 3 {
		t.Errorf("map has %d keys, want 3: %v", len(m), m)
	}
}

// TestSnapshotJSONDeterministic: two identical registries serialize to
// identical bytes (sorted keys, no timestamps).
func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		reg.Counter("b.count").Add(2)
		reg.Counter("a.count").Add(1)
		reg.Gauge("z.gauge").Set(3.5)
		reg.Histogram("h", []float64{1e3, 1e6}).Observe(500)
		return reg
	}
	var a, b strings.Builder
	if err := build().Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("snapshots differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}
