package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
)

// discardHandler drops every record. It is the default handler, so library
// code can log unconditionally: with logging uninstalled each call exits
// at the handler's Enabled check. (log/slog gained a stock DiscardHandler
// only in Go 1.24; this repo's floor is 1.22.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(discardHandler{}))
}

// L returns the package logger; never nil. The default discards.
func L() *slog.Logger { return logger.Load() }

// SetLogHandler swaps the package logger's handler; nil restores the
// discarding default. Returns the previous logger so tests can restore it.
func SetLogHandler(h slog.Handler) *slog.Logger {
	if h == nil {
		h = discardHandler{}
	}
	return logger.Swap(slog.New(h))
}

// NewLogHandler builds the handler the CLIs install from their -v /
// -log-format flags: format is "text" or "json", and verbose selects
// debug- over info-level.
func NewLogHandler(w io.Writer, format string, verbose bool) (slog.Handler, error) {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", "text":
		return slog.NewTextHandler(w, opts), nil
	case "json":
		return slog.NewJSONHandler(w, opts), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
}
