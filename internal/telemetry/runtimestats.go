package telemetry

import (
	"math"
	"runtime"
	"runtime/metrics"
)

// RuntimeStats is one sample of the Go runtime's health, read from the
// runtime/metrics interface (the supported successor to ad-hoc
// runtime.ReadMemStats scraping). It feeds three consumers: the
// debugserver /metrics exposition, the v1 run report, and the perf
// harness's per-repetition health series.
type RuntimeStats struct {
	// HeapObjectsBytes is live heap memory occupied by objects
	// (/memory/classes/heap/objects:bytes).
	HeapObjectsBytes float64
	// HeapTotalBytes is all memory mapped by the runtime
	// (/memory/classes/total:bytes).
	HeapTotalBytes float64
	// GCCycles counts completed GC cycles (/gc/cycles/total:gc-cycles).
	GCCycles float64
	// GCPauseTotalSeconds estimates cumulative stop-the-world pause time
	// from the /gc/pauses:seconds histogram (bucket-midpoint estimate —
	// runtime/metrics exposes distributions, not exact sums).
	GCPauseTotalSeconds float64
	// GCPauses counts individual stop-the-world pauses.
	GCPauses float64
	// Goroutines is the live goroutine count (/sched/goroutines:goroutines).
	Goroutines float64
	// SchedLatencyP50Seconds / SchedLatencyP99Seconds are quantile
	// estimates of how long goroutines waited runnable before running
	// (/sched/latencies:seconds, bucket-midpoint interpolation).
	SchedLatencyP50Seconds float64
	SchedLatencyP99Seconds float64
	// GOMAXPROCS is the scheduler's processor limit.
	GOMAXPROCS float64
}

var runtimeSampleNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/goroutines:goroutines",
	"/sched/latencies:seconds",
}

// ReadRuntimeStats samples the runtime/metrics interface once.
func ReadRuntimeStats() RuntimeStats {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	rs := RuntimeStats{GOMAXPROCS: float64(runtime.GOMAXPROCS(0))}
	for _, s := range samples {
		switch s.Name {
		case "/memory/classes/heap/objects:bytes":
			rs.HeapObjectsBytes = sampleValue(s)
		case "/memory/classes/total:bytes":
			rs.HeapTotalBytes = sampleValue(s)
		case "/gc/cycles/total:gc-cycles":
			rs.GCCycles = sampleValue(s)
		case "/gc/pauses:seconds":
			if h := histOf(s); h != nil {
				rs.GCPauseTotalSeconds, rs.GCPauses = histSum(h)
			}
		case "/sched/goroutines:goroutines":
			rs.Goroutines = sampleValue(s)
		case "/sched/latencies:seconds":
			if h := histOf(s); h != nil {
				rs.SchedLatencyP50Seconds = histQuantile(h, 0.50)
				rs.SchedLatencyP99Seconds = histQuantile(h, 0.99)
			}
		}
	}
	return rs
}

// Gauges flattens the sample into the metric names the /metrics exposition
// and the run report publish.
func (rs RuntimeStats) Gauges() map[string]float64 {
	return map[string]float64{
		"go.goroutines":                rs.Goroutines,
		"go.gomaxprocs":                rs.GOMAXPROCS,
		"go.heap.objects.bytes":        rs.HeapObjectsBytes,
		"go.mem.total.bytes":           rs.HeapTotalBytes,
		"go.gc.cycles":                 rs.GCCycles,
		"go.gc.pause.total.seconds":    rs.GCPauseTotalSeconds,
		"go.sched.latency.p50.seconds": rs.SchedLatencyP50Seconds,
		"go.sched.latency.p99.seconds": rs.SchedLatencyP99Seconds,
	}
}

func sampleValue(s metrics.Sample) float64 {
	switch s.Value.Kind() {
	case metrics.KindUint64:
		return float64(s.Value.Uint64())
	case metrics.KindFloat64:
		return s.Value.Float64()
	default:
		return math.NaN()
	}
}

func histOf(s metrics.Sample) *metrics.Float64Histogram {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return nil
	}
	return s.Value.Float64Histogram()
}

// histSum estimates the total and count of a runtime histogram by bucket
// midpoints (infinite edge buckets are clamped to their finite neighbor).
func histSum(h *metrics.Float64Histogram) (sum float64, count float64) {
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		count += float64(c)
		sum += float64(c) * bucketMid(h, i)
	}
	return sum, count
}

// histQuantile estimates quantile q (0..1) by cumulative bucket counts.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return bucketMid(h, i)
		}
	}
	return bucketMid(h, len(h.Counts)-1)
}

// bucketMid returns the midpoint of bucket i, clamping ±Inf edges.
func bucketMid(h *metrics.Float64Histogram, i int) float64 {
	lo, hi := h.Buckets[i], h.Buckets[i+1]
	if math.IsInf(lo, -1) {
		lo = hi
	}
	if math.IsInf(hi, 1) {
		hi = lo
	}
	return (lo + hi) / 2
}
