package engine

import (
	"fmt"
	"time"

	"microdata/internal/telemetry"
)

// Metric names the engine registers. The engine's counters live in a
// per-engine telemetry registry; when a telemetry.Collector is active the
// registry is parented to the process-wide one, so the same increments
// feed both the per-run Stats snapshot and the global -metrics export.
const (
	MetricNodesEvaluated = "engine.nodes.evaluated"
	MetricCacheHit       = "engine.cache.hit"
	MetricCacheMiss      = "engine.cache.miss"
	MetricRowsScanned    = "engine.rows.scanned"
	MetricPrecomputeNS   = "engine.precompute.ns"
	MetricEvalTotalNS    = "engine.eval.total_ns"
	// MetricEvalHistogram is the per-evaluation latency histogram (ns).
	MetricEvalHistogram = "engine.eval.ns"
	// MetricVisitedPrefix prefixes the per-lattice-level visit counters:
	// "lattice.nodes.visited.l<height>".
	MetricVisitedPrefix = "lattice.nodes.visited.l"
)

// evalBuckets are the fixed upper bounds (ns) of the evaluation-latency
// histogram: 1µs .. 1s, decade steps.
var evalBuckets = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}

// Stats is a snapshot of the engine's counters — a thin view over the
// engine's telemetry registry. The phase timings are cumulative wall time
// spent inside the phase; under parallel batch evaluation the evaluation
// timing sums across workers and can exceed elapsed wall time.
type Stats struct {
	// NodesEvaluated counts full node evaluations (cache misses that ran
	// the signature-assembly + partition + constraint pipeline).
	NodesEvaluated int64
	// CacheHits and CacheMisses count memoized-cache lookups.
	CacheHits   int64
	CacheMisses int64
	// RowsScanned counts table rows processed by node evaluations
	// (NodesEvaluated × N for a fixed table).
	RowsScanned int64
	// Precompute is the time spent building the per-attribute, per-level
	// generalization fragments at engine construction.
	Precompute time.Duration
	// Evaluation is the cumulative time spent evaluating nodes.
	Evaluation time.Duration
}

// String renders the counters in one line for logs and reports.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d hits=%d misses=%d rows=%d precompute=%v eval=%v",
		s.NodesEvaluated, s.CacheHits, s.CacheMisses, s.RowsScanned, s.Precompute, s.Evaluation)
}

// MergeInto folds the counters into an algorithm Result.Stats map under
// engine_* keys (durations in milliseconds).
func (s Stats) MergeInto(m map[string]float64) {
	if m == nil {
		return
	}
	m["engine_nodes_evaluated"] = float64(s.NodesEvaluated)
	m["engine_cache_hits"] = float64(s.CacheHits)
	m["engine_cache_misses"] = float64(s.CacheMisses)
	m["engine_rows_scanned"] = float64(s.RowsScanned)
	m["engine_precompute_ms"] = float64(s.Precompute) / float64(time.Millisecond)
	m["engine_eval_ms"] = float64(s.Evaluation) / float64(time.Millisecond)
}

// instruments holds the engine's registered metric handles, looked up once
// at construction so the hot paths never touch the registry's lock.
type instruments struct {
	reg            *telemetry.Registry
	nodesEvaluated *telemetry.Counter
	cacheHits      *telemetry.Counter
	cacheMisses    *telemetry.Counter
	rowsScanned    *telemetry.Counter
	precomputeNS   *telemetry.Counter
	evalTotalNS    *telemetry.Counter
	evalHist       *telemetry.Histogram
	// visited counts node evaluations per lattice height, index = height.
	visited []*telemetry.Counter
}

// newInstruments registers the engine's metrics in a fresh run registry
// (parented to the active Collector's registry, if any). height is the
// lattice height, bounding the per-level visit counters.
func newInstruments(height int) *instruments {
	reg := telemetry.NewRunRegistry()
	ins := &instruments{
		reg:            reg,
		nodesEvaluated: reg.Counter(MetricNodesEvaluated),
		cacheHits:      reg.Counter(MetricCacheHit),
		cacheMisses:    reg.Counter(MetricCacheMiss),
		rowsScanned:    reg.Counter(MetricRowsScanned),
		precomputeNS:   reg.Counter(MetricPrecomputeNS),
		evalTotalNS:    reg.Counter(MetricEvalTotalNS),
		evalHist:       reg.Histogram(MetricEvalHistogram, evalBuckets),
		visited:        make([]*telemetry.Counter, height+1),
	}
	for h := range ins.visited {
		ins.visited[h] = reg.Counter(fmt.Sprintf("%s%d", MetricVisitedPrefix, h))
	}
	return ins
}

func (c *instruments) snapshot() Stats {
	return Stats{
		NodesEvaluated: c.nodesEvaluated.Value(),
		CacheHits:      c.cacheHits.Value(),
		CacheMisses:    c.cacheMisses.Value(),
		RowsScanned:    c.rowsScanned.Value(),
		Precompute:     time.Duration(c.precomputeNS.Value()),
		Evaluation:     time.Duration(c.evalTotalNS.Value()),
	}
}

// Canceled is the error a cancelled engine operation returns: it wraps the
// context error (errors.Is(err, context.Canceled) holds) and carries the
// partial counters accumulated before the cancellation, so long searches
// abort promptly but still report how far they got.
type Canceled struct {
	// Stats is the engine's counter snapshot at cancellation time.
	Stats Stats
	err   error
}

// Error implements error.
func (c *Canceled) Error() string {
	return fmt.Sprintf("engine: evaluation stopped after %d nodes: %v", c.Stats.NodesEvaluated, c.err)
}

// Unwrap exposes the underlying context error.
func (c *Canceled) Unwrap() error { return c.err }
