package engine

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Stats is a snapshot of the engine's counters. The phase timings are
// cumulative wall time spent inside the phase; under parallel batch
// evaluation the evaluation timing sums across workers and can exceed
// elapsed wall time.
type Stats struct {
	// NodesEvaluated counts full node evaluations (cache misses that ran
	// the signature-assembly + partition + constraint pipeline).
	NodesEvaluated int64
	// CacheHits and CacheMisses count memoized-cache lookups.
	CacheHits   int64
	CacheMisses int64
	// RowsScanned counts table rows processed by node evaluations
	// (NodesEvaluated × N for a fixed table).
	RowsScanned int64
	// Precompute is the time spent building the per-attribute, per-level
	// generalization fragments at engine construction.
	Precompute time.Duration
	// Evaluation is the cumulative time spent evaluating nodes.
	Evaluation time.Duration
}

// String renders the counters in one line for logs and reports.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d hits=%d misses=%d rows=%d precompute=%v eval=%v",
		s.NodesEvaluated, s.CacheHits, s.CacheMisses, s.RowsScanned, s.Precompute, s.Evaluation)
}

// MergeInto folds the counters into an algorithm Result.Stats map under
// engine_* keys (durations in milliseconds).
func (s Stats) MergeInto(m map[string]float64) {
	if m == nil {
		return
	}
	m["engine_nodes_evaluated"] = float64(s.NodesEvaluated)
	m["engine_cache_hits"] = float64(s.CacheHits)
	m["engine_cache_misses"] = float64(s.CacheMisses)
	m["engine_rows_scanned"] = float64(s.RowsScanned)
	m["engine_precompute_ms"] = float64(s.Precompute) / float64(time.Millisecond)
	m["engine_eval_ms"] = float64(s.Evaluation) / float64(time.Millisecond)
}

// counters is the engine's live, atomically-updated view of Stats.
type counters struct {
	nodesEvaluated  atomic.Int64
	cacheHits       atomic.Int64
	cacheMisses     atomic.Int64
	rowsScanned     atomic.Int64
	precomputeNanos atomic.Int64
	evalNanos       atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		NodesEvaluated: c.nodesEvaluated.Load(),
		CacheHits:      c.cacheHits.Load(),
		CacheMisses:    c.cacheMisses.Load(),
		RowsScanned:    c.rowsScanned.Load(),
		Precompute:     time.Duration(c.precomputeNanos.Load()),
		Evaluation:     time.Duration(c.evalNanos.Load()),
	}
}

// Canceled is the error a cancelled engine operation returns: it wraps the
// context error (errors.Is(err, context.Canceled) holds) and carries the
// partial counters accumulated before the cancellation, so long searches
// abort promptly but still report how far they got.
type Canceled struct {
	// Stats is the engine's counter snapshot at cancellation time.
	Stats Stats
	err   error
}

// Error implements error.
func (c *Canceled) Error() string {
	return fmt.Sprintf("engine: evaluation stopped after %d nodes: %v", c.Stats.NodesEvaluated, c.err)
}

// Unwrap exposes the underlying context error.
func (c *Canceled) Unwrap() error { return c.err }
