package engine_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"microdata/internal/algorithm"
	"microdata/internal/engine"
	"microdata/internal/generator"
	"microdata/internal/lattice"
)

// The tentpole benchmark: a full-lattice sweep (evaluate + cost for every
// node, as the exhaustive search does) on the census generator, direct
// ApplyNode/NodeCost pipeline vs. the engine. EXPERIMENTS.md records the
// reproduced numbers. The engine timings INCLUDE engine construction
// (fragment precomputation), so the speedup shown is end-to-end.

func BenchmarkFullLatticeSweep(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		tab, err := generator.Generate(generator.Config{N: n, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		cfg := algorithm.Config{
			K:              5,
			Hierarchies:    generator.Hierarchies(),
			Taxonomies:     generator.Taxonomies(),
			MaxSuppression: 0.02,
			Metric:         algorithm.MetricLM,
		}
		ml, err := cfg.Hierarchies.MaxLevels(tab.Schema)
		if err != nil {
			b.Fatal(err)
		}
		nodes := lattice.Must(ml).Nodes()
		b.Run(fmt.Sprintf("direct/n=%d", n), func(b *testing.B) {
			runtime.GC() // isolate from the previous sub-benchmark's garbage
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, node := range nodes {
					if _, err := algorithm.NodeCost(tab, cfg, node); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("engine/n=%d", n), func(b *testing.B) {
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := engine.New(tab, cfg)
				if err != nil {
					b.Fatal(err)
				}
				evs, err := eng.EvaluateAll(context.Background(), nodes)
				if err != nil {
					b.Fatal(err)
				}
				for _, ev := range evs {
					if _, err := ev.Cost(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkEvaluateCached measures the memoized path: repeated evaluation
// of a hot node (what converged genetic populations pay per individual).
func BenchmarkEvaluateCached(b *testing.B) {
	tab, err := generator.Generate(generator.Config{N: 1000, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	cfg := algorithm.Config{
		K:           5,
		Hierarchies: generator.Hierarchies(),
		Taxonomies:  generator.Taxonomies(),
		Metric:      algorithm.MetricLM,
	}
	eng, err := engine.New(tab, cfg)
	if err != nil {
		b.Fatal(err)
	}
	node := eng.Lattice().Top()
	if _, err := eng.Evaluate(context.Background(), node); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Evaluate(context.Background(), node); err != nil {
			b.Fatal(err)
		}
	}
}
