package engine_test

import (
	"context"
	"reflect"
	"testing"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/algtest"
	"microdata/internal/dataset"
	"microdata/internal/engine"
)

// TestEngineMatchesDirectPipeline pins the tentpole guarantee: for EVERY
// node of the lattice, the engine's partition, violating rows, constraint
// verdict and cost are byte-identical to the direct ApplyNode/NodeCost
// pipeline — across k-anonymity, ℓ-diversity (distinct, entropy and
// recursive variants) and t-closeness, under all three utility metrics,
// with and without a suppression budget.
func TestEngineMatchesDirectPipeline(t *testing.T) {
	paper, paperCfg := algtest.PaperConfig(3)
	census, censusCfg, err := algtest.CensusConfig(120, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		tab  *dataset.Table
		mut  func(*algorithm.Config)
	}{
		{"paper-k3-lm", paper, func(c *algorithm.Config) { *c = paperCfg }},
		{"paper-k3-dm", paper, func(c *algorithm.Config) { *c = paperCfg; c.Metric = algorithm.MetricDM }},
		{"paper-k3-prec", paper, func(c *algorithm.Config) { *c = paperCfg; c.Metric = algorithm.MetricPrec }},
		{"census-k3-lm", census, func(c *algorithm.Config) { *c = censusCfg }},
		{"census-k3-dm", census, func(c *algorithm.Config) { *c = censusCfg; c.Metric = algorithm.MetricDM }},
		{"census-k3-prec", census, func(c *algorithm.Config) { *c = censusCfg; c.Metric = algorithm.MetricPrec }},
		{"census-ldiv", census, func(c *algorithm.Config) { *c = censusCfg; c.MinLDiversity = 2 }},
		{"census-entropy", census, func(c *algorithm.Config) { *c = censusCfg; c.MinEntropyL = 1.2 }},
		{"census-recursive", census, func(c *algorithm.Config) { *c = censusCfg; c.RecursiveC = 2; c.RecursiveL = 2 }},
		{"census-tclose", census, func(c *algorithm.Config) { *c = censusCfg; c.MaxTCloseness = 0.6 }},
		{"census-nosupp-dm", census, func(c *algorithm.Config) { *c = censusCfg; c.MaxSuppression = 0; c.Metric = algorithm.MetricDM }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var cfg algorithm.Config
			tc.mut(&cfg)
			eng, err := engine.New(tc.tab, cfg)
			if err != nil {
				t.Fatal(err)
			}
			budget := cfg.Budget(tc.tab.Len())
			ctx := context.Background()
			for _, n := range eng.Lattice().Nodes() {
				_, p, small, err := algorithm.ApplyNode(tc.tab, cfg, n)
				if err != nil {
					t.Fatalf("node %v: direct ApplyNode: %v", n, err)
				}
				ev, err := eng.Evaluate(ctx, n)
				if err != nil {
					t.Fatalf("node %v: engine: %v", n, err)
				}
				if !reflect.DeepEqual(p.Classes, ev.Partition.Classes) {
					t.Fatalf("node %v: partitions differ:\ndirect %v\nengine %v", n, p.Classes, ev.Partition.Classes)
				}
				if !reflect.DeepEqual(p.ClassOf, ev.Partition.ClassOf) {
					t.Fatalf("node %v: class assignment differs", n)
				}
				if len(small) != len(ev.Bad) || (len(small) > 0 && !reflect.DeepEqual(small, ev.Bad)) {
					t.Fatalf("node %v: violating rows differ:\ndirect %v\nengine %v", n, small, ev.Bad)
				}
				if ev.Satisfies != (len(small) <= budget) {
					t.Fatalf("node %v: verdict %v, direct says %v", n, ev.Satisfies, len(small) <= budget)
				}
				wantCost, wantErr := algorithm.NodeCost(tc.tab, cfg, n)
				gotCost, gotErr := ev.Cost()
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("node %v: cost errors differ: direct %v, engine %v", n, wantErr, gotErr)
				}
				if wantErr == nil && wantCost != gotCost {
					// Exact float equality is intentional: the engine must
					// replicate the direct pipeline's arithmetic bit for bit.
					t.Fatalf("node %v: cost %v != direct %v", n, gotCost, wantCost)
				}
			}
		})
	}
}

// TestEngineMatchesDirectOnLargerBudget stresses the suppressed-partition
// path: a generous budget makes many nodes admissible WITH suppressed rows,
// so DM must rebuild the post-suppression partition and LM must charge the
// suppressed rows as all-stars — both byte-identical to the direct path.
func TestEngineMatchesDirectOnLargerBudget(t *testing.T) {
	census, cfg, err := algtest.CensusConfig(90, 6, 13)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxSuppression = 0.25
	for _, m := range []algorithm.Metric{algorithm.MetricLM, algorithm.MetricDM} {
		cfg.Metric = m
		eng, err := engine.New(census, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range eng.Lattice().Nodes() {
			ev, err := eng.Evaluate(context.Background(), n)
			if err != nil {
				t.Fatal(err)
			}
			wantCost, wantErr := algorithm.NodeCost(census, cfg, n)
			gotCost, gotErr := ev.Cost()
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%v node %v: cost errors differ: %v vs %v", m, n, wantErr, gotErr)
			}
			if wantErr == nil && wantCost != gotCost {
				t.Fatalf("%v node %v: cost %v != direct %v", m, n, gotCost, wantCost)
			}
		}
	}
}
