package engine_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"microdata/internal/algorithm/algtest"
	"microdata/internal/engine"
	"microdata/internal/lattice"
)

func TestEngineCacheCountsAndLRU(t *testing.T) {
	tab, cfg := algtest.PaperConfig(3)
	eng, err := engine.New(tab, cfg, engine.WithCacheSize(2), engine.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a := lattice.Node{0, 0}
	b := lattice.Node{1, 0}
	c := lattice.Node{0, 1}
	for _, n := range []lattice.Node{a, a, a} {
		if _, err := eng.Evaluate(ctx, n); err != nil {
			t.Fatal(err)
		}
	}
	s := eng.Stats()
	if s.CacheMisses != 1 || s.CacheHits != 2 || s.NodesEvaluated != 1 {
		t.Fatalf("after repeated evaluation: %+v", s)
	}
	// Fill past the bound: a, b resident; evaluating c evicts the LRU (a).
	if _, err := eng.Evaluate(ctx, b); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Evaluate(ctx, c); err != nil {
		t.Fatal(err)
	}
	if got := eng.CacheLen(); got != 2 {
		t.Fatalf("cache holds %d entries, want 2", got)
	}
	if _, err := eng.Evaluate(ctx, a); err != nil {
		t.Fatal(err)
	}
	s = eng.Stats()
	if s.CacheMisses != 4 { // a, b, c, then a again after eviction
		t.Fatalf("misses = %d, want 4 (a must have been evicted): %+v", s.CacheMisses, s)
	}
	if s.RowsScanned != s.NodesEvaluated*int64(tab.Len()) {
		t.Fatalf("rows scanned %d != nodes %d x N %d", s.RowsScanned, s.NodesEvaluated, tab.Len())
	}
}

func TestEngineRejectsForeignNodes(t *testing.T) {
	tab, cfg := algtest.PaperConfig(3)
	eng, err := engine.New(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Evaluate(context.Background(), lattice.Node{99, 0}); err == nil {
		t.Error("node outside the lattice must be rejected")
	}
	if _, err := eng.Evaluate(context.Background(), lattice.Node{0}); err == nil {
		t.Error("node of wrong dimension must be rejected")
	}
}

func TestEngineFragmentHelpers(t *testing.T) {
	tab, cfg := algtest.PaperConfig(3)
	eng, err := engine.New(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if eng.NumQI() != 2 {
		t.Fatalf("NumQI = %d, want 2", eng.NumQI())
	}
	// Per-row fragment ids must be as distinct as the generalized column.
	for li := 0; li < eng.NumQI(); li++ {
		for level := 0; level <= eng.Lattice().MaxLevels()[li]; level++ {
			ids, err := eng.FragmentIDs(li, level)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != tab.Len() {
				t.Fatalf("fragment ids cover %d rows, want %d", len(ids), tab.Len())
			}
			distinct := map[uint32]bool{}
			for _, id := range ids {
				distinct[id] = true
			}
			want, err := eng.DistinctAtLevel(li, level)
			if err != nil {
				t.Fatal(err)
			}
			if len(distinct) != want {
				t.Fatalf("attr %d level %d: %d distinct fragment ids, DistinctAtLevel says %d",
					li, level, len(distinct), want)
			}
		}
	}
	if _, err := eng.FragmentIDs(0, 99); err == nil {
		t.Error("out-of-range level must be rejected")
	}
	if _, err := eng.DistinctAtLevel(99, 0); err == nil {
		t.Error("out-of-range attribute must be rejected")
	}
}

func TestEvaluateAllAlignsWithInput(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(80, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(tab, cfg, engine.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	nodes := eng.Lattice().Nodes()
	evs, err := eng.EvaluateAll(context.Background(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(nodes) {
		t.Fatalf("got %d evaluations for %d nodes", len(evs), len(nodes))
	}
	for i, ev := range evs {
		if ev == nil {
			t.Fatalf("evaluation %d missing", i)
		}
		if !ev.Node.Equal(nodes[i]) {
			t.Fatalf("evaluation %d is for node %v, want %v", i, ev.Node, nodes[i])
		}
	}
	// A second pass is pure cache hits.
	before := eng.Stats().NodesEvaluated
	if _, err := eng.EvaluateAll(context.Background(), nodes); err != nil {
		t.Fatal(err)
	}
	if after := eng.Stats().NodesEvaluated; after != before {
		t.Fatalf("re-sweep evaluated %d new nodes, want 0", after-before)
	}
}

func TestCostInfinityOverBudget(t *testing.T) {
	tab, cfg := algtest.PaperConfig(3) // zero suppression budget
	eng, err := engine.New(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := eng.Evaluate(context.Background(), eng.Lattice().Bottom())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Satisfies {
		t.Fatal("raw paper table is not 3-anonymous; bottom node must violate")
	}
	c, err := ev.Cost()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(c, 1) {
		t.Fatalf("over-budget node cost = %v, want +Inf", c)
	}
}

func TestCanceledErrorShape(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(100, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Accumulate some partial work first, then cancel mid-search.
	nodes := eng.Lattice().Nodes()
	if _, err := eng.EvaluateAll(context.Background(), nodes[:3]); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = eng.EvaluateAll(ctx, nodes)
	if err == nil {
		t.Fatal("cancelled sweep must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	var canceled *engine.Canceled
	if !errors.As(err, &canceled) {
		t.Fatalf("error %T is not *engine.Canceled", err)
	}
	if canceled.Stats.NodesEvaluated < 3 {
		t.Fatalf("partial stats lost: %+v", canceled.Stats)
	}
	// Single-node path reports the same shape.
	if _, err := eng.Evaluate(ctx, nodes[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("Evaluate under cancelled ctx returned %v", err)
	}
}
