package engine

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, thread-safe memoization cache from lattice-node
// keys to evaluations. Eviction is least-recently-used so that genetic and
// multi-objective populations — which revisit a drifting working set of
// nodes — keep their hot nodes resident while full-lattice sweeps cannot
// grow memory without bound.
type lruCache struct {
	mu    sync.Mutex
	max   int
	items map[string]*list.Element
	order *list.List // front = most recently used
}

type cacheEntry struct {
	key string
	ev  *Evaluation
}

func newLRUCache(max int) *lruCache {
	return &lruCache{
		max:   max,
		items: make(map[string]*list.Element),
		order: list.New(),
	}
}

// get returns the cached evaluation and refreshes its recency, or nil.
func (c *lruCache) get(key string) *Evaluation {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).ev
}

// put inserts an evaluation, evicting the least recently used entry when
// the cache is full. Evicted evaluations stay valid for holders.
func (c *lruCache) put(key string, ev *Evaluation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).ev = ev
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, ev: ev})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of resident entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
