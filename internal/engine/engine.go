// Package engine is the shared lattice-node evaluation engine behind every
// global-recoding disclosure control algorithm in this reproduction
// (Datafly, Samarati, Incognito, OLA, the optimal exhaustive search, the
// genetic searchers and the §7 multi-objective explorers).
//
// Evaluating a lattice node used to mean generalizing the whole table and
// re-partitioning it from scratch — the hottest path in the codebase. The
// engine removes both costs:
//
//   - Generalization maps are precomputed ONCE per (table, hierarchy set):
//     for each quasi-identifier and each level, the distinct ground values
//     are mapped to compact fragment ids such that two rows share a
//     fragment id exactly when their generalized values coincide. A node
//     evaluation then assembles per-row signatures from fragments instead
//     of constructing a generalized *dataset.Table. Per-fragment Iyengar
//     cell losses are precomputed alongside, so the general loss metric
//     needs no table either.
//   - Evaluations are memoized in a bounded LRU cache keyed by
//     lattice.Node.Key(), storing the partition, the constraint verdict
//     and the (lazily computed, then cached) utility cost — genetic and
//     NSGA-II populations that revisit nodes hit the cache.
//   - EvaluateAll evaluates a batch of nodes on a worker pool sized by
//     runtime.GOMAXPROCS, for Incognito's per-level sweeps, OLA's binary
//     search strata, Samarati's height strata and the exhaustive sweep.
//   - All evaluation honors a context.Context: cancelled searches abort
//     promptly with a *Canceled error wrapping context.Canceled that
//     carries the partial Stats counters.
//
// Materialized anonymized tables are still produced — but only once, for
// the finally selected node, via algorithm.FinishGlobal. Every evaluation
// result is byte-identical to the direct algorithm.ApplyNode/NodeCost
// pipeline (the engine equivalence tests pin this), so switching an
// algorithm onto the engine cannot change its output.
package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/eqclass"
	"microdata/internal/kernels"
	"microdata/internal/lattice"
	"microdata/internal/telemetry"
	"microdata/internal/telemetry/progress"
	"microdata/internal/utility"
)

// DefaultCacheSize bounds the memoized node cache unless WithCacheSize
// overrides it. Full-domain lattices in the experiments hold hundreds of
// nodes; evolutionary searches revisit far fewer distinct ones.
const DefaultCacheSize = 4096

// Option customizes an Engine.
type Option func(*Engine)

// WithCacheSize bounds the memoized node cache to n evaluations (n >= 1).
func WithCacheSize(n int) Option {
	return func(e *Engine) {
		if n >= 1 {
			e.cacheSize = n
		}
	}
}

// WithWorkers fixes the EvaluateAll worker pool size (n >= 1); the default
// is Config.Workers when set, else the module-wide kernels.DefaultWorkers
// (GOMAXPROCS unless the shared -workers setting overrides it).
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n >= 1 {
			e.workers = n
		}
	}
}

// levelFrags is one rung of one attribute's precomputed generalization map.
type levelFrags struct {
	// frag maps a distinct-ground-value id to its fragment id at this
	// level; rows share a fragment id iff their generalized values are
	// identical (by dataset.Value.Key).
	frag []uint32
	// nFrag is the number of distinct fragment ids (the distinct count of
	// the generalized column).
	nFrag int
	// star is the fragment id of the fully suppressed value, or -1 when no
	// ground value generalizes to "*" at this level.
	star int32
	// loss maps a distinct-ground-value id to its Iyengar cell loss at
	// this level; nil when the engine skipped loss precomputation.
	loss []float64
}

// attrFrags is the full generalization map of one quasi-identifier.
type attrFrags struct {
	col    int      // schema column index
	ground []uint32 // row index -> distinct-ground-value id
	levels []levelFrags
}

// Engine evaluates lattice nodes for one (table, config) pair. It is safe
// for concurrent use; construct one per search.
type Engine struct {
	t      *dataset.Table
	cfg    algorithm.Config
	lat    *lattice.Lattice
	budget int
	attrs  []attrFrags
	// lossErr defers a loss-precomputation failure (e.g. a Set hierarchy
	// without a taxonomy) until a cost is actually requested, matching the
	// direct pipeline where ApplyNode succeeds and only NodeCost fails.
	lossErr error

	cacheSize int
	workers   int
	cache     *lruCache
	counters  *instruments
	// scratch pools the per-evaluation code vectors (one []uint32 per
	// quasi-identifier, table-length) across concurrent evaluations.
	scratch sync.Pool
}

// New builds an engine for the table under the configuration. The
// precomputation pass generalizes each attribute's DISTINCT ground values
// once per level — O(Σ_attr distinct×levels) hierarchy calls, independent
// of how many nodes the search will visit.
func New(t *dataset.Table, cfg algorithm.Config, opts ...Option) (*Engine, error) {
	return NewContext(context.Background(), t, cfg, opts...)
}

// NewContext is New under a context carrying the caller's telemetry span:
// the fragment-precompute phase is traced as an "engine.precompute" child
// span, so per-phase breakdowns attribute construction cost correctly.
func NewContext(ctx context.Context, t *dataset.Table, cfg algorithm.Config, opts ...Option) (*Engine, error) {
	if err := cfg.Validate(t); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	maxLevels, err := cfg.Hierarchies.MaxLevels(t.Schema)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	lat, err := lattice.New(maxLevels)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e := &Engine{
		t:         t,
		cfg:       cfg,
		lat:       lat,
		budget:    cfg.Budget(t.Len()),
		cacheSize: DefaultCacheSize,
		workers:   kernels.DefaultWorkers(),
	}
	if cfg.Workers >= 1 {
		e.workers = cfg.Workers
	}
	for _, o := range opts {
		o(e)
	}
	e.cache = newLRUCache(e.cacheSize)
	e.counters = newInstruments(lat.Height())
	e.counters.reg.Gauge("engine.workers").Set(float64(e.workers))
	e.counters.reg.Gauge("engine.cache.size").Set(float64(e.cacheSize))
	_, sp := telemetry.Start(ctx, "engine.precompute",
		telemetry.Int("rows", t.Len()), telemetry.Int("qi", len(t.Schema.QuasiIdentifiers())))
	start := time.Now()
	err = e.precompute()
	e.counters.precomputeNS.Add(int64(time.Since(start)))
	sp.End()
	if err != nil {
		return nil, err
	}
	telemetry.L().Debug("engine: precompute complete",
		"rows", t.Len(), "lattice_height", lat.Height(), "dur", time.Since(start))
	return e, nil
}

// precompute builds the per-attribute, per-level fragment tables. The
// distinct-ground-value pass IS the table's dictionary encoding: each
// quasi-identifier's codes and dictionary come straight from the columnar
// backing (free for tables born columnar — CSV ingest, the generator —
// and built once and cached otherwise).
func (e *Engine) precompute() error {
	qi := e.t.Schema.QuasiIdentifiers()
	needLoss := e.cfg.Metric == algorithm.MetricLM
	e.attrs = make([]attrFrags, len(qi))
	columnar := e.t.Columnar()
	for li, j := range qi {
		attr := e.t.Schema.Attrs[j]
		h, ok := e.cfg.Hierarchies[attr.Name]
		if !ok {
			return fmt.Errorf("engine: no hierarchy for quasi-identifier %q", attr.Name)
		}
		// Distinct ground values in first-appearance order: the column's
		// dictionary. Codes and dictionary are shared read-only.
		col := columnar.Col(j)
		ground := col.Codes()
		distinct := col.Dict()
		// The loss domain mirrors utility.LossVector: numeric attributes
		// take their domain from the ORIGINAL table.
		var domLo, domHi float64
		if attr.Kind == dataset.Numeric {
			if lo, hi, ok := e.t.NumericRange(j); ok {
				domLo, domHi = lo, hi
			}
		}
		tax := e.cfg.Taxonomies[attr.Name]
		levels := make([]levelFrags, h.MaxLevel()+1)
		for l := range levels {
			fragIndex := make(map[string]uint32)
			lf := levelFrags{frag: make([]uint32, len(distinct)), star: -1}
			if needLoss && e.lossErr == nil {
				lf.loss = make([]float64, len(distinct))
			}
			for d, v := range distinct {
				g, err := h.Generalize(v, l)
				if err != nil {
					return fmt.Errorf("engine: attribute %q level %d: %w", attr.Name, l, err)
				}
				key := g.Key()
				id, seen := fragIndex[key]
				if !seen {
					id = uint32(len(fragIndex))
					fragIndex[key] = id
					if g.IsSuppressed() {
						lf.star = int32(id)
					}
				}
				lf.frag[d] = id
				if lf.loss != nil {
					loss, err := utility.CellLoss(g, v, attr, domLo, domHi, tax)
					if err != nil {
						// Defer: constraint checking never needs losses.
						e.lossErr = fmt.Errorf("engine: %w", err)
						lf.loss = nil
						continue
					}
					lf.loss[d] = loss
				}
			}
			lf.nFrag = len(fragIndex)
			levels[l] = lf
		}
		e.attrs[li] = attrFrags{col: j, ground: ground, levels: levels}
	}
	return nil
}

// Lattice returns the full-domain generalization lattice of the
// configuration's hierarchies over the table's quasi-identifiers.
func (e *Engine) Lattice() *lattice.Lattice { return e.lat }

// Budget returns the row-suppression budget for the table.
func (e *Engine) Budget() int { return e.budget }

// NumQI returns the number of quasi-identifiers (the lattice dimension).
func (e *Engine) NumQI() int { return len(e.attrs) }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats { return e.counters.snapshot() }

// CacheLen returns the number of memoized evaluations currently resident.
func (e *Engine) CacheLen() int { return e.cache.len() }

// DistinctAtLevel returns the number of distinct generalized values of
// quasi-identifier li (QI order) at the given level — what
// Table.DistinctCount would report on the generalized column. Datafly's
// most-distinct-first rule reads this instead of generalizing the table.
func (e *Engine) DistinctAtLevel(li, level int) (int, error) {
	if li < 0 || li >= len(e.attrs) {
		return 0, fmt.Errorf("engine: quasi-identifier index %d out of range", li)
	}
	if level < 0 || level >= len(e.attrs[li].levels) {
		return 0, fmt.Errorf("engine: level %d out of range for quasi-identifier %d", level, li)
	}
	return e.attrs[li].levels[level].nFrag, nil
}

// FragmentIDs returns, per row, the signature fragment id of
// quasi-identifier li (QI order) at the given level. Two rows share an id
// exactly when their generalized values at that level are identical —
// μ-Argus groups its quasi-identifier combinations on these ids instead of
// re-generalizing the table each step.
func (e *Engine) FragmentIDs(li, level int) ([]uint32, error) {
	if li < 0 || li >= len(e.attrs) {
		return nil, fmt.Errorf("engine: quasi-identifier index %d out of range", li)
	}
	at := &e.attrs[li]
	if level < 0 || level >= len(at.levels) {
		return nil, fmt.Errorf("engine: level %d out of range for quasi-identifier %d", level, li)
	}
	frag := at.levels[level].frag
	out := make([]uint32, len(at.ground))
	for i, g := range at.ground {
		out[i] = frag[g]
	}
	return out, nil
}

// Evaluation is the memoized outcome of evaluating one lattice node. All
// exported fields are read-only shared state; do not mutate them.
type Evaluation struct {
	// Node is the evaluated node (a private clone).
	Node lattice.Node
	// Partition is the equivalence-class partition of the generalized
	// table BEFORE suppression — identical to what algorithm.ApplyNode
	// returns, including class order.
	Partition *eqclass.Partition
	// Bad lists, sorted ascending, the rows of classes violating the
	// configured constraints (undersized for k, or short of the diversity
	// requirements) — algorithm.ApplyNode's third result.
	Bad []int
	// Satisfies reports len(Bad) <= the suppression budget: the node is
	// admissible for the search.
	Satisfies bool

	eng      *Engine
	costOnce sync.Once
	cost     float64
	costErr  error
}

// Cost returns the node's utility cost under the configured metric, lower
// is better, computed on first use and memoized with the evaluation. Nodes
// over the suppression budget cost +Inf. The value is byte-identical to
// algorithm.NodeCost.
func (ev *Evaluation) Cost() (float64, error) {
	ev.costOnce.Do(func() {
		start := time.Now()
		ev.cost, ev.costErr = ev.eng.cost(ev)
		ev.eng.counters.evalTotalNS.Add(int64(time.Since(start)))
	})
	return ev.cost, ev.costErr
}

// Evaluate returns the (possibly cached) evaluation of one node.
func (e *Engine) Evaluate(ctx context.Context, node lattice.Node) (*Evaluation, error) {
	if err := ctx.Err(); err != nil {
		return nil, &Canceled{Stats: e.Stats(), err: err}
	}
	if !e.lat.Contains(node) {
		return nil, fmt.Errorf("engine: node %v outside lattice %v", node, e.lat.MaxLevels())
	}
	key := node.Key()
	if ev := e.cache.get(key); ev != nil {
		e.counters.cacheHits.Inc()
		return ev, nil
	}
	e.counters.cacheMisses.Inc()
	start := time.Now()
	ev, err := e.evaluate(node)
	elapsed := int64(time.Since(start))
	e.counters.evalTotalNS.Add(elapsed)
	e.counters.evalHist.Observe(float64(elapsed))
	if err != nil {
		return nil, err
	}
	e.cache.put(key, ev)
	return ev, nil
}

// evalScratch holds the per-evaluation code vectors and cardinalities,
// pooled across concurrent node evaluations.
type evalScratch struct {
	cols  [][]uint32
	cards []int
}

func (e *Engine) getScratch() *evalScratch {
	if cs, ok := e.scratch.Get().(*evalScratch); ok {
		return cs
	}
	cs := &evalScratch{cols: make([][]uint32, len(e.attrs)), cards: make([]int, len(e.attrs))}
	n := e.t.Len()
	for li := range cs.cols {
		cs.cols[li] = make([]uint32, n)
	}
	return cs
}

// evaluate runs the vectorized group-by pipeline for one uncached node:
// per attribute, gather the node-level fragment id of every row into a
// pooled code vector (a tight slice-indexing loop), then combine the code
// vectors with eqclass.FromCodes — no per-row signature strings.
func (e *Engine) evaluate(node lattice.Node) (*Evaluation, error) {
	n := e.t.Len()
	e.counters.nodesEvaluated.Inc()
	e.counters.rowsScanned.Add(int64(n))
	if h := node.Height(); h >= 0 && h < len(e.counters.visited) {
		e.counters.visited[h].Inc()
	}
	cs := e.getScratch()
	defer e.scratch.Put(cs)
	for li := range e.attrs {
		at := &e.attrs[li]
		lf := &at.levels[node[li]]
		frag, dst := lf.frag, cs.cols[li]
		for i, g := range at.ground {
			dst[i] = frag[g]
		}
		cs.cards[li] = lf.nFrag
	}
	p, err := eqclass.FromCodes(cs.cols, cs.cards)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	bad, err := algorithm.ViolatingClasses(p, e.t, e.cfg)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	var small []int
	for ci, rows := range p.Classes {
		if bad[ci] {
			small = append(small, rows...)
		}
	}
	sort.Ints(small)
	return &Evaluation{
		Node:      node.Clone(),
		Partition: p,
		Bad:       small,
		Satisfies: len(small) <= e.budget,
		eng:       e,
	}, nil
}

// cost computes the configured utility metric for an admissible node,
// replicating algorithm.NodeCost exactly: suppress the violating rows,
// then score.
func (e *Engine) cost(ev *Evaluation) (float64, error) {
	if !ev.Satisfies {
		return math.Inf(1), nil
	}
	switch e.cfg.Metric {
	case algorithm.MetricLM:
		if e.lossErr != nil {
			return 0, e.lossErr
		}
		return e.lossMetric(ev), nil
	case algorithm.MetricDM:
		p := ev.Partition
		if len(ev.Bad) > 0 {
			var err error
			if p, err = e.suppressedPartition(ev); err != nil {
				return 0, err
			}
		}
		return utility.DiscernibilityMetric(p), nil
	case algorithm.MetricPrec:
		prec, err := utility.Precision(e.t.Schema, e.cfg.Hierarchies, ev.Node)
		if err != nil {
			return 0, fmt.Errorf("engine: %w", err)
		}
		return -prec, nil
	default:
		return 0, fmt.Errorf("engine: unknown metric %v", e.cfg.Metric)
	}
}

// lossMetric assembles Iyengar's general loss metric from the precomputed
// per-fragment cell losses, with the violating rows charged as fully
// suppressed. The summation order mirrors utility.LossVector +
// GeneralLossMetric cell for cell, so the float64 result is bit-identical
// to scoring the materialized table.
func (e *Engine) lossMetric(ev *Evaluation) float64 {
	n := e.t.Len()
	q := len(e.attrs)
	sum := 0.0
	si := 0
	for i := 0; i < n; i++ {
		rowSum := 0.0
		if si < len(ev.Bad) && ev.Bad[si] == i {
			si++
			for li := 0; li < q; li++ {
				rowSum += 1.0
			}
		} else {
			for li := range e.attrs {
				at := &e.attrs[li]
				rowSum += at.levels[ev.Node[li]].loss[at.ground[i]]
			}
		}
		sum += rowSum
	}
	return sum / (float64(q) * float64(n))
}

// suppressedPartition rebuilds the partition with the violating rows
// collapsed into the all-star signature — what eqclass.FromTable reports
// after hierarchy.SuppressRows, without touching a table. Rows whose
// values naturally generalize to "*" share the suppressed rows' fragment
// ids, so natural and forced stars merge into one class exactly as they do
// in the materialized path.
func (e *Engine) suppressedPartition(ev *Evaluation) (*eqclass.Partition, error) {
	n := e.t.Len()
	suppressed := make([]bool, n)
	for _, r := range ev.Bad {
		suppressed[r] = true
	}
	cs := e.getScratch()
	defer e.scratch.Put(cs)
	for li := range e.attrs {
		at := &e.attrs[li]
		lf := &at.levels[ev.Node[li]]
		card := lf.nFrag
		var starID uint32
		if lf.star >= 0 {
			starID = uint32(lf.star)
		} else {
			// No ground value reaches "*" at this level: a sentinel code one
			// past the real ids keeps the star class separate.
			starID = uint32(lf.nFrag)
			card++
		}
		frag, dst := lf.frag, cs.cols[li]
		for i, g := range at.ground {
			if suppressed[i] {
				dst[i] = starID
			} else {
				dst[i] = frag[g]
			}
		}
		cs.cards[li] = card
	}
	p, err := eqclass.FromCodes(cs.cols, cs.cards)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	return p, nil
}

// EvaluateAll evaluates a batch of nodes over the worker pool and returns
// the evaluations aligned with the input slice. On error (including
// cancellation) the returned slice holds the evaluations completed so far
// and the error reports the first failure; a cancelled batch returns a
// *Canceled error wrapping the context error.
func (e *Engine) EvaluateAll(ctx context.Context, nodes []lattice.Node) ([]*Evaluation, error) {
	ctx, sp := telemetry.Start(ctx, "engine.evaluate_all", telemetry.Int("batch", len(nodes)))
	defer sp.End()
	ctx, tr := progress.Start(ctx, "engine.evaluate_all", len(nodes))
	defer tr.Finish()
	out := make([]*Evaluation, len(nodes))
	workers := e.workers
	if workers > len(nodes) {
		workers = len(nodes)
	}
	if workers <= 1 {
		for i, n := range nodes {
			ev, err := e.Evaluate(ctx, n)
			if err != nil {
				return out, err
			}
			out[i] = ev
			tr.Add(1)
		}
		return out, nil
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(nodes) {
					return
				}
				ev, err := e.Evaluate(cctx, nodes[i])
				if err != nil {
					mu.Lock()
					// Prefer the parent context's own cancellation over
					// the secondary errors it induces in other workers.
					if firstErr == nil || (ctx.Err() != nil && !isCanceled(firstErr)) {
						firstErr = err
					}
					mu.Unlock()
					cancel()
					return
				}
				out[i] = ev
				tr.Add(1)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		if ctx.Err() != nil && !isCanceled(firstErr) {
			firstErr = &Canceled{Stats: e.Stats(), err: ctx.Err()}
		}
		return out, firstErr
	}
	if err := ctx.Err(); err != nil {
		return out, &Canceled{Stats: e.Stats(), err: err}
	}
	return out, nil
}

func isCanceled(err error) bool {
	_, ok := err.(*Canceled)
	return ok
}
