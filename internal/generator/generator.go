// Package generator produces deterministic synthetic census microdata in
// the style of the UCI Adult data set used throughout the disclosure
// control literature. The module is offline and carries no data files, so
// the scaled experiments (E14, E15) run on this generator instead; the
// substitution is recorded in DESIGN.md §5 — the generator exercises the
// same code paths (hierarchies, lattices, partitioning, per-tuple metrics)
// that a real census extract would, with enough attribute correlation that
// different algorithms produce genuinely different, biased anonymizations.
package generator

import (
	"fmt"
	"math/rand"

	"microdata/internal/dataset"
	"microdata/internal/hierarchy"
	"microdata/internal/privacy"
)

// Config parameterizes a synthetic census draw.
type Config struct {
	// N is the number of tuples; must be positive.
	N int
	// Seed drives the deterministic PRNG.
	Seed int64
}

// Attribute value pools. Regional zip prefixes mirror the paper's 13xxx
// running example.
var (
	zipRegions = []string{"130", "131", "132", "133", "134", "135"}

	educations = []string{
		"No-HS", "HS-Grad", "Some-College", "Assoc-Voc",
		"Bachelors", "Masters", "Doctorate", "Prof-School",
	}

	maritals = []string{
		"CF-Spouse", "Spouse Present", "Spouse Absent",
		"Separated", "Divorced", "Never Married", "Widowed",
	}

	diseases = []string{
		"Flu", "Bronchitis", "Pneumonia",
		"Gastritis", "Ulcer", "Colitis",
		"HIV", "Hepatitis-B",
		"Diabetes", "Hypertension",
	}
)

// Schema returns the synthetic census schema: Age, ZipCode, Education and
// MaritalStatus are quasi-identifiers; Disease is sensitive.
func Schema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: "Age", Kind: dataset.Numeric, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "ZipCode", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "Education", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "MaritalStatus", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "Disease", Kind: dataset.Categorical, Role: dataset.Sensitive},
	)
}

// Generate draws a deterministic synthetic census table. Rows go straight
// into dictionary-encoded columns, so the returned table carries a columnar
// backing and downstream grouping never re-encodes it.
func Generate(cfg Config) (*dataset.Table, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("generator: N must be positive, got %d", cfg.N)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := dataset.NewColumnar(Schema())
	for i := 0; i < cfg.N; i++ {
		age := drawAge(rng)
		zip := drawZip(rng, age)
		edu := drawEducation(rng, age)
		mar := drawMarital(rng, age)
		dis := drawDisease(rng, age, zip)
		c.MustAppend(
			dataset.NumVal(float64(age)),
			dataset.StrVal(zip),
			dataset.StrVal(edu),
			dataset.StrVal(mar),
			dataset.StrVal(dis),
		)
	}
	return c.Table(), nil
}

// drawAge samples a right-skewed working-age distribution over [17, 90].
func drawAge(rng *rand.Rand) int {
	// Mixture: bulk of working ages plus a retirement tail.
	if rng.Float64() < 0.85 {
		a := 17 + int(rng.ExpFloat64()*14)
		if a > 70 {
			a = 70 - rng.Intn(20)
		}
		return a
	}
	return 60 + rng.Intn(31)
}

// drawZip samples a zip code; region prevalence shifts slightly with age so
// that geographic cuts interact with age cuts.
func drawZip(rng *rand.Rand, age int) string {
	region := rng.Intn(len(zipRegions))
	if age >= 55 && rng.Float64() < 0.4 {
		region = region % 3 // older population clusters in low regions
	}
	return fmt.Sprintf("%s%02d", zipRegions[region], rng.Intn(100))
}

// drawEducation correlates attainment with age (degrees take years).
func drawEducation(rng *rand.Rand, age int) string {
	max := len(educations)
	switch {
	case age < 20:
		max = 2
	case age < 23:
		max = 4
	case age < 27:
		max = 6
	}
	// Skew toward the middle of the available range.
	i := (rng.Intn(max) + rng.Intn(max)) / 2
	return educations[i]
}

// drawMarital correlates status with age.
func drawMarital(rng *rand.Rand, age int) string {
	switch {
	case age < 22:
		if rng.Float64() < 0.9 {
			return "Never Married"
		}
		return maritals[rng.Intn(3)]
	case age < 30:
		if rng.Float64() < 0.45 {
			return "Never Married"
		}
		return maritals[rng.Intn(5)]
	case age >= 70:
		if rng.Float64() < 0.3 {
			return "Widowed"
		}
		return maritals[rng.Intn(len(maritals))]
	default:
		return maritals[rng.Intn(len(maritals))]
	}
}

// drawDisease correlates with age (chronic diseases) and region (infectious
// clusters), giving ℓ-diversity and t-closeness something to measure.
func drawDisease(rng *rand.Rand, age int, zip string) string {
	r := rng.Float64()
	switch {
	case age >= 55 && r < 0.45:
		return diseases[8+rng.Intn(2)] // Diabetes / Hypertension
	case zip[2] >= '4' && r < 0.25:
		return diseases[6+rng.Intn(2)] // HIV / Hepatitis-B cluster
	default:
		return diseases[rng.Intn(6)] // common pool
	}
}

// Hierarchies returns nested generalization ladders for the census schema:
//
//	Age:       widths 5, 10, 20, 40 anchored at 0, then suppression;
//	ZipCode:   5-digit prefix masking;
//	Education: 3-level taxonomy (degree bands);
//	Marital:   2-level taxonomy (Married / Not Married, as in the paper).
//
// Unlike the paper's Age ladders (whose anchors shift between T3b and T4),
// these rungs are nested, so generalization monotonicity holds and the
// lattice-pruning algorithms (Incognito, Samarati) behave canonically.
func Hierarchies() hierarchy.Set {
	return hierarchy.MustSet(
		hierarchy.MustIntervals("Age", 0, 100,
			hierarchy.IntervalLevel{Width: 5, Origin: 0},
			hierarchy.IntervalLevel{Width: 10, Origin: 0},
			hierarchy.IntervalLevel{Width: 20, Origin: 0},
			hierarchy.IntervalLevel{Width: 40, Origin: 0},
		),
		hierarchy.MustPrefixMask("ZipCode", 5, 10),
		EducationTaxonomy(),
		MaritalTaxonomy(),
	)
}

// EducationTaxonomy groups attainment into School / College / Advanced.
func EducationTaxonomy() *hierarchy.Taxonomy {
	return hierarchy.MustTaxonomy("Education", hierarchy.N("*",
		hierarchy.N("School",
			hierarchy.N("No-HS"), hierarchy.N("HS-Grad")),
		hierarchy.N("College",
			hierarchy.N("Some-College"), hierarchy.N("Assoc-Voc"), hierarchy.N("Bachelors")),
		hierarchy.N("Advanced",
			hierarchy.N("Masters"), hierarchy.N("Doctorate"), hierarchy.N("Prof-School")),
	))
}

// MaritalTaxonomy extends the paper's Married / Not Married grouping with
// the Widowed status the census draw uses.
func MaritalTaxonomy() *hierarchy.Taxonomy {
	return hierarchy.MustTaxonomy("MaritalStatus", hierarchy.N("*",
		hierarchy.N("Married",
			hierarchy.N("CF-Spouse"), hierarchy.N("Spouse Present"), hierarchy.N("Spouse Absent")),
		hierarchy.N("Not Married",
			hierarchy.N("Separated"), hierarchy.N("Divorced"),
			hierarchy.N("Never Married"), hierarchy.N("Widowed")),
	))
}

// DiseaseTaxonomy organizes the sensitive attribute for personalized
// (guarding-node) privacy experiments.
func DiseaseTaxonomy() *hierarchy.Taxonomy {
	return hierarchy.MustTaxonomy("Disease", hierarchy.N("*",
		hierarchy.N("Respiratory",
			hierarchy.N("Flu"), hierarchy.N("Bronchitis"), hierarchy.N("Pneumonia")),
		hierarchy.N("Digestive",
			hierarchy.N("Gastritis"), hierarchy.N("Ulcer"), hierarchy.N("Colitis")),
		hierarchy.N("Infectious",
			hierarchy.N("HIV"), hierarchy.N("Hepatitis-B")),
		hierarchy.N("Chronic",
			hierarchy.N("Diabetes"), hierarchy.N("Hypertension")),
	))
}

// Taxonomies returns the quasi-identifier taxonomies for loss computation.
func Taxonomies() map[string]*hierarchy.Taxonomy {
	return map[string]*hierarchy.Taxonomy{
		"Education":     EducationTaxonomy(),
		"MaritalStatus": MaritalTaxonomy(),
	}
}

// Guards draws personalized guarding nodes for every tuple: most
// individuals have no requirement; carriers of stigmatized diseases guard
// their disease category with a tight tolerance.
func Guards(t *dataset.Table, seed int64) ([]privacy.GuardingNode, error) {
	j := t.Schema.Index("Disease")
	if j < 0 {
		return nil, fmt.Errorf("generator: table has no Disease column")
	}
	rng := rand.New(rand.NewSource(seed))
	tax := DiseaseTaxonomy()
	guards := make([]privacy.GuardingNode, t.Len())
	for i := range guards {
		v := t.At(i, j)
		if v.Kind() != dataset.Str {
			return nil, fmt.Errorf("generator: row %d has non-ground disease", i)
		}
		switch {
		case tax.CoversValue("Infectious", v.Text()):
			guards[i] = privacy.GuardingNode{Label: "Infectious", Tolerance: 0.25 + rng.Float64()*0.25}
		case rng.Float64() < 0.2:
			guards[i] = privacy.GuardingNode{Label: v.Text(), Tolerance: 0.4 + rng.Float64()*0.4}
		default:
			guards[i] = privacy.GuardingNode{Label: "*", Tolerance: 1}
		}
	}
	return guards, nil
}
