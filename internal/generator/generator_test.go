package generator

import (
	"testing"

	"microdata/internal/dataset"
	"microdata/internal/eqclass"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{N: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{N: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 200 || b.Len() != 200 {
		t.Fatalf("lengths %d, %d", a.Len(), b.Len())
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !a.At(i, j).Equal(b.At(i, j)) {
				t.Fatalf("row %d col %d differs across identical seeds", i, j)
			}
		}
	}
	c, err := Generate(Config{N: 200, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !a.At(i, j).Equal(c.At(i, j)) {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical tables")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{N: 0}); err == nil {
		t.Error("N=0 should fail")
	}
	if _, err := Generate(Config{N: -5}); err == nil {
		t.Error("negative N should fail")
	}
}

func TestGeneratedValuesAreInDomains(t *testing.T) {
	tab, err := Generate(Config{N: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	hs := Hierarchies()
	if err := hs.CoverQI(tab.Schema); err != nil {
		t.Fatal(err)
	}
	edu := EducationTaxonomy()
	mar := MaritalTaxonomy()
	dis := DiseaseTaxonomy()
	for i := 0; i < tab.Len(); i++ {
		age := tab.At(i, 0)
		if age.Kind() != dataset.Num || age.Float() < 17 || age.Float() > 90 {
			t.Fatalf("row %d: age %v out of range", i, age)
		}
		zip := tab.At(i, 1)
		if zip.Kind() != dataset.Str || len(zip.Text()) != 5 {
			t.Fatalf("row %d: zip %v malformed", i, zip)
		}
		if !edu.CoversValue("*", tab.At(i, 2).Text()) {
			t.Fatalf("row %d: education %v not in taxonomy", i, tab.At(i, 2))
		}
		if !mar.CoversValue("*", tab.At(i, 3).Text()) {
			t.Fatalf("row %d: marital %v not in taxonomy", i, tab.At(i, 3))
		}
		if !dis.CoversValue("*", tab.At(i, 4).Text()) {
			t.Fatalf("row %d: disease %v not in taxonomy", i, tab.At(i, 4))
		}
		// Every QI value must generalize cleanly at every level.
		for _, name := range []string{"Age", "ZipCode", "Education", "MaritalStatus"} {
			j := tab.Schema.Index(name)
			h := hs[name]
			for lv := 0; lv <= h.MaxLevel(); lv++ {
				if _, err := h.Generalize(tab.At(i, j), lv); err != nil {
					t.Fatalf("row %d: %s level %d: %v", i, name, lv, err)
				}
			}
		}
	}
}

func TestGeneratedDataHasDiversity(t *testing.T) {
	tab, err := Generate(Config{N: 1000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// The raw table should be nowhere near k-anonymous (that is the point
	// of anonymizing it) and diseases should cover the full pool.
	p, err := eqclass.FromTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	if p.MinSize() > 1 {
		t.Errorf("raw census is already %d-anonymous — too little variety", p.MinSize())
	}
	if got := tab.DistinctCount(4); got < 8 {
		t.Errorf("only %d distinct diseases", got)
	}
	if got := tab.DistinctCount(0); got < 30 {
		t.Errorf("only %d distinct ages", got)
	}
}

func TestGuards(t *testing.T) {
	tab, err := Generate(Config{N: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	guards, err := Guards(tab, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(guards) != tab.Len() {
		t.Fatalf("%d guards for %d rows", len(guards), tab.Len())
	}
	dis := DiseaseTaxonomy()
	infectious, unrestricted := 0, 0
	for i, g := range guards {
		if g.Tolerance < 0 || g.Tolerance > 1 {
			t.Fatalf("guard %d tolerance %v", i, g.Tolerance)
		}
		switch g.Label {
		case "*":
			unrestricted++
		case "Infectious":
			infectious++
			if !dis.CoversValue("Infectious", tab.At(i, 4).Text()) {
				t.Fatalf("row %d guards Infectious but has %v", i, tab.At(i, 4))
			}
		}
	}
	if infectious == 0 {
		t.Error("no infectious-disease guards drawn")
	}
	if unrestricted == 0 {
		t.Error("no unrestricted individuals drawn")
	}
	// Deterministic.
	again, _ := Guards(tab, 5)
	for i := range guards {
		if guards[i] != again[i] {
			t.Fatal("Guards not deterministic")
		}
	}
	noDis := dataset.NewTable(dataset.MustSchema(dataset.Attribute{Name: "X"}))
	if _, err := Guards(noDis, 1); err == nil {
		t.Error("missing Disease column should fail")
	}
}
