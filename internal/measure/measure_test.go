package measure

import (
	"math"
	"testing"

	"microdata/internal/core"
	"microdata/internal/dataset"
	"microdata/internal/paperdata"
)

func ctx(t *testing.T, anon *dataset.Table) *Context {
	t.Helper()
	c, err := NewContext(paperdata.T1(), anon, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewContextValidation(t *testing.T) {
	if _, err := NewContext(nil, paperdata.T3a(), nil); err == nil {
		t.Error("nil original should fail")
	}
	if _, err := NewContext(paperdata.T1(), nil, nil); err == nil {
		t.Error("nil anon should fail")
	}
	short := paperdata.T3a()
	short.Rows = short.Rows[:5]
	if _, err := NewContext(paperdata.T1(), short, nil); err == nil {
		t.Error("size mismatch should fail")
	}
	empty := dataset.NewTable(paperdata.Schema())
	if _, err := NewContext(empty, empty, nil); err == nil {
		t.Error("empty tables should fail")
	}
}

func TestClassSizeMatchesPaper(t *testing.T) {
	v, err := ClassSize().Extract(ctx(t, paperdata.T3a()))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(paperdata.ClassSizeT3a) {
		t.Errorf("class-size = %v, want %v", v, paperdata.ClassSizeT3a)
	}
}

func TestSensitiveCountMatchesPaper(t *testing.T) {
	v, err := SensitiveCount().Extract(ctx(t, paperdata.T3a()))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(paperdata.SensitiveCountT3a) {
		t.Errorf("sensitive-count = %v, want %v", v, paperdata.SensitiveCountT3a)
	}
}

func TestDistinctSensitive(t *testing.T) {
	v, err := DistinctSensitive().Extract(ctx(t, paperdata.T3a()))
	if err != nil {
		t.Fatal(err)
	}
	want := core.PropertyVector{2, 2, 2, 2, 3, 3, 3, 2, 2, 3}
	if !v.Equal(want) {
		t.Errorf("distinct-sensitive = %v, want %v", v, want)
	}
}

func TestBreachSafety(t *testing.T) {
	v, err := BreachSafety().Extract(ctx(t, paperdata.T3a()))
	if err != nil {
		t.Fatal(err)
	}
	// Tuple 1 (CF-Spouse, 2 of 3 in class): safety 1 - 2/3 = 1/3.
	if math.Abs(v[0]-1.0/3) > 1e-12 {
		t.Errorf("breach-safety[0] = %v, want 1/3", v[0])
	}
	for i, x := range v {
		if x < 0 || x > 1 {
			t.Errorf("breach-safety[%d] = %v out of [0,1]", i, x)
		}
	}
}

func TestTClosenessSafety(t *testing.T) {
	v, err := TClosenessSafety().Extract(ctx(t, paperdata.T3a()))
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range v {
		if x < 0 || x > 1 {
			t.Errorf("t-closeness-safety[%d] = %v out of [0,1]", i, x)
		}
	}
	// A single whole-table class has perfect safety 1 everywhere: build
	// one by suppressing every quasi-identifier.
	star := paperdata.T1()
	for i := range star.Rows {
		for _, j := range star.Schema.QuasiIdentifiers() {
			star.Rows[i][j] = dataset.StarVal()
		}
	}
	whole, err := NewContext(paperdata.T1(), star, nil)
	if err != nil {
		t.Fatal(err)
	}
	vw, err := TClosenessSafety().Extract(whole)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range vw {
		if x != 1 {
			t.Errorf("whole-table safety[%d] = %v, want 1", i, x)
		}
	}
}

func TestRetainedInformation(t *testing.T) {
	v, err := RetainedInformation().Extract(ctx(t, paperdata.T3a()))
	if err != nil {
		t.Fatal(err)
	}
	// T3a: zip 1 of 5 chars masked (0.2), age width 10 over domain 29.
	want := 2 - (0.2 + 10.0/29)
	for i, x := range v {
		if math.Abs(x-want) > 1e-12 {
			t.Errorf("retained[%d] = %v, want %v", i, x, want)
		}
	}
	// Identity anonymization retains everything.
	id, err := NewContext(paperdata.T1(), paperdata.T1(), nil)
	if err != nil {
		t.Fatal(err)
	}
	vid, err := RetainedInformation().Extract(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range vid {
		if x != 2 {
			t.Fatalf("identity retained = %v, want 2", vid)
		}
	}
}

func TestDiscernibilityOrientation(t *testing.T) {
	v, err := Discernibility().Extract(ctx(t, paperdata.T3a()))
	if err != nil {
		t.Fatal(err)
	}
	// Negated class sizes: tuple 1 in class of 3 -> -3.
	if v[0] != -3 || v[4] != -4 {
		t.Errorf("discernibility = %v", v)
	}
	// Higher-is-better: the finer T3a beats the coarser T3b everywhere
	// under weak dominance.
	v3b, err := Discernibility().Extract(ctx(t, paperdata.T3b()))
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.WeaklyDominates(v, v3b)
	if err != nil || !w {
		t.Errorf("T3a should weakly dominate T3b on (negated) discernibility: %v %v", w, err)
	}
}

func TestMeasureBuildsPropertySet(t *testing.T) {
	c := ctx(t, paperdata.T3a())
	props := []Property{ClassSize(), RetainedInformation()}
	set, err := Measure(c, props...)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || !set[0].Equal(paperdata.ClassSizeT3a) {
		t.Errorf("set = %v", set)
	}
	names := Names(props...)
	if names[0] != "class-size" || names[1] != "retained-information" {
		t.Errorf("names = %v", names)
	}
	if _, err := Measure(c); err == nil {
		t.Error("no properties should fail")
	}
}

func TestMeasureReproducesSection55Verdict(t *testing.T) {
	// The full §5.5 pipeline through the measurement layer: T3a's set and
	// T3b's set under equal-weight WTD with our own computed utility.
	setA, err := Measure(ctx(t, paperdata.T3a()), ClassSize(), RetainedInformation())
	if err != nil {
		t.Fatal(err)
	}
	setB, err := Measure(ctx(t, paperdata.T3b()), ClassSize(), RetainedInformation())
	if err != nil {
		t.Fatal(err)
	}
	wtd, err := core.NewWTD([]float64{0.5, 0.5}, []core.BinaryIndex{core.PCov, core.PCov})
	if err != nil {
		t.Fatal(err)
	}
	out, err := wtd.Compare(setA, setB)
	if err != nil {
		t.Fatal(err)
	}
	// With OUR utility metric (unlike the paper's quoted vectors where
	// tuples 1,4,8 tie), T3a is strictly better on utility for every
	// tuple and worse on privacy for 7 — the verdict favors T3a:
	// P_WTD(A,B) = 0.5*0.3 + 0.5*1 = 0.65; P_WTD(B,A) = 0.5*1 + 0.5*0 = 0.5.
	if out != core.LeftBetter {
		t.Errorf("WTD verdict = %v, want left better (see EXPERIMENTS.md note)", out)
	}
}

func TestSensitivePropertyNeedsSensitiveAttribute(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "A", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
	)
	tab := dataset.NewTable(schema)
	tab.MustAppend(dataset.StrVal("x"))
	c, err := NewContext(tab, tab, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Property{SensitiveCount(), DistinctSensitive(), BreachSafety(), TClosenessSafety()} {
		if _, err := p.Extract(c); err == nil {
			t.Errorf("%s without sensitive attribute should fail", p.Name)
		}
	}
	if _, err := Measure(c, SensitiveCount()); err == nil {
		t.Error("Measure should propagate extractor errors")
	}
}
