package measure

import (
	"encoding/json"
	"strings"
	"testing"

	"microdata/internal/paperdata"
)

func TestSummarizePaperT3a(t *testing.T) {
	s, err := Summarize(ctx(t, paperdata.T3a()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows != 10 || s.Classes != 3 || s.KAnonymity != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.DistinctL != 2 {
		t.Errorf("distinct ℓ = %d, want 2", s.DistinctL)
	}
	if s.Discernibility != 34 { // 3²+3²+4²
		t.Errorf("DM = %v, want 34", s.Discernibility)
	}
	if s.ClassSizeMin != 3 || s.ClassSizeMax != 4 || s.ClassSizeMedian != 3 {
		t.Errorf("class-size sketch = %+v", s)
	}
	if s.ClassSizeGini <= 0 || s.ClassSizeGini >= 1 {
		t.Errorf("Gini = %v", s.ClassSizeGini)
	}
	if s.LossMetric <= 0 || s.LossMetric >= 1 {
		t.Errorf("LM = %v", s.LossMetric)
	}
}

func TestSummaryJSONShape(t *testing.T) {
	s, err := Summarize(ctx(t, paperdata.T3b()))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"\"rows\":", "\"k_anonymity\":", "\"loss_metric\":",
		"\"class_size_gini\":", "\"discernibility\":",
	} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("JSON missing %s: %s", key, raw)
		}
	}
	var back Summary
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.KAnonymity != s.KAnonymity || back.LossMetric != s.LossMetric {
		t.Error("JSON round trip changed values")
	}
}

func TestSummarizeWithoutSensitive(t *testing.T) {
	// A sensitive-free schema yields a summary with the diversity fields
	// zeroed but everything else intact.
	orig := paperdata.T1()
	orig.Schema.Attrs[2].Role = 0 // demote MaritalStatus to insensitive
	anon := paperdata.T3a()
	anon.Schema.Attrs[2].Role = 0
	c, err := NewContext(orig, anon, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.DistinctL != 0 || s.EntropyL != 0 || s.TCloseness != 0 {
		t.Errorf("diversity fields should be zero: %+v", s)
	}
	if s.KAnonymity != 3 {
		t.Errorf("k = %d", s.KAnonymity)
	}
}
