// Package measure turns anonymizations into the paper's r-property view
// (Definition 2): a named catalogue of property extractors, each mapping an
// anonymized table to one per-tuple property vector, plus helpers that
// bundle several extractors into a core.PropertySet ready for the WTD, LEX
// and GOAL multi-property comparators.
//
// Every extractor yields vectors under the paper's higher-is-better
// convention — loss-like measurements are returned negated or inverted, so
// a PropertySet mixes privacy and utility properties safely.
package measure

import (
	"fmt"
	"sync"

	"microdata/internal/core"
	"microdata/internal/dataset"
	"microdata/internal/eqclass"
	"microdata/internal/hierarchy"
	"microdata/internal/privacy"
	"microdata/internal/utility"
)

// Context carries everything an extractor may need about one
// anonymization of one original table, plus lazily shared intermediates:
// the sensitive column and the per-class sensitive-value histograms are
// computed once and reused by every extractor that needs them.
type Context struct {
	// Orig is the original microdata table.
	Orig *dataset.Table
	// Anon is the anonymized table (same size, paper §3 convention).
	Anon *dataset.Table
	// Partition groups Anon into equivalence classes; NewContext computes
	// it when nil.
	Partition *eqclass.Partition
	// Taxonomies feeds loss scoring of Set-generalized cells.
	Taxonomies map[string]*hierarchy.Taxonomy

	sensOnce sync.Once
	sensCol  []dataset.Value
	sensErr  error

	histOnce sync.Once
	hist     []map[string]int
	histErr  error
}

// NewContext validates and completes a measurement context.
func NewContext(orig, anon *dataset.Table, taxonomies map[string]*hierarchy.Taxonomy) (*Context, error) {
	if orig == nil || anon == nil {
		return nil, fmt.Errorf("measure: nil table")
	}
	if orig.Len() != anon.Len() {
		return nil, fmt.Errorf("measure: anonymized table has %d rows, original has %d (suppressed tuples must be kept)", anon.Len(), orig.Len())
	}
	if orig.Len() == 0 {
		return nil, fmt.Errorf("measure: empty table")
	}
	p, err := eqclass.FromTable(anon)
	if err != nil {
		return nil, fmt.Errorf("measure: %w", err)
	}
	return &Context{Orig: orig, Anon: anon, Partition: p, Taxonomies: taxonomies}, nil
}

// SensitiveColumn returns the original table's sensitive column, extracted
// once and shared across extractors.
func (c *Context) SensitiveColumn() ([]dataset.Value, error) {
	c.sensOnce.Do(func() {
		si := c.Orig.Schema.SensitiveIndex()
		if si < 0 {
			c.sensErr = fmt.Errorf("measure: schema has no sensitive attribute")
			return
		}
		c.sensCol = c.Orig.Column(si)
	})
	return c.sensCol, c.sensErr
}

// ClassHistograms returns the per-class sensitive-value histograms
// (Partition.ValueCounts), tallied once and shared by SensitiveCount,
// DistinctSensitive, BreachSafety and TClosenessSafety. The tally runs on
// the original table's dictionary-encoded sensitive column, so value keys
// resolve once per distinct (class, value) pair instead of once per row.
func (c *Context) ClassHistograms() ([]map[string]int, error) {
	c.histOnce.Do(func() {
		si := c.Orig.Schema.SensitiveIndex()
		if si < 0 {
			c.histErr = fmt.Errorf("measure: schema has no sensitive attribute")
			return
		}
		c.hist, c.histErr = c.Partition.ValueCountsColumn(c.Orig.ColumnVector(si))
	})
	return c.hist, c.histErr
}

// Property is one measurable per-tuple property of an anonymization.
type Property struct {
	// Name identifies the property in reports.
	Name string
	// Extract computes the property vector (higher is better).
	Extract func(*Context) (core.PropertyVector, error)
}

// ClassSize is the paper's k-anonymity property: tuple i's equivalence
// class size.
func ClassSize() Property {
	return Property{
		Name: "class-size",
		Extract: func(c *Context) (core.PropertyVector, error) {
			return core.PropertyVector(c.Partition.SizeVector()), nil
		},
	}
}

// SensitiveCount is the paper's §3 ℓ-diversity property: how often tuple
// i's sensitive value appears in its class. NOTE the orientation: the
// paper treats higher counts as better representation; for attack
// resistance, combine with BreachSafety below.
func SensitiveCount() Property {
	return Property{
		Name: "sensitive-count",
		Extract: func(c *Context) (core.PropertyVector, error) {
			col, err := c.SensitiveColumn()
			if err != nil {
				return nil, err
			}
			hist, err := c.ClassHistograms()
			if err != nil {
				return nil, err
			}
			v, err := privacy.SensitiveCountVectorFromCounts(c.Partition, col, hist)
			if err != nil {
				return nil, err
			}
			return core.PropertyVector(v), nil
		},
	}
}

// DistinctSensitive counts distinct sensitive values in tuple i's class —
// the per-tuple distinct ℓ-diversity property.
func DistinctSensitive() Property {
	return Property{
		Name: "distinct-sensitive",
		Extract: func(c *Context) (core.PropertyVector, error) {
			hist, err := c.ClassHistograms()
			if err != nil {
				return nil, err
			}
			v, err := privacy.DistinctCountVectorFromCounts(c.Partition, hist)
			if err != nil {
				return nil, err
			}
			return core.PropertyVector(v), nil
		},
	}
}

// BreachSafety is 1 − (frequency of tuple i's own sensitive value in its
// class): the probability an in-class adversary guess is WRONG. Higher is
// safer.
func BreachSafety() Property {
	return Property{
		Name: "breach-safety",
		Extract: func(c *Context) (core.PropertyVector, error) {
			col, err := c.SensitiveColumn()
			if err != nil {
				return nil, err
			}
			hist, err := c.ClassHistograms()
			if err != nil {
				return nil, err
			}
			probs, err := privacy.BreachProbabilityVectorFromCounts(c.Partition, col, hist)
			if err != nil {
				return nil, err
			}
			out := make(core.PropertyVector, len(probs))
			for i, p := range probs {
				out[i] = 1 - p
			}
			return out, nil
		},
	}
}

// TClosenessSafety is 1 − the EMD between tuple i's class distribution and
// the global sensitive distribution (equal-distance ground metric). Higher
// means the class leaks less distributional information.
func TClosenessSafety() Property {
	return Property{
		Name: "t-closeness-safety",
		Extract: func(c *Context) (core.PropertyVector, error) {
			col, err := c.SensitiveColumn()
			if err != nil {
				return nil, err
			}
			hist, err := c.ClassHistograms()
			if err != nil {
				return nil, err
			}
			d, err := privacy.TClosenessVectorFromCounts(c.Partition, col, hist, false)
			if err != nil {
				return nil, err
			}
			out := make(core.PropertyVector, len(d))
			for i, x := range d {
				out[i] = 1 - x
			}
			return out, nil
		},
	}
}

// RetainedInformation is the per-tuple utility property: #QI − Iyengar
// loss, the paper's utility side of the §5.5 example.
func RetainedInformation() Property {
	return Property{
		Name: "retained-information",
		Extract: func(c *Context) (core.PropertyVector, error) {
			u, err := utility.UtilityVector(c.Anon, c.Orig, utility.LossConfig{Taxonomies: c.Taxonomies})
			if err != nil {
				return nil, err
			}
			return core.PropertyVector(u), nil
		},
	}
}

// Discernibility is the NEGATED per-tuple discernibility penalty (class
// size charged as cost): higher (less negative) is better utility.
func Discernibility() Property {
	return Property{
		Name: "discernibility",
		Extract: func(c *Context) (core.PropertyVector, error) {
			v := utility.DiscernibilityVector(c.Partition)
			return core.PropertyVector(v).Negate(), nil
		},
	}
}

// Measure evaluates the properties in order, producing the r-property set
// of Definition 2.
func Measure(c *Context, props ...Property) (core.PropertySet, error) {
	if len(props) == 0 {
		return nil, fmt.Errorf("measure: no properties requested")
	}
	set := make(core.PropertySet, len(props))
	for i, p := range props {
		v, err := p.Extract(c)
		if err != nil {
			return nil, fmt.Errorf("measure: property %q: %w", p.Name, err)
		}
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("measure: property %q: %w", p.Name, err)
		}
		set[i] = v
	}
	return set, nil
}

// Names lists the property names in order, for report headers.
func Names(props ...Property) []string {
	out := make([]string, len(props))
	for i, p := range props {
		out[i] = p.Name
	}
	return out
}
