package measure

import (
	"microdata/internal/privacy"
	"microdata/internal/stats"
	"microdata/internal/utility"
)

// Summary is the machine-readable scalar digest of one anonymization —
// everything a pipeline needs to log or gate on, JSON-ready. Per-tuple
// detail stays in the property vectors; this is the classical scalar view
// plus the bias statistics the paper argues must accompany it.
type Summary struct {
	// Rows is the table size N.
	Rows int `json:"rows"`
	// Classes is the number of equivalence classes.
	Classes int `json:"classes"`
	// KAnonymity is the minimum class size.
	KAnonymity int `json:"k_anonymity"`
	// DistinctL is distinct ℓ-diversity (0 when no sensitive attribute).
	DistinctL int `json:"distinct_l,omitempty"`
	// EntropyL is entropy ℓ-diversity (0 when no sensitive attribute).
	EntropyL float64 `json:"entropy_l,omitempty"`
	// TCloseness is the worst-class EMD (equal-distance ground metric).
	TCloseness float64 `json:"t_closeness,omitempty"`
	// LossMetric is Iyengar's LM in [0,1].
	LossMetric float64 `json:"loss_metric"`
	// Discernibility is Σ|class|².
	Discernibility float64 `json:"discernibility"`
	// ClassSizeGini quantifies the anonymization bias: 0 = every tuple
	// enjoys the same class size.
	ClassSizeGini float64 `json:"class_size_gini"`
	// ClassSizeMin/Median/Max sketch the per-tuple privacy distribution.
	ClassSizeMin    float64 `json:"class_size_min"`
	ClassSizeMedian float64 `json:"class_size_median"`
	ClassSizeMax    float64 `json:"class_size_max"`
}

// Summarize computes the scalar digest of the context's anonymization.
func Summarize(c *Context) (*Summary, error) {
	sizes := c.Partition.SizeVector()
	lm, err := utility.GeneralLossMetric(c.Anon, c.Orig, utility.LossConfig{Taxonomies: c.Taxonomies})
	if err != nil {
		return nil, err
	}
	dist := stats.Summarize(sizes)
	s := &Summary{
		Rows:            c.Orig.Len(),
		Classes:         c.Partition.NumClasses(),
		KAnonymity:      privacy.KAnonymity(c.Partition),
		LossMetric:      lm,
		Discernibility:  utility.DiscernibilityMetric(c.Partition),
		ClassSizeGini:   dist.Gini,
		ClassSizeMin:    dist.Min,
		ClassSizeMedian: dist.Median,
		ClassSizeMax:    dist.Max,
	}
	if col, err := c.SensitiveColumn(); err == nil {
		if dl, err := privacy.DistinctLDiversity(c.Partition, col); err == nil {
			s.DistinctL = dl
		}
		if el, err := privacy.EntropyLDiversity(c.Partition, col); err == nil {
			s.EntropyL = el
		}
		if tc, err := privacy.TCloseness(c.Partition, col, false); err == nil {
			s.TCloseness = tc
		}
	}
	return s, nil
}
