// Package perfsuite defines the canonical benchmark suites the perf-pack
// trajectory tracks — one named suite per headline hot path of the
// codebase, each producing BenchmarkSpecs for the internal/telemetry/perf
// harness:
//
//   - "groupby": equivalence-class grouping over a generalized census
//     release, columnar radix/hash group-by vs the signature-string
//     reference (the PR 6 46× claim);
//   - "engine": full-lattice evaluation-engine sweeps through the optimal
//     and datafly searches (the PR 1/PR 6 sweep claims);
//   - "attack": the record-linkage prosecutor/journalist pipeline, naive
//     reference vs region-indexed, serial and parallel (the PR 3 claims) —
//     with the indexed vectors cross-validated element-identical to the
//     naive ones during setup, so a pack is only produced from verified
//     computations;
//   - "groupby-parallel": the morsel-driven parallel group-by against the
//     sequential code-vector reference on the same generalized release —
//     with the parallel partition cross-validated element-identical to the
//     sequential one during setup (the PR 8 claim);
//   - "ingest": CSV parsing straight into dictionary-encoded columns,
//     whole-reader, chunked-push and pipelined double-buffered ingestion;
//   - "typedcol": typed numeric column kernels (min/max, deterministic
//     sum, fractional ranks) against the per-Value row scan they replace.
//
// Suites share one synthetic census draw per (N, Seed) so the pack's
// dataset fingerprint covers every benchmark input.
package perfsuite

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/datafly"
	"microdata/internal/algorithm/mondrian"
	"microdata/internal/algorithm/optimal"
	"microdata/internal/attack"
	"microdata/internal/dataset"
	"microdata/internal/eqclass"
	"microdata/internal/generator"
	"microdata/internal/hierarchy"
	"microdata/internal/telemetry/perf"
)

// Options parameterize suite construction: the census draw and the
// anonymization config every suite derives its fixtures from.
type Options struct {
	N    int
	K    int
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.N <= 0 {
		o.N = 1000
	}
	if o.K <= 0 {
		o.K = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Names lists the registered suites in canonical order.
func Names() []string {
	return []string{"attack", "engine", "groupby", "groupby-parallel", "ingest", "typedcol"}
}

// Resolve expands a -bench-suite selection ("all", one name, or a
// comma-separated list) into canonical-order suite specs. Unknown names
// return an ExitInvalid error.
func Resolve(selection string, opts Options) ([]perf.SuiteSpec, error) {
	opts = opts.withDefaults()
	want := map[string]bool{}
	if selection == "all" {
		for _, n := range Names() {
			want[n] = true
		}
	} else {
		for _, part := range strings.Split(selection, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			if !contains(Names(), part) {
				return nil, perf.Invalidf("perfsuite: unknown suite %q (known: %s, or \"all\")",
					part, strings.Join(Names(), ", "))
			}
			want[part] = true
		}
	}
	if len(want) == 0 {
		return nil, perf.Invalidf("perfsuite: empty suite selection")
	}
	names := make([]string, 0, len(want))
	for n := range want {
		names = append(names, n)
	}
	sort.Strings(names)
	var specs []perf.SuiteSpec
	for _, n := range names {
		spec, err := build(n, opts)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

func contains(names []string, n string) bool {
	for _, x := range names {
		if x == n {
			return true
		}
	}
	return false
}

func build(name string, opts Options) (perf.SuiteSpec, error) {
	switch name {
	case "groupby":
		return groupbySuite(opts)
	case "groupby-parallel":
		return groupbyParallelSuite(opts)
	case "typedcol":
		return typedcolSuite(opts)
	case "engine":
		return engineSuite(opts)
	case "attack":
		return attackSuite(opts)
	case "ingest":
		return ingestSuite(opts)
	default:
		return perf.SuiteSpec{}, perf.Invalidf("perfsuite: unknown suite %q", name)
	}
}

// fixtures is the shared setup every suite starts from: the census draw,
// its hash, and the standard anonymization config.
func fixtures(opts Options) (*dataset.Table, string, algorithm.Config, error) {
	tab, err := generator.Generate(generator.Config{N: opts.N, Seed: opts.Seed})
	if err != nil {
		return nil, "", algorithm.Config{}, err
	}
	hash, err := tab.Hash()
	if err != nil {
		return nil, "", algorithm.Config{}, err
	}
	cfg := algorithm.Config{
		K:              opts.K,
		Hierarchies:    generator.Hierarchies(),
		Taxonomies:     generator.Taxonomies(),
		MaxSuppression: 0.05,
		Metric:         algorithm.MetricLM,
		Seed:           opts.Seed,
	}
	return tab, hash, cfg, nil
}

func suiteSpec(name, hash string, opts Options, benches ...perf.BenchmarkSpec) perf.SuiteSpec {
	return perf.SuiteSpec{
		Name: name, DatasetHash: hash, Seed: opts.Seed, N: opts.N, K: opts.K,
		Benchmarks: benches,
	}
}

// groupbySuite times equivalence-class grouping of a generalized release:
// the columnar code-vector group-by against the signature-string
// reference it is pinned element-identical to.
func groupbySuite(opts Options) (perf.SuiteSpec, error) {
	tab, hash, _, err := fixtures(opts)
	if err != nil {
		return perf.SuiteSpec{}, err
	}
	anon, err := hierarchy.GeneralizeTable(tab, generator.Hierarchies(), []int{2, 2, 1, 1})
	if err != nil {
		return perf.SuiteSpec{}, err
	}
	qis := anon.Schema.QuasiIdentifiers()
	columnar := perf.BenchmarkSpec{
		Name: "columnar",
		Setup: func(ctx context.Context) (func(context.Context) error, error) {
			// Warm the dictionary backing once so repetitions time the
			// group-by, not column materialization.
			anon.Columnar()
			return func(ctx context.Context) error {
				_, err := eqclass.FromTable(anon)
				return err
			}, nil
		},
	}
	signatures := perf.BenchmarkSpec{
		Name: "signatures",
		Setup: func(ctx context.Context) (func(context.Context) error, error) {
			return func(ctx context.Context) error {
				sigs := make([]string, anon.Len())
				var sb strings.Builder
				for i, row := range anon.Rows {
					sb.Reset()
					eqclass.WriteSignature(&sb, row, qis)
					sigs[i] = sb.String()
				}
				_, err := eqclass.FromSignatures(sigs)
				return err
			}, nil
		},
	}
	return suiteSpec("groupby", hash, opts, columnar, signatures), nil
}

// groupbyParallelSuite times the morsel-driven parallel group-by against
// the sequential code-vector reference on the same generalized release the
// "groupby" suite uses. Setup cross-validates the two partitions
// element-identical and fails with a verification error on any divergence,
// so a pack is only produced from a verified parallel path.
func groupbyParallelSuite(opts Options) (perf.SuiteSpec, error) {
	tab, hash, _, err := fixtures(opts)
	if err != nil {
		return perf.SuiteSpec{}, err
	}
	anon, err := hierarchy.GeneralizeTable(tab, generator.Hierarchies(), []int{2, 2, 1, 1})
	if err != nil {
		return perf.SuiteSpec{}, err
	}
	bc := anon.Columnar()
	qis := anon.Schema.QuasiIdentifiers()
	cols := make([][]uint32, len(qis))
	cards := make([]int, len(qis))
	for i, j := range qis {
		cols[i] = bc.Col(j).Codes()
		cards[i] = bc.Col(j).Card()
	}
	verify := func() error {
		want, err := eqclass.FromCodesSequential(cols, cards)
		if err != nil {
			return err
		}
		got, err := eqclass.FromCodesParallel(cols, cards, 0)
		if err != nil {
			return err
		}
		if got.NumClasses() != want.NumClasses() {
			return perf.Exit(perf.ExitVerification, fmt.Errorf(
				"perfsuite: groupby-parallel: %d classes, sequential reference has %d",
				got.NumClasses(), want.NumClasses()))
		}
		for i := range want.ClassOf {
			if got.ClassOf[i] != want.ClassOf[i] {
				return perf.Exit(perf.ExitVerification, fmt.Errorf(
					"perfsuite: groupby-parallel: ClassOf[%d] = %d, sequential reference has %d",
					i, got.ClassOf[i], want.ClassOf[i]))
			}
		}
		return nil
	}
	sequential := perf.BenchmarkSpec{
		Name: "sequential",
		Setup: func(ctx context.Context) (func(context.Context) error, error) {
			return func(ctx context.Context) error {
				_, err := eqclass.FromCodesSequential(cols, cards)
				return err
			}, nil
		},
	}
	parallel := perf.BenchmarkSpec{
		Name: "parallel",
		Setup: func(ctx context.Context) (func(context.Context) error, error) {
			if err := verify(); err != nil {
				return nil, err
			}
			return func(ctx context.Context) error {
				_, err := eqclass.FromCodesParallel(cols, cards, 0)
				return err
			}, nil
		},
	}
	return suiteSpec("groupby-parallel", hash, opts, sequential, parallel), nil
}

// sinkF defeats dead-code elimination of the typedcol kernel results.
var sinkF float64

// typedcolSuite times the typed numeric column kernels on the census Age
// attribute — min/max, the deterministic morsel-order sum and the
// fractional rank vector — against the per-Value row scan they replace.
func typedcolSuite(opts Options) (perf.SuiteSpec, error) {
	tab, hash, _, err := fixtures(opts)
	if err != nil {
		return perf.SuiteSpec{}, err
	}
	j := tab.Schema.Index("Age")
	if j < 0 {
		return perf.SuiteSpec{}, fmt.Errorf("perfsuite: census schema has no Age attribute")
	}
	fc, ok := tab.Float64Column(j)
	if !ok {
		return perf.SuiteSpec{}, perf.Exit(perf.ExitVerification,
			fmt.Errorf("perfsuite: typedcol: Age column is not purely numeric"))
	}
	run := func(name string, f func() error) perf.BenchmarkSpec {
		return perf.BenchmarkSpec{
			Name: name,
			Setup: func(ctx context.Context) (func(context.Context) error, error) {
				return func(ctx context.Context) error { return f() }, nil
			},
		}
	}
	return suiteSpec("typedcol", hash, opts,
		run("minmax/typed", func() error {
			lo, hi, ok := fc.MinMax()
			if !ok {
				return fmt.Errorf("perfsuite: typedcol: empty column")
			}
			sinkF = lo + hi
			return nil
		}),
		run("minmax/value-scan", func() error {
			lo, hi := 0.0, 0.0
			for i, r := range tab.Rows {
				v := r[j].Float()
				if i == 0 || v < lo {
					lo = v
				}
				if i == 0 || v > hi {
					hi = v
				}
			}
			sinkF = lo + hi
			return nil
		}),
		run("sum/typed", func() error {
			sinkF = fc.Sum()
			return nil
		}),
		run("ranks/typed", func() error {
			r := fc.Ranks()
			sinkF = r[0]
			return nil
		}),
	), nil
}

// engineSuite times full search runs of the two sweep-shaped algorithms:
// optimal (exhaustive full-lattice sweep) and datafly (greedy ascent) —
// each run builds a fresh engine, so precompute, memoization and
// materialization are all charged.
func engineSuite(opts Options) (perf.SuiteSpec, error) {
	tab, hash, cfg, err := fixtures(opts)
	if err != nil {
		return perf.SuiteSpec{}, err
	}
	bench := func(name string, alg algorithm.Algorithm) perf.BenchmarkSpec {
		return perf.BenchmarkSpec{
			Name: "sweep/" + name,
			Setup: func(ctx context.Context) (func(context.Context) error, error) {
				return func(ctx context.Context) error {
					_, err := algorithm.AnonymizeContext(ctx, alg, tab, cfg)
					return err
				}, nil
			},
		}
	}
	return suiteSpec("engine", hash, opts,
		bench("optimal", optimal.New()),
		bench("datafly", datafly.New()),
	), nil
}

// attackSuite times the record-linkage pipeline on datafly and mondrian
// releases: naive reference vs region-indexed (serial and parallel)
// prosecutor risk, and naive vs indexed journalist risk on a capped
// sample. Setup cross-validates the indexed vectors against the naive
// reference and fails with a verification error on any divergence.
func attackSuite(opts Options) (perf.SuiteSpec, error) {
	tab, hash, cfg, err := fixtures(opts)
	if err != nil {
		return perf.SuiteSpec{}, err
	}
	var benches []perf.BenchmarkSpec
	for _, alg := range []struct {
		name string
		alg  algorithm.Algorithm
	}{{"datafly", datafly.New()}, {"mondrian", mondrian.New()}} {
		alg := alg
		var anon *dataset.Table
		// release anonymizes the draw once, shared by this algorithm's
		// three prosecutor benchmarks (setup order is deterministic).
		release := func(ctx context.Context) (*dataset.Table, error) {
			if anon == nil {
				r, err := algorithm.AnonymizeContext(ctx, alg.alg, tab, cfg)
				if err != nil {
					return nil, err
				}
				anon = r.Table
			}
			return anon, nil
		}
		benches = append(benches,
			perf.BenchmarkSpec{
				Name: "prosecutor/" + alg.name + "/naive",
				Setup: func(ctx context.Context) (func(context.Context) error, error) {
					anon, err := release(ctx)
					if err != nil {
						return nil, err
					}
					adv, err := attack.NewAdversary(anon, generator.Taxonomies())
					if err != nil {
						return nil, err
					}
					return func(ctx context.Context) error {
						_, err := attack.NaiveProsecutorVector(tab, adv)
						return err
					}, nil
				},
			},
			prosecutorIndexed(alg.name, "indexed-serial", 1, tab, release),
			prosecutorIndexed(alg.name, "indexed-parallel", 0, tab, release),
		)
	}
	jNaive, jIndexed, err := journalistBenches(opts, cfg)
	if err != nil {
		return perf.SuiteSpec{}, err
	}
	benches = append(benches, jNaive, jIndexed)
	return suiteSpec("attack", hash, opts, benches...), nil
}

// prosecutorIndexed builds an indexed prosecutor benchmark whose setup
// verifies the indexed vector element-identical to the naive reference.
// Each repetition builds a fresh adversary so index construction and
// victim memoization are charged to the measurement, mirroring the PR 3
// benchmark protocol.
func prosecutorIndexed(algName, variant string, workers int, tab *dataset.Table, release func(context.Context) (*dataset.Table, error)) perf.BenchmarkSpec {
	return perf.BenchmarkSpec{
		Name: "prosecutor/" + algName + "/" + variant,
		Setup: func(ctx context.Context) (func(context.Context) error, error) {
			anon, err := release(ctx)
			if err != nil {
				return nil, err
			}
			naiveAdv, err := attack.NewAdversary(anon, generator.Taxonomies())
			if err != nil {
				return nil, err
			}
			want, err := attack.NaiveProsecutorVector(tab, naiveAdv)
			if err != nil {
				return nil, err
			}
			adv, err := attack.NewAdversary(anon, generator.Taxonomies())
			if err != nil {
				return nil, err
			}
			adv.SetWorkers(workers)
			got, err := attack.ProsecutorVectorContext(ctx, tab, adv)
			if err != nil {
				return nil, err
			}
			if i := firstDiff(want, got); i >= 0 {
				return nil, perf.Exit(perf.ExitVerification, fmt.Errorf(
					"perfsuite: %s/%s: indexed prosecutor vector diverges from naive at row %d: %g vs %g",
					algName, variant, i, got[i], want[i]))
			}
			return func(ctx context.Context) error {
				adv, err := attack.NewAdversary(anon, generator.Taxonomies())
				if err != nil {
					return err
				}
				adv.SetWorkers(workers)
				_, err = attack.ProsecutorVectorContext(ctx, tab, adv)
				return err
			}, nil
		},
	}
}

// journalistBenches times journalist risk on a sample capped at 2000 rows
// against a doubled population — the naive journalist scan is quadratic
// in the population and would otherwise dominate the suite.
func journalistBenches(opts Options, cfg algorithm.Config) (naive, indexed perf.BenchmarkSpec, err error) {
	m := opts.N
	if m > 2000 {
		m = 2000
	}
	sample, err := generator.Generate(generator.Config{N: m, Seed: opts.Seed})
	if err != nil {
		return naive, indexed, err
	}
	extra, err := generator.Generate(generator.Config{N: m, Seed: opts.Seed + 1})
	if err != nil {
		return naive, indexed, err
	}
	population := sample.Clone()
	population.Rows = append(population.Rows, extra.Rows...)
	population.InvalidateColumns()
	var anon *dataset.Table
	release := func(ctx context.Context) (*dataset.Table, error) {
		if anon == nil {
			r, err := algorithm.AnonymizeContext(ctx, mondrian.New(), sample, cfg)
			if err != nil {
				return nil, err
			}
			anon = r.Table
		}
		return anon, nil
	}
	naive = perf.BenchmarkSpec{
		Name: "journalist/mondrian/naive",
		Setup: func(ctx context.Context) (func(context.Context) error, error) {
			anon, err := release(ctx)
			if err != nil {
				return nil, err
			}
			adv, err := attack.NewAdversary(anon, generator.Taxonomies())
			if err != nil {
				return nil, err
			}
			return func(ctx context.Context) error {
				_, err := attack.NaiveJournalistVector(sample, population, adv)
				return err
			}, nil
		},
	}
	indexed = perf.BenchmarkSpec{
		Name: "journalist/mondrian/indexed",
		Setup: func(ctx context.Context) (func(context.Context) error, error) {
			anon, err := release(ctx)
			if err != nil {
				return nil, err
			}
			naiveAdv, err := attack.NewAdversary(anon, generator.Taxonomies())
			if err != nil {
				return nil, err
			}
			want, err := attack.NaiveJournalistVector(sample, population, naiveAdv)
			if err != nil {
				return nil, err
			}
			vAdv, err := attack.NewAdversary(anon, generator.Taxonomies())
			if err != nil {
				return nil, err
			}
			got, err := attack.JournalistVectorContext(ctx, sample, population, vAdv)
			if err != nil {
				return nil, err
			}
			if i := firstDiff(want, got); i >= 0 {
				return nil, perf.Exit(perf.ExitVerification, fmt.Errorf(
					"perfsuite: journalist: indexed vector diverges from naive at row %d: %g vs %g",
					i, got[i], want[i]))
			}
			return func(ctx context.Context) error {
				adv, err := attack.NewAdversary(anon, generator.Taxonomies())
				if err != nil {
					return err
				}
				_, err = attack.JournalistVectorContext(ctx, sample, population, adv)
				return err
			}, nil
		},
	}
	return naive, indexed, nil
}

// firstDiff returns the first index where the vectors differ (exact float
// comparison — the indexed pipeline promises identical divisions), or -1.
func firstDiff(want, got []float64) int {
	if len(want) != len(got) {
		return 0
	}
	for i := range want {
		if want[i] != got[i] {
			return i
		}
	}
	return -1
}

// ingestSuite times CSV parsing into dictionary-encoded columns: the
// whole-reader ReadCSVColumnar path, the chunk-tolerant push ingester fed
// 8 KiB chunks, and the pipelined double-buffered IngestCSV reader.
func ingestSuite(opts Options) (perf.SuiteSpec, error) {
	tab, hash, _, err := fixtures(opts)
	if err != nil {
		return perf.SuiteSpec{}, err
	}
	var buf bytes.Buffer
	if err := dataset.WriteCSV(&buf, tab); err != nil {
		return perf.SuiteSpec{}, err
	}
	csvBytes := buf.Bytes()
	schema := tab.Schema
	reader := perf.BenchmarkSpec{
		Name: "readcsv-columnar",
		Setup: func(ctx context.Context) (func(context.Context) error, error) {
			return func(ctx context.Context) error {
				_, err := dataset.ReadCSVColumnar(bytes.NewReader(csvBytes), schema)
				return err
			}, nil
		},
	}
	const chunk = 8 << 10
	chunks := perf.BenchmarkSpec{
		Name: "ingester-chunks",
		Setup: func(ctx context.Context) (func(context.Context) error, error) {
			return func(ctx context.Context) error {
				ing := dataset.NewCSVIngester(schema)
				for off := 0; off < len(csvBytes); off += chunk {
					end := off + chunk
					if end > len(csvBytes) {
						end = len(csvBytes)
					}
					if _, err := ing.Write(csvBytes[off:end]); err != nil {
						return err
					}
				}
				return ing.Close()
			}, nil
		},
	}
	pipelined := perf.BenchmarkSpec{
		Name: "ingest-pipelined",
		Setup: func(ctx context.Context) (func(context.Context) error, error) {
			return func(ctx context.Context) error {
				_, err := dataset.IngestCSV(bytes.NewReader(csvBytes), schema)
				return err
			}, nil
		},
	}
	return suiteSpec("ingest", hash, opts, reader, chunks, pipelined), nil
}
