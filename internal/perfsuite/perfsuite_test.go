package perfsuite

import (
	"context"
	"strings"
	"testing"

	"microdata/internal/telemetry/perf"
)

func TestResolveSelections(t *testing.T) {
	opts := Options{N: 60, K: 3, Seed: 1}
	all, err := Resolve("all", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Names()) {
		t.Fatalf("all resolved to %d suites, want %d", len(all), len(Names()))
	}
	for i, s := range all {
		if s.Name != Names()[i] {
			t.Errorf("suite %d = %s, want %s (canonical order)", i, s.Name, Names()[i])
		}
		if s.DatasetHash == "" || s.N != 60 || s.K != 3 {
			t.Errorf("suite %s missing fingerprint: %+v", s.Name, s)
		}
	}
	two, err := Resolve("ingest,groupby", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "groupby" || two[1].Name != "ingest" {
		t.Errorf("comma selection resolved wrong: %+v", two)
	}
	if _, err := Resolve("nope", opts); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("unknown suite should be invalid input, got %v", err)
	}
	if _, err := Resolve(" , ", opts); perf.ExitCode(err) != perf.ExitInvalid {
		t.Errorf("empty selection should be invalid input, got %v", err)
	}
}

// TestSuitesRunEndToEnd runs every suite at a tiny N for one repetition
// and checks the produced pack seals, verifies and carries the expected
// benchmark roster.
func TestSuitesRunEndToEnd(t *testing.T) {
	suites, err := Resolve("all", Options{N: 60, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pack, err := perf.RunSuites(context.Background(), suites, perf.Options{Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pack.Suite != "attack,engine,groupby,groupby-parallel,ingest,typedcol" {
		t.Errorf("pack suite = %q", pack.Suite)
	}
	want := []string{
		"attack/prosecutor/datafly/naive",
		"attack/prosecutor/datafly/indexed-serial",
		"attack/prosecutor/datafly/indexed-parallel",
		"attack/prosecutor/mondrian/naive",
		"attack/prosecutor/mondrian/indexed-serial",
		"attack/prosecutor/mondrian/indexed-parallel",
		"attack/journalist/mondrian/naive",
		"attack/journalist/mondrian/indexed",
		"engine/sweep/optimal",
		"engine/sweep/datafly",
		"groupby/columnar",
		"groupby/signatures",
		"groupby-parallel/sequential",
		"groupby-parallel/parallel",
		"ingest/readcsv-columnar",
		"ingest/ingester-chunks",
		"ingest/ingest-pipelined",
		"typedcol/minmax/typed",
		"typedcol/minmax/value-scan",
		"typedcol/sum/typed",
		"typedcol/ranks/typed",
	}
	for _, name := range want {
		b := pack.Benchmark(name)
		if b == nil {
			t.Errorf("missing benchmark %s", name)
			continue
		}
		wall, ok := b.Metrics[perf.MetricWallNS]
		if !ok || wall.Median <= 0 {
			t.Errorf("%s: bad wall series %+v", name, wall)
		}
	}
	if len(pack.Benchmarks) != len(want) {
		var got []string
		for _, b := range pack.Benchmarks {
			got = append(got, b.Name)
		}
		t.Errorf("benchmark roster: got %d [%s], want %d", len(pack.Benchmarks), strings.Join(got, ", "), len(want))
	}
	raw, err := perf.CanonicalMarshal(pack)
	if err != nil {
		t.Fatal(err)
	}
	if err := perf.VerifyRaw(raw); err != nil {
		t.Errorf("suite pack failed verification: %v", err)
	}
	// A pack compared against itself never drifts.
	d, err := perf.Compare(pack, pack, perf.CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK() {
		t.Errorf("self-comparison drifted: %+v", d)
	}
}
