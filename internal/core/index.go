package core

import (
	"fmt"
	"math"
	"sort"
)

// UnaryIndex is a 1-ary quality index (Definition 3 with m=1): it maps one
// property vector to a real number measuring an aggregate feature of the
// anonymization.
type UnaryIndex struct {
	// Name identifies the index in reports ("P_k-anon", "P_s-avg", ...).
	Name string
	// F computes the index value.
	F func(PropertyVector) float64
	// HigherIsBetter records the orientation of the index so comparators
	// and panels can interpret raw values uniformly.
	HigherIsBetter bool
}

// PKAnon is the paper's §3 unary index for k-anonymity on the
// class-size property vector: P_k-anon(s) = min(s). For T3a it is 3.
var PKAnon = UnaryIndex{Name: "P_k-anon", F: minOf, HigherIsBetter: true}

// PSAvg is the paper's §3 average-class-size index:
// P_s-avg(s) = Σ s_i / N. For T3a it is 3.4.
var PSAvg = UnaryIndex{Name: "P_s-avg", F: meanOf, HigherIsBetter: true}

// PLDiv is the paper's §3 ℓ-diversity index applied to the
// sensitive-value-count property vector; the paper reports the minimum
// count, which is 1 for T3a. (The count property follows the convention
// that ℓ-diversity-style privacy improves as the minimum representation of
// a sensitive value grows; see EXPERIMENTS.md for the discussion.)
var PLDiv = UnaryIndex{Name: "P_l-div", F: minOf, HigherIsBetter: true}

// PMax is the maximum element, an occasionally useful aggregate.
var PMax = UnaryIndex{Name: "P_max", F: maxOf, HigherIsBetter: true}

// PSum is the element sum.
var PSum = UnaryIndex{Name: "P_sum", F: sumOf, HigherIsBetter: true}

// PMedian is the median element.
var PMedian = UnaryIndex{Name: "P_median", F: medianOf, HigherIsBetter: true}

// Norm selects the distance used by the §5.1 rank index. The paper leaves
// the norm unspecified ("distance from Dmax"); Euclidean is the default.
type Norm uint8

const (
	// L2 is the Euclidean norm (the default).
	L2 Norm = iota
	// L1 is the Manhattan norm: total per-tuple shortfall.
	L1
	// LInf is the Chebyshev norm: the single worst tuple's shortfall —
	// the rank view closest in spirit to the minimum-based scalar models.
	LInf
)

// String names the norm.
func (n Norm) String() string {
	switch n {
	case L1:
		return "L1"
	case LInf:
		return "Linf"
	case L2:
		return "L2"
	default:
		return fmt.Sprintf("Norm(%d)", uint8(n))
	}
}

// PRank builds the §5.1 rank index for a given most-desired vector Dmax:
// P_rank(D) = ||D - Dmax||₂. LOWER values are better (closer to the
// ideal); the index is oriented accordingly.
func PRank(dmax PropertyVector) UnaryIndex { return PRankWith(dmax, L2) }

// PRankWith is PRank under a selectable norm.
func PRankWith(dmax PropertyVector, norm Norm) UnaryIndex {
	ref := dmax.Clone()
	return UnaryIndex{
		Name: "P_rank-" + norm.String(),
		F: func(d PropertyVector) float64 {
			if len(d) != len(ref) {
				return math.NaN()
			}
			switch norm {
			case L1:
				s := 0.0
				for i := range d {
					s += math.Abs(d[i] - ref[i])
				}
				return s
			case LInf:
				m := 0.0
				for i := range d {
					if a := math.Abs(d[i] - ref[i]); a > m {
						m = a
					}
				}
				return m
			default:
				s := 0.0
				for i := range d {
					diff := d[i] - ref[i]
					s += diff * diff
				}
				return math.Sqrt(s)
			}
		},
		HigherIsBetter: false,
	}
}

// BinaryIndex is a 2-ary quality index (Definition 3 with m=2): a relative
// measure of one anonymization's effectiveness over another.
type BinaryIndex struct {
	// Name identifies the index ("P_cov", "P_spr", ...).
	Name string
	// F computes the index value for the ordered pair (a, b).
	F func(a, b PropertyVector) float64
}

// PBinary is the paper's §3 example binary index: the number of entries of
// a strictly greater than the corresponding entries of b. For the T3a/T3b
// class-size vectors s and t, P_binary(s,t)=0 and P_binary(t,s)=7.
var PBinary = BinaryIndex{Name: "P_binary", F: func(a, b PropertyVector) float64 {
	n := 0
	for i := range a {
		if a[i] > b[i] {
			n++
		}
	}
	return float64(n)
}}

// PCov is the §5.2 coverage index: the fraction of tuples whose property
// value in a is at least that in b. P_cov(D1,D2) > P_cov(D2,D1) ⟺ D1 ▶cov D2.
var PCov = BinaryIndex{Name: "P_cov", F: func(a, b PropertyVector) float64 {
	if len(a) == 0 {
		return math.NaN()
	}
	n := 0
	for i := range a {
		if a[i] >= b[i] {
			n++
		}
	}
	return float64(n) / float64(len(a))
}}

// PSpr is the §5.3 spread index: the total magnitude by which a exceeds b
// over the tuples where a is better. P_spr(D1,D2)=0 ⟺ D2 ≿ D1.
var PSpr = BinaryIndex{Name: "P_spr", F: func(a, b PropertyVector) float64 {
	s := 0.0
	for i := range a {
		if d := a[i] - b[i]; d > 0 {
			s += d
		}
	}
	return s
}}

// PHv is the §5.4 hypervolume index: the volume of property space on which
// a is solely ≿-better, computed as Π a_i − Π min(a_i, b_i). It assumes
// non-negative vectors (class sizes, counts). For data sets beyond a few
// hundred tuples the products overflow float64; use PHvLog there.
var PHv = BinaryIndex{Name: "P_hv", F: func(a, b PropertyVector) float64 {
	pa, pm := 1.0, 1.0
	for i := range a {
		pa *= a[i]
		pm *= math.Min(a[i], b[i])
	}
	return pa - pm
}}

// PHvLog is an order-preserving large-N replacement for PHv: it returns
// log(Π a_i) − log(Π min(a_i,b_i)) = Σ log a_i − Σ log min(a_i,b_i),
// the log-ratio of the two hypervolumes. It requires strictly positive
// vectors and returns NaN otherwise. PHvLog(a,b) > PHvLog(b,a) agrees with
// PHv's ordering whenever both are defined: both differences are monotone
// transforms of the same volume ratio comparison only when the common
// volume is shared, so the harness uses PHvLog consistently on both sides
// of a comparison (see EXPERIMENTS.md for the derivation and caveats).
var PHvLog = BinaryIndex{Name: "P_hv-log", F: func(a, b PropertyVector) float64 {
	s := 0.0
	for i := range a {
		m := math.Min(a[i], b[i])
		if a[i] <= 0 || m <= 0 {
			return math.NaN()
		}
		s += math.Log(a[i]) - math.Log(m)
	}
	return s
}}

// EvalBinary validates the pair and applies the index.
func EvalBinary(idx BinaryIndex, a, b PropertyVector) (float64, error) {
	if err := checkPair(a, b); err != nil {
		return 0, err
	}
	return idx.F(a, b), nil
}

// EvalUnary validates the vector and applies the index.
func EvalUnary(idx UnaryIndex, v PropertyVector) (float64, error) {
	if err := v.Validate(); err != nil {
		return 0, err
	}
	return idx.F(v), nil
}

func minOf(v PropertyVector) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(v PropertyVector) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func sumOf(v PropertyVector) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

func meanOf(v PropertyVector) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	return sumOf(v) / float64(len(v))
}

func medianOf(v PropertyVector) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// EntropyL converts a per-class sensitive-value distribution's entropy into
// the ℓ of entropy ℓ-diversity: ℓ = exp(H). Exposed here because the
// experiment harness reports it alongside the unary indices. The input is a
// discrete distribution; zero-probability entries are skipped.
func EntropyL(dist []float64) (float64, error) {
	total := 0.0
	for _, p := range dist {
		if p < 0 || math.IsNaN(p) {
			return 0, fmt.Errorf("core: negative probability %v", p)
		}
		total += p
	}
	if total == 0 {
		return 0, fmt.Errorf("core: empty distribution")
	}
	h := 0.0
	for _, p := range dist {
		if p == 0 {
			continue
		}
		q := p / total
		h -= q * math.Log(q)
	}
	return math.Exp(h), nil
}
