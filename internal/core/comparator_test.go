package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestOutcomeStringAndFlip(t *testing.T) {
	if Tie.String() != "tie" || LeftBetter.String() != "left better" || RightBetter.String() != "right better" {
		t.Error("Outcome.String mismatch")
	}
	if !strings.Contains(Outcome(9).String(), "9") {
		t.Error("unknown outcome should include code")
	}
	if Tie.Flip() != Tie || LeftBetter.Flip() != RightBetter || RightBetter.Flip() != LeftBetter {
		t.Error("Flip mismatch")
	}
}

func TestCovBetterPaperExamples(t *testing.T) {
	cov := CovBetter()
	if cov.Name() != "cov" {
		t.Errorf("name = %q", cov.Name())
	}
	// §5.2: T4 is ▶cov-better than T3a, and T3b is ▶cov-better than T4.
	out, err := cov.Compare(sT4, sT3a)
	if err != nil || out != LeftBetter {
		t.Errorf("cov(T4, T3a) = %v, %v; want left better", out, err)
	}
	out, err = cov.Compare(tT3b, sT4)
	if err != nil || out != LeftBetter {
		t.Errorf("cov(T3b, T4) = %v, %v; want left better", out, err)
	}
	// §5.3 hypotheticals tie under coverage.
	d1 := PropertyVector{2, 2, 3, 4, 5}
	d2 := PropertyVector{3, 2, 4, 2, 3}
	out, err = cov.Compare(d1, d2)
	if err != nil || out != Tie {
		t.Errorf("cov(D1, D2) = %v, %v; want tie", out, err)
	}
}

func TestSprBetterPaperExamples(t *testing.T) {
	spr := SprBetter()
	// §5.3: the coverage tie is broken by spread in favor of D1.
	d1 := PropertyVector{2, 2, 3, 4, 5}
	d2 := PropertyVector{3, 2, 4, 2, 3}
	out, err := spr.Compare(d1, d2)
	if err != nil || out != LeftBetter {
		t.Errorf("spr(D1, D2) = %v, %v; want left better", out, err)
	}
	// §5.3: the 2-anonymous generalization beats the 3-anonymous one.
	three := PropertyVector{3, 3, 3, 5, 5, 5, 5, 5, 3, 3, 3, 4, 4, 4, 4}
	two := PropertyVector{2, 2, 6, 6, 6, 6, 6, 6, 3, 3, 3, 4, 4, 4, 4}
	out, err = spr.Compare(two, three)
	if err != nil || out != LeftBetter {
		t.Errorf("spr(2-anon, 3-anon) = %v, %v; want left better", out, err)
	}
	// But the classical ▶min comparator prefers the 3-anonymous one —
	// the bias the paper is after.
	out, err = MinBetter().Compare(three, two)
	if err != nil || out != LeftBetter {
		t.Errorf("min(3-anon, 2-anon) = %v, %v; want left better", out, err)
	}
}

func TestHvBetterPaperExample(t *testing.T) {
	hv := HvBetter()
	s := PropertyVector{3, 3, 3, 5, 5, 5, 5, 5}
	tt := PropertyVector{4, 4, 4, 4, 4, 4, 4, 4}
	out, err := hv.Compare(s, tt)
	if err != nil || out != LeftBetter {
		t.Errorf("hv(s, t) = %v, %v; want left better (Fig. 4 discussion)", out, err)
	}
	outLog, err := HvLogBetter().Compare(s, tt)
	if err != nil || outLog != out {
		t.Errorf("hv-log disagrees with hv: %v vs %v (%v)", outLog, out, err)
	}
}

func TestHvLogBetterRejectsNonPositive(t *testing.T) {
	_, err := HvLogBetter().Compare(PropertyVector{0, 1}, PropertyVector{1, 1})
	if err == nil {
		t.Error("hv-log with zero entries should error")
	}
}

func TestMinBetter(t *testing.T) {
	m := MinBetter()
	if m.Name() != "min" {
		t.Errorf("name = %q", m.Name())
	}
	out, err := m.Compare(PropertyVector{4, 9}, PropertyVector{3, 100})
	if err != nil || out != LeftBetter {
		t.Errorf("min compare = %v, %v", out, err)
	}
	out, _ = m.Compare(PropertyVector{3, 9}, PropertyVector{3, 100})
	if out != Tie {
		t.Errorf("equal minima should tie, got %v", out)
	}
	if _, err := m.Compare(PropertyVector{1}, PropertyVector{1, 2}); err == nil {
		t.Error("size mismatch should fail")
	}
	// ▶min on T3a vs T3b: both 3-anonymous, classical comparison sees a
	// tie — exactly the §1 motivation.
	out, _ = m.Compare(sT3a, tT3b)
	if out != Tie {
		t.Errorf("min(T3a, T3b) = %v, want tie", out)
	}
}

func TestRankBetter(t *testing.T) {
	// Dmax for the 10-tuple example: every tuple in one class of size 10.
	dmax := make(PropertyVector, 10)
	for i := range dmax {
		dmax[i] = 10
	}
	r := RankBetter{Dmax: dmax}
	if r.Name() != "rank" {
		t.Errorf("name = %q", r.Name())
	}
	// T3b is closer to the ideal than T3a.
	out, err := r.Compare(tT3b, sT3a)
	if err != nil || out != LeftBetter {
		t.Errorf("rank(T3b, T3a) = %v, %v; want left better", out, err)
	}
	// Tolerance folds close ranks into a tie.
	loose := RankBetter{Dmax: dmax, Eps: 1000}
	out, err = loose.Compare(tT3b, sT3a)
	if err != nil || out != Tie {
		t.Errorf("rank with huge eps = %v, %v; want tie", out, err)
	}
	// Errors.
	if _, err := r.Compare(PropertyVector{1}, PropertyVector{2}); err == nil {
		t.Error("Dmax size mismatch should fail")
	}
	bad := RankBetter{Dmax: dmax, Eps: -1}
	if _, err := bad.Compare(tT3b, sT3a); err == nil {
		t.Error("negative eps should fail")
	}
	nan := RankBetter{Dmax: dmax, Eps: math.NaN()}
	if _, err := nan.Compare(tT3b, sT3a); err == nil {
		t.Error("NaN eps should fail")
	}
}

func TestDominanceBetter(t *testing.T) {
	d := DominanceBetter{}
	if d.Name() != "dominance" {
		t.Errorf("name = %q", d.Name())
	}
	out, err := d.Compare(tT3b, sT3a)
	if err != nil || out != LeftBetter {
		t.Errorf("dominance(T3b, T3a) = %v, %v", out, err)
	}
	out, _ = d.Compare(sT4, tT3b)
	if out != Tie {
		t.Errorf("incomparable should map to tie, got %v", out)
	}
	if _, err := d.Compare(nil, nil); err == nil {
		t.Error("empty should fail")
	}
}

// Antisymmetry: Compare(a,b) = Compare(b,a).Flip() for every comparator.
func TestComparatorAntisymmetryQuick(t *testing.T) {
	dmaxFor := func(n int) PropertyVector {
		d := make(PropertyVector, n)
		for i := range d {
			d[i] = 10
		}
		return d
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 1500; i++ {
		n := rng.Intn(5) + 1
		a := make(PropertyVector, n)
		b := make(PropertyVector, n)
		for j := range a {
			a[j] = float64(rng.Intn(8) + 1)
			b[j] = float64(rng.Intn(8) + 1)
		}
		comparators := []Comparator{
			CovBetter(), SprBetter(), HvBetter(), HvLogBetter(),
			MinBetter(), RankBetter{Dmax: dmaxFor(n)}, DominanceBetter{},
		}
		for _, c := range comparators {
			ab, err1 := c.Compare(a, b)
			ba, err2 := c.Compare(b, a)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s errored: %v %v", c.Name(), err1, err2)
			}
			if ab != ba.Flip() {
				t.Fatalf("%s not antisymmetric for a=%v b=%v: %v vs %v", c.Name(), a, b, ab, ba)
			}
		}
	}
}

// Strong dominance must never be contradicted by the ▶-better comparators:
// if a ≻ b then no comparator may declare b better.
func TestComparatorsRespectDominanceQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	dmax := func(n int) PropertyVector {
		d := make(PropertyVector, n)
		for i := range d {
			d[i] = 20
		}
		return d
	}
	for i := 0; i < 1500; i++ {
		n := rng.Intn(5) + 1
		a := make(PropertyVector, n)
		b := make(PropertyVector, n)
		for j := range a {
			b[j] = float64(rng.Intn(8) + 1)
			a[j] = b[j] + float64(rng.Intn(3)) // a >= b element-wise
		}
		if s, _ := StronglyDominates(a, b); !s {
			continue
		}
		for _, c := range []Comparator{
			CovBetter(), SprBetter(), HvBetter(), HvLogBetter(),
			MinBetter(), RankBetter{Dmax: dmax(n)}, DominanceBetter{},
		} {
			out, err := c.Compare(a, b)
			if err != nil {
				t.Fatalf("%s errored: %v", c.Name(), err)
			}
			if out == RightBetter {
				t.Fatalf("%s declared dominated vector better: a=%v b=%v", c.Name(), a, b)
			}
		}
	}
}
