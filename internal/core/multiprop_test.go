package core

import (
	"math"
	"math/rand"
	"testing"
)

// Paper §5.5 fixtures: Iyengar-loss utility property vectors for T3a and
// T3b quoted verbatim from the paper (higher is better by the paper's
// convention for these vectors; see EXPERIMENTS.md).
var (
	uT3a = PropertyVector{2.03, 1.7, 1.7, 2.03, 1.6, 1.6, 1.6, 2.03, 1.7, 1.6}
	uT3b = PropertyVector{2.03, 0.97, 0.97, 2.03, 0.97, 0.97, 0.97, 2.03, 0.97, 0.97}
)

func TestPropertySetValidate(t *testing.T) {
	ok := PropertySet{sT3a, uT3a}
	if err := ok.Validate(); err != nil {
		t.Error(err)
	}
	cases := []PropertySet{
		{},
		{PropertyVector{}},
		{sT3a, PropertyVector{1, 2}},
		{PropertyVector{math.NaN()}},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSetDominance(t *testing.T) {
	a := PropertySet{PropertyVector{2, 2}, PropertyVector{3, 3}}
	b := PropertySet{PropertyVector{1, 2}, PropertyVector{3, 3}}
	if w, err := WeaklyDominatesSet(a, b); err != nil || !w {
		t.Errorf("WeaklyDominatesSet = %v, %v", w, err)
	}
	if s, err := StronglyDominatesSet(a, b); err != nil || !s {
		t.Errorf("StronglyDominatesSet = %v, %v", s, err)
	}
	if s, _ := StronglyDominatesSet(a, a); s {
		t.Error("set must not strongly dominate itself")
	}
	// One property better, one worse: no weak dominance.
	c := PropertySet{PropertyVector{9, 9}, PropertyVector{1, 1}}
	if w, _ := WeaklyDominatesSet(c, a); w {
		t.Error("mixed sets should not weakly dominate")
	}
	if _, err := WeaklyDominatesSet(a, PropertySet{PropertyVector{1, 2}}); err == nil {
		t.Error("property-count mismatch should fail")
	}
	if _, err := WeaklyDominatesSet(a, PropertySet{PropertyVector{1}, PropertyVector{2}}); err == nil {
		t.Error("size mismatch should fail")
	}
	if _, err := StronglyDominatesSet(PropertySet{}, PropertySet{}); err == nil {
		t.Error("empty sets should fail")
	}
}

func TestWTDPaperExample(t *testing.T) {
	// §5.5: equal weights on privacy (class size) and utility (Iyengar),
	// both scored by P_cov: T3a and T3b come out equally good.
	w, err := NewWTD([]float64{0.5, 0.5}, []BinaryIndex{PCov, PCov})
	if err != nil {
		t.Fatal(err)
	}
	y1 := PropertySet{sT3a, uT3a}
	y2 := PropertySet{tT3b, uT3b}
	s12, err := w.Score(y1, y2)
	if err != nil {
		t.Fatal(err)
	}
	s21, err := w.Score(y2, y1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s12-0.65) > 1e-12 || math.Abs(s21-0.65) > 1e-12 {
		t.Errorf("P_WTD scores = %v, %v; want 0.65, 0.65", s12, s21)
	}
	out, err := w.Compare(y1, y2)
	if err != nil || out != Tie {
		t.Errorf("WTD compare = %v, %v; want tie (paper: equally good)", out, err)
	}
	if w.Name() != "WTD" {
		t.Errorf("name = %q", w.Name())
	}
}

func TestWTDWeightedTowardPrivacy(t *testing.T) {
	// Weighting privacy 0.9 breaks the §5.5 tie in favor of T3b.
	w, err := NewWTD([]float64{0.9, 0.1}, []BinaryIndex{PCov, PCov})
	if err != nil {
		t.Fatal(err)
	}
	out, err := w.Compare(PropertySet{tT3b, uT3b}, PropertySet{sT3a, uT3a})
	if err != nil || out != LeftBetter {
		t.Errorf("privacy-weighted WTD = %v, %v; want left better", out, err)
	}
}

func TestNewWTDValidation(t *testing.T) {
	cases := []struct {
		w   []float64
		idx []BinaryIndex
	}{
		{nil, nil},
		{[]float64{0.5}, []BinaryIndex{PCov, PCov}},
		{[]float64{0.5, 0.6}, []BinaryIndex{PCov, PCov}},
		{[]float64{-0.5, 1.5}, []BinaryIndex{PCov, PCov}},
		{[]float64{0, 1}, []BinaryIndex{PCov, PCov}},
		{[]float64{math.NaN(), 1}, []BinaryIndex{PCov, PCov}},
	}
	for i, c := range cases {
		if _, err := NewWTD(c.w, c.idx); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Single property with weight 1 is explicitly allowed.
	if _, err := NewWTD([]float64{1}, []BinaryIndex{PCov}); err != nil {
		t.Errorf("single weight 1 should be allowed: %v", err)
	}
}

func TestWTDScoreErrors(t *testing.T) {
	w, _ := NewWTD([]float64{0.5, 0.5}, []BinaryIndex{PCov, PCov})
	if _, err := w.Score(PropertySet{sT3a}, PropertySet{tT3b}); err == nil {
		t.Error("property-count mismatch vs config should fail")
	}
	if _, err := w.Compare(PropertySet{}, PropertySet{}); err == nil {
		t.Error("empty sets should fail")
	}
}

func TestLEXPaperSemantics(t *testing.T) {
	// Privacy ordered before utility. T3b is significantly superior on
	// privacy (P_cov difference 0.7 > ε=0.1), so LEX prefers T3b no
	// matter how badly it loses utility.
	lex, err := NewLEX([]float64{0.1, 0.1}, []BinaryIndex{PCov, PCov})
	if err != nil {
		t.Fatal(err)
	}
	y1 := PropertySet{tT3b, uT3b} // privacy first
	y2 := PropertySet{sT3a, uT3a}
	s12, err := lex.Score(y1, y2)
	if err != nil {
		t.Fatal(err)
	}
	if s12 != 1 {
		t.Errorf("P_LEX(T3b-set, T3a-set) = %d, want 1 (superior on property 1)", s12)
	}
	s21, err := lex.Score(y2, y1)
	if err != nil {
		t.Fatal(err)
	}
	if s21 != 2 {
		t.Errorf("P_LEX(T3a-set, T3b-set) = %d, want 2 (first superiority is utility)", s21)
	}
	out, err := lex.Compare(y1, y2)
	if err != nil || out != LeftBetter {
		t.Errorf("LEX compare = %v, %v; want left better", out, err)
	}
	if lex.Name() != "LEX" {
		t.Errorf("name = %q", lex.Name())
	}
	// With utility ordered first the preference flips.
	y1u := PropertySet{uT3b, tT3b}
	y2u := PropertySet{uT3a, sT3a}
	out, err = lex.Compare(y1u, y2u)
	if err != nil || out != RightBetter {
		t.Errorf("utility-first LEX = %v, %v; want right better", out, err)
	}
}

func TestLEXNoSignificantDifferenceTies(t *testing.T) {
	// Huge ε makes everything insignificant: both scores are r+1.
	lex, err := NewLEX([]float64{10, 10}, []BinaryIndex{PCov, PCov})
	if err != nil {
		t.Fatal(err)
	}
	out, err := lex.Compare(PropertySet{tT3b, uT3b}, PropertySet{sT3a, uT3a})
	if err != nil || out != Tie {
		t.Errorf("LEX with huge eps = %v, %v; want tie", out, err)
	}
}

func TestNewLEXValidation(t *testing.T) {
	if _, err := NewLEX(nil, nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := NewLEX([]float64{-1}, []BinaryIndex{PCov}); err == nil {
		t.Error("negative eps should fail")
	}
	if _, err := NewLEX([]float64{math.NaN()}, []BinaryIndex{PCov}); err == nil {
		t.Error("NaN eps should fail")
	}
	if _, err := NewLEX([]float64{0.1}, []BinaryIndex{PCov, PCov}); err == nil {
		t.Error("length mismatch should fail")
	}
	lex, _ := NewLEX([]float64{0.1}, []BinaryIndex{PCov})
	if _, err := lex.Score(PropertySet{sT3a, uT3a}, PropertySet{tT3b, uT3b}); err == nil {
		t.Error("property-count mismatch vs config should fail")
	}
}

func TestGOALPaperSemantics(t *testing.T) {
	// Goal: full coverage on privacy (1.0) and at least the observed 0.3
	// on utility. T3b's set hits the privacy goal exactly.
	goal, err := NewGOAL([]float64{1.0, 0.3}, []BinaryIndex{PCov, PCov})
	if err != nil {
		t.Fatal(err)
	}
	y1 := PropertySet{tT3b, uT3b}
	y2 := PropertySet{sT3a, uT3a}
	s12, err := goal.Score(y1, y2)
	if err != nil {
		t.Fatal(err)
	}
	// P_cov(t,s)=1 (goal 1 → 0) and P_cov(u_b,u_a)=0.3 (goal 0.3 → 0).
	if math.Abs(s12) > 1e-12 {
		t.Errorf("P_GOAL(T3b-set, T3a-set) = %v, want 0", s12)
	}
	s21, err := goal.Score(y2, y1)
	if err != nil {
		t.Fatal(err)
	}
	// P_cov(s,t)=0.3 (err 0.7²) + P_cov(u_a,u_b)=1 (err 0.7²) = 0.98.
	if math.Abs(s21-0.98) > 1e-12 {
		t.Errorf("P_GOAL(T3a-set, T3b-set) = %v, want 0.98", s21)
	}
	out, err := goal.Compare(y1, y2)
	if err != nil || out != LeftBetter {
		t.Errorf("GOAL compare = %v, %v; want left better (lower error)", out, err)
	}
	if goal.Name() != "GOAL" {
		t.Errorf("name = %q", goal.Name())
	}
}

func TestNewGOALValidation(t *testing.T) {
	if _, err := NewGOAL(nil, nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := NewGOAL([]float64{math.NaN()}, []BinaryIndex{PCov}); err == nil {
		t.Error("NaN goal should fail")
	}
	if _, err := NewGOAL([]float64{math.Inf(1)}, []BinaryIndex{PCov}); err == nil {
		t.Error("Inf goal should fail")
	}
	if _, err := NewGOAL([]float64{1, 2}, []BinaryIndex{PCov}); err == nil {
		t.Error("length mismatch should fail")
	}
	g, _ := NewGOAL([]float64{1}, []BinaryIndex{PCov})
	if _, err := g.Score(PropertySet{sT3a, uT3a}, PropertySet{tT3b, uT3b}); err == nil {
		t.Error("property-count mismatch vs config should fail")
	}
}

func TestSetComparatorAntisymmetryQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	wtd, _ := NewWTD([]float64{0.5, 0.5}, []BinaryIndex{PCov, PSpr})
	lex, _ := NewLEX([]float64{0.05, 0.05}, []BinaryIndex{PCov, PCov})
	goal, _ := NewGOAL([]float64{1, 1}, []BinaryIndex{PCov, PCov})
	for i := 0; i < 800; i++ {
		n := rng.Intn(4) + 2
		mk := func() PropertySet {
			s := make(PropertySet, 2)
			for p := range s {
				v := make(PropertyVector, n)
				for j := range v {
					v[j] = float64(rng.Intn(6) + 1)
				}
				s[p] = v
			}
			return s
		}
		a, b := mk(), mk()
		for _, c := range []SetComparator{wtd, lex, goal} {
			ab, err1 := c.Compare(a, b)
			ba, err2 := c.Compare(b, a)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s errored: %v %v", c.Name(), err1, err2)
			}
			if ab != ba.Flip() {
				t.Fatalf("%s not antisymmetric: %v vs %v", c.Name(), ab, ba)
			}
		}
	}
}

func TestNormalizeTogether(t *testing.T) {
	a := PropertyVector{0, 5, 10}
	b := PropertyVector{10, 0, 5}
	na, nb, err := NormalizeTogether(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !na.Equal(PropertyVector{0, 0.5, 1}) || !nb.Equal(PropertyVector{1, 0, 0.5}) {
		t.Errorf("normalized = %v, %v", na, nb)
	}
	if a[0] != 0 || b[0] != 10 {
		t.Error("inputs mutated")
	}
	// Constant pair.
	ca, cb, err := NormalizeTogether(PropertyVector{3, 3}, PropertyVector{3, 3})
	if err != nil || !ca.Equal(PropertyVector{0, 0}) || !cb.Equal(PropertyVector{0, 0}) {
		t.Errorf("constant normalize = %v, %v, %v", ca, cb, err)
	}
	if _, _, err := NormalizeTogether(PropertyVector{1}, PropertyVector{1, 2}); err == nil {
		t.Error("size mismatch should fail")
	}
}

// Normalization must not change coverage-based comparisons (P_cov depends
// only on the order of aligned elements, which min-max scaling preserves).
func TestNormalizePreservesCoverageQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 1000; i++ {
		n := rng.Intn(5) + 1
		a := make(PropertyVector, n)
		b := make(PropertyVector, n)
		for j := range a {
			a[j] = float64(rng.Intn(20))
			b[j] = float64(rng.Intn(20))
		}
		na, nb, err := NormalizeTogether(a, b)
		if err != nil {
			t.Fatal(err)
		}
		c1, _ := EvalBinary(PCov, a, b)
		c2, _ := EvalBinary(PCov, na, nb)
		if c1 != c2 {
			t.Fatalf("normalization changed coverage: %v vs %v", c1, c2)
		}
	}
}
