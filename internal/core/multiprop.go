package core

import (
	"fmt"
	"math"
)

// PropertySet is the paper's Definition 2 payload: the r property vectors
// induced by an r-property anonymization on one data set. Element i of two
// sets being compared must measure the same property.
type PropertySet []PropertyVector

// Validate checks the set is non-empty, every vector is finite, and all
// vectors share one length N.
func (s PropertySet) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("core: empty property set")
	}
	n := len(s[0])
	for i, v := range s {
		if err := v.Validate(); err != nil {
			return fmt.Errorf("core: property %d: %w", i, err)
		}
		if len(v) != n {
			return fmt.Errorf("core: property %d has size %d, property 0 has size %d", i, len(v), n)
		}
	}
	return nil
}

func checkSetPair(a, b PropertySet) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if err := b.Validate(); err != nil {
		return err
	}
	if len(a) != len(b) {
		return fmt.Errorf("core: comparing property sets with %d and %d properties", len(a), len(b))
	}
	if len(a[0]) != len(b[0]) {
		return fmt.Errorf("core: comparing property sets over data sets of size %d and %d", len(a[0]), len(b[0]))
	}
	return nil
}

// WeaklyDominatesSet reports Υ1 ≿ Υ2 per Table 4: every property vector of
// the first set weakly dominates its counterpart in the second.
func WeaklyDominatesSet(a, b PropertySet) (bool, error) {
	if err := checkSetPair(a, b); err != nil {
		return false, err
	}
	for i := range a {
		w, err := WeaklyDominates(a[i], b[i])
		if err != nil || !w {
			return false, err
		}
	}
	return true, nil
}

// StronglyDominatesSet reports Υ1 ≻ Υ2 per Table 4: weak dominance on every
// property and strong dominance on at least one.
func StronglyDominatesSet(a, b PropertySet) (bool, error) {
	weak, err := WeaklyDominatesSet(a, b)
	if err != nil || !weak {
		return false, err
	}
	for i := range a {
		s, err := StronglyDominates(a[i], b[i])
		if err != nil {
			return false, err
		}
		if s {
			return true, nil
		}
	}
	return false, nil
}

// SetComparator compares r-property anonymizations through their property
// sets (§5.5–5.7 preference schemes).
type SetComparator interface {
	// Name identifies the scheme ("WTD", "LEX", "GOAL").
	Name() string
	// Compare evaluates which set is preferable.
	Compare(a, b PropertySet) (Outcome, error)
}

// WTD is the §5.5 weighted-sum comparator ▶WTD:
// P_WTD(Υ1,Υ2) = Σ w_i · P_i(D_1i, D_2i), compared symmetrically. The
// weights express the relative importance of each property; different
// binary indices may score different properties.
type WTD struct {
	// Weights holds one positive weight per property; the constructor
	// validates they sum to 1 within a small tolerance, per the paper's
	// convention 0 < w_i < 1, Σ w_i = 1.
	Weights []float64
	// Indices holds one binary quality index per property (e.g. PCov for
	// both a privacy property and a utility property, as in the paper's
	// §5.5 example).
	Indices []BinaryIndex
}

// NewWTD validates and builds a weighted-sum comparator.
func NewWTD(weights []float64, indices []BinaryIndex) (*WTD, error) {
	if len(weights) == 0 || len(weights) != len(indices) {
		return nil, fmt.Errorf("core: WTD needs matching non-empty weights (%d) and indices (%d)", len(weights), len(indices))
	}
	sum := 0.0
	for i, w := range weights {
		if w <= 0 || w >= 1 || math.IsNaN(w) {
			if !(len(weights) == 1 && w == 1) {
				return nil, fmt.Errorf("core: WTD weight %d = %v outside (0,1)", i, w)
			}
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("core: WTD weights sum to %v, want 1", sum)
	}
	return &WTD{Weights: append([]float64(nil), weights...), Indices: indices}, nil
}

// Name implements SetComparator.
func (w *WTD) Name() string { return "WTD" }

// Score computes P_WTD(Υ1, Υ2).
func (w *WTD) Score(a, b PropertySet) (float64, error) {
	if err := checkSetPair(a, b); err != nil {
		return 0, err
	}
	if len(a) != len(w.Weights) {
		return 0, fmt.Errorf("core: WTD configured for %d properties, got %d", len(w.Weights), len(a))
	}
	s := 0.0
	for i := range a {
		v, err := EvalBinary(w.Indices[i], a[i], b[i])
		if err != nil {
			return 0, err
		}
		if math.IsNaN(v) {
			return 0, fmt.Errorf("core: WTD: index %q undefined on property %d", w.Indices[i].Name, i)
		}
		s += w.Weights[i] * v
	}
	return s, nil
}

// Compare implements SetComparator via P_WTD(Υ1,Υ2) vs P_WTD(Υ2,Υ1).
func (w *WTD) Compare(a, b PropertySet) (Outcome, error) {
	ab, err := w.Score(a, b)
	if err != nil {
		return Tie, err
	}
	ba, err := w.Score(b, a)
	if err != nil {
		return Tie, err
	}
	switch {
	case ab > ba:
		return LeftBetter, nil
	case ba > ab:
		return RightBetter, nil
	default:
		return Tie, nil
	}
}

// LEX is the §5.6 ε-lexicographic comparator ▶LEX. Properties are ordered
// by decreasing desirability; P_LEX(Υ1,Υ2) is the first position where Υ1
// is significantly superior (index difference exceeding ε_i). A set wins if
// its first point of superiority comes earlier in the ordering.
type LEX struct {
	// Eps is the significance vector: ε_i is the maximum tolerable
	// difference in P values for property i.
	Eps []float64
	// Indices holds one binary quality index per property.
	Indices []BinaryIndex
}

// NewLEX validates and builds an ε-lexicographic comparator.
func NewLEX(eps []float64, indices []BinaryIndex) (*LEX, error) {
	if len(eps) == 0 || len(eps) != len(indices) {
		return nil, fmt.Errorf("core: LEX needs matching non-empty eps (%d) and indices (%d)", len(eps), len(indices))
	}
	for i, e := range eps {
		if e < 0 || math.IsNaN(e) {
			return nil, fmt.Errorf("core: LEX significance %d = %v is negative", i, e)
		}
	}
	return &LEX{Eps: append([]float64(nil), eps...), Indices: indices}, nil
}

// Name implements SetComparator.
func (l *LEX) Name() string { return "LEX" }

// Score computes P_LEX(Υ1, Υ2): the 1-based position of the first property
// where Υ1 is significantly superior, or len(Υ1)+1 when there is none.
func (l *LEX) Score(a, b PropertySet) (int, error) {
	if err := checkSetPair(a, b); err != nil {
		return 0, err
	}
	if len(a) != len(l.Eps) {
		return 0, fmt.Errorf("core: LEX configured for %d properties, got %d", len(l.Eps), len(a))
	}
	for i := range a {
		ab, err := EvalBinary(l.Indices[i], a[i], b[i])
		if err != nil {
			return 0, err
		}
		ba, err := EvalBinary(l.Indices[i], b[i], a[i])
		if err != nil {
			return 0, err
		}
		if math.IsNaN(ab) || math.IsNaN(ba) {
			return 0, fmt.Errorf("core: LEX: index %q undefined on property %d", l.Indices[i].Name, i)
		}
		if ab-ba > l.Eps[i] {
			return i + 1, nil
		}
	}
	return len(a) + 1, nil
}

// Compare implements SetComparator: P_LEX(Υ1,Υ2) < P_LEX(Υ2,Υ1) ⟺ Υ1 ▶LEX Υ2.
func (l *LEX) Compare(a, b PropertySet) (Outcome, error) {
	ab, err := l.Score(a, b)
	if err != nil {
		return Tie, err
	}
	ba, err := l.Score(b, a)
	if err != nil {
		return Tie, err
	}
	switch {
	case ab < ba:
		return LeftBetter, nil
	case ba < ab:
		return RightBetter, nil
	default:
		return Tie, nil
	}
}

// GOAL is the §5.7 goal-based comparator ▶GOAL: each property has a desired
// quality-index value g_i and P_GOAL(Υ1,Υ2) = Σ (P_i(D_1i,D_2i) − g_i)² is
// the squared error from the goals; LOWER is better.
type GOAL struct {
	// Goals holds the desired index value per property.
	Goals []float64
	// Indices holds one binary quality index per property.
	Indices []BinaryIndex
}

// NewGOAL validates and builds a goal-based comparator.
func NewGOAL(goals []float64, indices []BinaryIndex) (*GOAL, error) {
	if len(goals) == 0 || len(goals) != len(indices) {
		return nil, fmt.Errorf("core: GOAL needs matching non-empty goals (%d) and indices (%d)", len(goals), len(indices))
	}
	for i, g := range goals {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			return nil, fmt.Errorf("core: GOAL goal %d = %v is not finite", i, g)
		}
	}
	return &GOAL{Goals: append([]float64(nil), goals...), Indices: indices}, nil
}

// Name implements SetComparator.
func (g *GOAL) Name() string { return "GOAL" }

// Score computes P_GOAL(Υ1, Υ2).
func (g *GOAL) Score(a, b PropertySet) (float64, error) {
	if err := checkSetPair(a, b); err != nil {
		return 0, err
	}
	if len(a) != len(g.Goals) {
		return 0, fmt.Errorf("core: GOAL configured for %d properties, got %d", len(g.Goals), len(a))
	}
	s := 0.0
	for i := range a {
		v, err := EvalBinary(g.Indices[i], a[i], b[i])
		if err != nil {
			return 0, err
		}
		if math.IsNaN(v) {
			return 0, fmt.Errorf("core: GOAL: index %q undefined on property %d", g.Indices[i].Name, i)
		}
		d := v - g.Goals[i]
		s += d * d
	}
	return s, nil
}

// Compare implements SetComparator:
// P_GOAL(Υ1,Υ2) < P_GOAL(Υ2,Υ1) ⟺ Υ1 ▶GOAL Υ2.
func (g *GOAL) Compare(a, b PropertySet) (Outcome, error) {
	ab, err := g.Score(a, b)
	if err != nil {
		return Tie, err
	}
	ba, err := g.Score(b, a)
	if err != nil {
		return Tie, err
	}
	switch {
	case ab < ba:
		return LeftBetter, nil
	case ba < ab:
		return RightBetter, nil
	default:
		return Tie, nil
	}
}

// NormalizeTogether rescales two aligned vectors into [0,1] by their joint
// min and max, the normalization the paper advises before computing
// weighted sums. Constant pairs map to all-zeros. The inputs are unchanged.
func NormalizeTogether(a, b PropertyVector) (PropertyVector, PropertyVector, error) {
	if err := checkPair(a, b); err != nil {
		return nil, nil, err
	}
	lo := math.Min(minOf(a), minOf(b))
	hi := math.Max(maxOf(a), maxOf(b))
	na := make(PropertyVector, len(a))
	nb := make(PropertyVector, len(b))
	if hi == lo {
		return na, nb, nil
	}
	span := hi - lo
	for i := range a {
		na[i] = (a[i] - lo) / span
		nb[i] = (b[i] - lo) / span
	}
	return na, nb, nil
}
