package core

import (
	"fmt"
	"math"
)

// Outcome is the verdict of a ▶-better comparison between two property
// vectors (or two property-vector sets).
type Outcome uint8

const (
	// Tie means neither side is ▶-better under the comparator.
	Tie Outcome = iota
	// LeftBetter means the first argument is ▶-better.
	LeftBetter
	// RightBetter means the second argument is ▶-better.
	RightBetter
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Tie:
		return "tie"
	case LeftBetter:
		return "left better"
	case RightBetter:
		return "right better"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Flip swaps left and right.
func (o Outcome) Flip() Outcome {
	switch o {
	case LeftBetter:
		return RightBetter
	case RightBetter:
		return LeftBetter
	default:
		return o
	}
}

// Comparator is a ▶-better comparator (§5): a user-defined ordering
// operation over property vectors. Implementations must be antisymmetric
// (Compare(a,b) = Compare(b,a).Flip()) — the property tests enforce this.
type Comparator interface {
	// Name identifies the comparator ("cov", "spr", ...).
	Name() string
	// Compare evaluates which vector is ▶-better.
	Compare(a, b PropertyVector) (Outcome, error)
}

// fromBinary adapts a binary quality index P with the standard rule
// P(a,b) > P(b,a) ⟺ a ▶ b shared by ▶cov, ▶spr and ▶hv.
type fromBinary struct {
	name string
	idx  BinaryIndex
}

func (c fromBinary) Name() string { return c.name }

func (c fromBinary) Compare(a, b PropertyVector) (Outcome, error) {
	ab, err := EvalBinary(c.idx, a, b)
	if err != nil {
		return Tie, err
	}
	ba, err := EvalBinary(c.idx, b, a)
	if err != nil {
		return Tie, err
	}
	if math.IsNaN(ab) || math.IsNaN(ba) {
		return Tie, fmt.Errorf("core: comparator %q: index %q is undefined for these vectors", c.name, c.idx.Name)
	}
	switch {
	case ab > ba:
		return LeftBetter, nil
	case ba > ab:
		return RightBetter, nil
	default:
		return Tie, nil
	}
}

// CovBetter is the §5.2 coverage comparator ▶cov: the vector giving at
// least as good a value to more tuples wins.
func CovBetter() Comparator { return fromBinary{name: "cov", idx: PCov} }

// SprBetter is the §5.3 spread comparator ▶spr: the vector with the larger
// total magnitude of superiority wins.
func SprBetter() Comparator { return fromBinary{name: "spr", idx: PSpr} }

// HvBetter is the §5.4 hypervolume comparator ▶hv using the paper-exact
// product form; suitable for vectors of up to a few hundred positive
// entries.
func HvBetter() Comparator { return fromBinary{name: "hv", idx: PHv} }

// HvLogBetter is ▶hv computed in log space for large data sets; requires
// strictly positive vectors.
func HvLogBetter() Comparator { return fromBinary{name: "hv-log", idx: PHvLog} }

// minBetter is the §4 ▶min comparator used implicitly by k-anonymity:
// D1 ▶min D2 iff min(D1) > min(D2). It ignores the anonymization bias —
// that is the paper's point — and is provided as the classical baseline.
type minBetter struct{}

// MinBetter returns the classical scalar ▶min comparator.
func MinBetter() Comparator { return minBetter{} }

func (minBetter) Name() string { return "min" }

func (minBetter) Compare(a, b PropertyVector) (Outcome, error) {
	if err := checkPair(a, b); err != nil {
		return Tie, err
	}
	ma, mb := minOf(a), minOf(b)
	switch {
	case ma > mb:
		return LeftBetter, nil
	case mb > ma:
		return RightBetter, nil
	default:
		return Tie, nil
	}
}

// RankBetter is the §5.1 rank comparator ▶rank: vectors are ranked by
// distance from the most desired vector Dmax; a tolerance Eps treats
// near-equal ranks as ties ("two property vectors differing in rank by ε or
// less are considered equally good").
type RankBetter struct {
	// Dmax is the point of interest, usually the vector giving every tuple
	// the maximum measure of the property.
	Dmax PropertyVector
	// Eps is the rank tolerance; 0 means exact comparison.
	Eps float64
	// Norm selects the distance; the zero value is the Euclidean L2.
	Norm Norm
}

// Name implements Comparator.
func (r RankBetter) Name() string { return "rank" }

// Compare implements Comparator.
func (r RankBetter) Compare(a, b PropertyVector) (Outcome, error) {
	if err := checkPair(a, b); err != nil {
		return Tie, err
	}
	if len(a) != len(r.Dmax) {
		return Tie, fmt.Errorf("core: rank comparator: Dmax has size %d, vectors have size %d", len(r.Dmax), len(a))
	}
	if r.Eps < 0 || math.IsNaN(r.Eps) {
		return Tie, fmt.Errorf("core: rank comparator: invalid tolerance %v", r.Eps)
	}
	idx := PRankWith(r.Dmax, r.Norm)
	ra, rb := idx.F(a), idx.F(b)
	if math.Abs(ra-rb) <= r.Eps {
		return Tie, nil
	}
	// Lower rank (distance) is better.
	if ra < rb {
		return LeftBetter, nil
	}
	return RightBetter, nil
}

// DominanceBetter adapts strict dominance (Table 4) to the Comparator
// interface: LeftBetter iff a ≻ b, RightBetter iff b ≻ a, Tie for equality
// or non-dominance. Useful as the "strict" baseline in comparison matrices.
type DominanceBetter struct{}

// Name implements Comparator.
func (DominanceBetter) Name() string { return "dominance" }

// Compare implements Comparator.
func (DominanceBetter) Compare(a, b PropertyVector) (Outcome, error) {
	rel, err := Compare(a, b)
	if err != nil {
		return Tie, err
	}
	switch rel {
	case LeftDominates:
		return LeftBetter, nil
	case RightDominates:
		return RightBetter, nil
	default:
		return Tie, nil
	}
}
