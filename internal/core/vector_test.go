package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Paper §3 class-size vectors for T3a and T3b.
var (
	sT3a = PropertyVector{3, 3, 3, 3, 4, 4, 4, 3, 3, 4}
	tT3b = PropertyVector{3, 7, 7, 3, 7, 7, 7, 3, 7, 7}
	sT4  = PropertyVector{4, 6, 4, 4, 6, 6, 6, 4, 6, 6}
)

func TestCloneEqualNegate(t *testing.T) {
	v := PropertyVector{1, 2, 3}
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Error("Clone shares storage")
	}
	if !v.Equal(PropertyVector{1, 2, 3}) || v.Equal(PropertyVector{1, 2}) || v.Equal(PropertyVector{1, 2, 4}) {
		t.Error("Equal misbehaves")
	}
	n := v.Negate()
	if !n.Equal(PropertyVector{-1, -2, -3}) {
		t.Errorf("Negate = %v", n)
	}
	if !v.Equal(PropertyVector{1, 2, 3}) {
		t.Error("Negate mutated input")
	}
}

func TestValidate(t *testing.T) {
	if err := (PropertyVector{1, 2}).Validate(); err != nil {
		t.Error(err)
	}
	for _, bad := range []PropertyVector{{}, {math.NaN()}, {math.Inf(1)}, {1, math.Inf(-1)}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%v) should fail", bad)
		}
	}
}

func TestWeakStrongDominance(t *testing.T) {
	a := PropertyVector{3, 3, 3}
	b := PropertyVector{3, 3, 3}
	c := PropertyVector{3, 4, 3}
	d := PropertyVector{4, 2, 3}

	if w, _ := WeaklyDominates(a, b); !w {
		t.Error("equal vectors should weakly dominate each other")
	}
	if s, _ := StronglyDominates(a, b); s {
		t.Error("equal vectors must not strongly dominate")
	}
	if w, _ := WeaklyDominates(c, a); !w {
		t.Error("c should weakly dominate a")
	}
	if s, _ := StronglyDominates(c, a); !s {
		t.Error("c should strongly dominate a")
	}
	if w, _ := WeaklyDominates(a, c); w {
		t.Error("a should not weakly dominate c")
	}
	if w, _ := WeaklyDominates(d, a); w {
		t.Error("incomparable vectors should not weakly dominate")
	}
}

func TestDominanceErrors(t *testing.T) {
	if _, err := WeaklyDominates(PropertyVector{1}, PropertyVector{1, 2}); err == nil {
		t.Error("size mismatch should fail")
	}
	if _, err := WeaklyDominates(nil, nil); err == nil {
		t.Error("empty vectors should fail")
	}
	if _, err := StronglyDominates(PropertyVector{1}, PropertyVector{1, 2}); err == nil {
		t.Error("size mismatch should fail")
	}
	if _, err := Compare(PropertyVector{1}, PropertyVector{1, 2}); err == nil {
		t.Error("size mismatch should fail")
	}
}

func TestComparePaperVectors(t *testing.T) {
	// T3b's class-size vector weakly dominates T3a's: equal at tuples
	// 1,4,8 and strictly better everywhere else — so T3b strongly
	// dominates T3a on the privacy property (the paper's §1 argument that
	// T3b "should rightfully be evaluated as providing better privacy").
	rel, err := Compare(tT3b, sT3a)
	if err != nil {
		t.Fatal(err)
	}
	if rel != LeftDominates {
		t.Errorf("Compare(t,s) = %v, want left dominates", rel)
	}
	// T4 vs T3b: tuple 1 prefers T4 (4 > 3), tuple 3 prefers T3b (7 > 4) —
	// the paper's §2 user-8-vs-user-3 discussion: incomparable.
	rel, err = Compare(sT4, tT3b)
	if err != nil {
		t.Fatal(err)
	}
	if rel != Incomparable {
		t.Errorf("Compare(T4,T3b) = %v, want incomparable", rel)
	}
	// Self comparison.
	rel, _ = Compare(sT3a, sT3a)
	if rel != EqualVectors {
		t.Errorf("Compare(s,s) = %v", rel)
	}
	// T4 vs T3a: T4 gives every tuple a class at least as large (4 vs 3,
	// 6 vs 4) so T4 strongly dominates T3a.
	rel, _ = Compare(sT4, sT3a)
	if rel != LeftDominates {
		t.Errorf("Compare(T4,T3a) = %v, want left dominates", rel)
	}
}

func TestRelationString(t *testing.T) {
	names := map[Relation]string{
		Incomparable:   "incomparable",
		EqualVectors:   "equal",
		LeftDominates:  "left strongly dominates",
		RightDominates: "right strongly dominates",
	}
	for r, want := range names {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
	if !strings.Contains(Relation(99).String(), "99") {
		t.Error("unknown relation should include code")
	}
}

func randVec(rng *rand.Rand, n int) PropertyVector {
	v := make(PropertyVector, n)
	for i := range v {
		v[i] = float64(rng.Intn(5))
	}
	return v
}

// Table 4 semantics: the four relations are mutually exclusive and
// exhaustive, and Compare is consistent with the Weak/Strong predicates.
func TestDominancePartialOrderLawsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		n := rng.Intn(6) + 1
		a, b, c := randVec(rng, n), randVec(rng, n), randVec(rng, n)

		// Reflexivity of weak dominance.
		if w, _ := WeaklyDominates(a, a); !w {
			return false
		}
		// Irreflexivity of strong dominance.
		if s, _ := StronglyDominates(a, a); s {
			return false
		}
		// Antisymmetry: a ≿ b and b ≿ a implies equality.
		wab, _ := WeaklyDominates(a, b)
		wba, _ := WeaklyDominates(b, a)
		if wab && wba && !a.Equal(b) {
			return false
		}
		// Transitivity of weak dominance.
		wbc, _ := WeaklyDominates(b, c)
		wac, _ := WeaklyDominates(a, c)
		if wab && wbc && !wac {
			return false
		}
		// Compare consistency.
		rel, _ := Compare(a, b)
		sab, _ := StronglyDominates(a, b)
		sba, _ := StronglyDominates(b, a)
		switch rel {
		case EqualVectors:
			if !a.Equal(b) || sab || sba {
				return false
			}
		case LeftDominates:
			if !sab || sba {
				return false
			}
		case RightDominates:
			if !sba || sab {
				return false
			}
		case Incomparable:
			if wab || wba {
				return false
			}
		}
		return true
	}
	for i := 0; i < 2000; i++ {
		if !f() {
			t.Fatalf("law violated at iteration %d", i)
		}
	}
}

func TestStrongDominanceIsStrictOrderQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// asymmetry and transitivity of ≻
	for i := 0; i < 2000; i++ {
		n := rng.Intn(5) + 1
		a, b, c := randVec(rng, n), randVec(rng, n), randVec(rng, n)
		sab, _ := StronglyDominates(a, b)
		sba, _ := StronglyDominates(b, a)
		if sab && sba {
			t.Fatal("strong dominance must be asymmetric")
		}
		sbc, _ := StronglyDominates(b, c)
		sac, _ := StronglyDominates(a, c)
		if sab && sbc && !sac {
			t.Fatal("strong dominance must be transitive")
		}
	}
}

func TestNegateReversesDominanceQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 || len(raw)%2 != 0 {
			return true
		}
		n := len(raw) / 2
		a := make(PropertyVector, n)
		b := make(PropertyVector, n)
		for i := 0; i < n; i++ {
			a[i] = float64(raw[i])
			b[i] = float64(raw[n+i])
		}
		wab, _ := WeaklyDominates(a, b)
		wba, _ := WeaklyDominates(b.Negate(), a.Negate())
		return wab == wba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
