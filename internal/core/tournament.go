package core

import (
	"fmt"
	"sort"
)

// TournamentResult ranks a field of anonymizations by pairwise ▶-better
// wins — the natural way to apply the paper's binary comparators to more
// than two anonymizations at once (§5.4's "tournament style mechanism"
// applied literally).
type TournamentResult struct {
	// Wins[i] counts the pairwise comparisons entrant i won.
	Wins []int
	// Ties[i] counts entrant i's ties.
	Ties []int
	// Order lists entrant indices from most to fewest wins (stable for
	// equal wins: earlier entrants first).
	Order []int
}

// Tournament plays every ordered pair of property vectors under the
// comparator and tallies wins. All vectors must share one length.
func Tournament(vectors []PropertyVector, cmp Comparator) (*TournamentResult, error) {
	if len(vectors) < 2 {
		return nil, fmt.Errorf("core: tournament needs at least 2 entrants, got %d", len(vectors))
	}
	if cmp == nil {
		return nil, fmt.Errorf("core: nil comparator")
	}
	n := len(vectors)
	res := &TournamentResult{
		Wins: make([]int, n),
		Ties: make([]int, n),
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out, err := cmp.Compare(vectors[i], vectors[j])
			if err != nil {
				return nil, fmt.Errorf("core: tournament pair (%d,%d): %w", i, j, err)
			}
			switch out {
			case LeftBetter:
				res.Wins[i]++
			case RightBetter:
				res.Wins[j]++
			default:
				res.Ties[i]++
				res.Ties[j]++
			}
		}
	}
	res.Order = rankByWins(res.Wins)
	return res, nil
}

// TournamentSets is Tournament over r-property sets with a multi-property
// comparator (WTD, LEX or GOAL).
func TournamentSets(sets []PropertySet, cmp SetComparator) (*TournamentResult, error) {
	if len(sets) < 2 {
		return nil, fmt.Errorf("core: tournament needs at least 2 entrants, got %d", len(sets))
	}
	if cmp == nil {
		return nil, fmt.Errorf("core: nil comparator")
	}
	n := len(sets)
	res := &TournamentResult{
		Wins: make([]int, n),
		Ties: make([]int, n),
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out, err := cmp.Compare(sets[i], sets[j])
			if err != nil {
				return nil, fmt.Errorf("core: tournament pair (%d,%d): %w", i, j, err)
			}
			switch out {
			case LeftBetter:
				res.Wins[i]++
			case RightBetter:
				res.Wins[j]++
			default:
				res.Ties[i]++
				res.Ties[j]++
			}
		}
	}
	res.Order = rankByWins(res.Wins)
	return res, nil
}

func rankByWins(wins []int) []int {
	order := make([]int, len(wins))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return wins[order[a]] > wins[order[b]]
	})
	return order
}
