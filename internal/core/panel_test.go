package core

import (
	"testing"
)

func TestStandardPanelFindsCounterexampleFast(t *testing.T) {
	// Theorem 1 (E13): five classical aggregate indices cannot
	// characterize dominance on vectors of size >= 2. A counterexample
	// must surface quickly under random search.
	ce, trials, err := FindDominanceCounterexample(StandardPanel(), 10, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ce == nil {
		t.Fatalf("no counterexample in %d trials — Theorem 1 says one must exist", trials)
	}
	// Verify the witness really is one.
	agree, _ := StandardPanel().AgreesGE(ce.A, ce.B)
	dom, _ := WeaklyDominates(ce.A, ce.B)
	if !(agree && !dom) && !(dom && !agree) {
		t.Errorf("reported counterexample is not one: %+v (agree=%v dom=%v)", ce, agree, dom)
	}
	if trials < 1 {
		t.Errorf("trials = %d", trials)
	}
}

func TestStandardPanelSwappedPairWitness(t *testing.T) {
	// The canonical witness from Theorem 1's proof: (a,b) vs (b,a) with
	// a != b. Every symmetric index scores them equally, so the panel
	// asserts mutual >= while the vectors are incomparable.
	a := PropertyVector{1, 2}
	b := PropertyVector{2, 1}
	p := StandardPanel()
	agreeAB, err := p.AgreesGE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	agreeBA, err := p.AgreesGE(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !agreeAB || !agreeBA {
		t.Fatal("symmetric panel should score swapped vectors equal")
	}
	rel, _ := Compare(a, b)
	if rel != Incomparable {
		t.Fatalf("swapped pair should be incomparable, got %v", rel)
	}
}

func TestProjectionPanelSatisfiesEquivalence(t *testing.T) {
	// With n = N projection indices the equivalence of Theorem 1 holds:
	// no counterexample exists (the theorem's bound is tight).
	for _, n := range []int{2, 3, 5} {
		ce, trials, err := VerifyEquivalence(ProjectionPanel(n), n, 5000, 42)
		if err != nil {
			t.Fatal(err)
		}
		if ce != nil {
			t.Errorf("projection panel of size %d produced counterexample after %d trials: %+v", n, trials, ce)
		}
	}
}

func TestTruncatedProjectionPanelFails(t *testing.T) {
	// Corollary sanity: n-1 projections on size-n vectors must fail — the
	// uncovered coordinate hides dominance violations.
	ce, _, err := FindDominanceCounterexample(ProjectionPanel(3), 4, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ce == nil {
		t.Error("3 projections on size-4 vectors should admit a counterexample")
	}
}

func TestPanelErrors(t *testing.T) {
	if _, _, err := FindDominanceCounterexample(StandardPanel(), 1, 10, 1); err == nil {
		t.Error("size < 2 should fail")
	}
	if _, _, err := FindDominanceCounterexample(StandardPanel(), 3, 0, 1); err == nil {
		t.Error("zero trials should fail")
	}
	if _, _, err := FindDominanceCounterexample(Panel{}, 3, 10, 1); err == nil {
		t.Error("empty panel should fail")
	}
	if _, err := (Panel{}).AgreesGE(PropertyVector{1}, PropertyVector{1}); err == nil {
		t.Error("empty panel AgreesGE should fail")
	}
	if _, err := StandardPanel().AgreesGE(PropertyVector{1}, PropertyVector{1, 2}); err == nil {
		t.Error("size mismatch should fail")
	}
}

func TestPanelOrientationRespected(t *testing.T) {
	// A lower-is-better index must be folded into the >= test.
	p := Panel{Indices: []UnaryIndex{PRank(PropertyVector{5, 5})}}
	closer := PropertyVector{5, 4}
	farther := PropertyVector{1, 1}
	agree, err := p.AgreesGE(closer, farther)
	if err != nil {
		t.Fatal(err)
	}
	if !agree {
		t.Error("closer vector should score at least as well on rank")
	}
	agree, _ = p.AgreesGE(farther, closer)
	if agree {
		t.Error("farther vector must not score >= on rank")
	}
}

func TestFindDominanceCounterexampleDeterministic(t *testing.T) {
	ce1, n1, err1 := FindDominanceCounterexample(StandardPanel(), 6, 1000, 99)
	ce2, n2, err2 := FindDominanceCounterexample(StandardPanel(), 6, 1000, 99)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if n1 != n2 || (ce1 == nil) != (ce2 == nil) {
		t.Fatal("search is not deterministic for a fixed seed")
	}
	if ce1 != nil && (!ce1.A.Equal(ce2.A) || !ce1.B.Equal(ce2.B)) {
		t.Error("witnesses differ across identical runs")
	}
}
