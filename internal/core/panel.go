package core

import (
	"fmt"
	"math/rand"
	"strconv"
)

// Panel is a vector of unary quality indices P = (P_1, ..., P_n) as used in
// Theorem 1: an attempt to characterize dominance between N-dimensional
// property vectors through n scalar measurements.
type Panel struct {
	Indices []UnaryIndex
}

// StandardPanel returns the classical aggregate indices every scalar
// privacy model draws from: min (k-anonymity / ℓ-diversity), mean, median,
// max and sum. All are symmetric functions, which is exactly why the panel
// cannot characterize dominance (Theorem 1): swapping two elements of a
// vector changes dominance relations but no symmetric index value.
func StandardPanel() Panel {
	return Panel{Indices: []UnaryIndex{PKAnon, PSAvg, PMedian, PMax, PSum}}
}

// ProjectionPanel returns the n coordinate projections P_i(D) = d_i. For
// vectors of size N = n this panel satisfies the equivalence of Theorem 1
// with the minimum possible number of indices, witnessing that the bound
// n >= N is tight.
func ProjectionPanel(n int) Panel {
	idx := make([]UnaryIndex, n)
	for i := 0; i < n; i++ {
		i := i
		idx[i] = UnaryIndex{
			Name:           "P_proj" + strconv.Itoa(i+1),
			HigherIsBetter: true,
			F: func(v PropertyVector) float64 {
				return v[i]
			},
		}
	}
	return Panel{Indices: idx}
}

// AgreesGE reports whether every index of the panel scores a at least as
// well as b, i.e. the left side of Theorem 1's equivalence
// ∀i: P_i(D1) >= P_i(D2) (with orientation folded in for lower-is-better
// indices).
func (p Panel) AgreesGE(a, b PropertyVector) (bool, error) {
	if err := checkPair(a, b); err != nil {
		return false, err
	}
	if len(p.Indices) == 0 {
		return false, fmt.Errorf("core: empty index panel")
	}
	for _, idx := range p.Indices {
		va, vb := idx.F(a), idx.F(b)
		if !idx.HigherIsBetter {
			va, vb = -va, -vb
		}
		if va < vb {
			return false, nil
		}
	}
	return true, nil
}

// Counterexample records a violation of Theorem 1's equivalence for a
// concrete panel: either the panel unanimously scores A >= B while A does
// not weakly dominate B (the panel "invents" an ordering between
// incomparable anonymizations), or A weakly dominates B while some index
// disagrees (impossible for monotone indices, but user panels may include
// non-monotone ones).
type Counterexample struct {
	A, B   PropertyVector
	Reason string
}

// FindDominanceCounterexample searches random integer-valued vectors of the
// given size for a violation of the equivalence
// ∀i: P_i(A) >= P_i(B) ⟺ A ≿ B. It returns the first counterexample found,
// the number of trials used, or nil after maxTrials trials. The search is
// deterministic for a fixed seed.
//
// For any panel of symmetric indices and size >= 2, the pair (a,b)/(b,a)
// with a != b violates the equivalence, so the search finds a witness
// almost immediately — the empirical face of Theorem 1 (experiment E13).
func FindDominanceCounterexample(p Panel, size, maxTrials int, seed int64) (*Counterexample, int, error) {
	if size < 2 {
		return nil, 0, fmt.Errorf("core: counterexample search needs size >= 2, got %d", size)
	}
	if maxTrials < 1 {
		return nil, 0, fmt.Errorf("core: counterexample search needs at least one trial")
	}
	if len(p.Indices) == 0 {
		return nil, 0, fmt.Errorf("core: empty index panel")
	}
	rng := rand.New(rand.NewSource(seed))
	a := make(PropertyVector, size)
	b := make(PropertyVector, size)
	for trial := 1; trial <= maxTrials; trial++ {
		for i := range a {
			a[i] = float64(rng.Intn(9) + 1)
			b[i] = float64(rng.Intn(9) + 1)
		}
		ce, err := checkEquivalence(p, a, b)
		if err != nil {
			return nil, trial, err
		}
		if ce == nil {
			ce, err = checkEquivalence(p, b, a)
			if err != nil {
				return nil, trial, err
			}
		}
		if ce != nil {
			return ce, trial, nil
		}
	}
	return nil, maxTrials, nil
}

// checkEquivalence tests one direction of Theorem 1's equivalence for the
// ordered pair (a, b).
func checkEquivalence(p Panel, a, b PropertyVector) (*Counterexample, error) {
	agree, err := p.AgreesGE(a, b)
	if err != nil {
		return nil, err
	}
	dom, err := WeaklyDominates(a, b)
	if err != nil {
		return nil, err
	}
	switch {
	case agree && !dom:
		return &Counterexample{
			A:      a.Clone(),
			B:      b.Clone(),
			Reason: "all indices score A >= B but A does not weakly dominate B",
		}, nil
	case dom && !agree:
		return &Counterexample{
			A:      a.Clone(),
			B:      b.Clone(),
			Reason: "A weakly dominates B but some index scores A < B",
		}, nil
	}
	return nil, nil
}

// VerifyEquivalence checks that a panel satisfies Theorem 1's equivalence
// on random vector pairs of the given size, returning the number of trials
// performed and the first counterexample encountered (nil when the panel
// passes all trials). ProjectionPanel(n) with size n passes for any number
// of trials — the witness that n = N indices suffice.
func VerifyEquivalence(p Panel, size, trials int, seed int64) (*Counterexample, int, error) {
	ce, n, err := FindDominanceCounterexample(p, size, trials, seed)
	return ce, n, err
}
