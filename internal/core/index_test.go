package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnaryIndicesPaperValues(t *testing.T) {
	// §3: P_k-anon(s) = min(s) = 3 and P_s-avg(s) = 3.4 for T3a.
	if got, err := EvalUnary(PKAnon, sT3a); err != nil || got != 3 {
		t.Errorf("P_k-anon(T3a) = %v, %v; want 3", got, err)
	}
	if got, err := EvalUnary(PSAvg, sT3a); err != nil || got != 3.4 {
		t.Errorf("P_s-avg(T3a) = %v, %v; want 3.4", got, err)
	}
	// §3: P_l-div on the sensitive-count vector of T3a is 1.
	counts := PropertyVector{2, 2, 1, 2, 2, 1, 2, 1, 2, 1}
	if got, err := EvalUnary(PLDiv, counts); err != nil || got != 1 {
		t.Errorf("P_l-div(T3a) = %v, %v; want 1", got, err)
	}
}

func TestOtherUnaryIndices(t *testing.T) {
	v := PropertyVector{4, 1, 3, 2}
	if got := PMax.F(v); got != 4 {
		t.Errorf("P_max = %v", got)
	}
	if got := PSum.F(v); got != 10 {
		t.Errorf("P_sum = %v", got)
	}
	if got := PMedian.F(v); got != 2.5 {
		t.Errorf("P_median = %v", got)
	}
	if got := PMedian.F(PropertyVector{5, 1, 9}); got != 5 {
		t.Errorf("odd P_median = %v", got)
	}
	for _, idx := range []UnaryIndex{PKAnon, PSAvg, PMax, PMedian} {
		if !math.IsNaN(idx.F(nil)) {
			t.Errorf("%s(nil) should be NaN", idx.Name)
		}
	}
}

func TestEvalUnaryValidates(t *testing.T) {
	if _, err := EvalUnary(PKAnon, PropertyVector{math.NaN()}); err == nil {
		t.Error("NaN vector should fail")
	}
	if _, err := EvalUnary(PKAnon, nil); err == nil {
		t.Error("empty vector should fail")
	}
}

func TestPRank(t *testing.T) {
	dmax := PropertyVector{10, 10}
	idx := PRank(dmax)
	if idx.HigherIsBetter {
		t.Error("rank index must be lower-is-better")
	}
	if got := idx.F(PropertyVector{10, 10}); got != 0 {
		t.Errorf("rank of ideal = %v", got)
	}
	if got := idx.F(PropertyVector{7, 6}); got != 5 {
		t.Errorf("rank = %v, want 5 (3-4-5 triangle)", got)
	}
	if got := idx.F(PropertyVector{1, 2, 3}); !math.IsNaN(got) {
		t.Errorf("size mismatch should give NaN, got %v", got)
	}
	// Fig. 2: points on the same arc are equi-ranked.
	if idx.F(PropertyVector{10, 5}) != idx.F(PropertyVector{5, 10}) {
		t.Error("symmetric points should be equi-ranked")
	}
	// The ideal vector is immune to later mutation of dmax.
	dmax[0] = 0
	if got := idx.F(PropertyVector{10, 10}); got != 0 {
		t.Error("PRank should capture a copy of Dmax")
	}
}

func TestPBinaryPaperValues(t *testing.T) {
	// §3: P_binary(s,t) = 0 and P_binary(t,s) = 7 for T3a vs T3b.
	if got, err := EvalBinary(PBinary, sT3a, tT3b); err != nil || got != 0 {
		t.Errorf("P_binary(s,t) = %v, %v; want 0", got, err)
	}
	if got, err := EvalBinary(PBinary, tT3b, sT3a); err != nil || got != 7 {
		t.Errorf("P_binary(t,s) = %v, %v; want 7", got, err)
	}
}

func TestPCovPaperValues(t *testing.T) {
	// §5.5: P_cov(p_a, p_b) = 0.3 and P_cov(p_b, p_a) = 1 on class sizes.
	if got, _ := EvalBinary(PCov, sT3a, tT3b); got != 0.3 {
		t.Errorf("P_cov(p_a,p_b) = %v, want 0.3", got)
	}
	if got, _ := EvalBinary(PCov, tT3b, sT3a); got != 1 {
		t.Errorf("P_cov(p_b,p_a) = %v, want 1", got)
	}
	// §5.3 hypotheticals: D1=(2,2,3,4,5), D2=(3,2,4,2,3): both 3/5.
	d1 := PropertyVector{2, 2, 3, 4, 5}
	d2 := PropertyVector{3, 2, 4, 2, 3}
	if got, _ := EvalBinary(PCov, d1, d2); got != 0.6 {
		t.Errorf("P_cov(D1,D2) = %v, want 0.6", got)
	}
	if got, _ := EvalBinary(PCov, d2, d1); got != 0.6 {
		t.Errorf("P_cov(D2,D1) = %v, want 0.6", got)
	}
}

func TestPSprPaperValues(t *testing.T) {
	// §5.3: D1=(2,2,3,4,5) vs D2=(3,2,4,2,3): spreads 4 and 2.
	d1 := PropertyVector{2, 2, 3, 4, 5}
	d2 := PropertyVector{3, 2, 4, 2, 3}
	if got, _ := EvalBinary(PSpr, d1, d2); got != 4 {
		t.Errorf("P_spr(D1,D2) = %v, want 4", got)
	}
	if got, _ := EvalBinary(PSpr, d2, d1); got != 2 {
		t.Errorf("P_spr(D2,D1) = %v, want 2", got)
	}
	// §5.3: the 3-anonymous vs 2-anonymous example "compare at 2 and 8".
	three := PropertyVector{3, 3, 3, 5, 5, 5, 5, 5, 3, 3, 3, 4, 4, 4, 4}
	two := PropertyVector{2, 2, 6, 6, 6, 6, 6, 6, 3, 3, 3, 4, 4, 4, 4}
	if got, _ := EvalBinary(PSpr, three, two); got != 2 {
		t.Errorf("P_spr(3-anon, 2-anon) = %v, want 2", got)
	}
	if got, _ := EvalBinary(PSpr, two, three); got != 8 {
		t.Errorf("P_spr(2-anon, 3-anon) = %v, want 8", got)
	}
	// And the coverage index agrees ("In fact, the P_cov index also
	// points at the same"): 2-anon covers 13 of 15, 3-anon 9 of 15.
	if got, _ := EvalBinary(PCov, two, three); math.Abs(got-13.0/15) > 1e-12 {
		t.Errorf("P_cov(2-anon,3-anon) = %v, want 13/15", got)
	}
	if got, _ := EvalBinary(PCov, three, two); math.Abs(got-9.0/15) > 1e-12 {
		t.Errorf("P_cov(3-anon,2-anon) = %v, want 9/15", got)
	}
}

func TestPHvPaperValues(t *testing.T) {
	// §5.4: s=(3,3,3,5,5,5,5,5), t=(4,...,4):
	// P_hv(s,t) = 3^3·5^5 − 3^3·4^5 = 84375 − 27648 = 56727
	// P_hv(t,s) = 4^8 − 27648 = 65536 − 27648 = 37888.
	s := PropertyVector{3, 3, 3, 5, 5, 5, 5, 5}
	tt := PropertyVector{4, 4, 4, 4, 4, 4, 4, 4}
	if got, _ := EvalBinary(PHv, s, tt); got != 56727 {
		t.Errorf("P_hv(s,t) = %v, want 56727", got)
	}
	if got, _ := EvalBinary(PHv, tt, s); got != 37888 {
		t.Errorf("P_hv(t,s) = %v, want 37888", got)
	}
}

func TestPHvLogAgreesWithPHvQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(6) + 1
		a := make(PropertyVector, n)
		b := make(PropertyVector, n)
		for j := range a {
			a[j] = float64(rng.Intn(9) + 1)
			b[j] = float64(rng.Intn(9) + 1)
		}
		hvAB, _ := EvalBinary(PHv, a, b)
		hvBA, _ := EvalBinary(PHv, b, a)
		lgAB, _ := EvalBinary(PHvLog, a, b)
		lgBA, _ := EvalBinary(PHvLog, b, a)
		// The comparator decision must agree: sign of (AB - BA).
		cmpHv := sign(hvAB - hvBA)
		cmpLg := sign(lgAB - lgBA)
		if cmpHv != cmpLg {
			t.Fatalf("orderings disagree for a=%v b=%v: hv %v/%v log %v/%v", a, b, hvAB, hvBA, lgAB, lgBA)
		}
	}
}

func sign(x float64) int {
	const eps = 1e-9
	switch {
	case x > eps:
		return 1
	case x < -eps:
		return -1
	default:
		return 0
	}
}

func TestPHvLogRequiresPositive(t *testing.T) {
	if got, _ := EvalBinary(PHvLog, PropertyVector{0, 1}, PropertyVector{1, 1}); !math.IsNaN(got) {
		t.Errorf("P_hv-log with zero should be NaN, got %v", got)
	}
	if got, _ := EvalBinary(PHvLog, PropertyVector{2, 1}, PropertyVector{-1, 1}); !math.IsNaN(got) {
		t.Errorf("P_hv-log with negative min should be NaN, got %v", got)
	}
}

func TestPHvLogLargeN(t *testing.T) {
	// 1000 tuples with class size 50: PHv overflows to +Inf usable-ness,
	// PHvLog stays finite and ranks correctly.
	n := 1000
	a := make(PropertyVector, n)
	b := make(PropertyVector, n)
	for i := range a {
		a[i], b[i] = 50, 49
	}
	got, err := EvalBinary(PHvLog, a, b)
	if err != nil || math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("P_hv-log large N = %v, %v", got, err)
	}
	if got <= 0 {
		t.Errorf("a strictly dominates b, P_hv-log should be positive, got %v", got)
	}
	if back, _ := EvalBinary(PHvLog, b, a); back != 0 {
		t.Errorf("P_hv-log(b,a) = %v, want 0 (b never exceeds a)", back)
	}
}

func TestEvalBinaryErrors(t *testing.T) {
	if _, err := EvalBinary(PCov, PropertyVector{1}, PropertyVector{1, 2}); err == nil {
		t.Error("size mismatch should fail")
	}
	if _, err := EvalBinary(PCov, nil, nil); err == nil {
		t.Error("empty vectors should fail")
	}
}

// §5.3: P_spr(D1,D2) = 0 ⟺ D2 ≿ D1.
func TestSpreadZeroIffDominatedQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		n := rng.Intn(5) + 1
		a, b := randVec(rng, n), randVec(rng, n)
		spr, _ := EvalBinary(PSpr, a, b)
		dom, _ := WeaklyDominates(b, a)
		if (spr == 0) != dom {
			t.Fatalf("P_spr(a,b)=0 ⟺ b ≿ a violated for a=%v b=%v", a, b)
		}
	}
}

// §5.4: P_hv(D1,D2) = 0 ⟺ D2 ≿ D1 (for positive vectors).
func TestHypervolumeZeroIffDominatedQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 3000; i++ {
		n := rng.Intn(5) + 1
		a := make(PropertyVector, n)
		b := make(PropertyVector, n)
		for j := range a {
			a[j] = float64(rng.Intn(5) + 1)
			b[j] = float64(rng.Intn(5) + 1)
		}
		hv, _ := EvalBinary(PHv, a, b)
		dom, _ := WeaklyDominates(b, a)
		if (hv == 0) != dom {
			t.Fatalf("P_hv(a,b)=0 ⟺ b ≿ a violated for a=%v b=%v", a, b)
		}
	}
}

// §5.2: P_cov(D1,D2)=1 and P_cov(D2,D1)=0 implies strong dominance — note
// the paper states D1 ≻ D2; with the >= convention P_cov(D2,D1)=0 means D1
// is strictly better everywhere.
func TestCoverageExtremesImplyDominanceQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 3000; i++ {
		n := rng.Intn(5) + 1
		a, b := randVec(rng, n), randVec(rng, n)
		covAB, _ := EvalBinary(PCov, a, b)
		covBA, _ := EvalBinary(PCov, b, a)
		if covAB == 1 && covBA == 0 {
			if s, _ := StronglyDominates(a, b); !s {
				t.Fatalf("coverage extremes without dominance: a=%v b=%v", a, b)
			}
		}
		// Duality: every tuple is counted by at least one direction.
		if covAB+covBA < 1 {
			t.Fatalf("P_cov(a,b)+P_cov(b,a) = %v < 1 for a=%v b=%v", covAB+covBA, a, b)
		}
	}
}

func TestEntropyL(t *testing.T) {
	// Uniform over 4 values: ℓ = 4.
	l, err := EntropyL([]float64{1, 1, 1, 1})
	if err != nil || math.Abs(l-4) > 1e-9 {
		t.Errorf("uniform entropy ℓ = %v, %v", l, err)
	}
	// Degenerate: ℓ = 1.
	l, err = EntropyL([]float64{5, 0, 0})
	if err != nil || math.Abs(l-1) > 1e-9 {
		t.Errorf("degenerate entropy ℓ = %v, %v", l, err)
	}
	if _, err := EntropyL(nil); err == nil {
		t.Error("empty distribution should fail")
	}
	if _, err := EntropyL([]float64{0, 0}); err == nil {
		t.Error("zero distribution should fail")
	}
	if _, err := EntropyL([]float64{-1, 2}); err == nil {
		t.Error("negative probability should fail")
	}
}

func TestEntropyLRangeQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		dist := make([]float64, len(raw))
		nonzero := 0
		for i, r := range raw {
			dist[i] = float64(r)
			if r > 0 {
				nonzero++
			}
		}
		l, err := EntropyL(dist)
		if err != nil {
			return nonzero == 0
		}
		return l >= 1-1e-9 && l <= float64(nonzero)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
