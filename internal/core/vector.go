// Package core implements the paper's contribution: vector-based
// representation of anonymization properties and the machinery for
// comparing anonymizations through them.
//
//   - PropertyVector (Definition 1): one real measurement per tuple.
//   - Dominance relations (Table 4): weak ≿, strong ≻, non-dominance ‖.
//   - Quality indices (Definition 3): unary indices recover classical
//     scalar measures (k-anonymity = min, ℓ-diversity = min of sensitive
//     counts); binary indices (P_binary, P_cov, P_spr, P_hv, P_rank's
//     distance) power the ▶-better comparators of §5.
//   - Multi-property preference schemes (§5.5–5.7): ▶WTD, ▶LEX, ▶GOAL over
//     r-property anonymizations (Definition 2).
//
// Throughout, the paper's convention holds: a HIGHER property value for a
// tuple is better. Loss-like measurements must be negated or inverted
// before they become property vectors (package utility provides both
// forms).
package core

import (
	"fmt"
	"math"
)

// PropertyVector is the paper's Definition 1: element i measures a property
// (privacy, utility, ...) for the i-th tuple of the anonymized data set.
// Vectors compared together must have equal length — the data set size N.
type PropertyVector []float64

// Clone returns a copy of the vector.
func (v PropertyVector) Clone() PropertyVector {
	c := make(PropertyVector, len(v))
	copy(c, v)
	return c
}

// Equal reports exact element-wise equality.
func (v PropertyVector) Equal(w PropertyVector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// Validate rejects vectors containing NaN or infinities, which would make
// every comparator below meaningless.
func (v PropertyVector) Validate() error {
	if len(v) == 0 {
		return fmt.Errorf("core: empty property vector")
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("core: property vector has non-finite element %v at %d", x, i)
		}
	}
	return nil
}

// checkPair verifies two vectors can be compared.
func checkPair(a, b PropertyVector) error {
	if len(a) == 0 || len(b) == 0 {
		return fmt.Errorf("core: comparing empty property vectors")
	}
	if len(a) != len(b) {
		return fmt.Errorf("core: comparing property vectors of size %d and %d", len(a), len(b))
	}
	return nil
}

// Negate returns the element-wise negation, turning a loss vector (lower is
// better) into a property vector under the paper's higher-is-better
// convention.
func (v PropertyVector) Negate() PropertyVector {
	out := make(PropertyVector, len(v))
	for i, x := range v {
		out[i] = -x
	}
	return out
}

// Relation is the outcome of a dominance comparison between two property
// vectors (paper Table 4).
type Relation uint8

const (
	// Incomparable is the non-dominance relationship ‖: each vector is
	// strictly better somewhere.
	Incomparable Relation = iota
	// EqualVectors means element-wise equality (each weakly dominates the
	// other).
	EqualVectors
	// LeftDominates means the first vector strongly dominates: ≥
	// everywhere and > somewhere. "G1 is better than G2."
	LeftDominates
	// RightDominates means the second vector strongly dominates.
	RightDominates
)

// String names the relation in the paper's terms.
func (r Relation) String() string {
	switch r {
	case Incomparable:
		return "incomparable"
	case EqualVectors:
		return "equal"
	case LeftDominates:
		return "left strongly dominates"
	case RightDominates:
		return "right strongly dominates"
	default:
		return fmt.Sprintf("Relation(%d)", uint8(r))
	}
}

// WeaklyDominates reports a ≿ b: every element of a is at least the
// corresponding element of b ("not worse than", Table 4 row 1).
func WeaklyDominates(a, b PropertyVector) (bool, error) {
	if err := checkPair(a, b); err != nil {
		return false, err
	}
	for i := range a {
		if a[i] < b[i] {
			return false, nil
		}
	}
	return true, nil
}

// StronglyDominates reports a ≻ b: a ≿ b and a is strictly better for at
// least one tuple ("better than", Table 4 row 2).
func StronglyDominates(a, b PropertyVector) (bool, error) {
	weak, err := WeaklyDominates(a, b)
	if err != nil || !weak {
		return false, err
	}
	for i := range a {
		if a[i] > b[i] {
			return true, nil
		}
	}
	return false, nil
}

// Compare classifies the pair into the four mutually exclusive relations of
// Table 4.
func Compare(a, b PropertyVector) (Relation, error) {
	if err := checkPair(a, b); err != nil {
		return Incomparable, err
	}
	aBetter, bBetter := false, false
	for i := range a {
		switch {
		case a[i] > b[i]:
			aBetter = true
		case a[i] < b[i]:
			bBetter = true
		}
		if aBetter && bBetter {
			return Incomparable, nil
		}
	}
	switch {
	case aBetter:
		return LeftDominates, nil
	case bBetter:
		return RightDominates, nil
	default:
		return EqualVectors, nil
	}
}
