package core

import (
	"math/rand"
	"testing"
)

func TestTournamentOnPaperTables(t *testing.T) {
	// T3a, T3b, T4 under coverage: the §5.2 chain — T3b beats T4 beats
	// T3a.
	vectors := []PropertyVector{sT3a, tT3b, sT4}
	res, err := Tournament(vectors, CovBetter())
	if err != nil {
		t.Fatal(err)
	}
	if res.Wins[1] != 2 {
		t.Errorf("T3b should win both matches, wins = %v", res.Wins)
	}
	if res.Wins[2] != 1 || res.Wins[0] != 0 {
		t.Errorf("chain broken: wins = %v", res.Wins)
	}
	if res.Order[0] != 1 || res.Order[1] != 2 || res.Order[2] != 0 {
		t.Errorf("order = %v, want [1 2 0]", res.Order)
	}
	// Under the classical min comparator T4 wins and T3a/T3b tie.
	res, err = Tournament(vectors, MinBetter())
	if err != nil {
		t.Fatal(err)
	}
	if res.Order[0] != 2 {
		t.Errorf("min tournament should rank T4 first: %v", res.Order)
	}
	if res.Ties[0] != 1 || res.Ties[1] != 1 {
		t.Errorf("T3a/T3b should tie under min: ties = %v", res.Ties)
	}
}

func TestTournamentErrors(t *testing.T) {
	if _, err := Tournament([]PropertyVector{sT3a}, CovBetter()); err == nil {
		t.Error("single entrant should fail")
	}
	if _, err := Tournament([]PropertyVector{sT3a, tT3b}, nil); err == nil {
		t.Error("nil comparator should fail")
	}
	if _, err := Tournament([]PropertyVector{sT3a, {1, 2}}, CovBetter()); err == nil {
		t.Error("size mismatch should fail")
	}
}

func TestTournamentSets(t *testing.T) {
	wtd, err := NewWTD([]float64{0.5, 0.5}, []BinaryIndex{PCov, PCov})
	if err != nil {
		t.Fatal(err)
	}
	sets := []PropertySet{
		{sT3a, uT3a},
		{tT3b, uT3b},
	}
	res, err := TournamentSets(sets, wtd)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §5.5 tie.
	if res.Ties[0] != 1 || res.Ties[1] != 1 || res.Wins[0] != 0 || res.Wins[1] != 0 {
		t.Errorf("expected the §5.5 tie: %+v", res)
	}
	if _, err := TournamentSets(sets[:1], wtd); err == nil {
		t.Error("single entrant should fail")
	}
	if _, err := TournamentSets(sets, nil); err == nil {
		t.Error("nil comparator should fail")
	}
}

// Total matches are conserved: Σwins + Σties/2 = n(n-1)/2.
func TestTournamentConservationQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(5) + 2
		size := rng.Intn(4) + 1
		vectors := make([]PropertyVector, n)
		for i := range vectors {
			v := make(PropertyVector, size)
			for j := range v {
				v[j] = float64(rng.Intn(6))
			}
			vectors[i] = v
		}
		res, err := Tournament(vectors, SprBetter())
		if err != nil {
			t.Fatal(err)
		}
		wins, ties := 0, 0
		for i := range res.Wins {
			wins += res.Wins[i]
			ties += res.Ties[i]
		}
		if wins+ties/2 != n*(n-1)/2 {
			t.Fatalf("conservation violated: wins=%d ties=%d n=%d", wins, ties, n)
		}
		if ties%2 != 0 {
			t.Fatalf("odd total ties %d", ties)
		}
		// Order sorted by wins.
		for i := 1; i < len(res.Order); i++ {
			if res.Wins[res.Order[i-1]] < res.Wins[res.Order[i]] {
				t.Fatal("order not sorted by wins")
			}
		}
	}
}
