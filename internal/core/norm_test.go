package core

import (
	"math/rand"
	"strings"
	"testing"
)

func TestNormString(t *testing.T) {
	if L2.String() != "L2" || L1.String() != "L1" || LInf.String() != "Linf" {
		t.Error("norm names mismatch")
	}
	if !strings.Contains(Norm(9).String(), "9") {
		t.Error("unknown norm should include code")
	}
}

func TestPRankWithNorms(t *testing.T) {
	dmax := PropertyVector{10, 10, 10}
	d := PropertyVector{7, 10, 6}
	if got := PRankWith(dmax, L1).F(d); got != 7 {
		t.Errorf("L1 = %v, want 7", got)
	}
	if got := PRankWith(dmax, LInf).F(d); got != 4 {
		t.Errorf("Linf = %v, want 4", got)
	}
	if got := PRankWith(dmax, L2).F(d); got != 5 {
		t.Errorf("L2 = %v, want 5 (3-4-5)", got)
	}
	// Default PRank is L2.
	if PRank(dmax).F(d) != PRankWith(dmax, L2).F(d) {
		t.Error("PRank should default to L2")
	}
	if got := PRankWith(dmax, L1).Name; got != "P_rank-L1" {
		t.Errorf("name = %q", got)
	}
}

func TestRankBetterNormField(t *testing.T) {
	dmax := PropertyVector{10, 10}
	// Under LInf the pair (10,2) vs (6,6) prefers the second (worst
	// shortfall 4 < 8); under L1 both are 8 away — a tie.
	a := PropertyVector{10, 2}
	b := PropertyVector{6, 6}
	out, err := (RankBetter{Dmax: dmax, Norm: LInf}).Compare(a, b)
	if err != nil || out != RightBetter {
		t.Errorf("LInf rank = %v, %v; want right better", out, err)
	}
	out, err = (RankBetter{Dmax: dmax, Norm: L1}).Compare(a, b)
	if err != nil || out != Tie {
		t.Errorf("L1 rank = %v, %v; want tie", out, err)
	}
	out, err = (RankBetter{Dmax: dmax}).Compare(a, b)
	if err != nil || out != RightBetter {
		t.Errorf("L2 rank = %v, %v; want right better (8 > sqrt(32))", out, err)
	}
}

// Norm laws: non-negativity, identity, symmetry in the displacement, and
// triangle inequality via the induced metric.
func TestRankNormLawsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 1500; trial++ {
		n := rng.Intn(5) + 1
		dmax := make(PropertyVector, n)
		a := make(PropertyVector, n)
		b := make(PropertyVector, n)
		for i := 0; i < n; i++ {
			dmax[i] = float64(rng.Intn(10))
			a[i] = float64(rng.Intn(10))
			b[i] = float64(rng.Intn(10))
		}
		for _, norm := range []Norm{L1, L2, LInf} {
			idx := PRankWith(dmax, norm)
			da, db := idx.F(a), idx.F(b)
			if da < 0 || db < 0 {
				t.Fatalf("%v: negative distance", norm)
			}
			if idx.F(dmax) != 0 {
				t.Fatalf("%v: distance to self nonzero", norm)
			}
			// Triangle inequality through the ideal point:
			// d(a, dmax) <= d(a, b's displacement) is not directly
			// expressible with a unary index; instead verify the norm
			// inequality chain Linf <= L2 <= L1.
		}
		l1 := PRankWith(dmax, L1).F(a)
		l2 := PRankWith(dmax, L2).F(a)
		li := PRankWith(dmax, LInf).F(a)
		if !(li <= l2+1e-9 && l2 <= l1+1e-9) {
			t.Fatalf("norm chain violated: Linf=%v L2=%v L1=%v", li, l2, l1)
		}
	}
}
