// Package bottomup implements a bottom-up generalization anonymizer in the
// spirit of Wang, Yu & Chakraborty (paper §6): start from the raw table
// and repeatedly apply the single-attribute generalization with the best
// benefit/cost ratio — privacy gained (violating tuples rescued) per unit
// of information lost — until the privacy constraints hold within the
// suppression budget.
//
// The scoring rule is what distinguishes it from Datafly (which generalizes
// the attribute with the most distinct values regardless of cost) and from
// top-down specialization (which walks the lattice in the opposite
// direction): bottom-up climbs are guided by the marginal trade-off, so it
// often lands on cheaper nodes than Datafly at equal k.
package bottomup

import (
	"fmt"
	"math"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/lattice"
)

// BottomUp is the benefit/cost-guided climbing anonymizer.
type BottomUp struct{}

// New returns a BottomUp instance.
func New() *BottomUp { return &BottomUp{} }

// Name implements algorithm.Algorithm.
func (*BottomUp) Name() string { return "bottomup" }

// Anonymize implements algorithm.Algorithm.
func (bu *BottomUp) Anonymize(t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	if err := cfg.Validate(t); err != nil {
		return nil, fmt.Errorf("bottomup: %w", err)
	}
	maxLevels, err := cfg.Hierarchies.MaxLevels(t.Schema)
	if err != nil {
		return nil, fmt.Errorf("bottomup: %w", err)
	}
	budget := int(cfg.MaxSuppression * float64(t.Len()))
	node := make(lattice.Node, len(maxLevels))

	// probe evaluates a node, returning its violating rows, its anonymity
	// deficit (the total number of missing tuples across undersized
	// classes — Wang et al.'s "privacy gain" is the reduction of this),
	// and its per-level loss sum (the "information loss" side; cheaper to
	// compute than the full metric and monotone in it for every ladder).
	probe := func(n lattice.Node) (small []int, deficit int, err error) {
		_, p, small, err := algorithm.ApplyNode(t, cfg, n)
		if err != nil {
			return nil, 0, err
		}
		for _, rows := range p.Classes {
			if len(rows) < cfg.K {
				deficit += cfg.K - len(rows)
			}
		}
		return small, deficit, nil
	}
	lossOf := func(n lattice.Node) (float64, error) {
		qi := t.Schema.QuasiIdentifiers()
		total := 0.0
		for li, j := range qi {
			h := cfg.Hierarchies[t.Schema.Attrs[j].Name]
			// Representative loss: generalizing the first row's value.
			l, err := h.Loss(t.At(0, j), n[li])
			if err != nil {
				return 0, err
			}
			total += l
		}
		return total, nil
	}

	small, deficit, err := probe(node)
	if err != nil {
		return nil, fmt.Errorf("bottomup: %w", err)
	}
	loss, err := lossOf(node)
	if err != nil {
		return nil, fmt.Errorf("bottomup: %w", err)
	}
	steps := 0
	for len(small) > budget {
		// Score each one-level climb by privacy gain (deficit reduction
		// plus violating-row reduction) per unit of information lost.
		bestIdx := -1
		bestScore := math.Inf(-1)
		var bestSmall []int
		bestDeficit := 0
		bestLoss := 0.0
		for i := range node {
			if node[i] >= maxLevels[i] {
				continue
			}
			node[i]++
			s, d, err := probe(node)
			if err != nil {
				node[i]--
				return nil, fmt.Errorf("bottomup: %w", err)
			}
			l, err := lossOf(node)
			if err != nil {
				node[i]--
				return nil, fmt.Errorf("bottomup: %w", err)
			}
			gain := float64(deficit-d) + float64(len(small)-len(s))
			dl := l - loss
			if dl <= 0 {
				dl = 1e-9
			}
			score := gain / dl
			if score > bestScore {
				bestIdx, bestScore = i, score
				bestSmall, bestDeficit, bestLoss = s, d, l
			}
			node[i]--
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("bottomup: constraints unreachable at full generalization with suppression budget %d", budget)
		}
		node[bestIdx]++
		small, deficit, loss = bestSmall, bestDeficit, bestLoss
		steps++
	}
	return algorithm.FinishGlobal(bu.Name(), t, cfg, node, map[string]float64{
		"generalization_steps": float64(steps),
	})
}
