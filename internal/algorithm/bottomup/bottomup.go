// Package bottomup implements a bottom-up generalization anonymizer in the
// spirit of Wang, Yu & Chakraborty (paper §6): start from the raw table
// and repeatedly apply the single-attribute generalization with the best
// benefit/cost ratio — privacy gained (violating tuples rescued) per unit
// of information lost — until the privacy constraints hold within the
// suppression budget.
//
// The scoring rule is what distinguishes it from Datafly (which generalizes
// the attribute with the most distinct values regardless of cost) and from
// top-down specialization (which walks the lattice in the opposite
// direction): bottom-up climbs are guided by the marginal trade-off, so it
// often lands on cheaper nodes than Datafly at equal k.
//
// Each step's candidate climbs are batch-evaluated in parallel on the
// shared evaluation engine.
package bottomup

import (
	"context"
	"fmt"
	"math"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/engine"
	"microdata/internal/lattice"
	"microdata/internal/telemetry"
)

// BottomUp is the benefit/cost-guided climbing anonymizer.
type BottomUp struct{}

// New returns a BottomUp instance.
func New() *BottomUp { return &BottomUp{} }

// Name implements algorithm.Algorithm.
func (*BottomUp) Name() string { return "bottomup" }

// Anonymize implements algorithm.Algorithm.
func (bu *BottomUp) Anonymize(t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	return bu.AnonymizeContext(context.Background(), t, cfg)
}

// AnonymizeContext implements algorithm.ContextAlgorithm; the climb aborts
// with the context's error as soon as cancellation is seen.
func (bu *BottomUp) AnonymizeContext(ctx context.Context, t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	ctx, sp := telemetry.Start(ctx, "bottomup.search", telemetry.Int("k", cfg.K))
	defer sp.End()
	reg := telemetry.NewRunRegistry()
	stepsC := reg.Counter("bottomup.generalization_steps")
	eng, err := engine.NewContext(ctx, t, cfg)
	if err != nil {
		return nil, fmt.Errorf("bottomup: %w", err)
	}
	maxLevels := eng.Lattice().MaxLevels()
	budget := eng.Budget()
	node := make(lattice.Node, len(maxLevels))

	// probe reads a node's violating rows and its anonymity deficit (the
	// total number of missing tuples across undersized classes — Wang et
	// al.'s "privacy gain" is the reduction of this) off an engine
	// evaluation.
	probe := func(ev *engine.Evaluation) (small []int, deficit int) {
		for _, rows := range ev.Partition.Classes {
			if len(rows) < cfg.K {
				deficit += cfg.K - len(rows)
			}
		}
		return ev.Bad, deficit
	}
	// lossOf is the "information loss" side of the score: the per-level
	// loss sum of generalizing the first row's values — cheaper to compute
	// than the full metric and monotone in it for every ladder.
	lossOf := func(n lattice.Node) (float64, error) {
		qi := t.Schema.QuasiIdentifiers()
		total := 0.0
		for li, j := range qi {
			h := cfg.Hierarchies[t.Schema.Attrs[j].Name]
			l, err := h.Loss(t.At(0, j), n[li])
			if err != nil {
				return 0, err
			}
			total += l
		}
		return total, nil
	}

	ev, err := eng.Evaluate(ctx, node)
	if err != nil {
		return nil, fmt.Errorf("bottomup: %w", err)
	}
	small, deficit := probe(ev)
	loss, err := lossOf(node)
	if err != nil {
		return nil, fmt.Errorf("bottomup: %w", err)
	}
	for len(small) > budget {
		// Score each one-level climb by privacy gain (deficit reduction
		// plus violating-row reduction) per unit of information lost. The
		// candidate climbs are evaluated as one parallel batch.
		var idxs []int
		var cands []lattice.Node
		for i := range node {
			if node[i] >= maxLevels[i] {
				continue
			}
			c := node.Clone()
			c[i]++
			idxs = append(idxs, i)
			cands = append(cands, c)
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("bottomup: constraints unreachable at full generalization with suppression budget %d", budget)
		}
		evs, err := eng.EvaluateAll(ctx, cands)
		if err != nil {
			return nil, fmt.Errorf("bottomup: %w", err)
		}
		bestIdx := -1
		bestScore := math.Inf(-1)
		var bestSmall []int
		bestDeficit := 0
		bestLoss := 0.0
		for ci, cev := range evs {
			s, d := probe(cev)
			l, err := lossOf(cands[ci])
			if err != nil {
				return nil, fmt.Errorf("bottomup: %w", err)
			}
			gain := float64(deficit-d) + float64(len(small)-len(s))
			dl := l - loss
			if dl <= 0 {
				dl = 1e-9
			}
			score := gain / dl
			if score > bestScore {
				bestIdx, bestScore = idxs[ci], score
				bestSmall, bestDeficit, bestLoss = s, d, l
			}
		}
		node[bestIdx]++
		small, deficit, loss = bestSmall, bestDeficit, bestLoss
		stepsC.Inc()
	}
	stats := map[string]float64{}
	reg.Snapshot().MergeInto(stats, "bottomup.")
	eng.Stats().MergeInto(stats)
	telemetry.L().Info("bottomup: climb complete",
		"steps", stepsC.Value(), "node", fmt.Sprint(node), "engine", eng.Stats().String())
	return algorithm.FinishGlobalContext(ctx, bu.Name(), t, cfg, node, stats)
}
