package bottomup

import (
	"testing"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/algtest"
	"microdata/internal/algorithm/datafly"
	"microdata/internal/algorithm/optimal"
	"microdata/internal/privacy"
)

func TestBottomUpOnPaperTable(t *testing.T) {
	tab, cfg := algtest.PaperConfig(3)
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	algtest.KIsAchieved(t, r, 3)
	if r.Stats["generalization_steps"] < 1 {
		t.Error("T1 needs at least one climb for k=3")
	}
}

func TestBottomUpStaysAtBottomForK1(t *testing.T) {
	tab, cfg := algtest.PaperConfig(1)
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Levels.Height() != 0 {
		t.Errorf("k=1 should keep the bottom node, got %v", r.Levels)
	}
}

func TestBottomUpNeverBeatsOptimal(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(250, 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	bur, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, bur)
	opt, err := optimal.New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	buCost, _ := algorithm.ResultCost(bur, tab, cfg)
	optCost, _ := algorithm.ResultCost(opt, tab, cfg)
	if optCost > buCost+1e-9 {
		t.Errorf("optimal %v worse than bottom-up %v — impossible", optCost, buCost)
	}
}

func TestBottomUpVsDataflyCostAwareness(t *testing.T) {
	// Both climb from the bottom; bottom-up is cost-guided, so across a
	// few seeds it must never be strictly worse than Datafly on the
	// metric it optimizes, at least once strictly better OR always equal.
	better, worse := 0, 0
	for seed := int64(31); seed < 36; seed++ {
		tab, cfg, err := algtest.CensusConfig(300, 5, seed)
		if err != nil {
			t.Fatal(err)
		}
		bur, err := New().Anonymize(tab, cfg)
		if err != nil {
			t.Fatal(err)
		}
		dfr, err := datafly.New().Anonymize(tab, cfg)
		if err != nil {
			t.Fatal(err)
		}
		buCost, _ := algorithm.ResultCost(bur, tab, cfg)
		dfCost, _ := algorithm.ResultCost(dfr, tab, cfg)
		switch {
		case buCost < dfCost-1e-9:
			better++
		case buCost > dfCost+1e-9:
			worse++
		}
	}
	t.Logf("bottom-up vs datafly over 5 seeds: better=%d worse=%d", better, worse)
	if better == 0 && worse > 0 {
		t.Errorf("cost-guided climbing never beat Datafly but lost %d times", worse)
	}
}

func TestBottomUpWithConstraints(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(300, 4, 37)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MinLDiversity = 2
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	if len(r.Suppressed) == 0 {
		col := tab.Column(tab.Schema.SensitiveIndex())
		ok, err := privacy.IsDistinctLDiverse(r.Partition, col, 2)
		if err != nil || !ok {
			t.Fatalf("result not 2-diverse: %v, %v", ok, err)
		}
	}
}

func TestBottomUpDeterminism(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(300, 5, 38)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckDeterminism(t, New(), tab, cfg)
}

func TestBottomUpFailures(t *testing.T) {
	algtest.CheckCommonFailures(t, New())
}
