package mondrian

import (
	"testing"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/algtest"
	"microdata/internal/dataset"
	"microdata/internal/eqclass"
)

func TestMondrianOnPaperTable(t *testing.T) {
	for _, alg := range []*Mondrian{New(), NewRelaxed()} {
		tab, cfg := algtest.PaperConfig(3)
		cfg.Taxonomies = nil
		r, err := alg.Anonymize(tab, cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		algtest.CheckResult(t, tab, cfg, r)
		algtest.KIsAchieved(t, r, 3)
		if r.Levels != nil {
			t.Errorf("%s is local recoding; Levels must be nil", alg.Name())
		}
		if r.Stats["regions"] < 2 {
			t.Errorf("%s: expected multiple regions on T1, got %v", alg.Name(), r.Stats["regions"])
		}
	}
}

func TestMondrianNames(t *testing.T) {
	if New().Name() != "mondrian" || NewRelaxed().Name() != "mondrian-relaxed" {
		t.Error("names mismatch")
	}
}

func TestMondrianOnCensus(t *testing.T) {
	for _, alg := range []*Mondrian{New(), NewRelaxed()} {
		tab, cfg, err := algtest.CensusConfig(500, 5, 9)
		if err != nil {
			t.Fatal(err)
		}
		r, err := alg.Anonymize(tab, cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		algtest.CheckResult(t, tab, cfg, r)
		algtest.CheckDeterminism(t, alg, tab, cfg)
		// Mondrian should beat single-node global recoding on class
		// granularity: many regions, each between k and (strict) ~2k-1
		// or exactly bounded for relaxed.
		for _, rows := range r.Partition.Classes {
			if len(rows) < cfg.K {
				t.Fatalf("%s: region smaller than k", alg.Name())
			}
		}
		if alg.Relaxed {
			for _, rows := range r.Partition.Classes {
				if len(rows) >= 2*cfg.K+2 {
					t.Errorf("relaxed region of size %d should have been cut (k=%d)", len(rows), cfg.K)
				}
			}
		}
	}
}

func TestMondrianRegionGeneralization(t *testing.T) {
	// Craft a table where one region must use taxonomy LCA, one common
	// prefix, one numeric hull.
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "Age", Kind: dataset.Numeric, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "ZipCode", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "Education", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "Disease", Kind: dataset.Categorical, Role: dataset.Sensitive},
	)
	tab := dataset.NewTable(schema)
	tab.MustAppend(dataset.NumVal(20), dataset.StrVal("13051"), dataset.StrVal("No-HS"), dataset.StrVal("Flu"))
	tab.MustAppend(dataset.NumVal(30), dataset.StrVal("13052"), dataset.StrVal("HS-Grad"), dataset.StrVal("Flu"))
	tab, cfg, err := withCensusHierarchies(tab)
	if err != nil {
		t.Fatal(err)
	}
	cfg.K = 2
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Single region of 2: age hull (20,30], zip prefix 1305*, education
	// LCA "School".
	if got := r.Table.At(0, 0).String(); got != "(20,30]" {
		t.Errorf("age hull = %q", got)
	}
	if got := r.Table.At(0, 1).String(); got != "1305*" {
		t.Errorf("zip prefix = %q", got)
	}
	if got := r.Table.At(0, 2).String(); got != "School" {
		t.Errorf("education LCA = %q", got)
	}
}

func TestMondrianUniformColumnStaysExact(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "Age", Kind: dataset.Numeric, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "ZipCode", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
	)
	tab := dataset.NewTable(schema)
	for i := 0; i < 4; i++ {
		tab.MustAppend(dataset.NumVal(25), dataset.StrVal("13051"))
	}
	tab2, cfg, err := withCensusHierarchies(tab)
	if err != nil {
		t.Fatal(err)
	}
	cfg.K = 2
	r, err := New().Anonymize(tab2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Table.At(0, 0); !got.Equal(dataset.NumVal(25)) {
		t.Errorf("uniform age generalized to %v", got)
	}
	if got := r.Table.At(0, 1); !got.Equal(dataset.StrVal("13051")) {
		t.Errorf("uniform zip generalized to %v", got)
	}
}

func TestMondrianStrictVsRelaxedGranularity(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(400, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := NewRelaxed().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Relaxed always halves, so its leaf regions are tightly bounded and
	// the region count is at least N/(2k). Strict regions may be larger
	// (uncuttable value runs) but never smaller than k. Both must
	// partition far finer than a single global recoding.
	n := tab.Len()
	if relaxed.Partition.NumClasses() < n/(2*cfg.K) {
		t.Errorf("relaxed produced only %d regions for N=%d k=%d", relaxed.Partition.NumClasses(), n, cfg.K)
	}
	if strict.Partition.NumClasses() < 10 {
		t.Errorf("strict produced only %d regions", strict.Partition.NumClasses())
	}
}

func TestMondrianFailures(t *testing.T) {
	algtest.CheckCommonFailures(t, New())
}

func TestMondrianPartitionMatchesTableSignature(t *testing.T) {
	// Regions must coincide with the equivalence classes of the recoded
	// table: re-partitioning by signature yields identical class sizes.
	tab, cfg, err := algtest.CensusConfig(300, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bySig, err := eqclass.FromTable(r.Table)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Table.Len(); i++ {
		if bySig.Size(i) < r.Partition.Size(i) {
			t.Fatalf("row %d: signature class %d smaller than region %d", i, bySig.Size(i), r.Partition.Size(i))
		}
	}
}

// withCensusHierarchies attaches the census hierarchies/taxonomies config
// to a hand-built table.
func withCensusHierarchies(tab *dataset.Table) (*dataset.Table, algorithm.Config, error) {
	_, cfg, err := algtest.CensusConfig(10, 2, 1)
	if err != nil {
		return nil, cfg, err
	}
	return tab, cfg, nil
}
