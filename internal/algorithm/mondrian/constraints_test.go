package mondrian

import (
	"testing"

	"microdata/internal/algorithm/algtest"
	"microdata/internal/privacy"
)

func TestMondrianWithLDiversityConstraint(t *testing.T) {
	for _, alg := range []*Mondrian{New(), NewRelaxed()} {
		tab, cfg, err := algtest.CensusConfig(400, 4, 24)
		if err != nil {
			t.Fatal(err)
		}
		cfg.MinLDiversity = 2
		r, err := alg.Anonymize(tab, cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		algtest.CheckResult(t, tab, cfg, r)
		col := tab.Column(tab.Schema.SensitiveIndex())
		ok, err := privacy.IsDistinctLDiverse(r.Partition, col, 2)
		if err != nil || !ok {
			t.Fatalf("%s: result not 2-diverse: %v, %v", alg.Name(), ok, err)
		}
		// The constraint must cost granularity: no more regions than the
		// unconstrained run.
		cfg.MinLDiversity = 0
		r0, err := alg.Anonymize(tab, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Partition.NumClasses() > r0.Partition.NumClasses() {
			t.Errorf("%s: constrained run has MORE regions (%d) than unconstrained (%d)",
				alg.Name(), r.Partition.NumClasses(), r0.Partition.NumClasses())
		}
	}
}

func TestMondrianWithTClosenessConstraint(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(400, 4, 25)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxTCloseness = 0.4
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	col := tab.Column(tab.Schema.SensitiveIndex())
	got, err := privacy.TCloseness(r.Partition, col, false)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.4+1e-9 {
		t.Errorf("t-closeness %v exceeds the 0.4 bound", got)
	}
}

func TestMondrianWithEntropyLConstraint(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(400, 4, 28)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MinEntropyL = 1.8
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	col := tab.Column(tab.Schema.SensitiveIndex())
	got, err := privacy.EntropyLDiversity(r.Partition, col)
	if err != nil {
		t.Fatal(err)
	}
	if got < 1.8-1e-9 {
		t.Errorf("entropy ℓ = %v, want >= 1.8", got)
	}
}

func TestMondrianWithRecursiveCLConstraint(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(400, 4, 29)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RecursiveC = 3
	cfg.RecursiveL = 2
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	col := tab.Column(tab.Schema.SensitiveIndex())
	ok, err := privacy.RecursiveCLDiversity(r.Partition, col, 3, 2)
	if err != nil || !ok {
		t.Fatalf("result not (3,2)-diverse: %v, %v", ok, err)
	}
}

func TestMondrianImpossibleConstraintFails(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(100, 2, 26)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MinLDiversity = 99 // beyond the data's distinct sensitive values
	if _, err := New().Anonymize(tab, cfg); err == nil {
		t.Error("impossible ℓ requirement should fail (Mondrian cannot suppress)")
	}
}
