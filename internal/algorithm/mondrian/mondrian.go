// Package mondrian implements LeFevre et al.'s Mondrian multidimensional
// k-anonymity (paper §6): a top-down, local-recoding algorithm that
// recursively splits the tuple set at the median of the quasi-identifier
// with the widest normalized range, stopping when no allowable cut leaves
// both halves with at least k tuples.
//
// Strict mode keeps all tuples sharing a value on the same side of a cut;
// Relaxed mode splits ties to balance the halves (guaranteeing progress
// whenever a region holds 2k or more tuples).
//
// Being a local recoding, Mondrian does not use a generalization lattice;
// each final region is generalized minimally on its own: numeric columns to
// the region's value hull (rendered in the library's (lo,hi] interval
// notation with the low endpoint attained), categorical columns to the
// lowest common taxonomy ancestor when cfg.Taxonomies has one, else to the
// longest common prefix for fixed-length codes, else to suppression.
package mondrian

import (
	"context"
	"fmt"
	"math"
	"sort"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/eqclass"
	"microdata/internal/privacy"
	"microdata/internal/telemetry"
)

// Mondrian is the multidimensional partitioning k-anonymizer.
type Mondrian struct {
	// Relaxed selects relaxed (tie-splitting) partitioning.
	Relaxed bool
}

// New returns a strict-mode Mondrian.
func New() *Mondrian { return &Mondrian{} }

// NewRelaxed returns a relaxed-mode Mondrian.
func NewRelaxed() *Mondrian { return &Mondrian{Relaxed: true} }

// Name implements algorithm.Algorithm.
func (m *Mondrian) Name() string {
	if m.Relaxed {
		return "mondrian-relaxed"
	}
	return "mondrian"
}

// Anonymize implements algorithm.Algorithm.
func (m *Mondrian) Anonymize(t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	return m.AnonymizeContext(context.Background(), t, cfg)
}

// AnonymizeContext implements algorithm.ContextAlgorithm; the recursive
// partitioning aborts with the context's error as soon as cancellation is
// seen.
func (m *Mondrian) AnonymizeContext(ctx context.Context, t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	ctx, sp := telemetry.Start(ctx, m.Name()+".search",
		telemetry.Int("k", cfg.K), telemetry.Bool("relaxed", m.Relaxed))
	defer sp.End()
	reg := telemetry.NewRunRegistry()
	cutsC := reg.Counter(m.Name() + ".cuts")
	if err := cfg.Validate(t); err != nil {
		return nil, fmt.Errorf("mondrian: %w", err)
	}
	qi := t.Schema.QuasiIdentifiers()
	// Global normalization spans per attribute.
	spans := make([]float64, len(qi))
	for d, j := range qi {
		spans[d] = m.span(t, j, allRows(t.Len()))
		if spans[d] == 0 {
			spans[d] = 1
		}
	}
	// Allowable-cut validity: both sides must meet k and every configured
	// secondary privacy property (ℓ-diverse / t-close Mondrian).
	var sensitive []dataset.Value
	if cfg.MinLDiversity > 0 || cfg.MaxTCloseness > 0 || cfg.MinEntropyL > 0 || (cfg.RecursiveC > 0 && cfg.RecursiveL > 0) {
		sensitive = t.Column(t.Schema.SensitiveIndex())
	}
	valid := func(rows []int) bool {
		if len(rows) < cfg.K {
			return false
		}
		if cfg.MinLDiversity > 0 {
			distinct := map[string]struct{}{}
			for _, r := range rows {
				distinct[sensitive[r].Key()] = struct{}{}
			}
			if len(distinct) < cfg.MinLDiversity {
				return false
			}
		}
		if cfg.MaxTCloseness > 0 {
			d, err := privacy.ClassEMD(sensitive, rows, false)
			if err != nil || d > cfg.MaxTCloseness+1e-12 {
				return false
			}
		}
		if cfg.RecursiveC > 0 && cfg.RecursiveL > 0 {
			counts := map[string]int{}
			for _, r := range rows {
				counts[sensitive[r].Key()]++
			}
			freqs := make([]int, 0, len(counts))
			for _, f := range counts {
				freqs = append(freqs, f)
			}
			sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
			if cfg.RecursiveL > len(freqs) {
				return false
			}
			tail := 0
			for _, f := range freqs[cfg.RecursiveL-1:] {
				tail += f
			}
			if float64(freqs[0]) >= cfg.RecursiveC*float64(tail) {
				return false
			}
		}
		if cfg.MinEntropyL > 0 {
			counts := map[string]int{}
			for _, r := range rows {
				counts[sensitive[r].Key()]++
			}
			h, n := 0.0, float64(len(rows))
			for _, c := range counts {
				q := float64(c) / n
				h -= q * math.Log(q)
			}
			if math.Exp(h) < cfg.MinEntropyL-1e-12 {
				return false
			}
		}
		return true
	}
	var regions [][]int
	var cancelErr error
	var partition func(rows []int)
	partition = func(rows []int) {
		if cancelErr != nil {
			return
		}
		if err := ctx.Err(); err != nil {
			cancelErr = err
			return
		}
		if len(rows) >= 2*cfg.K {
			// Try dimensions in decreasing normalized width.
			order := m.dimensionOrder(t, qi, rows, spans)
			for _, d := range order {
				left, right, ok := m.split(t, qi[d], rows, cfg.K, valid)
				if ok {
					cutsC.Inc()
					partition(left)
					partition(right)
					return
				}
			}
		}
		regions = append(regions, rows)
	}
	partition(allRows(t.Len()))
	if cancelErr != nil {
		return nil, fmt.Errorf("mondrian: %w", cancelErr)
	}

	_, msp := telemetry.Start(ctx, "algorithm.materialize",
		telemetry.String("algorithm", m.Name()))
	defer msp.End()
	anon := t.Clone()
	for _, region := range regions {
		for _, j := range qi {
			v, err := m.generalizeRegion(t, j, region, cfg)
			if err != nil {
				return nil, fmt.Errorf("mondrian: %w", err)
			}
			for _, r := range region {
				anon.Rows[r][j] = v
			}
		}
	}
	anon.InvalidateColumns()
	p, err := eqclass.FromGroups(t.Len(), regions)
	if err != nil {
		return nil, fmt.Errorf("mondrian: %w", err)
	}
	if ok, err := algorithm.SatisfiesConstraints(p, anon, cfg); err != nil {
		return nil, fmt.Errorf("mondrian: %w", err)
	} else if !ok {
		return nil, fmt.Errorf("mondrian: the table cannot satisfy the privacy constraints without suppression (whole-table region already violates them)")
	}
	reg.Gauge(m.Name() + ".regions").Set(float64(len(regions)))
	stats := map[string]float64{}
	reg.Snapshot().MergeInto(stats, m.Name()+".")
	telemetry.L().Info("mondrian: partitioning complete", "algorithm", m.Name(),
		"cuts", cutsC.Value(), "regions", len(regions))
	return &algorithm.Result{
		Algorithm: m.Name(),
		Table:     anon,
		Partition: p,
		Stats:     stats,
	}, nil
}

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// span measures the width of a region along one attribute: numeric range
// for Numeric columns, distinct-count for categorical ones.
func (m *Mondrian) span(t *dataset.Table, col int, rows []int) float64 {
	if t.Schema.Attrs[col].Kind == dataset.Numeric {
		lo, hi, any := 0.0, 0.0, false
		for _, r := range rows {
			v := t.At(r, col)
			if v.Kind() != dataset.Num {
				continue
			}
			x := v.Float()
			if !any {
				lo, hi, any = x, x, true
			} else if x < lo {
				lo = x
			} else if x > hi {
				hi = x
			}
		}
		return hi - lo
	}
	seen := map[string]struct{}{}
	for _, r := range rows {
		seen[t.At(r, col).Key()] = struct{}{}
	}
	return float64(len(seen) - 1)
}

// dimensionOrder ranks quasi-identifier dimensions by decreasing normalized
// span within the region.
func (m *Mondrian) dimensionOrder(t *dataset.Table, qi []int, rows []int, spans []float64) []int {
	type dw struct {
		d int
		w float64
	}
	ws := make([]dw, len(qi))
	for d, j := range qi {
		ws[d] = dw{d, m.span(t, j, rows) / spans[d]}
	}
	sort.SliceStable(ws, func(a, b int) bool { return ws[a].w > ws[b].w })
	out := make([]int, len(ws))
	for i, x := range ws {
		out[i] = x.d
	}
	return out
}

// sortKey orders rows along a column: numerically for Numeric, by value key
// for categorical.
func (m *Mondrian) sortRows(t *dataset.Table, col int, rows []int) []int {
	s := append([]int(nil), rows...)
	numeric := t.Schema.Attrs[col].Kind == dataset.Numeric
	sort.SliceStable(s, func(a, b int) bool {
		va, vb := t.At(s[a], col), t.At(s[b], col)
		if numeric && va.Kind() == dataset.Num && vb.Kind() == dataset.Num {
			return va.Float() < vb.Float()
		}
		return va.Key() < vb.Key()
	})
	return s
}

// split attempts a median cut along the column; both sides must pass the
// validity check (k plus any secondary privacy properties). Returns
// ok=false when no allowable cut exists.
func (m *Mondrian) split(t *dataset.Table, col int, rows []int, k int, valid func([]int) bool) (left, right []int, ok bool) {
	if len(rows) < 2*k {
		return nil, nil, false
	}
	s := m.sortRows(t, col, rows)
	if m.Relaxed {
		mid := len(s) / 2
		if valid(s[:mid]) && valid(s[mid:]) {
			return s[:mid], s[mid:], true
		}
		return nil, nil, false
	}
	// Strict: cut only between distinct values; try the boundary nearest
	// the median first.
	mid := len(s) / 2
	key := func(i int) string { return t.At(s[i], col).Key() }
	var boundaries []int
	for i := 1; i < len(s); i++ {
		if key(i) != key(i-1) {
			boundaries = append(boundaries, i)
		}
	}
	sort.SliceStable(boundaries, func(a, b int) bool {
		return abs(boundaries[a]-mid) < abs(boundaries[b]-mid)
	})
	for _, cut := range boundaries {
		if cut >= k && len(s)-cut >= k && valid(s[:cut]) && valid(s[cut:]) {
			return s[:cut], s[cut:], true
		}
	}
	return nil, nil, false
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// generalizeRegion produces the minimal generalized value for one column of
// a final region.
func (m *Mondrian) generalizeRegion(t *dataset.Table, col int, rows []int, cfg algorithm.Config) (dataset.Value, error) {
	attr := t.Schema.Attrs[col]
	first := t.At(rows[0], col)
	uniform := true
	for _, r := range rows[1:] {
		if !t.At(r, col).Equal(first) {
			uniform = false
			break
		}
	}
	if uniform {
		return first, nil
	}
	if attr.Kind == dataset.Numeric {
		lo, hi := 0.0, 0.0
		for i, r := range rows {
			v := t.At(r, col)
			if v.Kind() != dataset.Num {
				return dataset.Value{}, fmt.Errorf("non-ground numeric cell in column %q", attr.Name)
			}
			x := v.Float()
			if i == 0 {
				lo, hi = x, x
			} else if x < lo {
				lo = x
			} else if x > hi {
				hi = x
			}
		}
		return dataset.IntervalVal(lo, hi), nil
	}
	// Categorical: taxonomy LCA if available.
	if tax := cfg.Taxonomies[attr.Name]; tax != nil {
		grounds := make([]string, len(rows))
		for i, r := range rows {
			v := t.At(r, col)
			if v.Kind() != dataset.Str {
				return dataset.Value{}, fmt.Errorf("non-ground categorical cell in column %q", attr.Name)
			}
			grounds[i] = v.Text()
		}
		label, isRoot, err := tax.LCA(grounds)
		if err != nil {
			return dataset.Value{}, err
		}
		if isRoot {
			return dataset.StarVal(), nil
		}
		return dataset.SetVal(label), nil
	}
	// Fixed-length codes: longest common prefix.
	if v, ok := m.commonPrefix(t, col, rows); ok {
		return v, nil
	}
	return dataset.StarVal(), nil
}

// commonPrefix generalizes equal-length string codes to their shared prefix.
func (m *Mondrian) commonPrefix(t *dataset.Table, col int, rows []int) (dataset.Value, bool) {
	first := t.At(rows[0], col)
	if first.Kind() != dataset.Str {
		return dataset.Value{}, false
	}
	base := first.Text()
	n := len(base)
	common := n
	for _, r := range rows[1:] {
		v := t.At(r, col)
		if v.Kind() != dataset.Str || len(v.Text()) != n {
			return dataset.Value{}, false
		}
		s := v.Text()
		i := 0
		for i < common && s[i] == base[i] {
			i++
		}
		common = i
		if common == 0 {
			return dataset.StarVal(), true
		}
	}
	if common == n {
		return first, true
	}
	return dataset.PrefixVal(base[:common], n-common), true
}
