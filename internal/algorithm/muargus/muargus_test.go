package muargus

import (
	"testing"

	"microdata/internal/algorithm/algtest"
	"microdata/internal/eqclass"
	"microdata/internal/privacy"
)

func TestMuArgusOnPaperTable(t *testing.T) {
	tab, cfg := algtest.PaperConfig(3)
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With only two quasi-identifiers, order-2 checking IS the full QI
	// set, so the result must be genuinely 3-anonymous.
	algtest.CheckResult(t, tab, cfg, r)
	if r.Stats["combination_order"] != 2 {
		t.Errorf("combination order = %v", r.Stats["combination_order"])
	}
}

func TestMuArgusGuaranteeGapOnWiderQI(t *testing.T) {
	// With 4 quasi-identifiers and bivariate checking, μ-Argus may stop
	// short of full k-anonymity — the documented weakness the paper's §6
	// survey cites (larger combinations are not checked). Verify the gap
	// is observable: the full-QI partition can have classes below k even
	// though all checked (order <= 2) combinations are fine.
	tab, cfg, err := algtest.CensusConfig(400, 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxSuppression = 0.05
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The output may or may not be fully k-anonymous; both are valid
	// μ-Argus outcomes. What must hold: every checked bivariate
	// combination occurs >= k times or was suppressed.
	qi := r.Table.Schema.QuasiIdentifiers()
	for a := 0; a < len(qi); a++ {
		for b := a; b < len(qi); b++ {
			counts := map[string][]int{}
			for i := range r.Table.Rows {
				key := r.Table.At(i, qi[a]).Key() + "\x1f" + r.Table.At(i, qi[b]).Key()
				counts[key] = append(counts[key], i)
			}
			for _, rows := range counts {
				if len(rows) >= cfg.K {
					continue
				}
				for _, row := range rows {
					if !r.Table.At(row, qi[a]).IsSuppressed() && !r.Table.At(row, qi[b]).IsSuppressed() {
						t.Fatalf("rare combination (%d,%d) left unhandled for row %d", a, b, row)
					}
				}
			}
		}
	}
	// Record whether the guarantee gap actually materialized (either
	// outcome passes; the experiment harness reports it).
	p, err := eqclass.FromTable(r.Table)
	if err != nil {
		t.Fatal(err)
	}
	fullyAnonymous, _ := privacy.IsKAnonymous(p, cfg.K)
	t.Logf("mu-argus full-QI %d-anonymity achieved: %v (k_actual=%d)", cfg.K, fullyAnonymous, privacy.KAnonymity(p))
}

func TestMuArgusFullOrderEqualsGuarantee(t *testing.T) {
	// Checking combinations up to the full QI width restores the
	// guarantee.
	tab, cfg, err := algtest.CensusConfig(250, 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	alg := &MuArgus{MaxCombination: 4}
	r, err := alg.Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
}

func TestMuArgusDeterminism(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(300, 4, 14)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckDeterminism(t, New(), tab, cfg)
}

func TestMuArgusFailures(t *testing.T) {
	algtest.CheckCommonFailures(t, New())
}

func TestCombinations(t *testing.T) {
	got := combinations(3, 2)
	want := [][]int{{0}, {0, 1}, {0, 2}, {1}, {1, 2}, {2}}
	if len(got) != len(want) {
		t.Fatalf("combinations(3,2) = %v", got)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("combinations(3,2) = %v", got)
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("combinations(3,2) = %v", got)
			}
		}
	}
	if got := combinations(2, 5); len(got) != 3 {
		t.Errorf("order beyond n should clamp: %v", got)
	}
}
