// Package muargus implements a μ-Argus-style greedy anonymizer (paper §6,
// Hundepool & Willenborg): check low-order combinations of quasi-identifiers
// for rare value combinations, generalize greedily while rare combinations
// persist, and finally locally suppress the outlier tuples.
//
// Faithful to the original's documented weakness — which the paper's §6
// survey calls out — μ-Argus only inspects combinations up to a fixed order
// (2 here, as in the original's bivariate checks) and therefore does NOT
// guarantee k-anonymity over the full quasi-identifier set. The Result it
// returns is whatever the heuristic achieved; callers who need a guarantee
// must verify with privacy.IsKAnonymous. This makes μ-Argus a genuinely
// different — and genuinely biased — baseline for the comparison framework.
//
// The combination tables are grouped on the shared evaluation engine's
// precomputed fragment ids, and the local-suppression fixpoint updates
// group occupancies incrementally on a worklist instead of rescanning the
// table each iteration; the generalized table is materialized only once,
// for the final node.
package muargus

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/engine"
	"microdata/internal/eqclass"
	"microdata/internal/hierarchy"
	"microdata/internal/lattice"
	"microdata/internal/telemetry"
)

// MuArgus is the greedy combination-checking anonymizer.
type MuArgus struct {
	// MaxCombination bounds the order of quasi-identifier combinations
	// checked; 0 defaults to 2 (the original's bivariate tables).
	MaxCombination int
}

// New returns a μ-Argus instance with bivariate checking.
func New() *MuArgus { return &MuArgus{} }

// Name implements algorithm.Algorithm.
func (*MuArgus) Name() string { return "mu-argus" }

// comboGroup is one cell of one combination's frequency table: the rows
// sharing a value combination, and how many of them are not yet suppressed.
type comboGroup struct {
	rows  []int
	alive int
}

// Anonymize implements algorithm.Algorithm.
func (m *MuArgus) Anonymize(t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	return m.AnonymizeContext(context.Background(), t, cfg)
}

// AnonymizeContext implements algorithm.ContextAlgorithm; the greedy walk
// aborts with the context's error as soon as cancellation is seen.
func (m *MuArgus) AnonymizeContext(ctx context.Context, t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	if err := cfg.Validate(t); err != nil {
		return nil, fmt.Errorf("mu-argus: %w", err)
	}
	if cfg.MinLDiversity > 0 || cfg.MaxTCloseness > 0 || cfg.MinEntropyL > 0 || cfg.RecursiveC > 0 {
		return nil, fmt.Errorf("mu-argus: diversity constraints are not supported — the combination heuristic offers no guarantee even for k (paper §6)")
	}
	ctx, sp := telemetry.Start(ctx, "mu-argus.search", telemetry.Int("k", cfg.K))
	defer sp.End()
	reg := telemetry.NewRunRegistry()
	stepsC := reg.Counter("mu-argus.generalization_steps")
	eng, err := engine.NewContext(ctx, t, cfg)
	if err != nil {
		return nil, fmt.Errorf("mu-argus: %w", err)
	}
	order := m.MaxCombination
	if order <= 0 {
		order = 2
	}
	if order > eng.NumQI() {
		order = eng.NumQI()
	}
	maxLevels := eng.Lattice().MaxLevels()
	combos := combinations(eng.NumQI(), order)
	node := make(lattice.Node, eng.NumQI())
	budget := eng.Budget()
	n := t.Len()
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("mu-argus: %w", err)
		}
		// Build each combination's frequency table by grouping rows on the
		// engine's fragment ids at the current levels — no generalized
		// table is materialized.
		frags := make([][]uint32, eng.NumQI())
		for li := range frags {
			if frags[li], err = eng.FragmentIDs(li, node[li]); err != nil {
				return nil, fmt.Errorf("mu-argus: %w", err)
			}
		}
		var groups []*comboGroup
		comboGroups := make([][]*comboGroup, len(combos))
		rowGroups := make([][]*comboGroup, n)
		buf := make([]byte, 4*order)
		for ci, combo := range combos {
			index := make(map[string]*comboGroup)
			for i := 0; i < n; i++ {
				for bi, li := range combo {
					binary.LittleEndian.PutUint32(buf[4*bi:], frags[li][i])
				}
				key := string(buf[:4*len(combo)])
				g := index[key]
				if g == nil {
					g = &comboGroup{}
					index[key] = g
					groups = append(groups, g)
					comboGroups[ci] = append(comboGroups[ci], g)
				}
				g.rows = append(g.rows, i)
				rowGroups[i] = append(rowGroups[i], g)
			}
		}
		// Local suppression runs to a fixpoint: removing an outlier can
		// push a surviving combination below k, so group occupancies are
		// decremented as rows are suppressed and only the groups that just
		// dropped below k are re-examined (a previously rare group has no
		// unsuppressed rows left and cannot contribute again).
		suppressed := make([]bool, n)
		nSuppressed := 0
		var work []*comboGroup
		for _, g := range groups {
			g.alive = len(g.rows)
			if g.alive < cfg.K {
				work = append(work, g)
			}
		}
		for {
			var rare []int
			seen := make(map[int]bool)
			for _, g := range work {
				for _, r := range g.rows {
					if !suppressed[r] && !seen[r] {
						seen[r] = true
						rare = append(rare, r)
					}
				}
			}
			if len(rare) == 0 {
				// Fixpoint reached: materialize the final node once,
				// suppress the outliers, and report.
				_, msp := telemetry.Start(ctx, "algorithm.materialize",
					telemetry.String("algorithm", m.Name()))
				anon, err := hierarchy.GeneralizeTable(t, cfg.Hierarchies, node)
				if err != nil {
					msp.End()
					return nil, fmt.Errorf("mu-argus: %w", err)
				}
				var all []int
				for r := 0; r < n; r++ {
					if suppressed[r] {
						all = append(all, r)
					}
				}
				hierarchy.SuppressRows(anon, all)
				p, err := eqclass.FromTable(anon)
				msp.End()
				if err != nil {
					return nil, fmt.Errorf("mu-argus: %w", err)
				}
				reg.Gauge("mu-argus.suppressed").Set(float64(len(all)))
				reg.Gauge("mu-argus.combination_order").Set(float64(order))
				stats := map[string]float64{}
				reg.Snapshot().MergeInto(stats, "mu-argus.")
				eng.Stats().MergeInto(stats)
				telemetry.L().Info("mu-argus: fixpoint reached",
					"steps", stepsC.Value(), "suppressed", len(all), "node", fmt.Sprint(node))
				return &algorithm.Result{
					Algorithm:  m.Name(),
					Table:      anon,
					Partition:  p,
					Levels:     node.Clone(),
					Suppressed: all,
					Stats:      stats,
				}, nil
			}
			if nSuppressed+len(rare) > budget {
				break // generalize instead
			}
			sort.Ints(rare)
			var next []*comboGroup
			queued := make(map[*comboGroup]bool)
			for _, r := range rare {
				suppressed[r] = true
				nSuppressed++
				for _, g := range rowGroups[r] {
					was := g.alive
					g.alive--
					if g.alive < cfg.K && was >= cfg.K && !queued[g] {
						queued[g] = true
						next = append(next, g)
					}
				}
			}
			work = next
		}
		// Generalize the attribute participating in the most rare
		// combinations (greedy, mirroring μ-Argus's interactive advice).
		// Scores count rows of undersized cells in each combination's full
		// frequency table, suppression ignored, exactly as a fresh scan of
		// the generalized table would.
		scores := make([]int, eng.NumQI())
		for ci, combo := range combos {
			rare := 0
			for _, g := range comboGroups[ci] {
				if len(g.rows) < cfg.K {
					rare += len(g.rows)
				}
			}
			for _, li := range combo {
				scores[li] += rare
			}
		}
		best, bestScore := -1, -1
		for li := 0; li < eng.NumQI(); li++ {
			if node[li] >= maxLevels[li] {
				continue
			}
			if scores[li] > bestScore {
				best, bestScore = li, scores[li]
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("mu-argus: rare combinations remain at full generalization (budget %d)", budget)
		}
		node[best]++
		stepsC.Inc()
	}
}

// combinations enumerates all index subsets of {0..n-1} with size 1..order.
func combinations(n, order int) [][]int {
	var out [][]int
	var cur []int
	var rec func(start int)
	rec = func(start int) {
		if len(cur) > 0 && len(cur) <= order {
			out = append(out, append([]int(nil), cur...))
		}
		if len(cur) == order {
			return
		}
		for i := start; i < n; i++ {
			cur = append(cur, i)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}
