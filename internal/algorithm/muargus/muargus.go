// Package muargus implements a μ-Argus-style greedy anonymizer (paper §6,
// Hundepool & Willenborg): check low-order combinations of quasi-identifiers
// for rare value combinations, generalize greedily while rare combinations
// persist, and finally locally suppress the outlier tuples.
//
// Faithful to the original's documented weakness — which the paper's §6
// survey calls out — μ-Argus only inspects combinations up to a fixed order
// (2 here, as in the original's bivariate checks) and therefore does NOT
// guarantee k-anonymity over the full quasi-identifier set. The Result it
// returns is whatever the heuristic achieved; callers who need a guarantee
// must verify with privacy.IsKAnonymous. This makes μ-Argus a genuinely
// different — and genuinely biased — baseline for the comparison framework.
package muargus

import (
	"fmt"
	"sort"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/eqclass"
	"microdata/internal/hierarchy"
	"microdata/internal/lattice"
)

// MuArgus is the greedy combination-checking anonymizer.
type MuArgus struct {
	// MaxCombination bounds the order of quasi-identifier combinations
	// checked; 0 defaults to 2 (the original's bivariate tables).
	MaxCombination int
}

// New returns a μ-Argus instance with bivariate checking.
func New() *MuArgus { return &MuArgus{} }

// Name implements algorithm.Algorithm.
func (*MuArgus) Name() string { return "mu-argus" }

// Anonymize implements algorithm.Algorithm.
func (m *MuArgus) Anonymize(t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	if err := cfg.Validate(t); err != nil {
		return nil, fmt.Errorf("mu-argus: %w", err)
	}
	if cfg.MinLDiversity > 0 || cfg.MaxTCloseness > 0 || cfg.MinEntropyL > 0 || cfg.RecursiveC > 0 {
		return nil, fmt.Errorf("mu-argus: diversity constraints are not supported — the combination heuristic offers no guarantee even for k (paper §6)")
	}
	order := m.MaxCombination
	if order <= 0 {
		order = 2
	}
	qi := t.Schema.QuasiIdentifiers()
	if order > len(qi) {
		order = len(qi)
	}
	maxLevels, err := cfg.Hierarchies.MaxLevels(t.Schema)
	if err != nil {
		return nil, fmt.Errorf("mu-argus: %w", err)
	}
	combos := combinations(len(qi), order)
	node := make(lattice.Node, len(qi))
	budget := int(cfg.MaxSuppression * float64(t.Len()))
	steps := 0
	for {
		anon, err := hierarchy.GeneralizeTable(t, cfg.Hierarchies, node)
		if err != nil {
			return nil, fmt.Errorf("mu-argus: %w", err)
		}
		// Local suppression runs to a fixpoint: removing an outlier can
		// push a surviving combination below k, so suppressed rows are
		// excluded from the counts and the scan repeats until either no
		// rare combination remains or the budget is blown.
		suppressed := map[int]bool{}
		for {
			rare := m.rareRows(anon, qi, combos, cfg.K, suppressed)
			if len(rare) == 0 {
				all := keysSorted(suppressed)
				hierarchy.SuppressRows(anon, all)
				p, err := eqclass.FromTable(anon)
				if err != nil {
					return nil, fmt.Errorf("mu-argus: %w", err)
				}
				return &algorithm.Result{
					Algorithm:  m.Name(),
					Table:      anon,
					Partition:  p,
					Levels:     node.Clone(),
					Suppressed: all,
					Stats: map[string]float64{
						"generalization_steps": float64(steps),
						"suppressed":           float64(len(all)),
						"combination_order":    float64(order),
					},
				}, nil
			}
			if len(suppressed)+len(rare) > budget {
				break // generalize instead
			}
			for _, r := range rare {
				suppressed[r] = true
			}
		}
		// Generalize the attribute participating in the most rare
		// combinations (greedy, mirroring μ-Argus's interactive advice).
		scores := m.attributeScores(anon, qi, combos, cfg.K)
		best, bestScore := -1, -1
		for li := range qi {
			if node[li] >= maxLevels[li] {
				continue
			}
			if scores[li] > bestScore {
				best, bestScore = li, scores[li]
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("mu-argus: rare combinations remain at full generalization (budget %d)", budget)
		}
		node[best]++
		steps++
	}
}

func keysSorted(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// rareRows returns the not-yet-suppressed rows participating in any checked
// combination occurring fewer than k times among unsuppressed rows, sorted
// ascending. Suppressed rows are unlinkable (paper §3) and excluded.
func (m *MuArgus) rareRows(t *dataset.Table, qi []int, combos [][]int, k int, suppressed map[int]bool) []int {
	rare := map[int]struct{}{}
	for _, combo := range combos {
		counts := map[string][]int{}
		for i := range t.Rows {
			if suppressed[i] {
				continue
			}
			key := comboKey(t, i, qi, combo)
			counts[key] = append(counts[key], i)
		}
		for _, rows := range counts {
			if len(rows) < k {
				for _, r := range rows {
					rare[r] = struct{}{}
				}
			}
		}
	}
	out := make([]int, 0, len(rare))
	for r := range rare {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// attributeScores counts, per quasi-identifier, how many rare rows involve
// it through a rare combination.
func (m *MuArgus) attributeScores(t *dataset.Table, qi []int, combos [][]int, k int) []int {
	scores := make([]int, len(qi))
	for _, combo := range combos {
		counts := map[string]int{}
		for i := range t.Rows {
			counts[comboKey(t, i, qi, combo)]++
		}
		rare := 0
		for _, c := range counts {
			if c < k {
				rare += c
			}
		}
		for _, li := range combo {
			scores[li] += rare
		}
	}
	return scores
}

func comboKey(t *dataset.Table, row int, qi, combo []int) string {
	key := ""
	for _, li := range combo {
		key += t.At(row, qi[li]).Key() + "\x1f"
	}
	return key
}

// combinations enumerates all index subsets of {0..n-1} with size 1..order.
func combinations(n, order int) [][]int {
	var out [][]int
	var cur []int
	var rec func(start int)
	rec = func(start int) {
		if len(cur) > 0 && len(cur) <= order {
			out = append(out, append([]int(nil), cur...))
		}
		if len(cur) == order {
			return
		}
		for i := start; i < n; i++ {
			cur = append(cur, i)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}
