package genetic

import (
	"testing"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/algtest"
	"microdata/internal/algorithm/optimal"
)

func TestGeneticOnPaperTable(t *testing.T) {
	tab, cfg := algtest.PaperConfig(3)
	cfg.Seed = 1
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	algtest.KIsAchieved(t, r, 3)
	// Fitness is memoized by node, so the paper's 30-node lattice allows
	// at most 30 true evaluations — and a healthy run explores most of it.
	if e := r.Stats["fitness_evaluations"]; e < 10 || e > 30 {
		t.Errorf("evaluations = %v, want within (10, 30]", e)
	}
}

func TestGeneticFindsOptimumOnSmallLattice(t *testing.T) {
	// The paper lattice has only 30 nodes; with 40x60 evaluations the GA
	// must find the global optimum.
	tab, cfg := algtest.PaperConfig(3)
	cfg.Seed = 2
	opt, err := optimal.New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	optCost, _ := algorithm.ResultCost(opt, tab, cfg)
	ga, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gaCost, _ := algorithm.ResultCost(ga, tab, cfg)
	if gaCost > optCost+1e-9 {
		t.Errorf("GA cost %v worse than optimal %v on a 30-node lattice", gaCost, optCost)
	}
}

func TestGeneticSeedDeterminism(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(200, 5, 15)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckDeterminism(t, New(), tab, cfg)
	// Different seeds may reach different nodes (stochastic search), but
	// both must be feasible.
	cfg.Seed = 99
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
}

func TestConstrainedCrossoverVariant(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(200, 5, 16)
	if err != nil {
		t.Fatal(err)
	}
	alg := NewConstrained()
	if alg.Name() != "genetic-constrained" {
		t.Errorf("name = %q", alg.Name())
	}
	r, err := alg.Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	if UniformCrossover.String() != "uniform" || ConstrainedCrossover.String() != "constrained" {
		t.Error("Crossover.String mismatch")
	}
}

func TestGeneticCustomParameters(t *testing.T) {
	tab, cfg := algtest.PaperConfig(2)
	cfg.Seed = 3
	alg := &GA{PopSize: 10, Generations: 15, MutationRate: 0.3, PenaltyWeight: 5}
	r, err := alg.Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	if r.Stats["generations"] != 15 {
		t.Errorf("generations = %v", r.Stats["generations"])
	}
}

func TestGeneticFailures(t *testing.T) {
	algtest.CheckCommonFailures(t, New())
}
