package genetic

import (
	"testing"

	"microdata/internal/algorithm/algtest"
	"microdata/internal/privacy"
)

func TestGeneticWithLDiversityConstraint(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(250, 4, 52)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MinLDiversity = 2
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	if len(r.Suppressed) == 0 {
		col := tab.Column(tab.Schema.SensitiveIndex())
		ok, err := privacy.IsDistinctLDiverse(r.Partition, col, 2)
		if err != nil || !ok {
			t.Fatalf("result not 2-diverse: %v, %v", ok, err)
		}
	}
}

func TestGeneticWithTClosenessConstraint(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(250, 4, 53)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxTCloseness = 0.4
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	if len(r.Suppressed) == 0 {
		col := tab.Column(tab.Schema.SensitiveIndex())
		got, err := privacy.TCloseness(r.Partition, col, false)
		if err != nil {
			t.Fatal(err)
		}
		if got > 0.4+1e-9 {
			t.Errorf("t-closeness %v exceeds 0.4", got)
		}
	}
}
