// Package genetic implements an Iyengar-style genetic k-anonymizer (paper
// §6): chromosomes are generalization-lattice nodes, fitness is the
// configured utility cost plus a penalty for tuples violating k-anonymity
// beyond the suppression budget, evolved with tournament selection,
// crossover and ±1-level mutation.
//
// Two crossover operators are provided, mirroring the Iyengar/Lunacek
// discussion the paper cites: uniform crossover (Iyengar's flexible but
// slow-converging choice) and a Lunacek-style constrained single-point
// crossover that preserves per-attribute level runs. The ablation
// experiment E15 compares them.
//
// Fitness evaluation runs on the shared evaluation engine: each distinct
// chromosome costs one signature-assembly pass, and the converged
// late-generation populations hit the engine's memo cache.
package genetic

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/engine"
	"microdata/internal/lattice"
	"microdata/internal/telemetry"
)

// Crossover selects the recombination operator.
type Crossover uint8

const (
	// UniformCrossover swaps each gene independently with probability ½.
	UniformCrossover Crossover = iota
	// ConstrainedCrossover is a single-point operator over the level
	// vector, preserving contiguous prefixes (Lunacek et al.'s idea of
	// respecting the constraint structure).
	ConstrainedCrossover
)

// String names the operator.
func (c Crossover) String() string {
	if c == ConstrainedCrossover {
		return "constrained"
	}
	return "uniform"
}

// GA is the genetic k-anonymizer.
type GA struct {
	// PopSize is the population size; 0 defaults to 40.
	PopSize int
	// Generations bounds the evolution; 0 defaults to 60.
	Generations int
	// MutationRate is the per-gene mutation probability; 0 defaults to 0.15.
	MutationRate float64
	// Crossover selects the recombination operator.
	Crossover Crossover
	// PenaltyWeight scales the k-violation penalty; 0 defaults to 10.
	PenaltyWeight float64
}

// New returns a GA with Iyengar-style uniform crossover and defaults.
func New() *GA { return &GA{} }

// NewConstrained returns a GA with the Lunacek-style constrained crossover.
func NewConstrained() *GA { return &GA{Crossover: ConstrainedCrossover} }

// Name implements algorithm.Algorithm.
func (g *GA) Name() string {
	if g.Crossover == ConstrainedCrossover {
		return "genetic-constrained"
	}
	return "genetic"
}

func (g *GA) defaults() (pop, gens int, mut, penalty float64) {
	pop, gens, mut, penalty = g.PopSize, g.Generations, g.MutationRate, g.PenaltyWeight
	if pop <= 0 {
		pop = 40
	}
	if gens <= 0 {
		gens = 60
	}
	if mut <= 0 {
		mut = 0.15
	}
	if penalty <= 0 {
		penalty = 10
	}
	return pop, gens, mut, penalty
}

// Anonymize implements algorithm.Algorithm.
func (g *GA) Anonymize(t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	return g.AnonymizeContext(context.Background(), t, cfg)
}

// AnonymizeContext implements algorithm.ContextAlgorithm; the evolution
// aborts with the context's error as soon as cancellation is seen.
func (g *GA) AnonymizeContext(ctx context.Context, t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	ctx, sp := telemetry.Start(ctx, g.Name()+".search",
		telemetry.Int("k", cfg.K), telemetry.String("crossover", g.Crossover.String()))
	defer sp.End()
	reg := telemetry.NewRunRegistry()
	evalsC := reg.Counter(g.Name() + ".fitness_evaluations")
	eng, err := engine.NewContext(ctx, t, cfg)
	if err != nil {
		return nil, fmt.Errorf("genetic: %w", err)
	}
	maxLevels := eng.Lattice().MaxLevels()
	popSize, gens, mutRate, penaltyW := g.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	budget := eng.Budget()

	// fitness: utility cost + penalty for suppressions beyond budget.
	// Lower is better. Feasible nodes use their true finished cost;
	// infeasible ones are ranked above the worst feasible cost (the top
	// node's) by their violation size, so the search keeps a gradient
	// toward feasibility regardless of the metric's scale.
	topEv, err := eng.Evaluate(ctx, eng.Lattice().Top())
	if err != nil {
		return nil, fmt.Errorf("genetic: %w", err)
	}
	topCost, err := topEv.Cost()
	if err != nil {
		return nil, fmt.Errorf("genetic: %w", err)
	}
	penaltyBase := math.Abs(topCost) + 1
	// The population revisits the same lattice nodes constantly once the
	// search converges; memoizing fitness by node turns the late
	// generations nearly free without changing any outcome. The local map
	// also keeps the fitness_evaluations stat counting distinct
	// chromosomes, independent of the engine's own memo cache.
	cache := map[string]float64{}
	fitness := func(n lattice.Node) (float64, error) {
		if f, ok := cache[n.Key()]; ok {
			return f, nil
		}
		evalsC.Inc()
		ev, err := eng.Evaluate(ctx, n)
		if err != nil {
			return 0, err
		}
		over := len(ev.Bad) - budget
		if over > 0 {
			f := penaltyBase + penaltyW*float64(over)/float64(t.Len())*penaltyBase
			cache[n.Key()] = f
			return f, nil
		}
		c, err := ev.Cost()
		if err != nil {
			return 0, err
		}
		cache[n.Key()] = c
		return c, nil
	}

	randNode := func() lattice.Node {
		n := make(lattice.Node, len(maxLevels))
		for i, m := range maxLevels {
			n[i] = rng.Intn(m + 1)
		}
		return n
	}
	pop := make([]lattice.Node, popSize)
	fit := make([]float64, popSize)
	for i := range pop {
		pop[i] = randNode()
		if fit[i], err = fitness(pop[i]); err != nil {
			return nil, fmt.Errorf("genetic: %w", err)
		}
	}
	// Seed the population with the top node so a feasible individual
	// always exists (full suppression is always k-anonymous for k <= N).
	top := make(lattice.Node, len(maxLevels))
	copy(top, maxLevels)
	pop[0] = top
	if fit[0], err = fitness(top); err != nil {
		return nil, fmt.Errorf("genetic: %w", err)
	}

	tournament := func() lattice.Node {
		a, b := rng.Intn(popSize), rng.Intn(popSize)
		if fit[a] <= fit[b] {
			return pop[a]
		}
		return pop[b]
	}
	crossover := func(a, b lattice.Node) lattice.Node {
		child := make(lattice.Node, len(a))
		switch g.Crossover {
		case ConstrainedCrossover:
			cut := rng.Intn(len(a) + 1)
			copy(child, a[:cut])
			copy(child[cut:], b[cut:])
		default:
			for i := range child {
				if rng.Intn(2) == 0 {
					child[i] = a[i]
				} else {
					child[i] = b[i]
				}
			}
		}
		return child
	}
	mutate := func(n lattice.Node) {
		for i := range n {
			if rng.Float64() < mutRate {
				if rng.Intn(2) == 0 && n[i] < maxLevels[i] {
					n[i]++
				} else if n[i] > 0 {
					n[i]--
				}
			}
		}
	}

	bestIdx := argmin(fit)
	best, bestFit := pop[bestIdx].Clone(), fit[bestIdx]
	for gen := 0; gen < gens; gen++ {
		next := make([]lattice.Node, popSize)
		nextFit := make([]float64, popSize)
		// Elitism: carry the best individual.
		next[0], nextFit[0] = best.Clone(), bestFit
		for i := 1; i < popSize; i++ {
			child := crossover(tournament(), tournament())
			mutate(child)
			next[i] = child
			if nextFit[i], err = fitness(child); err != nil {
				return nil, fmt.Errorf("genetic: %w", err)
			}
		}
		pop, fit = next, nextFit
		if i := argmin(fit); fit[i] < bestFit {
			best, bestFit = pop[i].Clone(), fit[i]
		}
	}
	// The best individual must be feasible (the seeded top node is).
	bestEv, err := eng.Evaluate(ctx, best)
	if err != nil {
		return nil, fmt.Errorf("genetic: %w", err)
	}
	if !bestEv.Satisfies {
		return nil, fmt.Errorf("genetic: best individual %v infeasible (%d > budget %d)", best, len(bestEv.Bad), budget)
	}
	reg.Gauge(g.Name() + ".generations").Set(float64(gens))
	reg.Gauge(g.Name() + ".best_fitness").Set(bestFit)
	stats := map[string]float64{}
	reg.Snapshot().MergeInto(stats, g.Name()+".")
	eng.Stats().MergeInto(stats)
	telemetry.L().Info("genetic: evolution complete", "algorithm", g.Name(),
		"best_fitness", bestFit, "best_node", fmt.Sprint(best), "engine", eng.Stats().String())
	return algorithm.FinishGlobalContext(ctx, g.Name(), t, cfg, best, stats)
}

func argmin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] || math.IsNaN(xs[best]) {
			best = i
		}
	}
	return best
}
