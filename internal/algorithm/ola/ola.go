// Package ola implements an Optimal Lattice Anonymization search in the
// style of El Emam et al.: a divide-and-conquer binary search over
// sublattices that uses generalization monotonicity ("predictive tagging")
// to classify every node of the full-domain lattice as k-anonymous or not
// while evaluating only a fraction of them, then returns the utility
// optimum among the k-minimal nodes.
//
// OLA's guarantee matches the exhaustive search (package optimal) on the
// same lattice whenever the per-attribute ladders are nested — the census
// hierarchies are; the paper's own age ladders are not (see EXPERIMENTS.md
// note), in which case predictive tagging may misclassify and OLA degrades
// to a heuristic. The conformance test pins agreement with the exhaustive
// optimum on nested ladders.
//
// OLA was published after the reproduced paper (2009) but belongs to the
// same full-domain family the paper compares; it is included as the
// production-grade representative of that family.
package ola

import (
	"fmt"
	"math"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/lattice"
)

// OLA is the predictive-tagging lattice search.
type OLA struct{}

// New returns an OLA instance.
func New() *OLA { return &OLA{} }

// Name implements algorithm.Algorithm.
func (*OLA) Name() string { return "ola" }

// tagger memoizes node classifications and propagates them monotonically.
type tagger struct {
	t         *dataset.Table
	cfg       algorithm.Config
	lat       *lattice.Lattice
	budget    int
	tags      map[string]bool // node key -> satisfies constraints
	tagged    map[string]bool // node key -> classification known
	evaluated int
}

// classify returns whether the node satisfies, evaluating it only when no
// tag is present.
func (tg *tagger) classify(n lattice.Node) (bool, error) {
	key := n.Key()
	if tg.tagged[key] {
		return tg.tags[key], nil
	}
	tg.evaluated++
	_, _, small, err := algorithm.ApplyNode(tg.t, tg.cfg, n)
	if err != nil {
		return false, err
	}
	ok := len(small) <= tg.budget
	tg.tag(n, ok)
	return ok, nil
}

// tag records a classification and propagates it: a satisfying node tags
// all its generalizations satisfying; a failing node tags all its
// specializations failing (generalization monotonicity).
func (tg *tagger) tag(n lattice.Node, ok bool) {
	key := n.Key()
	if tg.tagged[key] {
		return
	}
	tg.tagged[key] = true
	tg.tags[key] = ok
	if ok {
		for _, s := range tg.lat.Successors(n) {
			tg.tag(s, true)
		}
	} else {
		for _, p := range tg.lat.Predecessors(n) {
			tg.tag(p, false)
		}
	}
}

// searchSublattice applies OLA's binary search between a bottom and top
// node: find satisfying nodes at the middle height of the sublattice,
// recurse into the halves. Every k-minimal node within the sublattice ends
// up tagged.
func (tg *tagger) searchSublattice(bottom, top lattice.Node) error {
	hB, hT := bottom.Height(), top.Height()
	if hT-hB < 1 {
		return nil
	}
	if hT-hB == 1 {
		// Adjacent: classify both ends.
		if _, err := tg.classify(bottom); err != nil {
			return err
		}
		_, err := tg.classify(top)
		return err
	}
	mid := (hB + hT) / 2
	// Nodes of the sublattice at the middle height: component-wise between
	// bottom and top with height sum == mid.
	nodes := tg.between(bottom, top, mid)
	for _, n := range nodes {
		ok, err := tg.classify(n)
		if err != nil {
			return err
		}
		if ok {
			if err := tg.searchSublattice(bottom, n); err != nil {
				return err
			}
		} else {
			if err := tg.searchSublattice(n, top); err != nil {
				return err
			}
		}
	}
	return nil
}

// between enumerates nodes n with bottom <= n <= top and Height(n) == h.
func (tg *tagger) between(bottom, top lattice.Node, h int) []lattice.Node {
	var out []lattice.Node
	n := bottom.Clone()
	var rec func(i, remaining int)
	rec = func(i, remaining int) {
		if i == len(n)-1 {
			v := bottom[i] + remaining
			if v <= top[i] {
				n[i] = v
				out = append(out, n.Clone())
			}
			return
		}
		max := top[i] - bottom[i]
		if max > remaining {
			max = remaining
		}
		for d := 0; d <= max; d++ {
			n[i] = bottom[i] + d
			rec(i+1, remaining-d)
		}
	}
	rec(0, h-bottom.Height())
	return out
}

// Anonymize implements algorithm.Algorithm.
func (o *OLA) Anonymize(t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	if err := cfg.Validate(t); err != nil {
		return nil, fmt.Errorf("ola: %w", err)
	}
	maxLevels, err := cfg.Hierarchies.MaxLevels(t.Schema)
	if err != nil {
		return nil, fmt.Errorf("ola: %w", err)
	}
	lat, err := lattice.New(maxLevels)
	if err != nil {
		return nil, fmt.Errorf("ola: %w", err)
	}
	tg := &tagger{
		t: t, cfg: cfg, lat: lat,
		budget: int(cfg.MaxSuppression * float64(t.Len())),
		tags:   map[string]bool{}, tagged: map[string]bool{},
	}
	// Seed: the top node always satisfies (single class or full star).
	if ok, err := tg.classify(lat.Top()); err != nil {
		return nil, fmt.Errorf("ola: %w", err)
	} else if !ok {
		return nil, fmt.Errorf("ola: even full generalization fails the constraints")
	}
	if err := tg.searchSublattice(lat.Bottom(), lat.Top()); err != nil {
		return nil, fmt.Errorf("ola: %w", err)
	}
	// Collect k-minimal tagged-satisfying nodes (no satisfying
	// predecessor) and pick the utility optimum. Untagged nodes are
	// resolved lazily via classify to keep correctness even when
	// monotonicity is imperfect.
	var best lattice.Node
	bestCost := math.Inf(1)
	var sweepErr error
	lat.All(func(n lattice.Node) bool {
		key := n.Key()
		if !tg.tagged[key] || !tg.tags[key] {
			return true
		}
		minimal := true
		for _, p := range lat.Predecessors(n) {
			ok, err := tg.classify(p) // mostly cached; lazy otherwise
			if err != nil {
				sweepErr = err
				return false
			}
			if ok {
				minimal = false
				break
			}
		}
		if !minimal {
			return true
		}
		c, err := algorithm.NodeCost(t, cfg, n)
		if err != nil {
			sweepErr = err
			return false
		}
		if c < bestCost {
			best, bestCost = n.Clone(), c
		}
		return true
	})
	if sweepErr != nil {
		return nil, fmt.Errorf("ola: %w", sweepErr)
	}
	if best == nil {
		return nil, fmt.Errorf("ola: no satisfying node found")
	}
	return algorithm.FinishGlobal(o.Name(), t, cfg, best, map[string]float64{
		"nodes_evaluated": float64(tg.evaluated),
		"nodes_tagged":    float64(len(tg.tagged)),
	})
}
