// Package ola implements an Optimal Lattice Anonymization search in the
// style of El Emam et al.: a divide-and-conquer binary search over
// sublattices that uses generalization monotonicity ("predictive tagging")
// to classify every node of the full-domain lattice as k-anonymous or not
// while evaluating only a fraction of them, then returns the utility
// optimum among the k-minimal nodes.
//
// OLA's guarantee matches the exhaustive search (package optimal) on the
// same lattice whenever the per-attribute ladders are nested — the census
// hierarchies are; the paper's own age ladders are not (see EXPERIMENTS.md
// note), in which case predictive tagging may misclassify and OLA degrades
// to a heuristic. The conformance test pins agreement with the exhaustive
// optimum on nested ladders.
//
// Node evaluation runs on the shared evaluation engine: each sublattice's
// middle stratum is batch-evaluated in parallel before the sequential
// tagging pass, which then classifies from the engine's memo cache.
//
// OLA was published after the reproduced paper (2009) but belongs to the
// same full-domain family the paper compares; it is included as the
// production-grade representative of that family.
package ola

import (
	"context"
	"fmt"
	"math"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/engine"
	"microdata/internal/lattice"
	"microdata/internal/telemetry"
)

// OLA is the predictive-tagging lattice search.
type OLA struct{}

// New returns an OLA instance.
func New() *OLA { return &OLA{} }

// Name implements algorithm.Algorithm.
func (*OLA) Name() string { return "ola" }

// tagger memoizes node classifications and propagates them monotonically.
type tagger struct {
	eng    *engine.Engine
	lat    *lattice.Lattice
	tags   map[string]bool // node key -> satisfies constraints
	tagged map[string]bool // node key -> classification known
}

// classify returns whether the node satisfies, consulting the engine (and
// its memo cache) only when no tag is present.
func (tg *tagger) classify(ctx context.Context, n lattice.Node) (bool, error) {
	key := n.Key()
	if tg.tagged[key] {
		return tg.tags[key], nil
	}
	ev, err := tg.eng.Evaluate(ctx, n)
	if err != nil {
		return false, err
	}
	tg.tag(n, ev.Satisfies)
	return ev.Satisfies, nil
}

// tag records a classification and propagates it: a satisfying node tags
// all its generalizations satisfying; a failing node tags all its
// specializations failing (generalization monotonicity).
func (tg *tagger) tag(n lattice.Node, ok bool) {
	key := n.Key()
	if tg.tagged[key] {
		return
	}
	tg.tagged[key] = true
	tg.tags[key] = ok
	if ok {
		for _, s := range tg.lat.Successors(n) {
			tg.tag(s, true)
		}
	} else {
		for _, p := range tg.lat.Predecessors(n) {
			tg.tag(p, false)
		}
	}
}

// searchSublattice applies OLA's binary search between a bottom and top
// node: find satisfying nodes at the middle height of the sublattice,
// recurse into the halves. Every k-minimal node within the sublattice ends
// up tagged.
func (tg *tagger) searchSublattice(ctx context.Context, bottom, top lattice.Node) error {
	hB, hT := bottom.Height(), top.Height()
	if hT-hB < 1 {
		return nil
	}
	if hT-hB == 1 {
		// Adjacent: classify both ends.
		if _, err := tg.classify(ctx, bottom); err != nil {
			return err
		}
		_, err := tg.classify(ctx, top)
		return err
	}
	mid := (hB + hT) / 2
	// Nodes of the sublattice at the middle height: component-wise between
	// bottom and top with height sum == mid. Batch-evaluate the ones not
	// yet tagged in parallel; the classify loop below runs on the memo
	// cache in the same deterministic order as a sequential sweep.
	nodes := lattice.Between(bottom, top, mid)
	var fresh []lattice.Node
	for _, n := range nodes {
		if !tg.tagged[n.Key()] {
			fresh = append(fresh, n)
		}
	}
	if _, err := tg.eng.EvaluateAll(ctx, fresh); err != nil {
		return err
	}
	for _, n := range nodes {
		ok, err := tg.classify(ctx, n)
		if err != nil {
			return err
		}
		if ok {
			if err := tg.searchSublattice(ctx, bottom, n); err != nil {
				return err
			}
		} else {
			if err := tg.searchSublattice(ctx, n, top); err != nil {
				return err
			}
		}
	}
	return nil
}

// Anonymize implements algorithm.Algorithm.
func (o *OLA) Anonymize(t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	return o.AnonymizeContext(context.Background(), t, cfg)
}

// AnonymizeContext implements algorithm.ContextAlgorithm; the sublattice
// search aborts with the context's error as soon as cancellation is seen.
func (o *OLA) AnonymizeContext(ctx context.Context, t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	ctx, sp := telemetry.Start(ctx, "ola.search", telemetry.Int("k", cfg.K))
	defer sp.End()
	reg := telemetry.NewRunRegistry()
	eng, err := engine.NewContext(ctx, t, cfg)
	if err != nil {
		return nil, fmt.Errorf("ola: %w", err)
	}
	lat := eng.Lattice()
	tg := &tagger{
		eng: eng, lat: lat,
		tags: map[string]bool{}, tagged: map[string]bool{},
	}
	// Seed: the top node always satisfies (single class or full star).
	if ok, err := tg.classify(ctx, lat.Top()); err != nil {
		return nil, fmt.Errorf("ola: %w", err)
	} else if !ok {
		return nil, fmt.Errorf("ola: even full generalization fails the constraints")
	}
	if err := tg.searchSublattice(ctx, lat.Bottom(), lat.Top()); err != nil {
		return nil, fmt.Errorf("ola: %w", err)
	}
	// Collect k-minimal tagged-satisfying nodes (no satisfying
	// predecessor) and pick the utility optimum. Untagged nodes are
	// resolved lazily via classify to keep correctness even when
	// monotonicity is imperfect.
	var best lattice.Node
	bestCost := math.Inf(1)
	var sweepErr error
	lat.All(func(n lattice.Node) bool {
		key := n.Key()
		if !tg.tagged[key] || !tg.tags[key] {
			return true
		}
		minimal := true
		for _, p := range lat.Predecessors(n) {
			ok, err := tg.classify(ctx, p) // mostly cached; lazy otherwise
			if err != nil {
				sweepErr = err
				return false
			}
			if ok {
				minimal = false
				break
			}
		}
		if !minimal {
			return true
		}
		ev, err := eng.Evaluate(ctx, n)
		if err != nil {
			sweepErr = err
			return false
		}
		c, err := ev.Cost()
		if err != nil {
			sweepErr = err
			return false
		}
		if c < bestCost {
			best, bestCost = ev.Node, c
		}
		return true
	})
	if sweepErr != nil {
		return nil, fmt.Errorf("ola: %w", sweepErr)
	}
	if best == nil {
		return nil, fmt.Errorf("ola: no satisfying node found")
	}
	reg.Gauge("ola.nodes_evaluated").Set(float64(eng.Stats().NodesEvaluated))
	reg.Gauge("ola.nodes_tagged").Set(float64(len(tg.tagged)))
	stats := map[string]float64{}
	reg.Snapshot().MergeInto(stats, "ola.")
	eng.Stats().MergeInto(stats)
	telemetry.L().Info("ola: search complete",
		"nodes_tagged", len(tg.tagged), "best_node", fmt.Sprint(best), "engine", eng.Stats().String())
	return algorithm.FinishGlobalContext(ctx, o.Name(), t, cfg, best, stats)
}
