package ola

import (
	"math"
	"testing"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/algtest"
	"microdata/internal/algorithm/optimal"
	"microdata/internal/lattice"
)

func TestOLAOnPaperTable(t *testing.T) {
	tab, cfg := algtest.PaperConfig(3)
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	algtest.KIsAchieved(t, r, 3)
	if r.Stats["nodes_evaluated"] < 1 || r.Stats["nodes_tagged"] < r.Stats["nodes_evaluated"] {
		t.Errorf("stats = %v", r.Stats)
	}
}

// On nested ladders with zero suppression, LM is strictly monotone along
// the lattice, so the utility optimum among satisfying nodes sits at a
// k-minimal node — OLA must match the exhaustive search exactly.
func TestOLAMatchesOptimalOnNestedLadders(t *testing.T) {
	for _, seed := range []int64{91, 92, 93} {
		tab, cfg, err := algtest.CensusConfig(250, 5, seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg.MaxSuppression = 0
		olaRes, err := New().Anonymize(tab, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		optRes, err := optimal.New().Anonymize(tab, cfg)
		if err != nil {
			t.Fatal(err)
		}
		olaCost, _ := algorithm.ResultCost(olaRes, tab, cfg)
		optCost, _ := algorithm.ResultCost(optRes, tab, cfg)
		if math.Abs(olaCost-optCost) > 1e-9 {
			t.Errorf("seed %d: OLA cost %v != optimal %v (nodes: %v vs %v)",
				seed, olaCost, optCost, olaRes.Levels, optRes.Levels)
		}
		// And it must do so with FEWER direct evaluations than the full
		// lattice (predictive tagging is the point).
		ml, _ := cfg.Hierarchies.MaxLevels(tab.Schema)
		full := lattice.Must(ml).Size()
		if int(olaRes.Stats["nodes_evaluated"]) >= full {
			t.Errorf("seed %d: OLA evaluated %v of %d nodes — tagging saved nothing",
				seed, olaRes.Stats["nodes_evaluated"], full)
		}
	}
}

func TestOLAWithSuppressionBudget(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(300, 8, 94)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
}

func TestOLAWithConstraints(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(300, 4, 95)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MinLDiversity = 2
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
}

func TestOLADeterminism(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(250, 5, 96)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckDeterminism(t, New(), tab, cfg)
}

func TestOLAFailures(t *testing.T) {
	algtest.CheckCommonFailures(t, New())
	// Impossible constraints fail cleanly.
	tab, cfg, err := algtest.CensusConfig(100, 2, 97)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MinLDiversity = 99
	cfg.MaxSuppression = 0
	if _, err := New().Anonymize(tab, cfg); err == nil {
		t.Error("impossible constraints should fail")
	}
}
