// Package moga implements the paper's §7 proposed extension: treating
// privacy not as a scalar constraint but as an objective derived from the
// per-tuple property vector, and searching the generalization lattice for
// the PARETO FRONT of (privacy, utility) rather than a single
// constraint-satisfying optimum. It follows the multi-objective line of
// the authors' own prior work (Dewri et al., ICDE 2008 — reference [2]).
//
// Objectives (both minimized):
//
//   - PrivacyRank: the paper's §5.1 rank index ‖D − D_max‖ of the
//     class-size property vector, with D_max the ideal all-tuples-in-one-
//     class vector. This is the vector-aware privacy measure §7 calls for:
//     two nodes with the same minimum class size (same k) but different
//     per-tuple distributions get different objective values.
//   - Loss: Iyengar's general loss metric.
//
// Two searchers are provided: ExhaustiveFront enumerates the lattice (the
// ground truth on the full-domain search space) and NSGA2 runs an
// elitist non-dominated-sorting genetic algorithm for lattices too large
// to enumerate. E16 compares them.
//
// Both searchers evaluate nodes on the shared evaluation engine (with a
// privacy-free engine configuration: K=1, no diversity constraints, LM
// metric, zero suppression), so the partition and the loss come from
// precomputed signature fragments instead of a materialized table per
// node.
package moga

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"microdata/internal/algorithm"
	"microdata/internal/core"
	"microdata/internal/dataset"
	"microdata/internal/engine"
	"microdata/internal/lattice"
	"microdata/internal/telemetry"
)

// Objectives is one point in objective space; both components are
// minimized.
type Objectives struct {
	// PrivacyRank is ‖classSizes − D_max‖ (lower = closer to ideal
	// privacy).
	PrivacyRank float64
	// Loss is the general loss metric in [0,1] (lower = better utility).
	Loss float64
}

// Dominates reports strict Pareto dominance: no worse in both objectives
// and better in at least one.
func (a Objectives) Dominates(b Objectives) bool {
	if a.PrivacyRank > b.PrivacyRank || a.Loss > b.Loss {
		return false
	}
	return a.PrivacyRank < b.PrivacyRank || a.Loss < b.Loss
}

// Point is a lattice node with its objectives and the k it happens to
// achieve (k is emergent here, not imposed).
type Point struct {
	Node    lattice.Node
	Obj     Objectives
	KActual int
}

// Front is a set of mutually non-dominated points, sorted by rising
// PrivacyRank (and thus falling Loss).
type Front struct {
	Points      []Point
	Evaluations int
}

// newEngine builds the shared evaluation engine with moga's privacy-free
// probe configuration: K=1 and no diversity constraints (privacy is an
// objective here, not a constraint), LM metric and zero suppression, so
// every node is admissible, Evaluation.Partition is the plain partition of
// the generalized table, and Evaluation.Cost is exactly the general loss
// metric.
func newEngine(ctx context.Context, t *dataset.Table, cfg algorithm.Config) (*engine.Engine, error) {
	probe := cfg
	probe.K = 1
	probe.MinLDiversity, probe.MaxTCloseness, probe.MinEntropyL = 0, 0, 0
	probe.RecursiveC, probe.RecursiveL = 0, 0
	probe.Metric = algorithm.MetricLM
	probe.MaxSuppression = 0
	return engine.NewContext(ctx, t, probe)
}

// evaluate computes the objectives of one engine evaluation.
func evaluate(ev *engine.Evaluation, dmax core.PropertyVector) (Point, error) {
	sizes := core.PropertyVector(ev.Partition.SizeVector())
	rank := core.PRank(dmax).F(sizes)
	loss, err := ev.Cost()
	if err != nil {
		return Point{}, err
	}
	return Point{
		Node:    ev.Node.Clone(),
		Obj:     Objectives{PrivacyRank: rank, Loss: loss},
		KActual: ev.Partition.MinSize(),
	}, nil
}

func idealVector(n int) core.PropertyVector {
	d := make(core.PropertyVector, n)
	for i := range d {
		d[i] = float64(n)
	}
	return d
}

// checkConfig validates the pieces moga uses (K is ignored — privacy is an
// objective here).
func checkConfig(t *dataset.Table, cfg algorithm.Config) error {
	probe := cfg
	probe.K = 1
	probe.MinLDiversity, probe.MaxTCloseness, probe.MinEntropyL = 0, 0, 0
	probe.RecursiveC, probe.RecursiveL = 0, 0
	return probe.Validate(t)
}

// extractFront returns the non-dominated subset of the points, deduplicated
// by node, sorted by PrivacyRank.
func extractFront(points []Point) []Point {
	seen := map[string]bool{}
	var uniq []Point
	for _, p := range points {
		if !seen[p.Node.Key()] {
			seen[p.Node.Key()] = true
			uniq = append(uniq, p)
		}
	}
	var front []Point
	for i, p := range uniq {
		dominated := false
		for j, q := range uniq {
			if i != j && q.Obj.Dominates(p.Obj) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(a, b int) bool {
		if front[a].Obj.PrivacyRank != front[b].Obj.PrivacyRank {
			return front[a].Obj.PrivacyRank < front[b].Obj.PrivacyRank
		}
		return front[a].Obj.Loss < front[b].Obj.Loss
	})
	return front
}

// ExhaustiveFront enumerates every lattice node and returns the exact
// Pareto front — feasible whenever the lattice is enumerable, and the
// ground truth E16 scores NSGA2 against.
func ExhaustiveFront(t *dataset.Table, cfg algorithm.Config) (*Front, error) {
	return ExhaustiveFrontContext(context.Background(), t, cfg)
}

// ExhaustiveFrontContext is ExhaustiveFront honoring a context: the lattice
// sweep runs as one parallel engine batch and aborts with the context's
// error as soon as cancellation is seen.
func ExhaustiveFrontContext(ctx context.Context, t *dataset.Table, cfg algorithm.Config) (*Front, error) {
	ctx, sp := telemetry.Start(ctx, "moga.exhaustive")
	defer sp.End()
	if err := checkConfig(t, cfg); err != nil {
		return nil, fmt.Errorf("moga: %w", err)
	}
	eng, err := newEngine(ctx, t, cfg)
	if err != nil {
		return nil, fmt.Errorf("moga: %w", err)
	}
	dmax := idealVector(t.Len())
	evs, err := eng.EvaluateAll(ctx, eng.Lattice().Nodes())
	if err != nil {
		return nil, fmt.Errorf("moga: %w", err)
	}
	all := make([]Point, 0, len(evs))
	for _, ev := range evs {
		pt, err := evaluate(ev, dmax)
		if err != nil {
			return nil, fmt.Errorf("moga: %w", err)
		}
		all = append(all, pt)
	}
	front := extractFront(all)
	telemetry.L().Info("moga: exhaustive front complete",
		"evaluations", len(all), "front_size", len(front))
	return &Front{Points: front, Evaluations: len(all)}, nil
}

// NSGA2 is the elitist non-dominated-sorting searcher.
type NSGA2 struct {
	// PopSize is the population size; 0 defaults to 32.
	PopSize int
	// Generations bounds the evolution; 0 defaults to 40.
	Generations int
	// MutationRate is the per-gene mutation probability; 0 defaults to 0.2.
	MutationRate float64
}

// Explore runs the search and returns the non-dominated front of every
// point ever evaluated (an archive front, deterministic for cfg.Seed).
func (g *NSGA2) Explore(t *dataset.Table, cfg algorithm.Config) (*Front, error) {
	return g.ExploreContext(context.Background(), t, cfg)
}

// ExploreContext is Explore honoring a context; the evolution aborts with
// the context's error as soon as cancellation is seen.
func (g *NSGA2) ExploreContext(ctx context.Context, t *dataset.Table, cfg algorithm.Config) (*Front, error) {
	ctx, sp := telemetry.Start(ctx, "moga.nsga2")
	defer sp.End()
	reg := telemetry.NewRunRegistry()
	evalsC := reg.Counter("moga.evaluations")
	if err := checkConfig(t, cfg); err != nil {
		return nil, fmt.Errorf("moga: %w", err)
	}
	eng, err := newEngine(ctx, t, cfg)
	if err != nil {
		return nil, fmt.Errorf("moga: %w", err)
	}
	maxLevels := eng.Lattice().MaxLevels()
	popSize, gens, mutRate := g.PopSize, g.Generations, g.MutationRate
	if popSize <= 0 {
		popSize = 32
	}
	if gens <= 0 {
		gens = 40
	}
	if mutRate <= 0 {
		mutRate = 0.2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dmax := idealVector(t.Len())

	// The local map keeps Front.Evaluations counting distinct nodes,
	// independent of the engine's own memo cache.
	cache := map[string]Point{}
	eval := func(n lattice.Node) (Point, error) {
		if pt, ok := cache[n.Key()]; ok {
			return pt, nil
		}
		evalsC.Inc()
		ev, err := eng.Evaluate(ctx, n)
		if err != nil {
			return Point{}, err
		}
		pt, err := evaluate(ev, dmax)
		if err != nil {
			return Point{}, err
		}
		cache[n.Key()] = pt
		return pt, nil
	}

	pop := make([]Point, popSize)
	for i := range pop {
		n := make(lattice.Node, len(maxLevels))
		for d, m := range maxLevels {
			n[d] = rng.Intn(m + 1)
		}
		if pop[i], err = eval(n); err != nil {
			return nil, fmt.Errorf("moga: %w", err)
		}
	}
	// Anchor both objective extremes so the front always spans the space.
	bottom := make(lattice.Node, len(maxLevels))
	top := append(lattice.Node(nil), maxLevels...)
	if pop[0], err = eval(bottom); err != nil {
		return nil, fmt.Errorf("moga: %w", err)
	}
	if popSize > 1 {
		if pop[1], err = eval(top); err != nil {
			return nil, fmt.Errorf("moga: %w", err)
		}
	}

	for gen := 0; gen < gens; gen++ {
		ranks, crowd := nondominatedSort(pop)
		better := func(i, j int) bool {
			if ranks[i] != ranks[j] {
				return ranks[i] < ranks[j]
			}
			return crowd[i] > crowd[j]
		}
		tournament := func() Point {
			i, j := rng.Intn(len(pop)), rng.Intn(len(pop))
			if better(i, j) {
				return pop[i]
			}
			return pop[j]
		}
		// Offspring: uniform crossover + ±1 mutation.
		offspring := make([]Point, 0, popSize)
		for len(offspring) < popSize {
			a, b := tournament(), tournament()
			child := make(lattice.Node, len(maxLevels))
			for d := range child {
				if rng.Intn(2) == 0 {
					child[d] = a.Node[d]
				} else {
					child[d] = b.Node[d]
				}
				if rng.Float64() < mutRate {
					if rng.Intn(2) == 0 && child[d] < maxLevels[d] {
						child[d]++
					} else if child[d] > 0 {
						child[d]--
					}
				}
			}
			pt, err := eval(child)
			if err != nil {
				return nil, fmt.Errorf("moga: %w", err)
			}
			offspring = append(offspring, pt)
		}
		// Environmental selection over parents + offspring.
		union := append(append([]Point{}, pop...), offspring...)
		pop = selectSurvivors(union, popSize)
	}

	all := make([]Point, 0, len(cache))
	for _, pt := range cache {
		all = append(all, pt)
	}
	front := extractFront(all)
	telemetry.L().Info("moga: nsga2 search complete",
		"evaluations", evalsC.Value(), "front_size", len(front))
	return &Front{Points: front, Evaluations: int(evalsC.Value())}, nil
}

// nondominatedSort returns each point's front rank (0 = non-dominated) and
// crowding distance within its rank.
func nondominatedSort(pop []Point) (ranks []int, crowd []float64) {
	n := len(pop)
	ranks = make([]int, n)
	dominatedBy := make([]int, n)
	dominatesList := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if pop[i].Obj.Dominates(pop[j].Obj) {
				dominatesList[i] = append(dominatesList[i], j)
			} else if pop[j].Obj.Dominates(pop[i].Obj) {
				dominatedBy[i]++
			}
		}
	}
	var current []int
	for i := 0; i < n; i++ {
		if dominatedBy[i] == 0 {
			ranks[i] = 0
			current = append(current, i)
		}
	}
	rank := 0
	for len(current) > 0 {
		var next []int
		for _, i := range current {
			for _, j := range dominatesList[i] {
				dominatedBy[j]--
				if dominatedBy[j] == 0 {
					ranks[j] = rank + 1
					next = append(next, j)
				}
			}
		}
		rank++
		current = next
	}
	// Crowding distance per rank, per objective.
	crowd = make([]float64, n)
	byRank := map[int][]int{}
	for i, r := range ranks {
		byRank[r] = append(byRank[r], i)
	}
	for _, members := range byRank {
		for _, key := range []func(Point) float64{
			func(p Point) float64 { return p.Obj.PrivacyRank },
			func(p Point) float64 { return p.Obj.Loss },
		} {
			sort.Slice(members, func(a, b int) bool {
				return key(pop[members[a]]) < key(pop[members[b]])
			})
			lo := key(pop[members[0]])
			hi := key(pop[members[len(members)-1]])
			crowd[members[0]] = math.Inf(1)
			crowd[members[len(members)-1]] = math.Inf(1)
			if hi == lo {
				continue
			}
			for m := 1; m < len(members)-1; m++ {
				crowd[members[m]] += (key(pop[members[m+1]]) - key(pop[members[m-1]])) / (hi - lo)
			}
		}
	}
	return ranks, crowd
}

// selectSurvivors keeps the best size points by (rank, crowding).
func selectSurvivors(union []Point, size int) []Point {
	ranks, crowd := nondominatedSort(union)
	idx := make([]int, len(union))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if ranks[idx[a]] != ranks[idx[b]] {
			return ranks[idx[a]] < ranks[idx[b]]
		}
		return crowd[idx[a]] > crowd[idx[b]]
	})
	out := make([]Point, size)
	for i := 0; i < size; i++ {
		out[i] = union[idx[i]]
	}
	return out
}

// Coverage reports the fraction of the reference front's points that the
// candidate front matches or dominates — the standard front-quality score
// E16 reports (1.0 means the candidate found the whole true front).
func Coverage(candidate, reference *Front) float64 {
	if len(reference.Points) == 0 {
		return math.NaN()
	}
	covered := 0
	for _, r := range reference.Points {
		for _, c := range candidate.Points {
			if c.Obj == r.Obj || c.Obj.Dominates(r.Obj) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(reference.Points))
}
