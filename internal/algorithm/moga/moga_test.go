package moga

import (
	"math"
	"testing"

	"microdata/internal/algorithm/algtest"
)

func TestObjectivesDominates(t *testing.T) {
	a := Objectives{PrivacyRank: 1, Loss: 0.2}
	b := Objectives{PrivacyRank: 2, Loss: 0.3}
	c := Objectives{PrivacyRank: 0.5, Loss: 0.5}
	if !a.Dominates(b) {
		t.Error("a should dominate b")
	}
	if b.Dominates(a) {
		t.Error("b must not dominate a")
	}
	if a.Dominates(a) {
		t.Error("dominance is strict")
	}
	if a.Dominates(c) || c.Dominates(a) {
		t.Error("a and c are incomparable")
	}
}

func TestExhaustiveFrontOnPaperLattice(t *testing.T) {
	tab, cfg := algtest.PaperConfig(1)
	front, err := ExhaustiveFront(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if front.Evaluations != 30 {
		t.Errorf("evaluated %d nodes, want 30", front.Evaluations)
	}
	if len(front.Points) < 2 {
		t.Fatalf("front too small: %d points", len(front.Points))
	}
	// Mutual non-dominance within the front.
	for i, p := range front.Points {
		for j, q := range front.Points {
			if i != j && p.Obj.Dominates(q.Obj) {
				t.Fatalf("front point %v dominates fellow point %v", p.Obj, q.Obj)
			}
		}
	}
	// Sorted by privacy rank; loss must fall as rank rises (trade-off).
	for i := 1; i < len(front.Points); i++ {
		prev, cur := front.Points[i-1], front.Points[i]
		if cur.Obj.PrivacyRank < prev.Obj.PrivacyRank {
			t.Fatal("front not sorted by privacy rank")
		}
		if cur.Obj.Loss > prev.Obj.Loss {
			t.Fatalf("loss should fall along the front: %v then %v", prev.Obj, cur.Obj)
		}
	}
	// The extremes: bottom node (no loss, poor privacy) and top node
	// (full loss... actually perfect privacy rank 0) must be represented
	// in objective space.
	first, last := front.Points[0], front.Points[len(front.Points)-1]
	if first.Obj.PrivacyRank != 0 {
		t.Errorf("best-privacy end should reach rank 0 (single class), got %v", first.Obj)
	}
	if last.Obj.Loss != 0 {
		t.Errorf("best-utility end should reach loss 0 (identity), got %v", last.Obj)
	}
	// k is emergent: the rank-0 end is the whole table in one class.
	if first.KActual != tab.Len() {
		t.Errorf("perfect-privacy point has k=%d, want %d", first.KActual, tab.Len())
	}
}

func TestNSGA2MatchesExhaustiveOnSmallLattice(t *testing.T) {
	tab, cfg := algtest.PaperConfig(1)
	cfg.Seed = 5
	truth, err := ExhaustiveFront(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&NSGA2{}).Explore(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cov := Coverage(got, truth)
	if cov < 1 {
		t.Errorf("NSGA-II coverage of the 30-node exhaustive front = %v, want 1.0", cov)
	}
	// The archive front itself must be mutually non-dominated.
	for i, p := range got.Points {
		for j, q := range got.Points {
			if i != j && p.Obj.Dominates(q.Obj) {
				t.Fatal("NSGA-II front is not non-dominated")
			}
		}
	}
}

func TestNSGA2OnCensus(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(250, 1, 27)
	if err != nil {
		t.Fatal(err)
	}
	front, err := (&NSGA2{PopSize: 24, Generations: 25}).Explore(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(front.Points) < 3 {
		t.Fatalf("census front has only %d points", len(front.Points))
	}
	// Determinism.
	again, err := (&NSGA2{PopSize: 24, Generations: 25}).Explore(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(front.Points) != len(again.Points) {
		t.Fatal("NSGA-II not deterministic for fixed seed")
	}
	for i := range front.Points {
		if !front.Points[i].Node.Equal(again.Points[i].Node) {
			t.Fatal("NSGA-II front nodes differ across identical runs")
		}
	}
	// The node cache must keep evaluations at or below pop*(gens+1).
	if front.Evaluations > 24*27 {
		t.Errorf("evaluations %d exceed budget", front.Evaluations)
	}
}

func TestCoverage(t *testing.T) {
	ref := &Front{Points: []Point{
		{Obj: Objectives{PrivacyRank: 1, Loss: 0.5}},
		{Obj: Objectives{PrivacyRank: 2, Loss: 0.2}},
	}}
	full := &Front{Points: ref.Points}
	if got := Coverage(full, ref); got != 1 {
		t.Errorf("self coverage = %v", got)
	}
	half := &Front{Points: ref.Points[:1]}
	if got := Coverage(half, ref); got != 0.5 {
		t.Errorf("half coverage = %v", got)
	}
	dominating := &Front{Points: []Point{{Obj: Objectives{PrivacyRank: 0, Loss: 0}}}}
	if got := Coverage(dominating, ref); got != 1 {
		t.Errorf("dominating coverage = %v", got)
	}
	if got := Coverage(full, &Front{}); !math.IsNaN(got) {
		t.Errorf("coverage of empty reference should be NaN, got %v", got)
	}
}

func TestMogaValidation(t *testing.T) {
	tab, cfg := algtest.PaperConfig(3)
	cfg.Hierarchies = nil
	if _, err := ExhaustiveFront(tab, cfg); err == nil {
		t.Error("missing hierarchies should fail")
	}
	if _, err := (&NSGA2{}).Explore(tab, cfg); err == nil {
		t.Error("missing hierarchies should fail")
	}
}
