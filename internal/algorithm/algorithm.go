// Package algorithm defines the common contract for the disclosure control
// algorithms rebuilt for this reproduction (the paper's §6 survey): a
// shared Config, a Result carrying the anonymized table plus everything the
// comparison framework needs, and helpers for the global-recoding
// generalize-then-suppress workflow every lattice-based algorithm shares.
package algorithm

import (
	"context"
	"fmt"
	"math"
	"sort"

	"microdata/internal/dataset"
	"microdata/internal/eqclass"
	"microdata/internal/hierarchy"
	"microdata/internal/lattice"
	"microdata/internal/privacy"
	"microdata/internal/telemetry"
	"microdata/internal/utility"
)

// Metric selects the utility objective a search-based algorithm optimizes.
type Metric uint8

const (
	// MetricLM is Iyengar's general loss metric (lower is better).
	MetricLM Metric = iota
	// MetricDM is the discernibility metric (lower is better).
	MetricDM
	// MetricPrec is Samarati's precision (higher is better); callers
	// receive it negated so that every metric is minimized uniformly.
	MetricPrec
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricLM:
		return "LM"
	case MetricDM:
		return "DM"
	case MetricPrec:
		return "Prec"
	default:
		return fmt.Sprintf("Metric(%d)", uint8(m))
	}
}

// Config parameterizes an anonymization run.
type Config struct {
	// K is the k-anonymity requirement; must be >= 1.
	K int
	// Hierarchies supplies the generalization ladder per quasi-identifier.
	Hierarchies hierarchy.Set
	// MaxSuppression is the fraction of rows (0..1) the algorithm may
	// suppress to rescue small equivalence classes.
	MaxSuppression float64
	// Metric is the utility objective for algorithms that search.
	Metric Metric
	// Taxonomies feeds loss computation for Set-generalized columns.
	Taxonomies map[string]*hierarchy.Taxonomy
	// Seed drives stochastic algorithms (the genetic algorithm).
	Seed int64
	// MinLDiversity, when > 0, additionally requires every retained
	// equivalence class to hold at least this many DISTINCT sensitive
	// values (p-sensitive / distinct ℓ-diversity as a second property —
	// the multi-property optimization the paper's §4 notes is rare).
	// Requires a sensitive attribute in the schema.
	MinLDiversity int
	// MaxTCloseness, when > 0, additionally bounds every retained
	// class's earth-mover distance (equal-distance ground metric) from
	// the table's global sensitive distribution. Requires a sensitive
	// attribute in the schema.
	MaxTCloseness float64
	// MinEntropyL, when > 0, additionally requires every retained class
	// to be entropy ℓ-diverse at this level: exp(H(class sensitive
	// distribution)) >= MinEntropyL (Machanavajjhala et al.). Requires a
	// sensitive attribute in the schema.
	MinEntropyL float64
	// RecursiveC and RecursiveL, when both > 0, additionally require
	// every retained class to be recursive (c,ℓ)-diverse: with sensitive
	// frequencies r_1 >= ... >= r_m, r_1 < c·(r_ℓ + ... + r_m)
	// (Machanavajjhala et al.). Requires a sensitive attribute.
	RecursiveC float64
	RecursiveL int
	// Workers, when > 0, caps the worker goroutines of the parallel
	// kernels a run fans out over (engine EvaluateAll and the morsel-driven
	// group-by beneath it). 0 defers to the module-wide default
	// (kernels.DefaultWorkers: GOMAXPROCS unless the shared -workers
	// setting overrides it).
	Workers int
}

// hasDiversityConstraints reports whether any secondary privacy property
// is requested.
func (c Config) hasDiversityConstraints() bool {
	return c.MinLDiversity > 0 || c.MaxTCloseness > 0 || c.MinEntropyL > 0 ||
		(c.RecursiveC > 0 && c.RecursiveL > 0)
}

// Budget returns the number of rows the configuration allows suppressing in
// a table of n rows.
func (c Config) Budget(n int) int { return int(c.MaxSuppression * float64(n)) }

// Validate rejects unusable configurations for the given table.
func (c Config) Validate(t *dataset.Table) error {
	if t == nil || t.Len() == 0 {
		return fmt.Errorf("algorithm: empty table")
	}
	if c.K < 1 {
		return fmt.Errorf("algorithm: k must be >= 1, got %d", c.K)
	}
	if c.K > t.Len() {
		return fmt.Errorf("algorithm: k=%d exceeds table size %d", c.K, t.Len())
	}
	if c.MaxSuppression < 0 || c.MaxSuppression > 1 || math.IsNaN(c.MaxSuppression) {
		return fmt.Errorf("algorithm: max suppression %v outside [0,1]", c.MaxSuppression)
	}
	if c.Hierarchies == nil {
		return fmt.Errorf("algorithm: no hierarchies configured")
	}
	if c.MinLDiversity < 0 {
		return fmt.Errorf("algorithm: negative ℓ-diversity requirement %d", c.MinLDiversity)
	}
	if c.MaxTCloseness < 0 || c.MaxTCloseness > 1 || math.IsNaN(c.MaxTCloseness) {
		return fmt.Errorf("algorithm: t-closeness bound %v outside [0,1]", c.MaxTCloseness)
	}
	if c.MinEntropyL < 0 || math.IsNaN(c.MinEntropyL) || math.IsInf(c.MinEntropyL, 0) {
		return fmt.Errorf("algorithm: entropy ℓ requirement %v is not a non-negative finite number", c.MinEntropyL)
	}
	if c.RecursiveC < 0 || math.IsNaN(c.RecursiveC) || math.IsInf(c.RecursiveC, 0) {
		return fmt.Errorf("algorithm: recursive c %v is not a non-negative finite number", c.RecursiveC)
	}
	if c.RecursiveL < 0 {
		return fmt.Errorf("algorithm: negative recursive ℓ %d", c.RecursiveL)
	}
	if (c.RecursiveC > 0) != (c.RecursiveL > 0) {
		return fmt.Errorf("algorithm: recursive (c,ℓ)-diversity needs both c and ℓ set")
	}
	if c.hasDiversityConstraints() && t.Schema.SensitiveIndex() < 0 {
		return fmt.Errorf("algorithm: diversity constraints need a sensitive attribute")
	}
	return c.Hierarchies.CoverQI(t.Schema)
}

// Result is the outcome of an anonymization run.
type Result struct {
	// Algorithm names the producing algorithm.
	Algorithm string
	// Table is the anonymized data set — same size as the original, with
	// suppressed tuples kept in fully generalized form (paper §3).
	Table *dataset.Table
	// Partition is the equivalence-class partition of Table.
	Partition *eqclass.Partition
	// Levels is the lattice node used, for global-recoding algorithms;
	// nil for local recoding (Mondrian).
	Levels lattice.Node
	// Suppressed lists the rows whose quasi-identifiers were suppressed.
	Suppressed []int
	// Stats carries algorithm-specific counters (nodes explored,
	// generations run, ...).
	Stats map[string]float64
}

// Algorithm is a microdata disclosure control algorithm.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Anonymize produces a k-anonymous (within cfg's suppression budget)
	// version of the table. The input table is never modified.
	Anonymize(t *dataset.Table, cfg Config) (*Result, error)
}

// ContextAlgorithm is implemented by algorithms whose searches honor a
// context: cancelling the context aborts the search promptly with an error
// wrapping context.Canceled (the engine attaches its partial counters, see
// package engine).
type ContextAlgorithm interface {
	Algorithm
	// AnonymizeContext is Anonymize under a cancellable context.
	AnonymizeContext(ctx context.Context, t *dataset.Table, cfg Config) (*Result, error)
}

// AnonymizeContext runs the algorithm under ctx when it supports
// cancellation and falls back to the plain entry point otherwise (after a
// single upfront cancellation check).
func AnonymizeContext(ctx context.Context, alg Algorithm, t *dataset.Table, cfg Config) (*Result, error) {
	if ca, ok := alg.(ContextAlgorithm); ok {
		return ca.AnonymizeContext(ctx, t, cfg)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("algorithm: %s not started: %w", alg.Name(), err)
	}
	return alg.Anonymize(t, cfg)
}

// isStarClass reports whether the class's quasi-identifiers are fully
// suppressed (the paper-§3 unlinkable class).
func isStarClass(t *dataset.Table, rows []int, qi []int) bool {
	for _, j := range qi {
		if !t.At(rows[0], j).IsSuppressed() {
			return false
		}
	}
	return true
}

// SatisfiesK reports whether the partition is k-anonymous when suppressed
// rows are granted the paper's convention: the all-star class they form is
// unlinkable and therefore exempt from the minimum-size requirement (an
// empty suppressed set leaves plain k-anonymity).
func SatisfiesK(p *eqclass.Partition, t *dataset.Table, k int) bool {
	if p.N() == 0 {
		return false
	}
	qi := t.Schema.QuasiIdentifiers()
	for _, rows := range p.Classes {
		if len(rows) >= k {
			continue
		}
		if !isStarClass(t, rows, qi) {
			return false
		}
	}
	return true
}

// SatisfiesConstraints reports whether the partition meets the k
// requirement and every configured secondary privacy property, with the
// all-star class exempt.
func SatisfiesConstraints(p *eqclass.Partition, t *dataset.Table, cfg Config) (bool, error) {
	if !SatisfiesK(p, t, cfg.K) {
		return false, nil
	}
	if !cfg.hasDiversityConstraints() {
		return true, nil
	}
	bad, err := ViolatingClasses(p, t, cfg)
	if err != nil {
		return false, err
	}
	qi := t.Schema.QuasiIdentifiers()
	for ci := range bad {
		if bad[ci] && !isStarClass(t, p.Classes[ci], qi) {
			return false, nil
		}
	}
	return true, nil
}

// ViolatingClasses marks, per class, whether any constraint (k, ℓ, t)
// fails. The star-class exemption is NOT applied here; callers decide. The
// table supplies only the sensitive column, which generalization never
// touches, so the original and any generalized copy are interchangeable —
// package engine relies on that to validate constraints without ever
// materializing the generalized table.
func ViolatingClasses(p *eqclass.Partition, t *dataset.Table, cfg Config) ([]bool, error) {
	bad := make([]bool, p.NumClasses())
	for ci, rows := range p.Classes {
		if len(rows) < cfg.K {
			bad[ci] = true
		}
	}
	if !cfg.hasDiversityConstraints() {
		return bad, nil
	}
	si := t.Schema.SensitiveIndex()
	if si < 0 {
		return nil, fmt.Errorf("algorithm: diversity constraints need a sensitive attribute")
	}
	// One vectorized histogram pass over the dictionary-encoded sensitive
	// column serves ℓ-diversity, entropy and recursive (c,ℓ) alike.
	counts, err := p.ValueCountsColumn(t.ColumnVector(si))
	if err != nil {
		return nil, err
	}
	if cfg.MinLDiversity > 0 {
		for ci := range counts {
			if len(counts[ci]) < cfg.MinLDiversity {
				bad[ci] = true
			}
		}
	}
	if cfg.MaxTCloseness > 0 {
		tvec, err := privacy.TClosenessVector(p, t.Column(si), false)
		if err != nil {
			return nil, err
		}
		for ci, rows := range p.Classes {
			if tvec[rows[0]] > cfg.MaxTCloseness+1e-12 {
				bad[ci] = true
			}
		}
	}
	if cfg.MinEntropyL > 0 {
		for ci := range counts {
			if classEntropyL(counts[ci]) < cfg.MinEntropyL-1e-12 {
				bad[ci] = true
			}
		}
	}
	if cfg.RecursiveC > 0 && cfg.RecursiveL > 0 {
		for ci := range counts {
			if !classRecursiveCL(counts[ci], cfg.RecursiveC, cfg.RecursiveL) {
				bad[ci] = true
			}
		}
	}
	return bad, nil
}

// classRecursiveCL checks recursive (c,ℓ)-diversity for one class's
// sensitive value counts.
func classRecursiveCL(counts map[string]int, c float64, l int) bool {
	freqs := make([]int, 0, len(counts))
	for _, f := range counts {
		freqs = append(freqs, f)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	if l > len(freqs) {
		return false
	}
	tail := 0
	for _, f := range freqs[l-1:] {
		tail += f
	}
	return float64(freqs[0]) < c*float64(tail)
}

// classEntropyL is exp of the Shannon entropy of one class's sensitive
// value counts — the ℓ of entropy ℓ-diversity for that class.
func classEntropyL(counts map[string]int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		q := float64(c) / float64(total)
		h -= q * math.Log(q)
	}
	return math.Exp(h)
}

// ApplyNode generalizes the table to the lattice node and reports which
// rows sit in classes violating the configured constraints (undersized for
// k, or short of the ℓ-diversity / t-closeness requirements). It is the
// evaluation primitive shared by the lattice-searching algorithms.
func ApplyNode(t *dataset.Table, cfg Config, node lattice.Node) (*dataset.Table, *eqclass.Partition, []int, error) {
	anon, err := hierarchy.GeneralizeTable(t, cfg.Hierarchies, node)
	if err != nil {
		return nil, nil, nil, err
	}
	p, err := eqclass.FromTable(anon)
	if err != nil {
		return nil, nil, nil, err
	}
	bad, err := ViolatingClasses(p, anon, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	var small []int
	for ci, rows := range p.Classes {
		if bad[ci] {
			small = append(small, rows...)
		}
	}
	sort.Ints(small)
	return anon, p, small, nil
}

// FinishGlobal completes a global-recoding run at the chosen node:
// generalize, suppress the undersized classes if the budget allows, and
// package the Result. It fails when the node needs more suppression than
// cfg.MaxSuppression permits.
func FinishGlobal(name string, t *dataset.Table, cfg Config, node lattice.Node, stats map[string]float64) (*Result, error) {
	return FinishGlobalContext(context.Background(), name, t, cfg, node, stats)
}

// FinishGlobalContext is FinishGlobal under the caller's telemetry
// context: the one-time table materialization is traced as an
// "algorithm.materialize" span, the third phase of the standard
// precompute / search / materialize breakdown.
func FinishGlobalContext(ctx context.Context, name string, t *dataset.Table, cfg Config, node lattice.Node, stats map[string]float64) (*Result, error) {
	_, sp := telemetry.Start(ctx, "algorithm.materialize", telemetry.String("algorithm", name))
	defer sp.End()
	anon, p, small, err := ApplyNode(t, cfg, node)
	if err != nil {
		return nil, err
	}
	budget := cfg.Budget(t.Len())
	if len(small) > budget {
		return nil, fmt.Errorf("algorithm: node %v needs %d suppressions, budget is %d", node, len(small), budget)
	}
	if len(small) > 0 {
		hierarchy.SuppressRows(anon, small)
		p, err = eqclass.FromTable(anon)
		if err != nil {
			return nil, err
		}
	}
	if ok, err := SatisfiesConstraints(p, anon, cfg); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("algorithm: node %v does not satisfy the privacy constraints after suppression", node)
	}
	if stats == nil {
		stats = map[string]float64{}
	}
	stats["suppressed"] = float64(len(small))
	return &Result{
		Algorithm:  name,
		Table:      anon,
		Partition:  p,
		Levels:     node.Clone(),
		Suppressed: small,
		Stats:      stats,
	}, nil
}

// NodeCost scores a lattice node under the configured metric; lower is
// better for every metric (precision is negated). Nodes that exceed the
// suppression budget return +Inf.
func NodeCost(t *dataset.Table, cfg Config, node lattice.Node) (float64, error) {
	anon, p, small, err := ApplyNode(t, cfg, node)
	if err != nil {
		return 0, err
	}
	budget := cfg.Budget(t.Len())
	if len(small) > budget {
		return math.Inf(1), nil
	}
	if len(small) > 0 {
		hierarchy.SuppressRows(anon, small)
		p, err = eqclass.FromTable(anon)
		if err != nil {
			return 0, err
		}
	}
	return cost(anon, t, p, cfg, node)
}

func cost(anon, orig *dataset.Table, p *eqclass.Partition, cfg Config, node lattice.Node) (float64, error) {
	switch cfg.Metric {
	case MetricLM:
		return utility.GeneralLossMetric(anon, orig, utility.LossConfig{Taxonomies: cfg.Taxonomies})
	case MetricDM:
		return utility.DiscernibilityMetric(p), nil
	case MetricPrec:
		if node == nil {
			// Local recodings have no lattice node; fall back to LM.
			return utility.GeneralLossMetric(anon, orig, utility.LossConfig{Taxonomies: cfg.Taxonomies})
		}
		prec, err := utility.Precision(orig.Schema, cfg.Hierarchies, node)
		if err != nil {
			return 0, err
		}
		return -prec, nil
	default:
		return 0, fmt.Errorf("algorithm: unknown metric %v", cfg.Metric)
	}
}

// ResultCost scores a finished Result under the configured metric, for
// cross-algorithm tables.
func ResultCost(r *Result, orig *dataset.Table, cfg Config) (float64, error) {
	return cost(r.Table, orig, r.Partition, cfg, r.Levels)
}
