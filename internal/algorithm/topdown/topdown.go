// Package topdown implements a top-down specialization anonymizer inspired
// by Fung, Wang & Yu's TDS (paper §6): start from the fully generalized
// table and repeatedly specialize — lower one attribute's generalization
// level — choosing at each step the specialization with the best utility
// improvement per unit of anonymity consumed, while the table remains
// k-anonymous within the suppression budget.
//
// Simplification vs. the published algorithm: TDS specializes individual
// taxonomy nodes guided by an information/anonymity score over a
// classification task; this reproduction specializes whole attributes on
// the full-domain lattice with the configured utility metric as the
// score, which preserves the top-down greedy character the comparison
// experiments need (DESIGN.md §5).
package topdown

import (
	"fmt"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/lattice"
)

// TopDown is the greedy specialization anonymizer.
type TopDown struct{}

// New returns a TopDown instance.
func New() *TopDown { return &TopDown{} }

// Name implements algorithm.Algorithm.
func (*TopDown) Name() string { return "topdown" }

// Anonymize implements algorithm.Algorithm.
func (td *TopDown) Anonymize(t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	if err := cfg.Validate(t); err != nil {
		return nil, fmt.Errorf("topdown: %w", err)
	}
	maxLevels, err := cfg.Hierarchies.MaxLevels(t.Schema)
	if err != nil {
		return nil, fmt.Errorf("topdown: %w", err)
	}
	budget := int(cfg.MaxSuppression * float64(t.Len()))
	node := make(lattice.Node, len(maxLevels))
	copy(node, maxLevels) // start fully generalized
	cost, err := algorithm.NodeCost(t, cfg, node)
	if err != nil {
		return nil, fmt.Errorf("topdown: %w", err)
	}
	steps := 0
	for {
		// Candidate specializations: lower one attribute by one level,
		// keeping feasibility.
		bestIdx, bestCost := -1, cost
		for i := range node {
			if node[i] == 0 {
				continue
			}
			node[i]--
			_, _, small, err := algorithm.ApplyNode(t, cfg, node)
			if err != nil {
				node[i]++
				return nil, fmt.Errorf("topdown: %w", err)
			}
			if len(small) <= budget {
				c, err := algorithm.NodeCost(t, cfg, node)
				if err != nil {
					node[i]++
					return nil, fmt.Errorf("topdown: %w", err)
				}
				if c < bestCost {
					bestIdx, bestCost = i, c
				}
			}
			node[i]++
		}
		if bestIdx < 0 {
			break
		}
		node[bestIdx]--
		cost = bestCost
		steps++
	}
	return algorithm.FinishGlobal(td.Name(), t, cfg, node, map[string]float64{
		"specializations": float64(steps),
		"final_cost":      cost,
	})
}
