// Package topdown implements a top-down specialization anonymizer inspired
// by Fung, Wang & Yu's TDS (paper §6): start from the fully generalized
// table and repeatedly specialize — lower one attribute's generalization
// level — choosing at each step the specialization with the best utility
// improvement per unit of anonymity consumed, while the table remains
// k-anonymous within the suppression budget.
//
// Simplification vs. the published algorithm: TDS specializes individual
// taxonomy nodes guided by an information/anonymity score over a
// classification task; this reproduction specializes whole attributes on
// the full-domain lattice with the configured utility metric as the
// score, which preserves the top-down greedy character the comparison
// experiments need (DESIGN.md §5).
//
// Each step's candidate specializations are batch-evaluated in parallel on
// the shared evaluation engine.
package topdown

import (
	"context"
	"fmt"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/engine"
	"microdata/internal/lattice"
	"microdata/internal/telemetry"
)

// TopDown is the greedy specialization anonymizer.
type TopDown struct{}

// New returns a TopDown instance.
func New() *TopDown { return &TopDown{} }

// Name implements algorithm.Algorithm.
func (*TopDown) Name() string { return "topdown" }

// Anonymize implements algorithm.Algorithm.
func (td *TopDown) Anonymize(t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	return td.AnonymizeContext(context.Background(), t, cfg)
}

// AnonymizeContext implements algorithm.ContextAlgorithm; the descent
// aborts with the context's error as soon as cancellation is seen.
func (td *TopDown) AnonymizeContext(ctx context.Context, t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	ctx, sp := telemetry.Start(ctx, "topdown.search", telemetry.Int("k", cfg.K))
	defer sp.End()
	reg := telemetry.NewRunRegistry()
	stepsC := reg.Counter("topdown.specializations")
	eng, err := engine.NewContext(ctx, t, cfg)
	if err != nil {
		return nil, fmt.Errorf("topdown: %w", err)
	}
	node := eng.Lattice().Top() // start fully generalized
	ev, err := eng.Evaluate(ctx, node)
	if err != nil {
		return nil, fmt.Errorf("topdown: %w", err)
	}
	cost, err := ev.Cost()
	if err != nil {
		return nil, fmt.Errorf("topdown: %w", err)
	}
	for {
		// Candidate specializations: lower one attribute by one level,
		// keeping feasibility. Evaluated as one parallel batch.
		var idxs []int
		var cands []lattice.Node
		for i := range node {
			if node[i] == 0 {
				continue
			}
			c := node.Clone()
			c[i]--
			idxs = append(idxs, i)
			cands = append(cands, c)
		}
		evs, err := eng.EvaluateAll(ctx, cands)
		if err != nil {
			return nil, fmt.Errorf("topdown: %w", err)
		}
		bestIdx, bestCost := -1, cost
		for ci, cev := range evs {
			if !cev.Satisfies {
				continue
			}
			c, err := cev.Cost()
			if err != nil {
				return nil, fmt.Errorf("topdown: %w", err)
			}
			if c < bestCost {
				bestIdx, bestCost = idxs[ci], c
			}
		}
		if bestIdx < 0 {
			break
		}
		node[bestIdx]--
		cost = bestCost
		stepsC.Inc()
	}
	reg.Gauge("topdown.final_cost").Set(cost)
	stats := map[string]float64{}
	reg.Snapshot().MergeInto(stats, "topdown.")
	eng.Stats().MergeInto(stats)
	telemetry.L().Info("topdown: descent complete",
		"specializations", stepsC.Value(), "final_cost", cost, "engine", eng.Stats().String())
	return algorithm.FinishGlobalContext(ctx, td.Name(), t, cfg, node, stats)
}
