package topdown

import (
	"testing"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/algtest"
	"microdata/internal/algorithm/optimal"
)

func TestTopDownOnPaperTable(t *testing.T) {
	tab, cfg := algtest.PaperConfig(3)
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	algtest.KIsAchieved(t, r, 3)
	if r.Stats["specializations"] < 1 {
		t.Error("expected at least one specialization from the top node")
	}
}

func TestTopDownNeverWorseThanTopNode(t *testing.T) {
	tab, cfg := algtest.PaperConfig(4)
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := algorithm.ResultCost(r, tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ml, _ := cfg.Hierarchies.MaxLevels(tab.Schema)
	topCost, err := algorithm.NodeCost(tab, cfg, ml)
	if err != nil {
		t.Fatal(err)
	}
	if c > topCost+1e-12 {
		t.Errorf("greedy descent ended worse (%v) than its start (%v)", c, topCost)
	}
}

func TestTopDownVsOptimalGap(t *testing.T) {
	// Greedy specialization cannot beat the exhaustive optimum.
	tab, cfg, err := algtest.CensusConfig(200, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	td, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, td)
	opt, err := optimal.New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tdCost, _ := algorithm.ResultCost(td, tab, cfg)
	optCost, _ := algorithm.ResultCost(opt, tab, cfg)
	if optCost > tdCost+1e-9 {
		t.Errorf("optimal %v worse than greedy %v — impossible", optCost, tdCost)
	}
}

func TestTopDownOnCensusDeterminism(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(300, 5, 18)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	algtest.CheckDeterminism(t, New(), tab, cfg)
}

func TestTopDownFailures(t *testing.T) {
	algtest.CheckCommonFailures(t, New())
}
