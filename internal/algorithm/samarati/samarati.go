// Package samarati implements Samarati's k-minimal generalization algorithm
// (paper §6): binary search on the height of the generalization lattice for
// the lowest stratum containing a node that satisfies k-anonymity within
// the suppression budget, then pick, among the satisfying nodes of that
// stratum, the one preferred by the configured utility metric — the
// "preference information provided by the data recipient".
package samarati

import (
	"fmt"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/lattice"
)

// Samarati is the lattice-height binary-search k-anonymizer.
type Samarati struct{}

// New returns a Samarati instance.
func New() *Samarati { return &Samarati{} }

// Name implements algorithm.Algorithm.
func (*Samarati) Name() string { return "samarati" }

// Anonymize implements algorithm.Algorithm.
func (s *Samarati) Anonymize(t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	if err := cfg.Validate(t); err != nil {
		return nil, fmt.Errorf("samarati: %w", err)
	}
	maxLevels, err := cfg.Hierarchies.MaxLevels(t.Schema)
	if err != nil {
		return nil, fmt.Errorf("samarati: %w", err)
	}
	lat, err := lattice.New(maxLevels)
	if err != nil {
		return nil, fmt.Errorf("samarati: %w", err)
	}
	budget := int(cfg.MaxSuppression * float64(t.Len()))
	evaluated := 0
	satisfiable := func(h int) (lattice.Node, bool, error) {
		var found lattice.Node
		for _, n := range lat.AtHeight(h) {
			evaluated++
			_, _, small, err := algorithm.ApplyNode(t, cfg, n)
			if err != nil {
				return nil, false, err
			}
			if len(small) <= budget {
				// Return the first satisfying node as the witness; the
				// final pass below reconsiders the whole stratum.
				if found == nil {
					found = n
				}
			}
		}
		return found, found != nil, nil
	}
	// Binary search on height. k-anonymity-with-budget is monotone along
	// height in the sense Samarati exploits: if some node at height h
	// satisfies, some node at h+1 does too (any successor of the witness).
	lo, hi := 0, lat.Height()
	if _, ok, err := satisfiable(hi); err != nil {
		return nil, fmt.Errorf("samarati: %w", err)
	} else if !ok {
		return nil, fmt.Errorf("samarati: no generalization satisfies %d-anonymity within suppression budget %d", cfg.K, budget)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if _, ok, err := satisfiable(mid); err != nil {
			return nil, fmt.Errorf("samarati: %w", err)
		} else if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Among the satisfying nodes at the minimal height, pick the best by
	// the configured metric.
	var best lattice.Node
	bestCost := 0.0
	for _, n := range lat.AtHeight(lo) {
		_, _, small, err := algorithm.ApplyNode(t, cfg, n)
		if err != nil {
			return nil, fmt.Errorf("samarati: %w", err)
		}
		if len(small) > budget {
			continue
		}
		c, err := algorithm.NodeCost(t, cfg, n)
		if err != nil {
			return nil, fmt.Errorf("samarati: %w", err)
		}
		if best == nil || c < bestCost {
			best, bestCost = n.Clone(), c
		}
	}
	if best == nil {
		return nil, fmt.Errorf("samarati: internal error: minimal height %d has no satisfying node", lo)
	}
	return algorithm.FinishGlobal(s.Name(), t, cfg, best, map[string]float64{
		"nodes_evaluated": float64(evaluated),
		"minimal_height":  float64(lo),
	})
}
