// Package samarati implements Samarati's k-minimal generalization algorithm
// (paper §6): binary search on the height of the generalization lattice for
// the lowest stratum containing a node that satisfies k-anonymity within
// the suppression budget, then pick, among the satisfying nodes of that
// stratum, the one preferred by the configured utility metric — the
// "preference information provided by the data recipient".
//
// Each stratum is evaluated as one parallel batch on the shared evaluation
// engine; strata revisited by the binary search hit the engine's memo
// cache instead of re-partitioning the table.
package samarati

import (
	"context"
	"fmt"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/engine"
	"microdata/internal/lattice"
	"microdata/internal/telemetry"
)

// Samarati is the lattice-height binary-search k-anonymizer.
type Samarati struct{}

// New returns a Samarati instance.
func New() *Samarati { return &Samarati{} }

// Name implements algorithm.Algorithm.
func (*Samarati) Name() string { return "samarati" }

// Anonymize implements algorithm.Algorithm.
func (s *Samarati) Anonymize(t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	return s.AnonymizeContext(context.Background(), t, cfg)
}

// AnonymizeContext implements algorithm.ContextAlgorithm; the binary search
// aborts with the context's error as soon as cancellation is seen.
func (s *Samarati) AnonymizeContext(ctx context.Context, t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	ctx, sp := telemetry.Start(ctx, "samarati.search", telemetry.Int("k", cfg.K))
	defer sp.End()
	reg := telemetry.NewRunRegistry()
	strata := reg.Counter("samarati.strata_evaluated")
	eng, err := engine.NewContext(ctx, t, cfg)
	if err != nil {
		return nil, fmt.Errorf("samarati: %w", err)
	}
	lat := eng.Lattice()
	satisfiable := func(h int) (bool, error) {
		strata.Inc()
		evs, err := eng.EvaluateAll(ctx, lat.AtHeight(h))
		if err != nil {
			return false, err
		}
		for _, ev := range evs {
			if ev.Satisfies {
				return true, nil
			}
		}
		return false, nil
	}
	// Binary search on height. k-anonymity-with-budget is monotone along
	// height in the sense Samarati exploits: if some node at height h
	// satisfies, some node at h+1 does too (any successor of the witness).
	lo, hi := 0, lat.Height()
	if ok, err := satisfiable(hi); err != nil {
		return nil, fmt.Errorf("samarati: %w", err)
	} else if !ok {
		return nil, fmt.Errorf("samarati: no generalization satisfies %d-anonymity within suppression budget %d", cfg.K, eng.Budget())
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if ok, err := satisfiable(mid); err != nil {
			return nil, fmt.Errorf("samarati: %w", err)
		} else if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Among the satisfying nodes at the minimal height, pick the best by
	// the configured metric. The stratum is already memoized, so this pass
	// costs only the (lazily computed) node costs.
	evs, err := eng.EvaluateAll(ctx, lat.AtHeight(lo))
	if err != nil {
		return nil, fmt.Errorf("samarati: %w", err)
	}
	var best lattice.Node
	bestCost := 0.0
	for _, ev := range evs {
		if !ev.Satisfies {
			continue
		}
		c, err := ev.Cost()
		if err != nil {
			return nil, fmt.Errorf("samarati: %w", err)
		}
		if best == nil || c < bestCost {
			best, bestCost = ev.Node, c
		}
	}
	if best == nil {
		return nil, fmt.Errorf("samarati: internal error: minimal height %d has no satisfying node", lo)
	}
	reg.Gauge("samarati.nodes_evaluated").Set(float64(eng.Stats().NodesEvaluated))
	reg.Gauge("samarati.minimal_height").Set(float64(lo))
	stats := map[string]float64{}
	reg.Snapshot().MergeInto(stats, "samarati.")
	// strata_evaluated is telemetry-only (visible via -metrics); keep the
	// pre-telemetry Result.Stats key set byte-compatible.
	delete(stats, "strata_evaluated")
	eng.Stats().MergeInto(stats)
	telemetry.L().Info("samarati: search complete",
		"minimal_height", lo, "best_node", fmt.Sprint(best), "engine", eng.Stats().String())
	return algorithm.FinishGlobalContext(ctx, s.Name(), t, cfg, best, stats)
}
