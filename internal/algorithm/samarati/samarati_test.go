package samarati

import (
	"testing"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/algtest"
	"microdata/internal/lattice"
)

func TestSamaratiOnPaperTable(t *testing.T) {
	tab, cfg := algtest.PaperConfig(3)
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	algtest.KIsAchieved(t, r, 3)
	// The paper's T3a sits at node [1 1] (height 2) and is 3-anonymous
	// with no suppression, so the minimal satisfying height is at most 2.
	if h := r.Stats["minimal_height"]; h > 2 {
		t.Errorf("minimal height = %v, but [1 1] already satisfies k=3", h)
	}
	if r.Levels.Height() != int(r.Stats["minimal_height"]) {
		t.Errorf("returned node %v not at reported minimal height %v", r.Levels, r.Stats["minimal_height"])
	}
}

func TestSamaratiFindsHeightZeroForK1(t *testing.T) {
	tab, cfg := algtest.PaperConfig(1)
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Levels.Equal(lattice.Node{0, 0}) {
		t.Errorf("k=1 should return the bottom node, got %v", r.Levels)
	}
}

func TestSamaratiImpossibleK(t *testing.T) {
	// k equals table size: only the single-class generalizations work;
	// with k > N the config validator rejects, with k = N the top node
	// merges everything into one class of size N and must succeed.
	tab, cfg := algtest.PaperConfig(10)
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
}

func TestSamaratiOnCensus(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(400, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	algtest.CheckDeterminism(t, New(), tab, cfg)
	if r.Stats["nodes_evaluated"] < 1 {
		t.Error("stats missing nodes_evaluated")
	}
}

func TestSamaratiMetricChoiceAffectsNode(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(300, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metric = algorithm.MetricLM
	rLM, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metric = algorithm.MetricDM
	rDM, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Heights must agree (the minimal height is metric-independent).
	if rLM.Levels.Height() != rDM.Levels.Height() {
		t.Errorf("minimal height differs across metrics: %v vs %v", rLM.Levels, rDM.Levels)
	}
}

func TestSamaratiFailures(t *testing.T) {
	algtest.CheckCommonFailures(t, New())
}
