package samarati

import (
	"testing"

	"microdata/internal/algorithm/algtest"
	"microdata/internal/privacy"
)

func TestSamaratiWithLDiversityConstraint(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(300, 4, 51)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MinLDiversity = 2
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	if len(r.Suppressed) == 0 {
		col := tab.Column(tab.Schema.SensitiveIndex())
		ok, err := privacy.IsDistinctLDiverse(r.Partition, col, 2)
		if err != nil || !ok {
			t.Fatalf("result not 2-diverse: %v, %v", ok, err)
		}
	}
	// Constrained minimal height can only be at or above the plain one.
	plain := cfg
	plain.MinLDiversity = 0
	r0, err := New().Anonymize(tab, plain)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats["minimal_height"] < r0.Stats["minimal_height"] {
		t.Errorf("constrained height %v below unconstrained %v",
			r.Stats["minimal_height"], r0.Stats["minimal_height"])
	}
}
