package optimal

import (
	"math"
	"testing"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/algtest"
	"microdata/internal/algorithm/datafly"
	"microdata/internal/algorithm/samarati"
	"microdata/internal/lattice"
)

func TestOptimalOnPaperTable(t *testing.T) {
	tab, cfg := algtest.PaperConfig(3)
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	algtest.KIsAchieved(t, r, 3)
	// The sweep must touch the full lattice: 6 zip levels x 5 age levels.
	if got := r.Stats["nodes_evaluated"]; got != 30 {
		t.Errorf("evaluated %v nodes, want 30", got)
	}
}

func TestOptimalIsNoWorseThanHeuristics(t *testing.T) {
	tab, cfg := algtest.PaperConfig(3)
	opt, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	optCost, err := algorithm.ResultCost(opt, tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []algorithm.Algorithm{datafly.New(), samarati.New()} {
		r, err := alg.Anonymize(tab, cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		c, err := algorithm.ResultCost(r, tab, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if optCost > c+1e-12 {
			t.Errorf("optimal cost %v worse than %s cost %v", optCost, alg.Name(), c)
		}
	}
}

func TestOptimalAgainstBruteForceOnCensus(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(150, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	// Re-verify by brute force: no feasible node has lower cost.
	ml, _ := cfg.Hierarchies.MaxLevels(tab.Schema)
	best := math.Inf(1)
	lattice.Must(ml).All(func(n lattice.Node) bool {
		c, err := algorithm.NodeCost(tab, cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		if c < best {
			best = c
		}
		return true
	})
	got, err := algorithm.ResultCost(r, tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-best) > 1e-9 {
		t.Errorf("optimal returned cost %v, brute force found %v", got, best)
	}
}

func TestOptimalMetrics(t *testing.T) {
	for _, m := range []algorithm.Metric{algorithm.MetricLM, algorithm.MetricDM, algorithm.MetricPrec} {
		tab, cfg := algtest.PaperConfig(3)
		cfg.Metric = m
		r, err := New().Anonymize(tab, cfg)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		algtest.CheckResult(t, tab, cfg, r)
	}
}

func TestOptimalFailures(t *testing.T) {
	algtest.CheckCommonFailures(t, New())
}
