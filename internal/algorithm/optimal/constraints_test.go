package optimal

import (
	"testing"

	"microdata/internal/algorithm/algtest"
	"microdata/internal/privacy"
)

func TestOptimalWithLDiversityConstraint(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(300, 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MinLDiversity = 3
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	if len(r.Suppressed) == 0 {
		// Fully retained: the partition itself must be 3-diverse.
		col := tab.Column(tab.Schema.SensitiveIndex())
		ok, err := privacy.IsDistinctLDiverse(r.Partition, col, 3)
		if err != nil || !ok {
			t.Fatalf("result not 3-diverse: %v, %v", ok, err)
		}
	}
	// The constrained optimum can never be cheaper than the unconstrained
	// one (smaller feasible set).
	unconstrained := cfg
	unconstrained.MinLDiversity = 0
	r0, err := New().Anonymize(tab, unconstrained)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Stats["best_cost"] > r.Stats["best_cost"]+1e-12 {
		t.Errorf("unconstrained cost %v > constrained %v", r0.Stats["best_cost"], r.Stats["best_cost"])
	}
}

func TestOptimalWithTClosenessConstraint(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(300, 4, 22)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxTCloseness = 0.35
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	if len(r.Suppressed) == 0 {
		col := tab.Column(tab.Schema.SensitiveIndex())
		got, err := privacy.TCloseness(r.Partition, col, false)
		if err != nil {
			t.Fatal(err)
		}
		if got > 0.35+1e-9 {
			t.Errorf("t-closeness %v exceeds the 0.35 bound", got)
		}
	}
}

func TestOptimalImpossibleConstraintFails(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(100, 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	// More distinct sensitive values than exist in the data: infeasible
	// at every node even with full generalization.
	cfg.MinLDiversity = 99
	cfg.MaxSuppression = 0
	if _, err := New().Anonymize(tab, cfg); err == nil {
		t.Error("impossible ℓ requirement should fail")
	}
}
