// Package optimal implements an exhaustive full-domain search in the spirit
// of Bayardo–Agrawal's optimal k-anonymization (paper §6): enumerate every
// node of the generalization lattice, keep those satisfying k-anonymity
// within the suppression budget, and return the global utility optimum
// under the configured metric.
//
// Unlike the published algorithm — which searches a much larger
// set-enumeration space of value orderings with powerful pruning — this
// stand-in guarantees optimality over the full-domain lattice only, which
// is the search space every other global-recoding baseline here shares, so
// cross-algorithm comparisons stay apples-to-apples (DESIGN.md §5).
//
// The sweep runs on the shared evaluation engine: the whole lattice is
// evaluated as one parallel batch of precomputed signature fragments, and
// only the winning node is materialized.
package optimal

import (
	"context"
	"fmt"
	"math"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/engine"
	"microdata/internal/lattice"
	"microdata/internal/telemetry"
)

// Optimal is the exhaustive lattice-search k-anonymizer.
type Optimal struct{}

// New returns an Optimal instance.
func New() *Optimal { return &Optimal{} }

// Name implements algorithm.Algorithm.
func (*Optimal) Name() string { return "optimal" }

// Anonymize implements algorithm.Algorithm.
func (o *Optimal) Anonymize(t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	return o.AnonymizeContext(context.Background(), t, cfg)
}

// AnonymizeContext implements algorithm.ContextAlgorithm; the exhaustive
// sweep aborts with the context's error as soon as cancellation is seen.
func (o *Optimal) AnonymizeContext(ctx context.Context, t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	ctx, sp := telemetry.Start(ctx, "optimal.search", telemetry.Int("k", cfg.K))
	defer sp.End()
	reg := telemetry.NewRunRegistry()
	eng, err := engine.NewContext(ctx, t, cfg)
	if err != nil {
		return nil, fmt.Errorf("optimal: %w", err)
	}
	evs, err := eng.EvaluateAll(ctx, eng.Lattice().Nodes())
	if err != nil {
		return nil, fmt.Errorf("optimal: %w", err)
	}
	var best lattice.Node
	bestCost := math.Inf(1)
	for _, ev := range evs {
		c, err := ev.Cost()
		if err != nil {
			return nil, fmt.Errorf("optimal: %w", err)
		}
		if c < bestCost {
			best, bestCost = ev.Node, c
		}
	}
	if best == nil || math.IsInf(bestCost, 1) {
		return nil, fmt.Errorf("optimal: no generalization satisfies %d-anonymity within the suppression budget", cfg.K)
	}
	reg.Gauge("optimal.nodes_evaluated").Set(float64(eng.Stats().NodesEvaluated))
	reg.Gauge("optimal.best_cost").Set(bestCost)
	stats := map[string]float64{}
	reg.Snapshot().MergeInto(stats, "optimal.")
	eng.Stats().MergeInto(stats)
	telemetry.L().Info("optimal: exhaustive sweep complete",
		"best_cost", bestCost, "best_node", fmt.Sprint(best), "engine", eng.Stats().String())
	return algorithm.FinishGlobalContext(ctx, o.Name(), t, cfg, best, stats)
}
