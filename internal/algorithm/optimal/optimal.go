// Package optimal implements an exhaustive full-domain search in the spirit
// of Bayardo–Agrawal's optimal k-anonymization (paper §6): enumerate every
// node of the generalization lattice, keep those satisfying k-anonymity
// within the suppression budget, and return the global utility optimum
// under the configured metric.
//
// Unlike the published algorithm — which searches a much larger
// set-enumeration space of value orderings with powerful pruning — this
// stand-in guarantees optimality over the full-domain lattice only, which
// is the search space every other global-recoding baseline here shares, so
// cross-algorithm comparisons stay apples-to-apples (DESIGN.md §5).
package optimal

import (
	"fmt"
	"math"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/lattice"
)

// Optimal is the exhaustive lattice-search k-anonymizer.
type Optimal struct{}

// New returns an Optimal instance.
func New() *Optimal { return &Optimal{} }

// Name implements algorithm.Algorithm.
func (*Optimal) Name() string { return "optimal" }

// Anonymize implements algorithm.Algorithm.
func (o *Optimal) Anonymize(t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	if err := cfg.Validate(t); err != nil {
		return nil, fmt.Errorf("optimal: %w", err)
	}
	maxLevels, err := cfg.Hierarchies.MaxLevels(t.Schema)
	if err != nil {
		return nil, fmt.Errorf("optimal: %w", err)
	}
	lat, err := lattice.New(maxLevels)
	if err != nil {
		return nil, fmt.Errorf("optimal: %w", err)
	}
	var best lattice.Node
	bestCost := math.Inf(1)
	evaluated := 0
	var sweepErr error
	lat.All(func(n lattice.Node) bool {
		evaluated++
		c, err := algorithm.NodeCost(t, cfg, n)
		if err != nil {
			sweepErr = err
			return false
		}
		if c < bestCost {
			best, bestCost = n.Clone(), c
		}
		return true
	})
	if sweepErr != nil {
		return nil, fmt.Errorf("optimal: %w", sweepErr)
	}
	if best == nil || math.IsInf(bestCost, 1) {
		return nil, fmt.Errorf("optimal: no generalization satisfies %d-anonymity within the suppression budget", cfg.K)
	}
	return algorithm.FinishGlobal(o.Name(), t, cfg, best, map[string]float64{
		"nodes_evaluated": float64(evaluated),
		"best_cost":       bestCost,
	})
}
