package algorithm

import (
	"math"
	"strings"
	"testing"

	"microdata/internal/dataset"
	"microdata/internal/eqclass"
	"microdata/internal/hierarchy"
	"microdata/internal/lattice"
)

func schema3() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: "ZipCode", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "Age", Kind: dataset.Numeric, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "MaritalStatus", Kind: dataset.Categorical, Role: dataset.Sensitive},
	)
}

func hierSet() hierarchy.Set {
	return hierarchy.MustSet(
		hierarchy.MustPrefixMask("ZipCode", 5, 10),
		hierarchy.MustIntervals("Age", 0, 100,
			hierarchy.IntervalLevel{Width: 10, Origin: 5},
			hierarchy.IntervalLevel{Width: 20, Origin: 15},
			hierarchy.IntervalLevel{Width: 20, Origin: 0},
		),
	)
}

func table() *dataset.Table {
	t := dataset.NewTable(schema3())
	rows := []struct {
		zip     string
		age     float64
		marital string
	}{
		{"13053", 28, "CF-Spouse"}, {"13268", 41, "Separated"},
		{"13268", 39, "Never Married"}, {"13053", 26, "CF-Spouse"},
		{"13253", 50, "Divorced"}, {"13253", 55, "Spouse Absent"},
		{"13250", 49, "Divorced"}, {"13052", 31, "Spouse Present"},
		{"13269", 42, "Separated"}, {"13250", 47, "Separated"},
	}
	for _, r := range rows {
		t.MustAppend(dataset.StrVal(r.zip), dataset.NumVal(r.age), dataset.StrVal(r.marital))
	}
	return t
}

func TestConfigValidate(t *testing.T) {
	tab := table()
	good := Config{K: 3, Hierarchies: hierSet()}
	if err := good.Validate(tab); err != nil {
		t.Fatal(err)
	}
	cases := []Config{
		{K: 0, Hierarchies: hierSet()},
		{K: 11, Hierarchies: hierSet()},
		{K: 3},
		{K: 3, Hierarchies: hierSet(), MaxSuppression: -0.1},
		{K: 3, Hierarchies: hierSet(), MaxSuppression: 1.1},
		{K: 3, Hierarchies: hierSet(), MaxSuppression: math.NaN()},
		{K: 3, Hierarchies: hierarchy.MustSet(hierarchy.MustPrefixMask("ZipCode", 5, 10))},
	}
	for i, c := range cases {
		if err := c.Validate(tab); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
	if err := good.Validate(nil); err == nil {
		t.Error("nil table should fail")
	}
	if err := good.Validate(dataset.NewTable(schema3())); err == nil {
		t.Error("empty table should fail")
	}
}

func TestMetricString(t *testing.T) {
	if MetricLM.String() != "LM" || MetricDM.String() != "DM" || MetricPrec.String() != "Prec" {
		t.Error("metric names mismatch")
	}
	if !strings.Contains(Metric(9).String(), "9") {
		t.Error("unknown metric should include code")
	}
}

func TestApplyNode(t *testing.T) {
	tab := table()
	anon, p, small, err := ApplyNode(tab, Config{K: 3, Hierarchies: hierSet()}, lattice.Node{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(small) != 0 {
		t.Errorf("T3a levels are 3-anonymous; small = %v", small)
	}
	if p.MinSize() != 3 || anon.At(0, 0).String() != "1305*" {
		t.Errorf("unexpected generalization: min=%d cell=%v", p.MinSize(), anon.At(0, 0))
	}
	// k=4 at T3a levels leaves the two 3-classes undersized.
	_, _, small, err = ApplyNode(tab, Config{K: 4, Hierarchies: hierSet()}, lattice.Node{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(small) != 6 {
		t.Errorf("small = %v, want the 6 rows of the two 3-classes", small)
	}
	if _, _, _, err := ApplyNode(tab, Config{K: 3, Hierarchies: hierSet()}, lattice.Node{9, 9}); err == nil {
		t.Error("invalid node should fail")
	}
}

func TestSatisfiesK(t *testing.T) {
	tab := table()
	anon, p, _, err := ApplyNode(tab, Config{K: 3, Hierarchies: hierSet()}, lattice.Node{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !SatisfiesK(p, anon, 3) {
		t.Error("T3a should satisfy k=3")
	}
	if SatisfiesK(p, anon, 4) {
		t.Error("T3a should not satisfy k=4")
	}
	// Suppress the two undersized classes for k=4: the star class is
	// exempt regardless of its size.
	_, _, small, _ := ApplyNode(tab, Config{K: 4, Hierarchies: hierSet()}, lattice.Node{1, 1})
	hierarchy.SuppressRows(anon, small)
	p2, _ := eqclass.FromTable(anon)
	if !SatisfiesK(p2, anon, 4) {
		t.Error("after suppressing undersized classes, k=4 should hold")
	}
	empty, _ := eqclass.FromGroups(0, nil)
	if SatisfiesK(empty, dataset.NewTable(schema3()), 1) {
		t.Error("empty partition never satisfies")
	}
}

func TestFinishGlobal(t *testing.T) {
	tab := table()
	cfg := Config{K: 3, Hierarchies: hierSet()}
	r, err := FinishGlobal("test", tab, cfg, lattice.Node{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Algorithm != "test" || r.Table.Len() != 10 || len(r.Suppressed) != 0 {
		t.Errorf("result = %+v", r)
	}
	if r.Stats["suppressed"] != 0 {
		t.Errorf("stats = %v", r.Stats)
	}
	// k=4 at node [1 1] needs 6 suppressions; without budget it fails.
	cfg.K = 4
	if _, err := FinishGlobal("test", tab, cfg, lattice.Node{1, 1}, nil); err == nil {
		t.Error("over-budget suppression should fail")
	}
	cfg.MaxSuppression = 0.6
	r, err = FinishGlobal("test", tab, cfg, lattice.Node{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Suppressed) != 6 {
		t.Errorf("suppressed %d rows, want 6", len(r.Suppressed))
	}
	for _, row := range r.Suppressed {
		if !r.Table.At(row, 0).IsSuppressed() {
			t.Errorf("row %d not star", row)
		}
	}
}

func TestNodeCost(t *testing.T) {
	tab := table()
	cfg := Config{K: 3, Hierarchies: hierSet(), Metric: MetricLM}
	c0, err := NodeCost(tab, cfg, lattice.Node{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Bottom node is not 3-anonymous and has no budget: infeasible.
	if !math.IsInf(c0, 1) {
		t.Errorf("bottom node cost = %v, want +Inf", c0)
	}
	c1, err := NodeCost(tab, cfg, lattice.Node{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NodeCost(tab, cfg, lattice.Node{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !(c1 < c2) {
		t.Errorf("LM cost should grow with generalization: %v vs %v", c1, c2)
	}
	// DM: T3a yields 34, T3b 58.
	cfg.Metric = MetricDM
	d1, _ := NodeCost(tab, cfg, lattice.Node{1, 1})
	d2, _ := NodeCost(tab, cfg, lattice.Node{2, 2})
	if d1 != 34 || d2 != 58 {
		t.Errorf("DM costs = %v, %v; want 34, 58", d1, d2)
	}
	// Prec is negated: less generalization = lower (better) cost.
	cfg.Metric = MetricPrec
	p1, _ := NodeCost(tab, cfg, lattice.Node{1, 1})
	p2, _ := NodeCost(tab, cfg, lattice.Node{2, 2})
	if !(p1 < p2) {
		t.Errorf("negated precision should grow with generalization: %v vs %v", p1, p2)
	}
	cfg.Metric = Metric(77)
	if _, err := NodeCost(tab, cfg, lattice.Node{1, 1}); err == nil {
		t.Error("unknown metric should fail")
	}
}

func TestResultCost(t *testing.T) {
	tab := table()
	cfg := Config{K: 3, Hierarchies: hierSet(), Metric: MetricLM}
	r, err := FinishGlobal("test", tab, cfg, lattice.Node{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ResultCost(r, tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := NodeCost(tab, cfg, lattice.Node{1, 1})
	if math.Abs(c-direct) > 1e-12 {
		t.Errorf("ResultCost %v != NodeCost %v", c, direct)
	}
	// Local-recoding result (nil Levels) under MetricPrec falls back to LM.
	cfg.Metric = MetricPrec
	r.Levels = nil
	if _, err := ResultCost(r, tab, cfg); err != nil {
		t.Errorf("nil-Levels precision fallback failed: %v", err)
	}
}
