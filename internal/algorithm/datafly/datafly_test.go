package datafly

import (
	"testing"

	"microdata/internal/algorithm/algtest"
)

func TestDataflyOnPaperTable(t *testing.T) {
	tab, cfg := algtest.PaperConfig(3)
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	algtest.KIsAchieved(t, r, 3)
	if r.Levels == nil {
		t.Error("datafly is global recoding; Levels must be set")
	}
	if r.Stats["generalization_steps"] < 1 {
		t.Error("T1 is not 3-anonymous raw; at least one step expected")
	}
}

func TestDataflyAllKsOnPaperTable(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 5, 10} {
		tab, cfg := algtest.PaperConfig(k)
		r, err := New().Anonymize(tab, cfg)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		algtest.CheckResult(t, tab, cfg, r)
	}
}

func TestDataflyOnCensus(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(400, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	algtest.CheckDeterminism(t, New(), tab, cfg)
}

func TestDataflyWithSuppressionBudget(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(300, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxSuppression = 0.1
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	// A tighter budget cannot produce a less generalized node.
	cfg.MaxSuppression = 0
	r0, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Levels.Height() < r.Levels.Height() {
		t.Errorf("zero-budget run found lower node %v than budgeted run %v", r0.Levels, r.Levels)
	}
}

func TestDataflyFailures(t *testing.T) {
	algtest.CheckCommonFailures(t, New())
}

func TestDataflyIdentityWhenAlreadyAnonymous(t *testing.T) {
	tab, cfg := algtest.PaperConfig(1)
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every table is 1-anonymous: no generalization needed.
	if r.Levels.Height() != 0 {
		t.Errorf("k=1 should keep the bottom node, got %v", r.Levels)
	}
}
