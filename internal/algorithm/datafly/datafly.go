// Package datafly implements Sweeney's Datafly heuristic (paper §6): while
// the table is not k-anonymous (beyond the suppression budget), generalize
// the quasi-identifier with the most distinct values by one level; finally
// suppress the tuples that still sit in undersized classes.
//
// Datafly is a greedy global-recoding algorithm: fast, but its
// most-distinct-first rule often over-generalizes — one of the behaviours
// the paper's comparison framework is designed to expose.
//
// The greedy walk runs on the shared evaluation engine: each step checks
// the current node from precomputed signature fragments and reads the
// per-attribute distinct counts straight off the fragment tables, so no
// intermediate generalized table is ever materialized.
package datafly

import (
	"context"
	"fmt"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/engine"
	"microdata/internal/lattice"
	"microdata/internal/telemetry"
)

// Datafly is Sweeney's heuristic k-anonymizer.
type Datafly struct{}

// New returns a Datafly instance.
func New() *Datafly { return &Datafly{} }

// Name implements algorithm.Algorithm.
func (*Datafly) Name() string { return "datafly" }

// Anonymize implements algorithm.Algorithm.
func (d *Datafly) Anonymize(t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	return d.AnonymizeContext(context.Background(), t, cfg)
}

// AnonymizeContext implements algorithm.ContextAlgorithm; the greedy walk
// aborts with the context's error as soon as cancellation is seen.
func (d *Datafly) AnonymizeContext(ctx context.Context, t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	ctx, sp := telemetry.Start(ctx, "datafly.search", telemetry.Int("k", cfg.K))
	defer sp.End()
	reg := telemetry.NewRunRegistry()
	steps := reg.Counter("datafly.generalization_steps")
	eng, err := engine.NewContext(ctx, t, cfg)
	if err != nil {
		return nil, fmt.Errorf("datafly: %w", err)
	}
	maxLevels := eng.Lattice().MaxLevels()
	node := make(lattice.Node, eng.NumQI())
	for {
		ev, err := eng.Evaluate(ctx, node)
		if err != nil {
			return nil, fmt.Errorf("datafly: %w", err)
		}
		if ev.Satisfies {
			break
		}
		// Generalize the attribute with the most distinct values among
		// those not yet at their maximum level.
		best, bestDistinct := -1, -1
		for li := range node {
			if node[li] >= maxLevels[li] {
				continue
			}
			distinct, err := eng.DistinctAtLevel(li, node[li])
			if err != nil {
				return nil, fmt.Errorf("datafly: %w", err)
			}
			if distinct > bestDistinct {
				best, bestDistinct = li, distinct
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("datafly: cannot reach %d-anonymity even at full generalization with suppression budget %d", cfg.K, eng.Budget())
		}
		node[best]++
		steps.Inc()
	}
	stats := map[string]float64{}
	reg.Snapshot().MergeInto(stats, "datafly.")
	eng.Stats().MergeInto(stats)
	telemetry.L().Info("datafly: search complete",
		"steps", steps.Value(), "node", fmt.Sprint(node), "engine", eng.Stats().String())
	return algorithm.FinishGlobalContext(ctx, d.Name(), t, cfg, node, stats)
}
