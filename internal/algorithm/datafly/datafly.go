// Package datafly implements Sweeney's Datafly heuristic (paper §6): while
// the table is not k-anonymous (beyond the suppression budget), generalize
// the quasi-identifier with the most distinct values by one level; finally
// suppress the tuples that still sit in undersized classes.
//
// Datafly is a greedy global-recoding algorithm: fast, but its
// most-distinct-first rule often over-generalizes — one of the behaviours
// the paper's comparison framework is designed to expose.
package datafly

import (
	"fmt"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/hierarchy"
	"microdata/internal/lattice"
)

// Datafly is Sweeney's heuristic k-anonymizer.
type Datafly struct{}

// New returns a Datafly instance.
func New() *Datafly { return &Datafly{} }

// Name implements algorithm.Algorithm.
func (*Datafly) Name() string { return "datafly" }

// Anonymize implements algorithm.Algorithm.
func (d *Datafly) Anonymize(t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	if err := cfg.Validate(t); err != nil {
		return nil, fmt.Errorf("datafly: %w", err)
	}
	qi := t.Schema.QuasiIdentifiers()
	maxLevels, err := cfg.Hierarchies.MaxLevels(t.Schema)
	if err != nil {
		return nil, fmt.Errorf("datafly: %w", err)
	}
	node := make(lattice.Node, len(qi))
	budget := int(cfg.MaxSuppression * float64(t.Len()))
	steps := 0
	for {
		anon, err := hierarchy.GeneralizeTable(t, cfg.Hierarchies, node)
		if err != nil {
			return nil, fmt.Errorf("datafly: %w", err)
		}
		_, _, small, err := algorithm.ApplyNode(t, cfg, node)
		if err != nil {
			return nil, fmt.Errorf("datafly: %w", err)
		}
		if len(small) <= budget {
			break
		}
		// Generalize the attribute with the most distinct values among
		// those not yet at their maximum level.
		best, bestDistinct := -1, -1
		for li, j := range qi {
			if node[li] >= maxLevels[li] {
				continue
			}
			if d := anon.DistinctCount(j); d > bestDistinct {
				best, bestDistinct = li, d
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("datafly: cannot reach %d-anonymity even at full generalization with suppression budget %d", cfg.K, budget)
		}
		node[best]++
		steps++
	}
	return algorithm.FinishGlobal(d.Name(), t, cfg, node, map[string]float64{
		"generalization_steps": float64(steps),
	})
}
