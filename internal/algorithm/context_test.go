package algorithm_test

import (
	"context"
	"errors"
	"testing"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/algtest"
	"microdata/internal/algorithm/mondrian"
	"microdata/internal/algorithm/optimal"
	"microdata/internal/algorithm/samarati"
	"microdata/internal/dataset"
	"microdata/internal/engine"
)

// TestAnonymizeContextCancellation pins the satellite requirement: a
// context cancelled mid-search makes a ContextAlgorithm return promptly
// with an error wrapping context.Canceled that still carries the partial
// engine counters.
func TestAnonymizeContextCancellation(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(150, 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []algorithm.Algorithm{optimal.New(), samarati.New()} {
		_, err := algorithm.AnonymizeContext(ctx, alg, tab, cfg)
		if err == nil {
			t.Fatalf("%s: cancelled search must fail", alg.Name())
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: error %v does not wrap context.Canceled", alg.Name(), err)
		}
		var canceled *engine.Canceled
		if !errors.As(err, &canceled) {
			t.Fatalf("%s: error %T carries no partial engine stats", alg.Name(), err)
		}
	}
}

// TestAnonymizeContextCompletesUncancelled checks the context entry point
// returns the same result as the plain one when never cancelled.
func TestAnonymizeContextCompletesUncancelled(t *testing.T) {
	tab, cfg := algtest.PaperConfig(3)
	plain, err := optimal.New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := algorithm.AnonymizeContext(context.Background(), optimal.New(), tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Levels.Equal(viaCtx.Levels) {
		t.Fatalf("context path picked %v, plain path %v", viaCtx.Levels, plain.Levels)
	}
}

// fallbackAlg wraps an algorithm while hiding its context entry point, so
// the AnonymizeContext fallback path stays exercised now that every shipped
// algorithm implements ContextAlgorithm.
type fallbackAlg struct{ inner algorithm.Algorithm }

func (f fallbackAlg) Name() string { return f.inner.Name() }
func (f fallbackAlg) Anonymize(tab *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	return f.inner.Anonymize(tab, cfg)
}

// TestAnonymizeContextFallback: algorithms without a context entry point
// still run to completion under a live context, and refuse to start under
// a cancelled one.
func TestAnonymizeContextFallback(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(60, 3, 22)
	if err != nil {
		t.Fatal(err)
	}
	alg := fallbackAlg{mondrian.New()}
	if _, ok := interface{}(alg).(algorithm.ContextAlgorithm); ok {
		t.Fatal("test premise broken: fallbackAlg must not implement ContextAlgorithm")
	}
	if _, err := algorithm.AnonymizeContext(context.Background(), alg, tab, cfg); err != nil {
		t.Fatalf("fallback run failed: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := algorithm.AnonymizeContext(ctx, alg, tab, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fallback returned %v, want context.Canceled wrap", err)
	}
}

// TestMondrianContextCancellation: mondrian's recursive partitioning (a
// local recoding with no engine) also honours cancellation now that it
// implements ContextAlgorithm.
func TestMondrianContextCancellation(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(60, 3, 22)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mondrian.New().AnonymizeContext(ctx, tab, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled mondrian returned %v, want context.Canceled wrap", err)
	}
}

// TestEngineStatsSurfaceInResults checks every engine-backed algorithm
// reports the engine_* counters through Result.Stats.
func TestEngineStatsSurfaceInResults(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(100, 3, 23)
	if err != nil {
		t.Fatal(err)
	}
	r, err := optimal.New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"engine_nodes_evaluated", "engine_cache_hits", "engine_cache_misses", "engine_rows_scanned"} {
		if _, ok := r.Stats[key]; !ok {
			t.Errorf("Result.Stats missing %q: %v", key, r.Stats)
		}
	}
	if r.Stats["engine_nodes_evaluated"] != r.Stats["nodes_evaluated"] {
		t.Errorf("engine count %v != reported nodes_evaluated %v",
			r.Stats["engine_nodes_evaluated"], r.Stats["nodes_evaluated"])
	}
}
