package incognito

import (
	"testing"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/algtest"
	"microdata/internal/lattice"
)

func TestIncognitoOnPaperTable(t *testing.T) {
	tab, cfg := algtest.PaperConfig(3)
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	algtest.KIsAchieved(t, r, 3)
	if r.Stats["minimal_nodes"] < 1 {
		t.Error("no minimal nodes reported")
	}
}

func TestMinimalNodesAreMinimalAndSatisfying(t *testing.T) {
	tab, cfg := algtest.PaperConfig(3)
	minimal, evaluated, err := New().MinimalNodes(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(minimal) == 0 {
		t.Fatal("no minimal nodes")
	}
	if evaluated < len(minimal) {
		t.Errorf("evaluated %d < minimal %d", evaluated, len(minimal))
	}
	for _, n := range minimal {
		_, _, small, err := algorithm.ApplyNode(tab, cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(small) > 0 {
			t.Errorf("minimal node %v does not satisfy k", n)
		}
	}
	// No minimal node may dominate another (both would not be minimal)
	// — with nested ladders this is exact; the paper ladder is mostly
	// nested except the level-2/3 age anchors, so we only check pairwise
	// non-identity plus no strict component-wise ordering.
	for i := range minimal {
		for j := range minimal {
			if i != j && minimal[i].AtMost(minimal[j]) && !minimal[i].Equal(minimal[j]) {
				t.Errorf("node %v is below fellow minimal node %v", minimal[i], minimal[j])
			}
		}
	}
}

func TestIncognitoPruningSavesEvaluations(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(300, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, evaluated, err := New().MinimalNodes(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := cfg.Hierarchies.MaxLevels(tab.Schema)
	if err != nil {
		t.Fatal(err)
	}
	total := lattice.Must(ml).Size()
	if evaluated >= total {
		t.Errorf("pruning ineffective: evaluated %d of %d nodes", evaluated, total)
	}
}

func TestIncognitoMatchesOptimalFeasibility(t *testing.T) {
	// Every node at or above a minimal node must satisfy k; every node
	// strictly below all minimal nodes must not (checked on the nested
	// census ladders where monotonicity holds).
	tab, cfg, err := algtest.CensusConfig(200, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxSuppression = 0
	minimal, _, err := New().MinimalNodes(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ml, _ := cfg.Hierarchies.MaxLevels(tab.Schema)
	lat := lattice.Must(ml)
	checked := 0
	lat.All(func(n lattice.Node) bool {
		if checked >= 150 { // bound the sweep for test time
			return false
		}
		checked++
		aboveSome := false
		for _, m := range minimal {
			if m.AtMost(n) {
				aboveSome = true
				break
			}
		}
		_, _, small, err := algorithm.ApplyNode(tab, cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		satisfies := len(small) == 0
		if aboveSome && !satisfies {
			t.Fatalf("node %v above a minimal node but unsatisfying (monotonicity broken)", n)
		}
		if !aboveSome && satisfies {
			t.Fatalf("satisfying node %v missed by the sweep", n)
		}
		return true
	})
}

func TestIncognitoOnCensusDeterminism(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(300, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	algtest.CheckResult(t, tab, cfg, r)
	algtest.CheckDeterminism(t, New(), tab, cfg)
}

func TestIncognitoFailures(t *testing.T) {
	algtest.CheckCommonFailures(t, New())
}
