package incognito

import (
	"fmt"
	"sort"
	"strings"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/eqclass"
	"microdata/internal/hierarchy"
	"microdata/internal/lattice"
)

// SubsetSweep runs the published Incognito's two-phase strategy: for each
// quasi-identifier subset of size i = 1..n, compute the set of subset
// lattice nodes whose generalization is k-anonymous over that subset
// alone; phase i+1's candidates are only the nodes whose every
// i-sized projection survived phase i (the subset property: a table that
// is k-anonymous over a set of attributes is k-anonymous over every
// subset). The survivors of phase n are exactly the full-domain
// k-anonymous nodes.
//
// Unlike MinimalNodes' direct sweep this pays for low-dimensional scans
// but prunes high-dimensional candidates much harder on selective data.
// The two must agree — TestSubsetSweepAgreesWithDirect pins it.
//
// Suppression budgets break the subset property (a node may be rescued by
// suppressing different rows per subset), so SubsetSweep requires
// cfg.MaxSuppression == 0 and no diversity constraints.
func (in *Incognito) SubsetSweep(t *dataset.Table, cfg algorithm.Config) ([]lattice.Node, int, error) {
	if err := cfg.Validate(t); err != nil {
		return nil, 0, fmt.Errorf("incognito: %w", err)
	}
	if cfg.MaxSuppression != 0 {
		return nil, 0, fmt.Errorf("incognito: subset sweep requires a zero suppression budget")
	}
	if cfg.MinLDiversity > 0 || cfg.MaxTCloseness > 0 || cfg.MinEntropyL > 0 || cfg.RecursiveC > 0 {
		return nil, 0, fmt.Errorf("incognito: subset sweep does not support diversity constraints")
	}
	qi := t.Schema.QuasiIdentifiers()
	maxLevels, err := cfg.Hierarchies.MaxLevels(t.Schema)
	if err != nil {
		return nil, 0, fmt.Errorf("incognito: %w", err)
	}
	n := len(qi)
	evaluated := 0

	// anonymousOverSubset checks k-anonymity of the table generalized at
	// the given levels, partitioned over ONLY the subset's columns.
	anonymousOverSubset := func(subset []int, levels []int) (bool, error) {
		evaluated++
		full := make(lattice.Node, n)
		for si, attr := range subset {
			full[attr] = levels[si]
		}
		anon, err := hierarchy.GeneralizeTable(t, cfg.Hierarchies, full)
		if err != nil {
			return false, err
		}
		cols := make([]int, len(subset))
		for si, attr := range subset {
			cols[si] = qi[attr]
		}
		p, err := eqclass.FromColumns(anon, cols)
		if err != nil {
			return false, err
		}
		return p.MinSize() >= cfg.K, nil
	}

	// survivors[key(subset)] = set of level-vector keys that passed.
	survivors := map[string]map[string][]int{}
	subsetKey := func(subset []int) string {
		parts := make([]string, len(subset))
		for i, a := range subset {
			parts[i] = fmt.Sprint(a)
		}
		return strings.Join(parts, ",")
	}
	levelsKey := func(levels []int) string { return fmt.Sprint(levels) }

	// Phase 1..n.
	var finalNodes []lattice.Node
	for size := 1; size <= n; size++ {
		for _, subset := range subsetsOf(n, size) {
			// Candidate nodes: the subset's lattice, pruned by (a) the
			// subset property against phase size-1 survivors and (b)
			// within-phase generalization monotonicity.
			maxs := make([]int, size)
			for si, attr := range subset {
				maxs[si] = maxLevels[attr]
			}
			lat, err := lattice.New(maxs)
			if err != nil {
				return nil, evaluated, fmt.Errorf("incognito: %w", err)
			}
			passed := map[string][]int{}
			// BFS by height with monotone propagation.
			known := map[string]bool{} // key -> satisfies
			for h := 0; h <= lat.Height(); h++ {
				for _, node := range lat.AtHeight(h) {
					key := levelsKey(node)
					// Monotone propagation from predecessors.
					inherited := false
					for _, p := range lat.Predecessors(node) {
						if known[levelsKey(p)] {
							inherited = true
							break
						}
					}
					if inherited {
						known[key] = true
						passed[key] = append([]int(nil), node...)
						continue
					}
					// Subset property: every (size-1)-projection must
					// have survived its phase.
					if size > 1 && !projectionsSurvive(subset, node, survivors, subsetKey, levelsKey) {
						continue
					}
					ok, err := anonymousOverSubset(subset, node)
					if err != nil {
						return nil, evaluated, fmt.Errorf("incognito: %w", err)
					}
					if ok {
						known[key] = true
						passed[key] = append([]int(nil), node...)
					}
				}
			}
			survivors[subsetKey(subset)] = passed
			if size == n {
				for _, levels := range passed {
					node := make(lattice.Node, n)
					copy(node, levels)
					finalNodes = append(finalNodes, node)
				}
			}
		}
	}
	sort.Slice(finalNodes, func(a, b int) bool { return finalNodes[a].Key() < finalNodes[b].Key() })
	return finalNodes, evaluated, nil
}

// projectionsSurvive checks the subset property for one candidate.
func projectionsSurvive(subset []int, levels []int, survivors map[string]map[string][]int,
	subsetKey func([]int) string, levelsKey func([]int) string) bool {
	for drop := range subset {
		sub := make([]int, 0, len(subset)-1)
		lv := make([]int, 0, len(subset)-1)
		for i := range subset {
			if i == drop {
				continue
			}
			sub = append(sub, subset[i])
			lv = append(lv, levels[i])
		}
		phase, ok := survivors[subsetKey(sub)]
		if !ok {
			return false
		}
		if _, ok := phase[levelsKey(lv)]; !ok {
			return false
		}
	}
	return true
}

// subsetsOf enumerates the size-k subsets of {0..n-1} in lexicographic
// order.
func subsetsOf(n, k int) [][]int {
	var out [][]int
	cur := make([]int, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i <= n-(k-len(cur)); i++ {
			cur = append(cur, i)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

// MinimalOf filters a node set down to its minimal elements under the
// component-wise order.
func MinimalOf(nodes []lattice.Node) []lattice.Node {
	var out []lattice.Node
	for i, n := range nodes {
		minimal := true
		for j, m := range nodes {
			if i != j && m.AtMost(n) && !m.Equal(n) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, n)
		}
	}
	return out
}
