// Package incognito implements an Incognito-style full-domain search (paper
// §6, LeFevre et al.): a bottom-up breadth-first sweep of the
// generalization lattice that exploits generalization monotonicity — once a
// node satisfies k-anonymity, all of its generalizations do — to prune, and
// returns the set of MINIMAL satisfying nodes, finishing with the one the
// configured utility metric prefers.
//
// Simplification vs. the published algorithm: Incognito derives its pruning
// from subset-of-quasi-identifier iterations; this implementation prunes
// directly on the full-QI lattice, which yields the same set of minimal
// full-domain k-anonymous nodes. Note that monotonicity assumes nested
// generalization ladders; non-nested ladders (the paper's own T3b/T4 age
// anchors!) may cause the sweep to label a node minimal that is not — the
// final result is still a valid k-anonymization because every returned node
// is verified directly.
//
// Each level of the breadth-first sweep batch-evaluates its non-inherited
// nodes in parallel on the shared evaluation engine. Within a stratum the
// inheritance checks consult only the previous stratum, so batching cannot
// change which nodes are evaluated.
package incognito

import (
	"context"
	"fmt"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/engine"
	"microdata/internal/lattice"
	"microdata/internal/telemetry"
)

// Incognito is the pruned full-domain lattice sweep.
type Incognito struct{}

// New returns an Incognito instance.
func New() *Incognito { return &Incognito{} }

// Name implements algorithm.Algorithm.
func (*Incognito) Name() string { return "incognito" }

// MinimalNodes sweeps the lattice bottom-up and returns every minimal node
// that satisfies k within the suppression budget, plus the number of nodes
// actually evaluated (pruned nodes are free).
func (in *Incognito) MinimalNodes(t *dataset.Table, cfg algorithm.Config) ([]lattice.Node, int, error) {
	eng, err := engine.New(t, cfg)
	if err != nil {
		return nil, 0, fmt.Errorf("incognito: %w", err)
	}
	minimal, err := in.minimalNodes(context.Background(), eng, nil)
	return minimal, int(eng.Stats().NodesEvaluated), err
}

// minimalNodes is the engine-backed sweep behind MinimalNodes. inherited, if
// non-nil, counts the nodes pruned by monotonicity (never evaluated).
func (in *Incognito) minimalNodes(ctx context.Context, eng *engine.Engine, inheritedC *telemetry.Counter) ([]lattice.Node, error) {
	lat := eng.Lattice()
	satisfying := map[string]bool{} // nodes known to satisfy
	var minimal []lattice.Node
	for h := 0; h <= lat.Height(); h++ {
		// Partition the stratum into nodes that inherit satisfaction from a
		// predecessor (free by monotonicity, never minimal) and nodes that
		// need a direct evaluation; batch the latter in parallel.
		stratum := lat.AtHeight(h)
		var fresh []lattice.Node
		for _, n := range stratum {
			inherited := false
			for _, p := range lat.Predecessors(n) {
				if satisfying[p.Key()] {
					inherited = true
					break
				}
			}
			if inherited {
				satisfying[n.Key()] = true
				if inheritedC != nil {
					inheritedC.Inc()
				}
			} else {
				fresh = append(fresh, n)
			}
		}
		evs, err := eng.EvaluateAll(ctx, fresh)
		if err != nil {
			return nil, fmt.Errorf("incognito: %w", err)
		}
		for _, ev := range evs {
			if ev.Satisfies {
				satisfying[ev.Node.Key()] = true
				minimal = append(minimal, ev.Node)
			}
		}
	}
	return minimal, nil
}

// Anonymize implements algorithm.Algorithm: among the minimal satisfying
// nodes, finish with the best one under the configured metric.
func (in *Incognito) Anonymize(t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	return in.AnonymizeContext(context.Background(), t, cfg)
}

// AnonymizeContext implements algorithm.ContextAlgorithm; the sweep aborts
// with the context's error as soon as cancellation is seen.
func (in *Incognito) AnonymizeContext(ctx context.Context, t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	ctx, sp := telemetry.Start(ctx, "incognito.search", telemetry.Int("k", cfg.K))
	defer sp.End()
	reg := telemetry.NewRunRegistry()
	eng, err := engine.NewContext(ctx, t, cfg)
	if err != nil {
		return nil, fmt.Errorf("incognito: %w", err)
	}
	minimal, err := in.minimalNodes(ctx, eng, reg.Counter("incognito.nodes_inherited"))
	if err != nil {
		return nil, err
	}
	if len(minimal) == 0 {
		return nil, fmt.Errorf("incognito: no generalization satisfies %d-anonymity within the suppression budget", cfg.K)
	}
	var best lattice.Node
	bestCost := 0.0
	for _, n := range minimal {
		ev, err := eng.Evaluate(ctx, n) // memoized from the sweep
		if err != nil {
			return nil, fmt.Errorf("incognito: %w", err)
		}
		c, err := ev.Cost()
		if err != nil {
			return nil, fmt.Errorf("incognito: %w", err)
		}
		if best == nil || c < bestCost {
			best, bestCost = n, c
		}
	}
	reg.Gauge("incognito.nodes_evaluated").Set(float64(eng.Stats().NodesEvaluated))
	reg.Gauge("incognito.minimal_nodes").Set(float64(len(minimal)))
	stats := map[string]float64{}
	reg.Snapshot().MergeInto(stats, "incognito.")
	delete(stats, "nodes_inherited") // telemetry-only; keep Result.Stats keys stable
	eng.Stats().MergeInto(stats)
	telemetry.L().Info("incognito: sweep complete",
		"minimal_nodes", len(minimal), "best_node", fmt.Sprint(best), "engine", eng.Stats().String())
	return algorithm.FinishGlobalContext(ctx, in.Name(), t, cfg, best, stats)
}
