// Package incognito implements an Incognito-style full-domain search (paper
// §6, LeFevre et al.): a bottom-up breadth-first sweep of the
// generalization lattice that exploits generalization monotonicity — once a
// node satisfies k-anonymity, all of its generalizations do — to prune, and
// returns the set of MINIMAL satisfying nodes, finishing with the one the
// configured utility metric prefers.
//
// Simplification vs. the published algorithm: Incognito derives its pruning
// from subset-of-quasi-identifier iterations; this implementation prunes
// directly on the full-QI lattice, which yields the same set of minimal
// full-domain k-anonymous nodes. Note that monotonicity assumes nested
// generalization ladders; non-nested ladders (the paper's own T3b/T4 age
// anchors!) may cause the sweep to label a node minimal that is not — the
// final result is still a valid k-anonymization because every returned node
// is verified directly.
package incognito

import (
	"fmt"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/lattice"
)

// Incognito is the pruned full-domain lattice sweep.
type Incognito struct{}

// New returns an Incognito instance.
func New() *Incognito { return &Incognito{} }

// Name implements algorithm.Algorithm.
func (*Incognito) Name() string { return "incognito" }

// MinimalNodes sweeps the lattice bottom-up and returns every minimal node
// that satisfies k within the suppression budget, plus the number of nodes
// actually evaluated (pruned nodes are free).
func (in *Incognito) MinimalNodes(t *dataset.Table, cfg algorithm.Config) ([]lattice.Node, int, error) {
	if err := cfg.Validate(t); err != nil {
		return nil, 0, fmt.Errorf("incognito: %w", err)
	}
	maxLevels, err := cfg.Hierarchies.MaxLevels(t.Schema)
	if err != nil {
		return nil, 0, fmt.Errorf("incognito: %w", err)
	}
	lat, err := lattice.New(maxLevels)
	if err != nil {
		return nil, 0, fmt.Errorf("incognito: %w", err)
	}
	budget := int(cfg.MaxSuppression * float64(t.Len()))
	satisfying := map[string]bool{} // nodes known to satisfy
	var minimal []lattice.Node
	evaluated := 0
	for h := 0; h <= lat.Height(); h++ {
		for _, n := range lat.AtHeight(h) {
			// If any predecessor satisfies, n satisfies by monotonicity
			// and is not minimal: propagate without evaluating.
			inherited := false
			for _, p := range lat.Predecessors(n) {
				if satisfying[p.Key()] {
					inherited = true
					break
				}
			}
			if inherited {
				satisfying[n.Key()] = true
				continue
			}
			evaluated++
			_, _, small, err := algorithm.ApplyNode(t, cfg, n)
			if err != nil {
				return nil, evaluated, fmt.Errorf("incognito: %w", err)
			}
			if len(small) <= budget {
				satisfying[n.Key()] = true
				minimal = append(minimal, n.Clone())
			}
		}
	}
	return minimal, evaluated, nil
}

// Anonymize implements algorithm.Algorithm: among the minimal satisfying
// nodes, finish with the best one under the configured metric.
func (in *Incognito) Anonymize(t *dataset.Table, cfg algorithm.Config) (*algorithm.Result, error) {
	minimal, evaluated, err := in.MinimalNodes(t, cfg)
	if err != nil {
		return nil, err
	}
	if len(minimal) == 0 {
		return nil, fmt.Errorf("incognito: no generalization satisfies %d-anonymity within the suppression budget", cfg.K)
	}
	var best lattice.Node
	bestCost := 0.0
	for _, n := range minimal {
		c, err := algorithm.NodeCost(t, cfg, n)
		if err != nil {
			return nil, fmt.Errorf("incognito: %w", err)
		}
		if best == nil || c < bestCost {
			best, bestCost = n, c
		}
	}
	return algorithm.FinishGlobal(in.Name(), t, cfg, best, map[string]float64{
		"nodes_evaluated": float64(evaluated),
		"minimal_nodes":   float64(len(minimal)),
	})
}
