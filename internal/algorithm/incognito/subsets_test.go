package incognito

import (
	"testing"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/algtest"
	"microdata/internal/lattice"
)

func TestSubsetsOf(t *testing.T) {
	got := subsetsOf(4, 2)
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("subsetsOf(4,2) = %v", got)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("subsetsOf(4,2) = %v", got)
			}
		}
	}
	if got := subsetsOf(3, 3); len(got) != 1 || len(got[0]) != 3 {
		t.Errorf("subsetsOf(3,3) = %v", got)
	}
}

// The published two-phase sweep and the direct lattice sweep must identify
// the same set of full-domain k-anonymous nodes.
func TestSubsetSweepAgreesWithDirect(t *testing.T) {
	for _, seed := range []int64{71, 72} {
		tab, cfg, err := algtest.CensusConfig(200, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg.MaxSuppression = 0
		// Ground truth: brute-force every node.
		ml, err := cfg.Hierarchies.MaxLevels(tab.Schema)
		if err != nil {
			t.Fatal(err)
		}
		truth := map[string]bool{}
		lattice.Must(ml).All(func(n lattice.Node) bool {
			_, _, small, err := algorithm.ApplyNode(tab, cfg, n)
			if err != nil {
				t.Fatal(err)
			}
			if len(small) == 0 {
				truth[n.Key()] = true
			}
			return true
		})
		// Subset sweep.
		nodes, evaluated, err := New().SubsetSweep(tab, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(nodes) != len(truth) {
			t.Fatalf("seed %d: subset sweep found %d nodes, truth has %d", seed, len(nodes), len(truth))
		}
		for _, n := range nodes {
			if !truth[n.Key()] {
				t.Fatalf("seed %d: subset sweep returned non-anonymous node %v", seed, n)
			}
		}
		if evaluated < 1 {
			t.Error("no evaluations counted")
		}
		// Minimal filtering agrees with the direct pruned sweep.
		minimal, _, err := New().MinimalNodes(tab, cfg)
		if err != nil {
			t.Fatal(err)
		}
		filtered := MinimalOf(nodes)
		if len(filtered) != len(minimal) {
			t.Fatalf("seed %d: MinimalOf(subset sweep) has %d nodes, direct sweep %d",
				seed, len(filtered), len(minimal))
		}
		direct := map[string]bool{}
		for _, n := range minimal {
			direct[n.Key()] = true
		}
		for _, n := range filtered {
			if !direct[n.Key()] {
				t.Fatalf("seed %d: minimal sets differ at %v", seed, n)
			}
		}
	}
}

func TestSubsetSweepRejectsSuppressionAndConstraints(t *testing.T) {
	tab, cfg, err := algtest.CensusConfig(100, 3, 73)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxSuppression = 0.05
	if _, _, err := New().SubsetSweep(tab, cfg); err == nil {
		t.Error("suppression budget should be rejected")
	}
	cfg.MaxSuppression = 0
	cfg.MinLDiversity = 2
	if _, _, err := New().SubsetSweep(tab, cfg); err == nil {
		t.Error("diversity constraints should be rejected")
	}
}

func TestMinimalOf(t *testing.T) {
	nodes := []lattice.Node{{1, 1}, {2, 1}, {1, 2}, {2, 2}, {0, 3}}
	min := MinimalOf(nodes)
	if len(min) != 2 {
		t.Fatalf("MinimalOf = %v", min)
	}
	keys := map[string]bool{}
	for _, n := range min {
		keys[n.Key()] = true
	}
	if !keys["[1 1]"] || !keys["[0 3]"] {
		t.Errorf("MinimalOf = %v", min)
	}
}
