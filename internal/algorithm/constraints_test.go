package algorithm

import (
	"math"
	"testing"

	"microdata/internal/dataset"
	"microdata/internal/eqclass"
	"microdata/internal/lattice"
	"microdata/internal/privacy"
)

func TestConfigValidateConstraints(t *testing.T) {
	tab := table()
	good := Config{K: 2, Hierarchies: hierSet(), MinLDiversity: 2, MaxTCloseness: 0.5}
	if err := good.Validate(tab); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{K: 2, Hierarchies: hierSet(), MinLDiversity: -1},
		{K: 2, Hierarchies: hierSet(), MaxTCloseness: -0.1},
		{K: 2, Hierarchies: hierSet(), MaxTCloseness: 1.5},
		{K: 2, Hierarchies: hierSet(), MaxTCloseness: math.NaN()},
	}
	for i, c := range bad {
		if err := c.Validate(tab); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Constraints without a sensitive attribute must be rejected.
	noSens := dataset.NewTable(dataset.MustSchema(
		dataset.Attribute{Name: "ZipCode", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "Age", Kind: dataset.Numeric, Role: dataset.QuasiIdentifier},
	))
	noSens.MustAppend(dataset.StrVal("13053"), dataset.NumVal(28))
	noSens.MustAppend(dataset.StrVal("13052"), dataset.NumVal(31))
	c := Config{K: 1, Hierarchies: hierSet(), MinLDiversity: 2}
	if err := c.Validate(noSens); err == nil {
		t.Error("constraints without sensitive attribute should fail")
	}
}

func TestApplyNodeFlagsLDiversityViolations(t *testing.T) {
	tab := table()
	// At T3a levels ([1 1]) every class is 3-anonymous; distinct counts
	// per class are 2, 2, 3. Requiring ℓ >= 3 must flag the two classes
	// with only 2 distinct values: rows {0,3,7} and {1,2,8}.
	cfg := Config{K: 3, Hierarchies: hierSet(), MinLDiversity: 3}
	_, _, small, err := ApplyNode(tab, cfg, lattice.Node{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 7, 8}
	if len(small) != len(want) {
		t.Fatalf("flagged rows = %v, want %v", small, want)
	}
	for i := range want {
		if small[i] != want[i] {
			t.Fatalf("flagged rows = %v, want %v", small, want)
		}
	}
	// ℓ = 2 is satisfied everywhere at that node.
	cfg.MinLDiversity = 2
	_, _, small, err = ApplyNode(tab, cfg, lattice.Node{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(small) != 0 {
		t.Fatalf("ℓ=2 should pass at [1 1], flagged %v", small)
	}
}

func TestApplyNodeFlagsTClosenessViolations(t *testing.T) {
	tab := table()
	// A tight t bound flags skewed classes; the top node (single class =
	// global distribution) always satisfies t = anything.
	cfg := Config{K: 3, Hierarchies: hierSet(), MaxTCloseness: 0.05}
	_, _, small, err := ApplyNode(tab, cfg, lattice.Node{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(small) == 0 {
		t.Fatal("a 0.05 t-closeness bound should flag T3a's skewed classes")
	}
	top := lattice.Node{5, 4}
	_, _, small, err = ApplyNode(tab, cfg, top)
	if err != nil {
		t.Fatal(err)
	}
	if len(small) != 0 {
		t.Fatalf("single-class node violates t-closeness? flagged %v", small)
	}
}

func TestSatisfiesConstraints(t *testing.T) {
	tab := table()
	cfg := Config{K: 3, Hierarchies: hierSet(), MinLDiversity: 2}
	anon, p, _, err := ApplyNode(tab, cfg, lattice.Node{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := SatisfiesConstraints(p, anon, cfg)
	if err != nil || !ok {
		t.Fatalf("ℓ=2 at [1 1] should hold: %v, %v", ok, err)
	}
	cfg.MinLDiversity = 3
	ok, err = SatisfiesConstraints(p, anon, cfg)
	if err != nil || ok {
		t.Fatalf("ℓ=3 at [1 1] should fail: %v, %v", ok, err)
	}
	// Suppressing the violating classes rescues the constraint (the star
	// class is exempt).
	_, _, small, err := ApplyNode(tab, cfg, lattice.Node{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	anon2 := anon.Clone()
	suppressQI(anon2, small)
	p2, err := eqclass.FromTable(anon2)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = SatisfiesConstraints(p2, anon2, cfg)
	if err != nil || !ok {
		t.Fatalf("after suppression ℓ=3 should hold: %v, %v", ok, err)
	}
}

func suppressQI(tab *dataset.Table, rows []int) {
	for _, i := range rows {
		for _, j := range tab.Schema.QuasiIdentifiers() {
			tab.Rows[i][j] = dataset.StarVal()
		}
	}
}

func TestFinishGlobalEnforcesConstraints(t *testing.T) {
	tab := table()
	// ℓ=3 at node [1 1]: 6 rows violate; with budget they get suppressed
	// and the result is simultaneously 3-anonymous and 3-diverse.
	cfg := Config{K: 3, Hierarchies: hierSet(), MinLDiversity: 3, MaxSuppression: 0.6}
	r, err := FinishGlobal("test", tab, cfg, lattice.Node{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Suppressed) != 6 {
		t.Fatalf("suppressed %d rows, want 6", len(r.Suppressed))
	}
	si := tab.Schema.SensitiveIndex()
	sensitive := r.Table.Column(si)
	// Every retained (non-star) class must hold >= 3 distinct values.
	counts, err := r.Partition.ValueCounts(sensitive)
	if err != nil {
		t.Fatal(err)
	}
	qi := tab.Schema.QuasiIdentifiers()
	for ci, rows := range r.Partition.Classes {
		star := true
		for _, j := range qi {
			if !r.Table.At(rows[0], j).IsSuppressed() {
				star = false
			}
		}
		if !star && len(counts[ci]) < 3 {
			t.Errorf("retained class %d has only %d distinct sensitive values", ci, len(counts[ci]))
		}
	}
	// Without budget the same node must be rejected.
	cfg.MaxSuppression = 0
	if _, err := FinishGlobal("test", tab, cfg, lattice.Node{1, 1}, nil); err == nil {
		t.Error("constraint violations without budget should fail")
	}
}

func TestApplyNodeFlagsEntropyLViolations(t *testing.T) {
	tab := table()
	// At T3a levels, class {0,3,7} has counts {CF-Spouse:2, Spouse
	// Present:1}: entropy ℓ = exp(-(2/3)ln(2/3)-(1/3)ln(1/3)) ≈ 1.89.
	// Requiring entropy ℓ >= 2 flags it (and {1,2,8}, same shape); the
	// class {4,5,6,9} has counts {2,1,1}: ℓ ≈ 2.83, which passes.
	cfg := Config{K: 3, Hierarchies: hierSet(), MinEntropyL: 2}
	_, _, small, err := ApplyNode(tab, cfg, lattice.Node{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 7, 8}
	if len(small) != len(want) {
		t.Fatalf("flagged = %v, want %v", small, want)
	}
	for i := range want {
		if small[i] != want[i] {
			t.Fatalf("flagged = %v, want %v", small, want)
		}
	}
	// ℓ = 1.5 passes everywhere.
	cfg.MinEntropyL = 1.5
	_, _, small, err = ApplyNode(tab, cfg, lattice.Node{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(small) != 0 {
		t.Fatalf("entropy ℓ=1.5 should pass, flagged %v", small)
	}
	// Validation.
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		c := Config{K: 2, Hierarchies: hierSet(), MinEntropyL: bad}
		if err := c.Validate(tab); err == nil {
			t.Errorf("MinEntropyL=%v should fail validation", bad)
		}
	}
}

func TestApplyNodeFlagsRecursiveCLViolations(t *testing.T) {
	tab := table()
	// Class {0,3,7} counts {2,1}: r1=2, ℓ=2 tail=1 → needs 2 < c·1.
	// c=1.5 fails it; c=2.5 passes. Class {4,5,6,9} counts {2,1,1}:
	// r1=2, tail=2 → 2 < 1.5·2 passes both.
	cfg := Config{K: 3, Hierarchies: hierSet(), RecursiveC: 1.5, RecursiveL: 2}
	_, _, small, err := ApplyNode(tab, cfg, lattice.Node{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 7, 8}
	if len(small) != len(want) {
		t.Fatalf("flagged = %v, want %v", small, want)
	}
	cfg.RecursiveC = 2.5
	_, _, small, err = ApplyNode(tab, cfg, lattice.Node{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(small) != 0 {
		t.Fatalf("(2.5,2)-diversity should pass, flagged %v", small)
	}
	// Validation: c and l must come together and be sane.
	bad := []Config{
		{K: 2, Hierarchies: hierSet(), RecursiveC: 1.5},
		{K: 2, Hierarchies: hierSet(), RecursiveL: 2},
		{K: 2, Hierarchies: hierSet(), RecursiveC: -1, RecursiveL: 2},
		{K: 2, Hierarchies: hierSet(), RecursiveC: math.NaN(), RecursiveL: 2},
		{K: 2, Hierarchies: hierSet(), RecursiveC: 1, RecursiveL: -2},
	}
	for i, c := range bad {
		if err := c.Validate(tab); err == nil {
			t.Errorf("bad recursive config %d accepted", i)
		}
	}
}

func TestClassRecursiveCL(t *testing.T) {
	counts := map[string]int{"a": 3, "b": 2, "c": 1}
	// r1=3, l=2 tail=3: 3 < 1·3 false; 3 < 1.5·3 true.
	if classRecursiveCL(counts, 1.0, 2) {
		t.Error("(1,2) should fail")
	}
	if !classRecursiveCL(counts, 1.5, 2) {
		t.Error("(1.5,2) should pass")
	}
	if classRecursiveCL(counts, 10, 4) {
		t.Error("l beyond distinct count should fail")
	}
}

func TestClassEntropyL(t *testing.T) {
	if got := classEntropyL(map[string]int{"a": 2, "b": 2}); math.Abs(got-2) > 1e-9 {
		t.Errorf("uniform entropy ℓ = %v, want 2", got)
	}
	if got := classEntropyL(map[string]int{"a": 5}); math.Abs(got-1) > 1e-9 {
		t.Errorf("degenerate entropy ℓ = %v, want 1", got)
	}
	if got := classEntropyL(nil); got != 0 {
		t.Errorf("empty entropy ℓ = %v, want 0", got)
	}
}

func TestClassEMDHelperAgreesWithTCloseness(t *testing.T) {
	tab := table()
	cfg := Config{K: 3, Hierarchies: hierSet()}
	anon, p, _, err := ApplyNode(tab, cfg, lattice.Node{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	si := tab.Schema.SensitiveIndex()
	col := anon.Column(si)
	vec, err := privacy.TClosenessVector(p, col, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range p.Classes {
		d, err := privacy.ClassEMD(col, rows, false)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d-vec[rows[0]]) > 1e-12 {
			t.Errorf("ClassEMD %v != TClosenessVector %v", d, vec[rows[0]])
		}
	}
	if _, err := privacy.ClassEMD(col, nil, false); err == nil {
		t.Error("empty class should fail")
	}
	if _, err := privacy.ClassEMD(nil, []int{0}, false); err == nil {
		t.Error("empty column should fail")
	}
	if _, err := privacy.ClassEMD(col, []int{99}, false); err == nil {
		t.Error("out-of-range row should fail")
	}
}
