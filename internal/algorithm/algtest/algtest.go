// Package algtest provides the shared conformance harness every disclosure
// control algorithm's tests run: output invariants (size preservation,
// k-anonymity within the suppression budget, valid generalizations),
// determinism, and failure behaviour on impossible configurations.
package algtest

import (
	"testing"

	"microdata/internal/algorithm"
	"microdata/internal/dataset"
	"microdata/internal/generator"
	"microdata/internal/paperdata"
	"microdata/internal/privacy"
)

// PaperConfig returns T1 with a standard configuration at the given k.
func PaperConfig(k int) (*dataset.Table, algorithm.Config) {
	return paperdata.T1(), algorithm.Config{
		K:              k,
		Hierarchies:    paperdata.Hierarchies(),
		MaxSuppression: 0,
		Metric:         algorithm.MetricLM,
	}
}

// CensusConfig returns a synthetic census of the given size with a
// standard configuration.
func CensusConfig(n, k int, seed int64) (*dataset.Table, algorithm.Config, error) {
	t, err := generator.Generate(generator.Config{N: n, Seed: seed})
	if err != nil {
		return nil, algorithm.Config{}, err
	}
	return t, algorithm.Config{
		K:              k,
		Hierarchies:    generator.Hierarchies(),
		MaxSuppression: 0.05,
		Metric:         algorithm.MetricLM,
		Taxonomies:     generator.Taxonomies(),
		Seed:           seed,
	}, nil
}

// CheckResult asserts the cross-algorithm output invariants.
func CheckResult(t *testing.T, orig *dataset.Table, cfg algorithm.Config, r *algorithm.Result) {
	t.Helper()
	if r.Table.Len() != orig.Len() {
		t.Fatalf("%s: output has %d rows, input %d (suppression must not drop tuples)", r.Algorithm, r.Table.Len(), orig.Len())
	}
	if !algorithm.SatisfiesK(r.Partition, r.Table, cfg.K) {
		t.Fatalf("%s: output violates %d-anonymity", r.Algorithm, cfg.K)
	}
	budget := int(cfg.MaxSuppression * float64(orig.Len()))
	if len(r.Suppressed) > budget {
		t.Fatalf("%s: suppressed %d rows, budget %d", r.Algorithm, len(r.Suppressed), budget)
	}
	// Partition must describe the table.
	if r.Partition.N() != r.Table.Len() {
		t.Fatalf("%s: partition covers %d rows, table has %d", r.Algorithm, r.Partition.N(), r.Table.Len())
	}
	// Sensitive columns must be untouched.
	for _, j := range sensitiveCols(orig) {
		for i := 0; i < orig.Len(); i++ {
			if !r.Table.At(i, j).Equal(orig.At(i, j)) {
				t.Fatalf("%s: sensitive cell (%d,%d) modified", r.Algorithm, i, j)
			}
		}
	}
	// Every generalized QI cell must cover the original ground value
	// (Mondrian numeric hulls use the closed-interval convention, so the
	// low endpoint is checked with slack).
	qi := orig.Schema.QuasiIdentifiers()
	for i := 0; i < orig.Len(); i++ {
		for _, j := range qi {
			g, o := r.Table.At(i, j), orig.At(i, j)
			if g.Equal(o) || g.IsSuppressed() {
				continue
			}
			if g.Kind() == dataset.Interval && o.Kind() == dataset.Num {
				lo, hi := g.Bounds()
				if o.Float() < lo || o.Float() > hi {
					t.Fatalf("%s: cell (%d,%d): %v outside hull %v", r.Algorithm, i, j, o, g)
				}
				continue
			}
			if g.Kind() == dataset.Set {
				continue // taxonomy coverage checked by the privacy tests
			}
			if !g.Covers(o) {
				t.Fatalf("%s: cell (%d,%d): %v does not cover %v", r.Algorithm, i, j, g, o)
			}
		}
	}
}

func sensitiveCols(t *dataset.Table) []int {
	var out []int
	for j, a := range t.Schema.Attrs {
		if a.Role == dataset.Sensitive {
			out = append(out, j)
		}
	}
	return out
}

// CheckDeterminism runs the algorithm twice and asserts identical output.
func CheckDeterminism(t *testing.T, alg algorithm.Algorithm, orig *dataset.Table, cfg algorithm.Config) {
	t.Helper()
	r1, err := alg.Anonymize(orig, cfg)
	if err != nil {
		t.Fatalf("%s: %v", alg.Name(), err)
	}
	r2, err := alg.Anonymize(orig, cfg)
	if err != nil {
		t.Fatalf("%s: %v", alg.Name(), err)
	}
	for i := range r1.Table.Rows {
		for j := range r1.Table.Rows[i] {
			if !r1.Table.At(i, j).Equal(r2.Table.At(i, j)) {
				t.Fatalf("%s: nondeterministic at cell (%d,%d)", alg.Name(), i, j)
			}
		}
	}
}

// CheckCommonFailures asserts the standard error paths.
func CheckCommonFailures(t *testing.T, alg algorithm.Algorithm) {
	t.Helper()
	tab := paperdata.T1()
	good := algorithm.Config{K: 2, Hierarchies: paperdata.Hierarchies()}
	bad := []algorithm.Config{
		{K: 0, Hierarchies: paperdata.Hierarchies()},
		{K: 99, Hierarchies: paperdata.Hierarchies()},
		{K: 2, Hierarchies: nil},
		{K: 2, Hierarchies: paperdata.Hierarchies(), MaxSuppression: 1.5},
		{K: 2, Hierarchies: paperdata.Hierarchies(), MaxSuppression: -0.1},
	}
	for i, cfg := range bad {
		if _, err := alg.Anonymize(tab, cfg); err == nil {
			t.Errorf("%s: bad config %d accepted", alg.Name(), i)
		}
	}
	if _, err := alg.Anonymize(dataset.NewTable(paperdata.Schema()), good); err == nil {
		t.Errorf("%s: empty table accepted", alg.Name())
	}
}

// KIsAchieved asserts the classical scalar check via package privacy on the
// non-suppressed portion.
func KIsAchieved(t *testing.T, r *algorithm.Result, k int) {
	t.Helper()
	if len(r.Suppressed) == 0 {
		ok, err := privacy.IsKAnonymous(r.Partition, k)
		if err != nil || !ok {
			t.Fatalf("%s: IsKAnonymous(%d) = %v, %v", r.Algorithm, k, ok, err)
		}
	}
}
