package hierarchy

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseTaxonomy reads a taxonomy from the indentation-based text format
// WriteTaxonomy emits:
//
//	*
//	  Married
//	    CF-Spouse
//	    Spouse Present
//	  Not Married
//	    Separated
//	    Divorced
//
// The first non-empty line is the root; each subsequent line's depth is its
// leading indentation divided by two spaces (tabs count as one level).
// Blank lines and lines starting with '#' are ignored. Labels are trimmed.
func ParseTaxonomy(attr string, r io.Reader) (*Taxonomy, error) {
	scanner := bufio.NewScanner(r)
	type frame struct {
		node  *Node
		depth int
	}
	var root *Node
	var stack []frame
	line := 0
	for scanner.Scan() {
		line++
		raw := scanner.Text()
		trimmed := strings.TrimSpace(raw)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		depth, err := indentDepth(raw)
		if err != nil {
			return nil, fmt.Errorf("hierarchy: taxonomy %q line %d: %w", attr, line, err)
		}
		node := &Node{Label: trimmed}
		if root == nil {
			if depth != 0 {
				return nil, fmt.Errorf("hierarchy: taxonomy %q line %d: root must not be indented", attr, line)
			}
			root = node
			stack = []frame{{node, 0}}
			continue
		}
		if depth == 0 {
			return nil, fmt.Errorf("hierarchy: taxonomy %q line %d: second root %q", attr, line, trimmed)
		}
		// Pop to the parent level.
		for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			return nil, fmt.Errorf("hierarchy: taxonomy %q line %d: bad indentation", attr, line)
		}
		parent := stack[len(stack)-1]
		if depth != parent.depth+1 {
			return nil, fmt.Errorf("hierarchy: taxonomy %q line %d: indentation jumps from %d to %d", attr, line, parent.depth, depth)
		}
		parent.node.Children = append(parent.node.Children, node)
		stack = append(stack, frame{node, depth})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("hierarchy: taxonomy %q: %w", attr, err)
	}
	if root == nil {
		return nil, fmt.Errorf("hierarchy: taxonomy %q: empty input", attr)
	}
	return NewTaxonomy(attr, root)
}

// indentDepth converts leading whitespace to a depth: every two spaces or
// one tab is one level. Mixed or odd indentation is rejected.
func indentDepth(line string) (int, error) {
	spaces, tabs := 0, 0
	for _, r := range line {
		if r == ' ' {
			spaces++
			continue
		}
		if r == '\t' {
			tabs++
			continue
		}
		break
	}
	if spaces > 0 && tabs > 0 {
		return 0, fmt.Errorf("mixed tab/space indentation")
	}
	if tabs > 0 {
		return tabs, nil
	}
	if spaces%2 != 0 {
		return 0, fmt.Errorf("odd indentation of %d spaces", spaces)
	}
	return spaces / 2, nil
}

// WriteTaxonomy renders the taxonomy in ParseTaxonomy's format.
func WriteTaxonomy(w io.Writer, t *Taxonomy) error {
	var walk func(n *Node, depth int) error
	walk = func(n *Node, depth int) error {
		if _, err := fmt.Fprintf(w, "%s%s\n", strings.Repeat("  ", depth), n.Label); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, 0)
}
