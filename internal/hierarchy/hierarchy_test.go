package hierarchy

import (
	"strings"
	"testing"
	"testing/quick"

	"microdata/internal/dataset"
)

// maritalTaxonomy is the paper's Marital Status taxonomy: Table 2 groups
// CF-Spouse and Spouse Present under "Married"; Separated, Never Married,
// Divorced and Spouse Absent under "Not Married".
func maritalTaxonomy(t *testing.T) *Taxonomy {
	t.Helper()
	tax, err := NewTaxonomy("MaritalStatus", N("*",
		N("Married", N("CF-Spouse"), N("Spouse Present")),
		N("Not Married", N("Separated"), N("Never Married"), N("Divorced"), N("Spouse Absent")),
	))
	if err != nil {
		t.Fatal(err)
	}
	return tax
}

// ageLadder is the Age ladder that reproduces the paper's three
// generalizations: level 1 = width-10 anchored at 5 (T3a), level 2 =
// width-20 anchored at 15 (T3b), level 3 = width-20 anchored at 0 (T4),
// level 4 = suppression.
func ageLadder(t *testing.T) *Intervals {
	t.Helper()
	h, err := NewIntervals("Age", 0, 100,
		IntervalLevel{Width: 10, Origin: 5},
		IntervalLevel{Width: 20, Origin: 15},
		IntervalLevel{Width: 20, Origin: 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestTaxonomyGeneralize(t *testing.T) {
	tax := maritalTaxonomy(t)
	if tax.MaxLevel() != 2 {
		t.Fatalf("MaxLevel = %d, want 2", tax.MaxLevel())
	}
	cases := []struct {
		in    string
		level int
		want  string
	}{
		{"CF-Spouse", 0, "CF-Spouse"},
		{"CF-Spouse", 1, "Married"},
		{"Spouse Present", 1, "Married"},
		{"Spouse Absent", 1, "Not Married"},
		{"Divorced", 1, "Not Married"},
		{"Never Married", 2, "*"},
	}
	for _, c := range cases {
		got, err := tax.Generalize(dataset.StrVal(c.in), c.level)
		if err != nil {
			t.Fatalf("Generalize(%q, %d): %v", c.in, c.level, err)
		}
		if got.String() != c.want {
			t.Errorf("Generalize(%q, %d) = %q, want %q", c.in, c.level, got, c.want)
		}
	}
}

func TestTaxonomyErrors(t *testing.T) {
	tax := maritalTaxonomy(t)
	if _, err := tax.Generalize(dataset.StrVal("Widowed"), 1); err == nil {
		t.Error("unknown value at level 1 should fail")
	}
	if _, err := tax.Generalize(dataset.StrVal("Widowed"), 0); err == nil {
		t.Error("unknown value at level 0 should fail")
	}
	if _, err := tax.Generalize(dataset.StrVal("Widowed"), tax.MaxLevel()); err == nil {
		t.Error("unknown value at max level should fail")
	}
	if _, err := tax.Generalize(dataset.NumVal(3), 1); err == nil {
		t.Error("numeric value should fail")
	}
	if _, err := tax.Generalize(dataset.StrVal("Divorced"), 3); err == nil {
		t.Error("out-of-range level should fail")
	}
	if _, err := tax.Loss(dataset.StrVal("Divorced"), -1); err == nil {
		t.Error("negative level should fail")
	}
}

func TestTaxonomyConstructionErrors(t *testing.T) {
	if _, err := NewTaxonomy("X", nil); err == nil {
		t.Error("nil root should fail")
	}
	if _, err := NewTaxonomy("X", N("*", N("a"), N("a"))); err == nil {
		t.Error("duplicate leaves should fail")
	}
	if _, err := NewTaxonomy("X", &Node{Label: "*", Children: []*Node{nil}}); err == nil {
		t.Error("nil child should fail")
	}
}

func TestTaxonomyLoss(t *testing.T) {
	tax := maritalTaxonomy(t)
	// 6 leaves total; Married has 2, Not Married has 4.
	cases := []struct {
		in    string
		level int
		want  float64
	}{
		{"CF-Spouse", 0, 0},
		{"CF-Spouse", 1, (2.0 - 1) / (6 - 1)},
		{"Divorced", 1, (4.0 - 1) / (6 - 1)},
		{"Divorced", 2, 1},
	}
	for _, c := range cases {
		got, err := tax.Loss(dataset.StrVal(c.in), c.level)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Loss(%q, %d) = %v, want %v", c.in, c.level, got, c.want)
		}
	}
}

func TestTaxonomyLeafCountAndLeaves(t *testing.T) {
	tax := maritalTaxonomy(t)
	if n, _ := tax.LeafCount(dataset.StrVal("Divorced"), 1); n != 4 {
		t.Errorf("LeafCount(Divorced,1) = %d, want 4", n)
	}
	if n, _ := tax.LeafCount(dataset.StrVal("Divorced"), 2); n != 6 {
		t.Errorf("LeafCount(Divorced,2) = %d, want 6", n)
	}
	if n, _ := tax.LeafCount(dataset.StrVal("CF-Spouse"), 0); n != 1 {
		t.Errorf("LeafCount(CF-Spouse,0) = %d, want 1", n)
	}
	leaves := tax.Leaves()
	if len(leaves) != 6 || leaves[0] != "CF-Spouse" || leaves[5] != "Spouse Absent" {
		t.Errorf("Leaves = %v", leaves)
	}
}

func TestTaxonomyCoversValue(t *testing.T) {
	tax := maritalTaxonomy(t)
	cases := []struct {
		g, ground string
		want      bool
	}{
		{"*", "Divorced", true},
		{"Not Married", "Divorced", true},
		{"Not Married", "CF-Spouse", false},
		{"Married", "CF-Spouse", true},
		{"CF-Spouse", "CF-Spouse", true},
		{"Married", "Nonexistent", false},
	}
	for _, c := range cases {
		if got := tax.CoversValue(c.g, c.ground); got != c.want {
			t.Errorf("CoversValue(%q,%q) = %v, want %v", c.g, c.ground, got, c.want)
		}
	}
}

func TestUnevenTaxonomySaturatesAtRoot(t *testing.T) {
	tax := MustTaxonomy("X", N("*",
		N("deep", N("mid", N("leafA"), N("leafB"))),
		N("shallow"),
	))
	if tax.MaxLevel() != 3 {
		t.Fatalf("MaxLevel = %d, want 3", tax.MaxLevel())
	}
	// shallow is a depth-1 leaf; at level 2 it saturates at the root,
	// rendered as "*" because the node is the root.
	g, err := tax.Generalize(dataset.StrVal("shallow"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.String() != "*" {
		t.Errorf("shallow at level 2 = %q, want *", g)
	}
	g, err = tax.Generalize(dataset.StrVal("leafA"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.String() != "deep" {
		t.Errorf("leafA at level 2 = %q, want deep", g)
	}
}

func TestSingleNodeTaxonomy(t *testing.T) {
	tax := MustTaxonomy("X", N("only"))
	if tax.MaxLevel() != 1 {
		t.Fatalf("MaxLevel = %d, want 1", tax.MaxLevel())
	}
	g, err := tax.Generalize(dataset.StrVal("only"), 1)
	if err != nil || !g.IsSuppressed() {
		t.Fatalf("level 1 = %v, %v", g, err)
	}
	if l, _ := tax.Loss(dataset.StrVal("only"), 0); l != 0 {
		t.Errorf("loss at 0 = %v", l)
	}
	if l, _ := tax.Loss(dataset.StrVal("only"), 1); l != 1 {
		t.Errorf("loss at 1 = %v", l)
	}
}

func TestIntervalsPaperLadders(t *testing.T) {
	age := ageLadder(t)
	if age.MaxLevel() != 4 {
		t.Fatalf("MaxLevel = %d, want 4", age.MaxLevel())
	}
	cases := []struct {
		in    float64
		level int
		want  string
	}{
		// T3a (level 1): ages 28,26,31 -> (25,35]; 41,39,42 -> (35,45]; 50,55,49,47 -> (45,55]
		{28, 1, "(25,35]"}, {26, 1, "(25,35]"}, {31, 1, "(25,35]"},
		{41, 1, "(35,45]"}, {39, 1, "(35,45]"}, {42, 1, "(35,45]"},
		{50, 1, "(45,55]"}, {55, 1, "(45,55]"}, {49, 1, "(45,55]"}, {47, 1, "(45,55]"},
		// Boundary: 35 belongs to (25,35], 45 to (35,45].
		{35, 1, "(25,35]"}, {45, 1, "(35,45]"},
		// T3b (level 2): 28 -> (15,35]; 41 -> (35,55]
		{28, 2, "(15,35]"}, {41, 2, "(35,55]"}, {55, 2, "(35,55]"}, {35, 2, "(15,35]"},
		// T4 (level 3): 28 -> (20,40]; 41 -> (40,60]; 40 on boundary -> (20,40]
		{28, 3, "(20,40]"}, {41, 3, "(40,60]"}, {40, 3, "(20,40]"},
		// identity and suppression
		{28, 0, "28"}, {28, 4, "*"},
	}
	for _, c := range cases {
		got, err := age.Generalize(dataset.NumVal(c.in), c.level)
		if err != nil {
			t.Fatalf("Generalize(%v, %d): %v", c.in, c.level, err)
		}
		if got.String() != c.want {
			t.Errorf("Generalize(%v, %d) = %q, want %q", c.in, c.level, got, c.want)
		}
	}
}

func TestIntervalsErrors(t *testing.T) {
	if _, err := NewIntervals("X", 5, 5); err == nil {
		t.Error("empty domain should fail")
	}
	if _, err := NewIntervals("X", 0, 10, IntervalLevel{Width: 0}); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := NewIntervals("X", 0, 10, IntervalLevel{Width: -2}); err == nil {
		t.Error("negative width should fail")
	}
	age := ageLadder(t)
	if _, err := age.Generalize(dataset.StrVal("x"), 1); err == nil {
		t.Error("string value should fail")
	}
	if _, err := age.Generalize(dataset.NumVal(1), 9); err == nil {
		t.Error("out-of-range level should fail")
	}
	if _, err := age.Loss(dataset.NumVal(1), 9); err == nil {
		t.Error("out-of-range loss level should fail")
	}
}

func TestIntervalsLoss(t *testing.T) {
	age := ageLadder(t)
	for level, want := range map[int]float64{0: 0, 1: 0.1, 2: 0.2, 3: 0.2, 4: 1} {
		got, err := age.Loss(dataset.NumVal(30), level)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Loss level %d = %v, want %v", level, got, want)
		}
	}
	// Width larger than the domain clamps to 1.
	wide := MustIntervals("X", 0, 10, IntervalLevel{Width: 100})
	if l, _ := wide.Loss(dataset.NumVal(3), 1); l != 1 {
		t.Errorf("clamped loss = %v, want 1", l)
	}
}

func TestIntervalBucketContainsValueQuick(t *testing.T) {
	f := func(x int16, w uint8, o int8) bool {
		width := float64(w%50) + 1
		l := IntervalLevel{Width: width, Origin: float64(o)}
		lo, hi := l.bucket(float64(x))
		return lo < float64(x) && float64(x) <= hi && hi-lo == width
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPrefixMaskPaperZips(t *testing.T) {
	zip := MustPrefixMask("ZipCode", 5, 10)
	if zip.MaxLevel() != 5 {
		t.Fatalf("MaxLevel = %d, want 5", zip.MaxLevel())
	}
	cases := []struct {
		in    string
		level int
		want  string
	}{
		{"13053", 0, "13053"},
		{"13053", 1, "1305*"}, // T3a
		{"13053", 2, "130**"}, // T3b
		{"13053", 3, "13***"}, // T4
		{"13053", 4, "1****"},
		{"13053", 5, "*"},
	}
	for _, c := range cases {
		got, err := zip.Generalize(dataset.StrVal(c.in), c.level)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != c.want {
			t.Errorf("Generalize(%q, %d) = %q, want %q", c.in, c.level, got, c.want)
		}
	}
	for level, want := range map[int]float64{0: 0, 1: 0.2, 3: 0.6, 5: 1} {
		got, err := zip.Loss(dataset.StrVal("13053"), level)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Loss level %d = %v, want %v", level, got, want)
		}
	}
}

func TestPrefixMaskErrors(t *testing.T) {
	if _, err := NewPrefixMask("X", 0, 10); err == nil {
		t.Error("zero length should fail")
	}
	if _, err := NewPrefixMask("X", 5, 1); err == nil {
		t.Error("radix < 2 should fail")
	}
	zip := MustPrefixMask("ZipCode", 5, 10)
	if _, err := zip.Generalize(dataset.StrVal("123"), 1); err == nil {
		t.Error("wrong length should fail")
	}
	if _, err := zip.Generalize(dataset.NumVal(13053), 1); err == nil {
		t.Error("numeric value should fail")
	}
	if _, err := zip.Generalize(dataset.StrVal("13053"), 6); err == nil {
		t.Error("out-of-range level should fail")
	}
	if _, err := zip.Loss(dataset.StrVal("123"), 1); err == nil {
		t.Error("loss on wrong length should fail")
	}
}

func TestSuppressionHierarchy(t *testing.T) {
	h := NewSuppression("MaritalStatus")
	if h.MaxLevel() != 1 {
		t.Fatalf("MaxLevel = %d", h.MaxLevel())
	}
	v, err := h.Generalize(dataset.StrVal("Divorced"), 0)
	if err != nil || v.Text() != "Divorced" {
		t.Fatalf("level 0 = %v, %v", v, err)
	}
	v, err = h.Generalize(dataset.StrVal("Divorced"), 1)
	if err != nil || !v.IsSuppressed() {
		t.Fatalf("level 1 = %v, %v", v, err)
	}
	if _, err := h.Generalize(dataset.StrVal("x"), 2); err == nil {
		t.Error("level 2 should fail")
	}
	if l, _ := h.Loss(dataset.StrVal("x"), 0); l != 0 {
		t.Error("loss 0 expected")
	}
	if l, _ := h.Loss(dataset.StrVal("x"), 1); l != 1 {
		t.Error("loss 1 expected")
	}
	if _, err := h.Loss(dataset.StrVal("x"), 5); err == nil {
		t.Error("out-of-range loss level should fail")
	}
}

func TestSetConstructionAndCoverage(t *testing.T) {
	zip := MustPrefixMask("ZipCode", 5, 10)
	age := ageLadder(t)
	if _, err := NewSet(zip, zip); err == nil {
		t.Error("duplicate attribute should fail")
	}
	set := MustSet(zip, age)
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "ZipCode", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "Age", Kind: dataset.Numeric, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "MaritalStatus", Kind: dataset.Categorical, Role: dataset.Sensitive},
	)
	if err := set.CoverQI(schema); err != nil {
		t.Fatal(err)
	}
	ml, err := set.MaxLevels(schema)
	if err != nil || len(ml) != 2 || ml[0] != 5 || ml[1] != 4 {
		t.Fatalf("MaxLevels = %v, %v", ml, err)
	}
	missing := MustSet(zip)
	if err := missing.CoverQI(schema); err == nil {
		t.Error("missing hierarchy should fail CoverQI")
	}
	if _, err := missing.MaxLevels(schema); err == nil {
		t.Error("missing hierarchy should fail MaxLevels")
	}
}

func TestMustSetPanics(t *testing.T) {
	zip := MustPrefixMask("ZipCode", 5, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustSet(zip, zip)
}

func TestGeneralizeTable(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "ZipCode", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "Age", Kind: dataset.Numeric, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "MaritalStatus", Kind: dataset.Categorical, Role: dataset.Sensitive},
	)
	tab := dataset.NewTable(schema)
	tab.MustAppend(dataset.StrVal("13053"), dataset.NumVal(28), dataset.StrVal("CF-Spouse"))
	tab.MustAppend(dataset.StrVal("13268"), dataset.NumVal(41), dataset.StrVal("Separated"))
	set := MustSet(MustPrefixMask("ZipCode", 5, 10), ageLadder(t))

	out, err := GeneralizeTable(tab, set, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.At(0, 0).String(); got != "1305*" {
		t.Errorf("zip = %q", got)
	}
	if got := out.At(0, 1).String(); got != "(25,35]" {
		t.Errorf("age = %q", got)
	}
	if got := out.At(0, 2).Text(); got != "CF-Spouse" {
		t.Errorf("sensitive should be untouched, got %q", got)
	}
	// Original untouched.
	if got := tab.At(0, 0).Text(); got != "13053" {
		t.Errorf("original mutated: %q", got)
	}

	if _, err := GeneralizeTable(tab, set, []int{1}); err == nil {
		t.Error("wrong level count should fail")
	}
	if _, err := GeneralizeTable(tab, set, []int{9, 1}); err == nil {
		t.Error("out-of-range level should fail")
	}
	bad := MustSet(ageLadder(t))
	if _, err := GeneralizeTable(tab, bad, []int{1, 1}); err == nil {
		t.Error("missing hierarchy should fail")
	}
}

func TestSuppressRows(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "ZipCode", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "Age", Kind: dataset.Numeric, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "MaritalStatus", Kind: dataset.Categorical, Role: dataset.Sensitive},
	)
	tab := dataset.NewTable(schema)
	tab.MustAppend(dataset.StrVal("13053"), dataset.NumVal(28), dataset.StrVal("CF-Spouse"))
	tab.MustAppend(dataset.StrVal("13268"), dataset.NumVal(41), dataset.StrVal("Separated"))
	SuppressRows(tab, []int{1})
	if !tab.At(1, 0).IsSuppressed() || !tab.At(1, 1).IsSuppressed() {
		t.Error("row 1 QI cells should be suppressed")
	}
	if tab.At(1, 2).IsSuppressed() {
		t.Error("sensitive cell should not be suppressed")
	}
	if tab.At(0, 0).IsSuppressed() {
		t.Error("row 0 should be untouched")
	}
	if tab.Len() != 2 {
		t.Error("suppression must not drop rows")
	}
}

func TestGeneralizeMonotoneLossQuick(t *testing.T) {
	age := ageLadder(t)
	// Loss is not required to be monotone across arbitrary ladders (T3b/T4
	// rungs share a width) but must be 0 at level 0 and 1 at the top, and
	// within [0,1] everywhere.
	f := func(x uint8) bool {
		v := dataset.NumVal(float64(x % 100))
		l0, err0 := age.Loss(v, 0)
		lt, errt := age.Loss(v, age.MaxLevel())
		if err0 != nil || errt != nil || l0 != 0 || lt != 1 {
			return false
		}
		for lv := 0; lv <= age.MaxLevel(); lv++ {
			l, err := age.Loss(v, lv)
			if err != nil || l < 0 || l > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeneralizedValueCoversGroundQuick(t *testing.T) {
	zip := MustPrefixMask("ZipCode", 5, 10)
	f := func(n uint32, lvRaw uint8) bool {
		s := []byte("00000")
		m := n
		for i := 4; i >= 0; i-- {
			s[i] = byte('0' + m%10)
			m /= 10
		}
		v := dataset.StrVal(string(s))
		lv := int(lvRaw) % 6
		g, err := zip.Generalize(v, lv)
		if err != nil {
			return false
		}
		return g.Covers(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTaxonomyLCA(t *testing.T) {
	tax := maritalTaxonomy(t)
	cases := []struct {
		in     []string
		want   string
		isRoot bool
	}{
		{[]string{"CF-Spouse"}, "CF-Spouse", false},
		{[]string{"CF-Spouse", "Spouse Present"}, "Married", false},
		{[]string{"Separated", "Divorced", "Never Married"}, "Not Married", false},
		{[]string{"CF-Spouse", "Divorced"}, "*", true},
	}
	for _, c := range cases {
		got, isRoot, err := tax.LCA(c.in)
		if err != nil {
			t.Fatalf("LCA(%v): %v", c.in, err)
		}
		if got != c.want || isRoot != c.isRoot {
			t.Errorf("LCA(%v) = %q root=%v, want %q root=%v", c.in, got, isRoot, c.want, c.isRoot)
		}
	}
	if _, _, err := tax.LCA(nil); err == nil {
		t.Error("empty LCA should fail")
	}
	if _, _, err := tax.LCA([]string{"Nope"}); err == nil {
		t.Error("unknown first value should fail")
	}
	if _, _, err := tax.LCA([]string{"Divorced", "Nope"}); err == nil {
		t.Error("unknown later value should fail")
	}
}

// LCA must cover every input value — the Mondrian soundness property.
func TestLCACoversInputsQuick(t *testing.T) {
	tax := maritalTaxonomy(t)
	leaves := tax.Leaves()
	f := func(picks []uint8) bool {
		if len(picks) == 0 {
			return true
		}
		grounds := make([]string, len(picks))
		for i, p := range picks {
			grounds[i] = leaves[int(p)%len(leaves)]
		}
		label, isRoot, err := tax.LCA(grounds)
		if err != nil {
			return false
		}
		if isRoot {
			label = "*"
		}
		for _, g := range grounds {
			if !tax.CoversValue(label, g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHierarchyErrorMessagesNameAttribute(t *testing.T) {
	zip := MustPrefixMask("ZipCode", 5, 10)
	_, err := zip.Generalize(dataset.StrVal("123"), 1)
	if err == nil || !strings.Contains(err.Error(), "ZipCode") {
		t.Errorf("error should name the attribute: %v", err)
	}
}

func TestCoveringLabels(t *testing.T) {
	tax := maritalTaxonomy(t)
	got := tax.CoveringLabels("CF-Spouse")
	want := []string{"CF-Spouse", "Married", "*"}
	if len(got) != len(want) {
		t.Fatalf("CoveringLabels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CoveringLabels = %v, want %v", got, want)
		}
	}
	if tax.CoveringLabels("Alien") != nil {
		t.Error("unknown ground value should yield nil")
	}
	// CoveringLabels must agree with CoversValue for every on-tree label.
	for _, ground := range tax.Leaves() {
		covering := map[string]bool{}
		for _, lbl := range tax.CoveringLabels(ground) {
			covering[lbl] = true
			if !tax.CoversValue(lbl, ground) {
				t.Fatalf("CoveringLabels(%q) lists %q but CoversValue denies it", ground, lbl)
			}
		}
		for _, other := range []string{"Married", "Not Married", "*"} {
			if tax.CoversValue(other, ground) && !covering[other] {
				t.Fatalf("CoversValue(%q, %q) holds but CoveringLabels omits it", other, ground)
			}
		}
	}
}
