package hierarchy

import (
	"fmt"

	"microdata/internal/dataset"
)

// PrefixMask generalizes fixed-length code strings (zip codes) by masking
// trailing characters: level l masks the last l characters, so a 5-digit
// zip has levels 0 ("13053") through 5 ("*****" ≡ "*"). Masking the whole
// string is rendered as the suppressed value.
type PrefixMask struct {
	attr   string
	length int
	radix  int // alphabet size per masked position, for loss; 10 for digits
}

// NewPrefixMask builds a prefix-mask hierarchy for codes of the given fixed
// length. radix is the number of possible characters per position (10 for
// digit codes); it drives the loss metric.
func NewPrefixMask(attr string, length, radix int) (*PrefixMask, error) {
	if length <= 0 {
		return nil, fmt.Errorf("hierarchy: prefix mask for %q: non-positive length %d", attr, length)
	}
	if radix < 2 {
		return nil, fmt.Errorf("hierarchy: prefix mask for %q: radix %d < 2", attr, radix)
	}
	return &PrefixMask{attr: attr, length: length, radix: radix}, nil
}

// MustPrefixMask is NewPrefixMask that panics on error, for fixtures.
func MustPrefixMask(attr string, length, radix int) *PrefixMask {
	h, err := NewPrefixMask(attr, length, radix)
	if err != nil {
		panic(err)
	}
	return h
}

// Attribute implements Hierarchy.
func (h *PrefixMask) Attribute() string { return h.attr }

// MaxLevel implements Hierarchy: one level per maskable character.
func (h *PrefixMask) MaxLevel() int { return h.length }

func (h *PrefixMask) ground(v dataset.Value) (string, error) {
	if v.Kind() != dataset.Str {
		return "", fmt.Errorf("prefix mask %q: cannot generalize %v value", h.attr, v.Kind())
	}
	s := v.Text()
	if len(s) != h.length {
		return "", fmt.Errorf("prefix mask %q: value %q has length %d, want %d", h.attr, s, len(s), h.length)
	}
	return s, nil
}

// Generalize implements Hierarchy.
func (h *PrefixMask) Generalize(v dataset.Value, level int) (dataset.Value, error) {
	if err := checkLevel(level, h.length); err != nil {
		return dataset.Value{}, fmt.Errorf("prefix mask %q: %w", h.attr, err)
	}
	s, err := h.ground(v)
	if err != nil {
		return dataset.Value{}, err
	}
	switch level {
	case 0:
		return v, nil
	case h.length:
		return dataset.StarVal(), nil
	default:
		return dataset.PrefixVal(s[:h.length-level], level), nil
	}
}

// Loss implements Hierarchy as the fraction of masked characters. This is
// the convention used for code attributes where each character carries
// comparable identifying power.
func (h *PrefixMask) Loss(v dataset.Value, level int) (float64, error) {
	if err := checkLevel(level, h.length); err != nil {
		return 0, fmt.Errorf("prefix mask %q: %w", h.attr, err)
	}
	if _, err := h.ground(v); err != nil {
		return 0, err
	}
	return float64(level) / float64(h.length), nil
}

// Suppression is the trivial two-level hierarchy: level 0 keeps the value,
// level 1 suppresses it. It suits attributes with no meaningful
// intermediate generalization (the Marital Status column of the paper's T4).
type Suppression struct {
	attr string
}

// NewSuppression builds a suppression-only hierarchy.
func NewSuppression(attr string) *Suppression { return &Suppression{attr: attr} }

// Attribute implements Hierarchy.
func (h *Suppression) Attribute() string { return h.attr }

// MaxLevel implements Hierarchy.
func (h *Suppression) MaxLevel() int { return 1 }

// Generalize implements Hierarchy.
func (h *Suppression) Generalize(v dataset.Value, level int) (dataset.Value, error) {
	if err := checkLevel(level, 1); err != nil {
		return dataset.Value{}, fmt.Errorf("suppression %q: %w", h.attr, err)
	}
	if level == 1 {
		return dataset.StarVal(), nil
	}
	return v, nil
}

// Loss implements Hierarchy.
func (h *Suppression) Loss(_ dataset.Value, level int) (float64, error) {
	if err := checkLevel(level, 1); err != nil {
		return 0, fmt.Errorf("suppression %q: %w", h.attr, err)
	}
	return float64(level), nil
}
