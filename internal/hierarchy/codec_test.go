package hierarchy

import (
	"bytes"
	"strings"
	"testing"

	"microdata/internal/dataset"
)

const maritalText = `# the paper's Marital Status taxonomy
*
  Married
    CF-Spouse
    Spouse Present
  Not Married
    Separated
    Never Married
    Divorced
    Spouse Absent
`

func TestParseTaxonomy(t *testing.T) {
	tax, err := ParseTaxonomy("MaritalStatus", strings.NewReader(maritalText))
	if err != nil {
		t.Fatal(err)
	}
	if tax.MaxLevel() != 2 {
		t.Fatalf("MaxLevel = %d", tax.MaxLevel())
	}
	g, err := tax.Generalize(dataset.StrVal("Divorced"), 1)
	if err != nil || g.String() != "Not Married" {
		t.Fatalf("Generalize = %v, %v", g, err)
	}
	leaves := tax.Leaves()
	if len(leaves) != 6 {
		t.Fatalf("leaves = %v", leaves)
	}
}

func TestParseTaxonomyTabs(t *testing.T) {
	text := "*\n\tA\n\t\ta1\n\t\ta2\n\tB\n"
	tax, err := ParseTaxonomy("X", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	got, isRoot, err := tax.LCA([]string{"a1", "a2"})
	if err != nil || got != "A" || isRoot {
		t.Errorf("LCA = %q, root=%v, err=%v", got, isRoot, err)
	}
}

func TestParseTaxonomyErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"empty", ""},
		{"only comments", "# nothing\n\n"},
		{"indented root", "  *\n"},
		{"second root", "*\nB\n"},
		{"jump", "*\n    deep\n"},
		{"odd spaces", "*\n   three\n"},
		{"mixed", "*\n \tmixed\n"},
		{"duplicate leaves", "*\n  a\n  a\n"},
	}
	for _, c := range cases {
		if _, err := ParseTaxonomy("X", strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestTaxonomyTextRoundTrip(t *testing.T) {
	orig, err := ParseTaxonomy("MaritalStatus", strings.NewReader(maritalText))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTaxonomy(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTaxonomy("MaritalStatus", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.MaxLevel() != orig.MaxLevel() {
		t.Fatal("depth changed across round trip")
	}
	ol, bl := orig.Leaves(), back.Leaves()
	if len(ol) != len(bl) {
		t.Fatalf("leaf count changed: %v vs %v", ol, bl)
	}
	for i := range ol {
		if ol[i] != bl[i] {
			t.Fatalf("leaves differ: %v vs %v", ol, bl)
		}
		g1, _ := orig.Generalize(dataset.StrVal(ol[i]), 1)
		g2, _ := back.Generalize(dataset.StrVal(ol[i]), 1)
		if g1.String() != g2.String() {
			t.Fatalf("generalization of %q differs: %v vs %v", ol[i], g1, g2)
		}
	}
}
