// Package hierarchy implements generalization hierarchies for microdata
// attributes: taxonomy trees for categorical values, anchored interval
// ladders for numeric values, character-masking ladders for code-like
// strings (zip codes), and the trivial suppression ladder.
//
// A hierarchy exposes a ladder of generalization levels. Level 0 is the
// identity (the ground value); level MaxLevel() is the coarsest form, which
// for every implementation here is the fully suppressed value "*" — matching
// the paper's assumption that suppression is a special case of
// generalization. Each level also carries an information loss in [0,1] per
// Iyengar's general loss metric, used by package utility.
package hierarchy

import (
	"fmt"

	"microdata/internal/dataset"
)

// Hierarchy generalizes ground values of one attribute to any of its levels.
type Hierarchy interface {
	// Attribute returns the attribute name this hierarchy applies to.
	Attribute() string
	// MaxLevel returns the coarsest level; valid levels are 0..MaxLevel.
	// Generalizing to MaxLevel yields the suppressed value.
	MaxLevel() int
	// Generalize maps a ground value to its generalized form at the given
	// level. Level 0 returns the value unchanged. It returns an error if
	// the level is out of range or the value is not part of the
	// hierarchy's domain.
	Generalize(v dataset.Value, level int) (dataset.Value, error)
	// Loss returns the Iyengar general-loss-metric contribution in [0,1]
	// of generalizing the ground value v to the given level: 0 for the
	// exact value, 1 for full suppression.
	Loss(v dataset.Value, level int) (float64, error)
}

// Set maps attribute names to their hierarchies and validates coverage of a
// schema's quasi-identifiers.
type Set map[string]Hierarchy

// NewSet builds a Set and verifies each hierarchy names a distinct attribute.
func NewSet(hs ...Hierarchy) (Set, error) {
	s := make(Set, len(hs))
	for _, h := range hs {
		if _, dup := s[h.Attribute()]; dup {
			return nil, fmt.Errorf("hierarchy: duplicate hierarchy for attribute %q", h.Attribute())
		}
		s[h.Attribute()] = h
	}
	return s, nil
}

// MustSet is NewSet that panics on error, for fixtures.
func MustSet(hs ...Hierarchy) Set {
	s, err := NewSet(hs...)
	if err != nil {
		panic(err)
	}
	return s
}

// CoverQI verifies the set has a hierarchy for every quasi-identifier of the
// schema.
func (s Set) CoverQI(schema *dataset.Schema) error {
	for _, j := range schema.QuasiIdentifiers() {
		name := schema.Attrs[j].Name
		if _, ok := s[name]; !ok {
			return fmt.Errorf("hierarchy: no hierarchy for quasi-identifier %q", name)
		}
	}
	return nil
}

// MaxLevels returns the per-attribute maximum levels for the schema's
// quasi-identifiers, in schema order. It is the shape of the generalization
// lattice.
func (s Set) MaxLevels(schema *dataset.Schema) ([]int, error) {
	if err := s.CoverQI(schema); err != nil {
		return nil, err
	}
	qi := schema.QuasiIdentifiers()
	levels := make([]int, len(qi))
	for i, j := range qi {
		levels[i] = s[schema.Attrs[j].Name].MaxLevel()
	}
	return levels, nil
}

// GeneralizeTable applies per-attribute levels (aligned with the schema's
// quasi-identifier order) to every row of the table, returning a new table.
// Non-QI columns are copied unchanged; sensitive columns are never
// generalized here.
func GeneralizeTable(t *dataset.Table, s Set, levels []int) (*dataset.Table, error) {
	qi := t.Schema.QuasiIdentifiers()
	if len(levels) != len(qi) {
		return nil, fmt.Errorf("hierarchy: %d levels for %d quasi-identifiers", len(levels), len(qi))
	}
	out := t.Clone()
	for li, j := range qi {
		h, ok := s[t.Schema.Attrs[j].Name]
		if !ok {
			return nil, fmt.Errorf("hierarchy: no hierarchy for quasi-identifier %q", t.Schema.Attrs[j].Name)
		}
		for i := range out.Rows {
			g, err := h.Generalize(t.Rows[i][j], levels[li])
			if err != nil {
				return nil, fmt.Errorf("hierarchy: row %d attribute %q: %w", i, t.Schema.Attrs[j].Name, err)
			}
			out.Rows[i][j] = g
		}
	}
	return out, nil
}

// SuppressRows replaces every quasi-identifier cell of the selected rows with
// the suppressed value, in place. This is how algorithms realize tuple
// suppression while keeping the table size constant (paper §3).
func SuppressRows(t *dataset.Table, rows []int) {
	qi := t.Schema.QuasiIdentifiers()
	for _, i := range rows {
		for _, j := range qi {
			t.Rows[i][j] = dataset.StarVal()
		}
	}
	if len(rows) > 0 {
		t.InvalidateColumns()
	}
}

func checkLevel(level, max int) error {
	if level < 0 || level > max {
		return fmt.Errorf("level %d out of range [0,%d]", level, max)
	}
	return nil
}
