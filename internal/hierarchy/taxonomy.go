package hierarchy

import (
	"fmt"

	"microdata/internal/dataset"
)

// Node is one node of a taxonomy tree. Leaves carry ground values; interior
// nodes carry generalized labels ("Married", "Not Married", ...).
type Node struct {
	Label    string
	Children []*Node
}

// N is a convenience constructor for taxonomy literals.
func N(label string, children ...*Node) *Node {
	return &Node{Label: label, Children: children}
}

// Taxonomy generalizes categorical ground values through a tree. The level
// of a ground value counts steps toward the root: level 0 is the leaf
// itself, level MaxLevel is the root, rendered as the suppressed value.
// Trees may be uneven; a value whose leaf is shallower than the deepest leaf
// saturates at the root early (the root then still renders as "*" only at
// MaxLevel; below that it renders as the root's label).
type Taxonomy struct {
	attr     string
	root     *Node
	depth    int // depth of the deepest leaf; MaxLevel == depth
	parents  map[*Node]*Node
	leafOf   map[string]*Node // ground label -> leaf
	leafCnt  map[*Node]int    // node -> number of leaves beneath
	totalLvs int
}

// NewTaxonomy builds a taxonomy hierarchy for the named attribute from a
// tree literal. Leaf labels must be unique; they are the attribute's ground
// domain.
func NewTaxonomy(attr string, root *Node) (*Taxonomy, error) {
	if root == nil {
		return nil, fmt.Errorf("hierarchy: taxonomy for %q has nil root", attr)
	}
	t := &Taxonomy{
		attr:    attr,
		root:    root,
		parents: make(map[*Node]*Node),
		leafOf:  make(map[string]*Node),
		leafCnt: make(map[*Node]int),
	}
	var walk func(n *Node, depth int) (leaves int, err error)
	walk = func(n *Node, depth int) (int, error) {
		if len(n.Children) == 0 {
			if _, dup := t.leafOf[n.Label]; dup {
				return 0, fmt.Errorf("hierarchy: taxonomy for %q has duplicate leaf %q", attr, n.Label)
			}
			t.leafOf[n.Label] = n
			t.leafCnt[n] = 1
			if depth > t.depth {
				t.depth = depth
			}
			return 1, nil
		}
		total := 0
		for _, c := range n.Children {
			if c == nil {
				return 0, fmt.Errorf("hierarchy: taxonomy for %q has nil child under %q", attr, n.Label)
			}
			t.parents[c] = n
			cl, err := walk(c, depth+1)
			if err != nil {
				return 0, err
			}
			total += cl
		}
		t.leafCnt[n] = total
		return total, nil
	}
	total, err := walk(root, 0)
	if err != nil {
		return nil, err
	}
	if total == 0 {
		return nil, fmt.Errorf("hierarchy: taxonomy for %q has no leaves", attr)
	}
	t.totalLvs = total
	if t.depth == 0 {
		// A single-node tree still provides one suppression step.
		t.depth = 1
	}
	return t, nil
}

// MustTaxonomy is NewTaxonomy that panics on error, for fixtures.
func MustTaxonomy(attr string, root *Node) *Taxonomy {
	t, err := NewTaxonomy(attr, root)
	if err != nil {
		panic(err)
	}
	return t
}

// Attribute implements Hierarchy.
func (t *Taxonomy) Attribute() string { return t.attr }

// MaxLevel implements Hierarchy; it equals the depth of the deepest leaf.
func (t *Taxonomy) MaxLevel() int { return t.depth }

// node returns the ancestor of v's leaf after climbing the given number of
// levels, saturating at the root.
func (t *Taxonomy) node(v dataset.Value, level int) (*Node, error) {
	if v.Kind() != dataset.Str {
		return nil, fmt.Errorf("taxonomy %q: cannot generalize %v value", t.attr, v.Kind())
	}
	n, ok := t.leafOf[v.Text()]
	if !ok {
		return nil, fmt.Errorf("taxonomy %q: unknown value %q", t.attr, v.Text())
	}
	for i := 0; i < level && t.parents[n] != nil; i++ {
		n = t.parents[n]
	}
	return n, nil
}

// Generalize implements Hierarchy.
func (t *Taxonomy) Generalize(v dataset.Value, level int) (dataset.Value, error) {
	if err := checkLevel(level, t.depth); err != nil {
		return dataset.Value{}, fmt.Errorf("taxonomy %q: %w", t.attr, err)
	}
	if level == 0 {
		if v.Kind() != dataset.Str {
			return dataset.Value{}, fmt.Errorf("taxonomy %q: cannot generalize %v value", t.attr, v.Kind())
		}
		if _, ok := t.leafOf[v.Text()]; !ok {
			return dataset.Value{}, fmt.Errorf("taxonomy %q: unknown value %q", t.attr, v.Text())
		}
		return v, nil
	}
	if level == t.depth {
		// Validate the value even though the output is constant.
		if _, err := t.node(v, 0); err != nil {
			return dataset.Value{}, err
		}
		return dataset.StarVal(), nil
	}
	n, err := t.node(v, level)
	if err != nil {
		return dataset.Value{}, err
	}
	if n == t.root {
		return dataset.StarVal(), nil
	}
	if len(n.Children) == 0 {
		// Saturated at a leaf shallower than the requested level cannot
		// happen (level < depth climbs toward root), but a leaf-rooted
		// single-node tree reaches here; treat as suppression.
		return dataset.StrVal(n.Label), nil
	}
	return dataset.SetVal(n.Label), nil
}

// Loss implements Hierarchy using Iyengar's general loss metric for
// categorical attributes: (leaves(g) - 1) / (totalLeaves - 1).
func (t *Taxonomy) Loss(v dataset.Value, level int) (float64, error) {
	if err := checkLevel(level, t.depth); err != nil {
		return 0, fmt.Errorf("taxonomy %q: %w", t.attr, err)
	}
	if t.totalLvs == 1 {
		if level == t.depth {
			return 1, nil
		}
		return 0, nil
	}
	if level == t.depth {
		return 1, nil
	}
	n, err := t.node(v, level)
	if err != nil {
		return 0, err
	}
	return float64(t.leafCnt[n]-1) / float64(t.totalLvs-1), nil
}

// LeafCount returns the number of ground values covered by the generalized
// form of v at the given level. Used by ℓ-diversity-style measurements and
// personalized guarding nodes.
func (t *Taxonomy) LeafCount(v dataset.Value, level int) (int, error) {
	if err := checkLevel(level, t.depth); err != nil {
		return 0, fmt.Errorf("taxonomy %q: %w", t.attr, err)
	}
	if level == t.depth {
		return t.totalLvs, nil
	}
	n, err := t.node(v, level)
	if err != nil {
		return 0, err
	}
	return t.leafCnt[n], nil
}

// Leaves returns the ground domain (all leaf labels) in depth-first order.
func (t *Taxonomy) Leaves() []string {
	var out []string
	var walk func(n *Node)
	walk = func(n *Node) {
		if len(n.Children) == 0 {
			out = append(out, n.Label)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// LCA returns the label of the lowest common ancestor of the given ground
// values, and whether that ancestor is the root. Local-recoding algorithms
// (Mondrian) use it to generalize a region's categorical values minimally.
func (t *Taxonomy) LCA(grounds []string) (label string, isRoot bool, err error) {
	if len(grounds) == 0 {
		return "", false, fmt.Errorf("hierarchy: LCA of no values")
	}
	// Ancestor chain of the first value, leaf to root.
	first, ok := t.leafOf[grounds[0]]
	if !ok {
		return "", false, fmt.Errorf("hierarchy: taxonomy %q: unknown value %q", t.attr, grounds[0])
	}
	var chain []*Node
	depth := map[*Node]int{}
	for n := first; n != nil; n = t.parents[n] {
		depth[n] = len(chain)
		chain = append(chain, n)
	}
	lca := first
	for _, g := range grounds[1:] {
		leaf, ok := t.leafOf[g]
		if !ok {
			return "", false, fmt.Errorf("hierarchy: taxonomy %q: unknown value %q", t.attr, g)
		}
		// Climb from leaf until hitting the current LCA's chain at or
		// above the current LCA.
		n := leaf
		for {
			if d, onChain := depth[n]; onChain {
				if d > depth[lca] {
					lca = n
				}
				break
			}
			n = t.parents[n]
			if n == nil {
				lca = t.root
				break
			}
		}
	}
	return lca.Label, lca == t.root, nil
}

// CoveringLabels returns the labels of every node on the path from the
// ground value's leaf to the root — exactly the generalized labels g
// (other than the universal "*") for which CoversValue(g, ground) holds.
// It returns nil for ground values outside the taxonomy. Package attack
// uses it to resolve Set-cell candidates by hash lookup instead of
// walking the tree per anonymized row.
func (t *Taxonomy) CoveringLabels(ground string) []string {
	leaf, ok := t.leafOf[ground]
	if !ok {
		return nil
	}
	var out []string
	for n := leaf; n != nil; n = t.parents[n] {
		out = append(out, n.Label)
	}
	return out
}

// CoversValue reports whether the generalized label g (an interior node
// label, a leaf label, or "*") covers the ground value ground.
func (t *Taxonomy) CoversValue(g, ground string) bool {
	if g == "*" {
		return true
	}
	leaf, ok := t.leafOf[ground]
	if !ok {
		return false
	}
	for n := leaf; n != nil; n = t.parents[n] {
		if n.Label == g {
			return true
		}
	}
	return false
}
