package hierarchy

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTaxonomy checks that arbitrary text either fails cleanly or
// produces a taxonomy that round-trips through WriteTaxonomy.
func FuzzParseTaxonomy(f *testing.F) {
	f.Add("*\n  A\n    a1\n    a2\n  B\n")
	f.Add("*\n\tA\n\t\ta1\n")
	f.Add("# comment\nroot\n  leaf\n")
	f.Add("")
	f.Add("  indented-root\n")
	f.Add("*\n      jump\n")
	f.Add("*\n  dup\n  dup\n")
	f.Fuzz(func(t *testing.T, text string) {
		tax, err := ParseTaxonomy("X", strings.NewReader(text))
		if err != nil {
			return
		}
		// A parsed taxonomy must be internally consistent.
		if tax.MaxLevel() < 1 {
			t.Fatalf("taxonomy with MaxLevel %d", tax.MaxLevel())
		}
		leaves := tax.Leaves()
		if len(leaves) == 0 {
			t.Fatal("taxonomy with no leaves")
		}
		var buf bytes.Buffer
		if err := WriteTaxonomy(&buf, tax); err != nil {
			t.Fatalf("write: %v", err)
		}
		back, err := ParseTaxonomy("X", &buf)
		if err != nil {
			t.Fatalf("round trip parse: %v\n%s", err, buf.String())
		}
		if back.MaxLevel() != tax.MaxLevel() || len(back.Leaves()) != len(leaves) {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				tax.MaxLevel(), len(leaves), back.MaxLevel(), len(back.Leaves()))
		}
	})
}
