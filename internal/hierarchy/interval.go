package hierarchy

import (
	"fmt"
	"math"

	"microdata/internal/dataset"
)

// IntervalLevel describes one rung of an interval ladder: values are grouped
// into half-open intervals (Origin + (k-1)·Width, Origin + k·Width].
type IntervalLevel struct {
	Width  float64
	Origin float64
}

// Intervals generalizes numeric values through a ladder of anchored
// interval partitions. Level 0 is the exact value; levels 1..len(levels)
// are the configured interval partitions; level len(levels)+1 is full
// suppression. The paper's Age ladders are expressed this way: T3a uses
// width 10 anchored at 5 ((25,35], (35,45], ...), T3b width 20 anchored at
// 15, T4 width 20 anchored at 0.
type Intervals struct {
	attr       string
	levels     []IntervalLevel
	dmin, dmax float64 // domain bounds for loss normalization
}

// NewIntervals builds an interval hierarchy over the domain [dmin, dmax].
// Every level must have positive width; levels should be ordered from
// finest to coarsest but this is not required for correctness.
func NewIntervals(attr string, dmin, dmax float64, levels ...IntervalLevel) (*Intervals, error) {
	if dmax <= dmin {
		return nil, fmt.Errorf("hierarchy: intervals for %q: domain [%v,%v] is empty", attr, dmin, dmax)
	}
	for i, l := range levels {
		if l.Width <= 0 || math.IsNaN(l.Width) || math.IsInf(l.Width, 0) {
			return nil, fmt.Errorf("hierarchy: intervals for %q: level %d has width %v", attr, i+1, l.Width)
		}
	}
	return &Intervals{attr: attr, levels: levels, dmin: dmin, dmax: dmax}, nil
}

// MustIntervals is NewIntervals that panics on error, for fixtures.
func MustIntervals(attr string, dmin, dmax float64, levels ...IntervalLevel) *Intervals {
	h, err := NewIntervals(attr, dmin, dmax, levels...)
	if err != nil {
		panic(err)
	}
	return h
}

// Attribute implements Hierarchy.
func (h *Intervals) Attribute() string { return h.attr }

// MaxLevel implements Hierarchy: one rung per configured level plus the
// suppression rung.
func (h *Intervals) MaxLevel() int { return len(h.levels) + 1 }

// bucket returns the (lo, hi] interval containing x at ladder rung lv.
func (l IntervalLevel) bucket(x float64) (lo, hi float64) {
	k := math.Ceil((x - l.Origin) / l.Width)
	if l.Origin+(k-1)*l.Width >= x { // x exactly on a lower boundary
		k--
	}
	if l.Origin+k*l.Width < x {
		k++
	}
	return l.Origin + (k-1)*l.Width, l.Origin + k*l.Width
}

// Generalize implements Hierarchy.
func (h *Intervals) Generalize(v dataset.Value, level int) (dataset.Value, error) {
	if err := checkLevel(level, h.MaxLevel()); err != nil {
		return dataset.Value{}, fmt.Errorf("intervals %q: %w", h.attr, err)
	}
	if v.Kind() != dataset.Num {
		return dataset.Value{}, fmt.Errorf("intervals %q: cannot generalize %v value", h.attr, v.Kind())
	}
	x := v.Float()
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return dataset.Value{}, fmt.Errorf("intervals %q: non-finite value %v", h.attr, x)
	}
	switch {
	case level == 0:
		return v, nil
	case level == h.MaxLevel():
		return dataset.StarVal(), nil
	default:
		lo, hi := h.levels[level-1].bucket(x)
		return dataset.IntervalVal(lo, hi), nil
	}
}

// Loss implements Hierarchy: interval width over domain width, clamped to
// [0,1]; 1 for suppression.
func (h *Intervals) Loss(v dataset.Value, level int) (float64, error) {
	if err := checkLevel(level, h.MaxLevel()); err != nil {
		return 0, fmt.Errorf("intervals %q: %w", h.attr, err)
	}
	switch {
	case level == 0:
		return 0, nil
	case level == h.MaxLevel():
		return 1, nil
	default:
		loss := h.levels[level-1].Width / (h.dmax - h.dmin)
		if loss > 1 {
			loss = 1
		}
		return loss, nil
	}
}

// Domain returns the configured [dmin, dmax] bounds.
func (h *Intervals) Domain() (dmin, dmax float64) { return h.dmin, h.dmax }
