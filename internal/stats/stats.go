// Package stats provides the descriptive statistics the experiment harness
// uses to quantify anonymization bias: a skewed class-size or loss
// distribution is the paper's §1 "higher privacy for some individuals and
// minimalistic for others". None of these functions mutate their input.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation; NaN for empty input.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the minimum; NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum; NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between closest ranks. It returns NaN for empty input or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Gini returns the Gini coefficient of a non-negative distribution: 0 when
// every tuple enjoys the same property value, approaching 1 as the property
// concentrates on few tuples. The paper's anonymization bias is visible as
// a non-zero Gini of the property vector. Negative inputs are rejected.
func Gini(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: Gini of empty slice")
	}
	s := append([]float64(nil), xs...)
	total := 0.0
	for _, x := range s {
		if x < 0 || math.IsNaN(x) {
			return 0, fmt.Errorf("stats: Gini requires non-negative values, got %v", x)
		}
		total += x
	}
	if total == 0 {
		return 0, nil
	}
	sort.Float64s(s)
	// G = (2*sum(i*x_i) / (n*sum(x)) ) - (n+1)/n with 1-based ranks.
	n := float64(len(s))
	weighted := 0.0
	for i, x := range s {
		weighted += float64(i+1) * x
	}
	return 2*weighted/(n*total) - (n+1)/n, nil
}

// Skewness returns the adjusted Fisher–Pearson sample skewness; NaN when
// fewer than 3 samples or zero variance.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return math.NaN()
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return math.NaN()
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2)
}

// Histogram counts values into nbins equal-width bins over [lo, hi]; values
// outside the range clamp into the end bins. It returns an error for
// nbins < 1 or an empty range.
func Histogram(xs []float64, lo, hi float64, nbins int) ([]int, error) {
	if nbins < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least 1 bin")
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%v,%v] is empty", lo, hi)
	}
	bins := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		bins[b]++
	}
	return bins, nil
}

// Summary bundles the descriptive statistics the bias tables report.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
	StdDev float64
	Gini   float64
	Skew   float64
}

// Summarize computes a Summary of the vector. Gini is NaN when the vector
// contains negative values (loss differences can be negative).
func Summarize(xs []float64) Summary {
	g, err := Gini(xs)
	if err != nil {
		g = math.NaN()
	}
	return Summary{
		N:      len(xs),
		Min:    Min(xs),
		Q1:     Quantile(xs, 0.25),
		Median: Median(xs),
		Q3:     Quantile(xs, 0.75),
		Max:    Max(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Gini:   g,
		Skew:   Skewness(xs),
	}
}
