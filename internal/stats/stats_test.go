package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{3, 3, 3, 3, 4, 4, 4, 3, 3, 4}
	if got := Mean(xs); got != 3.4 {
		t.Errorf("Mean = %v, want 3.4 (paper's P_s-avg of T3a)", got)
	}
	if got := StdDev(xs); !approx(got, math.Sqrt(0.24), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Error("empty input should give NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{5, -2, 7, 0}
	if Min(xs) != -2 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty input should give NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := map[float64]float64{0: 1, 1: 4, 0.5: 2.5, 0.25: 1.75}
	for q, want := range cases {
		if got := Quantile(xs, q); !approx(got, want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if got := Median([]float64{9}); got != 9 {
		t.Errorf("Median single = %v", got)
	}
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(Quantile(xs, q)) {
			t.Errorf("Quantile(%v) should be NaN", q)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty input should give NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func TestGini(t *testing.T) {
	if g, err := Gini([]float64{5, 5, 5, 5}); err != nil || g != 0 {
		t.Errorf("uniform Gini = %v, %v", g, err)
	}
	// One tuple holds everything: G = (n-1)/n.
	if g, err := Gini([]float64{0, 0, 0, 10}); err != nil || !approx(g, 0.75, 1e-12) {
		t.Errorf("concentrated Gini = %v, %v", g, err)
	}
	if g, err := Gini([]float64{0, 0}); err != nil || g != 0 {
		t.Errorf("all-zero Gini = %v, %v", g, err)
	}
	if _, err := Gini(nil); err == nil {
		t.Error("empty Gini should fail")
	}
	if _, err := Gini([]float64{1, -1}); err == nil {
		t.Error("negative Gini should fail")
	}
	if _, err := Gini([]float64{math.NaN()}); err == nil {
		t.Error("NaN Gini should fail")
	}
}

func TestGiniRangeQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		g, err := Gini(xs)
		if err != nil {
			return false
		}
		return g >= -1e-12 && g < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSkewness(t *testing.T) {
	if !math.IsNaN(Skewness([]float64{1, 2})) {
		t.Error("too-few samples should give NaN")
	}
	if !math.IsNaN(Skewness([]float64{2, 2, 2})) {
		t.Error("zero variance should give NaN")
	}
	if got := Skewness([]float64{1, 2, 3, 4, 5}); !approx(got, 0, 1e-12) {
		t.Errorf("symmetric skew = %v", got)
	}
	if got := Skewness([]float64{1, 1, 1, 10}); got <= 0 {
		t.Errorf("right-skewed data should have positive skew, got %v", got)
	}
}

func TestHistogram(t *testing.T) {
	bins, err := Histogram([]float64{0, 1, 2, 3, 9, 10, -5, 99}, 0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := 8
	total := 0
	for _, b := range bins {
		total += b
	}
	if total != wantTotal {
		t.Errorf("histogram loses values: %v", bins)
	}
	if bins[0] < 2 {
		t.Errorf("clamping failed: %v", bins)
	}
	if _, err := Histogram(nil, 0, 10, 0); err == nil {
		t.Error("zero bins should fail")
	}
	if _, err := Histogram(nil, 5, 5, 3); err == nil {
		t.Error("empty range should fail")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 3, 3, 3, 4, 4, 4, 3, 3, 4})
	if s.N != 10 || s.Min != 3 || s.Max != 4 || s.Mean != 3.4 {
		t.Errorf("Summary = %+v", s)
	}
	if s.Median != 3 {
		t.Errorf("Median = %v", s.Median)
	}
	neg := Summarize([]float64{-1, 1})
	if !math.IsNaN(neg.Gini) {
		t.Error("negative values should give NaN Gini in Summary")
	}
}
