package paperdata

import (
	"testing"

	"microdata/internal/core"
	"microdata/internal/dataset"
	"microdata/internal/privacy"
)

func TestT1MatchesTable1(t *testing.T) {
	t1 := T1()
	if t1.Len() != 10 {
		t.Fatalf("T1 has %d tuples, want 10", t1.Len())
	}
	// Spot-check the printed rows.
	if t1.At(0, 0).Text() != "13053" || t1.At(0, 1).Float() != 28 || t1.At(0, 2).Text() != "CF-Spouse" {
		t.Errorf("tuple 1 mismatch: %v %v %v", t1.At(0, 0), t1.At(0, 1), t1.At(0, 2))
	}
	if t1.At(9, 0).Text() != "13250" || t1.At(9, 1).Float() != 47 || t1.At(9, 2).Text() != "Separated" {
		t.Errorf("tuple 10 mismatch")
	}
	// Fresh copies: mutating one must not leak.
	t1.Rows[0][0] = dataset.StarVal()
	if T1().At(0, 0).IsSuppressed() {
		t.Error("T1 returns shared storage")
	}
}

func TestT3aMatchesTable2Left(t *testing.T) {
	t3a := T3a()
	want := [][3]string{
		{"1305*", "(25,35]", "Married"},
		{"1326*", "(35,45]", "Not Married"},
		{"1326*", "(35,45]", "Not Married"},
		{"1305*", "(25,35]", "Married"},
		{"1325*", "(45,55]", "Not Married"},
		{"1325*", "(45,55]", "Not Married"},
		{"1325*", "(45,55]", "Not Married"},
		{"1305*", "(25,35]", "Married"},
		{"1326*", "(35,45]", "Not Married"},
		{"1325*", "(45,55]", "Not Married"},
	}
	for i, w := range want {
		for j := 0; j < 3; j++ {
			if got := t3a.At(i, j).String(); got != w[j] {
				t.Errorf("T3a[%d][%d] = %q, want %q", i+1, j, got, w[j])
			}
		}
	}
}

func TestT3bMatchesTable2Right(t *testing.T) {
	t3b := T3b()
	want := [][3]string{
		{"130**", "(15,35]", "Married"},
		{"132**", "(35,55]", "Not Married"},
		{"132**", "(35,55]", "Not Married"},
		{"130**", "(15,35]", "Married"},
		{"132**", "(35,55]", "Not Married"},
		{"132**", "(35,55]", "Not Married"},
		{"132**", "(35,55]", "Not Married"},
		{"130**", "(15,35]", "Married"},
		{"132**", "(35,55]", "Not Married"},
		{"132**", "(35,55]", "Not Married"},
	}
	for i, w := range want {
		for j := 0; j < 3; j++ {
			if got := t3b.At(i, j).String(); got != w[j] {
				t.Errorf("T3b[%d][%d] = %q, want %q", i+1, j, got, w[j])
			}
		}
	}
}

func TestT4MatchesTable3(t *testing.T) {
	t4 := T4()
	want := [][3]string{
		{"13***", "(20,40]", "*"},
		{"13***", "(40,60]", "*"},
		{"13***", "(20,40]", "*"},
		{"13***", "(20,40]", "*"},
		{"13***", "(40,60]", "*"},
		{"13***", "(40,60]", "*"},
		{"13***", "(40,60]", "*"},
		{"13***", "(20,40]", "*"},
		{"13***", "(40,60]", "*"},
		{"13***", "(40,60]", "*"},
	}
	for i, w := range want {
		for j := 0; j < 3; j++ {
			if got := t4.At(i, j).String(); got != w[j] {
				t.Errorf("T4[%d][%d] = %q, want %q", i+1, j, got, w[j])
			}
		}
	}
}

func TestPartitionsReproduceFigure1(t *testing.T) {
	cases := []struct {
		name  string
		table *dataset.Table
		k     int
		want  core.PropertyVector
	}{
		{"T3a", T3a(), 3, ClassSizeT3a},
		{"T3b", T3b(), 3, ClassSizeT3b},
		{"T4", T4(), 4, ClassSizeT4},
	}
	for _, c := range cases {
		p, err := Partition(c.table)
		if err != nil {
			t.Fatal(err)
		}
		if got := privacy.KAnonymity(p); got != c.k {
			t.Errorf("%s: k = %d, want %d", c.name, got, c.k)
		}
		got := core.PropertyVector(privacy.ClassSizeVector(p))
		if !got.Equal(c.want) {
			t.Errorf("%s: class-size vector = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSensitiveCountMatchesPaper(t *testing.T) {
	p, err := Partition(T3a())
	if err != nil {
		t.Fatal(err)
	}
	got, err := privacy.SensitiveCountVector(p, SensitiveColumn())
	if err != nil {
		t.Fatal(err)
	}
	if !core.PropertyVector(got).Equal(SensitiveCountT3a) {
		t.Errorf("sensitive-count vector = %v, want %v", got, SensitiveCountT3a)
	}
}

func TestQuotedVectorsConsistency(t *testing.T) {
	// The quoted §5.5 utility vectors must reproduce the paper's coverage
	// index values.
	if got, _ := core.EvalBinary(core.PCov, UtilityT3a, UtilityT3b); got != 1 {
		t.Errorf("P_cov(u_a, u_b) = %v, want 1", got)
	}
	if got, _ := core.EvalBinary(core.PCov, UtilityT3b, UtilityT3a); got != 0.3 {
		t.Errorf("P_cov(u_b, u_a) = %v, want 0.3", got)
	}
	// And the hv example's published values.
	if got, _ := core.EvalBinary(core.PHv, HvExampleS, HvExampleT); got != 56727 {
		t.Errorf("P_hv(s,t) = %v", got)
	}
}

func TestLatticeLevelsAreValid(t *testing.T) {
	hs := Hierarchies()
	ml, err := hs.MaxLevels(Schema())
	if err != nil {
		t.Fatal(err)
	}
	if ml[0] != 5 || ml[1] != 4 {
		t.Fatalf("max levels = %v", ml)
	}
	for _, n := range []struct {
		name string
		lv   []int
	}{
		{"T3a", LevelsT3a}, {"T3b", LevelsT3b}, {"T4", LevelsT4},
	} {
		for i, l := range n.lv {
			if l < 0 || l > ml[i] {
				t.Errorf("%s level %d out of range", n.name, i)
			}
		}
	}
}
