// Package paperdata holds the paper's running example as executable
// fixtures: the hypothetical microdata of Table 1 (T1), the generalization
// ladders that produce the two 3-anonymous tables of Table 2 (T3a, T3b) and
// the 4-anonymous table of Table 3 (T4), and every worked property vector
// the paper quotes (§3, §5.3, §5.4, §5.5).
//
// All functions return fresh copies; callers may mutate freely.
package paperdata

import (
	"fmt"

	"microdata/internal/core"
	"microdata/internal/dataset"
	"microdata/internal/eqclass"
	"microdata/internal/hierarchy"
	"microdata/internal/lattice"
)

// Schema returns T1's schema: ZipCode and Age are quasi-identifiers,
// MaritalStatus is sensitive.
func Schema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: "ZipCode", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "Age", Kind: dataset.Numeric, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "MaritalStatus", Kind: dataset.Categorical, Role: dataset.Sensitive},
	)
}

// rows of Table 1 in the paper's order (tuples 1..10).
var t1Rows = []struct {
	Zip     string
	Age     float64
	Marital string
}{
	{"13053", 28, "CF-Spouse"},
	{"13268", 41, "Separated"},
	{"13268", 39, "Never Married"},
	{"13053", 26, "CF-Spouse"},
	{"13253", 50, "Divorced"},
	{"13253", 55, "Spouse Absent"},
	{"13250", 49, "Divorced"},
	{"13052", 31, "Spouse Present"},
	{"13269", 42, "Separated"},
	{"13250", 47, "Separated"},
}

// T1 returns the paper's Table 1: the hypothetical 10-tuple microdata set.
func T1() *dataset.Table {
	t := dataset.NewTable(Schema())
	for _, r := range t1Rows {
		t.MustAppend(dataset.StrVal(r.Zip), dataset.NumVal(r.Age), dataset.StrVal(r.Marital))
	}
	return t
}

// MaritalTaxonomy returns the Marital Status taxonomy implied by Table 2:
// {CF-Spouse, Spouse Present} generalize to "Married"; {Separated, Never
// Married, Divorced, Spouse Absent} to "Not Married".
func MaritalTaxonomy() *hierarchy.Taxonomy {
	return hierarchy.MustTaxonomy("MaritalStatus", hierarchy.N("*",
		hierarchy.N("Married",
			hierarchy.N("CF-Spouse"), hierarchy.N("Spouse Present")),
		hierarchy.N("Not Married",
			hierarchy.N("Separated"), hierarchy.N("Never Married"),
			hierarchy.N("Divorced"), hierarchy.N("Spouse Absent")),
	))
}

// Hierarchies returns the quasi-identifier generalization ladders that
// reproduce the paper's three anonymizations:
//
//	ZipCode: 5-digit prefix masking (levels 0..5);
//	Age:     level 1 = width-10 intervals anchored at 5  (T3a: (25,35] ...),
//	         level 2 = width-20 intervals anchored at 15 (T3b: (15,35] ...),
//	         level 3 = width-20 intervals anchored at 0  (T4:  (20,40] ...),
//	         level 4 = suppression.
func Hierarchies() hierarchy.Set {
	return hierarchy.MustSet(
		hierarchy.MustPrefixMask("ZipCode", 5, 10),
		hierarchy.MustIntervals("Age", 0, 100,
			hierarchy.IntervalLevel{Width: 10, Origin: 5},
			hierarchy.IntervalLevel{Width: 20, Origin: 15},
			hierarchy.IntervalLevel{Width: 20, Origin: 0},
		),
	)
}

// Levels of the three published generalizations on the [ZipCode, Age]
// lattice built from Hierarchies.
var (
	// LevelsT3a is Table 2 (left): zip 1305*, age (25,35].
	LevelsT3a = lattice.Node{1, 1}
	// LevelsT3b is Table 2 (right): zip 130**, age (15,35].
	LevelsT3b = lattice.Node{2, 2}
	// LevelsT4 is Table 3: zip 13***, age (20,40].
	LevelsT4 = lattice.Node{3, 3}
)

// generalize builds one of the published tables, optionally generalizing
// the sensitive column through the marital taxonomy (Table 2 prints
// "Married (CF-Spouse)"; Table 3 prints "*").
func generalize(levels lattice.Node, maritalLevel int) (*dataset.Table, error) {
	t1 := T1()
	anon, err := hierarchy.GeneralizeTable(t1, Hierarchies(), levels)
	if err != nil {
		return nil, fmt.Errorf("paperdata: %w", err)
	}
	if maritalLevel > 0 {
		tax := MaritalTaxonomy()
		j := anon.Schema.Index("MaritalStatus")
		for i := range anon.Rows {
			g, err := tax.Generalize(t1.At(i, j), maritalLevel)
			if err != nil {
				return nil, fmt.Errorf("paperdata: %w", err)
			}
			anon.Rows[i][j] = g
		}
		anon.InvalidateColumns()
	}
	return anon, nil
}

// T3a returns the left 3-anonymous generalization of Table 2.
func T3a() *dataset.Table {
	t, err := generalize(LevelsT3a, 1)
	if err != nil {
		panic(err)
	}
	return t
}

// T3b returns the right 3-anonymous generalization of Table 2.
func T3b() *dataset.Table {
	t, err := generalize(LevelsT3b, 1)
	if err != nil {
		panic(err)
	}
	return t
}

// T4 returns the 4-anonymous generalization of Table 3 (marital status
// fully suppressed, as printed).
func T4() *dataset.Table {
	t, err := generalize(LevelsT4, 2)
	if err != nil {
		panic(err)
	}
	return t
}

// SensitiveColumn returns T1's ground Marital Status column — Table 2 shows
// these "real values ... in italics"; all diversity measurements use them.
func SensitiveColumn() []dataset.Value {
	col := make([]dataset.Value, len(t1Rows))
	for i, r := range t1Rows {
		col[i] = dataset.StrVal(r.Marital)
	}
	return col
}

// Partition computes the equivalence-class partition of an anonymized
// version of T1 over its quasi-identifiers.
func Partition(t *dataset.Table) (*eqclass.Partition, error) {
	return eqclass.FromTable(t)
}

// The paper's quoted property vectors.
var (
	// ClassSizeT3a is §3's "equivalence class property vector induced in
	// T3a": (3,3,3,3,4,4,4,3,3,4). Also Figure 1's T3a series.
	ClassSizeT3a = core.PropertyVector{3, 3, 3, 3, 4, 4, 4, 3, 3, 4}
	// ClassSizeT3b is §3's vector t for T3b: (3,7,7,3,7,7,7,3,7,7).
	ClassSizeT3b = core.PropertyVector{3, 7, 7, 3, 7, 7, 7, 3, 7, 7}
	// ClassSizeT4 is Figure 1's T4 series: (4,6,4,4,6,6,6,4,6,6).
	ClassSizeT4 = core.PropertyVector{4, 6, 4, 4, 6, 6, 6, 4, 6, 6}
	// SensitiveCountT3a is §3's ℓ-diversity property vector for T3a:
	// (2,2,1,2,2,1,2,1,2,1).
	SensitiveCountT3a = core.PropertyVector{2, 2, 1, 2, 2, 1, 2, 1, 2, 1}
	// UtilityT3a and UtilityT3b are the §5.5 Iyengar-metric utility
	// vectors u_a and u_b, quoted verbatim (the paper does not publish
	// the hierarchy configuration that produced them; see EXPERIMENTS.md).
	UtilityT3a = core.PropertyVector{2.03, 1.7, 1.7, 2.03, 1.6, 1.6, 1.6, 2.03, 1.7, 1.6}
	UtilityT3b = core.PropertyVector{2.03, 0.97, 0.97, 2.03, 0.97, 0.97, 0.97, 2.03, 0.97, 0.97}
	// SpreadExampleD1 and D2 are §5.3's hypothetical vectors.
	SpreadExampleD1 = core.PropertyVector{2, 2, 3, 4, 5}
	SpreadExampleD2 = core.PropertyVector{3, 2, 4, 2, 3}
	// SpreadThreeAnon and SpreadTwoAnon are §5.3's second example: a
	// 3-anonymous and a 2-anonymous class-size vector whose spread
	// indices "compare at 2 and 8".
	SpreadThreeAnon = core.PropertyVector{3, 3, 3, 5, 5, 5, 5, 5, 3, 3, 3, 4, 4, 4, 4}
	SpreadTwoAnon   = core.PropertyVector{2, 2, 6, 6, 6, 6, 6, 6, 3, 3, 3, 4, 4, 4, 4}
	// HvExampleS and HvExampleT are §5.4's tournament example.
	HvExampleS = core.PropertyVector{3, 3, 3, 5, 5, 5, 5, 5}
	HvExampleT = core.PropertyVector{4, 4, 4, 4, 4, 4, 4, 4}
)
