package experiment

import (
	"context"
	"fmt"
	"io"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/moga"
	"microdata/internal/generator"
	"microdata/internal/paperdata"
)

// e16 is the §7 future-work experiment: privacy as a vector-derived
// objective, explored as a Pareto front instead of a constrained optimum.
func e16(opts Options) Experiment {
	return Experiment{
		ID: "E16", Title: "multi-objective privacy/utility Pareto front", Artifact: "§7 proposed extension",
		Run: func(ctx context.Context, w io.Writer) error {
			// Ground truth on the paper's own lattice.
			cfg := algorithm.Config{
				K:           1,
				Hierarchies: paperdata.Hierarchies(),
				Metric:      algorithm.MetricLM,
			}
			truth, err := moga.ExhaustiveFrontContext(ctx, paperdata.T1(), cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "paper lattice (30 nodes): exact Pareto front has %d points\n", len(truth.Points))
			fmt.Fprintf(w, "  %-10s %12s %8s %8s\n", "node", "privacyRank", "LM", "k_act")
			for _, p := range truth.Points {
				fmt.Fprintf(w, "  %-10s %12s %8s %8d\n", p.Node, trim(p.Obj.PrivacyRank), trim(p.Obj.Loss), p.KActual)
			}
			nsga, err := (&moga.NSGA2{}).ExploreContext(ctx, paperdata.T1(), cfg)
			if err != nil {
				return err
			}
			writeKV(w, "NSGA-II coverage of the exact front", trim(moga.Coverage(nsga, truth)))
			writeKV(w, "NSGA-II evaluations (of 30 nodes)", nsga.Evaluations)

			// Census scale: NSGA-II vs exhaustive on the nested ladders.
			tab, err := generator.Generate(generator.Config{N: opts.CensusN, Seed: opts.Seed})
			if err != nil {
				return err
			}
			ccfg := algorithm.Config{
				K:           1,
				Hierarchies: generator.Hierarchies(),
				Metric:      algorithm.MetricLM,
				Taxonomies:  generator.Taxonomies(),
				Seed:        opts.Seed,
			}
			ctruth, err := moga.ExhaustiveFrontContext(ctx, tab, ccfg)
			if err != nil {
				return err
			}
			cnsga, err := (&moga.NSGA2{}).ExploreContext(ctx, tab, ccfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "census N=%d: exact front %d points (%d nodes), NSGA-II front %d points (%d evaluations), coverage %s\n",
				opts.CensusN, len(ctruth.Points), ctruth.Evaluations,
				len(cnsga.Points), cnsga.Evaluations, trim(moga.Coverage(cnsga, ctruth)))
			fmt.Fprintf(w, "  census front (exact): k_act ranges along the trade-off:\n")
			for _, p := range ctruth.Points {
				fmt.Fprintf(w, "  %-14s rank=%-10s LM=%-8s k_act=%d\n", p.Node, trim(p.Obj.PrivacyRank), trim(p.Obj.Loss), p.KActual)
			}
			fmt.Fprintln(w, "  Privacy handled as an objective (paper §7): the front exposes every")
			fmt.Fprintln(w, "  k/utility compromise at once instead of one constrained answer.")
			return nil
		},
	}
}
