package experiment

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// small keeps the scaled experiments fast under test.
var small = Options{CensusN: 200, Ks: []int{2, 5}, Seed: 1}

func runExp(t *testing.T, id string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := RunByID(&buf, id, small); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return buf.String()
}

func TestRegistryComplete(t *testing.T) {
	exps := Registry(small)
	if len(exps) != 19 {
		t.Fatalf("registry has %d experiments, want 19", len(exps))
	}
	for i, e := range exps {
		if idNum(e.ID) != i+1 {
			t.Errorf("experiment %d has ID %s", i, e.ID)
		}
		if e.Title == "" || e.Artifact == "" || e.Run == nil {
			t.Errorf("%s incomplete: %+v", e.ID, e)
		}
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("E7", small); !ok {
		t.Error("E7 should exist")
	}
	if _, ok := Find("E99", small); ok {
		t.Error("E99 should not exist")
	}
	var buf bytes.Buffer
	if err := RunByID(&buf, "E99", small); err == nil {
		t.Error("running unknown experiment should fail")
	}
}

func TestE1PrintsTable1(t *testing.T) {
	out := runExp(t, "E1")
	for _, want := range []string{"13053", "28", "CF-Spouse", "13250", "Separated"} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 missing %q:\n%s", want, out)
		}
	}
}

func TestE2PrintsBothGeneralizations(t *testing.T) {
	out := runExp(t, "E2")
	for _, want := range []string{"1305*", "(25,35]", "130**", "(15,35]", "k-anonymity", "3"} {
		if !strings.Contains(out, want) {
			t.Errorf("E2 missing %q", want)
		}
	}
}

func TestE3PrintsT4(t *testing.T) {
	out := runExp(t, "E3")
	for _, want := range []string{"13***", "(20,40]", "(40,60]", "4"} {
		if !strings.Contains(out, want) {
			t.Errorf("E3 missing %q", want)
		}
	}
}

func TestE4PrintsFigure1Series(t *testing.T) {
	out := runExp(t, "E4")
	for _, want := range []string{
		"(3,3,3,3,4,4,4,3,3,4)",
		"(3,7,7,3,7,7,7,3,7,7)",
		"(4,6,4,4,6,6,6,4,6,6)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E4 missing series %q:\n%s", want, out)
		}
	}
}

func TestE5ReportsDominance(t *testing.T) {
	out := runExp(t, "E5")
	if !strings.Contains(out, "right strongly dominates") {
		t.Errorf("E5 should report T3b dominating T3a (as the right argument):\n%s", out)
	}
	if !strings.Contains(out, "incomparable") {
		t.Errorf("E5 should report an incomparable pair:\n%s", out)
	}
}

func TestE6RanksT3bCloserToIdeal(t *testing.T) {
	out := runExp(t, "E6")
	if !strings.Contains(out, "P_rank") || !strings.Contains(out, "left better") {
		t.Errorf("E6 output:\n%s", out)
	}
	if !strings.Contains(out, "tie") {
		t.Errorf("E6 should show the eps-tolerance tie:\n%s", out)
	}
}

func TestE7MatchesFigure3Numbers(t *testing.T) {
	out := runExp(t, "E7")
	for _, want := range []string{"P_cov(D_1,D_2)", "0.6", "P_spr(D_1,D_2)", "4", "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("E7 missing %q:\n%s", want, out)
		}
	}
}

func TestE8MatchesFigure4Numbers(t *testing.T) {
	out := runExp(t, "E8")
	for _, want := range []string{"56727", "37888", "left better"} {
		if !strings.Contains(out, want) {
			t.Errorf("E8 missing %q:\n%s", want, out)
		}
	}
}

func TestE9MatchesSection3Numbers(t *testing.T) {
	out := runExp(t, "E9")
	for _, want := range []string{
		"P_k-anon(s) = min(s)", "3",
		"P_s-avg(s)", "3.4",
		"P_l-div(counts)", "1",
		"P_binary(s,t)", "0",
		"P_binary(t,s)", "7",
		"(2,2,1,2,2,1,2,1,2,1)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E9 missing %q:\n%s", want, out)
		}
	}
}

func TestE10MatchesSection53(t *testing.T) {
	out := runExp(t, "E10")
	for _, want := range []string{"P_spr(3-anon, 2-anon)", "P_spr(2-anon, 3-anon)", "8", "prefers 2-anonymous", "prefers 3-anonymous"} {
		if !strings.Contains(out, want) {
			t.Errorf("E10 missing %q:\n%s", want, out)
		}
	}
}

func TestE11ReportsTie(t *testing.T) {
	out := runExp(t, "E11")
	for _, want := range []string{"0.65", "tie", "equally good", "0.3", "1"} {
		if !strings.Contains(out, want) {
			t.Errorf("E11 missing %q:\n%s", want, out)
		}
	}
}

func TestE12LexAndGoal(t *testing.T) {
	out := runExp(t, "E12")
	for _, want := range []string{"P_LEX", "P_GOAL", "left better"} {
		if !strings.Contains(out, want) {
			t.Errorf("E12 missing %q:\n%s", want, out)
		}
	}
}

func TestE13FindsCounterexamples(t *testing.T) {
	out := runExp(t, "E13")
	if !strings.Contains(out, "counterexample after") {
		t.Errorf("E13 should find counterexamples:\n%s", out)
	}
	if !strings.Contains(out, "equivalence held") {
		t.Errorf("E13 should verify the projection panel:\n%s", out)
	}
	if strings.Contains(out, "unexpected") {
		t.Errorf("E13 hit an unexpected branch:\n%s", out)
	}
}

func TestE14RunsAllAlgorithms(t *testing.T) {
	out := runExp(t, "E14")
	for _, alg := range []string{
		"bottomup", "datafly", "samarati", "incognito", "optimal",
		"mondrian", "mondrian-relaxed", "mu-argus", "ola", "genetic", "topdown",
	} {
		if !strings.Contains(out, alg) {
			t.Errorf("E14 missing algorithm %q", alg)
		}
	}
	if strings.Contains(out, "failed:") {
		t.Errorf("E14 reports failures:\n%s", out)
	}
	for _, section := range []string{"pairwise vector comparisons", "bias summary", "coverage", "spread", "rank", "hypervolume"} {
		if !strings.Contains(out, section) {
			t.Errorf("E14 missing section %q", section)
		}
	}
}

func TestE15Ablation(t *testing.T) {
	out := runExp(t, "E15")
	for _, want := range []string{"genetic", "genetic-constrained", "optimal (reference)", "trade-off"} {
		if !strings.Contains(out, want) {
			t.Errorf("E15 missing %q:\n%s", want, out)
		}
	}
}

func TestE16ParetoFront(t *testing.T) {
	out := runExp(t, "E16")
	for _, want := range []string{
		"exact Pareto front", "NSGA-II coverage", "census", "k_act",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E16 missing %q:\n%s", want, out)
		}
	}
}

func TestE17AttackRisk(t *testing.T) {
	out := runExp(t, "E17")
	for _, want := range []string{"marketer", "target_mean", "infectious-disease carriers", "mondrian"} {
		if !strings.Contains(out, want) {
			t.Errorf("E17 missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "failed:") {
		t.Errorf("E17 reports failures:\n%s", out)
	}
}

func TestE18QueryAccuracy(t *testing.T) {
	out := runExp(t, "E18")
	for _, want := range []string{"COUNT queries", "meanAbsErr", "meanRelErr", "mondrian", "datafly"} {
		if !strings.Contains(out, want) {
			t.Errorf("E18 missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "failed:") {
		t.Errorf("E18 reports failures:\n%s", out)
	}
}

func TestE19NonDominance(t *testing.T) {
	out := runExp(t, "E19")
	for _, want := range []string{"minimal k-anonymous nodes", "incomparable", "privacy (class sizes)", "utility (retained)"} {
		if !strings.Contains(out, want) {
			t.Errorf("E19 missing %q:\n%s", want, out)
		}
	}
}

func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, small); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for i := 1; i <= 19; i++ {
		if !strings.Contains(out, "=== E"+strconv.Itoa(i)+":") {
			t.Errorf("RunAll missing E%d", i)
		}
	}
}
