package experiment

import (
	"context"
	"fmt"
	"io"
	"sync"

	"microdata/internal/algorithm"
	"microdata/internal/attack"
	"microdata/internal/dataset"
	"microdata/internal/generator"
	"microdata/internal/stats"
	"microdata/internal/workload"
)

// e17 measures per-individual re-identification risk under record linkage
// — the §2 "attacks targeted towards a particular subset" scenario at
// scale, including a stigmatized-subgroup view.
func e17(opts Options) Experiment {
	return Experiment{
		ID: "E17", Title: "record-linkage attack risk per algorithm", Artifact: "§2 at scale",
		Run: func(ctx context.Context, w io.Writer) error {
			tab, err := generator.Generate(generator.Config{N: opts.CensusN, Seed: opts.Seed})
			if err != nil {
				return err
			}
			cfg := algorithm.Config{
				K:              opts.Ks[len(opts.Ks)/2],
				Hierarchies:    generator.Hierarchies(),
				MaxSuppression: 0.05,
				Metric:         algorithm.MetricLM,
				Taxonomies:     generator.Taxonomies(),
				Seed:           opts.Seed,
			}
			// Targeted subset: carriers of infectious diseases — the
			// individuals personalized privacy worries about.
			dis := generator.DiseaseTaxonomy()
			var target []int
			dj := tab.Schema.Index("Disease")
			for i := 0; i < tab.Len(); i++ {
				if dis.CoversValue("Infectious", tab.At(i, dj).Text()) {
					target = append(target, i)
				}
			}
			fmt.Fprintf(w, "census N=%d, k=%d, targeted subgroup: %d infectious-disease carriers\n",
				opts.CensusN, cfg.K, len(target))
			fmt.Fprintf(w, "  %-20s %10s %10s %10s %12s %12s\n",
				"algorithm", "marketer", "worst", "median", "target_mean", "target_worst")
			type attackRow struct {
				line string
				err  error
			}
			algs := suite()
			rows := make([]attackRow, len(algs))
			var wg sync.WaitGroup
			for i, alg := range algs {
				wg.Add(1)
				go func(i int, alg algorithm.Algorithm) {
					defer wg.Done()
					r, err := algorithm.AnonymizeContext(ctx, alg, tab, cfg)
					if err != nil {
						rows[i] = attackRow{line: fmt.Sprintf("  %-20s failed: %v\n", alg.Name(), err)}
						return
					}
					adv, err := attack.NewAdversary(r.Table, generator.Taxonomies())
					if err != nil {
						rows[i] = attackRow{err: err}
						return
					}
					risk, err := attack.ProsecutorVectorContext(ctx, tab, adv)
					if err != nil {
						rows[i] = attackRow{err: err}
						return
					}
					s := stats.Summarize(risk)
					// Served from the adversary's prosecutor cache — the
					// vector above is not recomputed.
					tMean, tWorst, err := attack.TargetedRiskContext(ctx, tab, adv, target)
					if err != nil {
						rows[i] = attackRow{err: err}
						return
					}
					rows[i] = attackRow{line: fmt.Sprintf("  %-20s %10s %10s %10s %12s %12s\n",
						alg.Name(), trim(s.Mean), trim(s.Max), trim(s.Median), trim(tMean), trim(tWorst))}
				}(i, alg)
			}
			wg.Wait()
			for _, row := range rows {
				if row.err != nil {
					return row.err
				}
				fmt.Fprint(w, row.line)
			}
			fmt.Fprintln(w, "  Every algorithm bounds the worst risk by 1/k, but the DISTRIBUTION")
			fmt.Fprintln(w, "  differs (the anonymization bias): identical guarantees, different")
			fmt.Fprintln(w, "  protection for the targeted subgroup.")
			return nil
		},
	}
}

// e18 measures aggregate-query accuracy — the LeFevre utility view the
// paper's §6 quotes for multidimensional recoding.
func e18(opts Options) Experiment {
	return Experiment{
		ID: "E18", Title: "range-count query accuracy per algorithm", Artifact: "§6 (LeFevre motivation)",
		Run: func(ctx context.Context, w io.Writer) error {
			tab, err := generator.Generate(generator.Config{N: opts.CensusN, Seed: opts.Seed})
			if err != nil {
				return err
			}
			cfg := algorithm.Config{
				K:              opts.Ks[len(opts.Ks)/2],
				Hierarchies:    generator.Hierarchies(),
				MaxSuppression: 0.05,
				Metric:         algorithm.MetricLM,
				Taxonomies:     generator.Taxonomies(),
				Seed:           opts.Seed,
			}
			// Anonymize once; reuse the releases across the workloads.
			algs := suite()
			type release struct {
				table *dataset.Table
				fail  error
			}
			releases := make([]release, len(algs))
			var wg sync.WaitGroup
			for i, alg := range algs {
				wg.Add(1)
				go func(i int, alg algorithm.Algorithm) {
					defer wg.Done()
					r, err := algorithm.AnonymizeContext(ctx, alg, tab, cfg)
					if err != nil {
						releases[i] = release{fail: err}
						return
					}
					releases[i] = release{table: r.Table}
				}(i, alg)
			}
			wg.Wait()
			for _, npred := range []int{1, 2, 3} {
				queries, err := workload.Generate(tab, workload.Config{
					Queries: 150, Predicates: npred, Seed: opts.Seed,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "  workload: 150 COUNT queries, %d predicate(s), k=%d\n", npred, cfg.K)
				fmt.Fprintf(w, "  %-20s %12s %12s %12s\n", "algorithm", "meanAbsErr", "medAbsErr", "meanRelErr")
				lines := make([]string, len(algs))
				errs := make([]error, len(algs))
				var qwg sync.WaitGroup
				for i := range algs {
					qwg.Add(1)
					go func(i int) {
						defer qwg.Done()
						if releases[i].fail != nil {
							lines[i] = fmt.Sprintf("  %-20s failed: %v\n", algs[i].Name(), releases[i].fail)
							return
						}
						rep, err := workload.Evaluate(tab, releases[i].table, queries, generator.Taxonomies())
						if err != nil {
							errs[i] = err
							return
						}
						lines[i] = fmt.Sprintf("  %-20s %12s %12s %12s\n",
							algs[i].Name(), trim(rep.MeanAbsError), trim(rep.MedianAbsError), trim(rep.MeanRelError))
					}(i)
				}
				qwg.Wait()
				for i := range lines {
					if errs[i] != nil {
						return errs[i]
					}
					fmt.Fprint(w, lines[i])
				}
				fmt.Fprintln(w)
			}
			fmt.Fprintln(w, "  Multidimensional recoding (mondrian) answers multi-predicate range")
			fmt.Fprintln(w, "  counts most accurately — the LeFevre claim the paper's §6 quotes.")
			return nil
		},
	}
}
