package experiment

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"sync"
	"testing"

	"microdata/internal/telemetry/perf"
	"microdata/internal/telemetry/resultpack"
)

var captureOnce struct {
	sync.Once
	pack *resultpack.Pack
	err  error
}

// capturedPack runs one small full capture (algorithms + attack + one
// table) shared across the tests in this file.
func capturedPack(t *testing.T) *resultpack.Pack {
	t.Helper()
	captureOnce.Do(func() {
		captureOnce.pack, captureOnce.err = CaptureResults(context.Background(), CaptureConfig{
			Opts:        Options{CensusN: 200, Ks: []int{2, 5}, Seed: 1},
			Experiments: []string{"E1"},
			Algorithms:  true,
			Attack:      true,
		})
	})
	if captureOnce.err != nil {
		t.Fatalf("capture: %v", captureOnce.err)
	}
	return captureOnce.pack
}

func TestCaptureSealsAllSections(t *testing.T) {
	p := capturedPack(t)
	if p.Manifest == nil || p.Manifest.Digest == "" {
		t.Fatal("capture returned an unsealed pack")
	}
	if p.Source != resultpack.SourceCensus || p.Env.N != 200 || p.Env.Seed != 1 {
		t.Errorf("pack env/source wrong: source=%q env=%+v", p.Source, p.Env)
	}
	if p.Env.DatasetHash == "" {
		t.Error("dataset fingerprint missing")
	}
	// 11 roster algorithms × 2 ks, each either a result or a Failed record.
	if len(p.Algorithms) != 22 {
		t.Errorf("algorithms = %d rows, want 22", len(p.Algorithms))
	}
	for _, a := range p.Algorithms {
		if a.Failed == "" && (a.Classes <= 0 || len(a.Measures) != 7 || a.ClassShape == nil) {
			t.Errorf("incomplete algorithm row: %+v", a)
		}
	}
	if len(p.Attack) != 11 {
		t.Errorf("attack = %d rows, want 11", len(p.Attack))
	}
	// Attack runs at the middle k of {2, 5}.
	if p.Attack[0].K != 5 || p.Env.K != 5 {
		t.Errorf("attack k = %d, env k = %d, want 5", p.Attack[0].K, p.Env.K)
	}
	if p.AttackPopulation == nil || p.AttackPopulation.N != 400 || p.AttackPopulation.Seed != 2 {
		t.Errorf("population spec = %+v", p.AttackPopulation)
	}
	if len(p.Tables) != 1 || p.Tables[0].ID != "E1" || p.Tables[0].Bytes <= 0 || p.Tables[0].SHA256 == "" {
		t.Errorf("tables = %+v", p.Tables)
	}

	// The sealed document round-trips through the verifying reader.
	var buf bytes.Buffer
	if err := p.WriteCanonical(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := resultpack.Read(buf.Bytes()); err != nil {
		t.Fatalf("sealed capture fails verification: %v", err)
	}
}

func TestReplayMatchesCapture(t *testing.T) {
	p := capturedPack(t)
	replay, err := ReplayPack(context.Background(), p)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if divs := resultpack.Diff(p, replay, resultpack.DiffOptions{}); len(divs) != 0 {
		for _, d := range divs {
			t.Errorf("divergence: %s", d)
		}
		t.Fatalf("replay diverges from capture in %d fields", len(divs))
	}

	// A perturbed recorded measure shows up as exactly one path-level
	// divergence naming the field.
	tampered := *p
	tampered.Algorithms = append([]resultpack.AlgorithmResult(nil), p.Algorithms...)
	var target string
	for i, a := range tampered.Algorithms {
		if a.Failed != "" {
			continue
		}
		m := make(map[string]resultpack.Float, len(a.Measures))
		for k, v := range a.Measures {
			m[k] = v
		}
		m["lm"] += 0.001
		tampered.Algorithms[i].Measures = m
		target = "algorithms[k=" + strconv.Itoa(a.K) + "/" + a.Algorithm + "].measures.lm"
		break
	}
	divs := resultpack.Diff(&tampered, replay, resultpack.DiffOptions{})
	if len(divs) != 1 || divs[0].Path != target {
		t.Fatalf("perturbed measure: divs=%v, want one at %s", divs, target)
	}
}

func TestReplayRejectsDatasetHashMismatch(t *testing.T) {
	p := capturedPack(t)
	bad := *p
	bad.Env.DatasetHash = "0000000000000000"
	_, err := ReplayPack(context.Background(), &bad)
	if perf.ExitCode(err) != perf.ExitVerification {
		t.Fatalf("hash mismatch: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitVerification)
	}
	if err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Errorf("error should name the fingerprint mismatch: %v", err)
	}
}

func TestReplayRejectsNonCensusSource(t *testing.T) {
	p := &resultpack.Pack{Schema: resultpack.Schema, Version: resultpack.Version, Source: resultpack.SourceFiles}
	_, err := ReplayPack(context.Background(), p)
	if perf.ExitCode(err) != perf.ExitInvalid {
		t.Fatalf("files-source replay: exit %d (%v), want %d", perf.ExitCode(err), err, perf.ExitInvalid)
	}
}
