package experiment

import (
	"fmt"
	"io"
	"strings"

	"microdata/internal/core"
)

// writeVector prints a labelled property vector in the paper's tuple order.
func writeVector(w io.Writer, label string, v core.PropertyVector) {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = trim(x)
	}
	fmt.Fprintf(w, "%-28s (%s)\n", label, strings.Join(parts, ","))
}

// writeKV prints an aligned name/value line.
func writeKV(w io.Writer, name string, value interface{}) {
	fmt.Fprintf(w, "  %-36s %v\n", name, value)
}

func trim(x float64) string {
	s := fmt.Sprintf("%.4f", x)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// matrix renders a square pairwise-comparison matrix with row/column
// labels, cell width auto-sized.
func matrix(w io.Writer, title string, labels []string, cell func(i, j int) string) {
	fmt.Fprintf(w, "  %s\n", title)
	width := 6
	for _, l := range labels {
		if len(l) > width {
			width = len(l)
		}
	}
	for i := range labels {
		for j := range labels {
			if c := cell(i, j); len(c) > width {
				width = len(c)
			}
		}
	}
	fmt.Fprintf(w, "  %*s", width+2, "")
	for _, l := range labels {
		fmt.Fprintf(w, " %*s", width, l)
	}
	fmt.Fprintln(w)
	for i, l := range labels {
		fmt.Fprintf(w, "  %*s |", width, l)
		for j := range labels {
			fmt.Fprintf(w, " %*s", width, cell(i, j))
		}
		fmt.Fprintln(w)
	}
}

// outcomeGlyph compresses an Outcome into matrix-cell form from the row
// vector's perspective.
func outcomeGlyph(o core.Outcome) string {
	switch o {
	case core.LeftBetter:
		return "row"
	case core.RightBetter:
		return "col"
	default:
		return "tie"
	}
}
