package experiment

import (
	"context"
	"fmt"
	"io"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/incognito"
	"microdata/internal/core"
	"microdata/internal/generator"
	"microdata/internal/utility"
)

// e19 measures how often strict dominance actually decides between
// k-anonymous generalizations — the empirical backing for §4–5: if most
// pairs are non-dominated, dominance-based comparison is useless in
// practice and the ▶-better comparators are necessary, not optional.
func e19(opts Options) Experiment {
	return Experiment{
		ID: "E19", Title: "prevalence of non-dominance among k-anonymous releases", Artifact: "§4–5 motivation",
		Run: func(ctx context.Context, w io.Writer) error {
			tab, err := generator.Generate(generator.Config{N: opts.CensusN, Seed: opts.Seed})
			if err != nil {
				return err
			}
			for _, k := range []int{opts.Ks[0], opts.Ks[len(opts.Ks)/2]} {
				cfg := algorithm.Config{
					K:           k,
					Hierarchies: generator.Hierarchies(),
					Metric:      algorithm.MetricLM,
					Taxonomies:  generator.Taxonomies(),
				}
				// Every full-domain k-anonymous node (no suppression), via
				// the pruned sweep plus upward closure — here we just take
				// the minimal nodes and their one-step successors to keep
				// the pair count meaningful.
				minimal, _, err := incognito.New().MinimalNodes(tab, cfg)
				if err != nil {
					return err
				}
				seen := map[string]bool{}
				type rel struct {
					priv core.PropertyVector
					util core.PropertyVector
				}
				var rels []rel
				for _, n := range minimal {
					if seen[n.Key()] {
						continue
					}
					seen[n.Key()] = true
					anon, p, small, err := algorithm.ApplyNode(tab, cfg, n)
					if err != nil {
						return err
					}
					if len(small) > 0 {
						continue
					}
					u, err := utility.UtilityVector(anon, tab, utility.LossConfig{Taxonomies: cfg.Taxonomies})
					if err != nil {
						return err
					}
					rels = append(rels, rel{
						priv: core.PropertyVector(p.SizeVector()),
						util: core.PropertyVector(u),
					})
				}
				if len(rels) < 2 {
					fmt.Fprintf(w, "  k=%d: only %d minimal nodes — nothing to compare\n", k, len(rels))
					continue
				}
				count := func(vec func(rel) core.PropertyVector) (incomp, dom, eq int, err error) {
					for i := 0; i < len(rels); i++ {
						for j := i + 1; j < len(rels); j++ {
							r, err := core.Compare(vec(rels[i]), vec(rels[j]))
							if err != nil {
								return 0, 0, 0, err
							}
							switch r {
							case core.Incomparable:
								incomp++
							case core.EqualVectors:
								eq++
							default:
								dom++
							}
						}
					}
					return incomp, dom, eq, nil
				}
				pi, pd, pe, err := count(func(r rel) core.PropertyVector { return r.priv })
				if err != nil {
					return err
				}
				ui, ud, ue, err := count(func(r rel) core.PropertyVector { return r.util })
				if err != nil {
					return err
				}
				pairs := len(rels) * (len(rels) - 1) / 2
				fmt.Fprintf(w, "  k=%d: %d minimal k-anonymous nodes, %d pairs\n", k, len(rels), pairs)
				fmt.Fprintf(w, "    privacy (class sizes): %d incomparable, %d dominated, %d equal\n", pi, pd, pe)
				fmt.Fprintf(w, "    utility (retained):    %d incomparable, %d dominated, %d equal\n", ui, ud, ue)
			}
			fmt.Fprintln(w, "  Minimal nodes are mutually non-dominated BY CONSTRUCTION in level")
			fmt.Fprintln(w, "  space; the measurement shows the same holds for their per-tuple")
			fmt.Fprintln(w, "  property vectors — strict dominance cannot rank the very releases a")
			fmt.Fprintln(w, "  search returns, which is why §5's ▶-better comparators exist.")
			return nil
		},
	}
}
