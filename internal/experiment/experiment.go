// Package experiment implements the reproduction harness: one experiment
// per table, figure and worked example in the paper (E1–E13), plus the
// scaled algorithm-comparison studies the framework was built for (E14,
// E15). Each experiment writes a self-describing text report; the
// anonbench command exposes them, and the test suite pins their numbers.
package experiment

import (
	"context"
	"crypto/sha256"
	"fmt"
	"hash"
	"io"
	"sort"
	"time"

	"microdata/internal/telemetry"
	"microdata/internal/telemetry/progress"
	"microdata/internal/telemetry/resultpack"
)

// Options tunes the scaled experiments; the zero value picks defaults
// suitable for interactive runs.
type Options struct {
	// CensusN is the synthetic census size for E14/E15 (default 1000).
	CensusN int
	// Ks are the k values swept in E14 (default 2, 5, 10, 25, 50).
	Ks []int
	// Seed drives the census draw and stochastic algorithms (default 1).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.CensusN <= 0 {
		o.CensusN = 1000
	}
	if len(o.Ks) == 0 {
		o.Ks = []int{2, 5, 10, 25, 50}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Experiment is one reproducible unit of the evaluation.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md ("E1".."E15").
	ID string
	// Title is a one-line description.
	Title string
	// Artifact names the paper artifact reproduced ("Table 2", ...).
	Artifact string
	// Run writes the report; it honors ctx cancellation for the
	// engine-backed experiments.
	Run func(ctx context.Context, w io.Writer) error
}

// Registry returns all experiments, ordered by ID.
func Registry(opts Options) []Experiment {
	opts = opts.withDefaults()
	exps := []Experiment{
		e1(), e2(), e3(), e4(), e5(), e6(), e7(), e8(),
		e9(), e10(), e11(), e12(), e13(),
		e14(opts), e15(opts), e16(opts), e17(opts), e18(opts), e19(opts),
	}
	sort.Slice(exps, func(i, j int) bool { return idNum(exps[i].ID) < idNum(exps[j].ID) })
	return exps
}

func idNum(id string) int {
	n := 0
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// Find locates an experiment by ID.
func Find(id string, opts Options) (Experiment, bool) {
	for _, e := range Registry(opts) {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, opts Options) error {
	return RunAllContext(context.Background(), w, opts)
}

// RunAllContext is RunAll honoring a context; each experiment runs under
// its own telemetry span, and the batch reports progress (done count and
// ETA over the experiment roster) when progress tracking is enabled.
func RunAllContext(ctx context.Context, w io.Writer, opts Options) error {
	return RunAllRecorded(ctx, w, opts, nil)
}

// RunAllRecorded is RunAllContext with a result-pack sink: alongside the
// text report each experiment's full output is digested into rec (nil
// disables recording), the provenance trail CaptureResults seals.
func RunAllRecorded(ctx context.Context, w io.Writer, opts Options, rec *resultpack.TableRecorder) error {
	exps := Registry(opts)
	ctx, tr := progress.Start(ctx, "experiments", len(exps))
	defer tr.Finish()
	for _, e := range exps {
		if err := runOne(ctx, w, e, rec); err != nil {
			return err
		}
		tr.Add(1)
	}
	return nil
}

// RunByID executes one experiment.
func RunByID(w io.Writer, id string, opts Options) error {
	return RunByIDContext(context.Background(), w, id, opts)
}

// RunByIDContext is RunByID honoring a context.
func RunByIDContext(ctx context.Context, w io.Writer, id string, opts Options) error {
	return RunByIDRecorded(ctx, w, id, opts, nil)
}

// RunByIDRecorded is RunByIDContext with a result-pack sink (see
// RunAllRecorded).
func RunByIDRecorded(ctx context.Context, w io.Writer, id string, opts Options, rec *resultpack.TableRecorder) error {
	e, ok := Find(id, opts)
	if !ok {
		return fmt.Errorf("experiment: unknown id %q", id)
	}
	return runOne(ctx, w, e, rec)
}

func runOne(ctx context.Context, w io.Writer, e Experiment, rec *resultpack.TableRecorder) error {
	ctx, sp := telemetry.Start(ctx, "experiment."+e.ID,
		telemetry.String("title", e.Title), telemetry.String("artifact", e.Artifact))
	defer sp.End()
	ctx, tr := progress.Start(ctx, "experiment."+e.ID, -1)
	defer tr.Finish()
	telemetry.L().Info("experiment: starting", "id", e.ID, "title", e.Title)
	start := time.Now()
	var dig *digestWriter
	if rec != nil {
		dig = &digestWriter{w: w, h: sha256.New()}
		w = dig
	}
	fmt.Fprintf(w, "=== %s: %s (%s) ===\n", e.ID, e.Title, e.Artifact)
	if err := e.Run(ctx, w); err != nil {
		telemetry.L().Error("experiment: failed", "id", e.ID, "error", err)
		return fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	telemetry.L().Info("experiment: complete", "id", e.ID, "elapsed", time.Since(start))
	fmt.Fprintln(w)
	if dig != nil {
		var sum [sha256.Size]byte
		dig.h.Sum(sum[:0])
		rec.Add(e.ID, sum, dig.n)
	}
	return nil
}

// digestWriter tees report text into a SHA-256 state while counting bytes;
// the digest covers exactly what the runner writes for one experiment,
// header and trailing blank line included.
type digestWriter struct {
	w io.Writer
	h hash.Hash
	n int
}

func (d *digestWriter) Write(p []byte) (int, error) {
	d.h.Write(p)
	d.n += len(p)
	return d.w.Write(p)
}
