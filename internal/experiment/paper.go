package experiment

import (
	"context"
	"fmt"
	"io"

	"microdata/internal/core"
	"microdata/internal/dataset"
	"microdata/internal/paperdata"
	"microdata/internal/privacy"
)

// e1 prints Table 1 — the hypothetical microdata T1.
func e1() Experiment {
	return Experiment{
		ID: "E1", Title: "hypothetical microdata T1", Artifact: "Table 1",
		Run: func(ctx context.Context, w io.Writer) error {
			fmt.Fprint(w, paperdata.T1().Format(true))
			return nil
		},
	}
}

func printAnonymized(w io.Writer, name string, t *dataset.Table) error {
	fmt.Fprintf(w, "%s:\n", name)
	fmt.Fprint(w, t.Format(true))
	p, err := paperdata.Partition(t)
	if err != nil {
		return err
	}
	writeKV(w, "k-anonymity (min class size)", privacy.KAnonymity(p))
	writeKV(w, "equivalence classes", p.NumClasses())
	return nil
}

// e2 reproduces Table 2: the two 3-anonymous generalizations.
func e2() Experiment {
	return Experiment{
		ID: "E2", Title: "two 3-anonymous generalizations of T1", Artifact: "Table 2",
		Run: func(ctx context.Context, w io.Writer) error {
			if err := printAnonymized(w, "T_3a (zip level 1, age level 1)", paperdata.T3a()); err != nil {
				return err
			}
			return printAnonymized(w, "T_3b (zip level 2, age level 2)", paperdata.T3b())
		},
	}
}

// e3 reproduces Table 3: the 4-anonymous generalization.
func e3() Experiment {
	return Experiment{
		ID: "E3", Title: "4-anonymous generalization of T1", Artifact: "Table 3",
		Run: func(ctx context.Context, w io.Writer) error {
			return printAnonymized(w, "T_4 (zip level 3, age level 3, marital suppressed)", paperdata.T4())
		},
	}
}

// e4 reproduces Figure 1: per-tuple equivalence-class sizes.
func e4() Experiment {
	return Experiment{
		ID: "E4", Title: "per-tuple equivalence class sizes", Artifact: "Figure 1",
		Run: func(ctx context.Context, w io.Writer) error {
			for _, tc := range []struct {
				name  string
				table *dataset.Table
			}{
				{"T_3a", paperdata.T3a()},
				{"T_3b", paperdata.T3b()},
				{"T_4", paperdata.T4()},
			} {
				p, err := paperdata.Partition(tc.table)
				if err != nil {
					return err
				}
				writeVector(w, tc.name+" class-size vector", privacy.ClassSizeVector(p))
			}
			fmt.Fprintln(w, "  Reading (paper §2): tuple 8 prefers T_4 over T_3b (4 > 3), tuple 3")
			fmt.Fprintln(w, "  prefers T_3b over T_4 (7 > 4) — different anonymizations are better")
			fmt.Fprintln(w, "  for different individuals.")
			return nil
		},
	}
}

// e5 demonstrates Table 4: the dominance comparators.
func e5() Experiment {
	return Experiment{
		ID: "E5", Title: "dominance relationships between the published tables", Artifact: "Table 4",
		Run: func(ctx context.Context, w io.Writer) error {
			vectors := map[string]core.PropertyVector{
				"T_3a": paperdata.ClassSizeT3a,
				"T_3b": paperdata.ClassSizeT3b,
				"T_4":  paperdata.ClassSizeT4,
			}
			names := []string{"T_3a", "T_3b", "T_4"}
			for i, a := range names {
				for j, b := range names {
					if i >= j {
						continue
					}
					rel, err := core.Compare(vectors[a], vectors[b])
					if err != nil {
						return err
					}
					writeKV(w, fmt.Sprintf("%s vs %s", a, b), rel)
				}
			}
			fmt.Fprintln(w, "  T_3b strongly dominates T_3a (the paper's §1 argument); T_4 and")
			fmt.Fprintln(w, "  T_3b are non-dominated — strict comparison cannot order them.")
			return nil
		},
	}
}

// e6 demonstrates Figure 2: the rank comparator.
func e6() Experiment {
	return Experiment{
		ID: "E6", Title: "rank-based comparison against the ideal vector", Artifact: "Figure 2",
		Run: func(ctx context.Context, w io.Writer) error {
			dmax := make(core.PropertyVector, 10)
			for i := range dmax {
				dmax[i] = 10 // every tuple in one class of size N
			}
			rank := core.PRank(dmax)
			for _, tc := range []struct {
				name string
				v    core.PropertyVector
			}{
				{"T_3a", paperdata.ClassSizeT3a},
				{"T_3b", paperdata.ClassSizeT3b},
				{"T_4", paperdata.ClassSizeT4},
			} {
				val, err := core.EvalUnary(rank, tc.v)
				if err != nil {
					return err
				}
				writeKV(w, fmt.Sprintf("P_rank(%s) = ||D - D_max||", tc.name), trim(val))
			}
			cmp := core.RankBetter{Dmax: dmax}
			out, err := cmp.Compare(paperdata.ClassSizeT3b, paperdata.ClassSizeT4)
			if err != nil {
				return err
			}
			writeKV(w, "rank comparison T_3b vs T_4", out)
			out, err = (core.RankBetter{Dmax: dmax, Eps: 5}).Compare(paperdata.ClassSizeT3b, paperdata.ClassSizeT4)
			if err != nil {
				return err
			}
			writeKV(w, "same with tolerance eps=5", out)
			return nil
		},
	}
}

// e7 reproduces Figure 3: coverage vs spread computation.
func e7() Experiment {
	return Experiment{
		ID: "E7", Title: "P_cov and P_spr on the hypothetical vectors", Artifact: "Figure 3",
		Run: func(ctx context.Context, w io.Writer) error {
			d1, d2 := paperdata.SpreadExampleD1, paperdata.SpreadExampleD2
			writeVector(w, "D_1", d1)
			writeVector(w, "D_2", d2)
			for _, tc := range []struct {
				name string
				idx  core.BinaryIndex
				a, b core.PropertyVector
			}{
				{"P_cov(D_1,D_2)", core.PCov, d1, d2},
				{"P_cov(D_2,D_1)", core.PCov, d2, d1},
				{"P_spr(D_1,D_2)", core.PSpr, d1, d2},
				{"P_spr(D_2,D_1)", core.PSpr, d2, d1},
			} {
				v, err := core.EvalBinary(tc.idx, tc.a, tc.b)
				if err != nil {
					return err
				}
				writeKV(w, tc.name, trim(v))
			}
			fmt.Fprintln(w, "  Coverage ties 3/5 vs 3/5; spread breaks the tie 4 vs 2 in favor of D_1.")
			return nil
		},
	}
}

// e8 reproduces Figure 4: the hypervolume comparator.
func e8() Experiment {
	return Experiment{
		ID: "E8", Title: "hypervolume tournament comparison", Artifact: "Figure 4",
		Run: func(ctx context.Context, w io.Writer) error {
			s, t := paperdata.HvExampleS, paperdata.HvExampleT
			writeVector(w, "s (3-anonymous)", s)
			writeVector(w, "t (4-anonymous)", t)
			hvST, err := core.EvalBinary(core.PHv, s, t)
			if err != nil {
				return err
			}
			hvTS, err := core.EvalBinary(core.PHv, t, s)
			if err != nil {
				return err
			}
			writeKV(w, "P_hv(s,t)", trim(hvST))
			writeKV(w, "P_hv(t,s)", trim(hvTS))
			out, err := core.HvBetter().Compare(s, t)
			if err != nil {
				return err
			}
			writeKV(w, "hv comparison", out)
			fmt.Fprintln(w, "  More possible anonymizations are worse than s than are worse than t,")
			fmt.Fprintln(w, "  so the 3-anonymous s wins the tournament — counter to the classical k view.")
			return nil
		},
	}
}

// e9 reproduces the §3 worked indices.
func e9() Experiment {
	return Experiment{
		ID: "E9", Title: "unary and binary quality indices on T_3a/T_3b", Artifact: "§3 worked example",
		Run: func(ctx context.Context, w io.Writer) error {
			s, t := paperdata.ClassSizeT3a, paperdata.ClassSizeT3b
			writeVector(w, "s = class sizes of T_3a", s)
			writeVector(w, "t = class sizes of T_3b", t)
			writeVector(w, "sensitive counts of T_3a", paperdata.SensitiveCountT3a)
			kanon, err := core.EvalUnary(core.PKAnon, s)
			if err != nil {
				return err
			}
			savg, err := core.EvalUnary(core.PSAvg, s)
			if err != nil {
				return err
			}
			ldiv, err := core.EvalUnary(core.PLDiv, paperdata.SensitiveCountT3a)
			if err != nil {
				return err
			}
			writeKV(w, "P_k-anon(s) = min(s)", trim(kanon))
			writeKV(w, "P_s-avg(s)", trim(savg))
			writeKV(w, "P_l-div(counts)", trim(ldiv))
			bST, err := core.EvalBinary(core.PBinary, s, t)
			if err != nil {
				return err
			}
			bTS, err := core.EvalBinary(core.PBinary, t, s)
			if err != nil {
				return err
			}
			writeKV(w, "P_binary(s,t)", trim(bST))
			writeKV(w, "P_binary(t,s)", trim(bTS))
			return nil
		},
	}
}

// e10 reproduces the §5.3 3-anonymous vs 2-anonymous spread example.
func e10() Experiment {
	return Experiment{
		ID: "E10", Title: "spread favors a 2-anonymous generalization", Artifact: "§5.3 worked example",
		Run: func(ctx context.Context, w io.Writer) error {
			three, two := paperdata.SpreadThreeAnon, paperdata.SpreadTwoAnon
			writeVector(w, "3-anonymous vector", three)
			writeVector(w, "2-anonymous vector", two)
			s32, err := core.EvalBinary(core.PSpr, three, two)
			if err != nil {
				return err
			}
			s23, err := core.EvalBinary(core.PSpr, two, three)
			if err != nil {
				return err
			}
			writeKV(w, "P_spr(3-anon, 2-anon)", trim(s32))
			writeKV(w, "P_spr(2-anon, 3-anon)", trim(s23))
			c23, err := core.EvalBinary(core.PCov, two, three)
			if err != nil {
				return err
			}
			writeKV(w, "P_cov(2-anon, 3-anon)", trim(c23))
			minOut, err := core.MinBetter().Compare(three, two)
			if err != nil {
				return err
			}
			sprOut, err := core.SprBetter().Compare(two, three)
			if err != nil {
				return err
			}
			writeKV(w, "classical min comparator", fmt.Sprintf("%v (prefers 3-anonymous)", minOut))
			writeKV(w, "spread comparator", fmt.Sprintf("%v (prefers 2-anonymous)", sprOut))
			fmt.Fprintln(w, "  The 2-anonymous generalization gives 6 tuples better privacy at the")
			fmt.Fprintln(w, "  expense of 2 — spread (2 vs 8) reveals it; min hides it.")
			return nil
		},
	}
}

// e11 reproduces the §5.5 weighted comparison.
func e11() Experiment {
	return Experiment{
		ID: "E11", Title: "weighted multi-property comparison of T_3a and T_3b", Artifact: "§5.5 worked example",
		Run: func(ctx context.Context, w io.Writer) error {
			y1 := core.PropertySet{paperdata.ClassSizeT3a, paperdata.UtilityT3a}
			y2 := core.PropertySet{paperdata.ClassSizeT3b, paperdata.UtilityT3b}
			for _, tc := range []struct {
				name string
				a, b core.PropertyVector
			}{
				{"P_cov(p_a,p_b)", paperdata.ClassSizeT3a, paperdata.ClassSizeT3b},
				{"P_cov(p_b,p_a)", paperdata.ClassSizeT3b, paperdata.ClassSizeT3a},
				{"P_cov(u_a,u_b)", paperdata.UtilityT3a, paperdata.UtilityT3b},
				{"P_cov(u_b,u_a)", paperdata.UtilityT3b, paperdata.UtilityT3a},
			} {
				v, err := core.EvalBinary(core.PCov, tc.a, tc.b)
				if err != nil {
					return err
				}
				writeKV(w, tc.name, trim(v))
			}
			wtd, err := core.NewWTD([]float64{0.5, 0.5}, []core.BinaryIndex{core.PCov, core.PCov})
			if err != nil {
				return err
			}
			s12, err := wtd.Score(y1, y2)
			if err != nil {
				return err
			}
			s21, err := wtd.Score(y2, y1)
			if err != nil {
				return err
			}
			out, err := wtd.Compare(y1, y2)
			if err != nil {
				return err
			}
			writeKV(w, "P_WTD(Y_3a, Y_3b) equal weights", trim(s12))
			writeKV(w, "P_WTD(Y_3b, Y_3a) equal weights", trim(s21))
			writeKV(w, "verdict", fmt.Sprintf("%v (equally good, as the paper states)", out))
			return nil
		},
	}
}

// e12 demonstrates the §5.6 LEX and §5.7 GOAL comparators.
func e12() Experiment {
	return Experiment{
		ID: "E12", Title: "lexicographic and goal-based multi-property comparison", Artifact: "§5.6–5.7",
		Run: func(ctx context.Context, w io.Writer) error {
			privacyFirst1 := core.PropertySet{paperdata.ClassSizeT3b, paperdata.UtilityT3b}
			privacyFirst2 := core.PropertySet{paperdata.ClassSizeT3a, paperdata.UtilityT3a}
			lex, err := core.NewLEX([]float64{0.1, 0.1}, []core.BinaryIndex{core.PCov, core.PCov})
			if err != nil {
				return err
			}
			l12, err := lex.Score(privacyFirst1, privacyFirst2)
			if err != nil {
				return err
			}
			l21, err := lex.Score(privacyFirst2, privacyFirst1)
			if err != nil {
				return err
			}
			out, err := lex.Compare(privacyFirst1, privacyFirst2)
			if err != nil {
				return err
			}
			writeKV(w, "P_LEX(T_3b set, T_3a set) privacy-first", l12)
			writeKV(w, "P_LEX(T_3a set, T_3b set) privacy-first", l21)
			writeKV(w, "LEX verdict (privacy ordered first)", fmt.Sprintf("%v (T_3b)", out))

			goal, err := core.NewGOAL([]float64{1.0, 1.0}, []core.BinaryIndex{core.PCov, core.PCov})
			if err != nil {
				return err
			}
			g12, err := goal.Score(privacyFirst1, privacyFirst2)
			if err != nil {
				return err
			}
			g21, err := goal.Score(privacyFirst2, privacyFirst1)
			if err != nil {
				return err
			}
			gout, err := goal.Compare(privacyFirst1, privacyFirst2)
			if err != nil {
				return err
			}
			writeKV(w, "P_GOAL errors (goal: full coverage both)", fmt.Sprintf("%s vs %s", trim(g12), trim(g21)))
			writeKV(w, "GOAL verdict", gout)
			return nil
		},
	}
}

// e13 demonstrates Theorem 1 empirically.
func e13() Experiment {
	return Experiment{
		ID: "E13", Title: "unary index panels cannot characterize dominance", Artifact: "Theorem 1 / Corollaries 1–2",
		Run: func(ctx context.Context, w io.Writer) error {
			panel := core.StandardPanel()
			names := make([]string, len(panel.Indices))
			for i, idx := range panel.Indices {
				names[i] = idx.Name
			}
			writeKV(w, "panel (n=5 symmetric indices)", names)
			for _, size := range []int{6, 10, 20} {
				ce, trials, err := core.FindDominanceCounterexample(panel, size, 100000, 7)
				if err != nil {
					return err
				}
				if ce == nil {
					writeKV(w, fmt.Sprintf("N=%d", size), fmt.Sprintf("no counterexample in %d trials (unexpected)", trials))
					continue
				}
				writeKV(w, fmt.Sprintf("N=%d counterexample after", size), fmt.Sprintf("%d random trials", trials))
				writeVector(w, "    A", ce.A)
				writeVector(w, "    B", ce.B)
				writeKV(w, "    violation", ce.Reason)
			}
			// Tightness: N projections suffice for size-N vectors.
			for _, n := range []int{3, 5} {
				ce, trials, err := core.VerifyEquivalence(core.ProjectionPanel(n), n, 20000, 7)
				if err != nil {
					return err
				}
				verdict := fmt.Sprintf("equivalence held for %d trials", trials)
				if ce != nil {
					verdict = "counterexample found (unexpected)"
				}
				writeKV(w, fmt.Sprintf("projection panel n=N=%d", n), verdict)
			}
			fmt.Fprintln(w, "  Five classical aggregates mis-order incomparable vectors almost")
			fmt.Fprintln(w, "  immediately; N coordinate projections (n = N) never do — the bound of")
			fmt.Fprintln(w, "  Theorem 1 is tight.")
			return nil
		},
	}
}
