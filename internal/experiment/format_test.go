package experiment

import (
	"bytes"
	"strings"
	"testing"

	"microdata/internal/core"
)

func TestTrim(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.4:     "3.4",
		0.3:     "0.3",
		0.65:    "0.65",
		56727:   "56727",
		0:       "0",
		-2.5:    "-2.5",
		0.12345: "0.1235", // 4 decimal places, rounded
	}
	for in, want := range cases {
		if got := trim(in); got != want {
			t.Errorf("trim(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteVector(t *testing.T) {
	var buf bytes.Buffer
	writeVector(&buf, "label", core.PropertyVector{3, 3.4, 0.5})
	out := buf.String()
	if !strings.Contains(out, "label") || !strings.Contains(out, "(3,3.4,0.5)") {
		t.Errorf("writeVector output: %q", out)
	}
}

func TestWriteKV(t *testing.T) {
	var buf bytes.Buffer
	writeKV(&buf, "name", 42)
	if !strings.Contains(buf.String(), "name") || !strings.Contains(buf.String(), "42") {
		t.Errorf("writeKV output: %q", buf.String())
	}
}

func TestMatrix(t *testing.T) {
	var buf bytes.Buffer
	matrix(&buf, "title", []string{"aa", "b"}, func(i, j int) string {
		if i == j {
			return "."
		}
		return "x"
	})
	out := buf.String()
	for _, want := range []string{"title", "aa", "b", ".", "x"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Errorf("matrix has %d lines:\n%s", len(lines), out)
	}
}

func TestOutcomeGlyph(t *testing.T) {
	if outcomeGlyph(core.LeftBetter) != "row" ||
		outcomeGlyph(core.RightBetter) != "col" ||
		outcomeGlyph(core.Tie) != "tie" {
		t.Error("glyph mapping wrong")
	}
}

func TestIDNum(t *testing.T) {
	if idNum("E7") != 7 || idNum("E16") != 16 || idNum("bogus") != 0 {
		t.Error("idNum mapping wrong")
	}
}
