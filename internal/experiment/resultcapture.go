package experiment

import (
	"context"
	"fmt"
	"io"
	"time"

	"microdata/internal/algorithm"
	"microdata/internal/attack"
	"microdata/internal/dataset"
	"microdata/internal/generator"
	"microdata/internal/stats"
	"microdata/internal/telemetry"
	"microdata/internal/telemetry/perf"
	"microdata/internal/telemetry/resultpack"
)

// CaptureConfig selects what a result capture records. The zero value
// captures nothing; CLI callers enable the sections they need. Every
// enabled section is computed from the same seeded census draw, so a
// sealed capture is replayable bit-for-bit from its fingerprint.
type CaptureConfig struct {
	// Opts supplies the census size, k sweep and seed (defaults as in
	// Options.withDefaults).
	Opts Options
	// Experiments lists the E-series IDs whose full text reports are
	// digested into the pack's Tables section.
	Experiments []string
	// Algorithms enables the per-(k, algorithm) measure section over the
	// full k sweep.
	Algorithms bool
	// Attack enables the record-linkage risk section
	// (prosecutor/journalist/marketer) at the middle k.
	Attack bool
	// ReportWriter receives the experiment report text while it is being
	// digested (io.Discard when nil) — `anonbench -run all -result-out`
	// prints and seals in one pass.
	ReportWriter io.Writer
	// ExpectDatasetHash, when set, requires the regenerated census draw to
	// hash to this fingerprint; a mismatch aborts with an ExitVerification
	// error before any computation. Replay sets it from the recorded pack.
	ExpectDatasetHash string
}

// CaptureResults runs the configured capture and returns the sealed
// result pack (schema "microdata/result-pack" v1).
func CaptureResults(ctx context.Context, cfg CaptureConfig) (*resultpack.Pack, error) {
	opts := cfg.Opts.withDefaults()
	ctx, sp := telemetry.Start(ctx, "experiment.capture",
		telemetry.Int("n", opts.CensusN), telemetry.Int64("seed", opts.Seed))
	defer sp.End()

	tab, err := generator.Generate(generator.Config{N: opts.CensusN, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	hash, err := tab.Hash()
	if err != nil {
		return nil, err
	}
	if cfg.ExpectDatasetHash != "" && hash != cfg.ExpectDatasetHash {
		return nil, perf.Exit(perf.ExitVerification, fmt.Errorf(
			"experiment: dataset fingerprint mismatch: draw (N=%d seed=%d) hashes to %s, pack records %s",
			opts.CensusN, opts.Seed, hash, cfg.ExpectDatasetHash))
	}
	midK := opts.Ks[len(opts.Ks)/2]
	env := perf.CaptureEnv()
	env.DatasetHash = hash
	env.Seed = opts.Seed
	env.N = opts.CensusN
	env.K = midK

	pack := &resultpack.Pack{
		Schema:        resultpack.Schema,
		Version:       resultpack.Version,
		Source:        resultpack.SourceCensus,
		CreatedUnixMS: time.Now().UnixMilli(),
		Env:           env,
		Ks:            append([]int(nil), opts.Ks...),
	}

	if cfg.Algorithms {
		for _, k := range opts.Ks {
			rows, err := captureAlgorithms(ctx, tab, algConfig(opts, k))
			if err != nil {
				return nil, err
			}
			pack.Algorithms = append(pack.Algorithms, rows...)
		}
	}
	if cfg.Attack {
		rows, pop, err := captureAttack(ctx, tab, opts, midK)
		if err != nil {
			return nil, err
		}
		pack.Attack = rows
		pack.AttackPopulation = pop
	}
	if len(cfg.Experiments) > 0 {
		w := cfg.ReportWriter
		if w == nil {
			w = io.Discard
		}
		var rec resultpack.TableRecorder
		for _, id := range cfg.Experiments {
			if err := RunByIDRecorded(ctx, w, id, opts, &rec); err != nil {
				return nil, err
			}
			pack.Experiments = append(pack.Experiments, id)
		}
		pack.Tables = rec.Tables()
	}
	if err := pack.Seal(); err != nil {
		return nil, err
	}
	return pack, nil
}

// algConfig is the algorithm configuration the scaled experiments (E14,
// E17) use — captures must match them so the sealed measures certify the
// same runs the tables print.
func algConfig(opts Options, k int) algorithm.Config {
	return algorithm.Config{
		K:              k,
		Hierarchies:    generator.Hierarchies(),
		MaxSuppression: 0.05,
		Metric:         algorithm.MetricLM,
		Taxonomies:     generator.Taxonomies(),
		Seed:           opts.Seed,
	}
}

// captureAlgorithms runs the full roster at one k and condenses each run
// into its sealed claims: chosen node, exact counts, measure values and
// the equivalence-class shape summary.
func captureAlgorithms(ctx context.Context, tab *dataset.Table, cfg algorithm.Config) ([]resultpack.AlgorithmResult, error) {
	runs, errs := runSuite(ctx, tab, cfg)
	algs := suite()
	out := make([]resultpack.AlgorithmResult, 0, len(algs))
	for i, ar := range runs {
		if errs[i] != nil {
			if ctx.Err() != nil {
				return nil, errs[i]
			}
			out = append(out, resultpack.AlgorithmResult{
				Algorithm: algs[i].Name(), K: cfg.K, Failed: errs[i].Error(),
			})
			continue
		}
		res := resultpack.AlgorithmResult{
			Algorithm:  ar.name,
			K:          cfg.K,
			KActual:    ar.kActual,
			Classes:    ar.result.Partition.NumClasses(),
			Suppressed: len(ar.result.Suppressed),
			Measures: map[string]resultpack.Float{
				"lm":         resultpack.Float(ar.lm),
				"dm":         resultpack.Float(ar.dm),
				"cavg":       resultpack.Float(ar.cavg),
				"prec":       resultpack.Float(ar.prec),
				"distinct_l": resultpack.Float(ar.distinctL),
				"entropy_l":  resultpack.Float(ar.entropyL),
				"t_close":    resultpack.Float(ar.tClose),
			},
			ClassShape: shapeOf(ar.classSizes),
		}
		if ar.result.Levels != nil {
			res.Node = ar.result.Levels.String()
		}
		out = append(out, res)
	}
	return out, nil
}

func shapeOf(v []float64) *resultpack.ShapeStats {
	s := stats.Summarize(v)
	return &resultpack.ShapeStats{
		Min:    resultpack.Float(s.Min),
		Q1:     resultpack.Float(s.Q1),
		Median: resultpack.Float(s.Median),
		Q3:     resultpack.Float(s.Q3),
		Max:    resultpack.Float(s.Max),
		Gini:   resultpack.Float(s.Gini),
	}
}

// captureAttack measures the three adversary models per algorithm at one
// k. The journalist population is the sample plus a second draw of the
// same size at seed+1 (the PR 7 benchmark construction), recorded in the
// pack so replay rebuilds it exactly.
func captureAttack(ctx context.Context, tab *dataset.Table, opts Options, k int) ([]resultpack.AttackRisk, *resultpack.PopulationSpec, error) {
	extra, err := generator.Generate(generator.Config{N: opts.CensusN, Seed: opts.Seed + 1})
	if err != nil {
		return nil, nil, err
	}
	population := tab.Clone()
	population.Rows = append(population.Rows, extra.Rows...)
	population.InvalidateColumns()
	popHash, err := population.Hash()
	if err != nil {
		return nil, nil, err
	}
	pop := &resultpack.PopulationSpec{N: population.Len(), Seed: opts.Seed + 1, Hash: popHash}

	cfg := algConfig(opts, k)
	runs, errs := runSuite(ctx, tab, cfg)
	algs := suite()
	out := make([]resultpack.AttackRisk, 0, len(algs))
	for i, ar := range runs {
		if errs[i] != nil {
			if ctx.Err() != nil {
				return nil, nil, errs[i]
			}
			out = append(out, resultpack.AttackRisk{Algorithm: algs[i].Name(), K: k, Failed: errs[i].Error()})
			continue
		}
		adv, err := attack.NewAdversary(ar.result.Table, generator.Taxonomies())
		if err != nil {
			return nil, nil, err
		}
		pros, err := attack.ProsecutorVectorContext(ctx, tab, adv)
		if err != nil {
			return nil, nil, err
		}
		// Marketer reuses the adversary's cached prosecutor vector.
		marketer, err := attack.MarketerRisk(tab, adv)
		if err != nil {
			return nil, nil, err
		}
		jour, err := attack.JournalistVectorContext(ctx, tab, population, adv)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, resultpack.AttackRisk{
			Algorithm:  ar.name,
			K:          k,
			Prosecutor: riskOf(pros),
			Journalist: riskOf(jour),
			Marketer:   resultpack.Float(marketer),
		})
	}
	return out, pop, nil
}

func riskOf(v []float64) *resultpack.RiskSummary {
	return &resultpack.RiskSummary{
		Mean:   resultpack.Float(stats.Mean(v)),
		Median: resultpack.Float(stats.Median(v)),
		Max:    resultpack.Float(stats.Max(v)),
	}
}

// ReplayPack re-runs the capture a sealed census pack records — same N, k
// sweep, seed and section selection — and returns the fresh capture for
// diffing against the recorded claims. The regenerated draw
// must hash to the recorded dataset fingerprint (ExitVerification
// otherwise); non-census packs are replayed by their producing CLI, not
// here (ExitInvalid).
func ReplayPack(ctx context.Context, p *resultpack.Pack) (*resultpack.Pack, error) {
	if p.Source != resultpack.SourceCensus {
		return nil, perf.Invalidf("experiment: cannot replay a %q-source pack from the census harness", p.Source)
	}
	if p.Env.N <= 0 {
		return nil, perf.Invalidf("experiment: pack records no census size")
	}
	ks := p.Ks
	if len(ks) == 0 {
		// Degenerate packs (no algorithm sweep) still need a well-formed
		// Options; the recorded mid-k stands in.
		ks = []int{maxInt(p.Env.K, 1)}
	}
	cfg := CaptureConfig{
		Opts:              Options{CensusN: p.Env.N, Ks: ks, Seed: p.Env.Seed},
		Experiments:       append([]string(nil), p.Experiments...),
		Algorithms:        len(p.Algorithms) > 0,
		Attack:            len(p.Attack) > 0,
		ExpectDatasetHash: p.Env.DatasetHash,
	}
	return CaptureResults(ctx, cfg)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
