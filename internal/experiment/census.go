package experiment

import (
	"context"
	"fmt"
	"io"
	"math"
	"sync"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/bottomup"
	"microdata/internal/algorithm/datafly"
	"microdata/internal/algorithm/genetic"
	"microdata/internal/algorithm/incognito"
	"microdata/internal/algorithm/mondrian"
	"microdata/internal/algorithm/muargus"
	"microdata/internal/algorithm/ola"
	"microdata/internal/algorithm/optimal"
	"microdata/internal/algorithm/samarati"
	"microdata/internal/algorithm/topdown"
	"microdata/internal/core"
	"microdata/internal/dataset"
	"microdata/internal/generator"
	"microdata/internal/privacy"
	"microdata/internal/stats"
	"microdata/internal/utility"
)

// suite returns the full algorithm roster for the scaled comparisons.
func suite() []algorithm.Algorithm {
	return []algorithm.Algorithm{
		bottomup.New(),
		datafly.New(),
		samarati.New(),
		incognito.New(),
		optimal.New(),
		mondrian.New(),
		mondrian.NewRelaxed(),
		muargus.New(),
		ola.New(),
		genetic.New(),
		topdown.New(),
	}
}

// runSuite anonymizes with every algorithm concurrently (each algorithm is
// pure over its read-only inputs) and returns results in roster order; a
// failed algorithm yields a nil slot plus its error.
func runSuite(ctx context.Context, tab *dataset.Table, cfg algorithm.Config) ([]*algRun, []error) {
	algs := suite()
	runs := make([]*algRun, len(algs))
	errs := make([]error, len(algs))
	var wg sync.WaitGroup
	for i, alg := range algs {
		wg.Add(1)
		go func(i int, alg algorithm.Algorithm) {
			defer wg.Done()
			runs[i], errs[i] = runAlg(ctx, alg, tab, cfg)
		}(i, alg)
	}
	wg.Wait()
	return runs, errs
}

// runOneAlg anonymizes and gathers every measurement E14 reports.
type algRun struct {
	name       string
	result     *algorithm.Result
	classSizes core.PropertyVector
	utilVec    core.PropertyVector
	kActual    int
	distinctL  int
	entropyL   float64
	tClose     float64
	lm         float64
	dm         float64
	cavg       float64
	prec       float64 // NaN for local recodings
}

func runAlg(ctx context.Context, alg algorithm.Algorithm, tab *dataset.Table, cfg algorithm.Config) (*algRun, error) {
	r, err := algorithm.AnonymizeContext(ctx, alg, tab, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", alg.Name(), err)
	}
	sensIdx := tab.Schema.SensitiveIndex()
	sensitive := tab.Column(sensIdx)
	lossCfg := utility.LossConfig{Taxonomies: cfg.Taxonomies}
	u, err := utility.UtilityVector(r.Table, tab, lossCfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", alg.Name(), err)
	}
	lm, err := utility.GeneralLossMetric(r.Table, tab, lossCfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", alg.Name(), err)
	}
	distinctL, err := privacy.DistinctLDiversity(r.Partition, sensitive)
	if err != nil {
		return nil, err
	}
	entropyL, err := privacy.EntropyLDiversity(r.Partition, sensitive)
	if err != nil {
		return nil, err
	}
	tClose, err := privacy.TCloseness(r.Partition, sensitive, false)
	if err != nil {
		return nil, err
	}
	cavg, err := utility.AverageClassSizeMetric(r.Partition, cfg.K)
	if err != nil {
		return nil, err
	}
	prec := math.NaN()
	if r.Levels != nil {
		prec, err = utility.Precision(tab.Schema, cfg.Hierarchies, r.Levels)
		if err != nil {
			return nil, err
		}
	}
	return &algRun{
		name:       alg.Name(),
		result:     r,
		classSizes: privacy.ClassSizeVector(r.Partition),
		utilVec:    u,
		kActual:    privacy.KAnonymity(r.Partition),
		distinctL:  distinctL,
		entropyL:   entropyL,
		tClose:     tClose,
		lm:         lm,
		dm:         utility.DiscernibilityMetric(r.Partition),
		cavg:       cavg,
		prec:       prec,
	}, nil
}

// e14 is the scaled algorithm comparison.
func e14(opts Options) Experiment {
	return Experiment{
		ID: "E14", Title: "algorithm comparison on synthetic census", Artifact: "§1–2 at scale",
		Run: func(ctx context.Context, w io.Writer) error {
			tab, err := generator.Generate(generator.Config{N: opts.CensusN, Seed: opts.Seed})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "synthetic census: N=%d seed=%d\n", opts.CensusN, opts.Seed)

			midK := opts.Ks[len(opts.Ks)/2]
			var midRuns []*algRun
			for _, k := range opts.Ks {
				cfg := algorithm.Config{
					K:              k,
					Hierarchies:    generator.Hierarchies(),
					MaxSuppression: 0.05,
					Metric:         algorithm.MetricLM,
					Taxonomies:     generator.Taxonomies(),
					Seed:           opts.Seed,
				}
				fmt.Fprintf(w, "\n--- k = %d ---\n", k)
				fmt.Fprintf(w, "  %-20s %7s %7s %8s %6s %8s %10s %7s %7s %6s %7s %8s\n",
					"algorithm", "k_act", "classes", "suppr", "LM", "DM", "C_avg", "Prec", "l_dist", "l_ent", "t_close", "Gini")
				var runs []*algRun
				rawRuns, errs := runSuite(ctx, tab, cfg)
				for ri, ar := range rawRuns {
					if errs[ri] != nil {
						fmt.Fprintf(w, "  %-20s failed: %v\n", suite()[ri].Name(), errs[ri])
						continue
					}
					runs = append(runs, ar)
					g, gerr := stats.Gini(ar.classSizes)
					gs := "-"
					if gerr == nil {
						gs = trim(g)
					}
					precStr := "-"
					if !math.IsNaN(ar.prec) {
						precStr = trim(ar.prec)
					}
					fmt.Fprintf(w, "  %-20s %7d %7d %8d %6s %8s %10s %7s %7d %6s %7s %8s\n",
						ar.name, ar.kActual, ar.result.Partition.NumClasses(),
						len(ar.result.Suppressed), trim(ar.lm), trim(ar.dm), trim(ar.cavg),
						precStr, ar.distinctL, trim(ar.entropyL), trim(ar.tClose), gs)
				}
				if k == midK {
					midRuns = runs
				}
			}
			if len(midRuns) > 1 {
				fmt.Fprintf(w, "\n--- pairwise vector comparisons at k = %d ---\n", midK)
				writeMatrices(w, midRuns)
			}
			fmt.Fprintf(w, "\n--- bias summary at k = %d (class-size vectors) ---\n", midK)
			fmt.Fprintf(w, "  %-20s %6s %6s %6s %6s %6s %8s\n", "algorithm", "min", "q1", "med", "q3", "max", "Gini")
			for _, ar := range midRuns {
				s := stats.Summarize(ar.classSizes)
				fmt.Fprintf(w, "  %-20s %6s %6s %6s %6s %6s %8s\n",
					ar.name, trim(s.Min), trim(s.Q1), trim(s.Median), trim(s.Q3), trim(s.Max), trim(s.Gini))
			}
			return nil
		},
	}
}

// writeMatrices renders the ▶cov / ▶spr / ▶rank / ▶hv-log matrices over the
// class-size property and ▶cov over the utility property.
func writeMatrices(w io.Writer, runs []*algRun) {
	labels := make([]string, len(runs))
	for i, r := range runs {
		labels[i] = r.name
	}
	n := len(runs[0].classSizes)
	dmax := make(core.PropertyVector, n)
	for i := range dmax {
		dmax[i] = float64(n)
	}
	comparators := []struct {
		title string
		cmp   core.Comparator
		vec   func(*algRun) core.PropertyVector
	}{
		{"coverage (privacy: class sizes) — winner named per cell", core.CovBetter(), func(r *algRun) core.PropertyVector { return r.classSizes }},
		{"spread (privacy: class sizes)", core.SprBetter(), func(r *algRun) core.PropertyVector { return r.classSizes }},
		{"rank (privacy: class sizes, D_max = all-N)", core.RankBetter{Dmax: dmax}, func(r *algRun) core.PropertyVector { return r.classSizes }},
		{"hypervolume (privacy: class sizes, log form)", core.HvLogBetter(), func(r *algRun) core.PropertyVector { return r.classSizes }},
		{"coverage (utility: retained information)", core.CovBetter(), func(r *algRun) core.PropertyVector { return r.utilVec }},
	}
	for _, c := range comparators {
		matrix(w, c.title, labels, func(i, j int) string {
			if i == j {
				return "."
			}
			out, err := c.cmp.Compare(c.vec(runs[i]), c.vec(runs[j]))
			if err != nil {
				return "err"
			}
			return outcomeGlyph(out)
		})
		fmt.Fprintln(w)
	}
}

// e15 is the GA ablation and trade-off sweep.
func e15(opts Options) Experiment {
	return Experiment{
		ID: "E15", Title: "genetic-algorithm ablation and privacy/utility trade-off", Artifact: "§6–7 extension",
		Run: func(ctx context.Context, w io.Writer) error {
			tab, err := generator.Generate(generator.Config{N: opts.CensusN, Seed: opts.Seed})
			if err != nil {
				return err
			}
			cfg := algorithm.Config{
				K:              opts.Ks[len(opts.Ks)/2],
				Hierarchies:    generator.Hierarchies(),
				MaxSuppression: 0.05,
				Metric:         algorithm.MetricLM,
				Taxonomies:     generator.Taxonomies(),
				Seed:           opts.Seed,
			}
			fmt.Fprintf(w, "census N=%d, k=%d\n", opts.CensusN, cfg.K)
			fmt.Fprintln(w, "  GA crossover ablation (cost = LM, lower is better):")
			for _, alg := range []algorithm.Algorithm{genetic.New(), genetic.NewConstrained()} {
				r, err := algorithm.AnonymizeContext(ctx, alg, tab, cfg)
				if err != nil {
					return err
				}
				c, err := algorithm.ResultCost(r, tab, cfg)
				if err != nil {
					return err
				}
				writeKV(w, alg.Name(), fmt.Sprintf("node=%v LM=%s evals=%v", r.Levels, trim(c), r.Stats["fitness_evaluations"]))
			}
			opt, err := optimal.New().AnonymizeContext(ctx, tab, cfg)
			if err != nil {
				return err
			}
			oc, err := algorithm.ResultCost(opt, tab, cfg)
			if err != nil {
				return err
			}
			writeKV(w, "optimal (reference)", fmt.Sprintf("node=%v LM=%s", opt.Levels, trim(oc)))

			fmt.Fprintln(w, "  privacy/utility trade-off (optimal search per k):")
			fmt.Fprintf(w, "  %6s %8s %10s %10s\n", "k", "LM", "avg|E|", "min|E|")
			for _, k := range opts.Ks {
				cfg.K = k
				r, err := optimal.New().AnonymizeContext(ctx, tab, cfg)
				if err != nil {
					return err
				}
				lm, err := algorithm.ResultCost(r, tab, cfg)
				if err != nil {
					return err
				}
				sizes := privacy.ClassSizeVector(r.Partition)
				fmt.Fprintf(w, "  %6d %8s %10s %10s\n", k, trim(lm), trim(stats.Mean(sizes)), trim(stats.Min(sizes)))
			}
			fmt.Fprintln(w, "  Higher k forces higher loss — the §7 multi-objective tension made")
			fmt.Fprintln(w, "  visible per tuple by the property vectors.")
			return nil
		},
	}
}
