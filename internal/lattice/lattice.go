// Package lattice models the full-domain generalization lattice used by
// global-recoding disclosure control algorithms (Samarati, Incognito,
// optimal exhaustive search, the genetic algorithm).
//
// A node of the lattice is a vector of per-attribute generalization levels,
// one entry per quasi-identifier. The partial order is component-wise: node
// u is below node v (v is "at least as generalized") when u[i] <= v[i] for
// all i. The height of a node is the sum of its levels; the bottom node
// (0,...,0) is the original table and the top node is full suppression.
package lattice

import (
	"fmt"
)

// Node is a vector of generalization levels, one per quasi-identifier in
// schema order. Nodes are value-like; Clone before mutating shared ones.
type Node []int

// Clone returns a copy of the node.
func (n Node) Clone() Node {
	c := make(Node, len(n))
	copy(c, n)
	return c
}

// Height returns the sum of levels, the node's stratum in the lattice.
func (n Node) Height() int {
	h := 0
	for _, l := range n {
		h += l
	}
	return h
}

// Equal reports component-wise equality.
func (n Node) Equal(m Node) bool {
	if len(n) != len(m) {
		return false
	}
	for i := range n {
		if n[i] != m[i] {
			return false
		}
	}
	return true
}

// AtMost reports whether n is component-wise at most m, i.e. m is at least
// as generalized as n in every attribute.
func (n Node) AtMost(m Node) bool {
	if len(n) != len(m) {
		return false
	}
	for i := range n {
		if n[i] > m[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string for use as a map key.
func (n Node) Key() string { return fmt.Sprint([]int(n)) }

// String renders the node as its level vector.
func (n Node) String() string { return fmt.Sprint([]int(n)) }

// Lattice is the set of all level vectors bounded by per-attribute maxima.
type Lattice struct {
	max []int // per-attribute maximum level
}

// New builds a lattice from per-attribute maximum levels. Every maximum
// must be non-negative; a zero maximum pins that attribute at level 0.
func New(maxLevels []int) (*Lattice, error) {
	if len(maxLevels) == 0 {
		return nil, fmt.Errorf("lattice: no attributes")
	}
	for i, m := range maxLevels {
		if m < 0 {
			return nil, fmt.Errorf("lattice: attribute %d has negative max level %d", i, m)
		}
	}
	c := make([]int, len(maxLevels))
	copy(c, maxLevels)
	return &Lattice{max: c}, nil
}

// Must is New that panics on error, for fixtures.
func Must(maxLevels []int) *Lattice {
	l, err := New(maxLevels)
	if err != nil {
		panic(err)
	}
	return l
}

// Dims returns the number of attributes.
func (l *Lattice) Dims() int { return len(l.max) }

// MaxLevels returns a copy of the per-attribute maxima.
func (l *Lattice) MaxLevels() []int {
	c := make([]int, len(l.max))
	copy(c, l.max)
	return c
}

// Bottom returns the all-zero node (the original table).
func (l *Lattice) Bottom() Node { return make(Node, len(l.max)) }

// Top returns the node with every attribute at its maximum level.
func (l *Lattice) Top() Node {
	t := make(Node, len(l.max))
	copy(t, l.max)
	return t
}

// Height returns the height of the top node, i.e. the number of strata
// minus one.
func (l *Lattice) Height() int { return Node(l.max).Height() }

// Size returns the total number of nodes, the product of (max_i + 1).
func (l *Lattice) Size() int {
	size := 1
	for _, m := range l.max {
		size *= m + 1
	}
	return size
}

// Contains reports whether the node is a valid member of the lattice.
func (l *Lattice) Contains(n Node) bool {
	if len(n) != len(l.max) {
		return false
	}
	for i, v := range n {
		if v < 0 || v > l.max[i] {
			return false
		}
	}
	return true
}

// Successors returns the nodes obtained by raising exactly one attribute by
// one level (the covering elements of n).
func (l *Lattice) Successors(n Node) []Node {
	var out []Node
	for i := range n {
		if n[i] < l.max[i] {
			s := n.Clone()
			s[i]++
			out = append(out, s)
		}
	}
	return out
}

// Predecessors returns the nodes obtained by lowering exactly one attribute
// by one level (the elements covered by n).
func (l *Lattice) Predecessors(n Node) []Node {
	var out []Node
	for i := range n {
		if n[i] > 0 {
			p := n.Clone()
			p[i]--
			out = append(out, p)
		}
	}
	return out
}

// All enumerates every node in lexicographic order, calling fn for each.
// Enumeration stops early if fn returns false.
func (l *Lattice) All(fn func(Node) bool) {
	n := l.Bottom()
	for {
		if !fn(n.Clone()) {
			return
		}
		i := len(n) - 1
		for i >= 0 {
			n[i]++
			if n[i] <= l.max[i] {
				break
			}
			n[i] = 0
			i--
		}
		if i < 0 {
			return
		}
	}
}

// Nodes returns every node in lexicographic order. For large lattices
// prefer All to avoid materializing the slice.
func (l *Lattice) Nodes() []Node {
	out := make([]Node, 0, l.Size())
	l.All(func(n Node) bool {
		out = append(out, n)
		return true
	})
	return out
}

// AtHeight returns every node whose level sum equals h, in lexicographic
// order. Heights outside [0, Height()] return nil.
func (l *Lattice) AtHeight(h int) []Node {
	if h < 0 || h > l.Height() {
		return nil
	}
	var out []Node
	n := make(Node, len(l.max))
	var rec func(i, remaining int)
	rec = func(i, remaining int) {
		if i == len(n)-1 {
			if remaining <= l.max[i] {
				n[i] = remaining
				out = append(out, n.Clone())
			}
			return
		}
		hi := remaining
		if hi > l.max[i] {
			hi = l.max[i]
		}
		for v := 0; v <= hi; v++ {
			n[i] = v
			rec(i+1, remaining-v)
		}
	}
	rec(0, h)
	return out
}

// Between enumerates the nodes n of the sublattice [bottom, top] (that is,
// bottom <= n <= top component-wise) whose height equals h, in
// lexicographic order. It is the stratum iterator the divide-and-conquer
// searches (OLA) recurse on; Between(l.Bottom(), l.Top(), h) coincides with
// l.AtHeight(h). Mismatched vectors or an unreachable height return nil.
func Between(bottom, top Node, h int) []Node {
	if len(bottom) != len(top) || !bottom.AtMost(top) {
		return nil
	}
	var out []Node
	n := bottom.Clone()
	var rec func(i, remaining int)
	rec = func(i, remaining int) {
		if i == len(n)-1 {
			v := bottom[i] + remaining
			if v <= top[i] {
				n[i] = v
				out = append(out, n.Clone())
			}
			return
		}
		max := top[i] - bottom[i]
		if max > remaining {
			max = remaining
		}
		for d := 0; d <= max; d++ {
			n[i] = bottom[i] + d
			rec(i+1, remaining-d)
		}
	}
	rec(0, h-bottom.Height())
	return out
}

// GeneralizationOrderConsistent reports whether raising levels can only
// merge equivalence classes, expressed as a check the property-based tests
// rely on: for nodes a <= b, every pair of tuples identical under a must be
// identical under b. The lattice itself cannot verify table semantics, so
// this helper only validates the partial order arguments.
func GeneralizationOrderConsistent(a, b Node) bool { return a.AtMost(b) }
