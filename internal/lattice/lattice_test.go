package lattice

import (
	"testing"
	"testing/quick"
)

func TestNodeBasics(t *testing.T) {
	n := Node{1, 2, 0}
	if n.Height() != 3 {
		t.Errorf("Height = %d", n.Height())
	}
	c := n.Clone()
	c[0] = 9
	if n[0] != 1 {
		t.Error("Clone shares storage")
	}
	if !n.Equal(Node{1, 2, 0}) || n.Equal(Node{1, 2, 1}) || n.Equal(Node{1, 2}) {
		t.Error("Equal misbehaves")
	}
	if !n.AtMost(Node{1, 2, 0}) || !n.AtMost(Node{2, 2, 1}) || n.AtMost(Node{0, 2, 0}) || n.AtMost(Node{1, 2}) {
		t.Error("AtMost misbehaves")
	}
	if n.Key() != "[1 2 0]" || n.String() != "[1 2 0]" {
		t.Errorf("Key/String = %q/%q", n.Key(), n.String())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty lattice should fail")
	}
	if _, err := New([]int{1, -1}); err == nil {
		t.Error("negative max should fail")
	}
	l := Must([]int{5, 4})
	if l.Dims() != 2 {
		t.Errorf("Dims = %d", l.Dims())
	}
}

func TestMustPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Must(nil)
}

func TestBoundsAndSize(t *testing.T) {
	// The paper's running-example lattice: zip 0..5, age 0..4, giving 30 nodes.
	l := Must([]int{5, 4})
	if !l.Bottom().Equal(Node{0, 0}) {
		t.Errorf("Bottom = %v", l.Bottom())
	}
	if !l.Top().Equal(Node{5, 4}) {
		t.Errorf("Top = %v", l.Top())
	}
	if l.Height() != 9 {
		t.Errorf("Height = %d", l.Height())
	}
	if l.Size() != 30 {
		t.Errorf("Size = %d", l.Size())
	}
	ml := l.MaxLevels()
	ml[0] = 99
	if l.Top()[0] != 5 {
		t.Error("MaxLevels leaks internal storage")
	}
}

func TestContains(t *testing.T) {
	l := Must([]int{2, 3})
	cases := []struct {
		n    Node
		want bool
	}{
		{Node{0, 0}, true},
		{Node{2, 3}, true},
		{Node{3, 0}, false},
		{Node{0, 4}, false},
		{Node{-1, 0}, false},
		{Node{1}, false},
		{Node{1, 1, 1}, false},
	}
	for _, c := range cases {
		if got := l.Contains(c.n); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	l := Must([]int{2, 2})
	succ := l.Successors(Node{1, 2})
	if len(succ) != 1 || !succ[0].Equal(Node{2, 2}) {
		t.Errorf("Successors(1,2) = %v", succ)
	}
	if got := l.Successors(l.Top()); len(got) != 0 {
		t.Errorf("Successors(top) = %v", got)
	}
	pred := l.Predecessors(Node{1, 0})
	if len(pred) != 1 || !pred[0].Equal(Node{0, 0}) {
		t.Errorf("Predecessors(1,0) = %v", pred)
	}
	if got := l.Predecessors(l.Bottom()); len(got) != 0 {
		t.Errorf("Predecessors(bottom) = %v", got)
	}
}

func TestAllAndNodes(t *testing.T) {
	l := Must([]int{1, 2})
	nodes := l.Nodes()
	if len(nodes) != l.Size() {
		t.Fatalf("Nodes returned %d, Size = %d", len(nodes), l.Size())
	}
	seen := map[string]bool{}
	for _, n := range nodes {
		if !l.Contains(n) {
			t.Errorf("invalid node %v", n)
		}
		if seen[n.Key()] {
			t.Errorf("duplicate node %v", n)
		}
		seen[n.Key()] = true
	}
	// Early stop.
	count := 0
	l.All(func(Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d nodes", count)
	}
}

func TestAllReturnsIndependentNodes(t *testing.T) {
	l := Must([]int{1, 1})
	var grabbed []Node
	l.All(func(n Node) bool {
		grabbed = append(grabbed, n)
		return true
	})
	keys := map[string]bool{}
	for _, n := range grabbed {
		keys[n.Key()] = true
	}
	if len(keys) != 4 {
		t.Errorf("All handed out aliased nodes: %v", grabbed)
	}
}

func TestAtHeight(t *testing.T) {
	l := Must([]int{2, 2})
	cases := map[int]int{0: 1, 1: 2, 2: 3, 3: 2, 4: 1, 5: 0, -1: 0}
	for h, want := range cases {
		nodes := l.AtHeight(h)
		if len(nodes) != want {
			t.Errorf("AtHeight(%d) returned %d nodes, want %d", h, len(nodes), want)
		}
		for _, n := range nodes {
			if n.Height() != h {
				t.Errorf("AtHeight(%d) returned node %v with height %d", h, n, n.Height())
			}
			if !l.Contains(n) {
				t.Errorf("AtHeight(%d) returned invalid node %v", h, n)
			}
		}
	}
}

func TestAtHeightCoversAllNodes(t *testing.T) {
	l := Must([]int{3, 2, 1})
	total := 0
	for h := 0; h <= l.Height(); h++ {
		total += len(l.AtHeight(h))
	}
	if total != l.Size() {
		t.Errorf("strata cover %d nodes, Size = %d", total, l.Size())
	}
}

func TestPartialOrderLawsQuick(t *testing.T) {
	l := Must([]int{3, 3, 3})
	nodes := l.Nodes()
	pick := func(i uint16) Node { return nodes[int(i)%len(nodes)] }
	// Reflexivity, antisymmetry, transitivity of AtMost.
	f := func(i, j, k uint16) bool {
		a, b, c := pick(i), pick(j), pick(k)
		if !a.AtMost(a) {
			return false
		}
		if a.AtMost(b) && b.AtMost(a) && !a.Equal(b) {
			return false
		}
		if a.AtMost(b) && b.AtMost(c) && !a.AtMost(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestSuccessorRaisesHeightByOneQuick(t *testing.T) {
	l := Must([]int{4, 3, 2})
	nodes := l.Nodes()
	f := func(i uint16) bool {
		n := nodes[int(i)%len(nodes)]
		for _, s := range l.Successors(n) {
			if s.Height() != n.Height()+1 || !n.AtMost(s) || !l.Contains(s) {
				return false
			}
		}
		for _, p := range l.Predecessors(n) {
			if p.Height() != n.Height()-1 || !p.AtMost(n) || !l.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
