// Morsel-driven parallel group-by: the pairwise radix/hash combine of
// codes.go sharded across workers over fixed-size row morsels, with the
// per-shard group tables merged under global first-appearance renumbering.
// The result is element-identical to the sequential reference — same class
// order, same ascending rows within each class — which the cross-validation
// tests pin.
//
// The construction has three phases:
//
//  1. Shard combine (parallel): each worker owns a contiguous,
//     morsel-aligned row range and runs the ordinary pairwise combine over
//     it, producing shard-local group ids in first-appearance order plus,
//     per local group, its representative (first) global row index and its
//     row count.
//  2. Merge (sequential, O(total local groups) — not O(rows)): walking
//     shards in row order and local groups in local-id order assigns global
//     ids by first appearance: a local group whose representative tuple was
//     already seen adopts the existing id. Because local ids are
//     first-appearance-ordered within their shard and shards are scanned in
//     row order, the resulting global numbering is exactly the sequential
//     scan's first-appearance numbering. The same walk computes, per
//     (shard, local group), the absolute offset its rows occupy inside the
//     final class segment, so phase 3 needs no synchronization.
//  3. Materialize (parallel): every shard writes its rows' ClassOf entries
//     and scatters its row indices into the shared class backing at the
//     offsets from phase 2. Within one class, shard segments are ordered by
//     shard (= row order) and rows within a segment are scanned
//     ascending, so each class's row list is globally ascending.
package eqclass

import (
	"microdata/internal/kernels"
)

// morselRows is the row-range granularity shards are aligned to. It is a
// variable (defaulting to kernels.MorselRows) only so the cross-validation
// tests can shrink it to force multi-shard execution and odd
// morsel-boundary splits on small inputs.
var morselRows = kernels.MorselRows

// groupShards returns how many shards the parallel group-by should split n
// rows into under the given worker budget (0 = kernels.DefaultWorkers): at
// most one shard per worker, at least one morsel per shard.
func groupShards(n, workers int) int {
	if workers <= 0 {
		workers = kernels.DefaultWorkers()
	}
	maxByRows := (n + morselRows - 1) / morselRows
	if workers > maxByRows {
		workers = maxByRows
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// groupShardRange returns the half-open, morsel-aligned row range of shard
// s of nShards over n rows; the last shard absorbs the remainder.
func groupShardRange(n, nShards, s int) (lo, hi int) {
	morsels := (n + morselRows - 1) / morselRows
	per, extra := morsels/nShards, morsels%nShards
	start := s * per
	if s < extra {
		start += s
	} else {
		start += extra
	}
	count := per
	if s < extra {
		count++
	}
	lo = start * morselRows
	hi = lo + count*morselRows
	if lo > n {
		lo = n
	}
	if hi > n || s == nShards-1 {
		hi = n
	}
	return lo, hi
}

// groupShard is one worker's slice of the parallel group-by.
type groupShard struct {
	lo, hi int
	ids    []uint32 // local group id per row, backed by the shared ids array
	reps   []int32  // local group -> representative (first) global row index
	counts []int    // local group -> row count within this shard
	remap  []uint32 // local group -> global group id (merge phase)
	off    []int    // local group -> absolute write cursor into the class backing
	err    error
}

// fromCodesParallel runs the morsel-driven parallel group-by. cards must be
// effective (all > 0) and nShards > 1.
func fromCodesParallel(cols [][]uint32, cards []int, n, nShards int) (*Partition, error) {
	ids := make([]uint32, n)
	shards := make([]groupShard, nShards)
	kernels.ParallelFor(nShards, func(s int) {
		st := &shards[s]
		st.lo, st.hi = groupShardRange(n, nShards, s)
		st.ids = ids[st.lo:st.hi:st.hi]
		groups := 1
		for c, codes := range cols {
			if groups, st.err = combine(st.ids, codes[st.lo:st.hi], groups, cards[c]); st.err != nil {
				return
			}
		}
		// Local ids are assigned in first-appearance order, so the first
		// occurrence of id g is exactly the row where g == len(reps).
		st.reps = make([]int32, 0, groups)
		st.counts = make([]int, groups)
		for i, id := range st.ids {
			if int(id) == len(st.reps) {
				st.reps = append(st.reps, int32(st.lo+i))
			}
			st.counts[id]++
		}
	})
	for s := range shards {
		if err := shards[s].err; err != nil {
			return nil, err
		}
	}

	// Merge: assign global ids by first appearance across shards.
	mt := newMergeTable(cols)
	for s := range shards {
		st := &shards[s]
		st.remap = make([]uint32, len(st.reps))
		for lg, rep := range st.reps {
			st.remap[lg] = mt.globalID(rep)
		}
	}
	groups := len(mt.reps)
	classCounts := make([]int, groups)
	for s := range shards {
		st := &shards[s]
		for lg, c := range st.counts {
			classCounts[st.remap[lg]] += c
		}
	}
	// Absolute class-segment starts, then per-(shard, local group) write
	// cursors in shard order — the order that keeps rows ascending.
	starts := make([]int, groups+1)
	for g, c := range classCounts {
		starts[g+1] = starts[g] + c
	}
	cursor := make([]int, groups)
	copy(cursor, starts[:groups])
	for s := range shards {
		st := &shards[s]
		st.off = make([]int, len(st.counts))
		for lg, c := range st.counts {
			g := st.remap[lg]
			st.off[lg] = cursor[g]
			cursor[g] += c
		}
	}

	// Materialize ClassOf and the class backing in parallel.
	p := &Partition{
		ClassOf: make([]int, n),
		Classes: make([][]int, groups),
		n:       n,
	}
	backing := make([]int, n)
	kernels.ParallelFor(nShards, func(s int) {
		st := &shards[s]
		for i, id := range st.ids {
			g := st.remap[id]
			p.ClassOf[st.lo+i] = int(g)
			backing[st.off[id]] = st.lo + i
			st.off[id]++
		}
	})
	for g := range p.Classes {
		p.Classes[g] = backing[starts[g]:starts[g+1]:starts[g+1]]
	}
	return p, nil
}

// mergeTable interns code tuples (identified by a representative row) into
// dense global group ids in insertion order. Tuples hash over every
// column's code at the representative row; collisions fall back to exact
// tuple comparison, so the numbering never depends on hash quality.
type mergeTable struct {
	cols    [][]uint32
	buckets map[uint64][]uint32 // tuple hash -> global ids
	reps    []int32             // global id -> representative row
}

func newMergeTable(cols [][]uint32) *mergeTable {
	return &mergeTable{cols: cols, buckets: make(map[uint64][]uint32)}
}

// globalID returns the global group id of the tuple at row rep, interning
// it with the next id on first sight.
func (m *mergeTable) globalID(rep int32) uint32 {
	h := m.hash(rep)
	for _, g := range m.buckets[h] {
		if m.equal(m.reps[g], rep) {
			return g
		}
	}
	g := uint32(len(m.reps))
	m.reps = append(m.reps, rep)
	m.buckets[h] = append(m.buckets[h], g)
	return g
}

// hash is FNV-1a over the row's code tuple.
func (m *mergeTable) hash(row int32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, col := range m.cols {
		cd := col[row]
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(cd >> shift))
			h *= prime64
		}
	}
	return h
}

func (m *mergeTable) equal(a, b int32) bool {
	for _, col := range m.cols {
		if col[a] != col[b] {
			return false
		}
	}
	return true
}
