// This file holds the vectorized grouping path: the radix/hash group-by
// over dictionary-code vectors that replaces '\x1f'-joined signature
// strings as the primary partitioning path. FromSignatures/WriteSignature
// remain the pinned reference; the cross-validation tests hold both paths
// element-identical. Large inputs dispatch to the morsel-driven parallel
// path in parallel.go, which is in turn pinned element-identical to the
// sequential path here.

package eqclass

import (
	"fmt"

	"microdata/internal/dataset"
	"microdata/internal/kernels"
)

// radixMax bounds the (groups × cardinality) product under which a combine
// pass uses a flat radix table instead of a hash map. 1<<22 int32 slots is
// 16 MiB of scratch — cheap against the row vectors it indexes, and pooled
// across calls via kernels.GetInt32.
const radixMax = 1 << 22

// FromCodes partitions n rows by the tuple of their per-column dictionary
// codes. cols holds one row-aligned code vector per column; cards[c] is an
// upper bound on the distinct codes of column c (its dictionary
// cardinality), or 0 when unknown. The resulting partition is canonical:
// classes ordered by first appearance of their code tuple, rows ascending
// within a class — element-identical to signing each row with
// WriteSignature and grouping via FromSignatures.
//
// Columns are combined pairwise: after column c every row holds a group id
// renumbered by first appearance, and column c+1 refines it through either
// a flat radix table (when groups×card fits radixMax) or a uint64 hash
// map. Both paths are allocation-lean integer loops — no per-row strings.
//
// Inputs spanning more than one row morsel fan the combine out across
// worker shards (see FromCodesParallel); the partition is identical either
// way.
func FromCodes(cols [][]uint32, cards []int) (*Partition, error) {
	n, eff, err := checkCodes(cols, cards)
	if err != nil {
		return nil, err
	}
	if nShards := groupShards(n, 0); nShards > 1 {
		return fromCodesParallel(cols, eff, n, nShards)
	}
	return fromCodesSequential(cols, eff, n)
}

// FromCodesSequential is the single-goroutine reference grouping —
// FromCodes without the parallel dispatch. The parallel path is pinned
// element-identical to it by the cross-validation tests.
func FromCodesSequential(cols [][]uint32, cards []int) (*Partition, error) {
	n, eff, err := checkCodes(cols, cards)
	if err != nil {
		return nil, err
	}
	return fromCodesSequential(cols, eff, n)
}

// FromCodesParallel is FromCodes with an explicit worker budget (0 means
// kernels.DefaultWorkers), always taking the morsel-driven parallel path
// when the input spans more than one shard. Exposed for benchmarks and
// cross-validation; FromCodes dispatches here by itself for large inputs.
func FromCodesParallel(cols [][]uint32, cards []int, workers int) (*Partition, error) {
	n, eff, err := checkCodes(cols, cards)
	if err != nil {
		return nil, err
	}
	nShards := groupShards(n, workers)
	if nShards <= 1 {
		return fromCodesSequential(cols, eff, n)
	}
	return fromCodesParallel(cols, eff, n, nShards)
}

// checkCodes validates the code vectors and returns the row count plus the
// effective per-column cardinalities (unknown cardinalities resolved by a
// max scan, exactly as the pre-parallel FromCodes did inline).
func checkCodes(cols [][]uint32, cards []int) (int, []int, error) {
	if len(cols) == 0 {
		return 0, nil, fmt.Errorf("eqclass: no columns to partition on")
	}
	if len(cards) != len(cols) {
		return 0, nil, fmt.Errorf("eqclass: %d cardinalities for %d columns", len(cards), len(cols))
	}
	n := len(cols[0])
	for _, col := range cols[1:] {
		if len(col) != n {
			return 0, nil, fmt.Errorf("eqclass: ragged code vectors (%d vs %d rows)", len(col), n)
		}
	}
	if n == 0 {
		return 0, nil, fmt.Errorf("eqclass: no signatures to partition on")
	}
	eff := cards
	for c, card := range cards {
		if card > 0 {
			continue
		}
		if &eff[0] == &cards[0] {
			eff = append([]int(nil), cards...)
		}
		max := uint32(0)
		for _, cd := range cols[c] {
			if cd > max {
				max = cd
			}
		}
		eff[c] = int(max) + 1
	}
	return n, eff, nil
}

// fromCodesSequential runs the pairwise combine over the whole table on the
// calling goroutine. cards must be effective (all > 0).
func fromCodesSequential(cols [][]uint32, cards []int, n int) (*Partition, error) {
	ids := make([]uint32, n)
	groups := 1
	for c, codes := range cols {
		var err error
		if groups, err = combine(ids, codes, groups, cards[c]); err != nil {
			return nil, err
		}
	}
	return fromGroupIDs(ids, groups), nil
}

// combine refines the group ids in place with one more code column,
// returning the new group count. New ids are assigned in first-appearance
// (row-scan) order, which keeps the final class order canonical. ids and
// codes may be shard subranges; the radix table is pooled per-call scratch,
// so concurrent combines (the parallel shards, concurrent engine node
// evaluations) never share state.
func combine(ids []uint32, codes []uint32, groups, card int) (int, error) {
	next := uint32(0)
	if prod := int64(groups) * int64(card); prod <= radixMax {
		lut := kernels.GetInt32(int(prod))
		defer kernels.PutInt32(lut)
		kernels.FillInt32(lut, -1)
		ucard := uint32(card)
		for i, cd := range codes {
			if cd >= ucard {
				return 0, fmt.Errorf("eqclass: code %d exceeds cardinality %d", cd, card)
			}
			k := ids[i]*ucard + cd
			g := lut[k]
			if g < 0 {
				g = int32(next)
				lut[k] = g
				next++
			}
			ids[i] = uint32(g)
		}
		return int(next), nil
	}
	m := make(map[uint64]uint32, groups)
	for i, cd := range codes {
		k := uint64(ids[i])<<32 | uint64(cd)
		g, ok := m[k]
		if !ok {
			g = next
			m[k] = g
			next++
		}
		ids[i] = g
	}
	return int(next), nil
}

// fromGroupIDs materializes a Partition from per-row group ids numbered
// 0..groups-1 in first-appearance order, carving all classes out of one
// backing array exactly as FromSignatures does.
func fromGroupIDs(ids []uint32, groups int) *Partition {
	p := &Partition{
		ClassOf: make([]int, len(ids)),
		n:       len(ids),
	}
	counts := make([]int, groups)
	for i, g := range ids {
		p.ClassOf[i] = int(g)
		counts[g]++
	}
	backing := make([]int, len(ids))
	p.Classes = make([][]int, groups)
	off := 0
	for g, c := range counts {
		p.Classes[g] = backing[off : off : off+c]
		off += c
	}
	for i, g := range ids {
		p.Classes[g] = append(p.Classes[g], i)
	}
	return p
}

// FromColumnar partitions a columnar table over an explicit set of column
// indices, running entirely on dictionary codes.
func FromColumnar(c *dataset.Columnar, cols []int) (*Partition, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("eqclass: no columns to partition on")
	}
	vecs := make([][]uint32, len(cols))
	cards := make([]int, len(cols))
	for vi, j := range cols {
		if j < 0 || j >= c.Schema().Len() {
			return nil, fmt.Errorf("eqclass: column index %d out of range", j)
		}
		col := c.Col(j)
		vecs[vi] = col.Codes()
		cards[vi] = col.Card()
	}
	return FromCodes(vecs, cards)
}

// ValueCountsColumn is Partition.ValueCounts computed over a
// dictionary-encoded column: per-class tallies run on integer codes with a
// pooled cardinality-sized scratch vector, and value keys are resolved once
// per distinct (class, value) pair instead of once per row.
func (p *Partition) ValueCountsColumn(col *dataset.Column) ([]map[string]int, error) {
	if col.Len() != p.n {
		return nil, fmt.Errorf("eqclass: column has %d values for %d rows", col.Len(), p.n)
	}
	codes := col.Codes()
	keys := col.DictKeys()
	scratch := kernels.GetInt(col.Card())
	defer kernels.PutInt(scratch)
	kernels.ZeroInt(scratch)
	touched := make([]uint32, 0, col.Card())
	out := make([]map[string]int, len(p.Classes))
	for ci, rows := range p.Classes {
		for _, r := range rows {
			c := codes[r]
			if scratch[c] == 0 {
				touched = append(touched, c)
			}
			scratch[c]++
		}
		m := make(map[string]int, len(touched))
		for _, c := range touched {
			m[keys[c]] = scratch[c]
			scratch[c] = 0
		}
		out[ci] = m
		touched = touched[:0]
	}
	return out, nil
}
