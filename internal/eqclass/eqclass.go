// Package eqclass partitions an anonymized microdata table into equivalence
// classes: maximal groups of tuples that agree on every quasi-identifier.
// Equivalence classes are the raw material of every privacy property vector
// in the paper — the class-size vector underlies k-anonymity (Figure 1) and
// the sensitive-value counts within a class underlie ℓ-diversity (§3).
package eqclass

import (
	"fmt"
	"sort"
	"strings"

	"microdata/internal/dataset"
)

// Partition groups the rows of one table by quasi-identifier signature.
type Partition struct {
	// Classes holds the row indices of each equivalence class. Classes are
	// ordered by first appearance of their signature in the table; row
	// indices within a class are increasing.
	Classes [][]int
	// ClassOf maps every row index to its class index in Classes.
	ClassOf []int
	// n is the table size.
	n int
}

// FromTable partitions the table over its schema's quasi-identifiers.
func FromTable(t *dataset.Table) (*Partition, error) {
	qi := t.Schema.QuasiIdentifiers()
	if len(qi) == 0 {
		return nil, fmt.Errorf("eqclass: schema has no quasi-identifiers")
	}
	return FromColumns(t, qi)
}

// FromColumns partitions the table over an explicit set of column indices.
//
// The grouping runs vectorized: the table's dictionary-encoded columnar
// backing (built and cached on first use) supplies per-column code
// vectors, and FromCodes combines them with radix/hash passes — no
// per-row signature strings. The result is element-identical to signing
// every row with WriteSignature and grouping via FromSignatures, which
// the cross-validation tests pin.
func FromColumns(t *dataset.Table, cols []int) (*Partition, error) {
	for _, j := range cols {
		if j < 0 || j >= t.Schema.Len() {
			return nil, fmt.Errorf("eqclass: column index %d out of range", j)
		}
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("eqclass: no columns to partition on")
	}
	if t.Len() == 0 {
		return &Partition{ClassOf: []int{}, n: 0}, nil
	}
	return FromColumnar(t.Columnar(), cols)
}

// WriteSignature appends the '\x1f'-separated Value.Key signature of row
// restricted to cols — the grouping key FromColumns partitions by. Callers
// that signature many rows reuse one strings.Builder (Reset between rows)
// to avoid the quadratic cost of string concatenation in a loop.
func WriteSignature(sb *strings.Builder, row []dataset.Value, cols []int) {
	for _, j := range cols {
		sb.WriteString(row[j].Key())
		sb.WriteByte('\x1f')
	}
}

// KeySignature returns the signature of one explicit value tuple — what
// WriteSignature produces when cols selects every element in order. Used
// to key memoization of victim quasi-identifier tuples in package attack.
func KeySignature(vals []dataset.Value) string {
	var sb strings.Builder
	for _, v := range vals {
		sb.WriteString(v.Key())
		sb.WriteByte('\x1f')
	}
	return sb.String()
}

// FromSignatures groups rows by a precomputed per-row signature — the
// partition FromColumns would produce if element i were the concatenation
// of row i's column keys. It is the constructor behind package engine's
// signature-fragment evaluation: callers assemble signatures from
// precomputed per-level fragments instead of materializing a generalized
// table. Classes are ordered by first appearance, exactly as FromColumns
// orders them.
func FromSignatures(sigs []string) (*Partition, error) {
	if len(sigs) == 0 {
		return nil, fmt.Errorf("eqclass: no signatures to partition on")
	}
	p := &Partition{
		ClassOf: make([]int, len(sigs)),
		n:       len(sigs),
	}
	index := make(map[string]int)
	var counts []int
	for i, sig := range sigs {
		ci, ok := index[sig]
		if !ok {
			ci = len(counts)
			index[sig] = ci
			counts = append(counts, 0)
		}
		counts[ci]++
		p.ClassOf[i] = ci
	}
	// Carve every class out of one backing array sized by the counts from
	// the first pass; growing each class append-by-append reallocates
	// O(log class-size) times per class, which dominates large sweeps.
	backing := make([]int, len(sigs))
	p.Classes = make([][]int, len(counts))
	off := 0
	for ci, c := range counts {
		p.Classes[ci] = backing[off : off : off+c]
		off += c
	}
	for i, ci := range p.ClassOf {
		p.Classes[ci] = append(p.Classes[ci], i)
	}
	return p, nil
}

// FromGroups builds a partition directly from explicit row groups, used by
// local-recoding algorithms (Mondrian) that know their partition without a
// signature pass. Groups must cover 0..n-1 exactly once.
func FromGroups(n int, groups [][]int) (*Partition, error) {
	p := &Partition{
		Classes: make([][]int, len(groups)),
		ClassOf: make([]int, n),
		n:       n,
	}
	seen := make([]bool, n)
	for ci, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("eqclass: group %d is empty", ci)
		}
		rows := append([]int(nil), g...)
		sort.Ints(rows)
		for _, r := range rows {
			if r < 0 || r >= n {
				return nil, fmt.Errorf("eqclass: row %d out of range [0,%d)", r, n)
			}
			if seen[r] {
				return nil, fmt.Errorf("eqclass: row %d appears in more than one group", r)
			}
			seen[r] = true
			p.ClassOf[r] = ci
		}
		p.Classes[ci] = rows
	}
	for r, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("eqclass: row %d is not covered by any group", r)
		}
	}
	return p, nil
}

// N returns the number of rows partitioned.
func (p *Partition) N() int { return p.n }

// NumClasses returns the number of equivalence classes.
func (p *Partition) NumClasses() int { return len(p.Classes) }

// Size returns the size of the class containing row i.
func (p *Partition) Size(i int) int { return len(p.Classes[p.ClassOf[i]]) }

// MinSize returns the smallest class size — the k of k-anonymity. An empty
// partition has MinSize 0.
func (p *Partition) MinSize() int {
	if len(p.Classes) == 0 {
		return 0
	}
	min := len(p.Classes[0])
	for _, c := range p.Classes[1:] {
		if len(c) < min {
			min = len(c)
		}
	}
	return min
}

// MaxSize returns the largest class size.
func (p *Partition) MaxSize() int {
	max := 0
	for _, c := range p.Classes {
		if len(c) > max {
			max = len(c)
		}
	}
	return max
}

// Sizes returns the per-class sizes in class order.
func (p *Partition) Sizes() []int {
	out := make([]int, len(p.Classes))
	for i, c := range p.Classes {
		out[i] = len(c)
	}
	return out
}

// SizeVector returns the paper's equivalence-class-size property vector:
// element i is the size of the class containing tuple i. For T3a this is
// (3,3,3,3,4,4,4,3,3,4).
func (p *Partition) SizeVector() []float64 {
	out := make([]float64, p.n)
	for i := range out {
		out[i] = float64(p.Size(i))
	}
	return out
}

// ValueCounts tallies, per class, how many times each sensitive value (by
// Key) occurs among the class's rows of the given column.
func (p *Partition) ValueCounts(col []dataset.Value) ([]map[string]int, error) {
	if len(col) != p.n {
		return nil, fmt.Errorf("eqclass: column has %d values for %d rows", len(col), p.n)
	}
	out := make([]map[string]int, len(p.Classes))
	for ci, rows := range p.Classes {
		m := make(map[string]int, len(rows))
		for _, r := range rows {
			m[col[r].Key()]++
		}
		out[ci] = m
	}
	return out, nil
}

// SensitiveCountVector returns the paper's §3 ℓ-diversity property vector:
// element i is the number of times tuple i's sensitive value appears in
// tuple i's equivalence class. For T3a with Marital Status sensitive this
// is (2,2,1,2,2,1,2,1,2,1).
func (p *Partition) SensitiveCountVector(col []dataset.Value) ([]float64, error) {
	counts, err := p.ValueCounts(col)
	if err != nil {
		return nil, err
	}
	out := make([]float64, p.n)
	for i := range out {
		out[i] = float64(counts[p.ClassOf[i]][col[i].Key()])
	}
	return out, nil
}
