// Cross-validation of the vectorized grouping path against the pinned
// signature-string reference: FromColumns/FromCodes must produce partitions
// element-identical (same classes, same canonical ordering) to signing
// every row with WriteSignature and grouping via FromSignatures, across the
// census suite, the paper's tables and randomized value mixes.
package eqclass_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"microdata/internal/dataset"
	"microdata/internal/eqclass"
	"microdata/internal/generator"
	"microdata/internal/hierarchy"
	"microdata/internal/paperdata"
)

// referencePartition groups via the pinned signature-string path.
func referencePartition(t *testing.T, tab *dataset.Table, cols []int) *eqclass.Partition {
	t.Helper()
	sigs := make([]string, tab.Len())
	var sb strings.Builder
	for i, row := range tab.Rows {
		sb.Reset()
		eqclass.WriteSignature(&sb, row, cols)
		sigs[i] = sb.String()
	}
	p, err := eqclass.FromSignatures(sigs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// samePartition asserts element-identity: equal ClassOf and equal Classes
// in the same canonical order with the same row order inside each class.
func samePartition(t *testing.T, label string, got, want *eqclass.Partition) {
	t.Helper()
	if got.N() != want.N() || got.NumClasses() != want.NumClasses() {
		t.Fatalf("%s: N=%d/%d classes=%d/%d", label, got.N(), want.N(), got.NumClasses(), want.NumClasses())
	}
	for i := range want.ClassOf {
		if got.ClassOf[i] != want.ClassOf[i] {
			t.Fatalf("%s: ClassOf[%d] = %d, want %d", label, i, got.ClassOf[i], want.ClassOf[i])
		}
	}
	for ci := range want.Classes {
		if len(got.Classes[ci]) != len(want.Classes[ci]) {
			t.Fatalf("%s: class %d size %d, want %d", label, ci, len(got.Classes[ci]), len(want.Classes[ci]))
		}
		for k := range want.Classes[ci] {
			if got.Classes[ci][k] != want.Classes[ci][k] {
				t.Fatalf("%s: class %d row %d = %d, want %d", label, ci, k, got.Classes[ci][k], want.Classes[ci][k])
			}
		}
	}
}

func crossValidate(t *testing.T, label string, tab *dataset.Table, cols []int) {
	t.Helper()
	got, err := eqclass.FromColumns(tab, cols)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	samePartition(t, label, got, referencePartition(t, tab, cols))
}

func TestFromColumnsMatchesSignaturesPaperTables(t *testing.T) {
	for _, c := range []struct {
		name string
		tab  *dataset.Table
	}{
		{"T1", paperdata.T1()},
		{"T3a", paperdata.T3a()},
		{"T3b", paperdata.T3b()},
		{"T4", paperdata.T4()},
	} {
		qi := c.tab.Schema.QuasiIdentifiers()
		crossValidate(t, c.name, c.tab, qi)
		// All columns, including the sensitive one.
		all := make([]int, c.tab.Schema.Len())
		for j := range all {
			all[j] = j
		}
		crossValidate(t, c.name+"/all-cols", c.tab, all)
	}
}

func TestFromColumnsMatchesSignaturesCensusSweep(t *testing.T) {
	tab, err := generator.Generate(generator.Config{N: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	hs := generator.Hierarchies()
	qi := tab.Schema.QuasiIdentifiers()
	for _, node := range [][]int{
		{0, 0, 0, 0},
		{1, 1, 0, 0},
		{2, 3, 1, 1},
		{3, 4, 2, 1},
		{5, 5, 2, 2}, // full suppression
	} {
		anon, err := hierarchy.GeneralizeTable(tab, hs, node)
		if err != nil {
			t.Fatal(err)
		}
		crossValidate(t, fmt.Sprintf("node %v", node), anon, qi)
		// Tuple suppression on top of generalization, as the algorithms
		// produce: suppress every row of the smallest classes.
		p, err := eqclass.FromColumns(anon, qi)
		if err != nil {
			t.Fatal(err)
		}
		var bad []int
		for _, rows := range p.Classes {
			if len(rows) < 5 {
				bad = append(bad, rows...)
			}
		}
		hierarchy.SuppressRows(anon, bad)
		crossValidate(t, fmt.Sprintf("node %v suppressed", node), anon, qi)
	}
}

// TestFromColumnsMatchesSignaturesRandomized exercises every value kind —
// Num (incl. ±0 and extreme magnitudes), Str, Interval, Prefix, Set, Star
// and Missing — in random mixtures.
func TestFromColumnsMatchesSignaturesRandomized(t *testing.T) {
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "A", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "B", Kind: dataset.Numeric, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "C", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
	)
	pool := []dataset.Value{
		dataset.NumVal(0), dataset.NumVal(-0.0), dataset.NumVal(1), dataset.NumVal(-1),
		dataset.NumVal(1e300), dataset.NumVal(28),
		dataset.StrVal("x"), dataset.StrVal("y"), dataset.StrVal(""),
		dataset.IntervalVal(25, 35), dataset.IntervalVal(25, 45), dataset.IntervalVal(0, 0),
		dataset.PrefixVal("1305", 1), dataset.PrefixVal("1305", 2),
		dataset.SetVal("Married"), dataset.SetVal("x"),
		dataset.StarVal(), {},
	}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 1 + rng.Intn(400)
		tab := dataset.NewTable(schema)
		for i := 0; i < n; i++ {
			tab.MustAppend(
				pool[rng.Intn(len(pool))],
				pool[rng.Intn(len(pool))],
				pool[rng.Intn(len(pool))],
			)
		}
		crossValidate(t, fmt.Sprintf("trial %d", trial), tab, []int{0, 1, 2})
	}
}

// TestFromCodesHashPath forces the combine pass over the radixMax threshold
// so the map-based refinement runs, and pins it to the reference.
func TestFromCodesHashPath(t *testing.T) {
	const n, card = 5000, 5000
	rng := rand.New(rand.NewSource(42))
	cols := [][]uint32{make([]uint32, n), make([]uint32, n)}
	for i := 0; i < n; i++ {
		cols[0][i] = uint32(rng.Intn(card))
		cols[1][i] = uint32(rng.Intn(card))
	}
	got, err := eqclass.FromCodes(cols, []int{card, card}) // card² ≫ radix budget
	if err != nil {
		t.Fatal(err)
	}
	sigs := make([]string, n)
	for i := 0; i < n; i++ {
		sigs[i] = fmt.Sprintf("%d\x1f%d\x1f", cols[0][i], cols[1][i])
	}
	want, err := eqclass.FromSignatures(sigs)
	if err != nil {
		t.Fatal(err)
	}
	samePartition(t, "hash path", got, want)

	// Unknown cardinalities (cards=0) must scan for the max and agree.
	got0, err := eqclass.FromCodes(cols, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	samePartition(t, "cards=0", got0, want)
}

func TestFromCodesErrors(t *testing.T) {
	if _, err := eqclass.FromCodes(nil, nil); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := eqclass.FromCodes([][]uint32{{0}, {0, 1}}, []int{1, 2}); err == nil {
		t.Error("ragged vectors should fail")
	}
	if _, err := eqclass.FromCodes([][]uint32{{}}, []int{1}); err == nil {
		t.Error("zero rows should fail")
	}
	if _, err := eqclass.FromCodes([][]uint32{{5}}, []int{2}); err == nil {
		t.Error("code exceeding cardinality should fail")
	}
}

func TestValueCountsColumnMatchesValueCounts(t *testing.T) {
	tab, err := generator.Generate(generator.Config{N: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := eqclass.FromTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	si := tab.Schema.SensitiveIndex()
	want, err := p.ValueCounts(tab.Column(si))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.ValueCountsColumn(tab.ColumnVector(si))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d classes != %d", len(got), len(want))
	}
	for ci := range want {
		if len(got[ci]) != len(want[ci]) {
			t.Fatalf("class %d: %v != %v", ci, got[ci], want[ci])
		}
		for k, c := range want[ci] {
			if got[ci][k] != c {
				t.Fatalf("class %d key %q: %d != %d", ci, k, got[ci][k], c)
			}
		}
	}
}

// benchTable returns a generalized census table of n rows with a warmed
// columnar backing, the shape the engine and measure paths group over.
func benchTable(b *testing.B, n int) *dataset.Table {
	b.Helper()
	tab, err := generator.Generate(generator.Config{N: n, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	anon, err := hierarchy.GeneralizeTable(tab, generator.Hierarchies(), []int{1, 2, 1, 1})
	if err != nil {
		b.Fatal(err)
	}
	anon.Columnar()
	return anon
}

func BenchmarkGroupBySignatures(b *testing.B) {
	tab := benchTable(b, 10000)
	qi := tab.Schema.QuasiIdentifiers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sigs := make([]string, tab.Len())
		var sb strings.Builder
		for r, row := range tab.Rows {
			sb.Reset()
			eqclass.WriteSignature(&sb, row, qi)
			sigs[r] = sb.String()
		}
		if _, err := eqclass.FromSignatures(sigs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupByCodes(b *testing.B) {
	tab := benchTable(b, 10000)
	qi := tab.Schema.QuasiIdentifiers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eqclass.FromColumns(tab, qi); err != nil {
			b.Fatal(err)
		}
	}
}
