// Cross-validation of the morsel-driven parallel group-by against the
// sequential reference. These tests live in-package so they can shrink
// morselRows and force multi-shard execution on small inputs.
package eqclass

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"microdata/internal/dataset"
)

// withMorselRows shrinks the shard granularity for the duration of a test.
func withMorselRows(t *testing.T, rows int) {
	t.Helper()
	old := morselRows
	morselRows = rows
	t.Cleanup(func() { morselRows = old })
}

// identical asserts element-identity of two partitions: same ClassOf, same
// class order, same ascending row order inside each class.
func identical(t *testing.T, label string, got, want *Partition) {
	t.Helper()
	if got.N() != want.N() || got.NumClasses() != want.NumClasses() {
		t.Fatalf("%s: N=%d/%d classes=%d/%d", label, got.N(), want.N(), got.NumClasses(), want.NumClasses())
	}
	for i := range want.ClassOf {
		if got.ClassOf[i] != want.ClassOf[i] {
			t.Fatalf("%s: ClassOf[%d] = %d, want %d", label, i, got.ClassOf[i], want.ClassOf[i])
		}
	}
	for ci := range want.Classes {
		if len(got.Classes[ci]) != len(want.Classes[ci]) {
			t.Fatalf("%s: class %d size %d, want %d", label, ci, len(got.Classes[ci]), len(want.Classes[ci]))
		}
		for k := range want.Classes[ci] {
			if got.Classes[ci][k] != want.Classes[ci][k] {
				t.Fatalf("%s: class %d entry %d = %d, want %d", label, ci, k, got.Classes[ci][k], want.Classes[ci][k])
			}
		}
	}
}

// randomCodes builds nCols random code vectors of n rows with the given
// cardinality.
func randomCodes(rng *rand.Rand, n, nCols, card int) ([][]uint32, []int) {
	cols := make([][]uint32, nCols)
	cards := make([]int, nCols)
	for c := range cols {
		cols[c] = make([]uint32, n)
		cards[c] = card
		for i := range cols[c] {
			cols[c][i] = uint32(rng.Intn(card))
		}
	}
	return cols, cards
}

func TestParallelMatchesSequentialRandomized(t *testing.T) {
	withMorselRows(t, 64)
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 1 + rng.Intn(2000)
		card := 2 + rng.Intn(12) // low cardinality keeps the radix path hot
		cols, cards := randomCodes(rng, n, 1+rng.Intn(4), card)
		want, err := FromCodesSequential(cols, cards)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 8} {
			got, err := FromCodesParallel(cols, cards, w)
			if err != nil {
				t.Fatal(err)
			}
			identical(t, fmt.Sprintf("trial %d workers %d", trial, w), got, want)
		}
	}
}

// TestParallelHashPath forces both the per-shard combine and the merge over
// the map-based (non-radix) path with high-cardinality columns.
func TestParallelHashPath(t *testing.T) {
	withMorselRows(t, 128)
	const n, card = 4000, 4000
	rng := rand.New(rand.NewSource(99))
	cols, cards := randomCodes(rng, n, 2, card) // card² ≫ radix budget
	want, err := FromCodesSequential(cols, cards)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromCodesParallel(cols, cards, 7)
	if err != nil {
		t.Fatal(err)
	}
	identical(t, "hash path", got, want)
}

// TestParallelMorselBoundaries sweeps n across exact morsel multiples and
// off-by-one neighbours, where shard-range arithmetic is most fragile.
func TestParallelMorselBoundaries(t *testing.T) {
	withMorselRows(t, 32)
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 31, 32, 33, 63, 64, 65, 96, 127, 128, 129, 1024, 1025} {
		cols, cards := randomCodes(rng, n, 2, 3)
		want, err := FromCodesSequential(cols, cards)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 4, 100} {
			got, err := FromCodesParallel(cols, cards, w)
			if err != nil {
				t.Fatal(err)
			}
			identical(t, fmt.Sprintf("n=%d workers=%d", n, w), got, want)
		}
	}
}

func TestParallelErrors(t *testing.T) {
	withMorselRows(t, 16)
	if _, err := FromCodesParallel(nil, nil, 4); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := FromCodesParallel([][]uint32{{}}, []int{1}, 4); err == nil {
		t.Error("zero rows should fail")
	}
	// An out-of-range code in a late shard must surface as an error, not a
	// panic or partial result.
	codes := make([]uint32, 100)
	codes[97] = 9
	if _, err := FromCodesParallel([][]uint32{codes}, []int{3}, 4); err == nil {
		t.Error("code exceeding cardinality in a late shard should fail")
	}
}

// TestGroupShardRangeInvariants checks coverage, alignment and monotonicity
// of the shard ranges for many (n, shards) combinations.
func TestGroupShardRangeInvariants(t *testing.T) {
	withMorselRows(t, 16)
	for _, n := range []int{1, 15, 16, 17, 47, 48, 49, 160, 161, 1000} {
		for workers := 1; workers <= 12; workers++ {
			nShards := groupShards(n, workers)
			if nShards < 1 || nShards > workers {
				t.Fatalf("groupShards(%d, %d) = %d", n, workers, nShards)
			}
			prev := 0
			for s := 0; s < nShards; s++ {
				lo, hi := groupShardRange(n, nShards, s)
				if lo != prev || hi < lo {
					t.Fatalf("n=%d shards=%d shard %d: [%d,%d) after %d", n, nShards, s, lo, hi, prev)
				}
				if s > 0 && lo%morselRows != 0 {
					t.Fatalf("n=%d shards=%d shard %d: start %d not aligned", n, nShards, s, lo)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d shards=%d: covered %d rows", n, nShards, prev)
			}
		}
	}
}

// TestPooledScratchConcurrent hammers the pooled radix LUT and histogram
// scratch from many goroutines; run with -race it proves the pools hand out
// disjoint buffers.
func TestPooledScratchConcurrent(t *testing.T) {
	withMorselRows(t, 64)
	rng := rand.New(rand.NewSource(11))
	cols, cards := randomCodes(rng, 3000, 3, 5)
	want, err := FromCodesSequential(cols, cards)
	if err != nil {
		t.Fatal(err)
	}

	sens := dataset.NewColumn()
	vals := []dataset.Value{dataset.StrVal("a"), dataset.StrVal("b"), dataset.StrVal("c")}
	for i := 0; i < 3000; i++ {
		sens.Append(vals[i%len(vals)])
	}
	wantCounts, err := want.ValueCountsColumn(sens)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				got, err := FromCodesParallel(cols, cards, 4)
				if err != nil {
					t.Error(err)
					return
				}
				if got.NumClasses() != want.NumClasses() {
					t.Errorf("classes %d != %d", got.NumClasses(), want.NumClasses())
					return
				}
				counts, err := got.ValueCountsColumn(sens)
				if err != nil {
					t.Error(err)
					return
				}
				if len(counts) != len(wantCounts) {
					t.Errorf("counts %d != %d", len(counts), len(wantCounts))
					return
				}
			}
		}()
	}
	wg.Wait()
}
