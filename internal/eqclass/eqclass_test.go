package eqclass

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"microdata/internal/dataset"
)

func schema3(t *testing.T) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.Attribute{Name: "ZipCode", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "Age", Kind: dataset.Numeric, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "MaritalStatus", Kind: dataset.Categorical, Role: dataset.Sensitive},
	)
}

// t3a builds the generalized quasi-identifiers of the paper's T3a together
// with the ground sensitive column, in T1's original row order (1..10).
func t3a(t *testing.T) *dataset.Table {
	t.Helper()
	tab := dataset.NewTable(schema3(t))
	add := func(zipPrefix string, lo, hi float64, marital string) {
		tab.MustAppend(dataset.PrefixVal(zipPrefix, 1), dataset.IntervalVal(lo, hi), dataset.StrVal(marital))
	}
	add("1305", 25, 35, "CF-Spouse")      // 1
	add("1326", 35, 45, "Separated")      // 2
	add("1326", 35, 45, "Never Married")  // 3
	add("1305", 25, 35, "CF-Spouse")      // 4
	add("1325", 45, 55, "Divorced")       // 5
	add("1325", 45, 55, "Spouse Absent")  // 6
	add("1325", 45, 55, "Divorced")       // 7
	add("1305", 25, 35, "Spouse Present") // 8
	add("1326", 35, 45, "Separated")      // 9
	add("1325", 45, 55, "Separated")      // 10
	return tab
}

func TestFromTablePaperT3a(t *testing.T) {
	p, err := FromTable(t3a(t))
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 10 || p.NumClasses() != 3 {
		t.Fatalf("N=%d classes=%d", p.N(), p.NumClasses())
	}
	if p.MinSize() != 3 {
		t.Errorf("MinSize = %d, want 3 (T3a is 3-anonymous)", p.MinSize())
	}
	if p.MaxSize() != 4 {
		t.Errorf("MaxSize = %d, want 4", p.MaxSize())
	}
	want := []float64{3, 3, 3, 3, 4, 4, 4, 3, 3, 4}
	got := p.SizeVector()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SizeVector = %v, want %v (paper §3)", got, want)
		}
	}
}

func TestSensitiveCountVectorPaperT3a(t *testing.T) {
	tab := t3a(t)
	p, err := FromTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	col, err := tab.ColumnByName("MaritalStatus")
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.SensitiveCountVector(col)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 2, 1, 2, 2, 1, 2, 1, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SensitiveCountVector = %v, want %v (paper §3)", got, want)
		}
	}
}

func TestFromTableErrors(t *testing.T) {
	noQI := dataset.MustSchema(dataset.Attribute{Name: "A", Role: dataset.Sensitive})
	tab := dataset.NewTable(noQI)
	if _, err := FromTable(tab); err == nil {
		t.Error("no quasi-identifiers should fail")
	}
	tab2 := dataset.NewTable(schema3(t))
	if _, err := FromColumns(tab2, []int{7}); err == nil {
		t.Error("out-of-range column should fail")
	}
	if _, err := FromColumns(tab2, nil); err == nil {
		t.Error("empty column list should fail")
	}
}

func TestEmptyTablePartition(t *testing.T) {
	p, err := FromTable(dataset.NewTable(schema3(t)))
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 0 || p.NumClasses() != 0 || p.MinSize() != 0 || p.MaxSize() != 0 {
		t.Errorf("empty partition: %+v", p)
	}
	if len(p.SizeVector()) != 0 {
		t.Error("empty partition should have empty size vector")
	}
}

func TestFromGroups(t *testing.T) {
	p, err := FromGroups(5, [][]int{{4, 0}, {1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumClasses() != 2 || p.Size(0) != 2 || p.Size(1) != 3 {
		t.Fatalf("bad partition: %+v", p)
	}
	if p.Classes[0][0] != 0 || p.Classes[0][1] != 4 {
		t.Errorf("group rows should be sorted: %v", p.Classes[0])
	}
	cases := [][][]int{
		{{0, 1}, {1, 2}},   // overlap
		{{0}, {2}},         // gap (row 1 uncovered, and out of n=3 below)
		{{0, 1}, {}},       // empty group
		{{0, 5}},           // out of range
		{{-1, 0, 1, 2}},    // negative
		{{0, 1}, {2}, {2}}, // duplicate across groups
	}
	ns := []int{3, 3, 2, 2, 3, 3}
	for i, g := range cases {
		if _, err := FromGroups(ns[i], g); err == nil {
			t.Errorf("case %d should fail: %v", i, g)
		}
	}
}

func TestValueCountsErrors(t *testing.T) {
	p, err := FromGroups(3, [][]int{{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ValueCounts([]dataset.Value{dataset.StrVal("x")}); err == nil {
		t.Error("wrong column length should fail")
	}
	if _, err := p.SensitiveCountVector(nil); err == nil {
		t.Error("nil column should fail")
	}
}

func TestPartitionInvariantsQuick(t *testing.T) {
	// Random tables: classes cover all rows exactly once, sizes sum to N,
	// size vector entries match class sizes, all tuples in one class share
	// their QI signature.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 1
		rng := rand.New(rand.NewSource(seed))
		tab := dataset.NewTable(dataset.MustSchema(
			dataset.Attribute{Name: "A", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
			dataset.Attribute{Name: "B", Kind: dataset.Numeric, Role: dataset.QuasiIdentifier},
		))
		letters := []string{"x", "y", "z"}
		for i := 0; i < n; i++ {
			tab.MustAppend(
				dataset.StrVal(letters[rng.Intn(len(letters))]),
				dataset.NumVal(float64(rng.Intn(3))),
			)
		}
		p, err := FromTable(tab)
		if err != nil {
			return false
		}
		covered := make([]bool, n)
		total := 0
		for ci, rows := range p.Classes {
			total += len(rows)
			for _, r := range rows {
				if covered[r] || p.ClassOf[r] != ci {
					return false
				}
				covered[r] = true
				if p.Size(r) != len(rows) {
					return false
				}
				// Same signature within a class.
				if !tab.At(r, 0).Equal(tab.At(rows[0], 0)) || !tab.At(r, 1).Equal(tab.At(rows[0], 1)) {
					return false
				}
			}
		}
		if total != n {
			return false
		}
		sv := p.SizeVector()
		for i := range sv {
			if int(sv[i]) != p.Size(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSensitiveCountsSumToClassSizeQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%30 + 1
		rng := rand.New(rand.NewSource(seed))
		groups := [][]int{}
		perm := rng.Perm(n)
		for i := 0; i < n; {
			sz := rng.Intn(4) + 1
			if i+sz > n {
				sz = n - i
			}
			groups = append(groups, perm[i:i+sz])
			i += sz
		}
		p, err := FromGroups(n, groups)
		if err != nil {
			return false
		}
		col := make([]dataset.Value, n)
		for i := range col {
			col[i] = dataset.StrVal([]string{"a", "b"}[rng.Intn(2)])
		}
		counts, err := p.ValueCounts(col)
		if err != nil {
			return false
		}
		for ci, rows := range p.Classes {
			sum := 0
			for _, c := range counts[ci] {
				sum += c
			}
			if sum != len(rows) {
				return false
			}
		}
		vec, err := p.SensitiveCountVector(col)
		if err != nil {
			return false
		}
		for i := range vec {
			if vec[i] < 1 || vec[i] > float64(p.Size(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSignatureHelpers(t *testing.T) {
	row := []dataset.Value{dataset.StrVal("13053"), dataset.NumVal(28), dataset.StarVal()}
	var sb strings.Builder
	WriteSignature(&sb, row, []int{0, 1, 2})
	want := "s:13053\x1fn:28\x1f*\x1f"
	if sb.String() != want {
		t.Fatalf("WriteSignature = %q, want %q", sb.String(), want)
	}
	if got := KeySignature(row); got != want {
		t.Fatalf("KeySignature = %q, want %q", got, want)
	}
	// Column subsetting and builder reuse.
	sb.Reset()
	WriteSignature(&sb, row, []int{1})
	if sb.String() != "n:28\x1f" {
		t.Fatalf("subset signature = %q", sb.String())
	}
	// FromColumns groups by exactly this signature: rows with equal
	// KeySignature land in one class.
	tab := dataset.NewTable(dataset.MustSchema(
		dataset.Attribute{Name: "A", Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "B", Kind: dataset.Numeric, Role: dataset.QuasiIdentifier},
	))
	tab.MustAppend(dataset.StrVal("x"), dataset.NumVal(1))
	tab.MustAppend(dataset.StrVal("x"), dataset.NumVal(1))
	tab.MustAppend(dataset.StrVal("y"), dataset.NumVal(1))
	p, err := FromColumns(tab, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumClasses() != 2 || p.ClassOf[0] != p.ClassOf[1] || p.ClassOf[0] == p.ClassOf[2] {
		t.Fatalf("partition = %+v", p)
	}
	if KeySignature(tab.Rows[0]) != KeySignature(tab.Rows[1]) {
		t.Error("equal rows must share a signature")
	}
	if KeySignature(tab.Rows[0]) == KeySignature(tab.Rows[2]) {
		t.Error("distinct rows must not share a signature")
	}
}
