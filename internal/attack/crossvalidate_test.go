package attack

import (
	"testing"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/datafly"
	"microdata/internal/algorithm/mondrian"
	"microdata/internal/algorithm/optimal"
	"microdata/internal/generator"
	"microdata/internal/privacy"
)

// For GLOBAL recodings the empirical linkage risk must equal the analytic
// re-identification vector 1/|class|: every victim matches exactly their
// own equivalence class (full-domain recoding maps distinct signatures to
// distinct regions... unless two generalized regions coincide, in which
// case the match set merges classes and risk can only DROP). For LOCAL
// recodings (Mondrian) regions may overlap in value space, so the match
// set is a superset of the class — risk <= 1/|class| always.
func TestLinkageRiskVsReidentificationVector(t *testing.T) {
	tab, err := generator.Generate(generator.Config{N: 400, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	cfg := algorithm.Config{
		K: 5, Hierarchies: generator.Hierarchies(),
		MaxSuppression: 0.05, Taxonomies: generator.Taxonomies(),
	}
	for _, alg := range []algorithm.Algorithm{datafly.New(), optimal.New(), mondrian.New()} {
		r, err := alg.Anonymize(tab, cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		adv, err := NewAdversary(r.Table, generator.Taxonomies())
		if err != nil {
			t.Fatal(err)
		}
		linkage, err := ProsecutorVector(tab, adv)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		analytic := privacy.ReidentificationVector(r.Partition)
		for i := range linkage {
			if linkage[i] > analytic[i]+1e-12 {
				t.Fatalf("%s: tuple %d linkage risk %v exceeds analytic 1/|class| %v",
					alg.Name(), i, linkage[i], analytic[i])
			}
		}
		// The gap between linkage and analytic risk is explained by rows
		// outside the victim's class whose regions also cover the victim
		// (fully suppressed rows match everyone; numeric boundaries
		// coincide). Verify the explanation exactly on a sample: the
		// match set must contain the victim's whole class, and every
		// extra member's region must cover the victim.
		qi := tab.Schema.QuasiIdentifiers()
		for i := 0; i < 40; i++ {
			victim := victimOf(tab, qi, i)
			matches, err := adv.MatchSet(victim)
			if err != nil {
				t.Fatal(err)
			}
			inMatch := map[int]bool{}
			for _, m := range matches {
				inMatch[m] = true
			}
			for _, classmate := range r.Partition.Classes[r.Partition.ClassOf[i]] {
				if !inMatch[classmate] {
					t.Fatalf("%s: victim %d's classmate %d missing from match set", alg.Name(), i, classmate)
				}
			}
			for _, m := range matches {
				for vi, j := range qi {
					if !adv.covers(r.Table.At(m, j), victim[vi], tab.Schema.Attrs[j]) {
						t.Fatalf("%s: match %d does not actually cover victim %d", alg.Name(), m, i)
					}
				}
			}
		}
	}
}
