package attack

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/datafly"
	"microdata/internal/algorithm/mondrian"
	"microdata/internal/algorithm/optimal"
	"microdata/internal/dataset"
	"microdata/internal/generator"
	"microdata/internal/hierarchy"
	"microdata/internal/privacy"
)

// For GLOBAL recodings the empirical linkage risk must equal the analytic
// re-identification vector 1/|class|: every victim matches exactly their
// own equivalence class (full-domain recoding maps distinct signatures to
// distinct regions... unless two generalized regions coincide, in which
// case the match set merges classes and risk can only DROP). For LOCAL
// recodings (Mondrian) regions may overlap in value space, so the match
// set is a superset of the class — risk <= 1/|class| always.
func TestLinkageRiskVsReidentificationVector(t *testing.T) {
	tab, err := generator.Generate(generator.Config{N: 400, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	cfg := algorithm.Config{
		K: 5, Hierarchies: generator.Hierarchies(),
		MaxSuppression: 0.05, Taxonomies: generator.Taxonomies(),
	}
	for _, alg := range []algorithm.Algorithm{datafly.New(), optimal.New(), mondrian.New()} {
		r, err := alg.Anonymize(tab, cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		adv, err := NewAdversary(r.Table, generator.Taxonomies())
		if err != nil {
			t.Fatal(err)
		}
		linkage, err := ProsecutorVector(tab, adv)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		analytic := privacy.ReidentificationVector(r.Partition)
		for i := range linkage {
			if linkage[i] > analytic[i]+1e-12 {
				t.Fatalf("%s: tuple %d linkage risk %v exceeds analytic 1/|class| %v",
					alg.Name(), i, linkage[i], analytic[i])
			}
		}
		// The gap between linkage and analytic risk is explained by rows
		// outside the victim's class whose regions also cover the victim
		// (fully suppressed rows match everyone; numeric boundaries
		// coincide). Verify the explanation exactly on a sample: the
		// match set must contain the victim's whole class, and every
		// extra member's region must cover the victim.
		qi := tab.Schema.QuasiIdentifiers()
		for i := 0; i < 40; i++ {
			victim := victimOf(tab, qi, i)
			matches, err := adv.MatchSet(victim)
			if err != nil {
				t.Fatal(err)
			}
			inMatch := map[int]bool{}
			for _, m := range matches {
				inMatch[m] = true
			}
			for _, classmate := range r.Partition.Classes[r.Partition.ClassOf[i]] {
				if !inMatch[classmate] {
					t.Fatalf("%s: victim %d's classmate %d missing from match set", alg.Name(), i, classmate)
				}
			}
			for _, m := range matches {
				for vi, j := range qi {
					if !adv.covers(r.Table.At(m, j), victim[vi], tab.Schema.Attrs[j]) {
						t.Fatalf("%s: match %d does not actually cover victim %d", alg.Name(), m, i)
					}
				}
			}
		}
	}
}

// equalVectors asserts byte-identical floats — the indexed pipeline must
// reproduce the naive one exactly, not approximately.
func equalVectors(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d elements, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %v, naive says %v", name, i, got[i], want[i])
		}
	}
}

// TestIndexedMatchesNaiveOnCensusSuite pins the indexed prosecutor and
// journalist vectors to the naive references on real anonymizations of the
// census generator — global and local recodings alike.
func TestIndexedMatchesNaiveOnCensusSuite(t *testing.T) {
	sample, err := generator.Generate(generator.Config{N: 250, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	population := sample.Clone()
	extra, err := generator.Generate(generator.Config{N: 250, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	population.Rows = append(population.Rows, extra.Rows...)
	cfg := algorithm.Config{
		K: 5, Hierarchies: generator.Hierarchies(),
		MaxSuppression: 0.05, Taxonomies: generator.Taxonomies(),
	}
	for _, alg := range []algorithm.Algorithm{datafly.New(), optimal.New(), mondrian.New()} {
		r, err := alg.Anonymize(sample, cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		adv, err := NewAdversary(r.Table, generator.Taxonomies())
		if err != nil {
			t.Fatal(err)
		}
		pros, err := ProsecutorVector(sample, adv)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		naivePros, err := NaiveProsecutorVector(sample, adv)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		equalVectors(t, alg.Name()+" prosecutor", pros, naivePros)
		jour, err := JournalistVector(sample, population, adv)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		naiveJour, err := NaiveJournalistVector(sample, population, adv)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		equalVectors(t, alg.Name()+" journalist", jour, naiveJour)
		m, err := MarketerRisk(sample, adv)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for _, p := range naivePros {
			want += p
		}
		want /= float64(len(naivePros))
		if m != want {
			t.Fatalf("%s: marketer risk %v, naive mean %v", alg.Name(), m, want)
		}
		s := adv.Stats()
		if s.Regions == 0 || s.RegionsProbed == 0 || s.CacheMisses == 0 {
			t.Fatalf("%s: stats not populated: %+v", alg.Name(), s)
		}
	}
}

// TestRandomizedIndexedVsNaive quick-checks the index against the naive
// matcher on synthetic anonymized tables mixing every generalized cell
// kind, with victims biased to interval endpoints, region prefixes, ±0 and
// out-of-taxonomy labels — the places a lookup structure can silently
// diverge from the covers predicate.
func TestRandomizedIndexedVsNaive(t *testing.T) {
	tax := hierarchy.MustTaxonomy("Marital", hierarchy.N("Any",
		hierarchy.N("Married", hierarchy.N("MarriedCiv"), hierarchy.N("MarriedMil")),
		hierarchy.N("NotMarried", hierarchy.N("Single"), hierarchy.N("Widowed"), hierarchy.N("Divorced")),
	))
	taxs := map[string]*hierarchy.Taxonomy{"Marital": tax}
	schema := dataset.MustSchema(
		dataset.Attribute{Name: "Age", Kind: dataset.Numeric, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "Zip", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
		dataset.Attribute{Name: "Marital", Kind: dataset.Categorical, Role: dataset.QuasiIdentifier},
	)
	endpoints := []float64{0, 5, 10, 15, 20, 25, 30}
	zips := []string{"13053", "13068", "14850", "1305"}
	leaves := tax.Leaves()
	rng := rand.New(rand.NewSource(9))

	ageCell := func() dataset.Value {
		switch rng.Intn(3) {
		case 0:
			return dataset.NumVal(endpoints[rng.Intn(len(endpoints))] * sign(rng))
		case 1:
			i := rng.Intn(len(endpoints))
			j := i + rng.Intn(len(endpoints)-i)
			return dataset.IntervalVal(endpoints[i], endpoints[j])
		default:
			return dataset.StarVal()
		}
	}
	zipCell := func() dataset.Value {
		z := zips[rng.Intn(len(zips))]
		switch rng.Intn(3) {
		case 0:
			return dataset.StrVal(z)
		case 1:
			k := rng.Intn(len(z) + 1)
			return dataset.PrefixVal(z[:k], len(z)-k)
		default:
			return dataset.StarVal()
		}
	}
	maritalCell := func() dataset.Value {
		switch rng.Intn(3) {
		case 0:
			return dataset.StrVal(leaves[rng.Intn(len(leaves))])
		case 1:
			labels := []string{"Married", "NotMarried", "Any", "*"}
			return dataset.SetVal(labels[rng.Intn(len(labels))])
		default:
			return dataset.StarVal()
		}
	}
	ageGround := func() dataset.Value {
		e := endpoints[rng.Intn(len(endpoints))]
		switch rng.Intn(4) {
		case 0:
			return dataset.NumVal(e)
		case 1:
			return dataset.NumVal(e + 1)
		case 2:
			return dataset.NumVal(e - 1)
		default:
			return dataset.NumVal(math.Copysign(0, -1)) // -0 vs +0 cells
		}
	}
	zipGround := func() dataset.Value {
		if rng.Intn(4) == 0 {
			return dataset.StrVal("99999")
		}
		return dataset.StrVal(zips[rng.Intn(len(zips))])
	}
	maritalGround := func() dataset.Value {
		if rng.Intn(4) == 0 {
			return dataset.StrVal("Alien") // outside the taxonomy
		}
		return dataset.StrVal(leaves[rng.Intn(len(leaves))])
	}

	for trial := 0; trial < 30; trial++ {
		anon := dataset.NewTable(schema)
		regions := 2 + rng.Intn(10)
		for r := 0; r < regions; r++ {
			cells := []dataset.Value{ageCell(), zipCell(), maritalCell()}
			if r == 0 {
				// One fully suppressed region guarantees every victim a
				// nonempty match set, as the risk vectors require.
				cells = []dataset.Value{dataset.StarVal(), dataset.StarVal(), dataset.StarVal()}
			}
			for size := 1 + rng.Intn(3); size > 0; size-- {
				anon.MustAppend(cells...)
			}
		}
		orig := dataset.NewTable(schema)
		for i := 0; i < anon.Len(); i++ {
			orig.MustAppend(ageGround(), zipGround(), maritalGround())
		}
		population := orig.Clone()
		for i := 0; i < anon.Len(); i++ {
			population.MustAppend(ageGround(), zipGround(), maritalGround())
		}

		adv, err := NewAdversary(anon, taxs)
		if err != nil {
			t.Fatal(err)
		}
		qi := schema.QuasiIdentifiers()
		for i := 0; i < orig.Len(); i++ {
			victim := victimOf(orig, qi, i)
			indexed, err := adv.MatchSet(victim)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := adv.NaiveMatchSet(victim)
			if err != nil {
				t.Fatal(err)
			}
			if len(indexed) != len(naive) {
				t.Fatalf("trial %d victim %v: indexed matches %v, naive %v", trial, victim, indexed, naive)
			}
			for j := range indexed {
				if indexed[j] != naive[j] {
					t.Fatalf("trial %d victim %v: indexed matches %v, naive %v", trial, victim, indexed, naive)
				}
			}
		}
		// Exotic victim kinds exercise the generic per-cell fallback.
		for _, victim := range [][]dataset.Value{
			{dataset.IntervalVal(5, 15), dataset.PrefixVal("130", 2), dataset.SetVal("Married")},
			{dataset.StarVal(), dataset.StarVal(), dataset.StarVal()},
			{dataset.Value{}, dataset.StrVal("13053"), dataset.Value{}},
		} {
			indexed, err := adv.MatchSet(victim)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := adv.NaiveMatchSet(victim)
			if err != nil {
				t.Fatal(err)
			}
			if len(indexed) != len(naive) {
				t.Fatalf("trial %d exotic victim %v: indexed %v, naive %v", trial, victim, indexed, naive)
			}
			for j := range indexed {
				if indexed[j] != naive[j] {
					t.Fatalf("trial %d exotic victim %v: indexed %v, naive %v", trial, victim, indexed, naive)
				}
			}
		}
		pros, err := ProsecutorVector(orig, adv)
		if err != nil {
			t.Fatal(err)
		}
		naivePros, err := NaiveProsecutorVector(orig, adv)
		if err != nil {
			t.Fatal(err)
		}
		equalVectors(t, "randomized prosecutor", pros, naivePros)
		jour, err := JournalistVector(orig, population, adv)
		if err != nil {
			t.Fatal(err)
		}
		naiveJour, err := NaiveJournalistVector(orig, population, adv)
		if err != nil {
			t.Fatal(err)
		}
		equalVectors(t, "randomized journalist", jour, naiveJour)
	}
}

func sign(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}

// TestParallelVectorCancellation verifies the parallel fan-out honors
// context cancellation and that a cancelled run does not poison the
// adversary for later use.
func TestParallelVectorCancellation(t *testing.T) {
	tab, err := generator.Generate(generator.Config{N: 200, Seed: 83})
	if err != nil {
		t.Fatal(err)
	}
	cfg := algorithm.Config{
		K: 5, Hierarchies: generator.Hierarchies(),
		MaxSuppression: 0.05, Taxonomies: generator.Taxonomies(),
	}
	r, err := mondrian.New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := NewAdversary(r.Table, generator.Taxonomies())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ProsecutorVectorContext(ctx, tab, adv); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled prosecutor returned %v, want context.Canceled", err)
	}
	if _, err := JournalistVectorContext(ctx, tab, tab, adv); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled journalist returned %v, want context.Canceled", err)
	}
	if _, _, err := TargetedRiskContext(ctx, tab, adv, []int{0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled targeted risk returned %v, want context.Canceled", err)
	}
	// The adversary stays fully usable afterward.
	risk, err := ProsecutorVectorContext(context.Background(), tab, adv)
	if err != nil {
		t.Fatalf("post-cancel prosecutor failed: %v", err)
	}
	if len(risk) != tab.Len() {
		t.Fatalf("post-cancel vector has %d elements, want %d", len(risk), tab.Len())
	}
}

// TestProsecutorVectorCache verifies the per-table prosecutor cache:
// repeated calls return equal values in fresh slices, and the dependent
// measures resolve no new victim signatures.
func TestProsecutorVectorCache(t *testing.T) {
	tab, err := generator.Generate(generator.Config{N: 150, Seed: 89})
	if err != nil {
		t.Fatal(err)
	}
	cfg := algorithm.Config{
		K: 4, Hierarchies: generator.Hierarchies(),
		MaxSuppression: 0.05, Taxonomies: generator.Taxonomies(),
	}
	r, err := datafly.New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := NewAdversary(r.Table, generator.Taxonomies())
	if err != nil {
		t.Fatal(err)
	}
	first, err := ProsecutorVector(tab, adv)
	if err != nil {
		t.Fatal(err)
	}
	misses := adv.Stats().CacheMisses
	first[0] = 1e9 // callers own their copy; the cache must not see this
	second, err := ProsecutorVector(tab, adv)
	if err != nil {
		t.Fatal(err)
	}
	if second[0] == 1e9 {
		t.Fatal("cached prosecutor vector shares memory with a caller")
	}
	if _, _, err := TargetedRisk(tab, adv, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := SafetyVector(tab, adv); err != nil {
		t.Fatal(err)
	}
	if _, err := MarketerRisk(tab, adv); err != nil {
		t.Fatal(err)
	}
	if got := adv.Stats().CacheMisses; got != misses {
		t.Fatalf("dependent measures resolved %d new signatures, want 0", got-misses)
	}
}
