// Package attack simulates the re-identification attacks that motivate the
// paper's §2 discussion: "attacks on the anonymized data sets could be
// targeted towards a particular subset of the individuals represented in
// the data set. In such a situation, a user needs to be concerned about her
// own level of privacy, rather than that maintained collectively."
//
// The adversary holds the original quasi-identifier values of a victim
// (e.g. from a voter list) and matches them against the anonymized table.
// Three standard risk models are provided, each as a per-tuple property
// vector ready for the comparison framework:
//
//   - prosecutor risk: the victim is known to be IN the table; the
//     re-identification probability is 1/|matching class|;
//   - journalist risk: the victim may not be in the table; risk is bounded
//     by the prosecutor risk of the matching class (equal here because the
//     anonymized table is the adversary's only population information);
//   - marketer risk: the expected fraction of records an adversary
//     re-identifies when linking the WHOLE table — a scalar, the mean of
//     the prosecutor vector.
//
// Matching is semantic, not syntactic: a victim's ground values are
// compared against generalized cells with Value.Covers (plus taxonomy
// coverage for Set cells), so local recodings (Mondrian regions) and
// global recodings are attacked identically.
//
// Resolution is region-indexed: the anonymized rows are grouped into
// distinct quasi-identifier regions (equivalence classes) and matched
// per-attribute through hash, interval-stabbing and taxonomy lookups over
// region bitsets, so a victim costs O(regions) instead of O(rows·|QI|).
// Victim tuples are memoized by signature, the risk vectors fan out across
// GOMAXPROCS workers (cancellable via context), and the journalist model
// is inverted to one population sweep per distinct matched-region set. The
// Naive* functions keep the direct row-scanning reference implementations;
// the cross-validation tests pin both paths to identical vectors.
package attack

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"microdata/internal/core"
	"microdata/internal/dataset"
	"microdata/internal/eqclass"
	"microdata/internal/hierarchy"
	"microdata/internal/kernels"
	"microdata/internal/telemetry"
	"microdata/internal/telemetry/progress"
)

// Adversary matches ground quasi-identifier values against an anonymized
// table. The zero value is not usable; construct with NewAdversary. An
// Adversary is safe for concurrent use once configured (SetWorkers, if
// called at all, must happen before the first attack).
type Adversary struct {
	anon *dataset.Table
	qi   []int
	taxs map[string]*hierarchy.Taxonomy

	// workers caps the parallel fan-out; 0 means runtime.GOMAXPROCS(0).
	workers int

	indexOnce sync.Once
	index     *regionIndex
	indexErr  error
	ins       *instruments
	// memo caches victim signature -> *regionMatch across all risk models.
	memo sync.Map

	// prosMu guards the cached prosecutor vector, keyed by the identity of
	// the original table it was computed for. SafetyVector, MarketerRisk
	// and TargetedRisk all reuse it.
	prosMu   sync.Mutex
	prosOrig *dataset.Table
	prosVec  core.PropertyVector
}

// NewAdversary builds an adversary against the anonymized table. The
// taxonomies resolve Set-generalized categorical cells; attributes
// generalized only by intervals, prefixes or suppression need no entry.
func NewAdversary(anon *dataset.Table, taxonomies map[string]*hierarchy.Taxonomy) (*Adversary, error) {
	if anon == nil || anon.Len() == 0 {
		return nil, fmt.Errorf("attack: empty anonymized table")
	}
	qi := anon.Schema.QuasiIdentifiers()
	if len(qi) == 0 {
		return nil, fmt.Errorf("attack: no quasi-identifiers to link on")
	}
	return &Adversary{anon: anon, qi: qi, taxs: taxonomies}, nil
}

// SetWorkers caps the number of goroutines the risk vectors fan out over;
// n <= 0 restores the default (the module-wide kernels.DefaultWorkers,
// itself GOMAXPROCS unless the shared -workers setting overrides it). Call
// before the first attack — the setting is not synchronized.
func (a *Adversary) SetWorkers(n int) { a.workers = n }

func (a *Adversary) workerCount() int {
	if a.workers > 0 {
		return a.workers
	}
	return kernels.DefaultWorkers()
}

// covers reports whether the generalized cell g is consistent with the
// victim's ground value v for the given attribute. It is the reference
// predicate the region index replicates.
func (a *Adversary) covers(g, v dataset.Value, attr dataset.Attribute) bool {
	if g.Kind() == dataset.Set {
		tax := a.taxs[attr.Name]
		if tax == nil || v.Kind() != dataset.Str {
			return false
		}
		return tax.CoversValue(g.Text(), v.Text())
	}
	// Mondrian numeric hulls attain their low endpoint; accept boundary
	// matches that Covers' half-open convention would reject.
	if g.Kind() == dataset.Interval && v.Kind() == dataset.Num {
		lo, hi := g.Bounds()
		return v.Float() >= lo && v.Float() <= hi
	}
	return g.Covers(v) || g.Equal(v)
}

// ensureIndex builds the region index exactly once.
func (a *Adversary) ensureIndex(ctx context.Context) (*regionIndex, error) {
	a.indexOnce.Do(func() {
		_, span := telemetry.Start(ctx, "attack.index.build",
			telemetry.Int("rows", a.anon.Len()),
			telemetry.Int("qi", len(a.qi)))
		defer span.End()
		a.ins = newInstruments()
		t0 := time.Now()
		a.index, a.indexErr = buildRegionIndex(a.anon, a.qi, a.taxs)
		a.ins.indexBuildNS.Add(time.Since(t0).Nanoseconds())
		if a.indexErr == nil {
			a.ins.reg.Gauge(MetricIndexRegions).Set(float64(a.index.n))
			span.SetAttr(telemetry.Int("regions", a.index.n))
		}
	})
	return a.index, a.indexErr
}

// regionMatch is the memoized resolution of one victim tuple: the matched
// region set, its cardinality, and the total anonymized rows it spans.
type regionMatch struct {
	regs    bitset
	regions int
	rows    int
}

// matchRegions resolves a victim tuple to its matched-region set through
// the index, memoizing by signature.
func (a *Adversary) matchRegions(ctx context.Context, victim []dataset.Value) (*regionMatch, error) {
	if len(victim) != len(a.qi) {
		return nil, fmt.Errorf("attack: victim has %d quasi-identifier values, schema has %d", len(victim), len(a.qi))
	}
	ix, err := a.ensureIndex(ctx)
	if err != nil {
		return nil, err
	}
	sig := eqclass.KeySignature(victim)
	if m, ok := a.memo.Load(sig); ok {
		a.ins.cacheHits.Inc()
		return m.(*regionMatch), nil
	}
	a.ins.cacheMisses.Inc()
	regs := newBitset(ix.n)
	regs.setAll(ix.n)
	scratch := newBitset(ix.n)
	for vi := range ix.attrs {
		scratch.zero()
		a.matchAttrInto(&ix.attrs[vi], victim[vi], scratch)
		regs.and(scratch)
		if regs.empty() {
			break
		}
	}
	m := &regionMatch{regs: regs}
	regs.forEach(func(r int) {
		m.regions++
		m.rows += ix.sizes[r]
	})
	a.ins.regionsProbed.Add(int64(m.regions))
	a.ins.candidatesPruned.Add(int64(ix.n - m.regions))
	if prev, loaded := a.memo.LoadOrStore(sig, m); loaded {
		return prev.(*regionMatch), nil
	}
	return m, nil
}

// MatchSet returns the row indices of the anonymized table consistent with
// the victim's ground quasi-identifier values (aligned with the schema's
// QI order). Rows are ascending; no match returns nil.
func (a *Adversary) MatchSet(victim []dataset.Value) ([]int, error) {
	m, err := a.matchRegions(context.Background(), victim)
	if err != nil {
		return nil, err
	}
	if m.rows == 0 {
		return nil, nil
	}
	out := make([]int, 0, m.rows)
	m.regs.forEach(func(r int) {
		out = append(out, a.index.part.Classes[r]...)
	})
	sort.Ints(out)
	return out, nil
}

// NaiveMatchSet is the reference row-scanning matcher MatchSet is
// cross-validated against.
func (a *Adversary) NaiveMatchSet(victim []dataset.Value) ([]int, error) {
	if len(victim) != len(a.qi) {
		return nil, fmt.Errorf("attack: victim has %d quasi-identifier values, schema has %d", len(victim), len(a.qi))
	}
	var matches []int
rows:
	for i := range a.anon.Rows {
		for vi, j := range a.qi {
			if !a.covers(a.anon.At(i, j), victim[vi], a.anon.Schema.Attrs[j]) {
				continue rows
			}
		}
		matches = append(matches, i)
	}
	return matches, nil
}

// victimOf extracts row i's ground QI values from the original table.
func victimOf(orig *dataset.Table, qi []int, i int) []dataset.Value {
	v := make([]dataset.Value, len(qi))
	for vi, j := range qi {
		v[vi] = orig.At(i, j)
	}
	return v
}

// victimGroups groups the table's rows by ground QI tuple: groupOf[i]
// indexes the distinct victim tuple of row i in victims. Resolving each
// distinct tuple once keeps the parallel fan-out deterministic and feeds
// the signature memo. Grouping runs vectorized over the table's
// dictionary-code columns, so no per-row signature strings are built.
func victimGroups(t *dataset.Table, qi []int) (groupOf []int, victims [][]dataset.Value, err error) {
	if t.Len() == 0 {
		return []int{}, nil, nil
	}
	p, err := eqclass.FromColumns(t, qi)
	if err != nil {
		return nil, nil, err
	}
	victims = make([][]dataset.Value, len(p.Classes))
	for g, rows := range p.Classes {
		victims[g] = victimOf(t, qi, rows[0])
	}
	return p.ClassOf, victims, nil
}

// victimGroupsCounted is victimGroups keeping only multiplicities, for
// population tables whose rows never need individual resolution.
func victimGroupsCounted(t *dataset.Table, qi []int) (victims [][]dataset.Value, counts []int, err error) {
	if t.Len() == 0 {
		return nil, nil, nil
	}
	p, err := eqclass.FromColumns(t, qi)
	if err != nil {
		return nil, nil, err
	}
	victims = make([][]dataset.Value, len(p.Classes))
	counts = make([]int, len(p.Classes))
	for g, rows := range p.Classes {
		victims[g] = victimOf(t, qi, rows[0])
		counts[g] = len(rows)
	}
	return victims, counts, nil
}

// forEachParallel runs f over 0..n-1 sharded across the adversary's
// workers. Cancellation of ctx aborts promptly; the returned error then
// wraps ctx.Err() so errors.Is(err, context.Canceled) holds.
func (a *Adversary) forEachParallel(ctx context.Context, n int, f func(i int) error) error {
	workers := a.workerCount()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("attack: aborted: %w", err)
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	var stopped atomic.Bool
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stopped.Load() {
					return
				}
				if ctx.Err() != nil {
					stopped.Store(true)
					return
				}
				errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("attack: aborted: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ProsecutorVectorContext computes the per-tuple prosecutor risk: for
// every individual of the original table, 1 over the number of anonymized
// records consistent with their quasi-identifiers. A sound anonymization
// yields risk <= 1/k everywhere (its own record always matches, and so do
// its k-1 classmates). The vector is cached per original table, so
// SafetyVector, MarketerRisk and TargetedRisk reuse one computation.
func ProsecutorVectorContext(ctx context.Context, orig *dataset.Table, adv *Adversary) (core.PropertyVector, error) {
	if orig.Len() != adv.anon.Len() {
		return nil, fmt.Errorf("attack: original has %d rows, anonymized %d", orig.Len(), adv.anon.Len())
	}
	adv.prosMu.Lock()
	if adv.prosOrig == orig && adv.prosVec != nil {
		out := append(core.PropertyVector(nil), adv.prosVec...)
		adv.prosMu.Unlock()
		return out, nil
	}
	adv.prosMu.Unlock()

	ctx, span := telemetry.Start(ctx, "attack.prosecutor",
		telemetry.Int("rows", orig.Len()))
	defer span.End()

	groupOf, victims, err := victimGroups(orig, adv.qi)
	if err != nil {
		return nil, err
	}
	span.SetAttr(telemetry.Int("victim_groups", len(victims)))
	ctx, tr := progress.Start(ctx, "attack.prosecutor", len(victims))
	defer tr.Finish()
	matches := make([]*regionMatch, len(victims))
	err = adv.forEachParallel(ctx, len(victims), func(g int) error {
		m, merr := adv.matchRegions(ctx, victims[g])
		if merr != nil {
			return merr
		}
		matches[g] = m
		tr.Add(1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(core.PropertyVector, orig.Len())
	for i := range out {
		m := matches[groupOf[i]]
		if m.rows == 0 {
			return nil, fmt.Errorf("attack: tuple %d matches no anonymized record — the anonymization is inconsistent with its input", i)
		}
		out[i] = 1 / float64(m.rows)
	}

	adv.prosMu.Lock()
	adv.prosOrig = orig
	adv.prosVec = append(core.PropertyVector(nil), out...)
	adv.prosMu.Unlock()
	return out, nil
}

// ProsecutorVector is ProsecutorVectorContext without cancellation.
func ProsecutorVector(orig *dataset.Table, adv *Adversary) (core.PropertyVector, error) {
	return ProsecutorVectorContext(context.Background(), orig, adv)
}

// NaiveProsecutorVector is the reference serial row-scanning prosecutor
// vector the indexed pipeline is cross-validated against.
func NaiveProsecutorVector(orig *dataset.Table, adv *Adversary) (core.PropertyVector, error) {
	if orig.Len() != adv.anon.Len() {
		return nil, fmt.Errorf("attack: original has %d rows, anonymized %d", orig.Len(), adv.anon.Len())
	}
	out := make(core.PropertyVector, orig.Len())
	for i := range orig.Rows {
		matches, err := adv.NaiveMatchSet(victimOf(orig, adv.qi, i))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("attack: tuple %d matches no anonymized record — the anonymization is inconsistent with its input", i)
		}
		out[i] = 1 / float64(len(matches))
	}
	return out, nil
}

// SafetyVector is the higher-is-better form the comparison framework
// wants: 1 − prosecutor risk.
func SafetyVector(orig *dataset.Table, adv *Adversary) (core.PropertyVector, error) {
	risk, err := ProsecutorVectorContext(context.Background(), orig, adv)
	if err != nil {
		return nil, err
	}
	out := make(core.PropertyVector, len(risk))
	for i, r := range risk {
		out[i] = 1 - r
	}
	return out, nil
}

// MarketerRisk is the expected fraction of records a whole-table linkage
// re-identifies: the mean prosecutor risk.
func MarketerRisk(orig *dataset.Table, adv *Adversary) (float64, error) {
	risk, err := ProsecutorVectorContext(context.Background(), orig, adv)
	if err != nil {
		return 0, err
	}
	s := 0.0
	for _, r := range risk {
		s += r
	}
	return s / float64(len(risk)), nil
}

// JournalistVectorContext computes the per-tuple journalist risk: the
// adversary knows the victim is in a larger POPULATION the released sample
// was drawn from, not that the victim is in the table. For the individual
// of sample row i, the candidate set is every population record whose
// ground quasi-identifiers fall inside one of the anonymized regions
// matching the victim; the risk is 1 over that count. With population ⊇
// sample the candidate set contains the whole sample match set, so
// journalist risk never exceeds prosecutor risk.
//
// The sweep is inverted: population rows are grouped by ground signature
// and resolved to matched-region sets through the shared memo, then each
// DISTINCT victim region set is charged one pass over the population
// groups — candidates(S) = Σ |group| over groups whose region set
// intersects S.
func JournalistVectorContext(ctx context.Context, sample, population *dataset.Table, adv *Adversary) (core.PropertyVector, error) {
	if sample.Len() != adv.anon.Len() {
		return nil, fmt.Errorf("attack: sample has %d rows, anonymized %d", sample.Len(), adv.anon.Len())
	}
	if population == nil || population.Len() < sample.Len() {
		return nil, fmt.Errorf("attack: population must be at least the sample")
	}
	if population.Schema.Len() != sample.Schema.Len() {
		return nil, fmt.Errorf("attack: population schema mismatch")
	}
	qi := sample.Schema.QuasiIdentifiers()

	ctx, span := telemetry.Start(ctx, "attack.journalist",
		telemetry.Int("sample", sample.Len()),
		telemetry.Int("population", population.Len()))
	defer span.End()

	// The journalist sweep has three shard stages whose sizes become known
	// one at a time; the tracker's total grows with each stage.
	groupOf, victims, err := victimGroups(sample, qi)
	if err != nil {
		return nil, err
	}
	ctx, tr := progress.Start(ctx, "attack.journalist", len(victims))
	defer tr.Finish()
	matches := make([]*regionMatch, len(victims))
	if err := adv.forEachParallel(ctx, len(victims), func(g int) error {
		m, merr := adv.matchRegions(ctx, victims[g])
		if merr != nil {
			return merr
		}
		matches[g] = m
		tr.Add(1)
		return nil
	}); err != nil {
		return nil, err
	}

	popVictims, popCounts, err := victimGroupsCounted(population, qi)
	if err != nil {
		return nil, err
	}
	tr.AddTotal(len(popVictims))
	popRegs := make([]*regionMatch, len(popVictims))
	if err := adv.forEachParallel(ctx, len(popVictims), func(g int) error {
		m, merr := adv.matchRegions(ctx, popVictims[g])
		if merr != nil {
			return merr
		}
		popRegs[g] = m
		tr.Add(1)
		return nil
	}); err != nil {
		return nil, err
	}

	// Candidate counts depend only on the matched-region SET, so dedupe the
	// victims' sets and sweep the population groups once per distinct set.
	setIndex := make(map[string]int)
	var sets []bitset
	setOf := make([]int, len(victims))
	for g, m := range matches {
		k := m.regs.key()
		si, ok := setIndex[k]
		if !ok {
			si = len(sets)
			setIndex[k] = si
			sets = append(sets, m.regs)
		}
		setOf[g] = si
	}
	span.SetAttr(telemetry.Int("victim_groups", len(victims)),
		telemetry.Int("region_sets", len(sets)))
	tr.AddTotal(len(sets))
	cand := make([]int, len(sets))
	if err := adv.forEachParallel(ctx, len(sets), func(si int) error {
		c := 0
		for pg, pm := range popRegs {
			if sets[si].intersects(pm.regs) {
				c += popCounts[pg]
			}
		}
		cand[si] = c
		tr.Add(1)
		return nil
	}); err != nil {
		return nil, err
	}

	out := make(core.PropertyVector, sample.Len())
	for i := range out {
		m := matches[groupOf[i]]
		if m.rows == 0 {
			return nil, fmt.Errorf("attack: sample row %d matches no anonymized record", i)
		}
		candidates := cand[setOf[groupOf[i]]]
		if candidates < m.rows {
			// Population does not contain the sample: fall back to the
			// sample match set (prosecutor bound).
			candidates = m.rows
		}
		out[i] = 1 / float64(candidates)
	}
	return out, nil
}

// JournalistVector is JournalistVectorContext without cancellation.
func JournalistVector(sample, population *dataset.Table, adv *Adversary) (core.PropertyVector, error) {
	return JournalistVectorContext(context.Background(), sample, population, adv)
}

// NaiveJournalistVector is the reference per-victim population-scanning
// journalist vector the inverted pipeline is cross-validated against.
func NaiveJournalistVector(sample, population *dataset.Table, adv *Adversary) (core.PropertyVector, error) {
	if sample.Len() != adv.anon.Len() {
		return nil, fmt.Errorf("attack: sample has %d rows, anonymized %d", sample.Len(), adv.anon.Len())
	}
	if population == nil || population.Len() < sample.Len() {
		return nil, fmt.Errorf("attack: population must be at least the sample")
	}
	if population.Schema.Len() != sample.Schema.Len() {
		return nil, fmt.Errorf("attack: population schema mismatch")
	}
	qi := sample.Schema.QuasiIdentifiers()
	out := make(core.PropertyVector, sample.Len())
	var sb strings.Builder
	for i := range out {
		matches, err := adv.NaiveMatchSet(victimOf(sample, qi, i))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("attack: sample row %d matches no anonymized record", i)
		}
		// Dedupe matched regions by their anonymized signature.
		seen := map[string]bool{}
		var regions []int
		for _, m := range matches {
			sb.Reset()
			eqclass.WriteSignature(&sb, adv.anon.Rows[m], qi)
			if !seen[sb.String()] {
				seen[sb.String()] = true
				regions = append(regions, m)
			}
		}
		// Count population candidates covered by any matched region.
		candidates := 0
	pop:
		for p := 0; p < population.Len(); p++ {
			for _, m := range regions {
				all := true
				for _, j := range qi {
					if !adv.covers(adv.anon.At(m, j), population.At(p, j), sample.Schema.Attrs[j]) {
						all = false
						break
					}
				}
				if all {
					candidates++
					continue pop
				}
			}
		}
		if candidates < len(matches) {
			// Population does not contain the sample: fall back to the
			// sample match set (prosecutor bound).
			candidates = len(matches)
		}
		out[i] = 1 / float64(candidates)
	}
	return out, nil
}

// TargetedRiskContext reports the risk distribution over a targeted subset
// of individuals (the paper's §2 scenario): the subset's mean and worst
// prosecutor risk. rows index the original table. The prosecutor vector is
// served from the adversary's cache when already computed.
func TargetedRiskContext(ctx context.Context, orig *dataset.Table, adv *Adversary, rows []int) (mean, worst float64, err error) {
	if len(rows) == 0 {
		return 0, 0, fmt.Errorf("attack: empty target subset")
	}
	risk, err := ProsecutorVectorContext(ctx, orig, adv)
	if err != nil {
		return 0, 0, err
	}
	for _, r := range rows {
		if r < 0 || r >= len(risk) {
			return 0, 0, fmt.Errorf("attack: target row %d out of range", r)
		}
		mean += risk[r]
		if risk[r] > worst {
			worst = risk[r]
		}
	}
	return mean / float64(len(rows)), worst, nil
}

// TargetedRisk is TargetedRiskContext without cancellation.
func TargetedRisk(orig *dataset.Table, adv *Adversary, rows []int) (mean, worst float64, err error) {
	return TargetedRiskContext(context.Background(), orig, adv, rows)
}
