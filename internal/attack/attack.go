// Package attack simulates the re-identification attacks that motivate the
// paper's §2 discussion: "attacks on the anonymized data sets could be
// targeted towards a particular subset of the individuals represented in
// the data set. In such a situation, a user needs to be concerned about her
// own level of privacy, rather than that maintained collectively."
//
// The adversary holds the original quasi-identifier values of a victim
// (e.g. from a voter list) and matches them against the anonymized table.
// Three standard risk models are provided, each as a per-tuple property
// vector ready for the comparison framework:
//
//   - prosecutor risk: the victim is known to be IN the table; the
//     re-identification probability is 1/|matching class|;
//   - journalist risk: the victim may not be in the table; risk is bounded
//     by the prosecutor risk of the matching class (equal here because the
//     anonymized table is the adversary's only population information);
//   - marketer risk: the expected fraction of records an adversary
//     re-identifies when linking the WHOLE table — a scalar, the mean of
//     the prosecutor vector.
//
// Matching is semantic, not syntactic: a victim's ground values are
// compared against generalized cells with Value.Covers (plus taxonomy
// coverage for Set cells), so local recodings (Mondrian regions) and
// global recodings are attacked identically.
package attack

import (
	"fmt"

	"microdata/internal/core"
	"microdata/internal/dataset"
	"microdata/internal/hierarchy"
)

// Adversary matches ground quasi-identifier values against an anonymized
// table.
type Adversary struct {
	anon *dataset.Table
	qi   []int
	taxs map[string]*hierarchy.Taxonomy
}

// NewAdversary builds an adversary against the anonymized table. The
// taxonomies resolve Set-generalized categorical cells; attributes
// generalized only by intervals, prefixes or suppression need no entry.
func NewAdversary(anon *dataset.Table, taxonomies map[string]*hierarchy.Taxonomy) (*Adversary, error) {
	if anon == nil || anon.Len() == 0 {
		return nil, fmt.Errorf("attack: empty anonymized table")
	}
	qi := anon.Schema.QuasiIdentifiers()
	if len(qi) == 0 {
		return nil, fmt.Errorf("attack: no quasi-identifiers to link on")
	}
	return &Adversary{anon: anon, qi: qi, taxs: taxonomies}, nil
}

// covers reports whether the generalized cell g is consistent with the
// victim's ground value v for the given attribute.
func (a *Adversary) covers(g, v dataset.Value, attr dataset.Attribute) bool {
	if g.Kind() == dataset.Set {
		tax := a.taxs[attr.Name]
		if tax == nil || v.Kind() != dataset.Str {
			return false
		}
		return tax.CoversValue(g.Text(), v.Text())
	}
	// Mondrian numeric hulls attain their low endpoint; accept boundary
	// matches that Covers' half-open convention would reject.
	if g.Kind() == dataset.Interval && v.Kind() == dataset.Num {
		lo, hi := g.Bounds()
		return v.Float() >= lo && v.Float() <= hi
	}
	return g.Covers(v) || g.Equal(v)
}

// MatchSet returns the row indices of the anonymized table consistent with
// the victim's ground quasi-identifier values (aligned with the schema's
// QI order).
func (a *Adversary) MatchSet(victim []dataset.Value) ([]int, error) {
	if len(victim) != len(a.qi) {
		return nil, fmt.Errorf("attack: victim has %d quasi-identifier values, schema has %d", len(victim), len(a.qi))
	}
	var matches []int
rows:
	for i := range a.anon.Rows {
		for vi, j := range a.qi {
			if !a.covers(a.anon.At(i, j), victim[vi], a.anon.Schema.Attrs[j]) {
				continue rows
			}
		}
		matches = append(matches, i)
	}
	return matches, nil
}

// victimOf extracts row i's ground QI values from the original table.
func victimOf(orig *dataset.Table, qi []int, i int) []dataset.Value {
	v := make([]dataset.Value, len(qi))
	for vi, j := range qi {
		v[vi] = orig.At(i, j)
	}
	return v
}

// ProsecutorVector computes the per-tuple prosecutor risk: for every
// individual of the original table, 1 over the number of anonymized
// records consistent with their quasi-identifiers. A sound anonymization
// yields risk <= 1/k everywhere (its own record always matches, and so do
// its k-1 classmates).
func ProsecutorVector(orig *dataset.Table, adv *Adversary) (core.PropertyVector, error) {
	if orig.Len() != adv.anon.Len() {
		return nil, fmt.Errorf("attack: original has %d rows, anonymized %d", orig.Len(), adv.anon.Len())
	}
	out := make(core.PropertyVector, orig.Len())
	for i := range orig.Rows {
		matches, err := adv.MatchSet(victimOf(orig, adv.qi, i))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("attack: tuple %d matches no anonymized record — the anonymization is inconsistent with its input", i)
		}
		out[i] = 1 / float64(len(matches))
	}
	return out, nil
}

// SafetyVector is the higher-is-better form the comparison framework
// wants: 1 − prosecutor risk.
func SafetyVector(orig *dataset.Table, adv *Adversary) (core.PropertyVector, error) {
	risk, err := ProsecutorVector(orig, adv)
	if err != nil {
		return nil, err
	}
	out := make(core.PropertyVector, len(risk))
	for i, r := range risk {
		out[i] = 1 - r
	}
	return out, nil
}

// MarketerRisk is the expected fraction of records a whole-table linkage
// re-identifies: the mean prosecutor risk.
func MarketerRisk(orig *dataset.Table, adv *Adversary) (float64, error) {
	risk, err := ProsecutorVector(orig, adv)
	if err != nil {
		return 0, err
	}
	s := 0.0
	for _, r := range risk {
		s += r
	}
	return s / float64(len(risk)), nil
}

// JournalistVector computes the per-tuple journalist risk: the adversary
// knows the victim is in a larger POPULATION the released sample was drawn
// from, not that the victim is in the table. For the individual of sample
// row i, the candidate set is every population record whose ground
// quasi-identifiers fall inside one of the anonymized regions matching the
// victim; the risk is 1 over that count. With population ⊇ sample the
// candidate set contains the whole sample match set, so journalist risk
// never exceeds prosecutor risk.
func JournalistVector(sample, population *dataset.Table, adv *Adversary) (core.PropertyVector, error) {
	if sample.Len() != adv.anon.Len() {
		return nil, fmt.Errorf("attack: sample has %d rows, anonymized %d", sample.Len(), adv.anon.Len())
	}
	if population == nil || population.Len() < sample.Len() {
		return nil, fmt.Errorf("attack: population must be at least the sample")
	}
	if population.Schema.Len() != sample.Schema.Len() {
		return nil, fmt.Errorf("attack: population schema mismatch")
	}
	qi := sample.Schema.QuasiIdentifiers()
	out := make(core.PropertyVector, sample.Len())
	for i := range out {
		matches, err := adv.MatchSet(victimOf(sample, qi, i))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("attack: sample row %d matches no anonymized record", i)
		}
		// Dedupe matched regions by their anonymized signature.
		seen := map[string]bool{}
		var regions []int
		for _, m := range matches {
			sig := ""
			for _, j := range qi {
				sig += adv.anon.At(m, j).Key() + "\x1f"
			}
			if !seen[sig] {
				seen[sig] = true
				regions = append(regions, m)
			}
		}
		// Count population candidates covered by any matched region.
		candidates := 0
	pop:
		for p := 0; p < population.Len(); p++ {
			for _, m := range regions {
				all := true
				for _, j := range qi {
					if !adv.covers(adv.anon.At(m, j), population.At(p, j), sample.Schema.Attrs[j]) {
						all = false
						break
					}
				}
				if all {
					candidates++
					continue pop
				}
			}
		}
		if candidates < len(matches) {
			// Population does not contain the sample: fall back to the
			// sample match set (prosecutor bound).
			candidates = len(matches)
		}
		out[i] = 1 / float64(candidates)
	}
	return out, nil
}

// TargetedRisk reports the risk distribution over a targeted subset of
// individuals (the paper's §2 scenario): the subset's mean and worst
// prosecutor risk. rows index the original table.
func TargetedRisk(orig *dataset.Table, adv *Adversary, rows []int) (mean, worst float64, err error) {
	if len(rows) == 0 {
		return 0, 0, fmt.Errorf("attack: empty target subset")
	}
	risk, err := ProsecutorVector(orig, adv)
	if err != nil {
		return 0, 0, err
	}
	for _, r := range rows {
		if r < 0 || r >= len(risk) {
			return 0, 0, fmt.Errorf("attack: target row %d out of range", r)
		}
		mean += risk[r]
		if risk[r] > worst {
			worst = risk[r]
		}
	}
	return mean / float64(len(rows)), worst, nil
}
