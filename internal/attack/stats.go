package attack

import (
	"time"

	"microdata/internal/telemetry"
)

// Metric names the adversary registers. Like the engine's, they live in a
// per-adversary run registry; with a telemetry.Collector active the same
// increments also feed the global -metrics export.
const (
	// MetricRegionsProbed counts matched regions summed over victim
	// resolutions (the survivors of the per-attribute pruning).
	MetricRegionsProbed = "attack.regions.probed"
	// MetricCandidatesPruned counts regions eliminated by the per-attribute
	// indexes, summed over victim resolutions.
	MetricCandidatesPruned = "attack.candidates.pruned"
	// MetricCacheHit / MetricCacheMiss count victim-signature memo lookups.
	MetricCacheHit  = "attack.cache.hit"
	MetricCacheMiss = "attack.cache.miss"
	// MetricIndexBuildNS is the region-index construction time.
	MetricIndexBuildNS = "attack.index.build.ns"
	// MetricIndexRegions gauges the number of distinct QI regions indexed.
	MetricIndexRegions = "attack.index.regions"
)

// Stats is a snapshot of the adversary's indexing and matching counters.
// All zeros until the region index is first built (the naive reference
// paths never build it).
type Stats struct {
	// Regions is the number of distinct quasi-identifier regions indexed.
	Regions int
	// RegionsProbed counts matched regions summed over victim resolutions.
	RegionsProbed int64
	// CandidatesPruned counts regions the per-attribute indexes eliminated.
	CandidatesPruned int64
	// CacheHits and CacheMisses count victim-signature memo lookups.
	CacheHits   int64
	CacheMisses int64
	// IndexBuild is the time spent constructing the region index.
	IndexBuild time.Duration
}

// instruments holds the adversary's registered metric handles, looked up
// once at index construction so match resolution never touches the
// registry's lock.
type instruments struct {
	reg              *telemetry.Registry
	regionsProbed    *telemetry.Counter
	candidatesPruned *telemetry.Counter
	cacheHits        *telemetry.Counter
	cacheMisses      *telemetry.Counter
	indexBuildNS     *telemetry.Counter
}

func newInstruments() *instruments {
	reg := telemetry.NewRunRegistry()
	return &instruments{
		reg:              reg,
		regionsProbed:    reg.Counter(MetricRegionsProbed),
		candidatesPruned: reg.Counter(MetricCandidatesPruned),
		cacheHits:        reg.Counter(MetricCacheHit),
		cacheMisses:      reg.Counter(MetricCacheMiss),
		indexBuildNS:     reg.Counter(MetricIndexBuildNS),
	}
}

// Stats returns a snapshot of the adversary's counters.
func (a *Adversary) Stats() Stats {
	if a.ins == nil {
		return Stats{}
	}
	s := Stats{
		RegionsProbed:    a.ins.regionsProbed.Value(),
		CandidatesPruned: a.ins.candidatesPruned.Value(),
		CacheHits:        a.ins.cacheHits.Value(),
		CacheMisses:      a.ins.cacheMisses.Value(),
		IndexBuild:       time.Duration(a.ins.indexBuildNS.Value()),
	}
	if a.index != nil {
		s.Regions = a.index.n
	}
	return s
}
