package attack

import (
	"encoding/binary"
	"math/bits"
)

// bitset is a fixed-width set of region ids backed by 64-bit words. All
// operands of the binary operations must share one width (they are always
// sized by the same region count).
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

func (b bitset) or(c bitset) {
	for i, w := range c {
		b[i] |= w
	}
}

func (b bitset) and(c bitset) {
	for i := range b {
		b[i] &= c[i]
	}
}

// andNot clears every bit of c from b.
func (b bitset) andNot(c bitset) {
	for i := range b {
		b[i] &^= c[i]
	}
}

func (b bitset) zero() {
	for i := range b {
		b[i] = 0
	}
}

// setAll sets the first n bits.
func (b bitset) setAll(n int) {
	for i := range b {
		b[i] = ^uint64(0)
	}
	if n&63 != 0 {
		b[len(b)-1] = 1<<(uint(n)&63) - 1
	}
}

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

func (b bitset) intersects(c bitset) bool {
	for i, w := range b {
		if w&c[i] != 0 {
			return true
		}
	}
	return false
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

func (b bitset) clone() bitset { return append(bitset(nil), b...) }

// forEach calls f with every set bit in ascending order.
func (b bitset) forEach(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			f(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// key returns the raw words as a string, grouping identical region sets
// under one map key (the journalist sweep dedupes candidate sets by it).
func (b bitset) key() string {
	buf := make([]byte, 8*len(b))
	for i, w := range b {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return string(buf)
}
