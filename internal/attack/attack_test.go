package attack

import (
	"math"
	"testing"

	"microdata/internal/algorithm"
	"microdata/internal/algorithm/mondrian"
	"microdata/internal/dataset"
	"microdata/internal/generator"
	"microdata/internal/hierarchy"
	"microdata/internal/paperdata"
	"microdata/internal/privacy"
)

func maritalTaxs() map[string]*hierarchy.Taxonomy {
	return map[string]*hierarchy.Taxonomy{"MaritalStatus": paperdata.MaritalTaxonomy()}
}

func TestNewAdversaryValidation(t *testing.T) {
	if _, err := NewAdversary(nil, nil); err == nil {
		t.Error("nil table should fail")
	}
	empty := dataset.NewTable(paperdata.Schema())
	if _, err := NewAdversary(empty, nil); err == nil {
		t.Error("empty table should fail")
	}
	noQI := dataset.NewTable(dataset.MustSchema(dataset.Attribute{Name: "A", Role: dataset.Sensitive}))
	noQI.MustAppend(dataset.StrVal("x"))
	if _, err := NewAdversary(noQI, nil); err == nil {
		t.Error("no-QI table should fail")
	}
}

func TestProsecutorRiskOnPaperTables(t *testing.T) {
	orig := paperdata.T1()
	// T3a: every individual matches exactly their class: risks are the
	// §1 breach probabilities 1/3 and 1/4.
	adv, err := NewAdversary(paperdata.T3a(), maritalTaxs())
	if err != nil {
		t.Fatal(err)
	}
	risk, err := ProsecutorVector(orig, adv)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3, 1.0 / 3, 1.0 / 4, 1.0 / 4, 1.0 / 4, 1.0 / 3, 1.0 / 3, 1.0 / 4}
	for i := range want {
		if math.Abs(risk[i]-want[i]) > 1e-12 {
			t.Fatalf("T3a prosecutor risk = %v, want %v", risk, want)
		}
	}
	// T3b: the §1 observation — tuples {2,3,5,6,7,9,10} drop to 1/7.
	adv3b, err := NewAdversary(paperdata.T3b(), maritalTaxs())
	if err != nil {
		t.Fatal(err)
	}
	risk3b, err := ProsecutorVector(orig, adv3b)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 2, 4, 5, 6, 8, 9} {
		if math.Abs(risk3b[i]-1.0/7) > 1e-12 {
			t.Fatalf("T3b risk[%d] = %v, want 1/7", i, risk3b[i])
		}
	}
	// The anonymization guarantee: risk <= 1/k everywhere.
	for i, r := range risk3b {
		if r > 1.0/3+1e-12 {
			t.Errorf("risk[%d] = %v exceeds 1/k", i, r)
		}
	}
}

func TestMatchSetSemantics(t *testing.T) {
	adv, err := NewAdversary(paperdata.T3a(), maritalTaxs())
	if err != nil {
		t.Fatal(err)
	}
	// Victim = tuple 1 of T1: zip 13053, age 28.
	matches, err := adv.MatchSet([]dataset.Value{dataset.StrVal("13053"), dataset.NumVal(28)})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 {
		t.Fatalf("matches = %v, want the 3 rows of class {1,4,8}", matches)
	}
	// A victim outside every generalized region matches nothing.
	matches, err = adv.MatchSet([]dataset.Value{dataset.StrVal("99999"), dataset.NumVal(28)})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("out-of-region victim matched %v", matches)
	}
	if _, err := adv.MatchSet([]dataset.Value{dataset.StrVal("13053")}); err == nil {
		t.Error("wrong victim width should fail")
	}
}

func TestSafetyAndMarketer(t *testing.T) {
	orig := paperdata.T1()
	adv, err := NewAdversary(paperdata.T3a(), maritalTaxs())
	if err != nil {
		t.Fatal(err)
	}
	safety, err := SafetyVector(orig, adv)
	if err != nil {
		t.Fatal(err)
	}
	risk, _ := ProsecutorVector(orig, adv)
	for i := range safety {
		if math.Abs(safety[i]-(1-risk[i])) > 1e-12 {
			t.Fatal("safety != 1 - risk")
		}
	}
	m, err := MarketerRisk(orig, adv)
	if err != nil {
		t.Fatal(err)
	}
	// 6 tuples at 1/3, 4 at 1/4.
	want := (6.0/3 + 4.0/4) / 10
	if math.Abs(m-want) > 1e-12 {
		t.Errorf("marketer risk = %v, want %v", m, want)
	}
}

func TestTargetedRiskParagraph2Scenario(t *testing.T) {
	orig := paperdata.T1()
	adv3b, err := NewAdversary(paperdata.T3b(), maritalTaxs())
	if err != nil {
		t.Fatal(err)
	}
	adv4, err := NewAdversary(paperdata.T4(), maritalTaxs())
	if err != nil {
		t.Fatal(err)
	}
	// §2: user 8 (index 7) prefers T4; user 3 (index 2) prefers T3b.
	mean3b8, _, err := TargetedRisk(orig, adv3b, []int{7})
	if err != nil {
		t.Fatal(err)
	}
	mean48, _, err := TargetedRisk(orig, adv4, []int{7})
	if err != nil {
		t.Fatal(err)
	}
	if !(mean48 < mean3b8) {
		t.Errorf("user 8: T4 risk %v should be below T3b risk %v", mean48, mean3b8)
	}
	mean3b3, _, err := TargetedRisk(orig, adv3b, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	mean43, _, err := TargetedRisk(orig, adv4, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if !(mean3b3 < mean43) {
		t.Errorf("user 3: T3b risk %v should be below T4 risk %v", mean3b3, mean43)
	}
	// Errors.
	if _, _, err := TargetedRisk(orig, adv4, nil); err == nil {
		t.Error("empty subset should fail")
	}
	if _, _, err := TargetedRisk(orig, adv4, []int{99}); err == nil {
		t.Error("out-of-range target should fail")
	}
}

func TestAttackAgainstMondrianRegions(t *testing.T) {
	// Local recodings must be attackable too: risk <= 1/k for every
	// individual, and the match set always contains the own record's
	// classmates.
	tab, err := generator.Generate(generator.Config{N: 300, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	cfg := algorithm.Config{
		K: 5, Hierarchies: generator.Hierarchies(), Taxonomies: generator.Taxonomies(),
	}
	r, err := mondrian.New().Anonymize(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := NewAdversary(r.Table, generator.Taxonomies())
	if err != nil {
		t.Fatal(err)
	}
	risk, err := ProsecutorVector(tab, adv)
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range risk {
		if rr > 1.0/float64(cfg.K)+1e-12 {
			t.Fatalf("tuple %d risk %v exceeds 1/k", i, rr)
		}
	}
	// Match sets can only be LARGER than the equivalence class (regions
	// may overlap in value space), never smaller.
	sizes := privacy.ClassSizeVector(r.Partition)
	for i := 0; i < 25; i++ {
		matches, err := adv.MatchSet(victimOf(tab, tab.Schema.QuasiIdentifiers(), i))
		if err != nil {
			t.Fatal(err)
		}
		if float64(len(matches)) < sizes[i] {
			t.Fatalf("tuple %d: match set %d smaller than class %v", i, len(matches), sizes[i])
		}
	}
}

func TestJournalistVector(t *testing.T) {
	// Population = 3 copies of the sample draw (deterministic): every
	// sample signature occurs at least 3x in the population, so
	// journalist risk is bounded by prosecutor risk and usually lower.
	sample, err := generator.Generate(generator.Config{N: 150, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	population := sample.Clone()
	for _, seed := range []int64{44, 45} {
		extra, err := generator.Generate(generator.Config{N: 150, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		population.Rows = append(population.Rows, extra.Rows...)
	}
	cfg := algorithm.Config{
		K: 4, Hierarchies: generator.Hierarchies(),
		MaxSuppression: 0.05, Taxonomies: generator.Taxonomies(),
	}
	r, err := mondrian.New().Anonymize(sample, cfg)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := NewAdversary(r.Table, generator.Taxonomies())
	if err != nil {
		t.Fatal(err)
	}
	journalist, err := JournalistVector(sample, population, adv)
	if err != nil {
		t.Fatal(err)
	}
	prosecutor, err := ProsecutorVector(sample, adv)
	if err != nil {
		t.Fatal(err)
	}
	lower := 0
	for i := range journalist {
		if journalist[i] > prosecutor[i]+1e-12 {
			t.Fatalf("journalist risk %v exceeds prosecutor %v at %d", journalist[i], prosecutor[i], i)
		}
		if journalist[i] < prosecutor[i]-1e-12 {
			lower++
		}
	}
	if lower == 0 {
		t.Error("a 3x population should lower at least one tuple's risk")
	}
	// Errors.
	if _, err := JournalistVector(sample, nil, adv); err == nil {
		t.Error("nil population should fail")
	}
	short := sample.Clone()
	short.Rows = short.Rows[:10]
	if _, err := JournalistVector(sample, short, adv); err == nil {
		t.Error("undersized population should fail")
	}
	if _, err := JournalistVector(short, population, adv); err == nil {
		t.Error("sample/anon size mismatch should fail")
	}
}

func TestInconsistentAnonymizationDetected(t *testing.T) {
	orig := paperdata.T1()
	bogus := paperdata.T3a()
	// Replace every row's zip with a region that excludes the originals.
	for i := range bogus.Rows {
		bogus.Rows[i][0] = dataset.PrefixVal("9999", 1)
	}
	adv, err := NewAdversary(bogus, maritalTaxs())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ProsecutorVector(orig, adv); err == nil {
		t.Error("inconsistent anonymization should be detected")
	}
	short := paperdata.T1()
	short.Rows = short.Rows[:3]
	if _, err := ProsecutorVector(short, adv); err == nil {
		t.Error("size mismatch should fail")
	}
}
