package attack

import (
	"sort"

	"microdata/internal/dataset"
	"microdata/internal/eqclass"
	"microdata/internal/hierarchy"
)

// regionIndex groups the anonymized table into distinct quasi-identifier
// REGIONS — equivalence classes of rows with identical generalized cells —
// and builds per-attribute lookup structures over the region
// representatives. Matching a victim then costs a handful of hash/binary
// searches plus O(regions/64) bitset words per attribute, instead of the
// naive O(rows·|QI|) covers scan; the match COUNT follows from the region
// sizes without touching rows at all. Every lookup structure replicates
// Adversary.covers exactly, which the cross-validation tests pin.
type regionIndex struct {
	// part partitions the anonymized rows by QI signature: one class per
	// region, classes ordered by first appearance, rows ascending.
	part *eqclass.Partition
	// sizes caches the per-region row counts.
	sizes []int
	// n is the number of regions.
	n int
	// attrs holds one lookup structure per quasi-identifier, in schema
	// QI order.
	attrs []attrIndex
}

// cellEntry is one distinct generalized cell of one attribute together
// with the set of regions carrying it. Distinct cells of one attribute
// carry DISJOINT region sets — a region has exactly one cell per
// attribute.
type cellEntry struct {
	val  dataset.Value
	regs bitset
}

// prefixKey identifies a family of Prefix cells: the retained prefix and
// the total ground-string length it covers (len(prefix)+masked). A ground
// string s is covered by exactly the cells at keys {s[:k], len(s)}.
type prefixKey struct {
	prefix string
	length int
}

// attrIndex resolves, for one quasi-identifier, the set of regions whose
// cell covers a given victim value.
type attrIndex struct {
	attr dataset.Attribute
	tax  *hierarchy.Taxonomy

	// cells lists the distinct generalized cells — the generic fallback
	// for victim value kinds the typed lookups below do not cover (still
	// O(distinct cells), never O(rows)).
	cells []cellEntry

	// star is the region set with a fully suppressed cell; nil when none.
	star bitset
	// exact maps the Value.Key of exact (Num/Str) cells to their regions.
	exact map[string]bitset
	// prefixes maps Prefix cells by (prefix, total length); nil when the
	// attribute has no Prefix cells.
	prefixes map[prefixKey]bitset
	// setNodes maps Set cell labels to their regions; setAny collects Set
	// cells labeled "*", which CoversValue accepts for any ground value.
	setNodes map[string]bitset
	setAny   bitset

	// Interval stabbing structure: points holds the sorted distinct
	// endpoints of all Interval cells; segs the covering region set per
	// elementary segment — segs[2i+1] is the singleton [points[i]],
	// segs[2i] the open gap below points[i], segs[2m] the ray above the
	// last point. nil when the attribute has no Interval cells.
	points []float64
	segs   []bitset
}

// buildRegionIndex constructs the index for the anonymized table over its
// quasi-identifier columns.
func buildRegionIndex(anon *dataset.Table, qi []int, taxs map[string]*hierarchy.Taxonomy) (*regionIndex, error) {
	part, err := eqclass.FromColumns(anon, qi)
	if err != nil {
		return nil, err
	}
	n := part.NumClasses()
	ix := &regionIndex{part: part, sizes: part.Sizes(), n: n, attrs: make([]attrIndex, len(qi))}
	for vi, j := range qi {
		ai := &ix.attrs[vi]
		ai.attr = anon.Schema.Attrs[j]
		ai.tax = taxs[ai.attr.Name]
		byKey := make(map[string]int)
		for r := 0; r < n; r++ {
			v := anon.At(part.Classes[r][0], j)
			k := v.Key()
			ci, ok := byKey[k]
			if !ok {
				ci = len(ai.cells)
				byKey[k] = ci
				ai.cells = append(ai.cells, cellEntry{val: v, regs: newBitset(n)})
			}
			ai.cells[ci].regs.set(r)
		}
		ai.build(n)
	}
	return ix, nil
}

// build derives the typed lookup structures from the distinct cells.
func (ai *attrIndex) build(n int) {
	ai.exact = make(map[string]bitset)
	type ivCell struct {
		lo, hi float64
		regs   bitset
	}
	var ivs []ivCell
	for _, c := range ai.cells {
		switch c.val.Kind() {
		case dataset.Star:
			if ai.star == nil {
				ai.star = newBitset(n)
			}
			ai.star.or(c.regs)
		case dataset.Num, dataset.Str:
			ai.exact[c.val.Key()] = c.regs
		case dataset.Prefix:
			if ai.prefixes == nil {
				ai.prefixes = make(map[prefixKey]bitset)
			}
			ai.prefixes[prefixKey{c.val.Text(), len(c.val.Text()) + c.val.MaskedLen()}] = c.regs
		case dataset.Set:
			if ai.setNodes == nil {
				ai.setNodes = make(map[string]bitset)
			}
			ai.setNodes[c.val.Text()] = c.regs
			if c.val.Text() == "*" {
				if ai.setAny == nil {
					ai.setAny = newBitset(n)
				}
				ai.setAny.or(c.regs)
			}
		case dataset.Interval:
			lo, hi := c.val.Bounds()
			ivs = append(ivs, ivCell{lo, hi, c.regs})
		}
		// Missing cells participate only via the generic fallback.
	}
	if len(ivs) == 0 {
		return
	}
	// Elementary segments over the sorted distinct endpoints. A Num victim
	// v matches a numeric hull [lo,hi] iff lo <= v <= hi (covers attains
	// both bounds), so each interval covers the contiguous segments from
	// its lo singleton through its hi singleton. Sweep left to right,
	// adding each interval's regions at its lo singleton and clearing them
	// after its hi singleton — sound because distinct cells of one
	// attribute carry disjoint region sets.
	pts := make([]float64, 0, 2*len(ivs))
	for _, iv := range ivs {
		pts = append(pts, iv.lo, iv.hi)
	}
	sort.Float64s(pts)
	for _, p := range pts {
		if len(ai.points) == 0 || p != ai.points[len(ai.points)-1] {
			ai.points = append(ai.points, p)
		}
	}
	nseg := 2*len(ai.points) + 1
	starts := make([][]bitset, nseg)
	ends := make([][]bitset, nseg)
	for _, iv := range ivs {
		s := 2*sort.SearchFloat64s(ai.points, iv.lo) + 1
		e := 2*sort.SearchFloat64s(ai.points, iv.hi) + 1
		starts[s] = append(starts[s], iv.regs)
		ends[e] = append(ends[e], iv.regs)
	}
	run := newBitset(n)
	ai.segs = make([]bitset, nseg)
	for s := 0; s < nseg; s++ {
		for _, b := range starts[s] {
			run.or(b)
		}
		ai.segs[s] = run.clone()
		for _, b := range ends[s] {
			run.andNot(b)
		}
	}
}

// segFor returns the interval-cell region set covering the numeric value
// v, or nil when the attribute has no Interval cells.
func (ai *attrIndex) segFor(v float64) bitset {
	if ai.segs == nil {
		return nil
	}
	i := sort.SearchFloat64s(ai.points, v)
	if i < len(ai.points) && ai.points[i] == v {
		return ai.segs[2*i+1]
	}
	return ai.segs[2*i]
}

// matchAttrInto ORs into out the regions whose cell at this attribute
// covers the victim value v, replicating Adversary.covers exactly.
func (a *Adversary) matchAttrInto(ai *attrIndex, v dataset.Value, out bitset) {
	switch v.Kind() {
	case dataset.Num:
		if ai.star != nil {
			out.or(ai.star)
		}
		if f := v.Float(); f == f { // NaN equals nothing, even itself
			if b, ok := ai.exact[v.Key()]; ok {
				out.or(b)
			}
			if f == 0 {
				// ±0 are structurally equal for covers but have distinct
				// Keys; probe the other sign's key too.
				if b, ok := ai.exact[dataset.NumVal(-f).Key()]; ok {
					out.or(b)
				}
			}
			if b := ai.segFor(f); b != nil {
				out.or(b)
			}
		}
		if ai.prefixes != nil {
			ai.orPrefixes(v.String(), out)
		}
		// Set cells never cover numeric ground values.
	case dataset.Str:
		if ai.star != nil {
			out.or(ai.star)
		}
		if b, ok := ai.exact[v.Key()]; ok {
			out.or(b)
		}
		if ai.prefixes != nil {
			ai.orPrefixes(v.Text(), out)
		}
		if ai.tax != nil && ai.setNodes != nil {
			if ai.setAny != nil {
				out.or(ai.setAny)
			}
			for _, lbl := range ai.tax.CoveringLabels(v.Text()) {
				if b, ok := ai.setNodes[lbl]; ok {
					out.or(b)
				}
			}
		}
	default:
		// Ground victims are Num or Str in every workload; exotic victim
		// kinds fall back to the reference predicate over distinct cells.
		for i := range ai.cells {
			if a.covers(ai.cells[i].val, v, ai.attr) {
				out.or(ai.cells[i].regs)
			}
		}
	}
}

// orPrefixes ORs the regions of every Prefix cell covering the ground
// string s: cells keyed by a prefix of s with total length len(s).
func (ai *attrIndex) orPrefixes(s string, out bitset) {
	for k := 0; k <= len(s); k++ {
		if b, ok := ai.prefixes[prefixKey{s[:k], len(s)}]; ok {
			out.or(b)
		}
	}
}
